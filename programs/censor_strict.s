; censor_strict.s — the SNFE strict censor at machine level.
; Every output field is a function of the censor's own state: the flow-free
; design. The implementation spills the HIGH header word around the counter
; update, interleaving HIGH and LOW values on the stack. A single joined
; stack summary conflates the two depths — the later POP into the LOW
; output re-imports the joined HIGH colour and the coarse analyzer rejects
; a program with no actual flow. Frame-offset stack cells keep the depths
; apart and certify it, matching the structured-IR verdict for
; ifa.CensorStrictSpec. Memory map: staticflow.CensorSpec.
	.org 0x40
start:
	MOV @0x500, R1		; in_len (HIGH) — held for the audit record
	PUSH R1			; spill the HIGH word
	MOV @0x600, R2		; own_seq (LOW)
	ADD #1, R2
	PUSH R2			; spill the updated counter above it
	MOV #1, @0x702		; out_type := constant "data"
	POP @0x700		; out_seq := own counter (the LOW cell)
	POP @0x50f		; HIGH word back to the HIGH audit slot
	MOV R2, @0x600		; persist the counter
	HALT
