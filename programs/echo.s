; echo.s — a regime that owns a TTY (device 0) and echoes input bytes,
; interrupt-driven. Run on SUE-Go via the core builder, or inspect with:
;   go run ./cmd/sepasm -kernel programs/echo.s
	.org 0x40
start:
	MOV #isr, @0x10      ; install the handler for owned device 0
	MOV #0x40, @DEV0     ; enable receiver interrupts
	TRAP #IRQON
idle:
	TRAP #WAITIRQ
	BR idle
isr:
	MOV @DEV0+1, R1      ; read RDATA
	MOV R1, @DEV0+3      ; write XDATA
	RTI
