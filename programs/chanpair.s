; chanpair.s — sends its counter on channel 0 and drains channel 1.
; Pair two of these with:
;   seprun -chan 0:1 -chan 1:0 programs/chanpair.s programs/chanpair.s
	.org 0x40
start:
	TRAP #WHOAMI         ; R0 = my regime index (0 or 1)
	MOV R0, R5           ; my send channel = my index
	MOV #1, R4
	SUB R0, R4           ; my receive channel = the other one
	MOV #0, R2
loop:
	ADD #1, R2
	MOV R5, R0
	MOV R2, R1
	TRAP #SEND
	MOV R4, R0
	TRAP #RECV
	CMP #1, R0
	BNE yield
	MOV R1, @0x20        ; publish the peer's latest counter
yield:
	TRAP #SWAP
	BR loop
