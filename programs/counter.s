; counter.s — the minimal cooperative regime: count, publish, yield.
	.org 0x40
start:
	MOV #0, R2
loop:
	ADD #1, R2
	MOV R2, @0x20        ; publish progress at virtual 0x20
	TRAP #SWAP
	BR loop
