; censor_canon.s — the SNFE canonicalizing censor at machine level.
; The output length is quantized to a 16-word boundary: a much narrower
; channel than censor_format's pass-through, but syntactically the value is
; still derived from the HIGH input — so a syntactic analyzer rejects it at
; any precision (the paper's §4 all-or-nothing critique, here working in
; the censor's favour as conservatism). Memory map: staticflow.CensorSpec.
	.org 0x40
start:
	MOV @0x600, R2		; own_seq
	ADD #1, R2
	MOV R2, @0x600
	MOV R2, @0x700		; out_seq := own counter
	MOV @0x500, R1		; in_len (HIGH)
	ADD #15, R1
	SHR #4, R1
	SHL #4, R1		; quantize to a 16-word boundary
	MOV R1, @0x701		; out_len — still a function of in_len
	HALT
