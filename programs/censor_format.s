; censor_format.s — the SNFE format-checking censor at machine level.
; Sequence numbers are re-derived from the censor's own counter, but the
; red-supplied length field passes through after a range check: an explicit
; HIGH -> LOW flow that every analyzer precision must reject. The memory
; map matches staticflow.CensorSpec: header fields (HIGH) at 0x500, censor
; state (LOW) at 0x600, network-visible output (LOW) at 0x700.
	.org 0x40
start:
	MOV @0x600, R2		; own_seq
	ADD #1, R2
	MOV R2, @0x600
	MOV R2, @0x700		; out_seq := own counter
	MOV @0x500, R1		; in_len (HIGH)
	CMP #0, R1		; range check: zero-length frames dropped
	BEQ drop
	MOV R1, @0x701		; out_len := in_len — the pass-through
drop:
	HALT
