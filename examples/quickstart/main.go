// Quickstart: build a two-regime separation-kernel system, watch it run,
// then verify it with Proof of Separability — the whole paper in ~80 lines.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/core"
	"repro/internal/kernel"
)

// Two regimes. RED counts; BLACK counts. They share one processor and, by
// construction, nothing else: no channels are configured, so the kernel's
// job is pure separation.
const red = `
	.org 0x40
start:
	MOV #0, R5
loop:
	ADD #2, R5        ; RED counts in twos (in R5, the register the
	MOV R5, @0x20     ; RegisterLeak bug below fails to reload)
	TRAP #SWAP
	BR loop
`

const black = `
	.org 0x40
start:
	MOV #0, R5
loop:
	ADD #3, R5        ; BLACK counts in threes
	MOV R5, @0x20
	TRAP #SWAP
	BR loop
`

func main() {
	sys, err := core.NewBuilder().
		RegimeSized("red", red, 0x200).
		RegimeSized("black", black, 0x200).
		Build()
	if err != nil {
		log.Fatal(err)
	}

	sys.Run(2000)
	r, _ := sys.RegimeWord("red", 0x20)
	b, _ := sys.RegimeWord("black", 0x20)
	fmt.Printf("after 2000 cycles: red counted to %d, black to %d\n", r, b)
	fmt.Printf("kernel stats: %+v\n\n", sys.Stats())

	// Verify: the six conditions of the paper's Appendix, checked on
	// randomly explored reachable states with Φ-preserving perturbations.
	fmt.Println("running Proof of Separability on the honest kernel...")
	res := sys.Verify(core.VerifyOptions{Trials: 6, StepsPerTrial: 60, Seed: 1})
	fmt.Println("  ", res.Summary())

	// Now deliberately break the kernel: don't reload R5 on context
	// switches (the exact hazard of the paper's SWAP discussion) and
	// verify again.
	fmt.Println("injecting the RegisterLeak bug and re-verifying...")
	leaky, err := core.NewBuilder().
		RegimeSized("red", red, 0x200).
		RegimeSized("black", black, 0x200).
		WithLeaks(kernel.Leaks{RegisterLeak: true}).
		Build()
	if err != nil {
		log.Fatal(err)
	}
	res = leaky.Verify(core.VerifyOptions{Trials: 6, StepsPerTrial: 60, Seed: 1})
	fmt.Println("  ", res.Summary())
	if !res.Passed() {
		fmt.Println("   first counterexample:", res.Violations[0])
	}
}
