// blockstore runs a shared resource manager as a REGIME: a block-store
// server written in SM11 assembly, serving two client regimes over
// kernel-mediated channels. The per-tenant access policy (alice owns slots
// 0–15, bob 16–31) lives entirely in the server component; the separation
// kernel underneath knows nothing about slots, tenants or policy — the
// paper's architecture, all the way down to machine code.
//
//	go run ./examples/blockstore
package main

import (
	"fmt"
	"log"

	"repro/internal/blockstore"
	"repro/internal/machine"
)

func main() {
	alice := []machine.Word{
		blockstore.Put(3, 0x5A), // store 0x5A in my slot 3
		blockstore.Get(3),       // read it back
		blockstore.Get(20),      // try to read bob's slot 20
	}
	bob := []machine.Word{
		blockstore.Put(20, 0x7B),
		blockstore.Get(20),
		blockstore.Put(3, 0xFF), // try to clobber alice's slot 3
	}
	sys, err := blockstore.Build(alice, bob)
	if err != nil {
		log.Fatal(err)
	}
	sys.RunUntilIdle(200000)
	if sys.Kernel.Dead() {
		log.Fatalf("kernel died: %v", sys.Kernel.Cause)
	}

	show := func(name string, reqs []machine.Word) {
		replies, err := sys.Replies(name, len(reqs))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s:\n", name)
		for i, r := range reqs {
			verdict := fmt.Sprintf("-> %#04x", replies[i])
			if replies[i] == blockstore.ErrWord {
				verdict = "-> DENIED by the server component"
			}
			op := "GET"
			if r&blockstore.OpPut != 0 {
				op = "PUT"
			}
			fmt.Printf("  %s slot %-2d  %s\n", op, int(r>>8)&0x7f, verdict)
		}
	}
	show("alice", alice)
	show("bob", bob)

	st := sys.Stats()
	fmt.Printf("\nkernel: %d swaps, %d instructions for the server regime\n",
		st.Swaps, st.InstrPerRegime[0])
	fmt.Println("the kernel mediated every word and enforced none of the policy —")
	fmt.Println("\"policy enforcement is not the concern of a security kernel.\"")
}
