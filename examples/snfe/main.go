// snfe demonstrates the paper's Secure Network Front End: a malicious red
// component tries to smuggle user data over the cleartext bypass, and a
// simple verified censor cuts the covert bandwidth down while the encrypted
// user traffic keeps flowing.
//
//	go run ./examples/snfe
package main

import (
	"fmt"
	"log"

	"repro/internal/snfe"
)

func main() {
	fmt.Println("SNFE: host --cleartext--> [red] --/crypto/--> [black] --> network")
	fmt.Println("                           |                      ^")
	fmt.Println("                           +--bypass--[censor]----+")
	fmt.Println()

	run := func(label string, cfg snfe.Config) *snfe.Result {
		res, err := snfe.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-34s delivered=%-5v leaked=%-5v covert: %s\n",
			label, res.Delivered, res.Leaked, res.Covert)
		return res
	}

	fmt.Println("-- honest red component --")
	run("no censor:", snfe.Config{Mode: snfe.ExfilNone, Censor: snfe.CensorOff, Packets: 48})

	fmt.Println("\n-- red smuggles bits in an extra header field --")
	run("no censor:", snfe.Config{Mode: snfe.ExfilField, Censor: snfe.CensorOff, Packets: 48, Seed: 9})
	run("format censor:", snfe.Config{Mode: snfe.ExfilField, Censor: snfe.CensorFormat, Packets: 48, Seed: 9})

	fmt.Println("\n-- red modulates the declared length (format-clean!) --")
	run("format censor:", snfe.Config{Mode: snfe.ExfilLenMod, Censor: snfe.CensorFormat, Packets: 48, Seed: 9})
	run("canonicalizing censor:", snfe.Config{Mode: snfe.ExfilLenMod, Censor: snfe.CensorCanon, Packets: 48, Seed: 9})

	fmt.Println("\n-- red skips sequence numbers --")
	run("no censor:", snfe.Config{Mode: snfe.ExfilSeqSkip, Censor: snfe.CensorOff, Packets: 48, Seed: 9})
	run("format censor:", snfe.Config{Mode: snfe.ExfilSeqSkip, Censor: snfe.CensorFormat, Packets: 48, Seed: 9})

	fmt.Println("\n-- residual channel under rate limiting --")
	run("canonical censor + rate/16:", snfe.Config{Mode: snfe.ExfilField, Censor: snfe.CensorCanon,
		RateEvery: 16, Packets: 48, Seed: 9})

	fmt.Println("\nThe crucial design point (paper, section 2): security rests on the")
	fmt.Println("physical distribution of the four boxes and the physically limited")
	fmt.Println("communications between them; the censor is the only security-critical")
	fmt.Println("*software* in the design — small enough to verify.")
}
