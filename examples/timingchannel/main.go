// timingchannel demonstrates the boundary of the paper's security model,
// quantitatively: a covert channel on the honest separation kernel built
// from nothing but scheduling — and the fixed-time-slice scheduler that
// closes it.
//
//	go run ./examples/timingchannel
package main

import (
	"fmt"
	"log"

	"repro/internal/separability"
	"repro/internal/timingchan"
)

func main() {
	fmt.Println("A sender regime modulates how long it holds the CPU before its")
	fmt.Println("voluntary SWAP; a receiver regime (owning a clock device) thresholds")
	fmt.Println("the gaps between its own turns. No shared memory. No channels.")
	fmt.Println()

	res, sys, err := timingchan.Run(64, 11, 60, 40)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("classic SUE scheduling (run until SWAP):  %s\n", res.Covert)

	check := separability.CheckRandomized(sys.Adapter, separability.Options{
		Trials: 6, StepsPerTrial: 60, Seed: 3, CheckScheduling: true,
	})
	fmt.Printf("Proof of Separability on that system:     %s\n", check.Summary())
	fmt.Println()
	fmt.Println("Bits flowed, yet the check passes — correctly: the six conditions")
	fmt.Println("(and the paper, §3: \"denial of service is not a security problem\")")
	fmt.Println("scope wall-clock scheduling out of the model.")
	fmt.Println()

	resF, sysF, err := timingchan.RunFixed(64, 11, 60, 40, 200)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fixed time slices (200 cycles each):      %s\n", resF.Covert)
	checkF := separability.CheckRandomized(sysF.Adapter, separability.Options{
		Trials: 6, StepsPerTrial: 60, Seed: 3, CheckScheduling: true,
	})
	fmt.Printf("Proof of Separability, fixed slices:      %s\n", checkF.Summary())
	fmt.Println()
	fmt.Println("Fixed slices (the time partitioning later separation kernels adopted)")
	fmt.Println("make every rotation take identical wall-clock time: the channel's")
	fmt.Println("capacity collapses to noise while the kernel still verifies and")
	fmt.Println("ordinary workloads still run.")
}
