// mlsworkstation runs the paper's section-2 system — terminals, multilevel
// file-server, printer-server, authentication — twice: once as the
// kernelized baseline (central policy + trusted spooler) and once as the
// distributed design (policy inside trusted components), then compares the
// trusted computing bases. This is experiment E5 end to end.
//
//	go run ./examples/mlsworkstation
package main

import (
	"fmt"
	"log"

	"repro/internal/baseline"
	"repro/internal/distsys"
	"repro/internal/mls"
	"repro/internal/terminal"
	"repro/internal/workstation"
)

func main() {
	fmt.Println("== conventional kernelized system, spooler NOT trusted ==")
	sys1, sp1 := baseline.SpoolerScenario(false)
	sys1.Run(1000)
	fmt.Printf("jobs printed: %d, cleanup failures: %d, spool files left: %d\n",
		len(sp1.Printed()), sp1.DeleteFailures, sys1.FilesMatching("spool/"))
	fmt.Println("-> the *-property blocks the spooler's cleanup: used spool files pile up")

	fmt.Println("\n== conventional kernelized system, spooler TRUSTED ==")
	sys2, sp2 := baseline.SpoolerScenario(true)
	sys2.Run(1000)
	tcb := sys2.TCB()
	fmt.Printf("jobs printed: %d, cleanup failures: %d, spool files left: %d\n",
		len(sp2.Printed()), sp2.DeleteFailures, sys2.FilesMatching("spool/"))
	fmt.Printf("-> it works, but the TCB is now kernel + %v (%d policy exemptions used)\n",
		tcb.TrustedProcesses, tcb.TrustedUses)

	fmt.Println("\n== distributed design (paper, section 2) ==")
	users := []workstation.User{
		{Name: "lois", Password: "pw1", Clearance: mls.L(mls.Unclassified),
			Script: []terminal.Action{
				terminal.Login("lois", "pw1"),
				terminal.Create("memo"),
				terminal.Write("memo", "press release draft"),
				terminal.Spool("memo"),
				terminal.PrintLast(),
			}},
		{Name: "hank", Password: "pw2", Clearance: mls.L(mls.Secret),
			Script: []terminal.Action{
				terminal.Login("hank", "pw2"),
				terminal.Create("battle"),
				terminal.Write("battle", "operation overlord"),
				terminal.Spool("battle"),
				terminal.PrintLast(),
				terminal.Read("memo"), // read-down is fine
			}},
	}
	ws, err := workstation.Build(distsys.Physical, users)
	if err != nil {
		log.Fatal(err)
	}
	ws.Run(3000)

	fmt.Printf("jobs printed: %d, spool files left: %d\n",
		ws.Printer.JobsPrinted(), ws.Files.SpoolCount())
	for _, p := range ws.Printer.Printed() {
		if p.Kind == "banner" {
			fmt.Println("   banner:", p.Text)
		}
	}
	fmt.Printf("trusted-process exemptions used: %d\n", ws.Files.Monitor().TrustedUses())
	fmt.Println("-> same service, no policy exemptions anywhere: the printer-server's")
	fmt.Println("   'delete any spool file' power is a concrete, named service of the")
	fmt.Println("   file-server, scoped to the spool area — not a licence to flout the")
	fmt.Println("   *-property. That is the paper's answer to trusted processes.")
}
