// guard demonstrates the ACCAT Guard of the paper's section 1: traffic in
// both directions with different security requirements per direction —
// LOW→HIGH unhindered, HIGH→LOW under watch-officer review.
//
//	go run ./examples/guard
package main

import (
	"fmt"
	"log"

	"repro/internal/guard"
)

func main() {
	lowMail := []string{
		"field report: convoy arrived on schedule",
		"supply request: 40 crates of rations",
	}
	highMail := []string{
		"weather advisory: storms clearing by 0600",
		"patrol summary [SECRET: ambush site at grid 12A] end of summary",
		"agent roster NOFORN — never release",
	}
	sys, err := guard.Build(guard.MarkerOfficer{}, lowMail, highMail)
	if err != nil {
		log.Fatal(err)
	}
	sys.Run(2000)

	fmt.Println("== LOW -> HIGH (passes without hindrance) ==")
	for _, m := range sys.High.Received {
		if m.Kind == "mail" {
			fmt.Printf("  HIGH received: %s\n", m.Body)
		}
	}
	fmt.Println("\n== HIGH -> LOW (every message reviewed by the watch officer) ==")
	for _, m := range sys.Low.Received {
		tag := ""
		if m.Arg("reviewed") == "redacted" {
			tag = "  [redacted]"
		}
		fmt.Printf("  LOW received: %s%s\n", m.Body, tag)
	}
	for _, m := range sys.High.Received {
		if m.Kind == "rejected" {
			fmt.Printf("  (HIGH notified: a message was %s)\n", m.Arg("reason"))
		}
	}
	fmt.Printf("\nverdicts: %d released, %d redacted, %d denied; %d passed upward\n",
		sys.Guard.Released, sys.Guard.Redacted, sys.Guard.Denied, sys.Guard.UpPassed)
	fmt.Println("\nThe paper's point: the Guard enforces *different* requirements per")
	fmt.Println("direction, so building it over a kernel that hard-wires one direction")
	fmt.Println("(as the real Guard did over KSOS) forces its essential function into")
	fmt.Println("trusted processes. As a trusted *component* its requirements are")
	fmt.Println("stated — and tested — directly.")
}
