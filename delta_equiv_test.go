package repro

// End-to-end equivalence of the delta-snapshot fast path: the randomized
// verifier must produce byte-identical Results whether the system exposes
// the O(dirty) Checkpointer API or only legacy full Save/Restore.

import (
	"reflect"
	"testing"

	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/separability"
	"repro/internal/verifysys"
)

// noCheckpoint wraps a Perturbable and hides its Checkpointer, forcing the
// checkers onto the full Save/Restore path. Digests and the op classifier
// are forwarded so both paths compare and bucket identically; Clone wraps
// its result so worker replicas stay checkpoint-free too.
type noCheckpoint struct {
	model.Perturbable
}

func (n noCheckpoint) AbstractDigest(c model.Colour) uint64 {
	if d, ok := n.Perturbable.(model.Digester); ok {
		return d.AbstractDigest(c)
	}
	return model.DigestString(n.Perturbable.Abstract(c))
}

func (n noCheckpoint) ClassifyOp(op model.OpID) string {
	return model.OpClass(n.Perturbable, op)
}

func (n noCheckpoint) Clone() model.SharedSystem {
	rep, ok := n.Perturbable.(model.Replicable)
	if !ok {
		return nil
	}
	inner, ok := rep.Clone().(model.Perturbable)
	if !ok || inner == nil {
		return nil
	}
	return noCheckpoint{inner}
}

// TestDeltaPathMatchesFullSnapshots runs the randomized checker twice over
// the same kernel system — once through Checkpoint/Rollback, once through
// legacy Save/Restore — and requires identical Results: same summary, same
// violations, same per-condition and per-op check counts. Covered for the
// honest kernel and for planted leaks, at 1 and at 4 workers.
func TestDeltaPathMatchesFullSnapshots(t *testing.T) {
	leaks := []kernel.Leaks{
		{},
		{RegisterLeak: true},
		{ChannelAlias: true},
	}
	for _, l := range leaks {
		for _, workers := range []int{1, 4} {
			opt := separability.Options{
				Trials: 3, StepsPerTrial: 30, Seed: 41, Workers: workers,
			}

			sys, err := verifysys.Build(verifysys.ProbeFor(l), l, true)
			if err != nil {
				t.Fatal(err)
			}
			fast := separability.CheckRandomized(sys, opt)

			sys2, err := verifysys.Build(verifysys.ProbeFor(l), l, true)
			if err != nil {
				t.Fatal(err)
			}
			if _, ok := model.SharedSystem(sys2).(model.Checkpointer); !ok {
				t.Fatal("adapter no longer implements Checkpointer; test is vacuous")
			}
			slow := separability.CheckRandomized(noCheckpoint{sys2}, opt)

			name := func() string {
				switch {
				case l.RegisterLeak:
					return "register-leak"
				case l.ChannelAlias:
					return "channel-alias"
				}
				return "honest"
			}()
			if fast.Summary() != slow.Summary() {
				t.Errorf("%s workers=%d: summary diverged\n delta: %s\n  full: %s",
					name, workers, fast.Summary(), slow.Summary())
			}
			if !reflect.DeepEqual(fast.Violations, slow.Violations) {
				t.Errorf("%s workers=%d: violations diverged\n delta: %v\n  full: %v",
					name, workers, fast.Violations, slow.Violations)
			}
			if !reflect.DeepEqual(fast.Checks, slow.Checks) {
				t.Errorf("%s workers=%d: per-condition counts diverged\n delta: %v\n  full: %v",
					name, workers, fast.Checks, slow.Checks)
			}
			if !reflect.DeepEqual(fast.OpChecks, slow.OpChecks) {
				t.Errorf("%s workers=%d: per-op counts diverged\n delta: %v\n  full: %v",
					name, workers, fast.OpChecks, slow.OpChecks)
			}
			if fast.States != slow.States {
				t.Errorf("%s workers=%d: states %d vs %d", name, workers, fast.States, slow.States)
			}
		}
	}
}
