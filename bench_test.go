package repro

// The benchmark harness: one benchmark per experiment in EXPERIMENTS.md
// (E1..E13). The paper is a 1981 position paper without numbered tables, so
// each benchmark regenerates one *checkable claim* from the text; custom
// metrics (b.ReportMetric) carry the experiment's actual observables
// alongside the usual ns/op.
//
// Run with:
//
//	go test -bench=. -benchmem

import (
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/asm"
	"repro/internal/baseline"
	"repro/internal/core"
	"repro/internal/distsys"
	"repro/internal/guard"
	"repro/internal/ifa"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/minisue"
	"repro/internal/mls"
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/separability"
	"repro/internal/snfe"
	"repro/internal/terminal"
	"repro/internal/verifysys"
	"repro/internal/workstation"
)

// countLines sums the non-blank, non-comment source lines of the given
// files (a crude but honest analogue of the SUE's "about 5K words").
func countLines(b *testing.B, dir string, exclude ...string) int {
	b.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	total := 0
	for _, e := range entries {
		name := e.Name()
		if !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		skip := false
		for _, ex := range exclude {
			if name == ex {
				skip = true
			}
		}
		if skip {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, name))
		if err != nil {
			b.Fatal(err)
		}
		for _, line := range strings.Split(string(data), "\n") {
			t := strings.TrimSpace(line)
			if t == "" || strings.HasPrefix(t, "//") {
				continue
			}
			total++
		}
	}
	return total
}

// BenchmarkE1KernelFootprint — paper §3: the SUE is "minimally small and
// very simple ... about 5K words". We compare the separation kernel's code
// size and boot cost against the kernelized baseline's TCB (central
// monitor + policy machinery + the trusted spooler that must join it).
func BenchmarkE1KernelFootprint(b *testing.B) {
	sepLoC := countLines(b, "internal/kernel", "adapter.go", "leaks.go")
	// The conventional kernel's TCB: central monitor, policy machinery,
	// and — as in KSOS, whose kernel "contains, among other things, a
	// mechanism to support a multilevel secure file system" (paper §4) —
	// the file system itself.
	baseTCB := countLines(b, "internal/baseline") +
		countLines(b, "internal/mls") +
		countLines(b, "internal/fileserver")

	sys, err := verifysys.Build(verifysys.ProbePlain, kernel.Leaks{}, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := sys.K.Boot(); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(sepLoC), "sepkernel-loc")
	b.ReportMetric(float64(baseTCB), "baseline-tcb-loc")
	b.ReportMetric(float64(baseTCB)/float64(sepLoC), "tcb-ratio")
	// Kernel data footprint in machine words (save areas + channels).
	b.ReportMetric(float64(kernel.KernelEnd), "kernel-area-words")
	// The structural claim: the separation kernel "knows nothing of the
	// security policy enforced by the system" — it must reference the MLS
	// machinery exactly zero times, while the conventional kernel is built
	// around it.
	b.ReportMetric(float64(countImports(b, "internal/kernel", "repro/internal/mls")), "sep-policy-imports")
	b.ReportMetric(float64(countImports(b, "internal/baseline", "repro/internal/mls")), "baseline-policy-imports")
}

// countImports counts source files in dir importing the given path.
func countImports(b *testing.B, dir, importPath string) int {
	b.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		b.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".go") || strings.HasSuffix(e.Name(), "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(dir, e.Name()))
		if err != nil {
			b.Fatal(err)
		}
		if strings.Contains(string(data), "\""+importPath+"\"") {
			n++
		}
	}
	return n
}

// BenchmarkE2SwapVerification — paper §4: IFA rejects the manifestly
// secure SWAP; Proof of Separability verifies the same context-switch
// logic running in the real kernel.
func BenchmarkE2SwapVerification(b *testing.B) {
	lattice := ifa.Isolation(ifa.SwapColours...)
	var ifaViolations int
	b.Run("IFA-on-implementation", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			rep := ifa.Certify(ifa.SwapImplementation(6), lattice)
			ifaViolations = len(rep.Violations)
		}
		b.ReportMetric(float64(ifaViolations), "violations")
	})
	b.Run("IFA-on-spec", func(b *testing.B) {
		var v int
		for i := 0; i < b.N; i++ {
			rep := ifa.Certify(ifa.SwapHighLevelSpec(6), lattice)
			v = len(rep.Violations)
		}
		b.ReportMetric(float64(v), "violations")
	})
	b.Run("Separability-on-kernel", func(b *testing.B) {
		var v int
		for i := 0; i < b.N; i++ {
			sys, err := verifysys.Build(verifysys.ProbePlain, kernel.Leaks{}, true)
			if err != nil {
				b.Fatal(err)
			}
			res := separability.CheckRandomized(sys, separability.Options{
				Trials: 2, StepsPerTrial: 40, Seed: int64(i) + 1,
			})
			v = len(res.Violations)
		}
		b.ReportMetric(float64(v), "violations")
	})
}

// BenchmarkE3ChannelCutting — paper §4: cutting the configured channels
// reduces "no channels but these" to "no channels at all": the uncut
// system shows exactly the configured flows; the cut system verifies
// isolated.
func BenchmarkE3ChannelCutting(b *testing.B) {
	run := func(b *testing.B, cut bool) int {
		var v int
		for i := 0; i < b.N; i++ {
			sys, err := verifysys.Build(verifysys.ProbePlain, kernel.Leaks{}, cut)
			if err != nil {
				b.Fatal(err)
			}
			res := separability.CheckRandomized(sys, separability.Options{
				Trials: 3, StepsPerTrial: 60, Seed: 42,
			})
			v = len(res.Violations)
		}
		return v
	}
	b.Run("uncut", func(b *testing.B) {
		v := run(b, false)
		b.ReportMetric(float64(v), "flows-detected")
	})
	b.Run("cut", func(b *testing.B) {
		v := run(b, true)
		b.ReportMetric(float64(v), "flows-detected")
	})
}

// BenchmarkE4CensorBandwidth — paper §2: "A fairly simple censor can
// reduce the bandwidth available for illicit communication over the bypass
// to an acceptable level." Reported metrics are covert bits/round for the
// strongest encoding under each censor.
func BenchmarkE4CensorBandwidth(b *testing.B) {
	cases := []struct {
		name   string
		censor snfe.CensorMode
		rate   int
	}{
		{"off", snfe.CensorOff, 0},
		{"format", snfe.CensorFormat, 0},
		{"canonical", snfe.CensorCanon, 0},
		{"canonical-rate8", snfe.CensorCanon, 8},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			var best float64
			for i := 0; i < b.N; i++ {
				best = 0
				for _, mode := range []snfe.Exfil{snfe.ExfilField, snfe.ExfilLenMod, snfe.ExfilSeqSkip} {
					res, err := snfe.Run(snfe.Config{
						Mode: mode, Censor: c.censor, RateEvery: c.rate,
						Packets: 48, Seed: 7,
					})
					if err != nil {
						b.Fatal(err)
					}
					if !res.Delivered {
						b.Fatal("user data lost")
					}
					if res.Covert.BitsPerRound > best {
						best = res.Covert.BitsPerRound
					}
				}
			}
			b.ReportMetric(best, "worst-bits/round")
		})
	}
}

// BenchmarkE5SpoolerTCB — paper §1: the kernelized system needs a trusted
// process to run a line-printer spooler; the distributed design does not.
func BenchmarkE5SpoolerTCB(b *testing.B) {
	b.Run("kernelized-untrusted", func(b *testing.B) {
		var left, fails int
		for i := 0; i < b.N; i++ {
			sys, sp := baseline.SpoolerScenario(false)
			sys.Run(1000)
			left = sys.FilesMatching("spool/")
			fails = sp.DeleteFailures
		}
		b.ReportMetric(float64(left), "spool-left")
		b.ReportMetric(float64(fails), "cleanup-denied")
		b.ReportMetric(0, "trusted-procs")
	})
	b.Run("kernelized-trusted", func(b *testing.B) {
		var left, uses, procs int
		for i := 0; i < b.N; i++ {
			sys, _ := baseline.SpoolerScenario(true)
			sys.Run(1000)
			left = sys.FilesMatching("spool/")
			tcb := sys.TCB()
			uses = tcb.TrustedUses
			procs = len(tcb.TrustedProcesses)
		}
		b.ReportMetric(float64(left), "spool-left")
		b.ReportMetric(float64(uses), "exemptions-used")
		b.ReportMetric(float64(procs), "trusted-procs")
	})
	b.Run("distributed", func(b *testing.B) {
		var left, uses int
		for i := 0; i < b.N; i++ {
			sys, err := workstation.Build(distsys.Physical, e5Users())
			if err != nil {
				b.Fatal(err)
			}
			sys.Run(3000)
			if sys.Printer.JobsPrinted() != 2 {
				b.Fatalf("jobs printed = %d", sys.Printer.JobsPrinted())
			}
			left = sys.Files.SpoolCount()
			uses = sys.Files.Monitor().TrustedUses()
		}
		b.ReportMetric(float64(left), "spool-left")
		b.ReportMetric(float64(uses), "exemptions-used")
		b.ReportMetric(0, "trusted-procs")
	})
}

func e5Users() []workstation.User {
	return []workstation.User{
		{Name: "lois", Password: "pw1", Clearance: mls.L(mls.Unclassified),
			Script: []terminal.Action{
				terminal.Login("lois", "pw1"),
				terminal.Create("memo"),
				terminal.Write("memo", "print me"),
				terminal.Spool("memo"),
				terminal.PrintLast(),
			}},
		{Name: "hank", Password: "pw2", Clearance: mls.L(mls.Secret),
			Script: []terminal.Action{
				terminal.Login("hank", "pw2"),
				terminal.Create("battle"),
				terminal.Write("battle", "secret plan"),
				terminal.Spool("battle"),
				terminal.PrintLast(),
			}},
	}
}

// BenchmarkE6GuardFlow — paper §1: the Guard moves traffic both ways under
// direction-specific rules; throughput and verdict mix are reported.
func BenchmarkE6GuardFlow(b *testing.B) {
	low := make([]string, 30)
	high := make([]string, 30)
	for i := range low {
		low[i] = "low report"
	}
	for i := range high {
		switch i % 3 {
		case 0:
			high[i] = "routine summary"
		case 1:
			high[i] = "summary [SECRET: detail] end"
		default:
			high[i] = "roster NOFORN"
		}
	}
	var released, redacted, denied, up int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sys, err := guard.Build(guard.MarkerOfficer{}, low, high)
		if err != nil {
			b.Fatal(err)
		}
		sys.Run(5000)
		released, redacted, denied, up = sys.Guard.Released, sys.Guard.Redacted,
			sys.Guard.Denied, sys.Guard.UpPassed
	}
	b.ReportMetric(float64(up), "up-passed")
	b.ReportMetric(float64(released), "released")
	b.ReportMetric(float64(redacted), "redacted")
	b.ReportMetric(float64(denied), "denied")
}

// BenchmarkE7Indistinguishability — paper §3: the separation-kernel-hosted
// system is indistinguishable, to every component, from the physically
// distributed one.
func BenchmarkE7Indistinguishability(b *testing.B) {
	var mismatches int
	for i := 0; i < b.N; i++ {
		run := func(d distsys.Deployment) *workstation.System {
			sys, err := workstation.Build(d, e5Users())
			if err != nil {
				b.Fatal(err)
			}
			sys.Run(3000)
			return sys
		}
		phys := run(distsys.Physical)
		hosted := run(distsys.KernelHosted)
		mismatches = 0
		for _, comp := range []string{"lois", "hank", "auth", "fs", "ps"} {
			if ok, _ := distsys.PerPortTracesEqual(phys.Fabric, hosted.Fabric, comp); !ok {
				mismatches++
			}
		}
	}
	b.ReportMetric(float64(mismatches), "distinguishable-components")
}

// BenchmarkE8ConditionChecking — paper §4/Appendix: the six conditions (plus
// the scheduling extension) catch every planted kernel leak and pass the
// honest kernel.
func BenchmarkE8ConditionChecking(b *testing.B) {
	var caught, expected int
	for i := 0; i < b.N; i++ {
		caught, expected = 0, 0
		for _, l := range kernel.AllLeaks() {
			expected++
			sys, err := verifysys.Build(verifysys.ProbeFor(l), l, true)
			if err != nil {
				b.Fatal(err)
			}
			res := separability.CheckRandomized(sys, separability.Options{
				Trials: 10, StepsPerTrial: 100, Seed: 99,
				CheckScheduling: l.SchedulerSnoop,
			})
			if !res.Passed() {
				caught++
			}
		}
		// The honest kernel must pass under the same budget.
		sys, err := verifysys.Build(verifysys.ProbePlain, kernel.Leaks{}, true)
		if err != nil {
			b.Fatal(err)
		}
		res := separability.CheckRandomized(sys, separability.Options{
			Trials: 10, StepsPerTrial: 100, Seed: 99, CheckScheduling: true,
		})
		if !res.Passed() {
			b.Fatalf("honest kernel failed: %s", res.Summary())
		}
	}
	b.ReportMetric(float64(caught), "leaks-caught")
	b.ReportMetric(float64(expected), "leaks-planted")
}

// BenchmarkE8ConditionCheckingParallel — the E8 workload with trials
// sharded across worker goroutines, each checking a private replica of the
// kernel system. Reports the serial/parallel wall-clock ratio as speedup-x
// (bounded by the host's core count — on a single-core host it is ~1.0)
// and asserts the two engines produce byte-identical summaries.
func BenchmarkE8ConditionCheckingParallel(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	opt := separability.Options{
		Trials: 16, StepsPerTrial: 100, Seed: 99, CheckScheduling: true,
	}
	check := func(workers int) (*separability.Result, time.Duration) {
		sys, err := verifysys.Build(verifysys.ProbePlain, kernel.Leaks{}, true)
		if err != nil {
			b.Fatal(err)
		}
		o := opt
		o.Workers = workers
		start := time.Now()
		res := separability.CheckRandomized(sys, o)
		return res, time.Since(start)
	}
	var serial, parallel time.Duration
	for i := 0; i < b.N; i++ {
		sRes, sDur := check(1)
		pRes, pDur := check(workers)
		serial += sDur
		parallel += pDur
		if sRes.Summary() != pRes.Summary() {
			b.Fatalf("parallel summary diverged from serial:\n  %s\n  %s",
				sRes.Summary(), pRes.Summary())
		}
	}
	b.ReportMetric(float64(workers), "workers")
	if parallel > 0 {
		b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup-x")
	}
}

// BenchmarkE9KernelOverhead — paper §3: running the distributed system on
// one processor via a separation kernel is cost-effective. We measure the
// interpreter's instruction rate bare vs. under SUE-Go, and the cost of a
// SWAP.
func BenchmarkE9KernelOverhead(b *testing.B) {
	b.Run("native-SM11", func(b *testing.B) {
		m := machine.New(0x1000)
		// A pure compute loop in kernel mode, no supervisor.
		img := mustImage(b, `
			.org 0x100
		loop:
			ADD #1, R2
			SUB #1, R3
			BR loop
		`)
		m.LoadImage(img.Org, img.Words)
		m.SetPC(img.Org)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Step()
		}
		b.ReportMetric(1, "instr/step")
	})
	b.Run("native-SM11-interpreted", func(b *testing.B) {
		m := machine.New(0x1000)
		m.SetTranslation(false)
		img := mustImage(b, `
			.org 0x100
		loop:
			ADD #1, R2
			SUB #1, R3
			BR loop
		`)
		m.LoadImage(img.Org, img.Words)
		m.SetPC(img.Org)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.Step()
		}
		b.ReportMetric(1, "instr/step")
	})
	b.Run("under-kernel", func(b *testing.B) {
		sys := core.NewBuilder().
			RegimeSized("a", `
				.org 0x40
			start:
				ADD #1, R2
				SUB #1, R3
				BR start
			`, 0x200).
			MustBuild()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Kernel.Step()
		}
	})
	b.Run("under-kernel-interpreted", func(b *testing.B) {
		sys := core.NewBuilder().
			NoTranslate().
			RegimeSized("a", `
				.org 0x40
			start:
				ADD #1, R2
				SUB #1, R3
				BR start
			`, 0x200).
			MustBuild()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Kernel.Step()
		}
	})
	b.Run("swap-cost", func(b *testing.B) {
		sys := core.NewBuilder().
			RegimeSized("a", swapLoop, 0x200).
			RegimeSized("b", swapLoop, 0x200).
			MustBuild()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Kernel.Step()
		}
		st := sys.Stats()
		if st.Swaps > 0 {
			b.ReportMetric(float64(uint64(b.N))/float64(st.Swaps), "cycles/swap")
		}
	})
}

// BenchmarkE11TracingOverhead — the observability contract (see
// internal/obs): hooks are nil-guarded branches outside the modelled
// state, so an untraced kernel pays (almost) nothing and even a live ring
// sink stays cheap. Sub-benchmarks step the same two-regime syscall-heavy
// workload with no tracer, the no-op tracer, and a ring sink.
func BenchmarkE11TracingOverhead(b *testing.B) {
	build := func() *core.System {
		return core.NewBuilder().
			RegimeSized("a", swapLoop, 0x200).
			RegimeSized("b", swapLoop, 0x200).
			MustBuild()
	}
	run := func(b *testing.B, tr obs.Tracer) {
		sys := build()
		if tr != nil {
			sys.SetTracer(tr)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sys.Kernel.Step()
		}
	}
	b.Run("untraced", func(b *testing.B) { run(b, nil) })
	b.Run("nop", func(b *testing.B) { run(b, obs.Nop{}) })
	b.Run("ring", func(b *testing.B) { run(b, obs.NewRing(4096)) })
}

// BenchmarkE13DeltaSnapshot — the delta-snapshot optimisation: the same
// randomized condition-checking workload over the kernel system, once
// through the legacy full Save/Restore path (the adapter's Checkpointer
// hidden behind a noCheckpoint wrapper) and once through the O(dirty)
// Checkpoint/Rollback path. B/op is the proxy for bytes copied per checked
// state; the acceptance bar is a ≥3× reduction. Both paths must agree on
// the verifier's verdict byte-for-byte — asserted here, and in depth by
// TestDeltaPathMatchesFullSnapshots.
func BenchmarkE13DeltaSnapshot(b *testing.B) {
	opt := separability.Options{
		Trials: 2, StepsPerTrial: 30, Seed: 7, Workers: 1,
	}
	run := func(b *testing.B, hideCheckpointer bool) string {
		sys, err := verifysys.Build(verifysys.ProbePlain, kernel.Leaks{}, true)
		if err != nil {
			b.Fatal(err)
		}
		var p model.Perturbable = sys
		if hideCheckpointer {
			p = noCheckpoint{sys}
		}
		var sum string
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			sum = separability.CheckRandomized(p, opt).Summary()
		}
		return sum
	}
	var full, delta string
	b.Run("full-snapshot", func(b *testing.B) { full = run(b, true) })
	b.Run("delta", func(b *testing.B) { delta = run(b, false) })
	if full != delta {
		b.Fatalf("verdicts diverged:\n full:  %s\n delta: %s", full, delta)
	}

	// The digest micro-benchmark: Φ digest lookup under an active delta
	// (incremental cache hit) vs. rendering the abstraction and hashing it
	// (the FNV oracle the cache must agree with).
	sys, err := verifysys.Build(verifysys.ProbePlain, kernel.Leaks{}, true)
	if err != nil {
		b.Fatal(err)
	}
	colours := sys.Colours()
	b.Run("digest-oracle", func(b *testing.B) {
		var d uint64
		for i := 0; i < b.N; i++ {
			d = model.DigestString(sys.Abstract(colours[i%len(colours)]))
		}
		_ = d
	})
	b.Run("digest-cached", func(b *testing.B) {
		cp := sys.Checkpoint()
		if cp == nil {
			b.Fatal("Checkpoint unavailable")
		}
		defer sys.Release(cp)
		for _, c := range colours { // warm the per-colour entries
			sys.AbstractDigest(c)
		}
		var d uint64
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			d = sys.AbstractDigest(colours[i%len(colours)])
		}
		_ = d
	})
}

const swapLoop = `
	.org 0x40
start:
	TRAP #SWAP
	BR start
`

func mustImage(b *testing.B, src string) *asm.Image {
	b.Helper()
	im, err := asm.Assemble(src)
	if err != nil {
		b.Fatal(err)
	}
	return im
}

// BenchmarkE18ShardedExhaustive — fleet-style scale-out of the exhaustive
// MiniSUE proof (E10's scaling story at process granularity): the chunked
// state space is cut into N shards, each swept by an independent checker
// instance on its own system — the in-process analogue of N
// `sepverify -exhaustive -shard k/n` worker processes — and the shard
// results merged. The merged verdict must be byte-identical to the
// unsharded single-threaded sweep. units/s counts check units (one state's
// op pass or one input pass); speedup-x is wall clock versus the serial
// run measured on the same host, so on a single-core CI box it is ~1.0 for
// every shard count, exactly as E10 found for goroutine workers. B/op per
// sweep carries the lead-table memory diet: resident precompute is
// O(Φ-collision buckets), not O(state space).
func BenchmarkE18ShardedExhaustive(b *testing.B) {
	build := func() model.Enumerable { return minisue.New(minisue.Secure) }
	probe := build()
	states, inputs := 0, 0
	probe.EnumerateStates(func(model.StateRef) bool { states++; return true })
	probe.EnumerateInputs(func(model.Input) bool { inputs++; return true })
	units := float64(states * (1 + inputs))

	start := time.Now()
	serial := separability.CheckExhaustiveWorkers(build(), 8, 1)
	serialDur := time.Since(start)
	want := serial.Summary()

	for _, shards := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("shards=%d", shards), func(b *testing.B) {
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				srs := make([]*separability.ShardResult, shards)
				errs := make([]error, shards)
				var wg sync.WaitGroup
				for k := 0; k < shards; k++ {
					wg.Add(1)
					go func(k int) {
						defer wg.Done()
						srs[k], errs[k] = separability.CheckExhaustiveShard(build(),
							separability.ExhaustiveOptions{
								MaxViolations: 8, Workers: 1, Shard: k, Shards: shards,
							})
					}(k)
				}
				wg.Wait()
				for k, err := range errs {
					if err != nil {
						b.Fatalf("shard %d: %v", k, err)
					}
				}
				res, err := separability.MergeShards(srs)
				if err != nil {
					b.Fatal(err)
				}
				if res.Summary() != want {
					b.Fatalf("merged verdict diverged from serial:\n  %s\n  %s",
						res.Summary(), want)
				}
			}
			perOp := b.Elapsed().Seconds() / float64(b.N)
			if perOp > 0 {
				b.ReportMetric(units/perOp, "units/s")
				b.ReportMetric(serialDur.Seconds()/perOp, "speedup-x")
			}
		})
	}
}
