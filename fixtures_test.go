package repro

// Fixture tests: the sample programs in programs/ and specifications in
// specs/ that the README and tool help point users at must keep
// assembling, parsing and behaving.

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/core"
	"repro/internal/ifa"
	"repro/internal/kernel"
	"repro/internal/machine"
)

func TestSampleProgramsAssemble(t *testing.T) {
	entries, err := os.ReadDir("programs")
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".s") {
			continue
		}
		n++
		src, err := os.ReadFile(filepath.Join("programs", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := asm.Assemble(kernel.Prelude + string(src)); err != nil {
			t.Errorf("programs/%s does not assemble: %v", e.Name(), err)
		}
	}
	if n < 3 {
		t.Errorf("only %d sample programs found", n)
	}
}

func TestSampleSpecsParse(t *testing.T) {
	entries, err := os.ReadDir("specs")
	if err != nil {
		t.Fatal(err)
	}
	verdicts := map[string]bool{
		"swap.ifa":          false, // rejected, per the paper
		"guard.ifa":         false, // HIGH->LOW needs the officer
		"censor_strict.ifa": true,  // the provably flow-free censor
	}
	for _, e := range entries {
		if !strings.HasSuffix(e.Name(), ".ifa") {
			continue
		}
		src, err := os.ReadFile(filepath.Join("specs", e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		prog, err := ifa.Parse(string(src))
		if err != nil {
			t.Errorf("specs/%s does not parse: %v", e.Name(), err)
			continue
		}
		lattice := ifa.Lattice(ifa.TwoPoint())
		if e.Name() == "swap.ifa" {
			lattice = ifa.Isolation("RED", "BLACK")
		}
		rep := ifa.Certify(prog, lattice)
		want, known := verdicts[e.Name()]
		if !known {
			t.Errorf("specs/%s has no expected verdict in this test", e.Name())
			continue
		}
		if rep.Certified() != want {
			t.Errorf("specs/%s certified=%v, want %v (%s)",
				e.Name(), rep.Certified(), want, rep.Summary())
		}
	}
}

func TestSampleProgramsRun(t *testing.T) {
	read := func(name string) string {
		src, err := os.ReadFile(filepath.Join("programs", name))
		if err != nil {
			t.Fatal(err)
		}
		return string(src)
	}

	t.Run("counter", func(t *testing.T) {
		sys := core.NewBuilder().
			RegimeSized("a", read("counter.s"), 0x200).
			RegimeSized("b", read("counter.s"), 0x200).
			MustBuild()
		sys.Run(2000)
		for _, name := range []string{"a", "b"} {
			if v, _ := sys.RegimeWord(name, 0x20); v < 10 {
				t.Errorf("%s counted only %d", name, v)
			}
		}
	})

	t.Run("echo", func(t *testing.T) {
		tty := machine.NewTTY("tty0", 2)
		sys := core.NewBuilder().
			RegimeSized("io", read("echo.s"), 0x200, tty).
			RegimeSized("bg", read("counter.s"), 0x200).
			MustBuild()
		tty.InjectString("hi")
		sys.Run(20000)
		if got := tty.OutputString(); got != "hi" {
			t.Errorf("echo = %q", got)
		}
	})

	t.Run("chanpair", func(t *testing.T) {
		sys := core.NewBuilder().
			RegimeSized("r0", read("chanpair.s"), 0x200).
			RegimeSized("r1", read("chanpair.s"), 0x200).
			Channel("r0", "r1", 16).
			Channel("r1", "r0", 16).
			MustBuild()
		sys.Run(5000)
		for _, name := range []string{"r0", "r1"} {
			if v, _ := sys.RegimeWord(name, 0x20); v == 0 {
				t.Errorf("%s never saw its peer's counter", name)
			}
		}
	})
}
