package machine

import (
	"fmt"

	"repro/internal/obs"
)

// Machine is one SM11 computer: CPU, RAM, MMU, and attached devices.
// All mutation happens through Step (and the explicit load/poke helpers used
// by bootstrap code), so a Machine is a deterministic state machine: given
// equal Snapshots and equal device stimuli, two Machines evolve identically.
// That determinism is what the separability checker (package separability)
// relies on.
type Machine struct {
	ramWords int
	ram      []Word

	regs  [8]Word // R0..R5, SP (current mode's), PC
	altSP Word    // the inactive mode's stack pointer
	psw   Word

	mmu mmu

	halted   bool
	waiting  bool
	trapCode Word // code field of the most recent TRAP instruction

	devices []Device
	devBase []Word
	devVec  []Word
	// devVer counts (potential) mutations per device; see DeviceVersion.
	devVer []uint64

	// Delta-snapshot write-barrier state (see delta.go). dirtyMark/dirtyEpoch
	// implement O(1)-reset first-touch dedup for the active delta's undo log.
	delta      *Delta
	dirtyMark  []uint32
	dirtyEpoch uint32
	deltaGen   uint64

	// Translation-cache state (see translate.go). tc is HOST state only:
	// Snapshot/Restore and every Φ rendering ignore it (lint-enforced).
	// mapGen advances on any MMU mapping change so cached user-mode
	// dispatch can revalidate in one compare.
	tc          *tcache
	noTranslate bool
	mapGen      uint64

	cycles uint64

	tracer func(TraceEntry)
	// events receives typed device-phase observations (obs.EvIRQRaise when
	// a device's interrupt line goes pending during TickDevices). Like
	// tracer it lives outside the modelled state: Snapshot/Restore ignore
	// it and no Φ rendering consults it.
	events obs.Tracer

	// Fault is set when the machine halts abnormally (kernel-mode bus
	// error, double fault, illegal opcode in kernel mode).
	Fault error
}

// DefaultRAMWords is the standard RAM size: everything below the I/O page.
const DefaultRAMWords = int(IOBase)

// New creates a machine with ramWords words of RAM (at most IOBase).
func New(ramWords int) *Machine {
	if ramWords <= 0 || ramWords > int(IOBase) {
		ramWords = DefaultRAMWords
	}
	m := &Machine{
		ramWords: ramWords,
		ram:      make([]Word, ramWords),
	}
	m.Reset()
	return m
}

// Reset returns the CPU, MMU and all devices to their power-on state.
// RAM contents are preserved (use ClearRAM for a cold boot).
func (m *Machine) Reset() {
	m.regs = [8]Word{}
	m.altSP = 0
	m.psw = WithPriority(0, 7) // kernel mode, all interrupts masked
	m.mmu.reset()
	m.mapGen++
	m.halted = false
	m.waiting = false
	m.trapCode = 0
	m.cycles = 0
	m.Fault = nil
	for i, d := range m.devices {
		m.touchDevice(i)
		d.Reset()
	}
}

// ClearRAM zeroes all of RAM.
func (m *Machine) ClearRAM() {
	if m.delta != nil {
		for i := range m.ram {
			if m.ram[i] != 0 {
				m.writeRAM(Word(i), 0)
			}
		}
		return
	}
	m.flushTC()
	for i := range m.ram {
		m.ram[i] = 0
	}
}

// Attach adds a device to the bus, assigning it a register block and an
// interrupt vector. Devices must be attached before the machine runs and
// in a deterministic order.
func (m *Machine) Attach(d Device) Handle {
	base := IODevBase
	if n := len(m.devices); n > 0 {
		prev := m.devBase[n-1]
		sz := Word(m.devices[n-1].Size())
		base = (prev + sz + 7) &^ 7
	}
	vec := VecDevBase + Word(len(m.devices))*2
	m.devices = append(m.devices, d)
	m.devBase = append(m.devBase, base)
	m.devVec = append(m.devVec, vec)
	m.devVer = append(m.devVer, 0)
	d.Reset()
	return Handle{Base: base, Vector: vec}
}

// Devices returns the attached devices in bus order.
func (m *Machine) Devices() []Device { return m.devices }

// DeviceHandle returns the bus handle for an attached device.
func (m *Machine) DeviceHandle(d Device) (Handle, bool) {
	for i, dd := range m.devices {
		if dd == d {
			return Handle{Base: m.devBase[i], Vector: m.devVec[i]}, true
		}
	}
	return Handle{}, false
}

// --- accessors used by supervisors (the separation kernel) and tests ---

// Reg returns general register n of the current mode.
func (m *Machine) Reg(n int) Word { return m.regs[n&7] }

// SetReg sets general register n.
func (m *Machine) SetReg(n int, v Word) { m.regs[n&7] = v }

// AltSP returns the stack pointer of the inactive mode.
func (m *Machine) AltSP() Word { return m.altSP }

// SetAltSP sets the inactive mode's stack pointer.
func (m *Machine) SetAltSP(v Word) { m.altSP = v }

// PC returns the program counter.
func (m *Machine) PC() Word { return m.regs[RegPC] }

// SetPC sets the program counter.
func (m *Machine) SetPC(v Word) { m.regs[RegPC] = v }

// PSW returns the processor status word.
func (m *Machine) PSW() Word { return m.psw }

// SetPSW sets the PSW directly, swapping stack-pointer banks if the mode
// bit changes. This is a supervisor back door used by Go-level kernels.
func (m *Machine) SetPSW(v Word) {
	if IsUser(m.psw) != IsUser(v) {
		m.regs[RegSP], m.altSP = m.altSP, m.regs[RegSP]
	}
	m.psw = v
}

// TrapCode returns the 10-bit code of the most recent TRAP instruction.
func (m *Machine) TrapCode() Word { return m.trapCode }

// Halted reports whether the CPU has stopped.
func (m *Machine) Halted() bool { return m.halted }

// Waiting reports whether the CPU is idling for an interrupt.
func (m *Machine) Waiting() bool { return m.waiting }

// ClearWaiting releases a WAIT state; supervisors use it when they switch
// contexts by writing machine state directly rather than via an interrupt.
func (m *Machine) ClearWaiting() { m.waiting = false }

// Cycles returns the number of Steps executed since Reset.
func (m *Machine) Cycles() uint64 { return m.cycles }

// RAMWords returns the installed RAM size in words.
func (m *Machine) RAMWords() int { return m.ramWords }

// MMU register access for supervisors.

// SegBase returns user segment i's physical base register.
func (m *Machine) SegBase(i int) Word { return m.mmu.Base[i&15] }

// SegCtl returns user segment i's control register.
func (m *Machine) SegCtl(i int) Word { return m.mmu.Ctl[i&15] }

// SetSeg programs user segment i.
func (m *Machine) SetSeg(i int, base, ctl Word) {
	m.mmu.Base[i&15] = base
	m.mmu.Ctl[i&15] = ctl
	m.mapGen++
}

// MMUAbort returns the latched abort reason and virtual address.
func (m *Machine) MMUAbort() (reason, vaddr Word) {
	return m.mmu.AbortReason, m.mmu.AbortVaddr
}

// ReadPhys reads physical address a (RAM or I/O) without translation.
func (m *Machine) ReadPhys(a Word) Word {
	v, _ := m.physRead(a)
	return v
}

// WritePhys writes physical address a without translation.
func (m *Machine) WritePhys(a Word, v Word) {
	m.physWrite(a, v)
}

// LoadImage copies words into RAM starting at physical address org.
func (m *Machine) LoadImage(org Word, words []Word) error {
	if int(org)+len(words) > m.ramWords {
		return fmt.Errorf("machine: image %d words at %#x exceeds RAM", len(words), org)
	}
	if m.delta != nil {
		for i, w := range words {
			m.writeRAM(org+Word(i), w)
		}
		return nil
	}
	m.flushTC()
	copy(m.ram[org:], words)
	return nil
}

// SetVector installs [pc, psw] at trap/interrupt vector vec.
func (m *Machine) SetVector(vec, pc, psw Word) {
	m.writeRAM(vec, pc)
	m.writeRAM(vec+1, psw)
}

// --- physical memory and I/O dispatch ---

func (m *Machine) physRead(a Word) (Word, bool) {
	if int(a) < m.ramWords {
		return m.ram[a], true
	}
	if a >= IOBase {
		return m.ioRead(a)
	}
	return 0, false
}

func (m *Machine) physWrite(a Word, v Word) bool {
	if int(a) < m.ramWords {
		m.writeRAM(a, v)
		return true
	}
	if a >= IOBase {
		return m.ioWrite(a, v)
	}
	return false
}

func (m *Machine) ioRead(a Word) (Word, bool) {
	switch {
	case a >= IOSegBase && a < IOSegBase+NumSegments:
		return m.mmu.Base[a-IOSegBase], true
	case a >= IOSegCtl && a < IOSegCtl+NumSegments:
		return m.mmu.Ctl[a-IOSegCtl], true
	case a == IOMMUStat:
		return m.mmu.AbortReason, true
	case a == IOMMUAddr:
		return m.mmu.AbortVaddr, true
	}
	for i, d := range m.devices {
		base := m.devBase[i]
		if a >= base && int(a-base) < d.Size() {
			// Some device registers have read side effects (a TTY read
			// consumes the pending character), so a register read counts as
			// a device mutation for delta tracking.
			m.touchDevice(i)
			return d.ReadReg(int(a - base)), true
		}
	}
	return 0, false
}

func (m *Machine) ioWrite(a Word, v Word) bool {
	switch {
	case a >= IOSegBase && a < IOSegBase+NumSegments:
		m.mmu.Base[a-IOSegBase] = v
		m.mapGen++
		return true
	case a >= IOSegCtl && a < IOSegCtl+NumSegments:
		m.mmu.Ctl[a-IOSegCtl] = v
		m.mapGen++
		return true
	case a == IOMMUStat:
		m.mmu.AbortReason = v
		return true
	case a == IOMMUAddr:
		m.mmu.AbortVaddr = v
		return true
	}
	for i, d := range m.devices {
		base := m.devBase[i]
		if a >= base && int(a-base) < d.Size() {
			m.touchDevice(i)
			d.WriteReg(int(a-base), v)
			return true
		}
	}
	return false
}

// --- virtual memory access (instruction's view) ---

// memRead reads through the MMU in user mode, physically in kernel mode.
// A false result means a fault was raised (trap already dispatched in user
// mode; machine halted in kernel mode).
func (m *Machine) memRead(vaddr Word) (Word, bool) {
	if IsUser(m.psw) {
		pa, ok := m.mmu.translate(vaddr, false)
		if !ok {
			m.trap(VecMMU)
			return 0, false
		}
		v, ok := m.physRead(pa)
		if !ok {
			m.mmu.AbortReason, m.mmu.AbortVaddr = MMUBusTimeout, vaddr
			m.trap(VecMMU)
			return 0, false
		}
		return v, true
	}
	v, ok := m.physRead(vaddr)
	if !ok {
		m.machineCheck(fmt.Errorf("kernel-mode bus timeout reading %#x", vaddr))
		return 0, false
	}
	return v, true
}

func (m *Machine) memWrite(vaddr Word, v Word) bool {
	if IsUser(m.psw) {
		pa, ok := m.mmu.translate(vaddr, true)
		if !ok {
			m.trap(VecMMU)
			return false
		}
		if !m.physWrite(pa, v) {
			m.mmu.AbortReason, m.mmu.AbortVaddr = MMUBusTimeout, vaddr
			m.trap(VecMMU)
			return false
		}
		return true
	}
	if !m.physWrite(vaddr, v) {
		m.machineCheck(fmt.Errorf("kernel-mode bus timeout writing %#x", vaddr))
		return false
	}
	return true
}

// machineCheck halts the machine with a fault; kernel-mode errors are bugs
// in the supervisor, not conditions to limp past.
func (m *Machine) machineCheck(err error) {
	m.halted = true
	if m.Fault == nil {
		m.Fault = err
	}
}

// --- interrupt and trap sequencing ---

// trap performs the hardware trap sequence: switch to kernel mode, push the
// old PSW and PC on the kernel stack, and load PC/PSW from the vector.
func (m *Machine) trap(vec Word) {
	oldPSW, oldPC := m.psw, m.regs[RegPC]
	if IsUser(m.psw) {
		// Enter kernel mode: bank-switch the stack pointer.
		m.regs[RegSP], m.altSP = m.altSP, m.regs[RegSP]
		m.psw &^= PSWUser
	}
	push := func(v Word) bool {
		m.regs[RegSP]--
		if int(m.regs[RegSP]) >= m.ramWords {
			m.machineCheck(fmt.Errorf("trap stack push outside RAM at %#x", m.regs[RegSP]))
			return false
		}
		m.writeRAM(m.regs[RegSP], v)
		return true
	}
	if !push(oldPSW) || !push(oldPC) {
		return
	}
	if int(vec)+1 >= m.ramWords {
		m.machineCheck(fmt.Errorf("trap vector %#x outside RAM", vec))
		return
	}
	newPC, newPSW := m.ram[vec], m.ram[vec+1]
	m.regs[RegPC] = newPC
	// The new PSW from the vector always selects kernel mode.
	m.psw = newPSW &^ PSWUser
	m.waiting = false
}

// highestPending returns the index of the pending device with the highest
// priority exceeding the current PSW priority.
func (m *Machine) highestPending() (int, bool) {
	best, bestPrio := -1, PSWPriority(m.psw)
	for i, d := range m.devices {
		if d.Pending() && d.Priority() > bestPrio {
			best, bestPrio = i, d.Priority()
		}
	}
	return best, best >= 0
}

// TickDevices advances every attached device by one cycle. In the model of
// the paper's Appendix this is (together with input injection) the INPUT
// phase of a time step: all I/O device activity happens here.
func (m *Machine) TickDevices() {
	if m.events == nil {
		for i, d := range m.devices {
			m.touchDevice(i)
			d.Tick()
		}
		return
	}
	for i, d := range m.devices {
		was := d.Pending()
		m.touchDevice(i)
		d.Tick()
		if !was && d.Pending() {
			m.events.Emit(obs.Event{Cycle: m.cycles, Kind: obs.EvIRQRaise,
				Regime: -1, Arg: i, Name: d.Name()})
		}
	}
}

// SetEventTracer installs (or, with nil, removes) an observer for the
// machine's device phase: it receives an obs.EvIRQRaise event whenever a
// device tick raises that device's interrupt line. The hook is
// observational only — Pending() is side-effect-free — and costs one nil
// check per TickDevices when disabled.
func (m *Machine) SetEventTracer(t obs.Tracer) { m.events = t }

// InterruptPending reports whether a device interrupt would be dispatched
// by the next StepCPU.
func (m *Machine) InterruptPending() bool {
	_, ok := m.highestPending()
	return ok
}

// PendingDevice returns the index of the device whose interrupt the next
// StepCPU would dispatch, or ok=false if none.
func (m *Machine) PendingDevice() (int, bool) {
	return m.highestPending()
}

// StepCPU performs the CPU half of a cycle: dispatch a pending interrupt if
// one outranks the current priority, otherwise execute one instruction.
func (m *Machine) StepCPU() {
	if m.halted {
		return
	}
	m.stepCPU()
}

// stepCPU is StepCPU without the halted guard, for callers (Step, Run)
// that have already checked it this cycle.
func (m *Machine) stepCPU() {
	m.cycles++
	// The len guard saves a call per step on device-less machines; the
	// scan itself is unavoidable with devices attached.
	if len(m.devices) > 0 {
		if i, ok := m.highestPending(); ok {
			m.touchDevice(i)
			m.devices[i].Ack()
			m.trap(m.devVec[i])
			return
		}
	}
	if m.waiting {
		return
	}
	if m.tracer != nil {
		m.traceCurrent()
	}
	if t := m.tc; t != nil {
		// Translation-cache cursor fast path, inlined here because the
		// call boundary itself is measurable at this frequency: the
		// expected straight-line successor, validated by one fused
		// PC+mode compare plus the mapping generation (translate.go).
		if b := t.cur; b != nil {
			key := cursorKey(m.regs[RegPC], m.psw)
			if key == t.curKey && t.curMapGen == m.mapGen {
				t.stats.Hits++
				idx := t.curIdx
				u := &b.ops[idx]
				switch u.kind {
				case tkRegReg2:
					m.regs[RegPC]++
					m.aluToReg(u.op, m.regs[u.srcReg], int(u.dstReg))
				case tkImmReg2:
					m.regs[RegPC] += 2
					m.aluToReg(u.op, u.srcExt, int(u.dstReg))
				default:
					m.execMicro(t, b, idx, t.curBase)
					return
				}
				if idx+1 < len(b.ops) {
					t.curIdx = idx + 1
					t.curKey = key + uint32(u.length)
				} else {
					t.cur = nil
				}
				return
			}
		}
		if m.stepTranslated(t) {
			return
		}
	} else if !m.noTranslate {
		m.tc = newTCache(m.ramWords)
		if m.stepTranslated(m.tc) {
			return
		}
	}
	m.execInstr()
}

// Step advances the machine by one full cycle: devices tick, then either an
// interrupt is dispatched or one instruction executes.
func (m *Machine) Step() {
	if m.halted {
		return
	}
	if len(m.devices) > 0 {
		m.TickDevices()
	}
	m.stepCPU()
}

// Run steps until the machine halts or maxSteps is reached; it returns the
// number of steps taken.
func (m *Machine) Run(maxSteps int) int {
	n := 0
	if len(m.devices) == 0 {
		// With no devices there is nothing to tick and no interrupt to
		// dispatch between instructions, so consecutive fast-kind micro-ops
		// can retire in one batched inner loop (runFast) whenever the
		// translation cursor is hot and no per-instruction tracing is due.
		for !m.halted && n < maxSteps {
			if t := m.tc; t != nil && t.cur != nil && !m.waiting && m.tracer == nil {
				if k := m.runFast(t, maxSteps-n); k > 0 {
					n += k
					continue
				}
			}
			m.stepCPU()
			n++
		}
		return n
	}
	for !m.halted && n < maxSteps {
		m.TickDevices()
		m.stepCPU()
		n++
	}
	return n
}

// --- instruction execution ---

// fetch reads the word at PC and advances PC.
func (m *Machine) fetch() (Word, bool) {
	w, ok := m.memRead(m.regs[RegPC])
	if ok {
		m.regs[RegPC]++
	}
	return w, ok
}

// operand describes a resolved destination: either a register or a memory
// address in the current mode's address space.
type operand struct {
	isReg bool
	reg   int
	addr  Word
}

func (m *Machine) readSrc(spec Word) (Word, bool) {
	mode, reg := SpecMode(spec), SpecReg(spec)
	switch mode {
	case ModeReg:
		return m.regs[reg], true
	case ModeIndirect:
		return m.memRead(m.regs[reg])
	case ModeIndexed:
		ext, ok := m.fetch()
		if !ok {
			return 0, false
		}
		return m.memRead(m.regs[reg] + ext)
	default: // ModeExtended
		ext, ok := m.fetch()
		if !ok {
			return 0, false
		}
		switch reg {
		case RegPC:
			return ext, true // immediate
		case RegSP:
			return m.memRead(ext) // absolute
		}
		m.trap(VecIllegal)
		return 0, false
	}
}

func (m *Machine) resolveDst(spec Word) (operand, bool) {
	mode, reg := SpecMode(spec), SpecReg(spec)
	switch mode {
	case ModeReg:
		return operand{isReg: true, reg: reg}, true
	case ModeIndirect:
		return operand{addr: m.regs[reg]}, true
	case ModeIndexed:
		ext, ok := m.fetch()
		if !ok {
			return operand{}, false
		}
		return operand{addr: m.regs[reg] + ext}, true
	default: // ModeExtended
		ext, ok := m.fetch()
		if !ok {
			return operand{}, false
		}
		if reg == RegSP {
			return operand{addr: ext}, true // absolute
		}
		m.trap(VecIllegal)
		return operand{}, false
	}
}

func (m *Machine) readOperand(o operand) (Word, bool) {
	if o.isReg {
		return m.regs[o.reg], true
	}
	return m.memRead(o.addr)
}

func (m *Machine) writeOperand(o operand, v Word) bool {
	if o.isReg {
		m.regs[o.reg] = v
		return true
	}
	return m.memWrite(o.addr, v)
}

func (m *Machine) setCC(cc Word) {
	m.psw = m.psw&^pswCCMask | cc&pswCCMask
}

func (m *Machine) push(v Word) bool {
	m.regs[RegSP]--
	return m.memWrite(m.regs[RegSP], v)
}

func (m *Machine) pop() (Word, bool) {
	v, ok := m.memRead(m.regs[RegSP])
	if ok {
		m.regs[RegSP]++
	}
	return v, ok
}

// privileged raises an illegal-instruction trap when executed in user mode
// and reports whether execution may proceed.
func (m *Machine) privileged() bool {
	if IsUser(m.psw) {
		m.trap(VecIllegal)
		return false
	}
	return true
}

func (m *Machine) execInstr() {
	w, ok := m.fetch()
	if !ok {
		return
	}
	op := DecodeOp(w)

	if IsBranch(op) {
		m.execBranch(op, w)
		return
	}

	switch op {
	case OpHALT:
		if m.privileged() {
			m.halted = true
		}
	case OpNOP:
	case OpWAIT:
		if m.privileged() {
			m.waiting = true
		}
	case OpTRAP:
		m.trapCode = w & 0x3ff
		m.trap(VecTRAP)
	case OpRTI:
		if !m.privileged() {
			return
		}
		pc, ok := m.pop()
		if !ok {
			return
		}
		psw, ok := m.pop()
		if !ok {
			return
		}
		m.regs[RegPC] = pc
		if IsUser(psw) && !IsUser(m.psw) {
			m.regs[RegSP], m.altSP = m.altSP, m.regs[RegSP]
		}
		m.psw = psw
	case OpRTS:
		pc, ok := m.pop()
		if !ok {
			return
		}
		m.regs[RegPC] = pc
	case OpMOV, OpADD, OpSUB, OpCMP, OpAND, OpOR, OpXOR, OpSHL, OpSHR, OpMUL:
		m.execTwoOp(op, w)
	case OpNOT, OpNEG:
		dst, ok := m.resolveDst(w & 0x1f)
		if !ok {
			return
		}
		v, ok := m.readOperand(dst)
		if !ok {
			return
		}
		r, cc := aluUnary(op, v)
		if m.writeOperand(dst, r) {
			m.setCC(cc)
		}
	case OpJMP:
		dst, ok := m.resolveDst(w & 0x1f)
		if !ok {
			return
		}
		if dst.isReg {
			m.regs[RegPC] = m.regs[dst.reg]
		} else {
			m.regs[RegPC] = dst.addr
		}
	case OpJSR:
		dst, ok := m.resolveDst(w & 0x1f)
		if !ok {
			return
		}
		if !m.push(m.regs[RegPC]) {
			return
		}
		if dst.isReg {
			m.regs[RegPC] = m.regs[dst.reg]
		} else {
			m.regs[RegPC] = dst.addr
		}
	case OpPUSH:
		v, ok := m.readSrc(Word((w >> 5) & 0x1f))
		if !ok {
			return
		}
		m.push(v)
	case OpPOP:
		dst, ok := m.resolveDst(w & 0x1f)
		if !ok {
			return
		}
		v, ok := m.pop()
		if !ok {
			return
		}
		m.writeOperand(dst, v)
	case OpMTPS:
		v, ok := m.readSrc(Word((w >> 5) & 0x1f))
		if !ok {
			return
		}
		if IsUser(m.psw) {
			// User mode may only set condition codes.
			m.setCC(v)
			return
		}
		if IsUser(v) && !IsUser(m.psw) {
			m.regs[RegSP], m.altSP = m.altSP, m.regs[RegSP]
		}
		m.psw = v
	case OpMFPS:
		dst, ok := m.resolveDst(w & 0x1f)
		if !ok {
			return
		}
		m.writeOperand(dst, m.psw)
	default:
		m.trap(VecIllegal)
	}
}

func (m *Machine) execBranch(op, w Word) {
	n := m.psw&FlagN != 0
	z := m.psw&FlagZ != 0
	v := m.psw&FlagV != 0
	c := m.psw&FlagC != 0
	var take bool
	switch op {
	case OpBR:
		take = true
	case OpBEQ:
		take = z
	case OpBNE:
		take = !z
	case OpBLT:
		take = n != v
	case OpBGE:
		take = n == v
	case OpBGT:
		take = !z && n == v
	case OpBLE:
		take = z || n != v
	case OpBCS:
		take = c
	case OpBCC:
		take = !c
	case OpBMI:
		take = n
	case OpBPL:
		take = !n
	}
	if take {
		m.regs[RegPC] += Word(BranchOffset(w))
	}
}

func (m *Machine) execTwoOp(op, w Word) {
	src, ok := m.readSrc(Word((w >> 5) & 0x1f))
	if !ok {
		return
	}
	dst, ok := m.resolveDst(w & 0x1f)
	if !ok {
		return
	}
	m.finishTwoOp(op, src, dst)
}

// finishTwoOp completes a two-operand instruction once both operands are
// resolved. It is shared verbatim between the interpreter (execTwoOp) and
// the translation cache (execMicro), so the ALU and condition-code
// semantics of the two dispatch paths cannot drift apart.
func (m *Machine) finishTwoOp(op, src Word, dst operand) {
	if op == OpMOV {
		if m.writeOperand(dst, src) {
			m.setCC(ccNZ(src) | m.psw&FlagC)
		}
		return
	}

	dv, ok := m.readOperand(dst)
	if !ok {
		return
	}
	r, cc, writeBack := alu2(op, src, dv, m.psw&FlagC)
	if writeBack {
		if !m.writeOperand(dst, r) {
			return
		}
	}
	m.setCC(cc)
}

// alu2 computes the result and condition codes of a two-operand ALU
// instruction (everything but MOV). carry is the pre-instruction C flag,
// preserved by the logical ops. writeBack is false for CMP.
func alu2(op, src, dv, carry Word) (r, cc Word, writeBack bool) {
	writeBack = true
	switch op {
	case OpADD:
		sum := uint32(dv) + uint32(src)
		r = Word(sum)
		cc = ccNZ(r)
		if sum > 0xffff {
			cc |= FlagC
		}
		if (dv^r)&(src^r)&0x8000 != 0 {
			cc |= FlagV
		}
	case OpSUB:
		r = dv - src
		cc = ccNZ(r)
		if src > dv {
			cc |= FlagC
		}
		if (dv^src)&(dv^r)&0x8000 != 0 {
			cc |= FlagV
		}
	case OpCMP:
		// Flags from src - dst (PDP-11 convention).
		r = src - dv
		cc = ccNZ(r)
		if dv > src {
			cc |= FlagC
		}
		if (src^dv)&(src^r)&0x8000 != 0 {
			cc |= FlagV
		}
		writeBack = false
	case OpAND:
		r = dv & src
		cc = ccNZ(r) | carry
	case OpOR:
		r = dv | src
		cc = ccNZ(r) | carry
	case OpXOR:
		r = dv ^ src
		cc = ccNZ(r) | carry
	case OpSHL:
		n := src & 15
		r = dv << n
		cc = ccNZ(r)
		if n > 0 && dv&(1<<(16-n)) != 0 {
			cc |= FlagC
		}
	case OpSHR:
		n := src & 15
		r = dv >> n
		cc = ccNZ(r)
		if n > 0 && dv&(1<<(n-1)) != 0 {
			cc |= FlagC
		}
	case OpMUL:
		r = Word(uint32(dv) * uint32(src))
		cc = ccNZ(r)
	}
	return r, cc, writeBack
}

// aluUnary computes the result and condition codes of NOT/NEG.
func aluUnary(op, v Word) (r, cc Word) {
	if op == OpNOT {
		r = ^v
		return r, ccNZ(r)
	}
	r = -v
	cc = ccNZ(r)
	if r != 0 {
		cc |= FlagC
	}
	if r == 0x8000 {
		cc |= FlagV
	}
	return r, cc
}
