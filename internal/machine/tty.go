package machine

// TTY is a serial line: a receiver fed by external input and a transmitter
// whose bytes accumulate in an externally observable output buffer. It is
// the SM11 analogue of a DL11 console interface.
//
// Register map:
//
//	0 RSTAT  bit0 ready (read), bit6 receiver interrupt enable (read/write)
//	1 RDATA  reading consumes the current input word and clears ready
//	2 XSTAT  bit0 ready (read), bit6 transmitter interrupt enable (read/write)
//	3 XDATA  writing queues one word for output
type TTY struct {
	name string

	rxQueue []Word // external input not yet presented
	rxData  Word   // currently presented input word
	rxReady bool
	rxIE    bool
	rxDelay int // ticks until next queued word is presented
	rxRate  int // presentation interval in ticks

	txBusy int // ticks until transmitter is ready again
	txRate int
	txIE   bool
	out    []Word // everything transmitted since reset/drain

	// Interrupt request latches: set on a ready transition (or on enabling
	// interrupts while ready), cleared by Ack. Edge-latching keeps a slow
	// handler from seeing an interrupt storm.
	rxPend bool
	txPend bool

	prio int
}

const (
	ttyStatReady Word = 1 << 0
	ttyStatIE    Word = 1 << 6
)

// NewTTY creates a TTY with the given name. rate is the number of ticks a
// word takes to move through either side of the interface (1 = every tick).
func NewTTY(name string, rate int) *TTY {
	if rate < 1 {
		rate = 1
	}
	return &TTY{name: name, rxRate: rate, txRate: rate, prio: 4}
}

// Replicate implements Replicator.
func (t *TTY) Replicate() Device {
	n := NewTTY(t.name, 1)
	n.rxRate = t.rxRate
	n.txRate = t.txRate
	n.prio = t.prio
	return n
}

// Name implements Device.
func (t *TTY) Name() string { return t.name }

// Size implements Device.
func (t *TTY) Size() int { return 4 }

// Priority implements Device.
func (t *TTY) Priority() int { return t.prio }

// Reset implements Device.
func (t *TTY) Reset() {
	t.rxQueue = nil
	t.rxData = 0
	t.rxReady = false
	t.rxIE = false
	t.rxDelay = 0
	t.txBusy = 0
	t.txIE = false
	t.out = nil
	t.rxPend = false
	t.txPend = false
}

// InjectInput implements InputSink.
func (t *TTY) InjectInput(ws []Word) { t.rxQueue = append(t.rxQueue, ws...) }

// InjectString queues the bytes of s as input words.
func (t *TTY) InjectString(s string) {
	for i := 0; i < len(s); i++ {
		t.rxQueue = append(t.rxQueue, Word(s[i]))
	}
}

// PeekOutput implements OutputSource.
func (t *TTY) PeekOutput() []Word { return append([]Word(nil), t.out...) }

// DrainOutput implements OutputSource.
func (t *TTY) DrainOutput() []Word {
	o := t.out
	t.out = nil
	return o
}

// OutputString renders the accumulated output as a byte string.
func (t *TTY) OutputString() string {
	b := make([]byte, len(t.out))
	for i, w := range t.out {
		b[i] = byte(w)
	}
	return string(b)
}

// ReadReg implements Device.
func (t *TTY) ReadReg(off int) Word {
	switch off {
	case 0:
		var v Word
		if t.rxReady {
			v |= ttyStatReady
		}
		if t.rxIE {
			v |= ttyStatIE
		}
		return v
	case 1:
		t.rxReady = false
		t.rxDelay = t.rxRate
		return t.rxData
	case 2:
		var v Word
		if t.txBusy == 0 {
			v |= ttyStatReady
		}
		if t.txIE {
			v |= ttyStatIE
		}
		return v
	case 3:
		return 0
	}
	return 0
}

// WriteReg implements Device.
func (t *TTY) WriteReg(off int, v Word) {
	switch off {
	case 0:
		was := t.rxIE
		t.rxIE = v&ttyStatIE != 0
		if !was && t.rxIE && t.rxReady {
			t.rxPend = true
		}
	case 2:
		was := t.txIE
		t.txIE = v&ttyStatIE != 0
		if !was && t.txIE && t.txBusy == 0 {
			t.txPend = true
		}
	case 3:
		if t.txBusy == 0 {
			t.out = append(t.out, v)
			t.txBusy = t.txRate
		}
	}
}

// Tick implements Device.
func (t *TTY) Tick() {
	if t.txBusy > 0 {
		t.txBusy--
		if t.txBusy == 0 && t.txIE {
			t.txPend = true
		}
	}
	if !t.rxReady && len(t.rxQueue) > 0 {
		if t.rxDelay > 0 {
			t.rxDelay--
		}
		if t.rxDelay == 0 {
			t.rxData = t.rxQueue[0]
			t.rxQueue = t.rxQueue[1:]
			t.rxReady = true
			if t.rxIE {
				t.rxPend = true
			}
		}
	}
}

// Pending implements Device.
func (t *TTY) Pending() bool { return t.rxPend || t.txPend }

// Ack implements Device: taking the interrupt clears the request latches;
// the handler learns the cause from the status registers.
func (t *TTY) Ack() {
	t.rxPend = false
	t.txPend = false
}

// SnapshotState implements Device.
func (t *TTY) SnapshotState() []Word {
	ws := []Word{
		boolWord(t.rxReady), boolWord(t.rxIE), t.rxData,
		Word(t.rxDelay), Word(t.txBusy), boolWord(t.txIE),
		boolWord(t.rxPend), boolWord(t.txPend),
		Word(len(t.rxQueue)), Word(len(t.out)),
	}
	ws = append(ws, t.rxQueue...)
	ws = append(ws, t.out...)
	return ws
}

// RestoreState implements Device.
func (t *TTY) RestoreState(ws []Word) {
	t.rxReady = ws[0] != 0
	t.rxIE = ws[1] != 0
	t.rxData = ws[2]
	t.rxDelay = int(ws[3])
	t.txBusy = int(ws[4])
	t.txIE = ws[5] != 0
	t.rxPend = ws[6] != 0
	t.txPend = ws[7] != 0
	nq, no := int(ws[8]), int(ws[9])
	t.rxQueue = append([]Word(nil), ws[10:10+nq]...)
	t.out = append([]Word(nil), ws[10+nq:10+nq+no]...)
}
