package machine

// Link endpoints implement the dedicated point-to-point communication lines
// of the paper's distributed designs: a unidirectional word pipe whose two
// ends are devices on (usually different) machines. The pipe itself is part
// of the environment, not of either machine's state — exactly as a physical
// wire would be.

// wire is the shared queue joining a LinkTX to a LinkRX.
type wire struct {
	buf []Word
	cap int
}

// LinkTX is the sending end of a link.
//
// Register map:
//
//	0 STAT  bit0 ready (wire not full), bit6 interrupt enable
//	1 DATA  writing sends one word down the wire
type LinkTX struct {
	name string
	w    *wire
	ie   bool
	pend bool
	wasR bool // ready state at the previous tick, for edge detection
	prio int
}

// LinkRX is the receiving end of a link.
//
// Register map:
//
//	0 STAT  bit0 ready (word available), bit6 interrupt enable
//	1 DATA  reading consumes one word from the wire
type LinkRX struct {
	name string
	w    *wire
	ie   bool
	pend bool
	wasR bool
	prio int
}

// NewLink creates a wire of the given capacity and returns its two ends.
func NewLink(name string, capacity int) (*LinkTX, *LinkRX) {
	if capacity < 1 {
		capacity = 1
	}
	w := &wire{cap: capacity}
	return &LinkTX{name: name + ".tx", w: w, prio: 5},
		&LinkRX{name: name + ".rx", w: w, prio: 5}
}

// --- LinkTX ---

// Name implements Device.
func (l *LinkTX) Name() string { return l.name }

// Size implements Device.
func (l *LinkTX) Size() int { return 2 }

// Priority implements Device.
func (l *LinkTX) Priority() int { return l.prio }

// Reset implements Device. The wire itself is environment state and is not
// cleared here (resetting one machine must not erase in-flight data).
func (l *LinkTX) Reset() { l.ie = false; l.pend = false; l.wasR = false }

// ReadReg implements Device.
func (l *LinkTX) ReadReg(off int) Word {
	if off == 0 {
		var v Word
		if len(l.w.buf) < l.w.cap {
			v |= ttyStatReady
		}
		if l.ie {
			v |= ttyStatIE
		}
		return v
	}
	return 0
}

// WriteReg implements Device.
func (l *LinkTX) WriteReg(off int, v Word) {
	switch off {
	case 0:
		was := l.ie
		l.ie = v&ttyStatIE != 0
		if !was && l.ie && len(l.w.buf) < l.w.cap {
			l.pend = true
		}
	case 1:
		if len(l.w.buf) < l.w.cap {
			l.w.buf = append(l.w.buf, v)
		}
	}
}

// Tick implements Device.
func (l *LinkTX) Tick() {
	ready := len(l.w.buf) < l.w.cap
	if ready && !l.wasR && l.ie {
		l.pend = true
	}
	l.wasR = ready
}

// Pending implements Device.
func (l *LinkTX) Pending() bool { return l.pend }

// Ack implements Device.
func (l *LinkTX) Ack() { l.pend = false }

// SnapshotState implements Device. Only the endpoint latches are machine
// state; wire contents belong to the environment.
func (l *LinkTX) SnapshotState() []Word {
	return []Word{boolWord(l.ie), boolWord(l.pend), boolWord(l.wasR)}
}

// RestoreState implements Device.
func (l *LinkTX) RestoreState(ws []Word) {
	l.ie = ws[0] != 0
	l.pend = ws[1] != 0
	l.wasR = ws[2] != 0
}

// --- LinkRX ---

// Name implements Device.
func (l *LinkRX) Name() string { return l.name }

// Size implements Device.
func (l *LinkRX) Size() int { return 2 }

// Priority implements Device.
func (l *LinkRX) Priority() int { return l.prio }

// Reset implements Device.
func (l *LinkRX) Reset() { l.ie = false; l.pend = false; l.wasR = false }

// ReadReg implements Device.
func (l *LinkRX) ReadReg(off int) Word {
	switch off {
	case 0:
		var v Word
		if len(l.w.buf) > 0 {
			v |= ttyStatReady
		}
		if l.ie {
			v |= ttyStatIE
		}
		return v
	case 1:
		if len(l.w.buf) > 0 {
			v := l.w.buf[0]
			l.w.buf = l.w.buf[1:]
			return v
		}
		return 0
	}
	return 0
}

// WriteReg implements Device.
func (l *LinkRX) WriteReg(off int, v Word) {
	if off == 0 {
		was := l.ie
		l.ie = v&ttyStatIE != 0
		if !was && l.ie && len(l.w.buf) > 0 {
			l.pend = true
		}
	}
}

// Tick implements Device.
func (l *LinkRX) Tick() {
	ready := len(l.w.buf) > 0
	if ready && !l.wasR && l.ie {
		l.pend = true
	}
	l.wasR = ready
}

// Pending implements Device.
func (l *LinkRX) Pending() bool { return l.pend }

// Ack implements Device.
func (l *LinkRX) Ack() { l.pend = false }

// SnapshotState implements Device.
func (l *LinkRX) SnapshotState() []Word {
	return []Word{boolWord(l.ie), boolWord(l.pend), boolWord(l.wasR)}
}

// RestoreState implements Device.
func (l *LinkRX) RestoreState(ws []Word) {
	l.ie = ws[0] != 0
	l.pend = ws[1] != 0
	l.wasR = ws[2] != 0
}
