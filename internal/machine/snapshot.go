package machine

import (
	"bytes"
	"crypto/sha256"
	"encoding/binary"
	"fmt"
)

// Snapshot captures the complete architectural state of a machine: CPU,
// MMU, RAM and every attached device. Two machines with equal snapshots
// and identical future stimuli behave identically.
type Snapshot struct {
	Regs     [8]Word
	AltSP    Word
	PSW      Word
	SegBase  [NumSegments]Word
	SegCtl   [NumSegments]Word
	MMUStat  Word
	MMUAddr  Word
	Halted   bool
	Waiting  bool
	TrapCode Word
	RAM      []Word
	Devices  [][]Word // one entry per attached device, in bus order
}

// Snapshot returns a deep copy of the machine's state.
func (m *Machine) Snapshot() *Snapshot {
	s := &Snapshot{
		Regs:     m.regs,
		AltSP:    m.altSP,
		PSW:      m.psw,
		SegBase:  m.mmu.Base,
		SegCtl:   m.mmu.Ctl,
		MMUStat:  m.mmu.AbortReason,
		MMUAddr:  m.mmu.AbortVaddr,
		Halted:   m.halted,
		Waiting:  m.waiting,
		TrapCode: m.trapCode,
		RAM:      append([]Word(nil), m.ram...),
	}
	for _, d := range m.devices {
		s.Devices = append(s.Devices, d.SnapshotState())
	}
	return s
}

// Restore overwrites the machine's state from a snapshot taken on a machine
// with the same RAM size and device complement.
func (m *Machine) Restore(s *Snapshot) error {
	if len(s.RAM) != m.ramWords {
		return fmt.Errorf("machine: snapshot RAM %d words, machine has %d", len(s.RAM), m.ramWords)
	}
	if len(s.Devices) != len(m.devices) {
		return fmt.Errorf("machine: snapshot has %d devices, machine has %d", len(s.Devices), len(m.devices))
	}
	m.regs = s.Regs
	m.altSP = s.AltSP
	m.psw = s.PSW
	m.mmu.Base = s.SegBase
	m.mmu.Ctl = s.SegCtl
	m.mmu.AbortReason = s.MMUStat
	m.mmu.AbortVaddr = s.MMUAddr
	m.halted = s.Halted
	m.waiting = s.Waiting
	m.trapCode = s.TrapCode
	m.mapGen++
	if m.delta != nil {
		// A full restore under an active delta must journal like any other
		// write, so DeltaRestore can still undo it: diff word-by-word
		// (typically few words differ between checker states) and touch
		// every device.
		for i, v := range s.RAM {
			if m.ram[i] != v {
				m.writeRAM(Word(i), v)
			}
		}
	} else {
		// The bulk copy bypasses the write barrier; drop every translated
		// block rather than diffing.
		m.flushTC()
		copy(m.ram, s.RAM)
	}
	for i, d := range m.devices {
		m.touchDevice(i)
		d.RestoreState(s.Devices[i])
	}
	return nil
}

// Encode serializes the snapshot canonically; equal states produce equal
// encodings.
func (s *Snapshot) Encode() []byte {
	var buf bytes.Buffer
	w := func(v any) { binary.Write(&buf, binary.LittleEndian, v) }
	w(s.Regs[:])
	w(s.AltSP)
	w(s.PSW)
	w(s.SegBase[:])
	w(s.SegCtl[:])
	w(s.MMUStat)
	w(s.MMUAddr)
	w(boolWord(s.Halted))
	w(boolWord(s.Waiting))
	w(s.TrapCode)
	w(s.RAM)
	for _, dv := range s.Devices {
		w(Word(len(dv)))
		w(dv)
	}
	return buf.Bytes()
}

// Hash returns a digest of the canonical encoding.
func (s *Snapshot) Hash() [32]byte { return sha256.Sum256(s.Encode()) }

// Equal reports whether two snapshots are identical.
func (s *Snapshot) Equal(o *Snapshot) bool {
	return bytes.Equal(s.Encode(), o.Encode())
}

// Clone returns a deep copy of the snapshot.
func (s *Snapshot) Clone() *Snapshot {
	c := *s
	c.RAM = append([]Word(nil), s.RAM...)
	c.Devices = nil
	for _, dv := range s.Devices {
		c.Devices = append(c.Devices, append([]Word(nil), dv...))
	}
	return &c
}

func boolWord(b bool) Word {
	if b {
		return 1
	}
	return 0
}
