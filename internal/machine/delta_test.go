package machine_test

import (
	"math/rand"
	"testing"

	"repro/internal/asm"
	"repro/internal/machine"
)

// deltaTestSrc keeps the CPU busy with RAM stores, stack traffic and a TTY
// echo interrupt handler, so random stepping exercises traps, device reads
// with side effects, and device register writes.
const deltaTestSrc = `
	.org 0x100
	MOV #isr, @0x20        ; TTY vector PC
	MOV #0x00E0, @0x21     ; kernel, priority 7 inside ISR
	MOV #0x40, @0xF040     ; enable receiver interrupts
	MTPS #0x0000           ; open interrupts
	MOV #0, R2
loop:
	ADD #1, R2
	MOV R2, @0x800
	PUSH R2
	POP R3
	BR loop
isr:
	MOV @0xF041, R1        ; consume the byte
	MOV R1, @0xF043        ; echo it
	RTI
`

// newDeltaTestMachine builds a machine with a TTY and a clock running the
// echo program.
func newDeltaTestMachine(t testing.TB) (*machine.Machine, *machine.TTY) {
	t.Helper()
	m := machine.New(0x2000)
	tty := machine.NewTTY("tty0", 2)
	m.Attach(tty)
	m.Attach(machine.NewClock("clk0", 3))
	im, err := asm.Assemble(deltaTestSrc)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if err := m.LoadImage(im.Org, im.Words); err != nil {
		t.Fatalf("load: %v", err)
	}
	m.SetPC(im.Org)
	m.SetReg(machine.RegSP, 0x1000)
	return m, tty
}

// mutateMachine applies one random mutation through a public entry point;
// every one of these must be undone exactly by DeltaRestore.
func mutateMachine(m *machine.Machine, tty *machine.TTY, rng *rand.Rand) {
	switch rng.Intn(10) {
	case 0, 1, 2, 3:
		m.Step()
	case 4:
		m.WritePhys(machine.Word(rng.Intn(m.RAMWords())), machine.Word(rng.Uint32()))
	case 5:
		m.TickDevices()
	case 6:
		m.Inject(tty, []machine.Word{machine.Word(rng.Intn(256))})
	case 7:
		m.WritePhys(0xF040+machine.Word(rng.Intn(4)), machine.Word(rng.Uint32()))
	case 8:
		m.ReadPhys(0xF041) // TTY data reads consume the pending byte
	case 9:
		m.SetVector(machine.Word(0x20+rng.Intn(8)), machine.Word(rng.Uint32()),
			machine.Word(rng.Uint32()))
	}
}

// TestDeltaRestoreMatchesFullRestore is the differential property test of
// the tentpole: after arbitrary mutation sequences, DeltaRestore must
// reproduce exactly the state a full Snapshot captured, over many
// checkpoints and repeated rollbacks per checkpoint.
func TestDeltaRestoreMatchesFullRestore(t *testing.T) {
	m, tty := newDeltaTestMachine(t)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 50; i++ {
		m.Step()
	}
	for round := 0; round < 25; round++ {
		ref := m.Snapshot()
		d := m.DeltaSnapshot()
		if d == nil {
			t.Fatal("DeltaSnapshot returned nil with no active delta")
		}
		if m.DeltaSnapshot() != nil {
			t.Fatal("nested DeltaSnapshot should return nil")
		}
		for sub := 0; sub < 4; sub++ {
			n := rng.Intn(60)
			for i := 0; i < n; i++ {
				mutateMachine(m, tty, rng)
			}
			m.DeltaRestore(d)
			if !m.Snapshot().Equal(ref) {
				t.Fatalf("round %d sub %d: delta-restored state differs from full snapshot", round, sub)
			}
		}
		m.EndDelta(d)
		// Mutate outside any delta so each round anchors somewhere new.
		for i := 0; i < 10; i++ {
			mutateMachine(m, tty, rng)
		}
	}
}

// TestDeltaJournalsBulkOperations checks that the bulk mutators degrade to
// journaled writes while a delta is active.
func TestDeltaJournalsBulkOperations(t *testing.T) {
	m, tty := newDeltaTestMachine(t)
	for i := 0; i < 30; i++ {
		m.Step()
	}
	other := m.Snapshot()
	for i := 0; i < 40; i++ {
		m.Step()
	}
	ref := m.Snapshot()

	d := m.DeltaSnapshot()
	m.ClearRAM()
	m.SetVector(0x24, 0x1234, 0x00E0)
	if err := m.LoadImage(0x300, []machine.Word{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if err := m.Restore(other); err != nil {
		t.Fatal(err)
	}
	m.Inject(tty, []machine.Word{0x41})
	m.Reset()
	m.DeltaRestore(d)
	m.EndDelta(d)
	if !m.Snapshot().Equal(ref) {
		t.Fatal("bulk operations under a delta were not fully undone")
	}
}

// TestDeltaDirtyTracking pins the O(dirty) claim: the undo log grows with
// distinct words written, not with RAM size.
func TestDeltaDirtyTracking(t *testing.T) {
	m, _ := newDeltaTestMachine(t)
	d := m.DeltaSnapshot()
	if n := d.DirtyWords(); n != 0 {
		t.Fatalf("fresh delta has %d dirty words", n)
	}
	m.WritePhys(0x800, 1)
	m.WritePhys(0x800, 2) // same word: still one log entry
	m.WritePhys(0x801, 3)
	if n := d.DirtyWords(); n != 2 {
		t.Fatalf("dirty words = %d, want 2", n)
	}
	m.DeltaRestore(d)
	if n := d.DirtyWords(); n != 0 {
		t.Fatalf("dirty words after rollback = %d, want 0", n)
	}
	m.WritePhys(0x800, 9) // must be re-journaled after the rollback
	if n := d.DirtyWords(); n != 1 {
		t.Fatalf("dirty words after re-write = %d, want 1", n)
	}
	m.DeltaRestore(d)
	if got := m.ReadPhys(0x800); got != 0 {
		t.Fatalf("word 0x800 = %#x after rollback, want 0", got)
	}
	m.EndDelta(d)
}

// FuzzDeltaRestore drives the machine with a fuzzer-chosen mutation script
// and asserts DeltaRestore lands exactly on the pre-checkpoint snapshot.
func FuzzDeltaRestore(f *testing.F) {
	f.Add([]byte{0x00, 0x10, 0x20, 0x01, 0x42, 0x99})
	f.Add([]byte("0123456789abcdef"))
	f.Add([]byte{0x05, 0xff, 0xff, 0x03, 0x00, 0x41, 0x06, 0x40, 0x01})
	f.Add([]byte{0x07, 0x00, 0x00, 0x07, 0x01, 0x00, 0x04, 0x08, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		m, tty := newDeltaTestMachine(t)
		for i := 0; i < 20; i++ {
			m.Step()
		}
		ref := m.Snapshot()
		d := m.DeltaSnapshot()
		if d == nil {
			t.Fatal("DeltaSnapshot returned nil")
		}
		for i := 0; i+2 < len(data); i += 3 {
			op, a, v := data[i], data[i+1], data[i+2]
			addr := machine.Word(a) | machine.Word(v)<<8
			switch op % 8 {
			case 0:
				m.Step()
			case 1:
				m.WritePhys(addr%machine.Word(m.RAMWords()), machine.Word(op)*257)
			case 2:
				m.WritePhys(0xF040+machine.Word(a%8), machine.Word(v))
			case 3:
				m.ReadPhys(0xF040 + machine.Word(a%8))
			case 4:
				m.TickDevices()
			case 5:
				m.Inject(tty, []machine.Word{machine.Word(v)})
			case 6:
				m.SetVector(machine.Word(0x20+a%16), machine.Word(v), 0x00E0)
			case 7:
				if a%16 == 0 {
					m.ClearRAM()
				} else {
					m.Step()
				}
			}
		}
		m.DeltaRestore(d)
		m.EndDelta(d)
		if !m.Snapshot().Equal(ref) {
			t.Fatal("delta-restored state differs from pre-checkpoint snapshot")
		}
	})
}
