// Package machine implements SM11, a small PDP-11-flavoured simulated
// computer used as the "concrete machine" of Rushby's separation-kernel
// model. It provides a 16-bit word-addressed CPU with kernel/user modes, a
// segmenting MMU whose control registers are memory mapped, memory-mapped
// device registers, vectored interrupts, and — deliberately, following the
// SUE design — no DMA.
//
// The machine exposes its complete state through Snapshot/Restore so that
// verification tools (package separability) can treat it as the state
// machine of the paper's Appendix model.
package machine

import "fmt"

// Word is the machine's natural unit: SM11 is a 16-bit, word-addressed
// architecture. All addresses are word addresses.
type Word = uint16

// Opcodes. The instruction word layout for two-operand instructions is
//
//	[15:10] opcode  [9:5] src spec  [4:0] dst spec
//
// where an operand spec is mode(2 bits) | register(3 bits). Branch and trap
// instructions instead carry a 10-bit literal in [9:0].
const (
	OpHALT Word = iota // stop the processor (kernel only)
	OpNOP              // no operation
	OpMOV              // dst = src
	OpADD              // dst += src
	OpSUB              // dst -= src
	OpCMP              // flags from src - dst
	OpAND              // dst &= src
	OpOR               // dst |= src
	OpXOR              // dst ^= src
	OpSHL              // dst <<= src (mod 16)
	OpSHR              // dst >>= src (logical, mod 16)
	OpNOT              // dst = ^dst (src ignored; single-operand form)
	OpNEG              // dst = -dst
	OpBR               // unconditional branch
	OpBEQ              // branch if Z
	OpBNE              // branch if !Z
	OpBLT              // branch if N xor V
	OpBGE              // branch if !(N xor V)
	OpBGT              // branch if !Z and !(N xor V)
	OpBLE              // branch if Z or (N xor V)
	OpBCS              // branch if C
	OpBCC              // branch if !C
	OpBMI              // branch if N
	OpBPL              // branch if !N
	OpJMP              // PC = effective address of dst
	OpJSR              // push PC; PC = effective address of dst
	OpRTS              // PC = pop
	OpPUSH             // push src
	OpPOP              // dst = pop
	OpTRAP             // software trap with 10-bit code (vectors to VecTRAP)
	OpRTI              // return from interrupt: pop PC then PSW (kernel only)
	OpWAIT             // idle until interrupt (kernel only)
	OpMTPS             // PSW = src (mode/priority writable in kernel mode only)
	OpMFPS             // dst = PSW
	OpMUL              // dst *= src (low 16 bits)

	opCount // number of defined opcodes
)

// Operand addressing modes (the 2-bit "mode" field of an operand spec).
const (
	ModeReg      = 0 // Rn
	ModeIndirect = 1 // (Rn)
	ModeIndexed  = 2 // disp(Rn); disp in the next instruction word
	ModeExtended = 3 // reg 7: #imm (src only); reg 6: @abs (next word)
)

// Register numbers with architectural meaning.
const (
	RegSP = 6 // stack pointer (banked per mode)
	RegPC = 7 // program counter
)

// Spec packs an addressing mode and register into a 5-bit operand spec.
func Spec(mode, reg int) Word {
	return Word(mode&3)<<3 | Word(reg&7)
}

// SpecMode extracts the addressing mode of a 5-bit operand spec.
func SpecMode(s Word) int { return int(s>>3) & 3 }

// SpecReg extracts the register number of a 5-bit operand spec.
func SpecReg(s Word) int { return int(s) & 7 }

// Enc2 encodes a two-operand instruction.
func Enc2(op, src, dst Word) Word {
	return op<<10 | (src&0x1f)<<5 | dst&0x1f
}

// EncBranch encodes a branch with a signed word offset in [-512, 511].
// The offset is relative to the address of the following instruction.
func EncBranch(op Word, off int) Word {
	return op<<10 | Word(off)&0x3ff
}

// EncTrap encodes a TRAP instruction with a 10-bit service code.
func EncTrap(code Word) Word { return OpTRAP<<10 | code&0x3ff }

// DecodeOp extracts the opcode field of an instruction word.
func DecodeOp(w Word) Word { return w >> 10 }

// BranchOffset sign-extends the 10-bit branch displacement.
func BranchOffset(w Word) int {
	off := int(w & 0x3ff)
	if off >= 512 {
		off -= 1024
	}
	return off
}

// IsBranch reports whether op is one of the PC-relative branch opcodes.
func IsBranch(op Word) bool { return op >= OpBR && op <= OpBPL }

var opNames = [...]string{
	OpHALT: "HALT", OpNOP: "NOP", OpMOV: "MOV", OpADD: "ADD", OpSUB: "SUB",
	OpCMP: "CMP", OpAND: "AND", OpOR: "OR", OpXOR: "XOR", OpSHL: "SHL",
	OpSHR: "SHR", OpNOT: "NOT", OpNEG: "NEG", OpBR: "BR", OpBEQ: "BEQ",
	OpBNE: "BNE", OpBLT: "BLT", OpBGE: "BGE", OpBGT: "BGT", OpBLE: "BLE",
	OpBCS: "BCS", OpBCC: "BCC", OpBMI: "BMI", OpBPL: "BPL", OpJMP: "JMP",
	OpJSR: "JSR", OpRTS: "RTS", OpPUSH: "PUSH", OpPOP: "POP", OpTRAP: "TRAP",
	OpRTI: "RTI", OpWAIT: "WAIT", OpMTPS: "MTPS", OpMFPS: "MFPS", OpMUL: "MUL",
}

// OpName returns the assembler mnemonic for an opcode.
func OpName(op Word) string {
	if int(op) < len(opNames) && opNames[op] != "" {
		return opNames[op]
	}
	return fmt.Sprintf("OP%d", op)
}

// OpByName maps a mnemonic back to its opcode.
func OpByName(name string) (Word, bool) {
	for op, n := range opNames {
		if n == name {
			return Word(op), true
		}
	}
	return 0, false
}

// HasSrc reports whether the opcode uses its source operand field. It is
// the exported face of hasSrc for decoders outside the interpreter (the
// assembler and the static flow analyzer).
func HasSrc(op Word) bool { return hasSrc(op) }

// HasDst reports whether the opcode uses its destination operand field.
func HasDst(op Word) bool { return hasDst(op) }

// SrcSpec extracts the 5-bit source operand spec of a two-operand
// instruction word.
func SrcSpec(w Word) Word { return (w >> 5) & 0x1f }

// DstSpec extracts the 5-bit destination operand spec of a two-operand
// instruction word.
func DstSpec(w Word) Word { return w & 0x1f }

// TrapCodeOf extracts the 10-bit service code of a TRAP instruction word.
func TrapCodeOf(w Word) Word { return w & 0x3ff }

// hasSrc reports whether the opcode uses its source operand field.
func hasSrc(op Word) bool {
	switch op {
	case OpMOV, OpADD, OpSUB, OpCMP, OpAND, OpOR, OpXOR, OpSHL, OpSHR,
		OpPUSH, OpMTPS, OpMUL:
		return true
	}
	return false
}

// hasDst reports whether the opcode uses its destination operand field.
func hasDst(op Word) bool {
	switch op {
	case OpMOV, OpADD, OpSUB, OpCMP, OpAND, OpOR, OpXOR, OpSHL, OpSHR,
		OpNOT, OpNEG, OpJMP, OpJSR, OpPOP, OpMFPS, OpMUL:
		return true
	}
	return false
}

// InstrLen returns the length in words of the instruction starting with w:
// 1 plus one extension word for each operand that needs one.
func InstrLen(w Word) int {
	op := DecodeOp(w)
	if IsBranch(op) || op == OpTRAP {
		return 1
	}
	n := 1
	if hasSrc(op) && specHasExt(Word((w>>5)&0x1f)) {
		n++
	}
	if hasDst(op) && specHasExt(Word(w&0x1f)) {
		n++
	}
	return n
}

// specHasExt reports whether the operand spec consumes an extension word.
func specHasExt(s Word) bool {
	m := SpecMode(s)
	return m == ModeIndexed || m == ModeExtended
}

// Disasm renders the instruction beginning at mem[0] as assembler text and
// reports its length in words. mem must contain at least InstrLen words.
func Disasm(mem []Word) (string, int) {
	w := mem[0]
	op := DecodeOp(w)
	switch {
	case IsBranch(op):
		return fmt.Sprintf("%s %+d", OpName(op), BranchOffset(w)), 1
	case op == OpTRAP:
		return fmt.Sprintf("TRAP #%d", w&0x3ff), 1
	}
	n := 1
	operand := func(s Word) string {
		mode, reg := SpecMode(s), SpecReg(s)
		switch mode {
		case ModeReg:
			return fmt.Sprintf("R%d", reg)
		case ModeIndirect:
			return fmt.Sprintf("(R%d)", reg)
		case ModeIndexed:
			ext := mem[n]
			n++
			return fmt.Sprintf("0x%X(R%d)", ext, reg)
		default: // ModeExtended
			ext := mem[n]
			n++
			switch reg {
			case RegPC:
				return fmt.Sprintf("#0x%X", ext)
			case RegSP:
				return fmt.Sprintf("@0x%X", ext)
			}
			return fmt.Sprintf("?ext(R%d)", reg)
		}
	}
	text := OpName(op)
	if hasSrc(op) {
		text += " " + operand(Word((w>>5)&0x1f))
		if hasDst(op) {
			text += ","
		}
	}
	if hasDst(op) {
		text += " " + operand(Word(w&0x1f))
	}
	return text, n
}
