package machine_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

// Property: MarshalBinary/DecodeSnapshot is a lossless round trip — the
// decoded snapshot is Equal (canonical-encoding equal) to the original,
// and restoring a machine from it reproduces the same state.
func TestSnapshotWireRoundTrip(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := machine.New(0x200)
		tty := machine.NewTTY("t", 1)
		m.Attach(tty)
		for a := 0; a < 0x200; a++ {
			m.WritePhys(machine.Word(a), machine.Word(rng.Uint32()))
		}
		tty.InjectString("xyz")
		s := m.Snapshot()
		b, err := s.MarshalBinary()
		if err != nil {
			return false
		}
		got, err := machine.DecodeSnapshot(b)
		if err != nil {
			return false
		}
		if !s.Equal(got) {
			return false
		}
		if err := m.Restore(got); err != nil {
			return false
		}
		return m.Snapshot().Equal(s)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Corrupt or truncated wire bytes must fail with an error, never panic or
// decode to a wrong-but-plausible snapshot silently.
func TestSnapshotWireRejectsCorrupt(t *testing.T) {
	m := machine.New(0x40)
	s := m.Snapshot()
	b, err := s.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}

	if _, err := machine.DecodeSnapshot(nil); err == nil {
		t.Error("decoded empty input")
	}
	if _, err := machine.DecodeSnapshot(b[:len(b)-1]); err == nil {
		t.Error("decoded truncated input")
	}
	if _, err := machine.DecodeSnapshot(append(append([]byte(nil), b...), 0)); err == nil {
		t.Error("decoded input with trailing byte")
	}
	bad := append([]byte(nil), b...)
	bad[0] ^= 0xFF // magic
	if _, err := machine.DecodeSnapshot(bad); err == nil {
		t.Error("decoded input with bad magic")
	}
	bad = append([]byte(nil), b...)
	bad[4] ^= 0xFF // version
	if _, err := machine.DecodeSnapshot(bad); err == nil {
		t.Error("decoded input with bad version")
	}
}
