package machine

// Basic-block translation cache: decode once, dispatch micro-ops.
//
// The interpreter in machine.go re-decodes every instruction word on every
// visit — DecodeOp, SpecMode/SpecReg splits, and one memRead per extension
// word, all repeated each time the loop comes back around. The translation
// layer removes that repetition: on first execution of a PC it decodes the
// straight-line run of instructions up to the next control transfer into a
// tblock of resolved microOps (opcode, pre-split operand specs, pre-fetched
// extension words) and thereafter dispatches from the cache.
//
// Soundness rests on three invariants:
//
//   - Blocks are keyed by PHYSICAL address, in separate kernel/user tables,
//     so the kernel's identity-mapped view and a regime's MMU-mapped view
//     of the same RAM never alias. A user block is only entered when the
//     current mapping still covers its whole span readably, and the cursor
//     fast path revalidates against mapGen, which bumps on every MMU
//     register write, Reset, Restore and delta rollback.
//
//   - Every store into RAM flows through writeRAM (delta.go) — already the
//     single write barrier for delta snapshots — which evicts any block
//     covering the stored word. DeltaRestore's direct undo-log write-back
//     invalidates the same way, and the non-journaled bulk paths (Restore,
//     ClearRAM, LoadImage) flush. Self-modifying code therefore re-decodes
//     exactly when the interpreter would have fetched the new bytes.
//
//   - The cache is HOST state, never modelled state: Snapshot, Abstract
//     and the Φ digests neither read nor encode it (lint rule
//     translation-host-only), and execMicro replicates the interpreter's
//     PC increments, fault ordering and condition codes exactly, so
//     translated and interpreted execution are byte-identical — enforced
//     by the differential tests in translate_test.go.
//
// Dispatch executes exactly ONE micro-op per StepCPU: the cycle counter,
// device ticks, interrupt polling and tracing all keep their per-step
// cadence. The win is purely the skipped fetch/decode work, which is most
// of the cost of simple instructions.

// Decode limits. tcMaxSpan bounds how many RAM words one block may cover,
// which in turn bounds the window invalidateWord must scan for covering
// block starts; tcMaxOps bounds the micro-op count.
const (
	tcMaxSpan = 64
	tcMaxOps  = 24
)

// TCStats are the translation cache's host-side counters (exported through
// sep_tc_* metrics; never part of the modelled state).
type TCStats struct {
	Hits          uint64 // steps dispatched from a cached block
	Misses        uint64 // blocks decoded
	Invalidations uint64 // blocks evicted (stores, rollbacks, flushes)
	Fallbacks     uint64 // steps deferred to the interpreter
}

// Micro-op kinds. The decoder classifies each instruction once so dispatch
// can take a specialized path for the overwhelmingly common shapes —
// register/immediate ALU traffic — and a fully general path for the rest.
// The fast kinds are provably trap-free and PC-predictable (their dst is a
// non-PC register and they touch no memory), which lets the cursor advance
// without re-checking halt/wait/mode.
const (
	tkGeneric = iota // full microExec switch
	tkRegReg2        // two-op ALU/MOV, src = register, dst = non-PC register
	tkImmReg2        // two-op ALU/MOV, src = immediate, dst = non-PC register
	tkBranch         // conditional/unconditional branch (trap-free, pure PC/flags)
)

// microOp is one pre-decoded instruction: opcode, raw word, operand specs
// split into mode/register, and extension words captured at decode time
// (kept fresh by the write barrier).
type microOp struct {
	op     Word
	w      Word
	kind   uint8
	off    uint8 // word offset of this instruction from the block start
	length uint8 // words consumed: 1 + extension words

	srcMode, srcReg uint8
	dstMode, dstReg uint8
	srcExt, dstExt  Word
}

// tblock is one decoded basic block: a straight-line run of micro-ops
// starting at physical word address pa and covering span words.
type tblock struct {
	pa      Word
	span    Word
	user    bool
	ops     []microOp
	alive   bool
	liveIdx int // index in tcache.live, for O(1) swap-remove
}

// tcache is a machine's translation cache. It is allocated lazily on the
// first translated step and sized to the machine's RAM.
type tcache struct {
	kern  []*tblock // physical word address -> block starting there (kernel)
	user  []*tblock // same, for user-mode execution
	cover []uint16  // live blocks covering each word (invalidation filter)
	live  []*tblock
	stats TCStats

	// Cursor: after a micro-op whose successor is the next op of the same
	// block, the expected (vPC, mode, mapping) is recorded so the next step
	// skips table lookup and mapping checks entirely. curKey fuses the
	// expected virtual PC (bits 0-15) with the expected mode (bit 17) so
	// the fast path validates both with one compare; see cursorKey.
	cur       *tblock
	curIdx    int
	curKey    uint32
	curBase   Word // virtual address of cur's first op
	curMapGen uint64
}

// cursorKey fuses a virtual PC with the PSW's mode bit (PSWUser is bit 15,
// parked at bit 17 so a span offset added to the PC portion can never carry
// into it).
func cursorKey(vpc Word, psw Word) uint32 {
	return uint32(vpc) | uint32(psw&PSWUser)<<2
}

func newTCache(ramWords int) *tcache {
	return &tcache{
		kern:  make([]*tblock, ramWords),
		user:  make([]*tblock, ramWords),
		cover: make([]uint16, ramWords),
	}
}

// SetTranslation enables or disables the translation cache. Disabling
// drops all cached blocks; execution semantics are identical either way
// (the differential tests assert it), so this is purely an A/B lever.
func (m *Machine) SetTranslation(on bool) {
	m.noTranslate = !on
	if !on && m.tc != nil {
		m.tc.flush()
		m.tc = nil
	}
}

// TranslationEnabled reports whether the translation cache is in use.
func (m *Machine) TranslationEnabled() bool { return !m.noTranslate }

// TranslationStats returns the cache's host-side counters since creation.
func (m *Machine) TranslationStats() TCStats {
	if m.tc == nil {
		return TCStats{}
	}
	return m.tc.stats
}

// stepTranslated tries to execute the instruction at PC from the cache.
// It returns false — having mutated nothing but host state and, on a
// translation miss, the MMU abort latches the interpreter would latch
// identically — when the step must fall back to the interpreter.
func (m *Machine) stepTranslated(t *tcache) bool {
	// The cursor fast path lives inlined in stepCPU; this is the
	// block-entry path: translate the PC, look the block up (decoding it
	// on a miss), revalidate the mapping, and execute its first op.
	vpc := m.regs[RegPC]
	user := IsUser(m.psw)

	pa := vpc
	if user {
		// A failed fetch translation latches the same abort state the
		// interpreter's own fetch would latch, so falling back costs
		// nothing observably.
		p, ok := m.mmu.translate(vpc, false)
		if !ok {
			t.cur = nil
			t.stats.Fallbacks++
			return false
		}
		pa = p
	}
	if int(pa) >= m.ramWords {
		t.cur = nil
		t.stats.Fallbacks++
		return false
	}

	table := t.kern
	if user {
		table = t.user
	}
	b := table[pa]
	if b == nil {
		b = m.decodeBlock(t, pa, vpc, user)
		if b == nil {
			t.cur = nil
			t.stats.Fallbacks++
			return false
		}
		t.stats.Misses++
	} else {
		t.stats.Hits++
	}
	// A cached user block may be entered under a different mapping than it
	// was decoded under (same physical code, different segment): require
	// the whole span to be readably mapped so no micro-op's word fetch can
	// fault mid-block.
	if user && !m.userSpanMapped(vpc, b.span) {
		t.cur = nil
		t.stats.Fallbacks++
		return false
	}
	m.execMicro(t, b, 0, vpc)
	return true
}

// userSpanMapped reports whether the span words starting at user-mode
// virtual address vpc are readable under the current mapping without
// crossing a segment boundary — the condition under which every
// instruction-stream fetch of a block is known not to fault.
func (m *Machine) userSpanMapped(vpc, span Word) bool {
	ctl := m.mmu.Ctl[vpc>>12]
	acc := SegCtlAccess(ctl)
	if acc != AccessRO && acc != AccessRW {
		return false
	}
	return int(vpc&(SegmentWords-1))+int(span) <= SegCtlLimit(ctl)
}

// decodeBlock decodes the straight-line run starting at physical address
// pa into a new registered block, or returns nil when the first
// instruction is untranslatable. Instruction words are read from RAM
// directly: blocks never span I/O space, and the write barrier keeps the
// captured words fresh.
func (m *Machine) decodeBlock(t *tcache, pa, vpc Word, user bool) *tblock {
	limit := m.ramWords
	if int(pa)+tcMaxSpan < limit {
		limit = int(pa) + tcMaxSpan
	}
	if user {
		// Never decode across a virtual segment boundary: contiguity of
		// the mapping is only guaranteed within one segment.
		segEnd := int(pa) + SegmentWords - int(vpc&(SegmentWords-1))
		if segEnd < limit {
			limit = segEnd
		}
	}

	b := &tblock{pa: pa, user: user}
	off := int(pa)
	for len(b.ops) < tcMaxOps && off < limit {
		w := m.ram[off]
		op := DecodeOp(w)
		n := InstrLen(w)
		if off+n > limit {
			break
		}
		terminal, ok := classifyOpForTC(op, w)
		if !ok {
			break
		}
		u := microOp{op: op, w: w, off: uint8(off - int(pa)), length: uint8(n)}
		ext := off + 1
		if IsBranch(op) {
			u.kind = tkBranch
		}
		if !IsBranch(op) && op != OpTRAP {
			if hasSrc(op) {
				s := SrcSpec(w)
				u.srcMode, u.srcReg = uint8(SpecMode(s)), uint8(SpecReg(s))
				if specHasExt(s) {
					u.srcExt = m.ram[ext]
					ext++
				}
			}
			if hasDst(op) {
				s := DstSpec(w)
				u.dstMode, u.dstReg = uint8(SpecMode(s)), uint8(SpecReg(s))
				if specHasExt(s) {
					u.dstExt = m.ram[ext]
					ext++
				}
			}
			if (op >= OpMOV && op <= OpSHR || op == OpMUL) &&
				u.dstMode == ModeReg && u.dstReg != RegPC {
				switch {
				case u.srcMode == ModeReg:
					u.kind = tkRegReg2
				case u.srcMode == ModeExtended && u.srcReg == RegPC:
					u.kind = tkImmReg2
				}
			}
		}
		b.ops = append(b.ops, u)
		off += n
		if terminal {
			break
		}
	}
	if len(b.ops) == 0 {
		return nil
	}
	b.span = Word(off - int(pa))
	t.register(b)
	return b
}

// classifyOpForTC decides how the decoder treats an instruction:
// ok=false means untranslatable (the block ends before it and the
// interpreter executes it); terminal=true means it is translated but ends
// its block (control transfers).
func classifyOpForTC(op, w Word) (terminal, ok bool) {
	if IsBranch(op) {
		return true, true
	}
	switch op {
	case OpTRAP, OpJMP, OpJSR, OpRTS:
		terminal = true
	case OpNOP, OpMOV, OpADD, OpSUB, OpCMP, OpAND, OpOR, OpXOR,
		OpSHL, OpSHR, OpMUL, OpNOT, OpNEG, OpPUSH, OpPOP, OpMFPS:
	default:
		// HALT, WAIT, RTI, MTPS (mode/priority changes), and undefined
		// opcodes stay with the interpreter: rare, and their semantics
		// (privilege checks, PSW rewrites, illegal traps) are not worth
		// duplicating.
		return false, false
	}
	// Extended-mode specs with a register other than PC (immediate,
	// src-only) or SP (absolute) trap AFTER consuming the extension word;
	// leave that ordering to the interpreter.
	if hasSrc(op) {
		s := SrcSpec(w)
		if SpecMode(s) == ModeExtended && SpecReg(s) != RegPC && SpecReg(s) != RegSP {
			return false, false
		}
	}
	if hasDst(op) {
		s := DstSpec(w)
		if SpecMode(s) == ModeExtended && SpecReg(s) != RegSP {
			return false, false
		}
	}
	return terminal, true
}

// register installs a freshly decoded block in its table and the coverage
// filter.
func (t *tcache) register(b *tblock) {
	table := t.kern
	if b.user {
		table = t.user
	}
	table[b.pa] = b
	for i := 0; i < int(b.span); i++ {
		t.cover[int(b.pa)+i]++
	}
	b.alive = true
	b.liveIdx = len(t.live)
	t.live = append(t.live, b)
}

// evict removes a block from the cache.
func (t *tcache) evict(b *tblock) {
	if !b.alive {
		return
	}
	b.alive = false
	if b.user {
		t.user[b.pa] = nil
	} else {
		t.kern[b.pa] = nil
	}
	for i := 0; i < int(b.span); i++ {
		t.cover[int(b.pa)+i]--
	}
	last := len(t.live) - 1
	t.live[b.liveIdx] = t.live[last]
	t.live[b.liveIdx].liveIdx = b.liveIdx
	t.live[last] = nil
	t.live = t.live[:last]
	t.stats.Invalidations++
	if t.cur == b {
		t.cur = nil
	}
}

// invalidateWord evicts every live block covering physical word a. Called
// from the write barrier only when cover[a] != 0, so the bounded backward
// scan for block starts is paid exclusively by stores that actually hit
// translated code.
func (t *tcache) invalidateWord(a Word) {
	lo := 0
	if int(a) >= tcMaxSpan-1 {
		lo = int(a) - tcMaxSpan + 1
	}
	for pa := lo; pa <= int(a); pa++ {
		if b := t.kern[pa]; b != nil && int(b.pa)+int(b.span) > int(a) {
			t.evict(b)
		}
		if b := t.user[pa]; b != nil && int(b.pa)+int(b.span) > int(a) {
			t.evict(b)
		}
	}
}

// flush evicts every block (bulk RAM replacement: Restore, ClearRAM,
// LoadImage outside a delta).
func (t *tcache) flush() {
	for len(t.live) > 0 {
		t.evict(t.live[len(t.live)-1])
	}
}

// invalidateTC is the machine-side hook for the non-writeRAM mutation
// paths (DeltaRestore's undo-log write-back).
func (m *Machine) invalidateTC(a Word) {
	if t := m.tc; t != nil && t.cover[a] != 0 {
		t.invalidateWord(a)
	}
}

// flushTC drops all cached blocks; bulk loaders call it instead of
// per-word invalidation.
func (m *Machine) flushTC() {
	if m.tc != nil {
		m.tc.flush()
	}
}

// --- micro-op execution ---
//
// execMicro must be observably indistinguishable from execInstr on the
// same instruction. In particular the PC is incremented at exactly the
// interpreter's fetch points (instruction word, then each extension word
// in src-before-dst order), so trap-time PCs agree; and all operand memory
// traffic still goes through memRead/memWrite, so MMU faults, device side
// effects and the delta write barrier behave identically.

// execMicro executes op idx of block b, whose first op is at virtual
// address base, then advances the cursor when the successor is the next op
// of the same block.
func (m *Machine) execMicro(t *tcache, b *tblock, idx int, base Word) {
	u := &b.ops[idx]
	m.regs[RegPC]++ // the instruction-word fetch (known not to fault)

	switch u.kind {
	case tkRegReg2:
		m.aluToReg(u.op, m.regs[u.srcReg], int(u.dstReg))
	case tkImmReg2:
		m.regs[RegPC]++ // the immediate's extension-word fetch
		m.aluToReg(u.op, u.srcExt, int(u.dstReg))
	default:
		m.microExecGeneric(u)
		// Generic ops can trap, halt, write PC or rewrite their own block:
		// the cursor is valid only when control demonstrably fell through
		// to the next op's address in the block's own mode.
		if idx+1 < len(b.ops) && b.alive && !m.halted && !m.waiting &&
			IsUser(m.psw) == b.user {
			next := base + Word(b.ops[idx+1].off)
			if m.regs[RegPC] == next {
				t.cur, t.curIdx, t.curBase = b, idx+1, base
				t.curKey = cursorKey(next, m.psw)
				t.curMapGen = m.mapGen
				return
			}
		}
		m.reseedCursor(t)
		return
	}
	// Fast kinds touch no memory and no PC: the successor is always the
	// next op, and no trap, halt, mode switch or invalidation can have
	// occurred, so the cursor advances unconditionally.
	if idx+1 < len(b.ops) {
		t.cur, t.curIdx, t.curBase = b, idx+1, base
		t.curKey = cursorKey(base+Word(b.ops[idx+1].off), m.psw)
		t.curMapGen = m.mapGen
	} else {
		m.reseedCursor(t)
	}
}

// runFast executes up to max consecutive fast-kind micro-ops from the
// cursor position in one tight loop, returning how many it retired. Fast
// kinds are trap-free, touch no RAM and never change mode, mapping, halt or
// wait state, so one cursor validation up front covers the whole run; the
// cycle counter still advances once per instruction, exactly as if each op
// had gone through stepCPU. Callers must ensure no device ticks, interrupt
// dispatch or per-instruction tracing is due (Run's device-less loop).
func (m *Machine) runFast(t *tcache, max int) int {
	b := t.cur
	if b == nil || t.curMapGen != m.mapGen ||
		cursorKey(m.regs[RegPC], m.psw) != t.curKey {
		return 0
	}
	ops := b.ops
	idx := t.curIdx
	n := 0
loop:
	for n < max {
		u := &ops[idx]
		switch u.kind {
		case tkGeneric:
			break loop
		case tkBranch:
			// Branches are pure PC/flags arithmetic: execute, then chase the
			// target. If it lands on a translated block the run continues
			// without ever surfacing to the step loop.
			m.regs[RegPC]++
			m.execBranch(u.op, u.w)
			n++
			m.reseedCursor(t)
			if nb := t.cur; nb != nil && n < max {
				b, ops, idx = nb, nb.ops, t.curIdx
				continue
			}
			m.cycles += uint64(n)
			t.stats.Hits += uint64(n)
			return n
		default:
			var src Word
			if u.kind == tkRegReg2 {
				m.regs[RegPC]++
				src = m.regs[u.srcReg]
			} else {
				m.regs[RegPC] += 2
				src = u.srcExt
			}
			// aluToReg's body, with the wrapper call flattened out: at this
			// frequency the call boundary itself is measurable.
			if u.op == OpMOV {
				m.regs[u.dstReg] = src
				m.setCC(ccNZ(src) | m.psw&FlagC)
			} else {
				r, cc, writeBack := alu2(u.op, src, m.regs[u.dstReg], m.psw&FlagC)
				if writeBack {
					m.regs[u.dstReg] = r
				}
				m.setCC(cc)
			}
			n++
			idx++
			if idx == len(ops) {
				// Fast-kind fall-through off the end of the block (the
				// decoder hit a size cap): chase the successor like a branch.
				m.reseedCursor(t)
				if nb := t.cur; nb != nil && n < max {
					b, ops, idx = nb, nb.ops, t.curIdx
					continue
				}
				m.cycles += uint64(n)
				t.stats.Hits += uint64(n)
				return n
			}
		}
	}
	// Out of budget, or a generic op is next: leave the cursor on it.
	if n != 0 {
		m.cycles += uint64(n)
		t.stats.Hits += uint64(n)
		t.curIdx = idx
		t.curKey = cursorKey(m.regs[RegPC], m.psw)
	}
	return n
}

// reseedCursor points the cursor at the already-translated block starting
// at the current PC, if any, so control transfers back into translated code
// re-enter the fast path without a table-lookup step in between. Host state
// only: on any doubt it simply leaves the cursor cold, and the MMU probe it
// uses latches nothing.
func (m *Machine) reseedCursor(t *tcache) {
	t.cur = nil
	if m.halted || m.waiting {
		return
	}
	vpc := m.regs[RegPC]
	user := IsUser(m.psw)
	pa := vpc
	if user {
		p, ok := m.mmu.probe(vpc)
		if !ok {
			return
		}
		pa = p
	}
	if int(pa) >= m.ramWords {
		return
	}
	var b *tblock
	if user {
		b = t.user[pa]
	} else {
		b = t.kern[pa]
	}
	if b == nil {
		return
	}
	if user && !m.userSpanMapped(vpc, b.span) {
		return
	}
	t.cur, t.curIdx, t.curBase = b, 0, vpc
	t.curKey = cursorKey(vpc, m.psw)
	t.curMapGen = m.mapGen
}

// aluToReg executes a two-operand ALU/MOV instruction whose destination is
// a (non-PC) register, with the source value already in hand. Semantics are
// alu2's — identical to the interpreter's.
func (m *Machine) aluToReg(op, src Word, reg int) {
	if op == OpMOV {
		m.regs[reg] = src
		m.setCC(ccNZ(src) | m.psw&FlagC)
		return
	}
	r, cc, writeBack := alu2(op, src, m.regs[reg], m.psw&FlagC)
	if writeBack {
		m.regs[reg] = r
	}
	m.setCC(cc)
}

// microExecGeneric executes one translated instruction through the same
// operand machinery as the interpreter.
func (m *Machine) microExecGeneric(u *microOp) {
	if IsBranch(u.op) {
		m.execBranch(u.op, u.w)
	} else {
		switch u.op {
		case OpNOP:
		case OpTRAP:
			m.trapCode = u.w & 0x3ff
			m.trap(VecTRAP)
		case OpRTS:
			if pc, ok := m.pop(); ok {
				m.regs[RegPC] = pc
			}
		case OpMOV, OpADD, OpSUB, OpCMP, OpAND, OpOR, OpXOR, OpSHL, OpSHR, OpMUL:
			if src, ok := m.microReadSrc(u); ok {
				if dst, ok := m.microResolveDst(u); ok {
					m.finishTwoOp(u.op, src, dst)
				}
			}
		case OpNOT, OpNEG:
			dst, ok := m.microResolveDst(u)
			if !ok {
				break
			}
			v, ok := m.readOperand(dst)
			if !ok {
				break
			}
			r, cc := aluUnary(u.op, v)
			if m.writeOperand(dst, r) {
				m.setCC(cc)
			}
		case OpJMP:
			if dst, ok := m.microResolveDst(u); ok {
				if dst.isReg {
					m.regs[RegPC] = m.regs[dst.reg]
				} else {
					m.regs[RegPC] = dst.addr
				}
			}
		case OpJSR:
			dst, ok := m.microResolveDst(u)
			if !ok {
				break
			}
			if !m.push(m.regs[RegPC]) {
				break
			}
			if dst.isReg {
				m.regs[RegPC] = m.regs[dst.reg]
			} else {
				m.regs[RegPC] = dst.addr
			}
		case OpPUSH:
			if v, ok := m.microReadSrc(u); ok {
				m.push(v)
			}
		case OpPOP:
			dst, ok := m.microResolveDst(u)
			if !ok {
				break
			}
			if v, ok := m.pop(); ok {
				m.writeOperand(dst, v)
			}
		case OpMFPS:
			if dst, ok := m.microResolveDst(u); ok {
				m.writeOperand(dst, m.psw)
			}
		}
	}
}

// microReadSrc mirrors readSrc with the extension word served from the
// block; the PC advances where the interpreter's fetch would have.
func (m *Machine) microReadSrc(u *microOp) (Word, bool) {
	switch u.srcMode {
	case ModeReg:
		return m.regs[u.srcReg], true
	case ModeIndirect:
		return m.memRead(m.regs[u.srcReg])
	case ModeIndexed:
		m.regs[RegPC]++
		return m.memRead(m.regs[u.srcReg] + u.srcExt)
	default: // ModeExtended; decode admits only PC (immediate) and SP (absolute)
		m.regs[RegPC]++
		if u.srcReg == RegPC {
			return u.srcExt, true
		}
		return m.memRead(u.srcExt)
	}
}

// microResolveDst mirrors resolveDst with the extension word served from
// the block.
func (m *Machine) microResolveDst(u *microOp) (operand, bool) {
	switch u.dstMode {
	case ModeReg:
		return operand{isReg: true, reg: int(u.dstReg)}, true
	case ModeIndirect:
		return operand{addr: m.regs[u.dstReg]}, true
	case ModeIndexed:
		m.regs[RegPC]++
		return operand{addr: m.regs[u.dstReg] + u.dstExt}, true
	default: // ModeExtended; decode admits only SP (absolute)
		m.regs[RegPC]++
		return operand{addr: u.dstExt}, true
	}
}
