package machine_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/machine"
)

// runProgram assembles src, loads it at its .org, points the PC at the
// given entry symbol (or the image origin) and runs until HALT.
func runProgram(t *testing.T, src string, maxSteps int) *machine.Machine {
	t.Helper()
	m := machine.New(0x2000)
	im, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	if err := m.LoadImage(im.Org, im.Words); err != nil {
		t.Fatalf("load: %v", err)
	}
	m.SetPC(im.Org)
	m.SetReg(machine.RegSP, 0x1000)
	m.SetPSW(machine.WithPriority(0, 7))
	m.Run(maxSteps)
	if !m.Halted() {
		t.Fatalf("program did not halt in %d steps (PC=%#x)", maxSteps, m.PC())
	}
	if m.Fault != nil {
		t.Fatalf("machine fault: %v", m.Fault)
	}
	return m
}

func TestMOVImmediateAndRegisters(t *testing.T) {
	m := runProgram(t, `
		.org 0x100
		MOV #0x1234, R0
		MOV R0, R1
		HALT
	`, 100)
	if got := m.Reg(0); got != 0x1234 {
		t.Errorf("R0 = %#x, want 0x1234", got)
	}
	if got := m.Reg(1); got != 0x1234 {
		t.Errorf("R1 = %#x, want 0x1234", got)
	}
}

func TestArithmetic(t *testing.T) {
	m := runProgram(t, `
		.org 0x100
		MOV #7, R0
		ADD #5, R0      ; R0 = 12
		MOV #3, R1
		SUB R1, R0      ; R0 = 9
		MOV #6, R2
		MUL R0, R2      ; R2 = 54
		HALT
	`, 100)
	if got := m.Reg(0); got != 9 {
		t.Errorf("R0 = %d, want 9", got)
	}
	if got := m.Reg(2); got != 54 {
		t.Errorf("R2 = %d, want 54", got)
	}
}

func TestAddCarryAndOverflowFlags(t *testing.T) {
	m := runProgram(t, `
		.org 0x100
		MOV #0xFFFF, R0
		ADD #1, R0
		MFPS R1          ; capture flags: Z and C expected
		MOV #0x7FFF, R2
		ADD #1, R2
		MFPS R3          ; N and V expected
		HALT
	`, 100)
	f1 := m.Reg(1)
	if f1&machine.FlagZ == 0 || f1&machine.FlagC == 0 {
		t.Errorf("0xFFFF+1 flags = %#x, want Z and C set", f1)
	}
	f3 := m.Reg(3)
	if f3&machine.FlagN == 0 || f3&machine.FlagV == 0 {
		t.Errorf("0x7FFF+1 flags = %#x, want N and V set", f3)
	}
}

func TestLogicAndShifts(t *testing.T) {
	m := runProgram(t, `
		.org 0x100
		MOV #0xF0F0, R0
		AND #0xFF00, R0  ; 0xF000
		MOV #0x000F, R1
		OR  #0x00F0, R1  ; 0x00FF
		MOV #0xAAAA, R2
		XOR #0xFFFF, R2  ; 0x5555
		MOV #1, R3
		SHL #4, R3       ; 0x0010
		MOV #0x8000, R4
		SHR #15, R4      ; 0x0001
		MOV #0x00FF, R5
		NOT R5           ; 0xFF00
		HALT
	`, 100)
	want := map[int]machine.Word{0: 0xF000, 1: 0x00FF, 2: 0x5555, 3: 0x0010, 4: 0x0001, 5: 0xFF00}
	for r, w := range want {
		if got := m.Reg(r); got != w {
			t.Errorf("R%d = %#x, want %#x", r, got, w)
		}
	}
}

func TestBranchLoop(t *testing.T) {
	m := runProgram(t, `
		.org 0x100
		MOV #0, R0
		MOV #10, R1
	loop:
		ADD #1, R0
		SUB #1, R1
		BNE loop
		HALT
	`, 200)
	if got := m.Reg(0); got != 10 {
		t.Errorf("loop counted R0 = %d, want 10", got)
	}
}

func TestCompareBranches(t *testing.T) {
	// CMP src,dst sets flags from src-dst: CMP #5, R0 with R0=5 → Z.
	m := runProgram(t, `
		.org 0x100
		MOV #5, R0
		CMP #5, R0
		BNE fail
		MOV #3, R1
		CMP #7, R1      ; 7-3 > 0 → BGT taken
		BLE fail
		MOV #1, R5      ; success marker
		HALT
	fail:
		MOV #0xDEAD, R5
		HALT
	`, 100)
	if got := m.Reg(5); got != 1 {
		t.Errorf("branch logic failed: R5 = %#x", got)
	}
}

func TestMemoryAddressing(t *testing.T) {
	m := runProgram(t, `
		.org 0x100
		MOV #0xBEEF, @0x500   ; absolute store
		MOV @0x500, R0        ; absolute load
		MOV #0x500, R1
		MOV (R1), R2          ; indirect load
		MOV #0x4F0, R3
		MOV 0x10(R3), R4      ; indexed load (0x4F0+0x10 = 0x500)
		MOV #0x1111, 2(R1)    ; indexed store at 0x502
		MOV @0x502, R5
		HALT
	`, 100)
	for r, w := range map[int]machine.Word{0: 0xBEEF, 2: 0xBEEF, 4: 0xBEEF, 5: 0x1111} {
		if got := m.Reg(r); got != w {
			t.Errorf("R%d = %#x, want %#x", r, got, w)
		}
	}
	if got := m.ReadPhys(0x500); got != 0xBEEF {
		t.Errorf("mem[0x500] = %#x, want 0xBEEF", got)
	}
}

func TestStackPushPopJSR(t *testing.T) {
	m := runProgram(t, `
		.org 0x100
		MOV #0xAA, R0
		PUSH R0
		MOV #0xBB, R0
		PUSH R0
		POP R1           ; 0xBB
		POP R2           ; 0xAA
		JSR sub
		MOV #2, R4
		HALT
	sub:
		MOV #1, R3
		RTS
	`, 100)
	for r, w := range map[int]machine.Word{1: 0xBB, 2: 0xAA, 3: 1, 4: 2} {
		if got := m.Reg(r); got != w {
			t.Errorf("R%d = %#x, want %#x", r, got, w)
		}
	}
	if got := m.Reg(machine.RegSP); got != 0x1000 {
		t.Errorf("SP = %#x, want balanced 0x1000", got)
	}
}

func TestTrapDispatchAndRTI(t *testing.T) {
	// A TRAP handler that records the trap code and resumes.
	m := runProgram(t, `
		.org 0x100
		MOV #handler, @0x0C   ; VecTRAP PC
		MOV #0x00E0, @0x0D    ; VecTRAP PSW: kernel, priority 7
		TRAP #42
		MOV #1, R2            ; executed after RTI
		HALT
	handler:
		MOV #0x99, R1
		RTI
	`, 100)
	if got := m.Reg(1); got != 0x99 {
		t.Errorf("handler did not run: R1 = %#x", got)
	}
	if got := m.Reg(2); got != 1 {
		t.Errorf("RTI did not resume: R2 = %#x", got)
	}
	if got := m.TrapCode(); got != 42 {
		t.Errorf("trap code = %d, want 42", got)
	}
}

func TestUserModeCannotHalt(t *testing.T) {
	// Enter user mode via RTI; the user HALT must trap to VecIllegal.
	m := runProgram(t, `
		.org 0x100
		MOV #caught, @0x04    ; VecIllegal PC
		MOV #0x00E0, @0x05    ; kernel, priority 7
		; map user segment 0: base 0x400, full 4K, RW
		MOV #0x400, @0xF000
		MOV #0x5000, @0xF010  ; ctl: full-segment bit | RW<<13
		; build user entry: push PSW (user), push PC (0), RTI
		MOV #0x8000, R0       ; user mode PSW
		PUSH R0
		MOV #0, R0            ; user virtual PC 0
		PUSH R0
		; plant "HALT" at user address 0 = physical 0x400
		MOV #0, @0x400        ; opcode 0 = HALT
		RTI
	caught:
		MOV #0x77, R3
		HALT
	`, 200)
	if got := m.Reg(3); got != 0x77 {
		t.Errorf("user HALT was not trapped: R3 = %#x", got)
	}
}

func TestMMUProtectionAbort(t *testing.T) {
	// User code touching an unmapped segment must abort to VecMMU.
	m := runProgram(t, `
		.org 0x100
		MOV #abort, @0x08     ; VecMMU PC
		MOV #0x00E0, @0x09
		MOV #0x400, @0xF000   ; segment 0 mapped
		MOV #0x5000, @0xF010
		; segment 1 left unmapped (AccessNone)
		; user program at phys 0x400: MOV @0x1000, R0 (virtual seg 1)
		MOV #0x0BC0, @0x400   ; MOV @abs, R0: op MOV(2)<<10|src ext SP|dst R0
		MOV #0x1000, @0x401   ; the absolute address
		MOV #0x8000, R0
		PUSH R0
		MOV #0, R0
		PUSH R0
		RTI
	abort:
		MOV @0xF020, R4       ; MMU abort reason
		MOV @0xF021, R5       ; abort vaddr
		HALT
	`, 200)
	if got := m.Reg(4); got != machine.MMUNoAccess {
		t.Errorf("abort reason = %d, want MMUNoAccess", got)
	}
	if got := m.Reg(5); got != 0x1000 {
		t.Errorf("abort vaddr = %#x, want 0x1000", got)
	}
}

func TestReadOnlySegmentWriteAborts(t *testing.T) {
	m := machine.New(0x2000)
	m.SetSeg(0, 0x400, machine.MakeSegCtl(machine.SegmentWords, machine.AccessRO))
	m.SetVector(machine.VecMMU, 0x200, machine.WithPriority(0, 7))
	m.WritePhys(0x200, machine.Enc2(machine.OpHALT, 0, 0))
	// User program at phys 0x400 writes to its own segment.
	prog := asm.MustAssemble(`
		.org 0
		MOV #1, @0x10
		HALT
	`)
	for i, w := range prog.Words {
		m.WritePhys(0x400+machine.Word(i), w)
	}
	m.SetPSW(machine.PSWUser)
	m.SetAltSP(0x1000) // kernel SP while user runs
	m.SetPC(0)
	m.Run(50)
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	if reason, vaddr := m.MMUAbort(); reason != machine.MMUReadOnly || vaddr != 0x10 {
		t.Errorf("abort = (%d, %#x), want (MMUReadOnly, 0x10)", reason, vaddr)
	}
}

func TestMMUTranslationRelocates(t *testing.T) {
	// Two different segment bases make the same virtual address reach
	// different physical words — the heart of partition isolation.
	m := machine.New(0x2000)
	m.WritePhys(0x800, 0x1111)
	m.WritePhys(0xA00, 0x2222)
	prog := asm.MustAssemble(`
		.org 0
		MOV @0x0, R0
		HALT
	`)
	run := func(base machine.Word) machine.Word {
		m.Reset()
		for i, w := range prog.Words {
			m.WritePhys(0x400+machine.Word(i), w)
		}
		m.SetSeg(0, base, machine.MakeSegCtl(machine.SegmentWords, machine.AccessRW))
		m.SetSeg(1, 0, 0)
		// Map the code segment too: virtual seg 15 → phys 0x400.
		m.SetSeg(15, 0x400, machine.MakeSegCtl(machine.SegmentWords, machine.AccessRO))
		m.SetVector(machine.VecIllegal, 0x300, machine.WithPriority(0, 7))
		m.WritePhys(0x300, machine.Enc2(machine.OpHALT, 0, 0))
		m.SetPSW(machine.PSWUser)
		m.SetAltSP(0x1000)
		m.SetPC(0xF000) // virtual: segment 15 offset 0
		m.Run(50)
		return m.Reg(0)
	}
	if got := run(0x800); got != 0x1111 {
		t.Errorf("base 0x800: R0 = %#x, want 0x1111", got)
	}
	if got := run(0xA00); got != 0x2222 {
		t.Errorf("base 0xA00: R0 = %#x, want 0x2222", got)
	}
}

func TestTTYOutputAndInput(t *testing.T) {
	m := machine.New(0x2000)
	tty := machine.NewTTY("tty0", 1)
	h := m.Attach(tty)
	src := `
		.org 0x100
		.equ RSTAT, 0xF040
		.equ RDATA, 0xF041
		.equ XDATA, 0xF043
	wait:
		MOV @RSTAT, R0
		AND #1, R0
		BEQ wait
		MOV @RDATA, R1      ; read the input byte
		MOV R1, @XDATA      ; echo it
		HALT
	`
	if h.Base != 0xF040 {
		t.Fatalf("tty base = %#x, want 0xF040", h.Base)
	}
	im := asm.MustAssemble(src)
	m.LoadImage(im.Org, im.Words)
	m.SetPC(im.Org)
	m.SetReg(machine.RegSP, 0x1000)
	tty.InjectString("A")
	m.Run(200)
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	if got := tty.OutputString(); got != "A" {
		t.Errorf("echo output = %q, want %q", got, "A")
	}
}

func TestTTYInterrupt(t *testing.T) {
	m := machine.New(0x2000)
	tty := machine.NewTTY("tty0", 1)
	h := m.Attach(tty)
	src := `
		.org 0x100
		MOV #isr, @0x20        ; device vector 0 PC
		MOV #0x00E0, @0x21     ; kernel, priority 7 inside ISR
		MOV #0x40, @0xF040     ; enable receiver interrupts
		MTPS #0x0000           ; kernel mode, priority 0: open interrupts
	spin:
		BR spin
	isr:
		MOV @0xF041, R1        ; consume the byte
		HALT
	`
	_ = h
	im := asm.MustAssemble(src)
	m.LoadImage(im.Org, im.Words)
	m.SetPC(im.Org)
	m.SetReg(machine.RegSP, 0x1000)
	tty.InjectString("Z")
	m.Run(500)
	if !m.Halted() {
		t.Fatal("interrupt never delivered")
	}
	if got := m.Reg(1); got != 'Z' {
		t.Errorf("ISR read %#x, want 'Z'", got)
	}
}

func TestInterruptPriorityMasking(t *testing.T) {
	m := machine.New(0x2000)
	tty := machine.NewTTY("tty0", 1) // priority 4
	m.Attach(tty)
	src := `
		.org 0x100
		MOV #isr, @0x20
		MOV #0x00E0, @0x21
		MOV #0x40, @0xF040    ; receiver IE
		MTPS #0x00E0          ; priority 7: interrupt must be held off
		MOV #0, R2
		ADD #1, R2
		ADD #1, R2
		ADD #1, R2
		MTPS #0x0000          ; open up; interrupt fires now
	spin:
		BR spin
	isr:
		MOV R2, R3            ; prove the adds ran before the ISR
		HALT
	`
	im := asm.MustAssemble(src)
	m.LoadImage(im.Org, im.Words)
	m.SetPC(im.Org)
	m.SetReg(machine.RegSP, 0x1000)
	tty.InjectString("x")
	m.Run(500)
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	if got := m.Reg(3); got != 3 {
		t.Errorf("interrupt was not masked: R3 = %d, want 3", got)
	}
}

func TestClockInterrupts(t *testing.T) {
	m := machine.New(0x2000)
	clk := machine.NewClock("clk", 10)
	m.Attach(clk)
	src := `
		.org 0x100
		MOV #isr, @0x20
		MOV #0x00E0, @0x21
		MOV #0x40, @0xF040   ; clock CTL: IE
		MOV #0, R0
		MTPS #0x0000
	spin:
		BR spin
	isr:
		ADD #1, R0
		CMP #3, R0
		BEQ done
		RTI
	done:
		HALT
	`
	im := asm.MustAssemble(src)
	m.LoadImage(im.Org, im.Words)
	m.SetPC(im.Org)
	m.SetReg(machine.RegSP, 0x1000)
	m.Run(500)
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	if got := m.Reg(0); got != 3 {
		t.Errorf("clock ticks counted = %d, want 3", got)
	}
}

func TestLinkTransfersBetweenMachines(t *testing.T) {
	sender := machine.New(0x1000)
	receiver := machine.New(0x1000)
	tx, rx := machine.NewLink("wire", 8)
	sender.Attach(tx)
	receiver.Attach(rx)

	sendProg := asm.MustAssemble(`
		.org 0x100
		MOV #0xCAFE, @0xF041   ; LinkTX DATA
		HALT
	`)
	recvProg := asm.MustAssemble(`
		.org 0x100
	wait:
		MOV @0xF040, R0        ; LinkRX STAT
		AND #1, R0
		BEQ wait
		MOV @0xF041, R1
		HALT
	`)
	sender.LoadImage(sendProg.Org, sendProg.Words)
	sender.SetPC(sendProg.Org)
	sender.SetReg(machine.RegSP, 0x800)
	receiver.LoadImage(recvProg.Org, recvProg.Words)
	receiver.SetPC(recvProg.Org)
	receiver.SetReg(machine.RegSP, 0x800)

	sender.Run(100)
	receiver.Run(100)
	if !receiver.Halted() {
		t.Fatal("receiver did not halt")
	}
	if got := receiver.Reg(1); got != 0xCAFE {
		t.Errorf("received %#x, want 0xCAFE", got)
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	m := machine.New(0x800)
	tty := machine.NewTTY("tty0", 1)
	m.Attach(tty)
	im := asm.MustAssemble(`
		.org 0x100
		MOV #1, R0
	loop:
		ADD #1, R0
		BR loop
	`)
	m.LoadImage(im.Org, im.Words)
	m.SetPC(im.Org)
	tty.InjectString("hello")
	for i := 0; i < 17; i++ {
		m.Step()
	}
	snap := m.Snapshot()

	// Run on, then restore, then run the same distance again: states match.
	for i := 0; i < 31; i++ {
		m.Step()
	}
	after1 := m.Snapshot()
	if err := m.Restore(snap); err != nil {
		t.Fatalf("restore: %v", err)
	}
	if !m.Snapshot().Equal(snap) {
		t.Fatal("restore did not reproduce the snapshot")
	}
	for i := 0; i < 31; i++ {
		m.Step()
	}
	after2 := m.Snapshot()
	if !after1.Equal(after2) {
		t.Error("machine is not deterministic after restore")
	}
}

func TestSnapshotDetectsDifference(t *testing.T) {
	m := machine.New(0x400)
	a := m.Snapshot()
	m.WritePhys(0x200, 1)
	b := m.Snapshot()
	if a.Equal(b) {
		t.Error("snapshots equal despite RAM difference")
	}
	if a.Hash() == b.Hash() {
		t.Error("hashes equal despite RAM difference")
	}
}

func TestKernelBusTimeoutIsMachineCheck(t *testing.T) {
	m := machine.New(0x400)
	im := asm.MustAssemble(`
		.org 0x100
		MOV @0xE000, R0   ; no RAM there, no device
		HALT
	`)
	m.LoadImage(im.Org, im.Words)
	m.SetPC(im.Org)
	m.Run(10)
	if !m.Halted() || m.Fault == nil {
		t.Errorf("kernel bus timeout should machine-check; halted=%v fault=%v",
			m.Halted(), m.Fault)
	}
}

func TestUserMTPSOnlySetsCC(t *testing.T) {
	m := machine.New(0x2000)
	// User program tries to raise priority / clear user bit.
	prog := asm.MustAssemble(`
		.org 0
		MTPS #0x00E0      ; attempt: kernel mode, priority 7
		MOV #1, R0
		HALT              ; illegal in user mode → trap
	`)
	for i, w := range prog.Words {
		m.WritePhys(0x400+machine.Word(i), w)
	}
	m.SetSeg(0, 0x400, machine.MakeSegCtl(machine.SegmentWords, machine.AccessRW))
	m.SetVector(machine.VecIllegal, 0x300, machine.WithPriority(0, 7))
	m.WritePhys(0x300, machine.Enc2(machine.OpHALT, 0, 0))
	m.SetPSW(machine.PSWUser)
	m.SetAltSP(0x1000)
	m.SetPC(0)
	m.Run(50)
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	// If MTPS had taken effect, the HALT would have stopped the machine in
	// kernel mode with R0==1 but without visiting the illegal vector.
	// The illegal vector handler halts with PC near 0x300.
	if pc := m.PC(); pc != 0x301 {
		t.Errorf("expected halt inside illegal-instruction handler, PC=%#x", pc)
	}
}

func TestDisasmRoundTrip(t *testing.T) {
	im := asm.MustAssemble(`
		.org 0x100
		MOV #5, R0
		ADD R0, (R1)
		SUB 4(R2), R3
		CMP #1, @0x200
		BEQ done
		TRAP #9
	done:
		HALT
	`)
	pos := 0
	var texts []string
	for pos < len(im.Words) {
		s, n := machine.Disasm(im.Words[pos:])
		texts = append(texts, s)
		pos += n
	}
	want := []string{
		"MOV #0x5, R0",
		"ADD R0, (R1)",
		"SUB 0x4(R2), R3",
		"CMP #0x1, @0x200",
		"BEQ +1",
		"TRAP #9",
		"HALT",
	}
	if len(texts) != len(want) {
		t.Fatalf("disassembled %d instructions, want %d: %v", len(texts), len(want), texts)
	}
	for i := range want {
		if texts[i] != want[i] {
			t.Errorf("instr %d: %q, want %q", i, texts[i], want[i])
		}
	}
}

func TestTracerCapturesInstructions(t *testing.T) {
	m := machine.New(0x400)
	im := asm.MustAssemble(`
		.org 0x100
		MOV #1, R0
		ADD #2, R0
		HALT
	`)
	m.LoadImage(im.Org, im.Words)
	m.SetPC(im.Org)
	var got []machine.TraceEntry
	m.SetTracer(func(e machine.TraceEntry) { got = append(got, e) })
	m.Run(10)
	want := []string{"MOV #0x1, R0", "ADD #0x2, R0", "HALT"}
	if len(got) != len(want) {
		t.Fatalf("traced %d entries, want %d: %v", len(got), len(want), got)
	}
	for i, w := range want {
		if got[i].Text != w {
			t.Errorf("entry %d = %q, want %q", i, got[i].Text, w)
		}
		if got[i].User {
			t.Errorf("entry %d marked user mode", i)
		}
	}
	if got[0].PC != 0x100 {
		t.Errorf("first PC = %#x", got[0].PC)
	}
}

func TestPeekHasNoSideEffects(t *testing.T) {
	m := machine.New(0x400)
	tty := machine.NewTTY("t", 1)
	h := m.Attach(tty)
	tty.InjectString("A")
	m.TickDevices() // byte presented
	// Peeking the RDATA address must NOT consume the byte (it refuses to
	// read I/O space at all).
	if _, ok := m.Peek(h.Base + 1); ok {
		t.Error("Peek read an I/O register")
	}
	if got := m.ReadPhys(h.Base) & 1; got != 1 {
		t.Error("receiver no longer ready — peek had a side effect?")
	}
	// Peek in user mode with no mapping fails without latching an abort.
	m.SetPSW(machine.PSWUser)
	before, beforeV := m.MMUAbort()
	if _, ok := m.Peek(0x2000); ok {
		t.Error("peek through unmapped segment succeeded")
	}
	if after, afterV := m.MMUAbort(); after != before || afterV != beforeV {
		t.Error("peek latched MMU abort state")
	}
}

// Exhaustive branch semantics: every conditional branch against every
// condition-code combination, checked against a Go reference.
func TestBranchSemanticsExhaustive(t *testing.T) {
	type ref func(n, z, v, c bool) bool
	refs := map[machine.Word]ref{
		machine.OpBR:  func(n, z, v, c bool) bool { return true },
		machine.OpBEQ: func(n, z, v, c bool) bool { return z },
		machine.OpBNE: func(n, z, v, c bool) bool { return !z },
		machine.OpBLT: func(n, z, v, c bool) bool { return n != v },
		machine.OpBGE: func(n, z, v, c bool) bool { return n == v },
		machine.OpBGT: func(n, z, v, c bool) bool { return !z && n == v },
		machine.OpBLE: func(n, z, v, c bool) bool { return z || n != v },
		machine.OpBCS: func(n, z, v, c bool) bool { return c },
		machine.OpBCC: func(n, z, v, c bool) bool { return !c },
		machine.OpBMI: func(n, z, v, c bool) bool { return n },
		machine.OpBPL: func(n, z, v, c bool) bool { return !n },
	}
	for op, want := range refs {
		for flags := 0; flags < 16; flags++ {
			m := machine.New(0x200)
			n := flags&8 != 0
			z := flags&4 != 0
			v := flags&2 != 0
			c := flags&1 != 0
			var psw machine.Word
			if n {
				psw |= machine.FlagN
			}
			if z {
				psw |= machine.FlagZ
			}
			if v {
				psw |= machine.FlagV
			}
			if c {
				psw |= machine.FlagC
			}
			m.SetPSW(machine.WithPriority(psw, 7))
			m.WritePhys(0x100, machine.EncBranch(op, 5))
			m.SetPC(0x100)
			m.Step()
			taken := m.PC() == 0x106
			if taken != want(n, z, v, c) {
				t.Errorf("%s with NZVC=%04b: taken=%v, want %v",
					machine.OpName(op), flags, taken, want(n, z, v, c))
			}
		}
	}
}

// NEG edge cases per the documented flag semantics.
func TestNEGFlags(t *testing.T) {
	cases := []struct {
		in      machine.Word
		out     machine.Word
		c, v, z bool
	}{
		{0, 0, false, false, true},
		{1, 0xFFFF, true, false, false},
		{0x8000, 0x8000, true, true, false},
	}
	for _, tc := range cases {
		m := machine.New(0x200)
		m.SetReg(0, tc.in)
		m.WritePhys(0x100, machine.Enc2(machine.OpNEG, 0, machine.Spec(machine.ModeReg, 0)))
		m.SetPC(0x100)
		m.Step()
		if got := m.Reg(0); got != tc.out {
			t.Errorf("NEG %#x = %#x, want %#x", tc.in, got, tc.out)
		}
		psw := m.PSW()
		if (psw&machine.FlagC != 0) != tc.c || (psw&machine.FlagV != 0) != tc.v ||
			(psw&machine.FlagZ != 0) != tc.z {
			t.Errorf("NEG %#x flags = %#x, want C=%v V=%v Z=%v", tc.in, psw&0xF, tc.c, tc.v, tc.z)
		}
	}
}

// JSR/RTS nest correctly three levels deep.
func TestNestedSubroutines(t *testing.T) {
	m := runProgram(t, `
		.org 0x100
		JSR one
		MOV #0xF, R5
		HALT
	one:
		ADD #1, R0
		JSR two
		ADD #8, R0
		RTS
	two:
		ADD #2, R0
		JSR three
		ADD #4, R0
		RTS
	three:
		ADD #0x10, R0
		RTS
	`, 200)
	if got := m.Reg(0); got != 0x1F {
		t.Errorf("nested calls accumulated %#x, want 0x1F", got)
	}
	if got := m.Reg(5); got != 0xF {
		t.Errorf("did not return to main: R5=%#x", got)
	}
}
