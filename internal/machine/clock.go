package machine

// Clock is a line-time clock raising a periodic interrupt.
//
// Register map:
//
//	0 CTL    bit6 interrupt enable; writing bit0 clears the pending latch
//	1 COUNT  free-running tick counter (low 16 bits, read-only)
type Clock struct {
	name     string
	interval int
	left     int
	count    Word
	ie       bool
	pend     bool
	prio     int
}

// NewClock creates a clock that requests an interrupt every interval ticks.
func NewClock(name string, interval int) *Clock {
	if interval < 1 {
		interval = 1
	}
	return &Clock{name: name, interval: interval, left: interval, prio: 6}
}

// Replicate implements Replicator.
func (c *Clock) Replicate() Device {
	n := NewClock(c.name, c.interval)
	n.prio = c.prio
	return n
}

// Name implements Device.
func (c *Clock) Name() string { return c.name }

// Size implements Device.
func (c *Clock) Size() int { return 2 }

// Priority implements Device.
func (c *Clock) Priority() int { return c.prio }

// Reset implements Device.
func (c *Clock) Reset() {
	c.left = c.interval
	c.count = 0
	c.ie = false
	c.pend = false
}

// ReadReg implements Device.
func (c *Clock) ReadReg(off int) Word {
	switch off {
	case 0:
		var v Word
		if c.ie {
			v |= ttyStatIE
		}
		if c.pend {
			v |= ttyStatReady
		}
		return v
	case 1:
		return c.count
	}
	return 0
}

// WriteReg implements Device.
func (c *Clock) WriteReg(off int, v Word) {
	if off == 0 {
		c.ie = v&ttyStatIE != 0
		if v&ttyStatReady != 0 {
			c.pend = false
		}
	}
}

// Tick implements Device.
func (c *Clock) Tick() {
	c.count++
	c.left--
	if c.left <= 0 {
		c.left = c.interval
		if c.ie {
			c.pend = true
		}
	}
}

// Pending implements Device.
func (c *Clock) Pending() bool { return c.pend }

// Ack implements Device.
func (c *Clock) Ack() { c.pend = false }

// SnapshotState implements Device.
func (c *Clock) SnapshotState() []Word {
	return []Word{Word(c.left), c.count, boolWord(c.ie), boolWord(c.pend)}
}

// RestoreState implements Device.
func (c *Clock) RestoreState(ws []Word) {
	c.left = int(ws[0])
	c.count = ws[1]
	c.ie = ws[2] != 0
	c.pend = ws[3] != 0
}
