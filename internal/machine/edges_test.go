package machine_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/machine"
)

func TestJMPAndJSRModes(t *testing.T) {
	m := runProgram(t, `
		.org 0x100
		MOV #target, R1
		JMP (R1)            ; indirect jump... via register value
	dead1:
		HALT
	target:
		MOV #1, R2
		MOV #sub, R3
		JSR (R3)            ; subroutine via register
		MOV #3, R5
		HALT
	sub:
		MOV #2, R4
		RTS
	`, 100)
	if m.Reg(2) != 1 || m.Reg(4) != 2 || m.Reg(5) != 3 {
		t.Errorf("R2=%d R4=%d R5=%d", m.Reg(2), m.Reg(4), m.Reg(5))
	}
}

func TestJMPRegisterMode(t *testing.T) {
	m := runProgram(t, `
		.org 0x100
		MOV #dest, R0
		JMP R0             ; register mode: PC := R0
		HALT
	dest:
		MOV #7, R1
		HALT
	`, 50)
	if m.Reg(1) != 7 {
		t.Errorf("R1 = %d", m.Reg(1))
	}
}

func TestPushPopMemoryOperands(t *testing.T) {
	m := runProgram(t, `
		.org 0x100
		MOV #0x77, @0x300
		PUSH @0x300
		POP @0x302
		MOV @0x302, R1
		HALT
	`, 50)
	if m.Reg(1) != 0x77 {
		t.Errorf("R1 = %#x", m.Reg(1))
	}
}

func TestMOVToPCIsJump(t *testing.T) {
	m := runProgram(t, `
		.org 0x100
		MOV #dest, R7      ; writing PC jumps
		HALT
	dest:
		MOV #9, R1
		HALT
	`, 50)
	if m.Reg(1) != 9 {
		t.Errorf("R1 = %d", m.Reg(1))
	}
}

func TestSegmentLimitAbort(t *testing.T) {
	m := machine.New(0x2000)
	// Map only 0x10 words of segment 0.
	m.SetSeg(0, 0x400, machine.MakeSegCtl(0x10, machine.AccessRW))
	m.SetVector(machine.VecMMU, 0x200, machine.WithPriority(0, 7))
	m.WritePhys(0x200, machine.Enc2(machine.OpHALT, 0, 0))
	prog := asm.MustAssemble(`
		.org 0
		MOV #1, @0x10      ; first word past the limit
		HALT
	`)
	for i, w := range prog.Words {
		m.WritePhys(0x400+machine.Word(i), w)
	}
	m.SetPSW(machine.PSWUser)
	m.SetAltSP(0x1000)
	m.SetPC(0)
	m.Run(20)
	if reason, vaddr := m.MMUAbort(); reason != machine.MMULimit || vaddr != 0x10 {
		t.Errorf("abort = (%d, %#x), want (MMULimit, 0x10)", reason, vaddr)
	}
}

func TestUserBusTimeoutAborts(t *testing.T) {
	m := machine.New(0x1000) // small RAM: 0x1000..0xEFFF is a hole
	// Map a segment onto the hole.
	m.SetSeg(0, 0x2000, machine.MakeSegCtl(machine.SegmentWords, machine.AccessRW))
	m.SetSeg(15, 0x400, machine.MakeSegCtl(machine.SegmentWords, machine.AccessRO))
	m.SetVector(machine.VecMMU, 0x200, machine.WithPriority(0, 7))
	m.WritePhys(0x200, machine.Enc2(machine.OpHALT, 0, 0))
	prog := asm.MustAssemble(`
		.org 0
		MOV @0x0, R0       ; segment 0 -> phys 0x2000: nothing there
		HALT
	`)
	for i, w := range prog.Words {
		m.WritePhys(0x400+machine.Word(i), w)
	}
	m.SetPSW(machine.PSWUser)
	m.SetAltSP(0x800)
	m.SetPC(0xF000) // virtual segment 15 offset 0
	m.Run(20)
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	if reason, _ := m.MMUAbort(); reason != machine.MMUBusTimeout {
		t.Errorf("abort reason = %d, want MMUBusTimeout", reason)
	}
	if m.Fault != nil {
		t.Errorf("user bus timeout machine-checked: %v", m.Fault)
	}
}

func TestMFPSMTPSUserCC(t *testing.T) {
	m := runProgram(t, `
		.org 0x100
		MTPS #0x0F         ; kernel mode: set all CC bits (priority 0)
		MFPS R0
		HALT
	`, 20)
	if got := m.Reg(0) & 0xF; got != 0xF {
		t.Errorf("CC after MTPS = %#x", got)
	}
}

func TestShiftEdges(t *testing.T) {
	m := runProgram(t, `
		.org 0x100
		MOV #1, R0
		SHL #0, R0         ; shift by zero: unchanged, C clear
		MFPS R1
		MOV #0x8000, R2
		SHL #1, R2         ; the top bit falls into C
		MFPS R3
		HALT
	`, 50)
	if m.Reg(0) != 1 {
		t.Errorf("SHL #0 changed the value: %#x", m.Reg(0))
	}
	if m.Reg(1)&machine.FlagC != 0 {
		t.Error("SHL #0 set carry")
	}
	if m.Reg(2) != 0 {
		t.Errorf("0x8000<<1 = %#x", m.Reg(2))
	}
	if m.Reg(3)&machine.FlagC == 0 {
		t.Error("carry lost on SHL #1 of 0x8000")
	}
	if m.Reg(3)&machine.FlagZ == 0 {
		t.Error("zero flag lost")
	}
}

func TestLinkDeviceSnapshotRoundTrip(t *testing.T) {
	tx, rx := machine.NewLink("w", 4)
	tx.WriteReg(0, 0x40)
	tx.Tick()
	s := tx.SnapshotState()
	tx2, _ := machine.NewLink("w2", 4)
	tx2.RestoreState(s)
	if tx2.SnapshotState()[0] != s[0] {
		t.Error("LinkTX state did not round-trip")
	}
	rx.WriteReg(0, 0x40)
	rs := rx.SnapshotState()
	if len(rs) != 3 {
		t.Errorf("LinkRX snapshot = %v", rs)
	}
}

func TestPrinterDevice(t *testing.T) {
	m := machine.New(0x1000)
	p := machine.NewPrinter("lp", 2)
	h := m.Attach(p)
	im := asm.MustAssemble(`
		.org 0x100
	wait:
		MOV @0xF040, R0
		AND #1, R0
		BEQ wait
		MOV #'A', @0xF041
	wait2:
		MOV @0xF040, R0
		AND #1, R0
		BEQ wait2
		MOV #'B', @0xF041
		HALT
	`)
	_ = h
	m.LoadImage(im.Org, im.Words)
	m.SetPC(im.Org)
	m.Run(200)
	if got := p.OutputString(); got != "AB" {
		t.Errorf("printed %q", got)
	}
	// Snapshot round-trip with output buffered.
	s := p.SnapshotState()
	p2 := machine.NewPrinter("lp2", 2)
	p2.RestoreState(s)
	if p2.OutputString() != "AB" {
		t.Error("printer state did not round-trip")
	}
}

func TestClockSnapshotRoundTrip(t *testing.T) {
	c := machine.NewClock("c", 7)
	c.WriteReg(0, 0x40)
	for i := 0; i < 10; i++ {
		c.Tick()
	}
	s := c.SnapshotState()
	c2 := machine.NewClock("c2", 7)
	c2.RestoreState(s)
	for i := range s {
		if c2.SnapshotState()[i] != s[i] {
			t.Fatalf("clock state word %d did not round-trip", i)
		}
	}
	if !c.Pending() {
		t.Error("clock with IE never pended after 10 ticks at interval 7")
	}
	c.Ack()
	if c.Pending() {
		t.Error("ack did not clear the latch")
	}
}

func TestIllegalExtendedOperandTraps(t *testing.T) {
	m := machine.New(0x1000)
	m.SetVector(machine.VecIllegal, 0x200, machine.WithPriority(0, 7))
	m.WritePhys(0x200, machine.Enc2(machine.OpHALT, 0, 0))
	// MOV with src = ModeExtended reg 3 (reserved): illegal.
	m.WritePhys(0x100, machine.Enc2(machine.OpMOV,
		machine.Spec(machine.ModeExtended, 3), machine.Spec(machine.ModeReg, 0)))
	m.WritePhys(0x101, 0x1234)
	m.SetPC(0x100)
	m.SetReg(machine.RegSP, 0x800)
	m.Run(20)
	if !m.Halted() || m.PC() != 0x201 {
		t.Errorf("reserved operand spec did not trap; PC=%#x", m.PC())
	}
}

func TestUnknownOpcodeTraps(t *testing.T) {
	m := machine.New(0x1000)
	m.SetVector(machine.VecIllegal, 0x200, machine.WithPriority(0, 7))
	m.WritePhys(0x200, machine.Enc2(machine.OpHALT, 0, 0))
	m.WritePhys(0x100, 0xFC00) // opcode 63: undefined
	m.SetPC(0x100)
	m.SetReg(machine.RegSP, 0x800)
	m.Run(20)
	if !m.Halted() || m.PC() != 0x201 {
		t.Errorf("undefined opcode did not trap; PC=%#x", m.PC())
	}
}
