package machine_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

// Property: a machine is a deterministic function of its snapshot — from
// equal states, equal futures, for random programs.
func TestStepDeterminismProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := machine.New(0x400)
		// Fill RAM with random words (random "program"): anything the
		// machine does with it must still be deterministic. Traps vector
		// into random memory too; plant HALT-safe vectors to bound runs.
		for a := 0; a < 0x400; a++ {
			m.WritePhys(machine.Word(a), machine.Word(rng.Uint32()))
		}
		m.SetVector(machine.VecIllegal, 0x3FE, machine.WithPriority(0, 7))
		m.SetVector(machine.VecMMU, 0x3FE, machine.WithPriority(0, 7))
		m.SetVector(machine.VecTRAP, 0x3FE, machine.WithPriority(0, 7))
		m.WritePhys(0x3FE, machine.Enc2(machine.OpHALT, 0, 0))
		m.SetPC(0x100)
		m.SetReg(machine.RegSP, 0x300)

		start := m.Snapshot()
		for i := 0; i < 64; i++ {
			m.Step()
		}
		end1 := m.Snapshot()
		if err := m.Restore(start); err != nil {
			return false
		}
		for i := 0; i < 64; i++ {
			m.Step()
		}
		return end1.Equal(m.Snapshot())
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

// Property: snapshot encoding is canonical — equal snapshots encode
// equally, re-snapshotting after restore is stable.
func TestSnapshotEncodingCanonical(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := machine.New(0x200)
		tty := machine.NewTTY("t", 1)
		m.Attach(tty)
		for a := 0; a < 0x200; a++ {
			m.WritePhys(machine.Word(a), machine.Word(rng.Uint32()))
		}
		tty.InjectString("abc")
		s1 := m.Snapshot()
		if err := m.Restore(s1); err != nil {
			return false
		}
		s2 := m.Snapshot()
		return s1.Equal(s2) && s1.Hash() == s2.Hash()
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: condition-code invariants: Z is set iff the MOV'd value is
// zero; N iff its top bit is set.
func TestMOVFlagsProperty(t *testing.T) {
	prop := func(v uint16) bool {
		m := machine.New(0x200)
		m.WritePhys(0x100, machine.Enc2(machine.OpMOV,
			machine.Spec(machine.ModeExtended, machine.RegPC),
			machine.Spec(machine.ModeReg, 0)))
		m.WritePhys(0x101, machine.Word(v))
		m.WritePhys(0x102, machine.Enc2(machine.OpHALT, 0, 0))
		m.SetPC(0x100)
		m.Run(5)
		psw := m.PSW()
		wantZ := v == 0
		wantN := v&0x8000 != 0
		return (psw&machine.FlagZ != 0) == wantZ && (psw&machine.FlagN != 0) == wantN
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: ADD then SUB of the same value restores the register and the
// machine agrees with Go's uint16 arithmetic.
func TestAddSubInverseProperty(t *testing.T) {
	prop := func(a, b uint16) bool {
		m := machine.New(0x200)
		prog := []machine.Word{
			machine.Enc2(machine.OpMOV, machine.Spec(machine.ModeExtended, machine.RegPC), machine.Spec(machine.ModeReg, 0)),
			machine.Word(a),
			machine.Enc2(machine.OpADD, machine.Spec(machine.ModeExtended, machine.RegPC), machine.Spec(machine.ModeReg, 0)),
			machine.Word(b),
			machine.Enc2(machine.OpMOV, machine.Spec(machine.ModeReg, 0), machine.Spec(machine.ModeReg, 1)),
			machine.Enc2(machine.OpSUB, machine.Spec(machine.ModeExtended, machine.RegPC), machine.Spec(machine.ModeReg, 0)),
			machine.Word(b),
			machine.Enc2(machine.OpHALT, 0, 0),
		}
		m.LoadImage(0x100, prog)
		m.SetPC(0x100)
		m.Run(20)
		return m.Reg(0) == machine.Word(a) && m.Reg(1) == machine.Word(a)+machine.Word(b)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Property: user mode can never reach kernel-protected state: for random
// user programs confined to one segment, the kernel area of RAM is
// untouched and the machine either keeps running, traps, or idles — it
// never machine-checks (Fault) and never ends up halted.
func TestUserModeConfinementProperty(t *testing.T) {
	real := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := machine.New(0x1000)
		for a := 0; a < 0x400; a++ {
			m.WritePhys(machine.Word(a), 0xA5A5)
		}
		// Vectors: all traps land on a kernel HALT (we stop the run there
		// and count it as a clean confinement outcome).
		for _, v := range []machine.Word{machine.VecIllegal, machine.VecMMU, machine.VecTRAP} {
			m.SetVector(v, 0x3F0, machine.WithPriority(0, 7))
		}
		m.WritePhys(0x3F0, machine.Enc2(machine.OpHALT, 0, 0))
		// Vector words themselves must be intact afterwards, so rewrite
		// the pattern check region to skip what we legitimately set.
		// Random user program in segment 0 (phys 0x400..0x7FF).
		for a := 0x400; a < 0x800; a++ {
			m.WritePhys(machine.Word(a), machine.Word(rng.Uint32()))
		}
		m.SetSeg(0, 0x400, machine.MakeSegCtl(0x400, machine.AccessRW))
		m.SetPSW(machine.PSWUser)
		m.SetAltSP(0x3E0) // kernel stack inside kernel area
		m.SetPC(machine.Word(rng.Intn(0x400)))
		m.SetReg(machine.RegSP, 0x3FF)
		for i := 0; i < 200 && !m.Halted(); i++ {
			m.Step()
		}
		if m.Fault != nil {
			return false // machine check = kernel-mode bus error: a leak
		}
		// Kernel pattern intact except the words the test itself wrote
		// (vectors 0x04..0x11, handler 0x3F0, kernel stack 0x3D0..0x3E0).
		touched := func(a int) bool {
			switch {
			case a >= int(machine.VecIllegal) && a < int(machine.VecTRAP)+2:
				return true
			case a == 0x3F0:
				return true
			case a >= 0x3D0 && a < 0x3E0:
				return true
			}
			return false
		}
		for a := 0; a < 0x400; a++ {
			if touched(a) {
				continue
			}
			if m.ReadPhys(machine.Word(a)) != 0xA5A5 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(real, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: EncBranch/BranchOffset round-trip across the legal range.
func TestBranchEncodingRoundTrip(t *testing.T) {
	for off := -512; off <= 511; off++ {
		w := machine.EncBranch(machine.OpBEQ, off)
		if machine.DecodeOp(w) != machine.OpBEQ {
			t.Fatalf("opcode lost at offset %d", off)
		}
		if got := machine.BranchOffset(w); got != off {
			t.Fatalf("offset %d round-tripped to %d", off, got)
		}
	}
}

// Property: operand spec round-trip.
func TestSpecRoundTrip(t *testing.T) {
	for mode := 0; mode < 4; mode++ {
		for reg := 0; reg < 8; reg++ {
			s := machine.Spec(mode, reg)
			if machine.SpecMode(s) != mode || machine.SpecReg(s) != reg {
				t.Fatalf("spec (%d,%d) round-tripped to (%d,%d)",
					mode, reg, machine.SpecMode(s), machine.SpecReg(s))
			}
		}
	}
}
