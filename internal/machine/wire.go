package machine

import (
	"bytes"
	"encoding/binary"
	"fmt"
)

// Self-describing binary codec for snapshots. Encode (snapshot.go) is the
// canonical digest form — compact but undecodable, since it carries no
// length headers — and cannot change without invalidating every recorded
// Hash. MarshalBinary is the persistence form: versioned, length-prefixed
// and bounds-checked so a snapshot written by one build can be decoded by
// another (or rejected cleanly when it cannot).

const (
	wireMagic   = 0x534d3131 // "SM11"
	wireVersion = 1
)

// MarshalBinary serializes the snapshot in the self-describing wire format
// understood by DecodeSnapshot.
func (s *Snapshot) MarshalBinary() ([]byte, error) {
	var buf bytes.Buffer
	w := func(v any) { binary.Write(&buf, binary.LittleEndian, v) }
	w(uint32(wireMagic))
	w(uint32(wireVersion))
	w(s.Regs[:])
	w(s.AltSP)
	w(s.PSW)
	w(s.SegBase[:])
	w(s.SegCtl[:])
	w(s.MMUStat)
	w(s.MMUAddr)
	w(boolWord(s.Halted))
	w(boolWord(s.Waiting))
	w(s.TrapCode)
	w(uint32(len(s.RAM)))
	w(s.RAM)
	w(uint32(len(s.Devices)))
	for _, dv := range s.Devices {
		w(uint32(len(dv)))
		w(dv)
	}
	return buf.Bytes(), nil
}

// DecodeSnapshot parses a MarshalBinary encoding. Every length field is
// validated against the bytes remaining, so arbitrary (fuzzed) input fails
// with an error rather than a panic or an over-allocation.
func DecodeSnapshot(data []byte) (*Snapshot, error) {
	r := &wireReader{data: data}
	if magic := r.u32(); magic != wireMagic {
		return nil, fmt.Errorf("machine: bad snapshot magic %#x", magic)
	}
	if v := r.u32(); v != wireVersion {
		return nil, fmt.Errorf("machine: unsupported snapshot version %d", v)
	}
	s := &Snapshot{}
	for i := range s.Regs {
		s.Regs[i] = r.word()
	}
	s.AltSP = r.word()
	s.PSW = r.word()
	for i := range s.SegBase {
		s.SegBase[i] = r.word()
	}
	for i := range s.SegCtl {
		s.SegCtl[i] = r.word()
	}
	s.MMUStat = r.word()
	s.MMUAddr = r.word()
	s.Halted = r.word() != 0
	s.Waiting = r.word() != 0
	s.TrapCode = r.word()
	s.RAM = r.words(r.u32())
	ndev := r.u32()
	if r.err == nil && uint64(ndev)*4 > uint64(len(data)) {
		return nil, fmt.Errorf("machine: snapshot claims %d devices in %d bytes", ndev, len(data))
	}
	for i := uint32(0); i < ndev && r.err == nil; i++ {
		s.Devices = append(s.Devices, r.words(r.u32()))
	}
	if r.err != nil {
		return nil, r.err
	}
	if len(r.data) != 0 {
		return nil, fmt.Errorf("machine: %d trailing bytes after snapshot", len(r.data))
	}
	return s, nil
}

// wireReader consumes little-endian fields, latching the first error so
// callers can check once at the end.
type wireReader struct {
	data []byte
	err  error
}

func (r *wireReader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if len(r.data) < n {
		r.err = fmt.Errorf("machine: truncated snapshot (need %d bytes, have %d)", n, len(r.data))
		return nil
	}
	b := r.data[:n]
	r.data = r.data[n:]
	return b
}

func (r *wireReader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *wireReader) word() Word {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return Word(binary.LittleEndian.Uint16(b))
}

func (r *wireReader) words(n uint32) []Word {
	// A word costs 2 bytes on the wire; reject counts the remaining input
	// cannot possibly satisfy before allocating.
	if r.err == nil && uint64(n)*2 > uint64(len(r.data)) {
		r.err = fmt.Errorf("machine: snapshot claims %d words in %d bytes", n, len(r.data))
		return nil
	}
	b := r.take(int(n) * 2)
	if b == nil {
		return nil
	}
	out := make([]Word, n)
	for i := range out {
		out[i] = Word(binary.LittleEndian.Uint16(b[2*i:]))
	}
	return out
}
