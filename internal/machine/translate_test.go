package machine_test

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/machine"
)

// The translation cache must be semantically invisible: every test here
// drives a translated machine and an interpreted machine in lockstep from
// the same initial state and stimuli and requires byte-identical snapshots
// at every step. Any divergence — registers, PSW, cycles, RAM, MMU abort
// latches, device state — is a soundness bug in the cache, not a test
// tolerance issue.

// lockstep steps both machines n times, comparing canonical snapshot
// encodings after every step. mutate, when non-nil, is invoked before each
// step with the step index so tests can inject identical stimuli (code
// stores, device input) into both machines mid-run.
func lockstep(t *testing.T, mt, mi *machine.Machine, n int, mutate func(step int, m *machine.Machine)) {
	t.Helper()
	if !mt.TranslationEnabled() || mi.TranslationEnabled() {
		t.Fatal("lockstep wants one translated and one interpreted machine")
	}
	for i := 0; i < n; i++ {
		if mutate != nil {
			mutate(i, mt)
			mutate(i, mi)
		}
		mt.Step()
		mi.Step()
		if mt.Cycles() != mi.Cycles() {
			t.Fatalf("step %d: cycles diverged: translated %d, interpreted %d",
				i, mt.Cycles(), mi.Cycles())
		}
		st, si := mt.Snapshot(), mi.Snapshot()
		if !st.Equal(si) {
			t.Fatalf("step %d: state diverged (PC %#x vs %#x, PSW %#x vs %#x)",
				i, st.Regs[machine.RegPC], si.Regs[machine.RegPC], st.PSW, si.PSW)
		}
	}
}

// randomPair builds two identically prepared machines over a random RAM
// image with HALT-safe trap vectors, one translated and one interpreted.
func randomPair(rng *rand.Rand) (mt, mi *machine.Machine) {
	build := func() *machine.Machine {
		m := machine.New(0x400)
		return m
	}
	mt, mi = build(), build()
	mi.SetTranslation(false)
	for a := 0; a < 0x400; a++ {
		w := machine.Word(rng.Uint32())
		mt.WritePhys(machine.Word(a), w)
		mi.WritePhys(machine.Word(a), w)
	}
	for _, m := range []*machine.Machine{mt, mi} {
		m.SetVector(machine.VecIllegal, 0x3FE, machine.WithPriority(0, 7))
		m.SetVector(machine.VecMMU, 0x3FE, machine.WithPriority(0, 7))
		m.SetVector(machine.VecTRAP, 0x3FE, machine.WithPriority(0, 7))
		m.WritePhys(0x3FE, machine.Enc2(machine.OpHALT, 0, 0))
		m.SetPC(0x100)
		m.SetReg(machine.RegSP, 0x300)
	}
	return mt, mi
}

// Property: translated execution of random programs is step-for-step
// byte-identical to interpreted execution.
func TestTranslatedLockstepRandomProperty(t *testing.T) {
	prop := func(seed int64) bool {
		mt, mi := randomPair(rand.New(rand.NewSource(seed)))
		for i := 0; i < 128; i++ {
			mt.Step()
			mi.Step()
			if mt.Cycles() != mi.Cycles() || !mt.Snapshot().Equal(mi.Snapshot()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Property: user-mode execution under the MMU — where blocks are keyed by
// physical address and revalidated against the mapping — stays lockstep
// with the interpreter, including remaps mid-run.
func TestTranslatedLockstepUserModeProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		build := func() *machine.Machine { return machine.New(0x1000) }
		mt, mi := build(), build()
		mi.SetTranslation(false)
		prog := make([]machine.Word, 0x400)
		for i := range prog {
			prog[i] = machine.Word(rng.Uint32())
		}
		pc0 := machine.Word(rng.Intn(0x400))
		for _, m := range []*machine.Machine{mt, mi} {
			for _, v := range []machine.Word{machine.VecIllegal, machine.VecMMU, machine.VecTRAP} {
				m.SetVector(v, 0x3F0, machine.WithPriority(0, 7))
			}
			m.WritePhys(0x3F0, machine.Enc2(machine.OpHALT, 0, 0))
			m.LoadImage(0x400, prog)
			// Two segments aliasing the same physical code: the same
			// physical block runs under different virtual addresses.
			m.SetSeg(0, 0x400, machine.MakeSegCtl(0x400, machine.AccessRW))
			m.SetSeg(1, 0x400, machine.MakeSegCtl(0x200, machine.AccessRO))
			m.SetPSW(machine.PSWUser)
			m.SetAltSP(0x3E0)
			m.SetPC(pc0)
			m.SetReg(machine.RegSP, 0x3FF)
		}
		remapAt := 32 + rng.Intn(64)
		mutate := func(step int, m *machine.Machine) {
			if step == remapAt {
				// Remap segment 0 mid-run: cached blocks decoded under the
				// old mapping must not be entered under the new one.
				m.SetSeg(0, 0x500, machine.MakeSegCtl(0x300, machine.AccessRW))
			}
		}
		for i := 0; i < 128; i++ {
			mutate(i, mt)
			mutate(i, mi)
			mt.Step()
			mi.Step()
			if mt.Cycles() != mi.Cycles() || !mt.Snapshot().Equal(mi.Snapshot()) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

// Self-modifying code: an instruction patches the instruction immediately
// after itself. The interpreter naturally executes the patched word; the
// translated machine must invalidate the block it is currently executing
// and re-decode.
func TestTranslatedSelfModifyingCode(t *testing.T) {
	patched := machine.Enc2(machine.OpXOR,
		machine.Spec(machine.ModeReg, 0), machine.Spec(machine.ModeReg, 0))
	prog := []machine.Word{
		// 0x100: MOV #7, R0
		machine.Enc2(machine.OpMOV, machine.Spec(machine.ModeExtended, machine.RegPC), machine.Spec(machine.ModeReg, 0)),
		7,
		// 0x102: MOV #0x107, R3
		machine.Enc2(machine.OpMOV, machine.Spec(machine.ModeExtended, machine.RegPC), machine.Spec(machine.ModeReg, 3)),
		0x107,
		// 0x104: MOV #XOR R0,R0, R2
		machine.Enc2(machine.OpMOV, machine.Spec(machine.ModeExtended, machine.RegPC), machine.Spec(machine.ModeReg, 2)),
		patched,
		// 0x106: MOV R2, (R3) — patches the NEXT instruction
		machine.Enc2(machine.OpMOV, machine.Spec(machine.ModeReg, 2), machine.Spec(machine.ModeIndirect, 3)),
		// 0x107: ADD R0, R0 — replaced by XOR R0, R0 before execution
		machine.Enc2(machine.OpADD, machine.Spec(machine.ModeReg, 0), machine.Spec(machine.ModeReg, 0)),
		// 0x108: HALT
		machine.Enc2(machine.OpHALT, 0, 0),
	}
	build := func() *machine.Machine {
		m := machine.New(0x400)
		m.LoadImage(0x100, prog)
		m.SetPC(0x100)
		return m
	}
	mt, mi := build(), build()
	mi.SetTranslation(false)
	lockstep(t, mt, mi, 8, nil)
	if !mt.Halted() || !mi.Halted() {
		t.Fatal("program did not halt")
	}
	if got := mt.Reg(0); got != 0 {
		t.Fatalf("patched XOR did not execute: R0 = %d, want 0", got)
	}
	if st := mt.TranslationStats(); st.Invalidations == 0 {
		t.Error("self-modifying store evicted no blocks")
	}
}

// DeltaRestore rewrites RAM behind the write barrier; stale translations of
// the pre-restore code must not survive it.
func TestTranslatedDeltaRestore(t *testing.T) {
	prog := []machine.Word{
		// loop: ADD #1, R0; BR loop
		machine.Enc2(machine.OpADD, machine.Spec(machine.ModeExtended, machine.RegPC), machine.Spec(machine.ModeReg, 0)),
		1,
		machine.EncBranch(machine.OpBR, -3),
	}
	build := func() *machine.Machine {
		m := machine.New(0x400)
		m.LoadImage(0x100, prog)
		m.SetPC(0x100)
		return m
	}
	mt, mi := build(), build()
	mi.SetTranslation(false)

	run := func(m *machine.Machine) {
		d := m.DeltaSnapshot()
		if d == nil {
			t.Fatal("DeltaSnapshot refused")
		}
		for i := 0; i < 20; i++ {
			m.Step()
		}
		// Patch the loop body into "SUB #1, R0" and run a little more ...
		m.WritePhys(0x100, machine.Enc2(machine.OpSUB,
			machine.Spec(machine.ModeExtended, machine.RegPC), machine.Spec(machine.ModeReg, 0)))
		for i := 0; i < 10; i++ {
			m.Step()
		}
		// ... then roll everything back: the ADD loop is in RAM again and
		// must be what executes.
		m.DeltaRestore(d)
		m.EndDelta(d)
		for i := 0; i < 14; i++ {
			m.Step()
		}
	}
	run(mt)
	run(mi)
	if !mt.Snapshot().Equal(mi.Snapshot()) {
		t.Fatal("translated and interpreted states diverged across DeltaRestore")
	}
	if got := mt.Reg(0); got != 7 {
		t.Fatalf("after rollback, R0 = %d, want 7 (ADD loop, 14 steps)", got)
	}
}

// Run's batched fast-dispatch loop must agree exactly — final state AND
// cycle count — with single-stepping the interpreter.
func TestTranslatedRunBatchEquivalence(t *testing.T) {
	prop := func(seed int64) bool {
		mt, mi := randomPair(rand.New(rand.NewSource(seed)))
		n := mt.Run(200)
		steps := 0
		for ; steps < 200 && !mi.Halted(); steps++ {
			mi.Step()
		}
		return n == steps && mt.Cycles() == mi.Cycles() &&
			mt.Snapshot().Equal(mi.Snapshot())
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// Devices and interrupts: translation must not disturb tick interleaving or
// interrupt dispatch, and device input must reach both machines identically.
func TestTranslatedDeviceLockstep(t *testing.T) {
	prog := []machine.Word{
		// loop: ADD #1, R0; BR loop — interrupted by TTY input
		machine.Enc2(machine.OpADD, machine.Spec(machine.ModeExtended, machine.RegPC), machine.Spec(machine.ModeReg, 0)),
		1,
		machine.EncBranch(machine.OpBR, -3),
	}
	build := func() (*machine.Machine, *machine.TTY) {
		m := machine.New(0x400)
		tty := machine.NewTTY("t", 1)
		h := m.Attach(tty)
		m.SetVector(machine.VecIllegal, 0x3FE, machine.WithPriority(0, 7))
		m.WritePhys(0x3FE, machine.Enc2(machine.OpHALT, 0, 0))
		// Device vector: acknowledge by just returning.
		m.SetVector(h.Vector, 0x200, machine.WithPriority(0, 7))
		m.WritePhys(0x200, machine.Enc2(machine.OpRTI, 0, 0))
		m.LoadImage(0x100, prog)
		m.SetPC(0x100)
		m.SetReg(machine.RegSP, 0x300)
		return m, tty
	}
	mt, tt := build()
	mi, ti := build()
	mi.SetTranslation(false)
	lockstep(t, mt, mi, 96, func(step int, m *machine.Machine) {
		if step == 24 {
			if m == mt {
				m.Inject(tt, []machine.Word{'x'})
			} else {
				m.Inject(ti, []machine.Word{'x'})
			}
		}
	})
}

// Host-state-only: toggling translation mid-run changes nothing observable,
// and snapshots taken with a hot cache restore onto a cold machine exactly.
func TestTranslationToggleInvisible(t *testing.T) {
	mt, mi := randomPair(rand.New(rand.NewSource(99)))
	for i := 0; i < 40; i++ {
		mt.Step()
		mi.Step()
	}
	// Snapshot with a hot cache, restore onto the interpreted machine.
	if err := mi.Restore(mt.Snapshot()); err != nil {
		t.Fatal(err)
	}
	if !mt.Snapshot().Equal(mi.Snapshot()) {
		t.Fatal("snapshot round-trip differs with cache hot")
	}
	// Turn translation off mid-run on the translated machine; both must
	// continue identically.
	mt.SetTranslation(false)
	for i := 0; i < 40; i++ {
		mt.Step()
		mi.Step()
		if !mt.Snapshot().Equal(mi.Snapshot()) {
			t.Fatalf("step %d: divergence after disabling translation", i)
		}
	}
	// And back on.
	mt.SetTranslation(true)
	for i := 0; i < 40; i++ {
		mt.Step()
		mi.Step()
		if !mt.Snapshot().Equal(mi.Snapshot()) {
			t.Fatalf("step %d: divergence after re-enabling translation", i)
		}
	}
}

// FuzzTranslationInvalidation drives translated and interpreted machines in
// lockstep over a fuzzer-chosen program while applying a fuzzer-chosen
// schedule of code stores mid-run, asserting byte-identical state at every
// step. The committed corpus covers self-modification of the current block,
// the next instruction, and branch targets.
func FuzzTranslationInvalidation(f *testing.F) {
	// Seed: the self-modifying program from TestTranslatedSelfModifyingCode
	// plus mutation schedules that rewrite a loop body and a branch word.
	f.Add(int64(1), []byte{0x10, 0x02, 0x07, 0x20, 0x05, 0x0c})
	f.Add(int64(42), []byte{0x00, 0x00, 0xff, 0x30, 0x01, 0x00, 0x40, 0x02, 0x55})
	f.Add(int64(7), []byte{})
	f.Fuzz(func(t *testing.T, seed int64, sched []byte) {
		mt, mi := randomPair(rand.New(rand.NewSource(seed)))
		// Decode the mutation schedule: triples of (step, offset, value
		// nibble) — each store lands inside the executing program region so
		// invalidation actually gets exercised.
		type mut struct {
			step int
			addr machine.Word
			val  machine.Word
		}
		var muts []mut
		for i := 0; i+2 < len(sched) && len(muts) < 8; i += 3 {
			muts = append(muts, mut{
				step: int(sched[i]) % 96,
				addr: 0x100 + machine.Word(sched[i+1])%0x80,
				val:  machine.Word(sched[i+2]) << 2,
			})
		}
		for i := 0; i < 96; i++ {
			for _, mu := range muts {
				if mu.step == i {
					mt.WritePhys(mu.addr, mu.val)
					mi.WritePhys(mu.addr, mu.val)
				}
			}
			mt.Step()
			mi.Step()
			if mt.Cycles() != mi.Cycles() {
				t.Fatalf("step %d: cycles diverged", i)
			}
			if !mt.Snapshot().Equal(mi.Snapshot()) {
				t.Fatalf("step %d: state diverged after code mutation", i)
			}
		}
	})
}
