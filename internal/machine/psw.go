package machine

// Processor status word layout.
//
//	bit 15    mode: 0 = kernel, 1 = user
//	bits 5-7  interrupt priority (0..7); interrupts at priority <= this are held off
//	bit 3     N (negative)
//	bit 2     Z (zero)
//	bit 1     V (overflow)
//	bit 0     C (carry)
const (
	PSWUser Word = 1 << 15

	pswPrioShift = 5
	pswPrioMask  = 7 << pswPrioShift

	FlagN Word = 1 << 3
	FlagZ Word = 1 << 2
	FlagV Word = 1 << 1
	FlagC Word = 1 << 0

	pswCCMask = FlagN | FlagZ | FlagV | FlagC
)

// PSWPriority extracts the interrupt priority field of a PSW value.
func PSWPriority(psw Word) int { return int(psw&pswPrioMask) >> pswPrioShift }

// WithPriority returns psw with its priority field replaced by p (0..7).
func WithPriority(psw Word, p int) Word {
	return psw&^pswPrioMask | Word(p&7)<<pswPrioShift
}

// IsUser reports whether the PSW selects user mode.
func IsUser(psw Word) bool { return psw&PSWUser != 0 }

// ccNZ computes the N and Z flags for a result value.
func ccNZ(v Word) Word {
	var cc Word
	if v == 0 {
		cc |= FlagZ
	}
	if v&0x8000 != 0 {
		cc |= FlagN
	}
	return cc
}
