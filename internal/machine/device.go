package machine

// Device is a memory-mapped peripheral. Its registers occupy a contiguous
// block of the I/O page; the machine assigns the block base and an interrupt
// vector when the device is attached. SM11 has no DMA — following the SUE
// design, devices can only be reached through their registers, so the MMU
// protects them "just like ordinary memory locations" and the kernel can
// give each regime exclusive ownership of its devices by mapping only that
// regime's register blocks.
type Device interface {
	// Name identifies the device for diagnostics and snapshots.
	Name() string
	// Size is the number of Word registers the device exposes.
	Size() int
	// Reset returns the device to its power-on state.
	Reset()
	// ReadReg reads register off (0 <= off < Size).
	ReadReg(off int) Word
	// WriteReg writes register off.
	WriteReg(off int, v Word)
	// Tick advances the device by one machine cycle.
	Tick()
	// Pending reports whether the device is requesting an interrupt.
	Pending() bool
	// Priority is the device's fixed interrupt priority (1..7).
	Priority() int
	// Ack tells the device its interrupt has been taken.
	Ack()
	// SnapshotState serializes all security-relevant device state.
	SnapshotState() []Word
	// RestoreState is the inverse of SnapshotState.
	RestoreState(ws []Word)
}

// Replicator is implemented by devices that can manufacture a fresh,
// power-on copy of themselves with the same configuration (name, rates,
// priority). Replication is what lets a whole machine be cloned for
// parallel verification: the clone attaches replicas in the original bus
// order and then restores a Snapshot over them, which carries the dynamic
// state across. Devices wired to shared environment state (link endpoints)
// deliberately do not implement Replicator — a replica could not share the
// wire without coupling the clone to the original.
type Replicator interface {
	Device
	// Replicate returns the power-on copy, or nil if this instance cannot
	// be replicated.
	Replicate() Device
}

// InputSink is implemented by devices that accept stimuli from the outside
// world (the model's INPUT function delivers to these).
type InputSink interface {
	Device
	// InjectInput makes the given words available as external input.
	InjectInput(ws []Word)
}

// OutputSource is implemented by devices that emit data to the outside
// world (the model's OUTPUT function observes these).
type OutputSource interface {
	Device
	// PeekOutput returns the output emitted so far without consuming it.
	PeekOutput() []Word
	// DrainOutput returns and clears the emitted output.
	DrainOutput() []Word
}

// I/O page layout (physical word addresses). Everything at or above IOBase
// is an I/O register rather than RAM.
const (
	// IOBase is the first word address of the I/O page.
	IOBase Word = 0xF000

	// MMU control registers.
	IOSegBase Word = 0xF000 // +i: segment i physical base
	IOSegCtl  Word = 0xF010 // +i: segment i limit|access
	IOMMUStat Word = 0xF020 // latched abort reason
	IOMMUAddr Word = 0xF021 // latched abort virtual address

	// IODevBase is where device register blocks begin; blocks are assigned
	// upward from here at Attach time, rounded to 8-word boundaries.
	IODevBase Word = 0xF040
)

// Interrupt and trap vectors (physical word addresses of two-word
// [newPC, newPSW] entries). Device vectors are assigned from VecDevBase.
const (
	VecIllegal Word = 0x04 // illegal instruction or privileged op in user mode
	VecMMU     Word = 0x08 // MMU abort (user-mode access violation)
	VecTRAP    Word = 0x0C // TRAP instruction (kernel service call)
	VecDevBase Word = 0x20
)

// Handle describes an attached device's location on the bus.
type Handle struct {
	Base   Word // first word address of the register block
	Vector Word // interrupt vector assigned to the device
}
