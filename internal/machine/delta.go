package machine

import "sync"

// Delta snapshots: O(dirty) checkpoints for the verification hot loop.
//
// A full machine.Snapshot deep-copies all of RAM and every device, so the
// separability checker's save/perturb/restore cycle costs O(RAM) per
// condition instance. A Delta instead records, from the moment it is taken,
// the *old* value of every word the machine subsequently writes (a
// first-touch undo log behind a write barrier) plus the pre-mutation state
// of every device subsequently touched. Rolling back then costs O(words
// actually written) — for a single instruction or a perturbation, a few
// dozen words instead of the machine's entire 60K-word RAM.
//
// The CPU and MMU block (registers, PSW, segment registers, abort latches,
// halt/wait/trap state — ~40 words) is saved eagerly at DeltaSnapshot time:
// the interpreter mutates registers on nearly every instruction, so logging
// them individually would cost more than copying them outright.
//
// Invariants:
//
//   - At most one Delta is active per machine; DeltaSnapshot returns nil
//     while one is active and the caller must fall back to full snapshots.
//   - While a Delta is active, EVERY mutation of RAM or device state flows
//     through the write barrier (writeRAM / touchDevice). The bulk
//     operations Restore, ClearRAM, LoadImage and Reset degrade to
//     word-by-word journaling while a delta is active, so correctness does
//     not depend on callers avoiding them.
//   - DeltaRestore returns the machine to the snapshot point and KEEPS the
//     delta active, so a checker can roll back many times per checkpoint.
//   - Like Snapshot/Restore, a Delta covers the modelled state only: the
//     cycle counter, the Fault cause and the tracer hooks are outside it.
//
// Deltas are pooled (sync.Pool): EndDelta recycles the undo-log and device
// buffers, so steady-state checking allocates almost nothing per state.
type Delta struct {
	owner *Machine

	// Eagerly saved CPU/MMU block.
	regs     [8]Word
	altSP    Word
	psw      Word
	segBase  [NumSegments]Word
	segCtl   [NumSegments]Word
	mmuStat  Word
	mmuAddr  Word
	halted   bool
	waiting  bool
	trapCode Word

	// First-touch RAM undo log: olds[i] is the value addrs[i] held at the
	// snapshot point (or at the most recent DeltaRestore). Each address
	// appears at most once per rollback generation.
	addrs []Word
	olds  []Word

	// Per-device copy-on-first-touch pre-mutation snapshots.
	devTouched []bool
	devOld     [][]Word
	devVerAt   []uint64
}

// DirtyWords returns how many distinct RAM words have been written since
// the snapshot point (or the last DeltaRestore). Exposed for tests and
// benchmarks measuring the O(dirty) claim.
func (d *Delta) DirtyWords() int { return len(d.addrs) }

var deltaPool = sync.Pool{New: func() any { return &Delta{} }}

// DeltaSnapshot begins delta tracking and returns the checkpoint handle.
// It returns nil if a delta is already active (no nesting); the caller
// must then fall back to the full Snapshot/Restore path.
func (m *Machine) DeltaSnapshot() *Delta {
	if m.delta != nil {
		return nil
	}
	if m.dirtyMark == nil {
		m.dirtyMark = make([]uint32, m.ramWords)
	}
	m.advanceEpoch()

	d := deltaPool.Get().(*Delta)
	d.owner = m
	d.addrs = d.addrs[:0]
	d.olds = d.olds[:0]
	n := len(m.devices)
	if cap(d.devTouched) < n {
		d.devTouched = make([]bool, n)
		d.devOld = make([][]Word, n)
		d.devVerAt = make([]uint64, n)
	} else {
		d.devTouched = d.devTouched[:n]
		d.devOld = d.devOld[:n]
		d.devVerAt = d.devVerAt[:n]
		for i := range d.devTouched {
			d.devTouched[i] = false
		}
	}
	d.saveCPU(m)
	m.delta = d
	m.deltaGen++
	return d
}

// DeltaRestore rolls the machine back to d's snapshot point: logged RAM
// words get their old values back, touched devices are restored from their
// pre-mutation snapshots, and the eagerly saved CPU/MMU block is reloaded.
// The delta stays active, ready to absorb (and later undo) further writes.
func (m *Machine) DeltaRestore(d *Delta) {
	if m.delta != d || d == nil || d.owner != m {
		panic("machine: DeltaRestore of a delta that is not active on this machine")
	}
	// Each logged address appears once with its snapshot-point value, so
	// write-back order is irrelevant. The write-back bypasses writeRAM, so
	// it must invalidate translated blocks itself: the words may be code.
	for i, a := range d.addrs {
		m.ram[a] = d.olds[i]
		m.invalidateTC(a)
	}
	d.addrs = d.addrs[:0]
	d.olds = d.olds[:0]
	m.advanceEpoch()
	d.restoreCPU(m)
	for i := range m.devices {
		if d.devTouched[i] {
			m.devices[i].RestoreState(d.devOld[i])
			// The device is back at its snapshot-point state, so its
			// version rewinds too — digest caches keyed on versions then
			// recognise checkpoint-time state as fresh again.
			m.devVer[i] = d.devVerAt[i]
			d.devTouched[i] = false
		}
	}
}

// EndDelta stops tracking WITHOUT changing machine state (callers wanting
// the snapshot state back call DeltaRestore first) and recycles the
// delta's buffers.
func (m *Machine) EndDelta(d *Delta) {
	if d == nil {
		return
	}
	if m.delta == d {
		m.delta = nil
		m.deltaGen++
	}
	d.owner = nil
	deltaPool.Put(d)
}

// DeltaActive reports whether a delta checkpoint is currently tracking
// writes.
func (m *Machine) DeltaActive() bool { return m.delta != nil }

// DeltaGen returns the delta generation counter: it advances whenever
// tracking starts or stops, so a cached value derived under one checkpoint
// can never be mistaken as fresh under another (writes between checkpoints
// are not journaled).
func (m *Machine) DeltaGen() uint64 { return m.deltaGen }

// DeltaAddrs returns the RAM addresses written since the snapshot point or
// the most recent DeltaRestore (each distinct address at least once; no
// order guarantee). The slice aliases the live log: callers must only read
// it, and only before the next machine mutation. Returns nil when no delta
// is active.
func (m *Machine) DeltaAddrs() []Word {
	if m.delta == nil {
		return nil
	}
	return m.delta.addrs
}

// DeviceVersion returns the mutation counter of attached device i. It
// advances on every (potentially) mutating access — register writes and
// reads (some devices have read side effects), ticks, acks, resets, input
// injection — and rewinds with DeltaRestore, so version equality implies
// state equality within one delta generation.
func (m *Machine) DeviceVersion(i int) uint64 { return m.devVer[i] }

// Inject delivers input words to an attached input-sink device through the
// write barrier, so that delta tracking and device versioning see the
// mutation. It reports whether the device was found and accepts input.
// External code must use this instead of calling InjectInput directly
// (lint-enforced: rule raw-device-access).
func (m *Machine) Inject(d Device, ws []Word) bool {
	for i, dd := range m.devices {
		if dd == d {
			sink, ok := dd.(InputSink)
			if !ok {
				return false
			}
			m.touchDevice(i)
			sink.InjectInput(ws)
			return true
		}
	}
	return false
}

// --- the write barrier ---

// writeRAM is the single store path for RAM: every write, from the
// interpreter, the bus, the trap sequence or the bulk loaders, lands here
// so an active delta can log the first-touch old value. Costs one nil
// check when no delta is active.
func (m *Machine) writeRAM(a, v Word) {
	if d := m.delta; d != nil && m.dirtyMark[a] != m.dirtyEpoch {
		m.dirtyMark[a] = m.dirtyEpoch
		d.addrs = append(d.addrs, a)
		d.olds = append(d.olds, m.ram[a])
	}
	// The same barrier keeps the translation cache coherent: any store
	// into a translated range evicts the covering blocks (translate.go).
	if t := m.tc; t != nil && t.cover[a] != 0 {
		t.invalidateWord(a)
	}
	m.ram[a] = v
}

// touchDevice marks device i as (potentially) mutated: its version
// advances, and an active delta captures its pre-mutation state on first
// touch.
func (m *Machine) touchDevice(i int) {
	m.devVer[i]++
	if d := m.delta; d != nil && !d.devTouched[i] {
		d.devTouched[i] = true
		d.devOld[i] = append(d.devOld[i][:0], m.devices[i].SnapshotState()...)
		d.devVerAt[i] = m.devVer[i] - 1
	}
}

// advanceEpoch starts a new first-touch dedup generation for the dirty-word
// marks (O(1) instead of clearing the mark array). On the ~never wrap it
// clears the array to keep the "mark==epoch means already logged"
// invariant exact.
func (m *Machine) advanceEpoch() {
	m.dirtyEpoch++
	if m.dirtyEpoch == 0 {
		for i := range m.dirtyMark {
			m.dirtyMark[i] = 0
		}
		m.dirtyEpoch = 1
	}
}

func (d *Delta) saveCPU(m *Machine) {
	d.regs = m.regs
	d.altSP = m.altSP
	d.psw = m.psw
	d.segBase = m.mmu.Base
	d.segCtl = m.mmu.Ctl
	d.mmuStat = m.mmu.AbortReason
	d.mmuAddr = m.mmu.AbortVaddr
	d.halted = m.halted
	d.waiting = m.waiting
	d.trapCode = m.trapCode
}

func (d *Delta) restoreCPU(m *Machine) {
	m.regs = d.regs
	m.altSP = d.altSP
	m.psw = d.psw
	m.mmu.Base = d.segBase
	m.mmu.Ctl = d.segCtl
	m.mapGen++
	m.mmu.AbortReason = d.mmuStat
	m.mmu.AbortVaddr = d.mmuAddr
	m.halted = d.halted
	m.waiting = d.waiting
	m.trapCode = d.trapCode
}
