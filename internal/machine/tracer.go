package machine

import "fmt"

// TraceEntry describes one instruction about to execute.
type TraceEntry struct {
	Cycle uint64
	PC    Word // virtual PC in the executing mode
	User  bool
	Text  string // disassembly (best effort; "??" when unfetchable)
}

func (e TraceEntry) String() string {
	mode := "krn"
	if e.User {
		mode = "usr"
	}
	return fmt.Sprintf("%8d %s %04x  %s", e.Cycle, mode, e.PC, e.Text)
}

// SetTracer installs (or, with nil, removes) a hook called before every
// instruction execution. Tracing never perturbs the machine: operands are
// peeked through a side-effect-free path.
func (m *Machine) SetTracer(fn func(TraceEntry)) { m.tracer = fn }

// Peek reads a word through the current mode's address map without any
// side effect: MMU abort state is preserved and I/O registers are not
// consulted (device register reads can consume data).
func (m *Machine) Peek(vaddr Word) (Word, bool) {
	pa := vaddr
	if IsUser(m.psw) {
		savedR, savedV := m.mmu.AbortReason, m.mmu.AbortVaddr
		var ok bool
		pa, ok = m.mmu.translate(vaddr, false)
		m.mmu.AbortReason, m.mmu.AbortVaddr = savedR, savedV
		if !ok {
			return 0, false
		}
	}
	if int(pa) < m.ramWords {
		return m.ram[pa], true
	}
	return 0, false
}

// traceCurrent emits a TraceEntry for the instruction at PC. The caller
// (stepCPU) has already established m.tracer != nil, keeping the check off
// the per-instruction hot path.
func (m *Machine) traceCurrent() {
	pc := m.regs[RegPC]
	var words [3]Word
	n := 0
	for ; n < 3; n++ {
		w, ok := m.Peek(pc + Word(n))
		if !ok {
			break
		}
		words[n] = w
	}
	text := "??"
	if n > 0 && InstrLen(words[0]) <= n {
		text, _ = Disasm(words[:n])
	}
	m.tracer(TraceEntry{
		Cycle: m.cycles,
		PC:    pc,
		User:  IsUser(m.psw),
		Text:  text,
	})
}
