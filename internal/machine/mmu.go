package machine

// The SM11 MMU divides the 16-bit virtual address space seen in user mode
// into sixteen 4K-word segments. Each segment has a word-granular physical
// base, a limit (number of mapped words, 0..4096) and an access code. Kernel
// mode bypasses translation entirely: kernel virtual addresses are physical
// addresses with full access, which is how the separation kernel protects
// itself — it simply never maps its own partition into any regime's segments.
//
// The MMU control registers are memory mapped into the I/O page (see
// iomap.go) so that, exactly as on the PDP-11, they can be protected "just
// like ordinary memory locations": a regime can touch them only if the
// kernel maps them into one of its segments, which a correct kernel never
// does.

// Segment access codes (bits 13-14 of a segment control register).
const (
	AccessNone = 0 // any reference aborts
	AccessRO   = 1 // reads allowed, writes abort
	AccessRW   = 2 // reads and writes allowed
)

const (
	// NumSegments is the number of user-mode segments.
	NumSegments = 16
	// SegmentWords is the size of each virtual segment in words.
	SegmentWords = 1 << 12

	segLimitMask   = 0x0fff
	segAccessShift = 13
)

// SegCtl packs a limit (words, 0..4096 where 0x1000 is expressed as limit
// 0xFFF+1 — use limit 0x1000 via full-segment flag below) and access code
// into a segment control word. A limit of SegmentWords is encoded as
// limit field 0 with the full-segment bit set.
const segFullBit = 1 << 12

// MakeSegCtl builds a segment control word from a limit in words
// (0..SegmentWords) and an access code.
func MakeSegCtl(limit int, access int) Word {
	if limit >= SegmentWords {
		return segFullBit | Word(access&3)<<segAccessShift
	}
	return Word(limit&segLimitMask) | Word(access&3)<<segAccessShift
}

// SegCtlLimit extracts the limit in words from a segment control word.
func SegCtlLimit(ctl Word) int {
	if ctl&segFullBit != 0 {
		return SegmentWords
	}
	return int(ctl & segLimitMask)
}

// SegCtlAccess extracts the access code from a segment control word.
func SegCtlAccess(ctl Word) int { return int(ctl>>segAccessShift) & 3 }

// MMU abort reasons, latched in the MMU status register.
const (
	MMUOK          = 0
	MMUNoAccess    = 1 // segment access code is AccessNone
	MMUReadOnly    = 2 // write to a read-only segment
	MMULimit       = 3 // offset beyond the segment limit
	MMUBusTimeout  = 4 // translated address hits no RAM and no device
	MMUKernelWrite = 5 // user-mode write routed into a protected I/O register
)

// mmu holds the translation state for user mode.
type mmu struct {
	Base [NumSegments]Word // physical word address of each segment's start
	Ctl  [NumSegments]Word // limit | access for each segment

	// Abort status, latched on the most recent failed translation.
	AbortReason Word
	AbortVaddr  Word
}

// translate maps a user-mode virtual address to a physical address.
// write indicates the access direction. On failure it latches abort status
// and returns ok=false.
func (u *mmu) translate(vaddr Word, write bool) (Word, bool) {
	seg := vaddr >> 12
	off := vaddr & (SegmentWords - 1)
	ctl := u.Ctl[seg]
	acc := SegCtlAccess(ctl)
	switch {
	case acc == AccessNone || acc == 3:
		u.AbortReason, u.AbortVaddr = MMUNoAccess, vaddr
		return 0, false
	case write && acc == AccessRO:
		u.AbortReason, u.AbortVaddr = MMUReadOnly, vaddr
		return 0, false
	case int(off) >= SegCtlLimit(ctl):
		u.AbortReason, u.AbortVaddr = MMULimit, vaddr
		return 0, false
	}
	return u.Base[seg] + off, true
}

// probe maps a user-mode virtual address for a read WITHOUT latching abort
// status on failure. It exists for speculative host-side work (translation-
// cache cursor re-seeding) that must not perturb modelled state; real
// accesses go through translate.
func (u *mmu) probe(vaddr Word) (Word, bool) {
	seg := vaddr >> 12
	off := vaddr & (SegmentWords - 1)
	ctl := u.Ctl[seg]
	acc := SegCtlAccess(ctl)
	if (acc != AccessRO && acc != AccessRW) || int(off) >= SegCtlLimit(ctl) {
		return 0, false
	}
	return u.Base[seg] + off, true
}

// reset clears all mappings (every segment becomes AccessNone) and the
// abort status.
func (u *mmu) reset() {
	*u = mmu{}
}
