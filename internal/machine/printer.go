package machine

// Printer is an output-only device: a line printer that accumulates written
// bytes into an externally observable print stream.
//
// Register map:
//
//	0 STAT  bit0 ready, bit6 interrupt enable
//	1 DATA  writing prints one byte
type Printer struct {
	name string
	busy int
	rate int
	ie   bool
	pend bool
	out  []Word
	prio int
}

// NewPrinter creates a printer that takes rate ticks per byte.
func NewPrinter(name string, rate int) *Printer {
	if rate < 1 {
		rate = 1
	}
	return &Printer{name: name, rate: rate, prio: 4}
}

// Replicate implements Replicator.
func (p *Printer) Replicate() Device {
	n := NewPrinter(p.name, p.rate)
	n.prio = p.prio
	return n
}

// Name implements Device.
func (p *Printer) Name() string { return p.name }

// Size implements Device.
func (p *Printer) Size() int { return 2 }

// Priority implements Device.
func (p *Printer) Priority() int { return p.prio }

// Reset implements Device.
func (p *Printer) Reset() {
	p.busy = 0
	p.ie = false
	p.pend = false
	p.out = nil
}

// ReadReg implements Device.
func (p *Printer) ReadReg(off int) Word {
	if off == 0 {
		var v Word
		if p.busy == 0 {
			v |= ttyStatReady
		}
		if p.ie {
			v |= ttyStatIE
		}
		return v
	}
	return 0
}

// WriteReg implements Device.
func (p *Printer) WriteReg(off int, v Word) {
	switch off {
	case 0:
		was := p.ie
		p.ie = v&ttyStatIE != 0
		if !was && p.ie && p.busy == 0 {
			p.pend = true
		}
	case 1:
		if p.busy == 0 {
			p.out = append(p.out, v)
			p.busy = p.rate
		}
	}
}

// Tick implements Device.
func (p *Printer) Tick() {
	if p.busy > 0 {
		p.busy--
		if p.busy == 0 && p.ie {
			p.pend = true
		}
	}
}

// Pending implements Device.
func (p *Printer) Pending() bool { return p.pend }

// Ack implements Device.
func (p *Printer) Ack() { p.pend = false }

// PeekOutput implements OutputSource.
func (p *Printer) PeekOutput() []Word { return append([]Word(nil), p.out...) }

// DrainOutput implements OutputSource.
func (p *Printer) DrainOutput() []Word {
	o := p.out
	p.out = nil
	return o
}

// OutputString renders the print stream as a byte string.
func (p *Printer) OutputString() string {
	b := make([]byte, len(p.out))
	for i, w := range p.out {
		b[i] = byte(w)
	}
	return string(b)
}

// SnapshotState implements Device.
func (p *Printer) SnapshotState() []Word {
	ws := []Word{Word(p.busy), boolWord(p.ie), boolWord(p.pend), Word(len(p.out))}
	return append(ws, p.out...)
}

// RestoreState implements Device.
func (p *Printer) RestoreState(ws []Word) {
	p.busy = int(ws[0])
	p.ie = ws[1] != 0
	p.pend = ws[2] != 0
	n := int(ws[3])
	p.out = append([]Word(nil), ws[4:4+n]...)
}
