// Package covert measures storage-channel bandwidth, in the spirit of
// Lampson's confinement analysis [15] and the bypass-bandwidth concern of
// the paper's SNFE discussion: "A fairly simple censor can reduce the
// bandwidth available for illicit communication over the bypass to an
// acceptable level."
//
// The harness is symbol-oriented: a sender embeds a known pseudo-random
// bitstring into some carrier, a receiver decodes what it can, and the
// package turns (sent, received) into an error rate, a binary-symmetric-
// channel capacity estimate, and a bits-per-round bandwidth figure.
package covert

import (
	"fmt"
	"math"
)

// Bitstring generates n pseudo-random bits from a seed (xorshift64star, so
// results are stable across platforms and runs).
func Bitstring(seed uint64, n int) []int {
	if seed == 0 {
		seed = 0x9E3779B97F4A7C15
	}
	x := seed
	bits := make([]int, n)
	for i := range bits {
		x ^= x >> 12
		x ^= x << 25
		x ^= x >> 27
		bits[i] = int((x * 0x2545F4914F6CDD1D) >> 63)
	}
	return bits
}

// Compare aligns received against sent (position-wise) and counts matches.
// Extra received bits beyond len(sent) are ignored; missing bits count as
// erased (wrong).
func Compare(sent, received []int) (matched, total int) {
	total = len(sent)
	for i := 0; i < len(sent) && i < len(received); i++ {
		if sent[i] == received[i] {
			matched++
		}
	}
	return matched, total
}

// Measurement is the outcome of one covert-channel experiment.
type Measurement struct {
	BitsSent     int
	BitsReceived int     // how many symbol slots the receiver decoded
	BitsCorrect  int     // position-wise matches
	Rounds       int     // fabric rounds the transfer took
	ErrorRate    float64 // 1 - correct/sent
	// CapacityPerSymbol is the binary-symmetric-channel capacity
	// 1 - H2(p) in bits per decoded symbol.
	CapacityPerSymbol float64
	// BitsPerRound is the effective leak rate: capacity * symbols / rounds.
	BitsPerRound float64
}

// Measure computes the statistics for one experiment.
func Measure(sent, received []int, rounds int) Measurement {
	correct, total := Compare(sent, received)
	m := Measurement{
		BitsSent:     total,
		BitsReceived: len(received),
		BitsCorrect:  correct,
		Rounds:       rounds,
	}
	if total > 0 {
		m.ErrorRate = 1 - float64(correct)/float64(total)
	}
	m.CapacityPerSymbol = BSCCapacity(m.ErrorRate)
	if rounds > 0 {
		m.BitsPerRound = m.CapacityPerSymbol * float64(total) / float64(rounds)
	}
	return m
}

// Accuracy is the fraction of sent bits decoded correctly (0 when nothing
// was sent).
func (m Measurement) Accuracy() float64 {
	if m.BitsSent == 0 {
		return 0
	}
	return float64(m.BitsCorrect) / float64(m.BitsSent)
}

// BSCCapacity is the Shannon capacity of a binary symmetric channel with
// crossover probability p: 1 - H2(p), clamped to [0, 1]. A channel at
// p = 0.5 carries nothing; p = 0 or p = 1 carries one bit per symbol.
func BSCCapacity(p float64) float64 {
	if p < 0 {
		p = 0
	}
	if p > 1 {
		p = 1
	}
	// Symmetry: a perfectly anti-correlated channel is as good as a
	// perfect one.
	if p > 0.5 {
		p = 1 - p
	}
	if p == 0 {
		return 1
	}
	h := -p*math.Log2(p) - (1-p)*math.Log2(1-p)
	c := 1 - h
	if c < 0 {
		return 0
	}
	return c
}

// String renders the measurement for reports.
func (m Measurement) String() string {
	return fmt.Sprintf("sent=%d correct=%d err=%.2f cap=%.3f b/sym rate=%.4f b/round",
		m.BitsSent, m.BitsCorrect, m.ErrorRate, m.CapacityPerSymbol, m.BitsPerRound)
}
