package covert_test

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/covert"
)

func TestBitstringDeterministic(t *testing.T) {
	a := covert.Bitstring(7, 128)
	b := covert.Bitstring(7, 128)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("bitstring not deterministic at %d", i)
		}
	}
	c := covert.Bitstring(8, 128)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same == len(a) {
		t.Error("different seeds produced identical bitstrings")
	}
}

func TestBitstringBalance(t *testing.T) {
	bits := covert.Bitstring(42, 4096)
	ones := 0
	for _, b := range bits {
		ones += b
	}
	frac := float64(ones) / float64(len(bits))
	if frac < 0.45 || frac > 0.55 {
		t.Errorf("bitstring bias: %.3f ones", frac)
	}
}

func TestCompare(t *testing.T) {
	sent := []int{1, 0, 1, 1}
	if m, n := covert.Compare(sent, []int{1, 0, 1, 1}); m != 4 || n != 4 {
		t.Errorf("perfect match = %d/%d", m, n)
	}
	if m, _ := covert.Compare(sent, []int{0, 1, 0, 0}); m != 0 {
		t.Errorf("inverted match = %d", m)
	}
	if m, n := covert.Compare(sent, []int{1, 0}); m != 2 || n != 4 {
		t.Errorf("truncated match = %d/%d", m, n)
	}
}

func TestBSCCapacityEndpoints(t *testing.T) {
	if got := covert.BSCCapacity(0); got != 1 {
		t.Errorf("C(0) = %f", got)
	}
	if got := covert.BSCCapacity(1); got != 1 {
		t.Errorf("C(1) = %f (anti-correlated channel is perfect)", got)
	}
	if got := covert.BSCCapacity(0.5); got > 1e-9 {
		t.Errorf("C(0.5) = %f, want 0", got)
	}
}

func TestBSCCapacityProperties(t *testing.T) {
	prop := func(p float64) bool {
		p = math.Abs(math.Mod(p, 1))
		c := covert.BSCCapacity(p)
		if c < 0 || c > 1 {
			return false
		}
		// Symmetry about 1/2.
		return math.Abs(c-covert.BSCCapacity(1-p)) < 1e-9
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
	// Monotone decreasing on [0, 1/2].
	prev := covert.BSCCapacity(0)
	for p := 0.05; p <= 0.5; p += 0.05 {
		c := covert.BSCCapacity(p)
		if c > prev+1e-9 {
			t.Errorf("capacity not decreasing at p=%.2f", p)
		}
		prev = c
	}
}

func TestMeasure(t *testing.T) {
	sent := covert.Bitstring(1, 100)
	m := covert.Measure(sent, sent, 200)
	if m.ErrorRate != 0 || m.CapacityPerSymbol != 1 {
		t.Errorf("perfect channel measured as %+v", m)
	}
	if math.Abs(m.BitsPerRound-0.5) > 1e-9 {
		t.Errorf("100 bits over 200 rounds = %.3f b/round, want 0.5", m.BitsPerRound)
	}
	// A garbage receiver carries (roughly) nothing.
	noise := covert.Bitstring(99, 100)
	m2 := covert.Measure(sent, noise, 200)
	if m2.CapacityPerSymbol > 0.2 {
		t.Errorf("random decoding capacity %.3f, want ~0", m2.CapacityPerSymbol)
	}
}
