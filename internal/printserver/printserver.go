// Package printserver implements the central printing facility of the
// paper's section 2: "a self-contained printer-server connected to each
// single-user machine (and probably the file-server also) by additional,
// dedicated communication lines."
//
// Its security requirements are specific to its function, exactly as the
// paper argues they must be:
//
//   - it prints the correct security classification of each job on the
//     banner (header) page;
//   - it never interleaves parts of one job within another;
//   - it never feeds one user's input back to another user;
//   - it cooperates with the file-server through that server's narrow
//     spool services, and asks it to delete each spool file after printing.
package printserver

import (
	"fmt"
	"strings"

	"repro/internal/distsys"
	"repro/internal/mls"
)

// job is one queued print request.
type job struct {
	id        string // spool id at the file-server
	requester string
}

// Server is the printer-server component.
//
// Ports:
//
//	user_<name>    (in)  print requests from user <name>'s machine
//	re_user_<name> (out) acknowledgements
//	auth           (in)  clearance announcements
//	fs             (out) special-service requests to the file-server
//	fsin           (in)  file-server replies
type Server struct {
	name string
	// queue of jobs; the head may be in flight with the file-server.
	queue      []job
	inflight   bool
	deleting   bool
	clearances map[string]mls.Label

	printed []Page
	jobsSeq int
}

// Page is one printed page (banner, body or trailer).
type Page struct {
	Kind  string // "banner", "body", "trailer"
	Job   string
	User  string
	Label string
	Text  string
}

// New creates an idle printer-server.
func New(name string) *Server {
	return &Server{name: name, clearances: map[string]mls.Label{}}
}

// Name implements distsys.Component.
func (s *Server) Name() string { return s.name }

// Handle implements distsys.Component.
func (s *Server) Handle(ctx distsys.Context, port string, m distsys.Message) {
	switch {
	case port == "auth":
		if m.Kind == "clearance" {
			if lbl, err := mls.ParseCompact(m.Arg("label")); err == nil {
				s.clearances[m.Arg("user")] = lbl
			}
		}
	case port == "fsin":
		s.handleFS(ctx, m)
	case strings.HasPrefix(port, "user_"):
		s.handleUser(ctx, port[5:], m)
	}
}

func (s *Server) handleUser(ctx distsys.Context, user string, m distsys.Message) {
	if m.Kind != "print" {
		return
	}
	if _, known := s.clearances[user]; !known {
		ctx.Send("re_user_"+user, distsys.Msg("err", "why", "not authenticated"))
		return
	}
	id := m.Arg("id")
	if !strings.HasPrefix(id, "spool/"+user+"/") {
		// A user may only print their own spool files; anything else
		// would let one user pull another's data to paper.
		ctx.Send("re_user_"+user, distsys.Msg("err", "why", "not your spool file"))
		return
	}
	s.queue = append(s.queue, job{id: id, requester: user})
	ctx.Send("re_user_"+user, distsys.Msg("queued", "id", id, "pos",
		fmt.Sprintf("%d", len(s.queue))))
}

// Poll implements distsys.Component: start the next job when idle.
func (s *Server) Poll(ctx distsys.Context) bool {
	if s.inflight || s.deleting || len(s.queue) == 0 {
		return false
	}
	s.inflight = true
	ctx.Send("fs", distsys.Msg("readspool", "id", s.queue[0].id))
	return true
}

func (s *Server) handleFS(ctx distsys.Context, m distsys.Message) {
	switch m.Kind {
	case "spooldata":
		if !s.inflight || len(s.queue) == 0 || m.Arg("id") != s.queue[0].id {
			return // stale or spurious
		}
		j := s.queue[0]
		label, _ := mls.ParseCompact(m.Arg("label"))
		owner := m.Arg("owner")
		s.jobsSeq++
		jobName := fmt.Sprintf("job-%d", s.jobsSeq)
		// The entire job prints as one uninterrupted banner/body/trailer
		// sequence: job separation is structural.
		s.printed = append(s.printed,
			Page{Kind: "banner", Job: jobName, User: owner, Label: label.String(),
				Text: fmt.Sprintf("*** %s *** job %s for %s", label, jobName, owner)},
			Page{Kind: "body", Job: jobName, User: owner, Label: label.String(),
				Text: string(m.Body)},
			Page{Kind: "trailer", Job: jobName, User: owner, Label: label.String(),
				Text: fmt.Sprintf("*** end of job %s ***", jobName)},
		)
		_ = j
		s.inflight = false
		s.deleting = true
		ctx.Send("fs", distsys.Msg("delspool", "id", m.Arg("id")))
	case "ok":
		if s.deleting {
			s.deleting = false
			if len(s.queue) > 0 {
				s.queue = s.queue[1:]
			}
		}
	case "err":
		// Drop the offending job rather than wedge the queue.
		s.inflight = false
		s.deleting = false
		if len(s.queue) > 0 {
			s.queue = s.queue[1:]
		}
	}
}

// Printed returns the pages printed so far.
func (s *Server) Printed() []Page { return append([]Page(nil), s.printed...) }

// QueueLength reports jobs not yet fully printed.
func (s *Server) QueueLength() int { return len(s.queue) }

// JobsPrinted reports completed jobs.
func (s *Server) JobsPrinted() int { return s.jobsSeq }

// CheckJobSeparation verifies the printed stream's framing invariant:
// banner, body, trailer triples with consistent job ids, never interleaved.
func (s *Server) CheckJobSeparation() error {
	if len(s.printed)%3 != 0 {
		return fmt.Errorf("printed stream length %d is not a whole number of jobs", len(s.printed))
	}
	for i := 0; i < len(s.printed); i += 3 {
		b, body, tr := s.printed[i], s.printed[i+1], s.printed[i+2]
		if b.Kind != "banner" || body.Kind != "body" || tr.Kind != "trailer" {
			return fmt.Errorf("job at page %d has frame %s/%s/%s", i, b.Kind, body.Kind, tr.Kind)
		}
		if b.Job != body.Job || body.Job != tr.Job {
			return fmt.Errorf("interleaved jobs at page %d: %s/%s/%s", i, b.Job, body.Job, tr.Job)
		}
	}
	return nil
}
