package printserver_test

import (
	"strings"
	"testing"

	"repro/internal/distsys"
	"repro/internal/mls"
	"repro/internal/printserver"
)

func announce(s *printserver.Server, user string, lbl mls.Label) {
	rec := &distsys.Recorder{}
	s.Handle(rec, "auth", distsys.Msg("clearance", "user", user, "label", lbl.Compact()))
}

func TestPrintJobLifecycle(t *testing.T) {
	s := printserver.New("ps")
	announce(s, "lois", mls.L(mls.Unclassified))
	rec := &distsys.Recorder{}

	// Queue a job.
	s.Handle(rec, "user_lois", distsys.Msg("print", "id", "spool/lois/1"))
	if got := rec.OnPort("re_user_lois"); len(got) != 1 || got[0].Kind != "queued" {
		t.Fatalf("queue reply = %v", got)
	}
	// The server asks the file-server for the spool data.
	if !s.Poll(rec) {
		t.Fatal("poll did not start the job")
	}
	reads := rec.OnPort("fs")
	if len(reads) != 1 || reads[0].Kind != "readspool" || reads[0].Arg("id") != "spool/lois/1" {
		t.Fatalf("fs request = %v", reads)
	}
	// Deliver the spool data; expect printing plus a delete request.
	rec.Take()
	s.Handle(rec, "fsin", distsys.Msg("spooldata", "id", "spool/lois/1",
		"owner", "lois", "label", mls.L(mls.Unclassified).Compact()).WithBody([]byte("hello")))
	dels := rec.OnPort("fs")
	if len(dels) != 1 || dels[0].Kind != "delspool" {
		t.Fatalf("delete request = %v", dels)
	}
	s.Handle(rec, "fsin", distsys.Msg("ok", "id", "spool/lois/1"))

	pages := s.Printed()
	if len(pages) != 3 {
		t.Fatalf("printed %d pages, want banner/body/trailer", len(pages))
	}
	if pages[0].Kind != "banner" || !strings.Contains(pages[0].Text, "UNCLASSIFIED") {
		t.Errorf("banner = %+v", pages[0])
	}
	if pages[1].Text != "hello" {
		t.Errorf("body = %q", pages[1].Text)
	}
	if err := s.CheckJobSeparation(); err != nil {
		t.Error(err)
	}
	if s.QueueLength() != 0 || s.JobsPrinted() != 1 {
		t.Errorf("queue=%d jobs=%d", s.QueueLength(), s.JobsPrinted())
	}
}

func TestUnauthenticatedPrintRejected(t *testing.T) {
	s := printserver.New("ps")
	rec := &distsys.Recorder{}
	s.Handle(rec, "user_ghost", distsys.Msg("print", "id", "spool/ghost/1"))
	if got := rec.OnPort("re_user_ghost"); len(got) != 1 || got[0].Kind != "err" {
		t.Errorf("reply = %v", got)
	}
}

func TestCrossUserSpoolRejected(t *testing.T) {
	s := printserver.New("ps")
	announce(s, "eve", mls.L(mls.Unclassified))
	rec := &distsys.Recorder{}
	s.Handle(rec, "user_eve", distsys.Msg("print", "id", "spool/alice/7"))
	got := rec.OnPort("re_user_eve")
	if len(got) != 1 || got[0].Kind != "err" || !strings.Contains(got[0].Arg("why"), "not your spool") {
		t.Errorf("reply = %v", got)
	}
	if s.QueueLength() != 0 {
		t.Error("foreign job queued")
	}
}

func TestFileServerErrorSkipsJob(t *testing.T) {
	s := printserver.New("ps")
	announce(s, "lois", mls.L(mls.Unclassified))
	rec := &distsys.Recorder{}
	s.Handle(rec, "user_lois", distsys.Msg("print", "id", "spool/lois/9"))
	s.Poll(rec)
	s.Handle(rec, "fsin", distsys.Msg("err", "why", "no such spool", "id", "spool/lois/9"))
	if s.QueueLength() != 0 {
		t.Error("failed job wedged the queue")
	}
	if s.JobsPrinted() != 0 {
		t.Error("failed job counted as printed")
	}
	// The server moves on to later jobs.
	s.Handle(rec, "user_lois", distsys.Msg("print", "id", "spool/lois/10"))
	if !s.Poll(rec) {
		t.Error("queue did not resume after a failed job")
	}
}

func TestStaleSpoolDataIgnored(t *testing.T) {
	s := printserver.New("ps")
	announce(s, "lois", mls.L(mls.Unclassified))
	rec := &distsys.Recorder{}
	// Data arrives with nothing in flight.
	s.Handle(rec, "fsin", distsys.Msg("spooldata", "id", "spool/x/1",
		"owner", "x", "label", "0/0").WithBody([]byte("stale")))
	if len(s.Printed()) != 0 {
		t.Error("stale data printed")
	}
}

func TestJobsPrintInOrderWithoutInterleaving(t *testing.T) {
	s := printserver.New("ps")
	announce(s, "a", mls.L(mls.Unclassified))
	announce(s, "b", mls.L(mls.Secret))
	rec := &distsys.Recorder{}
	s.Handle(rec, "user_a", distsys.Msg("print", "id", "spool/a/1"))
	s.Handle(rec, "user_b", distsys.Msg("print", "id", "spool/b/1"))

	for i := 0; i < 2; i++ {
		rec.Take()
		if !s.Poll(rec) {
			t.Fatalf("job %d did not start", i)
		}
		req := rec.OnPort("fs")[0]
		owner := "a"
		lbl := mls.L(mls.Unclassified)
		if strings.Contains(req.Arg("id"), "/b/") {
			owner, lbl = "b", mls.L(mls.Secret)
		}
		s.Handle(rec, "fsin", distsys.Msg("spooldata", "id", req.Arg("id"),
			"owner", owner, "label", lbl.Compact()).WithBody([]byte("job of "+owner)))
		s.Handle(rec, "fsin", distsys.Msg("ok", "id", req.Arg("id")))
	}
	if s.JobsPrinted() != 2 {
		t.Fatalf("jobs printed = %d", s.JobsPrinted())
	}
	if err := s.CheckJobSeparation(); err != nil {
		t.Error(err)
	}
	// FIFO: a's job first.
	if !strings.Contains(s.Printed()[1].Text, "job of a") {
		t.Error("jobs printed out of order")
	}
}
