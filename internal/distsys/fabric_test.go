package distsys_test

import (
	"fmt"
	"testing"

	"repro/internal/distsys"
)

// echo replies to every "ping" with a "pong" carrying the same payload.
type echo struct{ name string }

func (e *echo) Name() string { return e.name }

func (e *echo) Handle(ctx distsys.Context, port string, m distsys.Message) {
	if m.Kind == "ping" {
		ctx.Send("reply", distsys.Msg("pong", "n", m.Arg("n")))
	}
}

func (e *echo) Poll(distsys.Context) bool { return false }

// pinger sends count pings, then records the pongs it gets back.
type pinger struct {
	name  string
	count int
	sent  int
	Got   []string
}

func (p *pinger) Name() string { return p.name }

func (p *pinger) Handle(ctx distsys.Context, port string, m distsys.Message) {
	if m.Kind == "pong" {
		p.Got = append(p.Got, m.Arg("n"))
	}
}

func (p *pinger) Poll(ctx distsys.Context) bool {
	if p.sent < p.count {
		ctx.Send("out", distsys.Msg("ping", "n", fmt.Sprintf("%d", p.sent)))
		p.sent++
		return true
	}
	return false
}

func buildPingPong(d distsys.Deployment, n int) (*distsys.Fabric, *pinger) {
	f := distsys.New(d)
	p := &pinger{name: "client", count: n}
	e := &echo{name: "server"}
	f.MustAdd(p)
	f.MustAdd(e)
	f.MustConnect("client:out", "server:in", 16)
	f.MustConnect("server:reply", "client:in", 16)
	return f, p
}

func TestPingPongPhysical(t *testing.T) {
	f, p := buildPingPong(distsys.Physical, 5)
	f.Run(100)
	if len(p.Got) != 5 {
		t.Fatalf("client got %d pongs, want 5", len(p.Got))
	}
	for i, n := range p.Got {
		if n != fmt.Sprintf("%d", i) {
			t.Errorf("pong %d carries %q (FIFO violated?)", i, n)
		}
	}
}

func TestPingPongKernelHosted(t *testing.T) {
	f, p := buildPingPong(distsys.KernelHosted, 5)
	f.Run(100)
	if len(p.Got) != 5 {
		t.Fatalf("client got %d pongs, want 5", len(p.Got))
	}
}

func TestDeploymentsIndistinguishablePerPort(t *testing.T) {
	f1, _ := buildPingPong(distsys.Physical, 8)
	f2, _ := buildPingPong(distsys.KernelHosted, 8)
	f1.Run(200)
	f2.Run(200)
	for _, comp := range []string{"client", "server"} {
		if ok, why := distsys.PerPortTracesEqual(f1, f2, comp); !ok {
			t.Errorf("deployments distinguishable at %s: %s", comp, why)
		}
	}
}

func TestRunStopsWhenQuiescent(t *testing.T) {
	f, _ := buildPingPong(distsys.Physical, 3)
	rounds := f.Run(10000)
	if rounds >= 10000 {
		t.Errorf("fabric never quiesced (%d rounds)", rounds)
	}
}

func TestUnwiredSendPanics(t *testing.T) {
	f := distsys.New(distsys.Physical)
	p := &pinger{name: "lonely", count: 1}
	f.MustAdd(p)
	defer func() {
		if recover() == nil {
			t.Error("send on unwired port did not panic")
		}
	}()
	f.Run(1)
}

func TestConnectValidation(t *testing.T) {
	f := distsys.New(distsys.Physical)
	f.MustAdd(&echo{name: "a"})
	f.MustAdd(&echo{name: "b"})
	if err := f.Connect("a:x", "nosuch:y", 4); err == nil {
		t.Error("connect to unknown component accepted")
	}
	if err := f.Connect("ax", "b:y", 4); err == nil {
		t.Error("malformed endpoint accepted")
	}
	if err := f.Connect("a:x", "b:y", 4); err != nil {
		t.Errorf("valid connect rejected: %v", err)
	}
	if err := f.Connect("a:x", "b:z", 4); err == nil {
		t.Error("double-wired out port accepted")
	}
	if err := f.Add(&echo{name: "a"}); err == nil {
		t.Error("duplicate component accepted")
	}
}

func TestWireCapacityDrops(t *testing.T) {
	f := distsys.New(distsys.KernelHosted)
	p := &pinger{name: "client", count: 50}
	f.MustAdd(p)
	// The client bursts Quantum sends per turn into a capacity-2 wire;
	// the overflow within a single turn must be dropped, not queued.
	f.MustAdd(&blackhole{})
	f.MustConnect("client:out", "hole:in", 2)
	f.Run(200)
	if f.Dropped() == 0 {
		t.Error("expected drops on a capacity-4 wire receiving 50 sends")
	}
}

// blackhole accepts and discards everything sent to it.
type blackhole struct{}

func (b *blackhole) Name() string { return "hole" }

func (b *blackhole) Handle(distsys.Context, string, distsys.Message) {}

func (b *blackhole) Poll(distsys.Context) bool { return false }

func TestMessageCanonicalDeterministic(t *testing.T) {
	m1 := distsys.Msg("op", "b", "2", "a", "1").WithBody([]byte("xyz"))
	m2 := distsys.Msg("op", "a", "1", "b", "2").WithBody([]byte("xyz"))
	if m1.Canonical() != m2.Canonical() {
		t.Errorf("canonical rendering depends on argument order: %q vs %q",
			m1.Canonical(), m2.Canonical())
	}
}

func TestMessageCloneIsDeep(t *testing.T) {
	m := distsys.Msg("op", "k", "v").WithBody([]byte("abc"))
	c := m.Clone()
	c.Args["k"] = "changed"
	c.Body[0] = 'z'
	if m.Arg("k") != "v" || m.Body[0] != 'a' {
		t.Error("clone shares storage with original")
	}
}
