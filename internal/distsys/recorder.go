package distsys

// Recorder is a stand-alone Context for unit-testing a single component
// without a fabric: it records every send and treats all ports as wired.
type Recorder struct {
	// Sent accumulates (port, message) pairs in order.
	Sent []SentMessage
	// Round is returned by Now and may be advanced by the test.
	Round uint64
}

// SentMessage is one recorded send.
type SentMessage struct {
	Port string
	Msg  Message
}

// Send implements Context.
func (r *Recorder) Send(port string, m Message) {
	r.Sent = append(r.Sent, SentMessage{Port: port, Msg: m.Clone()})
}

// Connected implements Context.
func (r *Recorder) Connected(string) bool { return true }

// Now implements Context.
func (r *Recorder) Now() uint64 { return r.Round }

// Take returns and clears the recorded sends.
func (r *Recorder) Take() []SentMessage {
	s := r.Sent
	r.Sent = nil
	return s
}

// OnPort filters recorded sends by port.
func (r *Recorder) OnPort(port string) []Message {
	var out []Message
	for _, s := range r.Sent {
		if s.Port == port {
			out = append(out, s.Msg)
		}
	}
	return out
}
