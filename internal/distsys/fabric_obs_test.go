package distsys_test

import (
	"strings"
	"testing"

	"repro/internal/distsys"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// collect runs a stream-demo fabric to quiescence with an obs tracer
// attached and returns the fabric plus its emitted events.
func collect(t *testing.T, f *distsys.Fabric, rounds int) []obs.Event {
	t.Helper()
	var events []obs.Event
	f.SetTracer(obs.TracerFunc(func(e obs.Event) { events = append(events, e) }))
	if n := f.Run(rounds); n >= rounds {
		t.Fatalf("fabric did not quiesce in %d rounds", rounds)
	}
	return events
}

func TestFabricEmitsObsEvents(t *testing.T) {
	f := distsys.NewStreamDemo(distsys.KernelHosted, 2, 1)
	events := collect(t, f, 100)

	if len(events) == 0 {
		t.Fatal("no obs events emitted")
	}
	first := events[0]
	if first.Kind != obs.EvChanSend || first.Regime != f.Index("prod") ||
		first.Name != "out" || first.Arg != 0 {
		t.Fatalf("first event = %+v, want prod's first send on wire 0 port out", first)
	}
	if !strings.Contains(first.Detail, `item seq="0"`) {
		t.Errorf("first event detail = %q, want canonical item 0", first.Detail)
	}
	var sends, recvs int
	for _, e := range events {
		switch e.Kind {
		case obs.EvChanSend:
			sends++
		case obs.EvChanRecv:
			recvs++
		default:
			t.Fatalf("fabric emitted unexpected kind %v", e.Kind)
		}
		if e.Regime < 0 || e.Regime > 3 {
			t.Fatalf("event regime %d out of range: %+v", e.Regime, e)
		}
	}
	// 2 items + 1 tick, all delivered: 3 sends, 3 recvs.
	if sends != 3 || recvs != 3 {
		t.Fatalf("sends/recvs = %d/%d, want 3/3", sends, recvs)
	}
	// Detaching stops emission.
	f2 := distsys.NewStreamDemo(distsys.KernelHosted, 1, 0)
	f2.SetTracer(nil)
	f2.Run(10)
}

// TestStreamDemoDeploymentInvariant is the tentpole's honest-case claim:
// the same workload under Physical and KernelHosted yields byte-identical
// per-component projections, even though the raw interleavings (and round
// stamps) differ wildly.
func TestStreamDemoDeploymentInvariant(t *testing.T) {
	phys := distsys.NewStreamDemo(distsys.Physical, 24, 6)
	kern := distsys.NewStreamDemo(distsys.KernelHosted, 24, 6)
	pe := collect(t, phys, 200)
	ke := collect(t, kern, 200)

	if phys.Dropped() != 0 || kern.Dropped() != 0 {
		t.Fatalf("honest runs dropped messages: phys %d, kern %d", phys.Dropped(), kern.Dropped())
	}
	ds := analyze.DiffAll(pe, ke)
	if len(ds) != 4 {
		t.Fatalf("DiffAll covers %d regimes, want 4", len(ds))
	}
	for _, d := range ds {
		if !d.Equal {
			t.Errorf("honest deployments distinguishable:\n%s", d)
		}
	}
	// The raw streams really are different — the equality above is earned
	// by the projection, not by the runs being trivially identical.
	if len(pe) != len(ke) {
		return
	}
	same := true
	for i := range pe {
		if string(obs.AppendJSON(nil, pe[i])) != string(obs.AppendJSON(nil, ke[i])) {
			same = false
			break
		}
	}
	if same {
		t.Fatal("raw traces identical; workload exercises nothing")
	}
}

// TestQuantumLeakDiverges plants the scheduling leak and checks it is
// caught from traces alone: the victim's inflated bursts overflow the
// prod→cons wire, so the consumer's projected view diverges from the
// Physical reference, with a structured first-divergence report.
func TestQuantumLeakDiverges(t *testing.T) {
	phys := distsys.NewStreamDemo(distsys.Physical, 24, 6)
	leaky := distsys.NewStreamDemo(distsys.KernelHosted, 24, 6)
	leaky.PlantQuantumLeak(distsys.QuantumLeak{Modulator: "spy", Victim: "prod", Bonus: 8})
	pe := collect(t, phys, 200)
	le := collect(t, leaky, 200)

	if leaky.Dropped() == 0 {
		t.Fatal("leak did not overflow the wire; workload mis-sized")
	}
	ds := analyze.DiffAll(pe, le)
	byRegime := map[int]analyze.DiffResult{}
	for _, d := range ds {
		byRegime[d.Regime] = d
	}
	// The victim's own view is unchanged — it sent the same sequence; a
	// scheduling leak is invisible to the parties it is not aimed at.
	for _, name := range []string{"prod", "spy", "hole"} {
		if d := byRegime[phys.Index(name)]; !d.Equal {
			t.Errorf("%s's view changed:\n%s", name, d)
		}
	}
	cons := byRegime[phys.Index("cons")]
	if cons.Equal {
		t.Fatal("consumer's view unchanged; leak undetected")
	}
	// First 3 rounds of the leaky run: 0-3 arrive intact, then drops skip
	// 12..15 and 20..23; the consumer's 12th receive shows seq 16, not 12.
	if cons.DivergeAt != 12 {
		t.Errorf("DivergeAt = %d, want 12", cons.DivergeAt)
	}
	if !strings.Contains(cons.A, `seq=\"12\"`) || !strings.Contains(cons.B, `seq=\"16\"`) {
		t.Errorf("divergence report lacks the expected payloads:\n%s", cons)
	}

	// With the modulator idle the leak never arms: the channel carries the
	// modulator's activity, which is exactly what makes it covert.
	quiet := distsys.NewStreamDemo(distsys.KernelHosted, 24, 0)
	quiet.PlantQuantumLeak(distsys.QuantumLeak{Modulator: "spy", Victim: "prod", Bonus: 8})
	qphys := distsys.NewStreamDemo(distsys.Physical, 24, 0)
	qe := collect(t, quiet, 200)
	qp := collect(t, qphys, 200)
	for _, d := range analyze.DiffAll(qp, qe) {
		if !d.Equal {
			t.Errorf("idle modulator still distinguishable:\n%s", d)
		}
	}
}

func TestStreamConsumerReceived(t *testing.T) {
	f := distsys.NewStreamDemo(distsys.KernelHosted, 3, 0)
	f.Run(50)
	if got := distsys.StreamConsumerReceived(f, "cons"); len(got) != 3 || got[0] != "0" || got[2] != "2" {
		t.Fatalf("cons received %v", got)
	}
	if got := distsys.StreamConsumerReceived(f, "prod"); got != nil {
		t.Fatalf("non-consumer lookup = %v, want nil", got)
	}
	if f.Sends("prod") != 3 || f.Index("nosuch") != -1 {
		t.Fatalf("Sends/Index accessors wrong: %d %d", f.Sends("prod"), f.Index("nosuch"))
	}
}
