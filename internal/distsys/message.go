// Package distsys is the fabric for the paper's section-2 architecture:
// secure systems conceived as functionally distributed systems, whose
// components are physically separated and joined only by explicitly
// provided, dedicated, unidirectional communication lines.
//
// Components (file-server, printer-server, authentication service, Guard,
// the SNFE boxes) are deterministic reactive state machines. The fabric
// runs them under either of two deployments:
//
//   - Physical: every component conceptually on its own machine; all
//     components advance in lock-stepped rounds and messages take one round
//     of wire latency (the idealized distributed implementation);
//   - KernelHosted: one processor multiplexed among the components in
//     round-robin quanta with immediate FIFO delivery (what a separation
//     kernel provides).
//
// Experiment E7 runs identical component code and workload under both and
// compares per-component observation traces: the separation-kernel
// deployment is indistinguishable, to each component, from the physically
// distributed one — the paper's definition of a separation kernel's job.
package distsys

import (
	"fmt"
	"sort"
	"strings"
)

// Message is one datagram on a wire. Messages are immutable values: a
// component must not retain and mutate a received message's maps.
type Message struct {
	Kind string
	Args map[string]string
	Body []byte
}

// Msg builds a message from a kind and alternating key/value pairs.
func Msg(kind string, kv ...string) Message {
	m := Message{Kind: kind, Args: map[string]string{}}
	for i := 0; i+1 < len(kv); i += 2 {
		m.Args[kv[i]] = kv[i+1]
	}
	return m
}

// WithBody returns a copy of m carrying a payload.
func (m Message) WithBody(b []byte) Message {
	m.Body = append([]byte(nil), b...)
	return m
}

// Arg returns a named argument ("" when absent).
func (m Message) Arg(k string) string {
	if m.Args == nil {
		return ""
	}
	return m.Args[k]
}

// Clone deep-copies the message.
func (m Message) Clone() Message {
	c := Message{Kind: m.Kind}
	if m.Args != nil {
		c.Args = make(map[string]string, len(m.Args))
		for k, v := range m.Args {
			c.Args[k] = v
		}
	}
	if m.Body != nil {
		c.Body = append([]byte(nil), m.Body...)
	}
	return c
}

// Canonical renders the message deterministically (sorted args), for
// traces and digests.
func (m Message) Canonical() string {
	var keys []string
	for k := range m.Args {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteString(m.Kind)
	for _, k := range keys {
		fmt.Fprintf(&b, " %s=%q", k, m.Args[k])
	}
	if len(m.Body) > 0 {
		fmt.Fprintf(&b, " body=%q", string(m.Body))
	}
	return b.String()
}
