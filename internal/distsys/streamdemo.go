package distsys

import "strconv"

// This file builds the standard workload for the trace-diff experiment
// (E14, cmd/septrace): a streaming producer/consumer pair plus an
// unrelated modulator. Every component is deployment-invariant — its
// outputs depend only on the messages it receives and its own state, never
// on ctx.Now() — so an honest fabric yields identical per-component
// projections (analyze.Project) under Physical and KernelHosted. Planting
// a QuantumLeak breaks exactly that: the producer's inflated bursts
// overflow the capacity-limited wire and the consumer's observed sequence
// diverges, turning a pure scheduling leak into a trace-visible fact.

// streamProducer sends items sequence-numbered 0..n-1 on port "out", one
// per Poll.
type streamProducer struct {
	name string
	n    int
	next int
}

func (p *streamProducer) Name() string                    { return p.name }
func (p *streamProducer) Handle(Context, string, Message) {}
func (p *streamProducer) Poll(ctx Context) bool {
	if p.next >= p.n {
		return false
	}
	ctx.Send("out", Msg("item", "seq", strconv.Itoa(p.next)))
	p.next++
	return true
}

// streamConsumer records every item it receives.
type streamConsumer struct {
	name string
	got  []string
}

func (c *streamConsumer) Handle(_ Context, _ string, m Message) {
	c.got = append(c.got, m.Arg("seq"))
}
func (c *streamConsumer) Name() string      { return c.name }
func (c *streamConsumer) Poll(Context) bool { return false }

// Received returns the sequence numbers the consumer saw, in order.
func (c *streamConsumer) Received() []string { return append([]string(nil), c.got...) }

// NewStreamDemo builds the four-component workload:
//
//	prod --(cap 8)--> cons     a producer streaming `items` messages
//	spy  --(cap 64)-> hole     a modulator emitting `ticks` ticks
//
// Component registration order (= obs regime index): prod 0, cons 1,
// spy 2, hole 3. The prod→cons wire capacity of 2×DefaultQuantum absorbs
// honest KernelHosted bursts (quantum sends in, quantum drained per
// round) but not a leak-inflated burst, which is what makes the planted
// QuantumLeak{Modulator: "spy", Victim: "prod"} detectable from traces.
func NewStreamDemo(d Deployment, items, ticks int) *Fabric {
	f := New(d)
	f.MustAdd(&streamProducer{name: "prod", n: items})
	f.MustAdd(&streamConsumer{name: "cons"})
	f.MustAdd(&streamProducer{name: "spy", n: ticks})
	f.MustAdd(&streamConsumer{name: "hole"})
	f.MustConnect("prod:out", "cons:in", 2*f.Quantum)
	f.MustConnect("spy:out", "hole:in", 64)
	return f
}

// StreamConsumerReceived returns the recorded sequence of a stream demo
// consumer ("cons" or "hole"), or nil for other components.
func StreamConsumerReceived(f *Fabric, name string) []string {
	c, ok := f.byName[name]
	if !ok {
		return nil
	}
	sc, ok := c.(*streamConsumer)
	if !ok {
		return nil
	}
	return sc.Received()
}
