package distsys

import (
	"fmt"
	"strings"

	"repro/internal/obs"
)

// Context is the interface the fabric hands to a component while it runs.
type Context interface {
	// Send queues a message on one of the component's outbound ports.
	// Sending on an unconnected port is a configuration error and panics:
	// in a physically distributed system the wire either exists or it
	// does not.
	Send(port string, m Message)
	// Connected reports whether an outbound port has a wire.
	Connected(port string) bool
	// Now is the fabric's global round counter. (A real distributed
	// component would have only a local clock; components that want to be
	// deployment-invariant must not let Now influence their outputs.)
	Now() uint64
}

// Component is a deterministic reactive state machine.
type Component interface {
	// Name identifies the component; it must be unique in a fabric.
	Name() string
	// Handle processes one inbound message from the named port.
	Handle(ctx Context, port string, m Message)
	// Poll gives active components a chance to originate work when no
	// message is pending; return false when idle.
	Poll(ctx Context) bool
}

// TraceEvent is one observation in a component's local history.
type TraceEvent struct {
	Dir  string // "recv" or "send"
	Port string
	Msg  string // canonical rendering
}

func (e TraceEvent) String() string {
	return fmt.Sprintf("%s %s: %s", e.Dir, e.Port, e.Msg)
}

// wire is a unidirectional FIFO between two ports.
type wire struct {
	idx                int // connection order, stable across deployments
	fromComp, fromPort string
	toComp, toPort     string
	queue              []Message
	// inFlight holds messages sent this round under the Physical
	// deployment; they become deliverable next round (wire latency).
	inFlight []Message
	capacity int
	dropped  int
}

// Deployment selects how the fabric multiplexes its components.
type Deployment int

// Deployment kinds.
const (
	// Physical lock-steps all components: every round, each component
	// handles at most one message (or polls); sends travel one round of
	// wire latency. This is the idealized distributed implementation.
	Physical Deployment = iota
	// KernelHosted multiplexes one processor: components run round-robin
	// with a quantum of handling steps; delivery is immediate FIFO.
	KernelHosted
)

// Fabric wires components together and runs them.
type Fabric struct {
	Deploy  Deployment
	Quantum int // KernelHosted: handling steps per scheduling turn (default 4)

	comps  []Component
	byName map[string]Component
	wires  []*wire
	// outIndex: component -> port -> wire
	outIndex map[string]map[string]*wire
	// inIndex: component -> ordered in-ports (wire list)
	inIndex map[string][]*wire
	// indexOf: component name -> registration order, the regime index used
	// in emitted obs events (stable across deployments for identical
	// construction sequences).
	indexOf map[string]int

	traces    map[string][]TraceEvent
	rounds    uint64
	delivered uint64
	sends     map[string]int // total Send calls per component (incl. dropped)
	tracer    obs.Tracer
	leak      QuantumLeak
}

// QuantumLeak plants a scheduling covert channel into the KernelHosted
// deployment, the fabric-level analogue of the kernel's Leaks: once the
// Modulator component has sent at least one message, the Victim's
// round-robin quantum is inflated by Bonus handling steps. Scheduling now
// depends on another component's activity — exactly the condition-6 hazard
// — and the victim's inflated bursts can overflow capacity-limited wires,
// changing what downstream components observe. Physical deployments ignore
// the leak (there is no shared scheduler to corrupt).
type QuantumLeak struct {
	Modulator string
	Victim    string
	Bonus     int
}

// Active reports whether the leak is configured.
func (l QuantumLeak) Active() bool { return l.Bonus != 0 && l.Victim != "" }

// New creates an empty fabric for the given deployment.
func New(d Deployment) *Fabric {
	return &Fabric{
		Deploy:   d,
		Quantum:  4,
		byName:   map[string]Component{},
		outIndex: map[string]map[string]*wire{},
		inIndex:  map[string][]*wire{},
		indexOf:  map[string]int{},
		traces:   map[string][]TraceEvent{},
		sends:    map[string]int{},
	}
}

// SetTracer attaches an obs event tracer (nil detaches): every component
// send and delivery is mirrored as an EvChanSend/EvChanRecv event with
// Regime = the component's registration index, Arg = the wire's connection
// index, Name = the local port, and Detail = the message's canonical
// rendering. Cycle carries the global round counter — a value no
// deployment-invariant component may observe, which is why
// analyze.Project renormalizes it away before comparing deployments.
func (f *Fabric) SetTracer(t obs.Tracer) { f.tracer = t }

// PlantQuantumLeak configures the scheduling leak (see QuantumLeak).
func (f *Fabric) PlantQuantumLeak(l QuantumLeak) { f.leak = l }

// Add registers a component.
func (f *Fabric) Add(c Component) error {
	if _, dup := f.byName[c.Name()]; dup {
		return fmt.Errorf("distsys: duplicate component %q", c.Name())
	}
	f.indexOf[c.Name()] = len(f.comps)
	f.byName[c.Name()] = c
	f.comps = append(f.comps, c)
	return nil
}

// MustAdd is Add for static configurations.
func (f *Fabric) MustAdd(c Component) {
	if err := f.Add(c); err != nil {
		panic(err)
	}
}

// Connect creates a dedicated unidirectional wire. Endpoints are written
// "component:port".
func (f *Fabric) Connect(from, to string, capacity int) error {
	fc, fp, err := splitEndpoint(from)
	if err != nil {
		return err
	}
	tc, tp, err := splitEndpoint(to)
	if err != nil {
		return err
	}
	if _, ok := f.byName[fc]; !ok {
		return fmt.Errorf("distsys: unknown component %q", fc)
	}
	if _, ok := f.byName[tc]; !ok {
		return fmt.Errorf("distsys: unknown component %q", tc)
	}
	if capacity <= 0 {
		capacity = 64
	}
	if m := f.outIndex[fc]; m != nil && m[fp] != nil {
		return fmt.Errorf("distsys: port %s already wired", from)
	}
	w := &wire{idx: len(f.wires), fromComp: fc, fromPort: fp, toComp: tc, toPort: tp, capacity: capacity}
	f.wires = append(f.wires, w)
	if f.outIndex[fc] == nil {
		f.outIndex[fc] = map[string]*wire{}
	}
	f.outIndex[fc][fp] = w
	f.inIndex[tc] = append(f.inIndex[tc], w)
	return nil
}

// MustConnect is Connect for static configurations.
func (f *Fabric) MustConnect(from, to string, capacity int) {
	if err := f.Connect(from, to, capacity); err != nil {
		panic(err)
	}
}

func splitEndpoint(s string) (comp, port string, err error) {
	i := strings.IndexByte(s, ':')
	if i <= 0 || i == len(s)-1 {
		return "", "", fmt.Errorf("distsys: bad endpoint %q (want component:port)", s)
	}
	return s[:i], s[i+1:], nil
}

// ctx is the per-component Context implementation.
type ctx struct {
	f    *Fabric
	comp string
}

func (c *ctx) Send(port string, m Message) {
	w := c.f.outIndex[c.comp][port]
	if w == nil {
		panic(fmt.Sprintf("distsys: component %q sent on unwired port %q", c.comp, port))
	}
	c.f.sends[c.comp]++
	c.f.trace(c.comp, "send", port, w, m)
	msg := m.Clone()
	if c.f.Deploy == Physical {
		w.inFlight = append(w.inFlight, msg)
		return
	}
	if len(w.queue) >= w.capacity {
		w.dropped++
		return
	}
	w.queue = append(w.queue, msg)
}

func (c *ctx) Connected(port string) bool { return c.f.outIndex[c.comp][port] != nil }

func (c *ctx) Now() uint64 { return c.f.rounds }

func (f *Fabric) trace(comp, dir, port string, w *wire, m Message) {
	canon := m.Canonical()
	f.traces[comp] = append(f.traces[comp], TraceEvent{Dir: dir, Port: port, Msg: canon})
	if f.tracer != nil {
		kind := obs.EvChanSend
		if dir == "recv" {
			kind = obs.EvChanRecv
		}
		f.tracer.Emit(obs.Event{
			Cycle:  f.rounds,
			Kind:   kind,
			Regime: f.indexOf[comp],
			Arg:    w.idx,
			Name:   port,
			Detail: canon,
		})
	}
}

// deliverOne pops the next pending message for a component (scanning its
// in-wires in connection order) and handles it. Reports progress.
func (f *Fabric) deliverOne(comp Component) bool {
	for _, w := range f.inIndex[comp.Name()] {
		if len(w.queue) == 0 {
			continue
		}
		m := w.queue[0]
		w.queue = w.queue[1:]
		f.trace(comp.Name(), "recv", w.toPort, w, m)
		f.delivered++
		comp.Handle(&ctx{f: f, comp: comp.Name()}, w.toPort, m)
		return true
	}
	return false
}

// StepRound advances the fabric one scheduling round. Reports whether any
// component made progress.
func (f *Fabric) StepRound() bool {
	f.rounds++
	progress := false
	switch f.Deploy {
	case Physical:
		for _, c := range f.comps {
			if f.deliverOne(c) {
				progress = true
			} else if c.Poll(&ctx{f: f, comp: c.Name()}) {
				progress = true
			}
		}
		// Wire latency: sends travel between rounds.
		for _, w := range f.wires {
			for _, m := range w.inFlight {
				if len(w.queue) >= w.capacity {
					w.dropped++
					continue
				}
				w.queue = append(w.queue, m)
			}
			w.inFlight = nil
		}
	case KernelHosted:
		for _, c := range f.comps {
			quantum := f.Quantum
			if f.leak.Active() && c.Name() == f.leak.Victim && f.sends[f.leak.Modulator] > 0 {
				// The planted leak: scheduling capacity granted to the
				// victim depends on what the modulator has been doing.
				quantum += f.leak.Bonus
			}
			for q := 0; q < quantum; q++ {
				if f.deliverOne(c) {
					progress = true
					continue
				}
				if c.Poll(&ctx{f: f, comp: c.Name()}) {
					progress = true
					continue
				}
				break
			}
		}
	}
	return progress
}

// Run advances up to n rounds, stopping early when the system quiesces.
// It returns the number of rounds executed.
func (f *Fabric) Run(n int) int {
	for i := 0; i < n; i++ {
		if !f.StepRound() {
			// Physical deployment: in-flight messages may still arrive.
			pending := false
			for _, w := range f.wires {
				if len(w.queue) > 0 || len(w.inFlight) > 0 {
					pending = true
					break
				}
			}
			if !pending {
				return i
			}
		}
	}
	return n
}

// Trace returns a component's local observation history.
func (f *Fabric) Trace(comp string) []TraceEvent {
	return append([]TraceEvent(nil), f.traces[comp]...)
}

// PortTrace returns only the events of one component port and direction.
func (f *Fabric) PortTrace(comp, dir, port string) []string {
	var out []string
	for _, e := range f.traces[comp] {
		if e.Dir == dir && e.Port == port {
			out = append(out, e.Msg)
		}
	}
	return out
}

// Delivered reports the total number of messages handled.
func (f *Fabric) Delivered() uint64 { return f.delivered }

// Dropped reports messages lost to full wires.
func (f *Fabric) Dropped() int {
	n := 0
	for _, w := range f.wires {
		n += w.dropped
	}
	return n
}

// Component returns a registered component by name.
func (f *Fabric) Component(name string) (Component, bool) {
	c, ok := f.byName[name]
	return c, ok
}

// Index returns a component's registration order (-1 if unknown): the
// regime index its obs events carry.
func (f *Fabric) Index(name string) int {
	if i, ok := f.indexOf[name]; ok {
		return i
	}
	return -1
}

// Sends reports how many messages a component has sent (dropped ones
// included — the sender cannot observe the loss).
func (f *Fabric) Sends(comp string) int { return f.sends[comp] }

// Rounds returns the number of rounds executed so far.
func (f *Fabric) Rounds() uint64 { return f.rounds }

// PerPortTracesEqual compares one component's observation history across
// two fabrics, port by port: for every (direction, port), the message
// sequences must be identical. This is the observational-equivalence
// statement of experiment E7: each component, looking only at its own
// wires, cannot distinguish the deployments.
func PerPortTracesEqual(a, b *Fabric, comp string) (bool, string) {
	ports := map[[2]string]bool{}
	for _, e := range a.traces[comp] {
		ports[[2]string{e.Dir, e.Port}] = true
	}
	for _, e := range b.traces[comp] {
		ports[[2]string{e.Dir, e.Port}] = true
	}
	for p := range ports {
		ta := a.PortTrace(comp, p[0], p[1])
		tb := b.PortTrace(comp, p[0], p[1])
		if len(ta) != len(tb) {
			return false, fmt.Sprintf("%s %s/%s: %d vs %d events", comp, p[0], p[1], len(ta), len(tb))
		}
		for i := range ta {
			if ta[i] != tb[i] {
				return false, fmt.Sprintf("%s %s/%s event %d: %q vs %q", comp, p[0], p[1], i, ta[i], tb[i])
			}
		}
	}
	return true, ""
}

// NewInjector returns a Context bound to a component's outbound ports for
// use from OUTSIDE the scheduling loop — bootstrap scripts and tests that
// need to place messages on a component's wires before or between rounds.
// Sends are recorded in the component's trace like any other.
func NewInjector(f *Fabric, comp string) Context {
	return &ctx{f: f, comp: comp}
}
