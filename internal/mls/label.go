// Package mls implements the multilevel-security substrate: Bell–LaPadula
// labels (hierarchical levels crossed with category sets), the dominance
// lattice, and a reference monitor enforcing the ss- and *-properties [6].
//
// In the paper's architecture this policy machinery lives *inside trusted
// components* (the file-server, the printer-server, the Guard) — never in
// the separation kernel, which knows nothing of it. The kernelized baseline
// (package baseline) instead applies it system-wide, which is what forces
// trusted processes into existence.
package mls

import (
	"fmt"
	"strings"
)

// Level is a hierarchical sensitivity level.
type Level int

// The classic level ladder.
const (
	Unclassified Level = iota
	Confidential
	Secret
	TopSecret
)

// String names the level.
func (l Level) String() string {
	switch l {
	case Unclassified:
		return "UNCLASSIFIED"
	case Confidential:
		return "CONFIDENTIAL"
	case Secret:
		return "SECRET"
	case TopSecret:
		return "TOP SECRET"
	}
	return fmt.Sprintf("LEVEL%d", int(l))
}

// CatSet is a set of compartments/categories, as a bitmask. Category
// numbering is policy-defined; Categories provides a registry.
type CatSet uint64

// Has reports membership of category bit i.
func (c CatSet) Has(i int) bool { return c&(1<<i) != 0 }

// With returns c plus category bit i.
func (c CatSet) With(i int) CatSet { return c | 1<<i }

// SubsetOf reports c ⊆ o.
func (c CatSet) SubsetOf(o CatSet) bool { return c&^o == 0 }

// Label is a full security label: level plus category set.
type Label struct {
	Level Level
	Cats  CatSet
}

// L builds a label.
func L(level Level, cats ...int) Label {
	var cs CatSet
	for _, c := range cats {
		cs = cs.With(c)
	}
	return Label{Level: level, Cats: cs}
}

// Dominates reports whether l ⊒ o: information at o may flow to l.
func (l Label) Dominates(o Label) bool {
	return l.Level >= o.Level && o.Cats.SubsetOf(l.Cats)
}

// Equal reports label equality.
func (l Label) Equal(o Label) bool { return l == o }

// Comparable reports whether the two labels are ordered either way.
func (l Label) Comparable(o Label) bool { return l.Dominates(o) || o.Dominates(l) }

// Lub returns the least upper bound (join) of two labels.
func Lub(a, b Label) Label {
	lv := a.Level
	if b.Level > lv {
		lv = b.Level
	}
	return Label{Level: lv, Cats: a.Cats | b.Cats}
}

// Glb returns the greatest lower bound (meet) of two labels.
func Glb(a, b Label) Label {
	lv := a.Level
	if b.Level < lv {
		lv = b.Level
	}
	return Label{Level: lv, Cats: a.Cats & b.Cats}
}

// String renders the label, e.g. "SECRET{0,3}".
func (l Label) String() string {
	if l.Cats == 0 {
		return l.Level.String()
	}
	var cats []string
	for i := 0; i < 64; i++ {
		if l.Cats.Has(i) {
			cats = append(cats, fmt.Sprintf("%d", i))
		}
	}
	return l.Level.String() + "{" + strings.Join(cats, ",") + "}"
}

// Categories is a registry naming category bits.
type Categories struct {
	names []string
}

// NewCategories builds a registry from names (bit i = names[i]).
func NewCategories(names ...string) *Categories {
	return &Categories{names: append([]string(nil), names...)}
}

// Bit returns the bit index of a named category.
func (c *Categories) Bit(name string) (int, bool) {
	for i, n := range c.names {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// Set builds a CatSet from names; unknown names are ignored.
func (c *Categories) Set(names ...string) CatSet {
	var cs CatSet
	for _, n := range names {
		if i, ok := c.Bit(n); ok {
			cs = cs.With(i)
		}
	}
	return cs
}

// Name returns the name of bit i.
func (c *Categories) Name(i int) string {
	if i >= 0 && i < len(c.names) {
		return c.names[i]
	}
	return fmt.Sprintf("cat%d", i)
}

// Compact renders a label as "level/cats-hex" for embedding in messages.
func (l Label) Compact() string {
	return fmt.Sprintf("%d/%x", int(l.Level), uint64(l.Cats))
}

// ParseCompact parses the Compact rendering.
func ParseCompact(s string) (Label, error) {
	var lvl int
	var cats uint64
	if _, err := fmt.Sscanf(s, "%d/%x", &lvl, &cats); err != nil {
		return Label{}, fmt.Errorf("mls: bad compact label %q: %w", s, err)
	}
	return Label{Level: Level(lvl), Cats: CatSet(cats)}, nil
}
