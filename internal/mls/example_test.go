package mls_test

import (
	"fmt"

	"repro/internal/mls"
)

func ExampleLabel_Dominates() {
	secretCrypto := mls.L(mls.Secret, 1)
	secret := mls.L(mls.Secret)
	topSecret := mls.L(mls.TopSecret)

	fmt.Println(secretCrypto.Dominates(secret))    // more categories wins
	fmt.Println(topSecret.Dominates(secretCrypto)) // missing the category
	fmt.Println(mls.Lub(topSecret, secretCrypto))
	// Output:
	// true
	// false
	// TOP SECRET{1}
}

// The two Bell–LaPadula properties, and the trusted-process escape hatch
// whose consequences the paper's section 1 is about.
func ExampleMonitor_Check() {
	m := mls.NewMonitor()
	m.AddSubject("spooler", mls.L(mls.TopSecret), false)
	m.AddObject("low-spool", mls.L(mls.Unclassified))

	fmt.Println(m.Check("spooler", "low-spool", mls.Observe)) // read-down ok
	fmt.Println(m.Check("spooler", "low-spool", mls.Alter))   // write-down denied

	trusted := mls.NewMonitor()
	trusted.AddSubject("spooler", mls.L(mls.TopSecret), true)
	trusted.AddObject("low-spool", mls.L(mls.Unclassified))
	fmt.Println(trusted.Check("spooler", "low-spool", mls.Alter))
	// Output:
	// GRANT spooler observe on low-spool (ok)
	// DENY spooler alter on low-spool (*-property)
	// GRANT spooler alter on low-spool (trusted)
}
