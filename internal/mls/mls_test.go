package mls_test

import (
	"testing"
	"testing/quick"

	"repro/internal/mls"
)

func TestDominates(t *testing.T) {
	cases := []struct {
		a, b mls.Label
		want bool
	}{
		{mls.L(mls.Secret), mls.L(mls.Unclassified), true},
		{mls.L(mls.Unclassified), mls.L(mls.Secret), false},
		{mls.L(mls.Secret, 1), mls.L(mls.Secret), true},
		{mls.L(mls.Secret), mls.L(mls.Secret, 1), false},
		{mls.L(mls.TopSecret, 1), mls.L(mls.Secret, 2), false}, // categories incomparable
		{mls.L(mls.TopSecret, 1, 2), mls.L(mls.Secret, 2), true},
		{mls.L(mls.Secret, 1), mls.L(mls.Secret, 1), true},
	}
	for _, c := range cases {
		if got := c.a.Dominates(c.b); got != c.want {
			t.Errorf("%s dominates %s = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func randomLabel(level int, cats uint64) mls.Label {
	return mls.Label{Level: mls.Level(((level % 4) + 4) % 4), Cats: mls.CatSet(cats & 0xF)}
}

func TestDominanceLatticeProperties(t *testing.T) {
	// Partial order laws.
	reflexive := func(lv int, cats uint64) bool {
		a := randomLabel(lv, cats)
		return a.Dominates(a)
	}
	if err := quick.Check(reflexive, nil); err != nil {
		t.Error(err)
	}
	antisym := func(l1 int, c1 uint64, l2 int, c2 uint64) bool {
		a, b := randomLabel(l1, c1), randomLabel(l2, c2)
		if a.Dominates(b) && b.Dominates(a) {
			return a.Equal(b)
		}
		return true
	}
	if err := quick.Check(antisym, nil); err != nil {
		t.Error(err)
	}
	trans := func(l1 int, c1 uint64, l2 int, c2 uint64, l3 int, c3 uint64) bool {
		a, b, c := randomLabel(l1, c1), randomLabel(l2, c2), randomLabel(l3, c3)
		if a.Dominates(b) && b.Dominates(c) {
			return a.Dominates(c)
		}
		return true
	}
	if err := quick.Check(trans, nil); err != nil {
		t.Error(err)
	}
	// Lub is the least upper bound; Glb the greatest lower bound.
	lubLaw := func(l1 int, c1 uint64, l2 int, c2 uint64) bool {
		a, b := randomLabel(l1, c1), randomLabel(l2, c2)
		j := mls.Lub(a, b)
		if !j.Dominates(a) || !j.Dominates(b) {
			return false
		}
		m := mls.Glb(a, b)
		return a.Dominates(m) && b.Dominates(m)
	}
	if err := quick.Check(lubLaw, nil); err != nil {
		t.Error(err)
	}
	// Glb/Lub absorption.
	absorb := func(l1 int, c1 uint64, l2 int, c2 uint64) bool {
		a, b := randomLabel(l1, c1), randomLabel(l2, c2)
		return mls.Lub(a, mls.Glb(a, b)).Equal(a) && mls.Glb(a, mls.Lub(a, b)).Equal(a)
	}
	if err := quick.Check(absorb, nil); err != nil {
		t.Error(err)
	}
}

func TestLabelString(t *testing.T) {
	if got := mls.L(mls.Secret).String(); got != "SECRET" {
		t.Errorf("got %q", got)
	}
	if got := mls.L(mls.TopSecret, 0, 3).String(); got != "TOP SECRET{0,3}" {
		t.Errorf("got %q", got)
	}
}

func TestCategoriesRegistry(t *testing.T) {
	cats := mls.NewCategories("nato", "crypto")
	cs := cats.Set("crypto")
	if !cs.Has(1) || cs.Has(0) {
		t.Errorf("Set(crypto) = %b", cs)
	}
	if name := cats.Name(0); name != "nato" {
		t.Errorf("Name(0) = %q", name)
	}
	if _, ok := cats.Bit("missing"); ok {
		t.Error("unknown category resolved")
	}
}

func TestMonitorSSProperty(t *testing.T) {
	m := mls.NewMonitor()
	m.AddSubject("alice", mls.L(mls.Secret), false)
	m.AddObject("memo", mls.L(mls.TopSecret))
	m.AddObject("note", mls.L(mls.Unclassified))
	if d := m.Check("alice", "memo", mls.Observe); d.Granted {
		t.Error("read-up granted")
	} else if d.Rule != "ss-property" {
		t.Errorf("rule = %q", d.Rule)
	}
	if d := m.Check("alice", "note", mls.Observe); !d.Granted {
		t.Error("read-down denied")
	}
}

func TestMonitorStarProperty(t *testing.T) {
	m := mls.NewMonitor()
	m.AddSubject("proc", mls.L(mls.Secret), false)
	m.AddObject("low", mls.L(mls.Unclassified))
	m.AddObject("high", mls.L(mls.TopSecret))
	if d := m.Check("proc", "low", mls.Alter); d.Granted {
		t.Error("write-down granted")
	} else if d.Rule != "*-property" {
		t.Errorf("rule = %q", d.Rule)
	}
	if d := m.Check("proc", "high", mls.Alter); !d.Granted {
		t.Error("write-up denied (BLP allows blind write-up)")
	}
}

func TestMonitorTrustedEscapeHatch(t *testing.T) {
	m := mls.NewMonitor()
	m.AddSubject("spooler", mls.L(mls.TopSecret), true)
	m.AddObject("low-spool", mls.L(mls.Unclassified))
	d := m.Check("spooler", "low-spool", mls.Alter)
	if !d.Granted || d.Rule != "trusted" {
		t.Errorf("trusted write-down: %+v", d)
	}
	if m.TrustedUses() != 1 {
		t.Errorf("TrustedUses = %d", m.TrustedUses())
	}
}

func TestMonitorCurrentLevel(t *testing.T) {
	m := mls.NewMonitor()
	m.AddSubject("bob", mls.L(mls.TopSecret), false)
	m.AddObject("low", mls.L(mls.Unclassified))
	// Operating at a lowered current level, the *-property permits the write.
	if err := m.SetCurrent("bob", mls.L(mls.Unclassified)); err != nil {
		t.Fatal(err)
	}
	if d := m.Check("bob", "low", mls.Alter); !d.Granted {
		t.Errorf("write at lowered level denied: %+v", d)
	}
	// But reads above the current level then fail.
	m.AddObject("mid", mls.L(mls.Secret))
	if d := m.Check("bob", "mid", mls.Observe); d.Granted {
		t.Error("read above current level granted")
	}
	// Raising above clearance is rejected.
	if err := m.SetCurrent("bob", mls.L(mls.TopSecret, 5)); err == nil {
		t.Error("current level rose above clearance")
	}
}

func TestMonitorUnknownPrincipals(t *testing.T) {
	m := mls.NewMonitor()
	if d := m.Check("ghost", "nothing", mls.Observe); d.Granted {
		t.Error("unknown principals granted")
	}
	if m.Denials() != 1 {
		t.Errorf("Denials = %d", m.Denials())
	}
}

func TestAuditTrail(t *testing.T) {
	m := mls.NewMonitor()
	m.AddSubject("a", mls.L(mls.Secret), false)
	m.AddObject("o", mls.L(mls.Secret))
	m.Check("a", "o", mls.Observe)
	m.Check("a", "o", mls.Alter)
	audit := m.Audit()
	if len(audit) != 2 {
		t.Fatalf("audit has %d entries", len(audit))
	}
	if !audit[0].Granted || !audit[1].Granted {
		t.Error("same-level access denied")
	}
}
