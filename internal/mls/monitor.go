package mls

import "fmt"

// Access is a requested access mode in Bell–LaPadula terms.
type Access int

// Access modes: Observe is any read, Alter is any write.
const (
	Observe Access = 1 << iota
	Alter
)

// String renders the mode.
func (a Access) String() string {
	switch a {
	case Observe:
		return "observe"
	case Alter:
		return "alter"
	case Observe | Alter:
		return "observe+alter"
	}
	return fmt.Sprintf("access(%d)", int(a))
}

// Decision is the monitor's verdict on one request.
type Decision struct {
	Granted bool
	Rule    string // which property decided: "ss-property", "*-property", "trusted", "ok"
	Subject string
	Object  string
	Access  Access
}

func (d Decision) String() string {
	verdict := "DENY"
	if d.Granted {
		verdict = "GRANT"
	}
	return fmt.Sprintf("%s %s %s on %s (%s)", verdict, d.Subject, d.Access, d.Object, d.Rule)
}

// Subject is an active entity with a clearance and a current level.
type Subject struct {
	Name      string
	Clearance Label // maximum label
	Current   Label // working level (≤ clearance)
	// Trusted exempts the subject from the *-property — the escape hatch
	// that turns a process into a "trusted process", with everything the
	// paper says follows from that.
	Trusted bool
}

// Object is a passive entity with a classification.
type Object struct {
	Name           string
	Classification Label
}

// Monitor is a Bell–LaPadula reference monitor with an audit trail.
type Monitor struct {
	subjects map[string]*Subject
	objects  map[string]*Object
	audit    []Decision
	// AuditLimit caps the trail (0 = 4096).
	AuditLimit int
}

// NewMonitor creates an empty monitor.
func NewMonitor() *Monitor {
	return &Monitor{
		subjects: map[string]*Subject{},
		objects:  map[string]*Object{},
	}
}

// AddSubject registers a subject; current level defaults to clearance.
func (m *Monitor) AddSubject(name string, clearance Label, trusted bool) *Subject {
	s := &Subject{Name: name, Clearance: clearance, Current: clearance, Trusted: trusted}
	m.subjects[name] = s
	return s
}

// AddObject registers an object.
func (m *Monitor) AddObject(name string, class Label) *Object {
	o := &Object{Name: name, Classification: class}
	m.objects[name] = o
	return o
}

// Subject looks up a subject.
func (m *Monitor) Subject(name string) (*Subject, bool) {
	s, ok := m.subjects[name]
	return s, ok
}

// Object looks up an object.
func (m *Monitor) Object(name string) (*Object, bool) {
	o, ok := m.objects[name]
	return o, ok
}

// RemoveObject deletes an object (e.g. an unlinked spool file).
func (m *Monitor) RemoveObject(name string) { delete(m.objects, name) }

// SetCurrent lowers (or raises, within clearance) a subject's working level.
func (m *Monitor) SetCurrent(name string, lvl Label) error {
	s, ok := m.subjects[name]
	if !ok {
		return fmt.Errorf("mls: unknown subject %q", name)
	}
	if !s.Clearance.Dominates(lvl) {
		return fmt.Errorf("mls: %q cannot operate above clearance", name)
	}
	s.Current = lvl
	return nil
}

// Check decides one access request and records it in the audit trail.
//
// ss-property: Observe requires subject.Current ⊒ object.
// *-property:  Alter requires object ⊒ subject.Current — unless the
// subject is Trusted, in which case the alteration is granted and audited
// with rule "trusted".
func (m *Monitor) Check(subject, object string, a Access) Decision {
	d := Decision{Subject: subject, Object: object, Access: a}
	s, okS := m.subjects[subject]
	o, okO := m.objects[object]
	switch {
	case !okS:
		d.Rule = "unknown-subject"
	case !okO:
		d.Rule = "unknown-object"
	default:
		d.Granted = true
		d.Rule = "ok"
		if a&Observe != 0 && !s.Current.Dominates(o.Classification) {
			d.Granted = false
			d.Rule = "ss-property"
		}
		if d.Granted && a&Alter != 0 && !o.Classification.Dominates(s.Current) {
			if s.Trusted {
				d.Rule = "trusted"
			} else {
				d.Granted = false
				d.Rule = "*-property"
			}
		}
	}
	m.record(d)
	return d
}

func (m *Monitor) record(d Decision) {
	limit := m.AuditLimit
	if limit == 0 {
		limit = 4096
	}
	if len(m.audit) < limit {
		m.audit = append(m.audit, d)
	}
}

// Audit returns the decision trail.
func (m *Monitor) Audit() []Decision { return append([]Decision(nil), m.audit...) }

// TrustedUses counts granted accesses that needed the trusted escape hatch
// — the measure of how much of the TCB lives outside the policy.
func (m *Monitor) TrustedUses() int {
	n := 0
	for _, d := range m.audit {
		if d.Granted && d.Rule == "trusted" {
			n++
		}
	}
	return n
}

// Denials counts denied requests.
func (m *Monitor) Denials() int {
	n := 0
	for _, d := range m.audit {
		if !d.Granted {
			n++
		}
	}
	return n
}
