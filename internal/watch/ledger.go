package watch

import (
	"bufio"
	"bytes"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"regexp"

	"repro/internal/obs"
	"repro/internal/separability"
	"repro/internal/witness"
)

// The on-disk layout of a watch directory mirrors the witness store:
//
//	<dir>/<deployment>/ledger.jsonl   — one canonical JSON Record per line
//	<dir>/<deployment>/blobs/<sha256> — JSONL trace blobs, content-addressed
//
// Records are content-addressed (ID = truncated SHA-256 of the record with
// its ID blanked) and hash-chained (each record pins its predecessor's ID),
// so the decoder is tamper-evident twice over: editing any line breaks its
// own ID, and deleting or reordering lines breaks the chain.

const (
	// LedgerSchemaVersion versions the build-record schema.
	LedgerSchemaVersion = 1
	// KindBuildRecord discriminates ledger records from the other
	// content-addressed artifacts in this repository (witnesses, shard
	// results, checkpoints), which share the same conventions.
	KindBuildRecord = "build-record"

	ledgerName = "ledger.jsonl"
	blobsDir   = "blobs"
	// maxLedgerLine bounds one record; a line is metadata plus a few
	// violation records, far below this.
	maxLedgerLine = 16 << 20
)

// BuildInfo identifies the build that produced a record, so `sepwatch
// history` can attribute drift to a build rather than just a time.
type BuildInfo struct {
	// GoVersion is runtime.Version() of the verifying process.
	GoVersion string `json:"goVersion"`
	// Revision is the VCS revision baked into the binary (debug.BuildInfo
	// vcs.revision), when the binary was built from a checkout.
	Revision string `json:"revision,omitempty"`
	// Dirty marks a VCS build with uncommitted changes.
	Dirty bool `json:"dirty,omitempty"`
	// Label is an explicit operator-provided build label (`sepwatch
	// -build`), for builds with no embedded VCS stamp.
	Label string `json:"label,omitempty"`
}

// String renders the identity as history listings print it.
func (b BuildInfo) String() string {
	id := b.Label
	if id == "" {
		id = b.Revision
		if len(id) > 12 {
			id = id[:12]
		}
		if b.Dirty {
			id += "+dirty"
		}
	}
	if id == "" {
		id = "unstamped"
	}
	return id + " (" + b.GoVersion + ")"
}

// RegimeDigest is one regime's trace-projection digest: the Φ^c of the
// deployment trace, as computed by analyze.Project.
type RegimeDigest struct {
	Regime int `json:"regime"`
	// Events is the length of the regime's observable projection.
	Events int `json:"events"`
	// Digest is the projection's canonical FNV-1a digest, 16 hex digits.
	Digest string `json:"digest"`
}

// ChannelStat counts one channel's traffic in the deployment trace. A
// channel whose traffic disappears between builds is the cut-channel
// regression Zhao et al. frame as the failure mode to watch for.
type ChannelStat struct {
	Channel int `json:"chan"`
	Sends   int `json:"sends"`
	Recvs   int `json:"recvs"`
}

// Drift kinds, from most to least alarming.
const (
	// DriftVerdictFlip: the verification verdict changed between builds.
	DriftVerdictFlip = "verdict-flip"
	// DriftDigest: a regime's trace-projection digest changed — the
	// deployment is observably different to at least one regime.
	DriftDigest = "digest-drift"
	// DriftChannel: a sanctioned channel carried traffic in one build and
	// none in the other (cut or un-cut between builds).
	DriftChannel = "channel-regression"
)

// Drift is one classified difference between consecutive builds of a
// deployment.
type Drift struct {
	// Kind is one of the Drift* constants.
	Kind string `json:"kind"`
	// Regime is the diverging regime for digest drift (-1 otherwise).
	Regime int `json:"regime"`
	// DivergeAt is the index of the first divergent event in the diverging
	// regime's projection (-1 when no trace-level divergence was located).
	DivergeAt int `json:"divergeAt"`
	// Detail is the human-readable story.
	Detail string `json:"detail"`
}

func (d Drift) String() string {
	if d.Kind == DriftDigest && d.Regime >= 0 {
		return fmt.Sprintf("%s: regime %d at event %d: %s", d.Kind, d.Regime, d.DivergeAt, d.Detail)
	}
	return d.Kind + ": " + d.Detail
}

// Record is one build's verification outcome for one deployment: the
// ledger line IS the artifact. All fields are stable JSON.
type Record struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	// ID is the truncated SHA-256 of this record's canonical JSON with ID
	// blanked (witness-store conventions).
	ID string `json:"id"`
	// PrevID chains this record to its predecessor ("" for the first
	// build); Seq is the 1-based build number.
	PrevID string `json:"prevId,omitempty"`
	Seq    int    `json:"seq"`

	// What was verified.
	Deployment string             `json:"deployment"`
	Spec       witness.SystemSpec `json:"spec"`
	Build      BuildInfo          `json:"build"`
	// Time is the verification time, unix seconds.
	Time int64 `json:"time"`

	// Verification parameters and outcome. Exhaustive names the registered
	// exhaustive target when the verdict came from a sharded exhaustive
	// sweep; otherwise Trials x Steps randomized checking produced it.
	Seed       int64  `json:"seed"`
	Trials     int    `json:"trials,omitempty"`
	Steps      int    `json:"steps,omitempty"`
	Exhaustive string `json:"exhaustive,omitempty"`
	Shards     int    `json:"shards,omitempty"`
	Passed     bool   `json:"passed"`
	// Checks totals the verified condition instances; States the states
	// they were checked at.
	Checks int `json:"checks"`
	States int `json:"states"`
	// Violations carries the first few counterexamples behind a FAIL.
	Violations []separability.ViolationRecord `json:"violations,omitempty"`

	// The canonical deployment trace: step/event counts, the
	// content-address of the JSONL blob, per-regime projection digests and
	// their combined digest, and per-channel traffic.
	TraceSteps  int            `json:"traceSteps,omitempty"`
	TraceEvents int            `json:"traceEvents"`
	TraceBlob   string         `json:"traceBlob,omitempty"`
	TraceDigest string         `json:"traceDigest"`
	Regimes     []RegimeDigest `json:"regimes,omitempty"`
	Channels    []ChannelStat  `json:"channels,omitempty"`

	// Drift classifies this build against its predecessor (empty for the
	// first build and for builds identical to their predecessor).
	Drift []Drift `json:"drift,omitempty"`
}

func (r *Record) computeID() (string, error) {
	cp := *r
	cp.ID = ""
	return witness.ContentID(&cp)
}

// Validate checks the structural invariants of one record in isolation
// (the chain invariants need the predecessor; Records checks those).
func (r *Record) Validate() error {
	if r.Version != LedgerSchemaVersion {
		return fmt.Errorf("unsupported build-record version %d", r.Version)
	}
	if r.Kind != KindBuildRecord {
		return fmt.Errorf("kind %q, want %q", r.Kind, KindBuildRecord)
	}
	id, err := r.computeID()
	if err != nil {
		return err
	}
	if r.ID != id {
		return fmt.Errorf("ID %q does not match content %q: line truncated or tampered", r.ID, id)
	}
	if r.Seq < 1 {
		return fmt.Errorf("record %s: seq %d < 1", r.ID, r.Seq)
	}
	if r.Deployment == "" {
		return fmt.Errorf("record %s: no deployment name", r.ID)
	}
	if r.TraceBlob != "" {
		if len(r.TraceBlob) != 64 {
			return fmt.Errorf("record %s: trace blob address %q is not a sha256", r.ID, r.TraceBlob)
		}
		if _, err := hex.DecodeString(r.TraceBlob); err != nil {
			return fmt.Errorf("record %s: trace blob address: %w", r.ID, err)
		}
	}
	if len(r.TraceDigest) != 16 {
		return fmt.Errorf("record %s: trace digest %q is not 16 hex digits", r.ID, r.TraceDigest)
	}
	for _, rd := range r.Regimes {
		if len(rd.Digest) != 16 {
			return fmt.Errorf("record %s: regime %d digest %q is not 16 hex digits", r.ID, rd.Regime, rd.Digest)
		}
	}
	for _, d := range r.Drift {
		switch d.Kind {
		case DriftVerdictFlip, DriftDigest, DriftChannel:
		default:
			return fmt.Errorf("record %s: unknown drift kind %q", r.ID, d.Kind)
		}
	}
	return nil
}

// deploymentNameRe keeps ledger directories inside the watch root: one
// path segment, no separators or traversal.
var deploymentNameRe = regexp.MustCompile(`^[A-Za-z0-9][A-Za-z0-9._-]*$`)

// Ledger is one deployment's append-only build history.
type Ledger struct {
	dir        string
	deployment string
}

// OpenLedger opens (without creating anything yet) the ledger for one
// deployment under the watch root directory.
func OpenLedger(root, deployment string) (*Ledger, error) {
	if !deploymentNameRe.MatchString(deployment) {
		return nil, fmt.Errorf("watch: deployment name %q is not a valid ledger directory name", deployment)
	}
	return &Ledger{dir: filepath.Join(root, deployment), deployment: deployment}, nil
}

// Dir returns the ledger's directory.
func (l *Ledger) Dir() string { return l.dir }

// Records reads and validates the full history, oldest first. Every line
// must carry a content-consistent ID, name this ledger's deployment, and
// chain to its predecessor (Seq increments from 1, PrevID pins the prior
// record's ID). A missing ledger file is an empty history, not an error.
func (l *Ledger) Records() ([]*Record, error) {
	f, err := os.Open(filepath.Join(l.dir, ledgerName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	recs, err := ReadLedger(f)
	if err != nil {
		return nil, fmt.Errorf("watch: %s: %w", filepath.Join(l.dir, ledgerName), err)
	}
	for _, r := range recs {
		if r.Deployment != l.deployment {
			return nil, fmt.Errorf("watch: %s: record %s names deployment %q",
				filepath.Join(l.dir, ledgerName), r.ID, r.Deployment)
		}
	}
	return recs, nil
}

// ReadLedger decodes a ledger.jsonl stream, enforcing per-record and chain
// invariants. The decoder is total: arbitrary bytes yield records or an
// error, never a panic.
func ReadLedger(r io.Reader) ([]*Record, error) {
	var out []*Record
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxLedgerLine)
	ln := 0
	for sc.Scan() {
		ln++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		rec := &Record{}
		if err := json.Unmarshal(line, rec); err != nil {
			return nil, fmt.Errorf("line %d: %w", ln, err)
		}
		if err := rec.Validate(); err != nil {
			return nil, fmt.Errorf("line %d: %w", ln, err)
		}
		if len(out) == 0 {
			if rec.Seq != 1 || rec.PrevID != "" {
				return nil, fmt.Errorf("line %d: record %s does not start a chain (seq %d, prevId %q)",
					ln, rec.ID, rec.Seq, rec.PrevID)
			}
		} else {
			prev := out[len(out)-1]
			if rec.Seq != prev.Seq+1 {
				return nil, fmt.Errorf("line %d: seq %d after %d: ledger reordered or truncated",
					ln, rec.Seq, prev.Seq)
			}
			if rec.PrevID != prev.ID {
				return nil, fmt.Errorf("line %d: prevId %q does not chain to %s: ledger edited",
					ln, rec.PrevID, prev.ID)
			}
		}
		out = append(out, rec)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// Head returns the most recent record (nil for an empty ledger).
func (l *Ledger) Head() (*Record, error) {
	recs, err := l.Records()
	if err != nil || len(recs) == 0 {
		return nil, err
	}
	return recs[len(recs)-1], nil
}

// Append chains rec onto the ledger and persists it together with its
// trace blob. The chain fields (Seq, PrevID), the blob address and the ID
// are computed here; callers fill everything else. The ledger is
// single-writer: one sepwatch process owns a watch directory.
func (l *Ledger) Append(rec *Record, trace []byte) error {
	head, err := l.Head()
	if err != nil {
		return err
	}
	rec.Version = LedgerSchemaVersion
	rec.Kind = KindBuildRecord
	rec.Deployment = l.deployment
	if head == nil {
		rec.Seq, rec.PrevID = 1, ""
	} else {
		rec.Seq, rec.PrevID = head.Seq+1, head.ID
	}
	if trace != nil {
		rec.TraceBlob = witness.HashHex(trace)
	}
	id, err := rec.computeID()
	if err != nil {
		return err
	}
	rec.ID = id
	if err := rec.Validate(); err != nil {
		return fmt.Errorf("watch: refusing to append invalid record: %w", err)
	}

	if err := os.MkdirAll(filepath.Join(l.dir, blobsDir), 0o755); err != nil {
		return err
	}
	if trace != nil {
		bp := filepath.Join(l.dir, blobsDir, rec.TraceBlob)
		if _, err := os.Stat(bp); os.IsNotExist(err) {
			// Content-addressed: an identical trace (the idempotent
			// re-verification case) is stored once. Atomic write keeps a
			// concurrent reader off torn blobs.
			if err := witness.AtomicWriteFile(bp, trace); err != nil {
				return err
			}
		}
	}
	line, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(l.dir, ledgerName),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		return err
	}
	return f.Close()
}

// LoadTrace reads, verifies and decodes rec's trace blob. A record with no
// blob yields (nil, nil).
func (l *Ledger) LoadTrace(rec *Record) ([]obs.Event, error) {
	if rec.TraceBlob == "" {
		return nil, nil
	}
	b, err := os.ReadFile(filepath.Join(l.dir, blobsDir, rec.TraceBlob))
	if err != nil {
		return nil, err
	}
	if witness.HashHex(b) != rec.TraceBlob {
		return nil, fmt.Errorf("watch: record %s: trace blob corrupt (hash mismatch)", rec.ID)
	}
	return obs.ReadJSONL(bytes.NewReader(b))
}
