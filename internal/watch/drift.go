package watch

import (
	"fmt"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// ClassifyDrift compares a deployment's new build record against its
// predecessor and classifies every difference that matters, most alarming
// first:
//
//   - verdict-flip: the verification verdict changed (PASS<->FAIL). A flip
//     to FAIL means the deployment silently changed into something the
//     checker can refute; a flip to PASS on a deployment expected to fail
//     means detection itself regressed.
//
//   - digest-drift: the combined Φ^c trace digest changed — at least one
//     regime's view of the deployment differs from the previous build.
//     Exactly one entry is emitted, anchored at the earliest-diverging
//     regime (smallest first-divergence index; ties to the smallest regime
//     number) with the first divergent event located via analyze.DiffAll
//     when both trace blobs are available (DivergeAt -1 otherwise).
//
//   - channel-regression: a sanctioned channel carried traffic in exactly
//     one of the two builds — cut (or un-cut) between builds. Mere traffic
//     count changes are already digest drift; appearance/disappearance is
//     the cut-channel regression worth naming.
//
// A nil prev (first build of a deployment) classifies as no drift: there
// is no baseline to drift from.
func ClassifyDrift(prev, cur *Record, prevTrace, curTrace []obs.Event) []Drift {
	if prev == nil {
		return nil
	}
	var out []Drift

	if prev.Passed != cur.Passed {
		out = append(out, Drift{
			Kind: DriftVerdictFlip, Regime: -1, DivergeAt: -1,
			Detail: fmt.Sprintf("verification verdict flipped %s -> %s (build %s -> %s)",
				verdict(prev.Passed), verdict(cur.Passed), prev.Build, cur.Build),
		})
	}

	if prev.TraceDigest != cur.TraceDigest {
		out = append(out, digestDrift(prev, cur, prevTrace, curTrace))
	}

	out = append(out, channelRegressions(prev, cur)...)
	return out
}

func verdict(passed bool) string {
	if passed {
		return "PASS"
	}
	return "FAIL"
}

// digestDrift builds the single digest-drift entry, located down to the
// first divergent event when both traces are on hand.
func digestDrift(prev, cur *Record, prevTrace, curTrace []obs.Event) Drift {
	d := Drift{Kind: DriftDigest, Regime: -1, DivergeAt: -1,
		Detail: fmt.Sprintf("trace digest %s -> %s", prev.TraceDigest, cur.TraceDigest)}
	if prevTrace == nil || curTrace == nil {
		// No blobs to compare event-by-event; fall back to naming the first
		// regime whose recorded digest differs.
		if r, ok := firstDigestMismatch(prev.Regimes, cur.Regimes); ok {
			d.Regime = r
			d.Detail += fmt.Sprintf(" (first differing regime %d; traces unavailable)", r)
		}
		return d
	}
	best := analyze.DiffResult{DivergeAt: -1}
	for _, dr := range analyze.DiffAll(prevTrace, curTrace) {
		if dr.Equal {
			continue
		}
		if best.DivergeAt == -1 || dr.DivergeAt < best.DivergeAt ||
			(dr.DivergeAt == best.DivergeAt && dr.Regime < best.Regime) {
			best = dr
		}
	}
	if best.DivergeAt == -1 {
		// Digest changed but every per-regime projection matches: the drift
		// lives outside any regime's view (kernel-internal events only).
		d.Detail += " (no regime-observable divergence)"
		return d
	}
	d.Regime, d.DivergeAt = best.Regime, best.DivergeAt
	a, b := best.A, best.B
	if a == "" {
		a = "<view ended>"
	}
	if b == "" {
		b = "<view ended>"
	}
	d.Detail += fmt.Sprintf("; regime %d diverges at event %d: prev %s, now %s",
		best.Regime, best.DivergeAt, a, b)
	return d
}

// firstDigestMismatch scans two recorded regime-digest lists for the first
// regime (by number) present in both with differing digests, or present in
// only one.
func firstDigestMismatch(a, b []RegimeDigest) (int, bool) {
	am := map[int]string{}
	for _, rd := range a {
		am[rd.Regime] = rd.Digest
	}
	bm := map[int]string{}
	for _, rd := range b {
		bm[rd.Regime] = rd.Digest
	}
	best, found := 0, false
	take := func(r int) {
		if !found || r < best {
			best, found = r, true
		}
	}
	for r, ad := range am {
		if bd, ok := bm[r]; !ok || bd != ad {
			take(r)
		}
	}
	for r := range bm {
		if _, ok := am[r]; !ok {
			take(r)
		}
	}
	return best, found
}

// channelRegressions reports channels whose traffic exists in exactly one
// of the two builds.
func channelRegressions(prev, cur *Record) []Drift {
	type traffic struct{ sends, recvs int }
	pm := map[int]traffic{}
	for _, cs := range prev.Channels {
		pm[cs.Channel] = traffic{cs.Sends, cs.Recvs}
	}
	cm := map[int]traffic{}
	for _, cs := range cur.Channels {
		cm[cs.Channel] = traffic{cs.Sends, cs.Recvs}
	}
	var out []Drift
	seen := map[int]bool{}
	for _, cs := range append(append([]ChannelStat{}, prev.Channels...), cur.Channels...) {
		ch := cs.Channel
		if seen[ch] {
			continue
		}
		seen[ch] = true
		p, c := pm[ch], cm[ch]
		pLive := p.sends+p.recvs > 0
		cLive := c.sends+c.recvs > 0
		switch {
		case pLive && !cLive:
			out = append(out, Drift{Kind: DriftChannel, Regime: -1, DivergeAt: -1,
				Detail: fmt.Sprintf("channel %d traffic disappeared (was %d sends/%d recvs): channel cut or starved",
					ch, p.sends, p.recvs)})
		case !pLive && cLive:
			out = append(out, Drift{Kind: DriftChannel, Regime: -1, DivergeAt: -1,
				Detail: fmt.Sprintf("channel %d traffic appeared (%d sends/%d recvs): previously cut channel now carries data",
					ch, c.sends, c.recvs)})
		}
	}
	return out
}
