package watch

import (
	"strings"
	"testing"

	"repro/internal/obs"
)

func tev(cycle uint64, kind obs.EventKind, regime, arg int, value uint64) obs.Event {
	return obs.Event{Cycle: cycle, Kind: kind, Regime: regime, Arg: arg, Value: value}
}

func recWithDigest(passed bool, digest string, regimes []RegimeDigest, chans []ChannelStat) *Record {
	return &Record{Passed: passed, TraceDigest: digest, Regimes: regimes, Channels: chans,
		Build: BuildInfo{GoVersion: "go1.test"}}
}

func TestClassifyDriftFirstBuildIsBaseline(t *testing.T) {
	if d := ClassifyDrift(nil, recWithDigest(true, "cbf29ce484222325", nil, nil), nil, nil); d != nil {
		t.Fatalf("first build classified as drift: %v", d)
	}
}

func TestClassifyDriftIdenticalBuilds(t *testing.T) {
	trace := []obs.Event{tev(0, obs.EvSyscallEnter, 0, 1, 0)}
	regs, digest := RegimeDigests(trace)
	prev := recWithDigest(true, digest, regs, ChannelStats(trace))
	cur := recWithDigest(true, digest, regs, ChannelStats(trace))
	if d := ClassifyDrift(prev, cur, trace, trace); len(d) != 0 {
		t.Fatalf("identical builds drifted: %v", d)
	}
}

func TestClassifyDriftVerdictFlip(t *testing.T) {
	prev := recWithDigest(true, "cbf29ce484222325", nil, nil)
	cur := recWithDigest(false, "cbf29ce484222325", nil, nil)
	ds := ClassifyDrift(prev, cur, nil, nil)
	if len(ds) != 1 || ds[0].Kind != DriftVerdictFlip {
		t.Fatalf("drift = %v, want one verdict flip", ds)
	}
	if !strings.Contains(ds[0].Detail, "PASS -> FAIL") {
		t.Errorf("flip direction missing: %s", ds[0].Detail)
	}
}

// The digest-drift entry is singular and anchored at the earliest
// divergent event across regimes, with the divergent event pair rendered.
func TestClassifyDriftDigestLocatesFirstDivergence(t *testing.T) {
	prevTrace := []obs.Event{
		tev(0, obs.EvSyscallExit, 0, 1, 10),
		tev(1, obs.EvSyscallExit, 1, 2, 20),
		tev(2, obs.EvSyscallExit, 1, 2, 21),
	}
	// Regime 1 diverges at its event 1; regime 0 is untouched.
	curTrace := []obs.Event{
		tev(0, obs.EvSyscallExit, 0, 1, 10),
		tev(1, obs.EvSyscallExit, 1, 2, 20),
		tev(2, obs.EvSyscallExit, 1, 2, 99),
	}
	pr, pd := RegimeDigests(prevTrace)
	cr, cd := RegimeDigests(curTrace)
	if pd == cd {
		t.Fatal("test traces should differ")
	}
	ds := ClassifyDrift(recWithDigest(true, pd, pr, nil), recWithDigest(true, cd, cr, nil),
		prevTrace, curTrace)
	if len(ds) != 1 {
		t.Fatalf("drift = %v, want exactly one digest-drift entry", ds)
	}
	d := ds[0]
	if d.Kind != DriftDigest || d.Regime != 1 || d.DivergeAt != 1 {
		t.Fatalf("digest drift anchored at regime %d event %d: %+v", d.Regime, d.DivergeAt, d)
	}
	if !strings.Contains(d.Detail, pd+" -> "+cd) {
		t.Errorf("digests missing from detail: %s", d.Detail)
	}
	if !strings.Contains(d.Detail, "prev ") || !strings.Contains(d.Detail, "now ") {
		t.Errorf("divergent event pair missing from detail: %s", d.Detail)
	}
}

// Without trace blobs the entry degrades to the recorded per-regime
// digests: regime located, DivergeAt unknown.
func TestClassifyDriftDigestWithoutTraces(t *testing.T) {
	prev := recWithDigest(true, "0000000000000001",
		[]RegimeDigest{{Regime: 0, Events: 3, Digest: "aaaaaaaaaaaaaaaa"},
			{Regime: 2, Events: 4, Digest: "bbbbbbbbbbbbbbbb"}}, nil)
	cur := recWithDigest(true, "0000000000000002",
		[]RegimeDigest{{Regime: 0, Events: 3, Digest: "aaaaaaaaaaaaaaaa"},
			{Regime: 2, Events: 4, Digest: "cccccccccccccccc"}}, nil)
	ds := ClassifyDrift(prev, cur, nil, nil)
	if len(ds) != 1 || ds[0].Kind != DriftDigest {
		t.Fatalf("drift = %v", ds)
	}
	if ds[0].Regime != 2 || ds[0].DivergeAt != -1 {
		t.Fatalf("fallback anchored at regime %d event %d", ds[0].Regime, ds[0].DivergeAt)
	}
}

func TestClassifyDriftChannelRegression(t *testing.T) {
	prev := recWithDigest(true, "0000000000000001", nil,
		[]ChannelStat{{Channel: 0, Sends: 5, Recvs: 5}, {Channel: 1, Sends: 3, Recvs: 2}})
	cur := recWithDigest(true, "0000000000000002", nil,
		[]ChannelStat{{Channel: 0, Sends: 7, Recvs: 6}})
	ds := ClassifyDrift(prev, cur, nil, nil)
	var chans []Drift
	for _, d := range ds {
		if d.Kind == DriftChannel {
			chans = append(chans, d)
		}
	}
	if len(chans) != 1 || !strings.Contains(chans[0].Detail, "channel 1 traffic disappeared") {
		t.Fatalf("channel regression = %v", chans)
	}

	// The reverse direction: a cut channel coming back to life.
	ds = ClassifyDrift(cur, prev, nil, nil)
	found := false
	for _, d := range ds {
		if d.Kind == DriftChannel && strings.Contains(d.Detail, "channel 1 traffic appeared") {
			found = true
		}
	}
	if !found {
		t.Fatalf("reappearing channel not classified: %v", ds)
	}

	// Count changes alone (channel 0: 5/5 -> 7/6) are digest drift, not a
	// channel regression.
	for _, d := range ds {
		if d.Kind == DriftChannel && strings.Contains(d.Detail, "channel 0") {
			t.Errorf("count-only change misclassified as regression: %v", d)
		}
	}
}

func TestChannelStats(t *testing.T) {
	trace := []obs.Event{
		tev(0, obs.EvChanSend, 0, 1, 7),
		tev(1, obs.EvChanRecv, 2, 1, 7),
		tev(2, obs.EvChanSend, 0, 0, 9),
		tev(3, obs.EvSyscallEnter, 0, 0, 0), // not channel traffic
	}
	got := ChannelStats(trace)
	want := []ChannelStat{{Channel: 0, Sends: 1}, {Channel: 1, Sends: 1, Recvs: 1}}
	if len(got) != 2 || got[0] != want[0] || got[1] != want[1] {
		t.Fatalf("ChannelStats = %+v, want %+v", got, want)
	}
}

// The combined digest is order-stable and sensitive to regime membership,
// projection length and content.
func TestRegimeDigestsCombined(t *testing.T) {
	a := []obs.Event{tev(0, obs.EvSyscallEnter, 0, 1, 0), tev(1, obs.EvSyscallEnter, 1, 1, 0)}
	b := []obs.Event{tev(0, obs.EvSyscallEnter, 0, 1, 0)}
	ra, da := RegimeDigests(a)
	rb, db := RegimeDigests(b)
	if len(ra) != 2 || len(rb) != 1 {
		t.Fatalf("regime sets: %d, %d", len(ra), len(rb))
	}
	if da == db {
		t.Error("regime membership change did not move the combined digest")
	}
	if _, empty := RegimeDigests(nil); len(empty) != 16 {
		t.Errorf("empty-trace digest %q is not 16 hex digits", empty)
	}
	ra2, da2 := RegimeDigests(a)
	if da != da2 || len(ra2) != len(ra) {
		t.Error("RegimeDigests not deterministic")
	}
}
