package watch

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/witness"
)

func testRecord(deployment string, passed bool) *Record {
	return &Record{
		Deployment: deployment,
		Spec:       witness.SystemSpec{Kind: "verifysys", Cut: true},
		Build:      BuildInfo{GoVersion: "go1.test", Label: "t1"},
		Time:       1700000000,
		Seed:       99, Trials: 3, Steps: 50,
		Passed: passed, Checks: 1234, States: 150,
		TraceDigest: "cbf29ce484222325",
	}
}

func testTrace() []byte {
	events := []obs.Event{
		{Cycle: 0, Kind: obs.EvSyscallEnter, Regime: 0, Name: "SEND"},
		{Cycle: 1, Kind: obs.EvChanSend, Regime: 0, Arg: 0, Value: 7, Occ: 1, Name: "wp"},
	}
	var buf bytes.Buffer
	if err := obs.WriteJSONL(&buf, events); err != nil {
		panic(err)
	}
	return buf.Bytes()
}

func TestLedgerAppendChainsAndRoundTrips(t *testing.T) {
	led, err := OpenLedger(t.TempDir(), "honest")
	if err != nil {
		t.Fatal(err)
	}
	if head, err := led.Head(); err != nil || head != nil {
		t.Fatalf("empty ledger Head = %v, %v", head, err)
	}

	trace := testTrace()
	r1 := testRecord("ignored-overwritten", true)
	if err := led.Append(r1, trace); err != nil {
		t.Fatal(err)
	}
	if r1.Seq != 1 || r1.PrevID != "" || r1.ID == "" {
		t.Fatalf("first record chain fields: seq=%d prev=%q id=%q", r1.Seq, r1.PrevID, r1.ID)
	}
	if r1.Deployment != "honest" {
		t.Fatalf("Append did not stamp the ledger's deployment: %q", r1.Deployment)
	}
	if r1.TraceBlob != witness.HashHex(trace) {
		t.Fatalf("blob address %q", r1.TraceBlob)
	}

	r2 := testRecord("honest", false)
	r2.Drift = []Drift{{Kind: DriftVerdictFlip, Regime: -1, DivergeAt: -1, Detail: "flip"}}
	if err := led.Append(r2, trace); err != nil {
		t.Fatal(err)
	}
	if r2.Seq != 2 || r2.PrevID != r1.ID {
		t.Fatalf("second record does not chain: seq=%d prev=%q want prev=%q", r2.Seq, r2.PrevID, r1.ID)
	}

	recs, err := led.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || recs[0].ID != r1.ID || recs[1].ID != r2.ID {
		t.Fatalf("round trip lost records: %d", len(recs))
	}
	events, err := led.LoadTrace(recs[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 2 || events[1].Kind != obs.EvChanSend {
		t.Fatalf("trace round trip: %+v", events)
	}

	// Identical traces are stored once (content-addressed).
	blobs, err := os.ReadDir(filepath.Join(led.Dir(), "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 1 {
		t.Fatalf("identical trace stored %d times", len(blobs))
	}
}

func TestLedgerRejectsTampering(t *testing.T) {
	dir := t.TempDir()
	led, err := OpenLedger(dir, "d")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := led.Append(testRecord("d", true), testTrace()); err != nil {
			t.Fatal(err)
		}
	}
	path := filepath.Join(led.Dir(), "ledger.jsonl")
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.SplitAfter(strings.TrimSuffix(string(pristine), "\n"), "\n")

	mutate := func(name string, corrupt func() string) {
		t.Run(name, func(t *testing.T) {
			if err := os.WriteFile(path, []byte(corrupt()), 0o644); err != nil {
				t.Fatal(err)
			}
			defer os.WriteFile(path, pristine, 0o644)
			if _, err := led.Records(); err == nil {
				t.Error("tampered ledger decoded cleanly")
			}
		})
	}
	mutate("edited field", func() string {
		return strings.Replace(string(pristine), `"passed":true`, `"passed":false`, 1)
	})
	mutate("first line deleted", func() string {
		return strings.Join(lines[1:], "")
	})
	mutate("lines swapped", func() string {
		return lines[1] + lines[0] + lines[2]
	})
	mutate("line truncated", func() string {
		l0 := lines[0]
		return l0[:len(l0)/2] + "\n" + strings.Join(lines[1:], "")
	})
	mutate("record duplicated", func() string {
		return string(pristine) + lines[2]
	})

	// The blob is verified against its address on load.
	recs, err := led.Records()
	if err != nil {
		t.Fatal(err)
	}
	bp := filepath.Join(led.Dir(), "blobs", recs[0].TraceBlob)
	if err := os.WriteFile(bp, []byte("{}\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := led.LoadTrace(recs[0]); err == nil {
		t.Error("corrupt trace blob loaded cleanly")
	}
}

func TestOpenLedgerRejectsUnsafeNames(t *testing.T) {
	for _, name := range []string{"", "..", "a/b", "a:b", ".hidden", "a b", "-x"} {
		if _, err := OpenLedger(t.TempDir(), name); err == nil {
			t.Errorf("OpenLedger accepted %q", name)
		}
	}
	for _, name := range []string{"honest", "leak-RegisterLeak", "minisue-secure", "a.b_c-d"} {
		if _, err := OpenLedger(t.TempDir(), name); err != nil {
			t.Errorf("OpenLedger rejected %q: %v", name, err)
		}
	}
}

func TestRecordValidateRejectsBadShapes(t *testing.T) {
	led, err := OpenLedger(t.TempDir(), "d")
	if err != nil {
		t.Fatal(err)
	}
	good := testRecord("d", true)
	if err := led.Append(good, nil); err != nil {
		t.Fatal(err)
	}
	bad := []func(r *Record){
		func(r *Record) { r.Version = 99 },
		func(r *Record) { r.Kind = "witness" },
		func(r *Record) { r.TraceDigest = "xyz" },
		func(r *Record) { r.TraceBlob = "deadbeef" },
		func(r *Record) { r.Drift = []Drift{{Kind: "made-up"}} },
		func(r *Record) { r.Regimes = []RegimeDigest{{Regime: 0, Digest: "short"}} },
	}
	for i, corrupt := range bad {
		r := testRecord("d", true)
		r.Seq, r.PrevID = 1, ""
		corrupt(r)
		id, err := r.computeID()
		if err != nil {
			t.Fatal(err)
		}
		r.ID = id
		b, _ := json.Marshal(r)
		if _, err := ReadLedger(bytes.NewReader(append(b, '\n'))); err == nil {
			t.Errorf("bad shape %d decoded cleanly", i)
		}
	}
}

func TestBuildInfoString(t *testing.T) {
	cases := []struct {
		b    BuildInfo
		want string
	}{
		{BuildInfo{GoVersion: "go1.24", Label: "ci-42"}, "ci-42 (go1.24)"},
		{BuildInfo{GoVersion: "go1.24", Revision: "0123456789abcdef0123"}, "0123456789ab (go1.24)"},
		{BuildInfo{GoVersion: "go1.24", Revision: "abc", Dirty: true}, "abc+dirty (go1.24)"},
		{BuildInfo{GoVersion: "go1.24"}, "unstamped (go1.24)"},
	}
	for _, tc := range cases {
		if got := tc.b.String(); got != tc.want {
			t.Errorf("%+v.String() = %q, want %q", tc.b, got, tc.want)
		}
	}
}

func TestCurrentBuildStampsToolchain(t *testing.T) {
	b := CurrentBuild("lbl")
	if b.GoVersion == "" {
		t.Error("CurrentBuild has no Go version")
	}
	if b.Label != "lbl" {
		t.Errorf("label = %q", b.Label)
	}
}
