// Package watch implements continuous re-verification of deployed kernel
// configurations: the observability layer that closes the loop between
// "the kernel was verified once" and "the kernel we are running today is
// still the kernel we verified".
//
// A Watcher owns a registry of named deployments (package verifysys's
// NamedSpec registry plus, optionally, the enumerable exhaustive targets)
// and a watch directory. Every cycle it re-verifies each deployment from a
// freshly built system, captures the canonical deployment trace, computes
// per-regime Φ^c trace digests, and appends a content-addressed,
// hash-chained build record to the deployment's ledger. Consecutive
// records are diffed down to the first divergent event and classified
// (ClassifyDrift): a deployment that silently changes between builds
// surfaces as drift against its own history, not as a diff against some
// external oracle.
//
// The surfaces are cmd/sepwatch's: a /status JSON endpoint, /metrics
// gauges and counters, a structured JSONL event log, and the ledgers
// themselves (readable offline by `sepwatch history` and `sepwatch
// diff`).
package watch

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"runtime"
	"runtime/debug"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
	"repro/internal/separability"
	"repro/internal/verifysys"
	"repro/internal/witness"
)

// CurrentBuild stamps the running binary's identity: the Go toolchain
// version, the VCS revision embedded by the toolchain when the binary was
// built from a checkout, and an optional operator label (`sepwatch
// -build`) for binaries with no embedded stamp. Every ledger record
// carries this, so drift can be attributed to a build, not just a time.
func CurrentBuild(label string) BuildInfo {
	b := BuildInfo{GoVersion: runtime.Version(), Label: label}
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			switch s.Key {
			case "vcs.revision":
				b.Revision = s.Value
			case "vcs.modified":
				b.Dirty = s.Value == "true"
			}
		}
	}
	return b
}

// A Deployment is one named configuration under watch. Exactly one of
// Spec (randomized checking of a verifysys build, with trace capture) or
// Target (sharded exhaustive sweep of a registered enumerable target, no
// trace) drives verification.
type Deployment struct {
	// Name is the ledger directory name: stable and filesystem-safe.
	Name string `json:"name"`
	// Spec rebuilds the system via verifysys.FromSpec when Target is "".
	Spec witness.SystemSpec `json:"spec"`
	// Secure is the expected verdict; Passed != Secure is unhealthy even
	// with an empty drift list.
	Secure bool `json:"secure"`
	// Target names a verifysys exhaustive target ("" = spec-based).
	Target string `json:"target,omitempty"`
}

// Deployments returns the spec-based watch registry: one Deployment per
// verifysys.DeploymentSpecs entry.
func Deployments() []Deployment {
	var out []Deployment
	for _, d := range verifysys.DeploymentSpecs() {
		out = append(out, Deployment{Name: d.Name, Spec: d.Spec, Secure: d.Secure})
	}
	return out
}

// ExhaustiveDeployments returns the target-based registry: one Deployment
// per registered exhaustive target, renamed filesystem-safe
// ("minisue:secure" -> "minisue-secure") because each owns a ledger
// directory.
func ExhaustiveDeployments() []Deployment {
	var out []Deployment
	for _, t := range verifysys.ExhaustiveTargets() {
		out = append(out, Deployment{
			Name:   strings.ReplaceAll(t.Name, ":", "-"),
			Secure: t.Secure,
			Target: t.Name,
		})
	}
	return out
}

// FindDeployment resolves a name against both registries.
func FindDeployment(name string) (Deployment, bool) {
	for _, d := range append(Deployments(), ExhaustiveDeployments()...) {
		if d.Name == name {
			return d, true
		}
	}
	return Deployment{}, false
}

// Config parameterizes a Watcher. The zero value of every numeric field
// selects a default tuned so the full spec-based registry verifies in
// seconds while still catching every planted leak (the same parameters
// the kernel verification tests use).
type Config struct {
	// Dir is the watch directory: one ledger subdirectory per deployment.
	Dir string
	// Deployments is the watch list (nil = the spec-based registry).
	Deployments []Deployment

	// Seed seeds both the randomized checker and the canonical trace walk
	// (0 = 99). Fixed across cycles by design: an unchanged deployment
	// must produce an identical trace, so that a changed digest means a
	// changed deployment.
	Seed int64
	// Trials/StepsPerTrial/InputEvery tune randomized checking
	// (0 = 10/100/8).
	Trials        int
	StepsPerTrial int
	InputEvery    int
	// NoScheduling disables the scheduling-independence extension (on by
	// default; needed to catch pure scheduling leaks).
	NoScheduling bool
	// TraceSteps is the canonical trace walk length (0 = 160).
	TraceSteps int
	// Workers parallelizes checking (0 = one per core).
	Workers int
	// ExhaustiveShards shards target-based sweeps (0 = 2); the shard
	// results are merged before the verdict is recorded, exercising the
	// same artifact path a distributed fleet uses.
	ExhaustiveShards int

	// Build identifies the verifying build (zero value = CurrentBuild("")).
	Build BuildInfo
	// Metrics receives the sep_watch_* counters and gauges plus the
	// checker's own sep_* counters (nil = a private registry).
	Metrics *obs.Registry
	// Log, when non-nil, receives one JSON line per deployment check and
	// per completed cycle.
	Log io.Writer
}

func (c *Config) fill() {
	if c.Deployments == nil {
		c.Deployments = Deployments()
	}
	if c.Seed == 0 {
		c.Seed = 99
	}
	if c.Trials == 0 {
		c.Trials = 10
	}
	if c.StepsPerTrial == 0 {
		c.StepsPerTrial = 100
	}
	if c.InputEvery == 0 {
		c.InputEvery = 8
	}
	if c.TraceSteps == 0 {
		c.TraceSteps = 160
	}
	if c.ExhaustiveShards == 0 {
		c.ExhaustiveShards = 2
	}
	if c.Build == (BuildInfo{}) {
		c.Build = CurrentBuild("")
	}
	if c.Metrics == nil {
		c.Metrics = obs.NewRegistry()
	}
}

// Watcher runs verification cycles over a deployment registry. One
// goroutine drives cycles; Status and StatusHandler are safe to call
// concurrently with a running cycle.
type Watcher struct {
	cfg Config
	// now is the clock, overridable in tests so ledger timestamps and age
	// gauges are deterministic.
	now func() time.Time

	mu        sync.Mutex
	cycles    int
	lastCycle time.Time
}

// New creates a Watcher; cfg defaults are filled here.
func New(cfg Config) *Watcher {
	cfg.fill()
	return &Watcher{cfg: cfg, now: time.Now}
}

// Config returns the watcher's filled configuration.
func (w *Watcher) Config() Config { return w.cfg }

// CheckOutcome is one deployment check's summary, as the JSONL event log
// records it.
type CheckOutcome struct {
	Time       int64   `json:"time"`
	Deployment string  `json:"deployment"`
	Record     string  `json:"record,omitempty"`
	Seq        int     `json:"seq,omitempty"`
	Passed     bool    `json:"passed"`
	Expected   bool    `json:"expected"`
	Digest     string  `json:"digest,omitempty"`
	Drift      []Drift `json:"drift,omitempty"`
	Build      string  `json:"build,omitempty"`
	Err        string  `json:"err,omitempty"`
}

// CycleResult summarizes one full pass over the registry.
type CycleResult struct {
	Cycle        int    `json:"cycle"`
	Time         int64  `json:"time"`
	Deployments  int    `json:"deployments"`
	Drift        int    `json:"drift"`
	VerdictFlips int    `json:"verdictFlips"`
	Errors       int    `json:"errors"`
	Event        string `json:"event"`
}

// RunCycle re-verifies every configured deployment once, appending one
// ledger record each. A deployment that errors is logged and counted but
// does not stop the cycle.
func (w *Watcher) RunCycle() CycleResult {
	w.mu.Lock()
	w.cycles++
	cycle := w.cycles
	w.mu.Unlock()

	res := CycleResult{Cycle: cycle, Time: w.now().Unix(), Event: "cycle"}
	for _, d := range w.cfg.Deployments {
		rec, err := w.CheckDeployment(d)
		res.Deployments++
		if err != nil {
			res.Errors++
			w.cfg.Metrics.Counter("sep_watch_errors_total").Inc()
			w.logJSON(CheckOutcome{Time: w.now().Unix(), Deployment: d.Name,
				Expected: d.Secure, Err: err.Error()})
			continue
		}
		res.Drift += len(rec.Drift)
		for _, dr := range rec.Drift {
			if dr.Kind == DriftVerdictFlip {
				res.VerdictFlips++
			}
		}
	}
	w.cfg.Metrics.Counter("sep_watch_cycles_total").Inc()
	w.mu.Lock()
	w.lastCycle = w.now()
	w.mu.Unlock()
	w.logJSON(res)
	return res
}

// CheckDeployment verifies one deployment and appends the build record to
// its ledger. The deployment need not come from the registry: `sepwatch
// check -override-leak` passes a registry name with a silently modified
// spec, which is exactly how a deployment drifts in the wild.
func (w *Watcher) CheckDeployment(d Deployment) (*Record, error) {
	led, err := OpenLedger(w.cfg.Dir, d.Name)
	if err != nil {
		return nil, err
	}
	rec := &Record{
		Deployment: d.Name, Spec: d.Spec, Build: w.cfg.Build,
		Time: w.now().Unix(), Seed: w.cfg.Seed,
	}
	var trace []obs.Event
	var blob []byte
	if d.Target != "" {
		if err := w.checkExhaustive(d, rec); err != nil {
			return nil, err
		}
	} else {
		if trace, blob, err = w.checkSpec(d, rec); err != nil {
			return nil, err
		}
	}

	head, err := led.Head()
	if err != nil {
		return nil, fmt.Errorf("watch: %s: reading ledger: %w", d.Name, err)
	}
	var prevTrace []obs.Event
	if head != nil {
		// A missing or corrupt blob degrades drift location (DivergeAt -1),
		// it does not block recording.
		prevTrace, _ = led.LoadTrace(head)
	}
	rec.Drift = ClassifyDrift(head, rec, prevTrace, trace)
	if err := led.Append(rec, blob); err != nil {
		return nil, fmt.Errorf("watch: %s: appending record: %w", d.Name, err)
	}
	w.observe(d, rec)
	return rec, nil
}

// checkSpec runs the spec-based path: canonical trace capture on one
// fresh build, randomized verification on another (so the verification
// walk can never perturb the recorded trace).
func (w *Watcher) checkSpec(d Deployment, rec *Record) ([]obs.Event, []byte, error) {
	tsys, err := verifysys.FromSpec(d.Spec)
	if err != nil {
		return nil, nil, fmt.Errorf("watch: %s: building trace system: %w", d.Name, err)
	}
	trace := CaptureTrace(tsys, w.cfg.Seed, w.cfg.TraceSteps, w.cfg.InputEvery)

	vsys, err := verifysys.FromSpec(d.Spec)
	if err != nil {
		return nil, nil, fmt.Errorf("watch: %s: building verify system: %w", d.Name, err)
	}
	res := separability.CheckRandomized(vsys, separability.Options{
		Trials: w.cfg.Trials, StepsPerTrial: w.cfg.StepsPerTrial,
		Seed: w.cfg.Seed, InputEvery: w.cfg.InputEvery,
		CheckScheduling: !w.cfg.NoScheduling,
		Workers:         w.cfg.Workers, Metrics: w.cfg.Metrics,
	})
	rec.Trials, rec.Steps = w.cfg.Trials, w.cfg.StepsPerTrial
	fillResult(rec, res)

	rec.TraceSteps, rec.TraceEvents = w.cfg.TraceSteps, len(trace)
	rec.Regimes, rec.TraceDigest = RegimeDigests(trace)
	rec.Channels = ChannelStats(trace)
	var buf strings.Builder
	if err := obs.WriteJSONL(&buf, trace); err != nil {
		return nil, nil, err
	}
	return trace, []byte(buf.String()), nil
}

// checkExhaustive runs the target-based path: a sharded exhaustive sweep
// merged back into one verdict, exercising the same shard artifacts a
// distributed fleet produces. No trace is captured (enumerable targets
// have no tracer); the recorded digest is the canonical empty-trace
// digest, constant across builds, so exhaustive deployments drift only on
// verdicts.
func (w *Watcher) checkExhaustive(d Deployment, rec *Record) error {
	t, err := verifysys.FindExhaustiveTarget(d.Target)
	if err != nil {
		return err
	}
	shards := make([]*separability.ShardResult, 0, w.cfg.ExhaustiveShards)
	for k := 0; k < w.cfg.ExhaustiveShards; k++ {
		sr, err := separability.CheckExhaustiveShard(t.Build(), separability.ExhaustiveOptions{
			Shard: k, Shards: w.cfg.ExhaustiveShards,
			Workers: w.cfg.Workers, Target: d.Target, Metrics: w.cfg.Metrics,
		})
		if err != nil {
			return fmt.Errorf("watch: %s: shard %d: %w", d.Name, k, err)
		}
		shards = append(shards, sr)
	}
	res, err := separability.MergeShards(shards)
	if err != nil {
		return fmt.Errorf("watch: %s: merging shards: %w", d.Name, err)
	}
	rec.Exhaustive, rec.Shards = d.Target, w.cfg.ExhaustiveShards
	fillResult(rec, res)
	rec.Regimes, rec.TraceDigest = RegimeDigests(nil)
	return nil
}

// maxRecordedViolations caps counterexamples per ledger record; the full
// set is reproducible from the recorded seed anyway.
const maxRecordedViolations = 8

func fillResult(rec *Record, res *separability.Result) {
	rec.Passed = res.Passed()
	rec.States = res.States
	for _, n := range res.Checks {
		rec.Checks += n
	}
	for i, v := range res.Violations {
		if i == maxRecordedViolations {
			break
		}
		rec.Violations = append(rec.Violations, separability.NewViolationRecord(v))
	}
}

// observe publishes one appended record to the metrics registry and the
// event log.
func (w *Watcher) observe(d Deployment, rec *Record) {
	m := w.cfg.Metrics
	m.Counter("sep_watch_deployments_total").Inc()
	m.Counter("sep_watch_records_total").Inc()
	if len(rec.Drift) > 0 {
		m.Counter("sep_watch_drift_total").Add(uint64(len(rec.Drift)))
	}
	verdict := 0.0
	if rec.Passed {
		verdict = 1.0
	}
	m.Gauge(fmt.Sprintf("sep_watch_last_verdict{deployment=%q}", d.Name)).Set(verdict)
	m.Gauge(fmt.Sprintf("sep_watch_ledger_records{deployment=%q}", d.Name)).Set(float64(rec.Seq))
	m.Gauge(fmt.Sprintf("sep_watch_ledger_age_seconds{deployment=%q}", d.Name)).
		Set(w.now().Sub(time.Unix(rec.Time, 0)).Seconds())
	for _, dr := range rec.Drift {
		if dr.Kind == DriftVerdictFlip {
			m.Counter("sep_watch_verdict_flips_total").Inc()
		}
	}
	w.logJSON(CheckOutcome{
		Time: rec.Time, Deployment: d.Name, Record: rec.ID, Seq: rec.Seq,
		Passed: rec.Passed, Expected: d.Secure, Digest: rec.TraceDigest,
		Drift: rec.Drift, Build: rec.Build.String(),
	})
}

func (w *Watcher) logJSON(v any) {
	if w.cfg.Log == nil {
		return
	}
	b, err := json.Marshal(v)
	if err != nil {
		return
	}
	w.cfg.Log.Write(append(b, '\n'))
}

// DeploymentStatus is one deployment's row in the /status report,
// reconstructed from its ledger.
type DeploymentStatus struct {
	Name   string `json:"name"`
	Secure bool   `json:"secure"`
	Target string `json:"target,omitempty"`
	// Builds is the ledger length; zero means never verified.
	Builds   int    `json:"builds"`
	LastID   string `json:"lastId,omitempty"`
	LastTime int64  `json:"lastTime,omitempty"`
	Build    string `json:"build,omitempty"`
	Passed   bool   `json:"passed"`
	// Healthy: verified at least once, verdict matches expectation, and
	// the newest record carries no drift.
	Healthy     bool    `json:"healthy"`
	TraceDigest string  `json:"traceDigest,omitempty"`
	Drift       []Drift `json:"drift,omitempty"`
	DriftTotal  int     `json:"driftTotal"`
	AgeSeconds  float64 `json:"ageSeconds,omitempty"`
}

// Status is the /status report.
type Status struct {
	Time        int64              `json:"time"`
	Cycles      int                `json:"cycles"`
	Build       BuildInfo          `json:"build"`
	Deployments []DeploymentStatus `json:"deployments"`
}

// Status reconstructs the fleet view from the ledgers on disk and
// refreshes the per-deployment age gauges.
func (w *Watcher) Status() (Status, error) {
	w.mu.Lock()
	cycles := w.cycles
	w.mu.Unlock()
	st := Status{Time: w.now().Unix(), Cycles: cycles, Build: w.cfg.Build}
	for _, d := range w.cfg.Deployments {
		ds := DeploymentStatus{Name: d.Name, Secure: d.Secure, Target: d.Target}
		led, err := OpenLedger(w.cfg.Dir, d.Name)
		if err != nil {
			return st, err
		}
		recs, err := led.Records()
		if err != nil {
			return st, fmt.Errorf("watch: %s: %w", d.Name, err)
		}
		ds.Builds = len(recs)
		for _, r := range recs {
			ds.DriftTotal += len(r.Drift)
		}
		if len(recs) > 0 {
			head := recs[len(recs)-1]
			ds.LastID, ds.LastTime = head.ID, head.Time
			ds.Build = head.Build.String()
			ds.Passed = head.Passed
			ds.TraceDigest = head.TraceDigest
			ds.Drift = head.Drift
			ds.Healthy = head.Passed == d.Secure && len(head.Drift) == 0
			ds.AgeSeconds = w.now().Sub(time.Unix(head.Time, 0)).Seconds()
			w.cfg.Metrics.Gauge(fmt.Sprintf("sep_watch_ledger_age_seconds{deployment=%q}", d.Name)).
				Set(ds.AgeSeconds)
		}
		st.Deployments = append(st.Deployments, ds)
	}
	return st, nil
}

// StatusHandler serves Status as indented JSON, for mounting beside
// /metrics via obs.ListenOptions.Handlers.
func (w *Watcher) StatusHandler() http.Handler {
	return http.HandlerFunc(func(rw http.ResponseWriter, _ *http.Request) {
		st, err := w.Status()
		if err != nil {
			http.Error(rw, err.Error(), http.StatusInternalServerError)
			return
		}
		rw.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(rw)
		enc.SetIndent("", "  ")
		enc.Encode(st)
	})
}
