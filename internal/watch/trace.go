package watch

import (
	"fmt"
	"sort"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/separability"
)

// Traceable is what trace capture needs from a deployment's system: the
// checker's perturbation surface plus an event tap. kernel.Adapter
// implements it.
type Traceable interface {
	model.Perturbable
	SetTracer(obs.Tracer)
}

// CaptureTrace records the canonical deployment trace: the event stream of
// the randomized checker's trial-0 state walk (separability.WalkTrial),
// seeded by (seed, steps, inputEvery) alone. The same deployment spec
// rebuilt under the same parameters replays the identical walk and emits
// the identical events, so consecutive builds of an unchanged deployment
// produce byte-identical trace blobs — which is exactly what makes a
// digest change between builds evidence of drift rather than noise.
//
// The tracer is detached before returning, so sys can be reused (though
// watcher cycles build a fresh system per capture anyway).
func CaptureTrace(sys Traceable, seed int64, steps, inputEvery int) []obs.Event {
	var events []obs.Event
	sys.SetTracer(obs.TracerFunc(func(e obs.Event) { events = append(events, e) }))
	opt := separability.Options{Seed: seed, Trials: 1, StepsPerTrial: steps,
		InputEvery: inputEvery}
	separability.WalkTrial(sys, opt, 0, func(int, model.Input) bool { return true })
	sys.SetTracer(nil)
	return events
}

// RegimeDigests computes each regime's Φ^c trace digest — the canonical
// FNV-1a of its analyze.Project projection — plus one combined digest over
// all regimes (16 hex digits). The combined digest of two traces is equal
// exactly when every regime's projection digest, projection length and the
// regime set itself agree, making it the single number a ledger diff
// compares first.
func RegimeDigests(events []obs.Event) ([]RegimeDigest, string) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	var out []RegimeDigest
	for _, r := range analyze.Regimes(events) {
		p := analyze.Project(events, r)
		rd := RegimeDigest{Regime: r, Events: len(p.Events),
			Digest: fmt.Sprintf("%016x", p.Digest)}
		out = append(out, rd)
		for _, b := range []byte(fmt.Sprintf("%d:%d:%s\n", rd.Regime, rd.Events, rd.Digest)) {
			h ^= uint64(b)
			h *= prime64
		}
	}
	return out, fmt.Sprintf("%016x", h)
}

// ChannelStats counts per-channel send/receive traffic in a trace, sorted
// by channel index. A sanctioned channel whose traffic disappears between
// builds (or reappears after being cut) is the channel-regression drift
// kind.
func ChannelStats(events []obs.Event) []ChannelStat {
	byChan := map[int]*ChannelStat{}
	for _, e := range events {
		switch e.Kind {
		case obs.EvChanSend, obs.EvChanRecv:
		default:
			continue
		}
		cs := byChan[e.Arg]
		if cs == nil {
			cs = &ChannelStat{Channel: e.Arg}
			byChan[e.Arg] = cs
		}
		if e.Kind == obs.EvChanSend {
			cs.Sends++
		} else {
			cs.Recvs++
		}
	}
	out := make([]ChannelStat, 0, len(byChan))
	for _, cs := range byChan {
		out = append(out, *cs)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Channel < out[j].Channel })
	return out
}
