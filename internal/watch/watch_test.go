package watch

import (
	"bytes"
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/internal/verifysys"
)

// testConfig is tuned for speed: the probe above kernel_verify_test's
// parameters showed Trials 3 x 50 steps catches every planted leak and
// passes the honest cut kernel.
func testConfig(dir string, deps ...Deployment) Config {
	return Config{
		Dir: dir, Deployments: deps,
		Seed: 7, Trials: 3, StepsPerTrial: 50, TraceSteps: 120,
		Workers: 1,
		Build:   BuildInfo{GoVersion: "go1.test", Label: "b1"},
	}
}

// fixClock pins the watcher's clock to a deterministic step sequence.
func fixClock(w *Watcher) {
	base := time.Unix(1700000000, 0)
	n := 0
	w.now = func() time.Time {
		n++
		return base.Add(time.Duration(n) * time.Second)
	}
}

func mustFind(t *testing.T, name string) Deployment {
	t.Helper()
	d, ok := FindDeployment(name)
	if !ok {
		t.Fatalf("deployment %q not registered", name)
	}
	return d
}

// Acceptance criterion: re-running an unchanged deployment appends a
// record with the identical trace digest and no drift entry.
func TestWatcherIdempotentReverification(t *testing.T) {
	dir := t.TempDir()
	honest := mustFind(t, "honest")
	w := New(testConfig(dir, honest))
	fixClock(w)

	rec1, err := w.CheckDeployment(honest)
	if err != nil {
		t.Fatal(err)
	}
	if !rec1.Passed {
		t.Fatalf("honest deployment failed verification: %+v", rec1.Violations)
	}
	if len(rec1.Drift) != 0 {
		t.Fatalf("first build has no baseline, classified drift: %v", rec1.Drift)
	}
	if rec1.TraceEvents == 0 || len(rec1.Regimes) == 0 || len(rec1.Channels) == 0 {
		t.Fatalf("trace capture empty: events=%d regimes=%d channels=%d",
			rec1.TraceEvents, len(rec1.Regimes), len(rec1.Channels))
	}

	rec2, err := w.CheckDeployment(honest)
	if err != nil {
		t.Fatal(err)
	}
	if rec2.TraceDigest != rec1.TraceDigest {
		t.Fatalf("unchanged deployment drifted: digest %s -> %s", rec1.TraceDigest, rec2.TraceDigest)
	}
	if rec2.TraceBlob != rec1.TraceBlob {
		t.Fatalf("unchanged deployment produced a new blob: %s -> %s", rec1.TraceBlob, rec2.TraceBlob)
	}
	if len(rec2.Drift) != 0 {
		t.Fatalf("idempotent re-verification classified drift: %v", rec2.Drift)
	}
	if rec2.Seq != 2 || rec2.PrevID != rec1.ID {
		t.Fatalf("record does not chain: seq=%d prev=%q", rec2.Seq, rec2.PrevID)
	}

	// Identical traces share one content-addressed blob.
	led, _ := OpenLedger(dir, "honest")
	blobs, err := os.ReadDir(filepath.Join(led.Dir(), "blobs"))
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 1 {
		t.Fatalf("idempotent cycles stored %d blobs", len(blobs))
	}
}

// Acceptance criterion: a deployment whose spec silently changes (a leak
// planted between builds) drifts against its own ledger — one verdict
// flip, one digest drift located down to the first divergent event.
func TestWatcherDetectsSilentSpecChange(t *testing.T) {
	dir := t.TempDir()
	honest := mustFind(t, "honest")
	w := New(testConfig(dir, honest))
	fixClock(w)

	if _, err := w.CheckDeployment(honest); err != nil {
		t.Fatal(err)
	}

	// The silent change: same deployment name, leak-flipped spec — what
	// `sepwatch check -override-leak SharedScratch honest` simulates.
	drifted := honest
	drifted.Spec = verifysys.SpecFor("SharedScratch", true, false)
	rec, err := w.CheckDeployment(drifted)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Passed {
		t.Fatal("planted leak not caught on re-verification")
	}
	if len(rec.Violations) == 0 {
		t.Fatal("failing record carries no counterexamples")
	}

	var flips, digests []Drift
	for _, d := range rec.Drift {
		switch d.Kind {
		case DriftVerdictFlip:
			flips = append(flips, d)
		case DriftDigest:
			digests = append(digests, d)
		}
	}
	if len(flips) != 1 {
		t.Fatalf("verdict flips = %v, want exactly one", flips)
	}
	if !strings.Contains(flips[0].Detail, "PASS -> FAIL") {
		t.Errorf("flip direction wrong: %s", flips[0].Detail)
	}
	if len(digests) != 1 {
		t.Fatalf("digest drifts = %v, want exactly one", digests)
	}
	dd := digests[0]
	if dd.Regime < 0 || dd.DivergeAt < 0 {
		t.Fatalf("digest drift not located to a first divergent event: %+v", dd)
	}
	if !strings.Contains(dd.Detail, "diverges at event") ||
		!strings.Contains(dd.Detail, "prev ") || !strings.Contains(dd.Detail, "now ") {
		t.Errorf("first divergent event pair not rendered: %s", dd.Detail)
	}

	// The ledger, re-read cold, tells the same story.
	led, _ := OpenLedger(dir, "honest")
	recs, err := led.Records()
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 2 || len(recs[1].Drift) != len(rec.Drift) {
		t.Fatalf("ledger does not persist the drift: %d records", len(recs))
	}
	if recs[0].Spec.Leak != "" || recs[1].Spec.Leak != "SharedScratch" {
		t.Fatalf("specs not recorded: %q, %q", recs[0].Spec.Leak, recs[1].Spec.Leak)
	}
}

// Target-based deployments run the sharded exhaustive path: verdict from
// MergeShards, constant empty-trace digest, so only verdicts can drift.
func TestWatcherExhaustiveDeployments(t *testing.T) {
	dir := t.TempDir()
	secure := mustFind(t, "toy-secure")
	var leaky Deployment
	for _, d := range ExhaustiveDeployments() {
		if strings.HasPrefix(d.Name, "toy-") && !d.Secure {
			leaky = d
			break
		}
	}
	if leaky.Name == "" {
		t.Fatal("no insecure toy target registered")
	}
	cfg := testConfig(dir, secure, leaky)
	cfg.ExhaustiveShards = 2
	w := New(cfg)
	fixClock(w)

	rec, err := w.CheckDeployment(secure)
	if err != nil {
		t.Fatal(err)
	}
	if !rec.Passed || rec.Exhaustive != "toy:secure" || rec.Shards != 2 {
		t.Fatalf("secure toy sweep: passed=%v exhaustive=%q shards=%d",
			rec.Passed, rec.Exhaustive, rec.Shards)
	}
	if rec.TraceBlob != "" || rec.TraceEvents != 0 {
		t.Fatalf("exhaustive deployment captured a trace: %+v", rec)
	}
	rec2, err := w.CheckDeployment(secure)
	if err != nil {
		t.Fatal(err)
	}
	if len(rec2.Drift) != 0 || rec2.TraceDigest != rec.TraceDigest {
		t.Fatalf("idempotent exhaustive re-verification drifted: %v", rec2.Drift)
	}

	lrec, err := w.CheckDeployment(leaky)
	if err != nil {
		t.Fatal(err)
	}
	if lrec.Passed {
		t.Fatalf("insecure target %s passed its exhaustive sweep", leaky.Target)
	}
}

func TestRunCycleStatusMetricsAndLog(t *testing.T) {
	dir := t.TempDir()
	var log bytes.Buffer
	cfg := testConfig(dir, mustFind(t, "honest"), mustFind(t, "leak-RegisterLeak"))
	cfg.Metrics = obs.NewRegistry()
	cfg.Log = &log
	w := New(cfg)
	fixClock(w)

	res := w.RunCycle()
	if res.Cycle != 1 || res.Deployments != 2 || res.Errors != 0 {
		t.Fatalf("cycle result: %+v", res)
	}
	if res.Drift != 0 || res.VerdictFlips != 0 {
		t.Fatalf("first cycle has no baseline to drift from: %+v", res)
	}

	st, err := w.Status()
	if err != nil {
		t.Fatal(err)
	}
	if st.Cycles != 1 || len(st.Deployments) != 2 {
		t.Fatalf("status: %+v", st)
	}
	for _, ds := range st.Deployments {
		if ds.Builds != 1 {
			t.Errorf("%s builds = %d", ds.Name, ds.Builds)
		}
		// honest passes, the leak deployment fails — both as expected, so
		// both healthy.
		if !ds.Healthy {
			t.Errorf("%s unhealthy: passed=%v secure=%v drift=%v", ds.Name, ds.Passed, ds.Secure, ds.Drift)
		}
		if ds.Name == "honest" && !ds.Passed {
			t.Error("honest deployment failed")
		}
		if ds.Name == "leak-RegisterLeak" && ds.Passed {
			t.Error("leak deployment passed")
		}
	}

	m := cfg.Metrics
	if got := m.CounterValue("sep_watch_cycles_total"); got != 1 {
		t.Errorf("cycles counter = %d", got)
	}
	if got := m.CounterValue("sep_watch_records_total"); got != 2 {
		t.Errorf("records counter = %d", got)
	}
	if got := m.GaugeValue(`sep_watch_last_verdict{deployment="honest"}`); got != 1 {
		t.Errorf("honest verdict gauge = %g", got)
	}
	if got := m.GaugeValue(`sep_watch_last_verdict{deployment="leak-RegisterLeak"}`); got != 0 {
		t.Errorf("leak verdict gauge = %g", got)
	}
	if got := m.GaugeValue(`sep_watch_ledger_records{deployment="honest"}`); got != 1 {
		t.Errorf("ledger records gauge = %g", got)
	}

	// The JSONL event log: one line per check plus the cycle line, each
	// valid JSON.
	lines := strings.Split(strings.TrimSpace(log.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("event log has %d lines, want 3:\n%s", len(lines), log.String())
	}
	deployments := map[string]bool{}
	for _, ln := range lines[:2] {
		var co CheckOutcome
		if err := json.Unmarshal([]byte(ln), &co); err != nil {
			t.Fatalf("log line not JSON: %v\n%s", err, ln)
		}
		deployments[co.Deployment] = true
		if co.Record == "" || co.Seq != 1 {
			t.Errorf("check outcome incomplete: %+v", co)
		}
	}
	if !deployments["honest"] || !deployments["leak-RegisterLeak"] {
		t.Errorf("log misses deployments: %v", deployments)
	}
	var cy CycleResult
	if err := json.Unmarshal([]byte(lines[2]), &cy); err != nil || cy.Event != "cycle" {
		t.Fatalf("cycle log line: %v\n%s", err, lines[2])
	}

	// A second cycle over unchanged deployments stays drift-free.
	res2 := w.RunCycle()
	if res2.Drift != 0 || res2.VerdictFlips != 0 || res2.Errors != 0 {
		t.Fatalf("unchanged registry drifted on cycle 2: %+v", res2)
	}
}

func TestStatusHandlerServesJSON(t *testing.T) {
	dir := t.TempDir()
	w := New(testConfig(dir, mustFind(t, "honest")))
	fixClock(w)
	if _, err := w.CheckDeployment(w.cfg.Deployments[0]); err != nil {
		t.Fatal(err)
	}
	rr := httptest.NewRecorder()
	w.StatusHandler().ServeHTTP(rr, httptest.NewRequest("GET", "/status", nil))
	if rr.Code != 200 {
		t.Fatalf("status = %d: %s", rr.Code, rr.Body.String())
	}
	var st Status
	if err := json.Unmarshal(rr.Body.Bytes(), &st); err != nil {
		t.Fatalf("/status not JSON: %v", err)
	}
	if len(st.Deployments) != 1 || st.Deployments[0].Name != "honest" || !st.Deployments[0].Healthy {
		t.Fatalf("/status content: %+v", st)
	}
}

func TestRegistries(t *testing.T) {
	specs := Deployments()
	if len(specs) != len(verifysys.DeploymentSpecs()) {
		t.Fatalf("spec registry size %d", len(specs))
	}
	exh := ExhaustiveDeployments()
	if len(exh) != len(verifysys.ExhaustiveTargets()) {
		t.Fatalf("exhaustive registry size %d", len(exh))
	}
	for _, d := range append(specs, exh...) {
		if strings.ContainsAny(d.Name, ":/ ") {
			t.Errorf("deployment name %q not filesystem-safe", d.Name)
		}
		if _, ok := FindDeployment(d.Name); !ok {
			t.Errorf("FindDeployment(%q) missing", d.Name)
		}
	}
	if _, ok := FindDeployment("nope"); ok {
		t.Error("FindDeployment(nope) found something")
	}
}
