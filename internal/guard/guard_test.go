package guard_test

import (
	"strings"
	"testing"

	"repro/internal/guard"
)

func TestLowToHighPassesUnhindered(t *testing.T) {
	sys, err := guard.Build(guard.MarkerOfficer{},
		[]string{"report 1", "report 2", "report 3"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(1000)
	if got := len(sys.High.Received); got != 3 {
		t.Fatalf("HIGH received %d messages, want 3", got)
	}
	if sys.Guard.UpPassed != 3 {
		t.Errorf("UpPassed = %d", sys.Guard.UpPassed)
	}
	for i, m := range sys.High.Received {
		if !strings.Contains(string(m.Body), "report") {
			t.Errorf("message %d mangled: %q", i, m.Body)
		}
	}
}

func TestHighToLowRequiresReview(t *testing.T) {
	sys, err := guard.Build(guard.MarkerOfficer{}, nil, []string{
		"routine weather summary",            // releasable
		"mission plan [SECRET: grid 12A]",    // redact
		"source identity NOFORN do not send", // deny
	})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(1000)

	if sys.Guard.Released != 1 || sys.Guard.Redacted != 1 || sys.Guard.Denied != 1 {
		t.Fatalf("verdicts = release %d / redact %d / deny %d, want 1/1/1",
			sys.Guard.Released, sys.Guard.Redacted, sys.Guard.Denied)
	}
	if got := len(sys.Low.Received); got != 2 {
		t.Fatalf("LOW received %d messages, want 2 (denied one withheld)", got)
	}
	var all string
	for _, m := range sys.Low.Received {
		all += string(m.Body) + "\n"
	}
	if strings.Contains(all, "grid 12A") {
		t.Error("classified span reached LOW")
	}
	if !strings.Contains(all, "[REDACTED]") {
		t.Error("redaction marker missing")
	}
	if strings.Contains(all, "NOFORN") {
		t.Error("denied message reached LOW")
	}
	// The HIGH side is told about the denial.
	bounced := false
	for _, m := range sys.High.Received {
		if m.Kind == "rejected" {
			bounced = true
		}
	}
	if !bounced {
		t.Error("denial notice did not reach HIGH")
	}
}

func TestBothDirectionsSimultaneously(t *testing.T) {
	sys, err := guard.Build(guard.MarkerOfficer{},
		[]string{"low says hi"},
		[]string{"high says hi"})
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(1000)
	if len(sys.High.Received) != 1 || len(sys.Low.Received) != 1 {
		t.Errorf("bidirectional flow broken: high=%d low=%d",
			len(sys.High.Received), len(sys.Low.Received))
	}
}

func TestMalformedMarkingDenied(t *testing.T) {
	v, _ := guard.MarkerOfficer{}.Review([]byte("oops [SECRET: unterminated"))
	if v != guard.Deny {
		t.Errorf("malformed marking verdict = %d, want Deny", v)
	}
}

func TestMultipleRedactions(t *testing.T) {
	v, body := guard.MarkerOfficer{}.Review(
		[]byte("a [SECRET: x] b [SECRET: y] c"))
	if v != guard.Redact {
		t.Fatalf("verdict = %d", v)
	}
	got := string(body)
	if strings.Contains(got, "x]") || strings.Contains(got, "y]") {
		t.Errorf("incomplete redaction: %q", got)
	}
	if strings.Count(got, "[REDACTED]") != 2 {
		t.Errorf("redaction count wrong: %q", got)
	}
}
