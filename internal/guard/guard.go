// Package guard implements the ACCAT Guard of the paper's section 1 [33]:
// "a facility for the exchange of messages between a highly classified
// system and a more lowly one. Messages from the LOW system to the HIGH
// one are allowed through the Guard without hindrance, but messages from
// HIGH to LOW must be displayed to a human 'Security Watch Officer' who
// has to decide whether they may be declassified."
//
// The paper's point is that the Guard supports flow in *both* directions
// with *different* requirements per direction — so basing it on a kernel
// that enforces one direction (as the real Guard did on KSOS) forces its
// essential function into trusted processes. Here the Guard is a trusted
// *component* in a distributed design: its requirements are stated and
// tested directly, and no kernel is being fought.
package guard

import (
	"strings"

	"repro/internal/distsys"
)

// Verdict is the watch officer's decision on one HIGH→LOW message.
type Verdict int

// Verdicts.
const (
	// Release passes the message unchanged.
	Release Verdict = iota
	// Redact passes the message after scrubbing flagged spans.
	Redact
	// Deny refuses the message.
	Deny
)

// Officer reviews HIGH→LOW traffic. In the real system this is a human;
// any deterministic policy stands in for one here.
type Officer interface {
	// Review returns a verdict and, for Redact, the sanitized body.
	Review(body []byte) (Verdict, []byte)
}

// MarkerOfficer is a simple deterministic officer: any body containing a
// classified marker is denied when it carries "NOFORN", redacted (markers
// masked) when it carries bracketed "[SECRET:...]" spans, and released
// otherwise.
type MarkerOfficer struct{}

// Review implements Officer.
func (MarkerOfficer) Review(body []byte) (Verdict, []byte) {
	s := string(body)
	if strings.Contains(s, "NOFORN") {
		return Deny, nil
	}
	if i := strings.Index(s, "[SECRET:"); i >= 0 {
		out := s
		for {
			start := strings.Index(out, "[SECRET:")
			if start < 0 {
				break
			}
			end := strings.Index(out[start:], "]")
			if end < 0 {
				return Deny, nil // malformed marking: refuse outright
			}
			out = out[:start] + "[REDACTED]" + out[start+end+1:]
		}
		return Redact, []byte(out)
	}
	return Release, body
}

// Guard is the trusted component.
//
// Ports:
//
//	low_in   (in)  messages from the LOW system
//	high_out (out) delivery to the HIGH system
//	high_in  (in)  messages from the HIGH system
//	low_out  (out) delivery (after review) to the LOW system
type Guard struct {
	name    string
	officer Officer

	// Statistics of the two directions.
	UpPassed int
	Released int
	Redacted int
	Denied   int
}

// New creates a Guard with the given review policy.
func New(name string, officer Officer) *Guard {
	return &Guard{name: name, officer: officer}
}

// Name implements distsys.Component.
func (g *Guard) Name() string { return g.name }

// Poll implements distsys.Component.
func (g *Guard) Poll(distsys.Context) bool { return false }

// Handle implements distsys.Component.
func (g *Guard) Handle(ctx distsys.Context, port string, m distsys.Message) {
	switch port {
	case "low_in":
		// LOW→HIGH: write-up is always safe; pass without hindrance.
		g.UpPassed++
		ctx.Send("high_out", m)
	case "high_in":
		// HIGH→LOW: every message is reviewed.
		verdict, body := g.officer.Review(m.Body)
		switch verdict {
		case Release:
			g.Released++
			ctx.Send("low_out", m)
		case Redact:
			g.Redacted++
			out := distsys.Msg(m.Kind, "reviewed", "redacted").WithBody(body)
			for k, v := range m.Args {
				if _, exists := out.Args[k]; !exists {
					out.Args[k] = v
				}
			}
			ctx.Send("low_out", out)
		case Deny:
			g.Denied++
			// Nothing reaches LOW; optionally bounce a notice HIGH-side.
			ctx.Send("high_out", distsys.Msg("rejected", "reason", "denied by watch officer"))
		}
	}
}

// Endpoint is a scripted LOW or HIGH system endpoint for exercising the
// Guard: it sends its messages and records everything it receives.
type Endpoint struct {
	name     string
	outPort  string
	Outbox   [][]byte
	sent     int
	Received []distsys.Message
}

// NewEndpoint creates an endpoint that sends the given bodies on outPort.
func NewEndpoint(name, outPort string, bodies ...string) *Endpoint {
	e := &Endpoint{name: name, outPort: outPort}
	for _, b := range bodies {
		e.Outbox = append(e.Outbox, []byte(b))
	}
	return e
}

// Name implements distsys.Component.
func (e *Endpoint) Name() string { return e.name }

// Poll implements distsys.Component.
func (e *Endpoint) Poll(ctx distsys.Context) bool {
	if e.sent >= len(e.Outbox) {
		return false
	}
	ctx.Send(e.outPort, distsys.Msg("mail").WithBody(e.Outbox[e.sent]))
	e.sent++
	return true
}

// Handle implements distsys.Component.
func (e *Endpoint) Handle(_ distsys.Context, _ string, m distsys.Message) {
	e.Received = append(e.Received, m.Clone())
}

// System is a wired Guard between two endpoints.
type System struct {
	Fabric *distsys.Fabric
	Guard  *Guard
	Low    *Endpoint
	High   *Endpoint
}

// Build wires low ⇄ guard ⇄ high.
func Build(officer Officer, lowMail, highMail []string) (*System, error) {
	f := distsys.New(distsys.KernelHosted)
	g := New("guard", officer)
	low := NewEndpoint("low", "to_guard", lowMail...)
	high := NewEndpoint("high", "to_guard", highMail...)
	for _, c := range []distsys.Component{low, high, g} {
		if err := f.Add(c); err != nil {
			return nil, err
		}
	}
	wires := [][2]string{
		{"low:to_guard", "guard:low_in"},
		{"guard:high_out", "high:in"},
		{"high:to_guard", "guard:high_in"},
		{"guard:low_out", "low:in"},
	}
	for _, w := range wires {
		if err := f.Connect(w[0], w[1], 256); err != nil {
			return nil, err
		}
	}
	return &System{Fabric: f, Guard: g, Low: low, High: high}, nil
}

// Run drives the system to quiescence.
func (s *System) Run(max int) int { return s.Fabric.Run(max) }
