package core_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/kernel"
)

// The library in one example: declare two isolated regimes, run them,
// verify the kernel, then break the kernel and catch it.
func Example() {
	count := `
	.org 0x40
start:
	MOV #0, R5
loop:
	ADD #1, R5
	MOV R5, @0x20
	TRAP #SWAP
	BR loop
`
	sys := core.NewBuilder().
		RegimeSized("red", count, 0x200).
		RegimeSized("black", count, 0x200).
		MustBuild()
	sys.Run(1000)
	r, _ := sys.RegimeWord("red", 0x20)
	b, _ := sys.RegimeWord("black", 0x20)
	fmt.Println("both made progress:", r > 50 && b > 50)

	honest := sys.Verify(core.VerifyOptions{Trials: 4, StepsPerTrial: 40, Seed: 1})
	fmt.Println("honest kernel verifies:", honest.Passed())

	leaky := core.NewBuilder().
		RegimeSized("red", count, 0x200).
		RegimeSized("black", count, 0x200).
		WithLeaks(kernel.Leaks{RegisterLeak: true}).
		MustBuild()
	report := leaky.Verify(core.VerifyOptions{Trials: 6, StepsPerTrial: 60, Seed: 1})
	fmt.Println("register-leak kernel verifies:", report.Passed())
	// Output:
	// both made progress: true
	// honest kernel verifies: true
	// register-leak kernel verifies: false
}
