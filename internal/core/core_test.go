package core_test

import (
	"testing"

	"repro/internal/core"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/separability"
)

const counterSrc = `
	.org 0x40
start:
	MOV #0, R2
loop:
	ADD #1, R2
	MOV R2, @0x20
	TRAP #SWAP
	BR loop
`

const senderSrc = `
	.org 0x40
start:
	MOV #1, R2
loop:
	MOV #0, R0
	MOV R2, R1
	TRAP #SEND
	ADD #1, R2
	TRAP #SWAP
	BR loop
`

const receiverSrc = `
	.org 0x40
start:
	MOV #0, R4
loop:
	MOV #0, R0
	TRAP #RECV
	CMP #1, R0
	BNE yield
	ADD R1, R4
	MOV R4, @0x20
yield:
	TRAP #SWAP
	BR loop
`

func TestBuilderBasicSystem(t *testing.T) {
	sys, err := core.NewBuilder().
		Regime("a", counterSrc).
		Regime("b", counterSrc).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(1000)
	if sys.Kernel.Dead() {
		t.Fatalf("kernel died: %v", sys.Kernel.Cause)
	}
	for _, name := range []string{"a", "b"} {
		if v, ok := sys.RegimeWord(name, 0x20); !ok || v < 5 {
			t.Errorf("regime %s progressed only to %d", name, v)
		}
	}
}

func TestBuilderChannels(t *testing.T) {
	sys, err := core.NewBuilder().
		Regime("tx", senderSrc).
		Regime("rx", receiverSrc).
		Channel("tx", "rx", 8).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(5000)
	if v, _ := sys.RegimeWord("rx", 0x20); v == 0 {
		t.Error("no data crossed the channel")
	}
	if sys.Stats().Swaps == 0 {
		t.Error("no swaps recorded")
	}
}

func TestBuilderCutChannels(t *testing.T) {
	sys, err := core.NewBuilder().
		Regime("tx", senderSrc).
		Regime("rx", receiverSrc).
		Channel("tx", "rx", 8).
		CutChannels().
		Build()
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(5000)
	if v, _ := sys.RegimeWord("rx", 0x20); v != 0 {
		t.Errorf("cut channel delivered %d", v)
	}
}

func TestBuilderVerifyHonestAndLeaky(t *testing.T) {
	build := func(l kernel.Leaks) *core.System {
		return core.NewBuilder().
			RegimeSized("tx", senderSrc, 0x200).
			RegimeSized("rx", receiverSrc, 0x200).
			Channel("tx", "rx", 8).
			CutChannels().
			WithLeaks(l).
			MustBuild()
	}
	honest := build(kernel.Leaks{})
	res := honest.Verify(core.VerifyOptions{Trials: 4, StepsPerTrial: 50, Seed: 3})
	if !res.Passed() {
		t.Errorf("honest system failed verification: %s", res.Summary())
	}
	leaky := build(kernel.Leaks{OutputCopy: true})
	res = leaky.Verify(core.VerifyOptions{Trials: 6, StepsPerTrial: 80, Seed: 3})
	if res.Passed() {
		t.Error("OutputCopy leak passed verification")
	} else {
		found := false
		for _, c := range res.ViolatedConditions() {
			if c == separability.Condition2 {
				found = true
			}
		}
		if !found {
			t.Errorf("expected condition 2, got %v", res.ViolatedConditions())
		}
	}
}

func TestBuilderErrors(t *testing.T) {
	if _, err := core.NewBuilder().Build(); err == nil {
		t.Error("empty builder accepted")
	}
	if _, err := core.NewBuilder().Regime("x", "BOGUS").Build(); err == nil {
		t.Error("unassemblable regime accepted")
	}
	if _, err := core.NewBuilder().
		Regime("a", counterSrc).
		Channel("a", "nobody", 4).Build(); err == nil {
		t.Error("bad channel accepted")
	}
}

func TestBuilderWithDevice(t *testing.T) {
	tty := machine.NewTTY("tty0", 1)
	echo := `
	.org 0x40
start:
	MOV @DEV0, R0
	AND #1, R0
	BEQ yield
	MOV @DEV0+1, R1
	MOV R1, @DEV0+3
yield:
	TRAP #SWAP
	BR start
`
	sys, err := core.NewBuilder().
		Regime("io", echo, tty).
		Regime("other", counterSrc).
		Build()
	if err != nil {
		t.Fatal(err)
	}
	tty.InjectString("ok")
	sys.Run(5000)
	if got := tty.OutputString(); got != "ok" {
		t.Errorf("device echo = %q", got)
	}
}
