// Package core is the library façade: it assembles the pieces of the
// reproduction — the SM11 machine, the SUE-Go separation kernel, and the
// Proof-of-Separability checker — behind a declarative builder, so that
// examples, tools and downstream users can stand up a verified
// separation-kernel system in a few lines:
//
//	b := core.NewBuilder()
//	b.Regime("red", redSrc).Regime("black", blackSrc)
//	b.Channel("red", "black", 16)
//	sys, err := b.Build()
//	sys.Run(10000)
//	report := sys.Verify(core.VerifyOptions{Seed: 1})
//
// Component-level (distributed) systems are assembled directly with the
// distsys/workstation/snfe/guard packages; core covers the machine-level
// story, which is the paper's central contribution.
package core

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/obs"
	"repro/internal/separability"
)

// regimeDecl collects one Regime call.
type regimeDecl struct {
	name    string
	source  string
	size    machine.Word
	devices []machine.Device
}

// Builder declaratively configures a separation-kernel system. Partition
// bases are allocated automatically, packed upward from the kernel area.
type Builder struct {
	ramWords   int
	regimes    []regimeDecl
	channels   []kernel.ChannelSpec
	cut        bool
	leaks       kernel.Leaks
	fixedSlice  int
	devices     []machine.Device
	noTranslate bool
	err         error
}

// NewBuilder starts a configuration with the default RAM size.
func NewBuilder() *Builder { return &Builder{ramWords: machine.DefaultRAMWords} }

// RAM sets the machine's RAM size in words.
func (b *Builder) RAM(words int) *Builder {
	b.ramWords = words
	return b
}

// Regime adds a regime running the given assembly source (the kernel ABI
// prelude is prepended automatically). The default partition is 0x800
// words; override with RegimeSized.
func (b *Builder) Regime(name, source string, devices ...machine.Device) *Builder {
	return b.RegimeSized(name, source, 0x800, devices...)
}

// RegimeSized adds a regime with an explicit partition size in words.
func (b *Builder) RegimeSized(name, source string, size machine.Word, devices ...machine.Device) *Builder {
	b.regimes = append(b.regimes, regimeDecl{name: name, source: source, size: size, devices: devices})
	b.devices = append(b.devices, devices...)
	return b
}

// Channel declares a unidirectional kernel-mediated channel.
func (b *Builder) Channel(from, to string, capacity int) *Builder {
	b.channels = append(b.channels, kernel.ChannelSpec{
		Name: from + "->" + to, From: from, To: to, Capacity: capacity})
	return b
}

// CutChannels applies the paper's channel-cutting transformation, for
// isolation verification.
func (b *Builder) CutChannels() *Builder {
	b.cut = true
	return b
}

// WithLeaks compiles deliberate separation violations into the kernel
// (fault injection for the verifier).
func (b *Builder) WithLeaks(l kernel.Leaks) *Builder {
	b.leaks = l
	return b
}

// WithFixedSlice switches the kernel from run-until-SWAP to fixed time
// slices of n machine cycles (closing the scheduling/timing channel at
// the cost of idle time).
func (b *Builder) WithFixedSlice(n int) *Builder {
	b.fixedSlice = n
	return b
}

// NoTranslate disables the machine's basic-block translation cache for this
// system. Semantics are identical either way (the cache is host state only);
// this is an A/B lever for benchmarking and for isolating a suspected
// translation bug.
func (b *Builder) NoTranslate() *Builder {
	b.noTranslate = true
	return b
}

// System is a built, booted separation-kernel system.
type System struct {
	Machine *machine.Machine
	Kernel  *kernel.Kernel
	Adapter *kernel.Adapter
}

// Build assembles every regime, lays out partitions, boots the kernel and
// returns the running system.
func (b *Builder) Build() (*System, error) {
	if b.err != nil {
		return nil, b.err
	}
	if len(b.regimes) == 0 {
		return nil, fmt.Errorf("core: no regimes declared")
	}
	m := machine.New(b.ramWords)
	if b.noTranslate {
		m.SetTranslation(false)
	}
	for _, d := range b.devices {
		m.Attach(d)
	}
	cfg := kernel.Config{Channels: b.channels, CutChannels: b.cut, Leaks: b.leaks,
		FixedSlice: b.fixedSlice}
	base := kernel.KernelEnd
	for _, r := range b.regimes {
		im, err := asm.Assemble(kernel.Prelude + r.source)
		if err != nil {
			return nil, fmt.Errorf("core: regime %q: %w", r.name, err)
		}
		cfg.Regimes = append(cfg.Regimes, kernel.RegimeSpec{
			Name: r.name, Base: base, Size: r.size, Image: im, Devices: r.devices,
		})
		base += r.size
	}
	k, err := kernel.New(m, cfg)
	if err != nil {
		return nil, err
	}
	if err := k.Boot(); err != nil {
		return nil, err
	}
	return &System{Machine: m, Kernel: k, Adapter: kernel.NewAdapter(k)}, nil
}

// MustBuild is Build for static configurations.
func (b *Builder) MustBuild() *System {
	s, err := b.Build()
	if err != nil {
		panic(err)
	}
	return s
}

// SetTracer attaches t to both the kernel (context switches, syscalls,
// interrupt routing, channel traffic, faults) and the machine's device
// phase (interrupt raises); nil detaches both. Tracing is observational
// only: it never perturbs the modelled state or any verification outcome.
func (s *System) SetTracer(t obs.Tracer) {
	s.Kernel.SetTracer(t)
	s.Machine.SetEventTracer(t)
}

// RegimeNames returns the configured regime names in index order (the
// lane labels a Chrome trace writer wants).
func (s *System) RegimeNames() []string {
	var names []string
	for _, r := range s.Kernel.Config().Regimes {
		names = append(names, r.Name)
	}
	return names
}

// Run steps the system n cycles.
func (s *System) Run(n int) int { return s.Kernel.Run(n) }

// RunUntilIdle runs until every regime is dead or waiting.
func (s *System) RunUntilIdle(max int) int { return s.Kernel.RunUntilIdle(max) }

// VerifyOptions tunes Verify.
type VerifyOptions struct {
	Trials          int
	StepsPerTrial   int
	Seed            int64
	CheckScheduling bool
	// Workers shards trials across checker goroutines, each on a replica
	// of the system (0 = one worker per CPU core, 1 = single-threaded;
	// results are identical for any value).
	Workers int
}

// Verify runs Proof of Separability against the system (rebooting it as
// part of state-space exploration — do not interleave with Run).
func (s *System) Verify(opt VerifyOptions) *separability.Result {
	o := separability.Options{
		Trials:          opt.Trials,
		StepsPerTrial:   opt.StepsPerTrial,
		Seed:            opt.Seed,
		CheckScheduling: opt.CheckScheduling,
		Workers:         opt.Workers,
	}
	return separability.CheckRandomized(s.Adapter, o)
}

// RegimeWord reads one word of a regime's memory (for assertions and
// demos).
func (s *System) RegimeWord(name string, vaddr machine.Word) (machine.Word, bool) {
	i := s.Kernel.RegimeIndex(name)
	if i < 0 {
		return 0, false
	}
	return s.Kernel.ReadRegimeMem(i, vaddr)
}

// Stats returns kernel activity counters.
func (s *System) Stats() kernel.Stats { return s.Kernel.Stats() }
