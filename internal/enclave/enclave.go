// Package enclave composes the reproduction's components at the largest
// scale the paper sketches: two complete enclaves — a LOW one and a HIGH
// one, each a full workstation-style system with its own authentication
// and file-server — joined by nothing except an ACCAT-style Guard on a
// pair of dedicated wires. Mail from LOW arrives in the HIGH enclave's
// file store without hindrance; mail from HIGH reaches LOW only past the
// watch officer.
//
// Every piece here is a previously verified component; the composition
// adds no new trusted code beyond the mailroom adapters, which is the
// paper's thesis about building large secure systems from small verified
// parts.
package enclave

import (
	"fmt"
	"strings"

	"repro/internal/auth"
	"repro/internal/distsys"
	"repro/internal/fileserver"
	"repro/internal/guard"
	"repro/internal/mls"
)

// Mailroom bridges one enclave's file-server to the Guard: outbound files
// written to the "outbox/" area are shipped as Guard mail; inbound mail is
// filed under "inbox/N".
//
// Ports: fs (out: requests to the file-server), fsin (in: replies),
// guard (out: mail to the Guard), guardin (in: mail from the Guard),
// auth (in: clearance announcements, which the mailroom itself ignores).
type Mailroom struct {
	name  string
	level mls.Label

	// shipping state: outbox files already shipped.
	shipped map[string]bool
	inSeq   int
	// polling state machine: 0 = ask for listing, 1 = waiting.
	waiting bool

	Shipped int
	Filed   int
}

// NewMailroom creates a mailroom operating at the given level.
func NewMailroom(name string, level mls.Label) *Mailroom {
	return &Mailroom{name: name, level: level, shipped: map[string]bool{}}
}

// Name implements distsys.Component.
func (m *Mailroom) Name() string { return m.name }

// Poll implements distsys.Component: periodically list the outbox.
func (m *Mailroom) Poll(ctx distsys.Context) bool {
	if m.waiting {
		return false
	}
	m.waiting = true
	ctx.Send("fs", distsys.Msg("list"))
	return true
}

// Handle implements distsys.Component.
func (m *Mailroom) Handle(ctx distsys.Context, port string, msg distsys.Message) {
	switch port {
	case "fsin":
		m.handleFS(ctx, msg)
	case "guardin":
		// Inbound mail: file it (the file-server knows the mailroom as a
		// user at the enclave's level).
		m.inSeq++
		name := fmt.Sprintf("inbox/%d", m.inSeq)
		ctx.Send("fs", distsys.Msg("create", "name", name))
		ctx.Send("fs", distsys.Msg("write", "name", name).WithBody(msg.Body))
		m.Filed++
	}
}

func (m *Mailroom) handleFS(ctx distsys.Context, msg distsys.Message) {
	switch msg.Kind {
	case "err":
		// Most commonly "not authenticated" while the login handshake is
		// still in flight: clear the poll latch and retry next round.
		m.waiting = false
	case "listing":
		m.waiting = false
		for _, line := range strings.Split(string(msg.Body), "\n") {
			fields := strings.Fields(line)
			if len(fields) == 0 {
				continue
			}
			name := fields[0]
			if !strings.HasPrefix(name, "outbox/") || m.shipped[name] {
				continue
			}
			m.shipped[name] = true
			ctx.Send("fs", distsys.Msg("read", "name", name))
		}
	case "data":
		// An outbox file arrived: ship it through the Guard.
		ctx.Send("guard", distsys.Msg("mail", "subject", msg.Arg("name")).WithBody(msg.Body))
		m.Shipped++
	}
}

// Enclave is one side: a file-server, an auth service, and a mailroom.
type Enclave struct {
	Files *fileserver.Server
	Auth  *auth.Service
	Mail  *Mailroom
}

// System is the full two-enclave deployment.
type System struct {
	Fabric *distsys.Fabric
	Low    Enclave
	High   Enclave
	Guard  *guard.Guard
}

// Build wires both enclaves and the Guard. Each mailroom is registered
// with its enclave's auth service as an ordinary user at the enclave
// level; the dedicated wiring is what lets the file-server trust the
// identity.
func Build(officer guard.Officer) (*System, error) {
	f := distsys.New(distsys.KernelHosted)
	sys := &System{Fabric: f, Guard: guard.New("guard", officer)}

	mk := func(side string, level mls.Label) (Enclave, error) {
		e := Enclave{
			Files: fileserver.New("fs_" + side),
			Auth:  auth.New("auth_"+side, "fs"),
			Mail:  NewMailroom("mail_"+side, level),
		}
		e.Auth.Register("mailroom", "mailpw", level)
		for _, c := range []distsys.Component{e.Auth, e.Files, e.Mail} {
			if err := f.Add(c); err != nil {
				return e, err
			}
		}
		wires := [][2]string{
			{"auth_" + side + ":server_fs", "fs_" + side + ":auth"},
			{"mail_" + side + ":fs", "fs_" + side + ":user_mailroom"},
			{"fs_" + side + ":re_user_mailroom", "mail_" + side + ":fsin"},
		}
		for _, w := range wires {
			if err := f.Connect(w[0], w[1], 64); err != nil {
				return e, err
			}
		}
		return e, nil
	}
	var err error
	if sys.Low, err = mk("low", mls.L(mls.Unclassified)); err != nil {
		return nil, err
	}
	if sys.High, err = mk("high", mls.L(mls.Secret)); err != nil {
		return nil, err
	}
	if err := f.Add(sys.Guard); err != nil {
		return nil, err
	}
	// The only wires between the enclaves run through the Guard.
	guardWires := [][2]string{
		{"mail_low:guard", "guard:low_in"},
		{"guard:high_out", "mail_high:guardin"},
		{"mail_high:guard", "guard:high_in"},
		{"guard:low_out", "mail_low:guardin"},
	}
	for _, w := range guardWires {
		if err := f.Connect(w[0], w[1], 64); err != nil {
			return nil, err
		}
	}

	// Authenticate the mailrooms (scripted logins, one message each).
	bootstrapLogin(f, "auth_low", "mail_low")
	bootstrapLogin(f, "auth_high", "mail_high")
	return sys, nil
}

// bootstrapLogin performs the mailroom's login handshake directly against
// the auth component (the mailroom has no interactive terminal; its
// identity is its dedicated wire, and the clearance announcement is what
// the file-server needs).
func bootstrapLogin(f *distsys.Fabric, authName, mailName string) {
	// Wire a throwaway terminal channel for the login exchange.
	f.MustConnect(mailName+":login", authName+":term_mailroom", 4)
	f.MustConnect(authName+":re_term_mailroom", mailName+":loginre", 4)
}

// Start performs the mailroom login handshakes and runs a few warm-up
// rounds so both file-servers know the mailroom clearances before any
// outbox traffic arrives.
func (s *System) Start() {
	login := distsys.Msg("login", "user", "mailroom", "pass", "mailpw")
	fabricCtx{f: s.Fabric, comp: "mail_low"}.Send("login", login)
	fabricCtx{f: s.Fabric, comp: "mail_high"}.Send("login", login)
	for i := 0; i < 5; i++ {
		s.Fabric.StepRound()
	}
}

// fabricCtx lets Start inject messages as if a component had sent them.
type fabricCtx struct {
	f    *distsys.Fabric
	comp string
}

func (c fabricCtx) Send(port string, m distsys.Message) {
	cc := distsys.NewInjector(c.f, c.comp)
	cc.Send(port, m)
}

// WriteOutbox places a file in an enclave's outbox as the mailroom user.
func (s *System) WriteOutbox(e *Enclave, name, content string) {
	inj := distsys.NewInjector(s.Fabric, e.Mail.Name())
	inj.Send("fs", distsys.Msg("create", "name", "outbox/"+name))
	inj.Send("fs", distsys.Msg("write", "name", "outbox/"+name).WithBody([]byte(content)))
}

// Run drives the system.
func (s *System) Run(max int) int { return s.Fabric.Run(max) }
