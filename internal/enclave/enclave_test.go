package enclave_test

import (
	"strings"
	"testing"

	"repro/internal/distsys"
	"repro/internal/enclave"
	"repro/internal/guard"
)

func build(t *testing.T) *enclave.System {
	t.Helper()
	sys, err := enclave.Build(guard.MarkerOfficer{})
	if err != nil {
		t.Fatal(err)
	}
	sys.Start()
	return sys
}

// readInbox fetches an inbox file's content via the mailroom's identity.
func readInbox(t *testing.T, sys *enclave.System, e *enclave.Enclave, n int) (string, bool) {
	t.Helper()
	rec := &distsys.Recorder{}
	e.Files.Handle(rec, "user_mailroom",
		distsys.Msg("read", "name", inboxName(n)))
	for _, m := range rec.OnPort("re_user_mailroom") {
		if m.Kind == "data" {
			return string(m.Body), true
		}
	}
	return "", false
}

func inboxName(n int) string {
	return "inbox/" + string(rune('0'+n))
}

func TestLowToHighMailFlowsFreely(t *testing.T) {
	sys := build(t)
	sys.WriteOutbox(&sys.Low, "report", "convoy arrived")
	sys.Run(4000)

	if sys.Low.Mail.Shipped != 1 {
		t.Fatalf("low mailroom shipped %d", sys.Low.Mail.Shipped)
	}
	if sys.Guard.UpPassed != 1 {
		t.Fatalf("guard passed up %d", sys.Guard.UpPassed)
	}
	if sys.High.Mail.Filed != 1 {
		t.Fatalf("high mailroom filed %d", sys.High.Mail.Filed)
	}
	got, ok := readInbox(t, sys, &sys.High, 1)
	if !ok || got != "convoy arrived" {
		t.Errorf("high inbox/1 = %q ok=%v", got, ok)
	}
}

func TestHighToLowMailIsReviewed(t *testing.T) {
	sys := build(t)
	sys.WriteOutbox(&sys.High, "weather", "storms clearing")
	sys.WriteOutbox(&sys.High, "plan", "move at dawn [SECRET: grid 12A] end")
	sys.WriteOutbox(&sys.High, "roster", "sources NOFORN")
	sys.Run(8000)

	if sys.High.Mail.Shipped != 3 {
		t.Fatalf("high mailroom shipped %d", sys.High.Mail.Shipped)
	}
	if sys.Guard.Released != 1 || sys.Guard.Redacted != 1 || sys.Guard.Denied != 1 {
		t.Fatalf("guard verdicts: %d/%d/%d",
			sys.Guard.Released, sys.Guard.Redacted, sys.Guard.Denied)
	}
	if sys.Low.Mail.Filed != 2 {
		t.Fatalf("low mailroom filed %d, want 2", sys.Low.Mail.Filed)
	}
	var all string
	for n := 1; n <= 2; n++ {
		body, ok := readInbox(t, sys, &sys.Low, n)
		if !ok {
			t.Fatalf("low inbox/%d missing", n)
		}
		all += body + "\n"
	}
	if strings.Contains(all, "grid 12A") || strings.Contains(all, "NOFORN") {
		t.Errorf("classified content reached the LOW enclave: %q", all)
	}
	if !strings.Contains(all, "[REDACTED]") {
		t.Errorf("redaction marker missing from LOW inbox: %q", all)
	}
}

func TestEnclavesShareNoOtherWires(t *testing.T) {
	// Structural check: every wire between a low-side and a high-side
	// component passes through the guard. This is the "physically limited
	// communications" the design's security rests on.
	sys := build(t)
	sys.WriteOutbox(&sys.Low, "f", "x")
	sys.Run(4000)
	// The low file-server never saw a high principal and vice versa.
	for _, d := range sys.Low.Files.Monitor().Audit() {
		if strings.Contains(d.Subject, "high") {
			t.Errorf("high principal reached the low file-server: %+v", d)
		}
	}
	for _, d := range sys.High.Files.Monitor().Audit() {
		if strings.Contains(d.Subject, "low") {
			t.Errorf("low principal reached the high file-server: %+v", d)
		}
	}
}
