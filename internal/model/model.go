// Package model states Rushby's Appendix model of a shared system as Go
// interfaces, so that both toy systems and the real SM11/SUE-Go kernel can
// be checked by the same Proof-of-Separability machinery.
//
// The paper's model comprises a set S of states and a set OPS ⊆ S→S of
// operations. The system consumes inputs i ∈ I and produces outputs o ∈ O.
// At each time step the system emits OUTPUT(s), consumes an input giving the
// intermediate state s̄ = INPUT(s, i), and then executes NEXTOP(s̄), moving
// to NEXTOP(s̄)(s̄). A set C of colours identifies the users; COLOUR(s) is
// the colour on whose behalf the next operation executes, and EXTRACT(c, ·)
// projects the c-coloured private components out of inputs and outputs.
//
// Security is defined by the existence, for every colour c, of abstraction
// functions Φ^c and ABOP^c satisfying the six conditions of the Appendix;
// package separability checks those conditions against implementations of
// the interfaces below.
package model

// Colour identifies one user (one regime) of a shared system.
type Colour string

// Input is one external stimulus vector: what the environment presents to
// every device/port of the system at one time step. Implementations are
// immutable values.
type Input interface{}

// Output is one emitted output vector, likewise immutable.
type Output interface{}

// StateRef is an opaque deep copy of a system state, used to save and
// restore the system while exploring.
type StateRef interface{}

// OpID names an operation of OPS. Two states select the same operation
// exactly when their OpIDs are equal (this realises NEXTOP for checking
// condition 6).
type OpID string

// SharedSystem is the concrete machine of the model: a deterministic state
// machine with coloured users. All methods refer to the system's *current*
// state; Save/Restore move the current state around.
//
// One model time step is: out := CurrentOutput(); ApplyInput(i); Step().
type SharedSystem interface {
	// Colours returns the user set C.
	Colours() []Colour

	// Save deep-copies the current state.
	Save() StateRef
	// Restore overwrites the current state with a previous Save.
	Restore(StateRef)

	// Colour returns COLOUR(s) for the current state: the colour on whose
	// behalf the next operation will execute.
	Colour() Colour

	// NextOp identifies NEXTOP(s) for the current state.
	NextOp() OpID

	// Step executes NEXTOP(s) on the current state.
	Step()

	// ApplyInput applies INPUT(s, i) to the current state.
	ApplyInput(i Input)

	// CurrentOutput returns OUTPUT(s) of the current state.
	CurrentOutput() Output

	// Abstract computes a canonical encoding of Φ^c(s) for the current
	// state: everything colour c can observe of its own abstract machine.
	// Equality of encodings is equality of abstract states.
	Abstract(c Colour) string

	// ExtractInput computes a canonical encoding of EXTRACT(c, i).
	ExtractInput(c Colour, i Input) string

	// ExtractOutput computes a canonical encoding of EXTRACT(c, o).
	ExtractOutput(c Colour, o Output) string
}

// Enumerable is implemented by systems small enough to check exhaustively:
// the checker visits every reachable state (or every state the enumerator
// yields) and every input.
type Enumerable interface {
	SharedSystem

	// EnumerateStates calls fn with a StateRef for every state to check.
	// Returning false stops the enumeration.
	EnumerateStates(fn func(StateRef) bool)

	// EnumerateInputs calls fn with every input value to check.
	EnumerateInputs(fn func(Input) bool)
}

// Rand is the source of randomness handed to Perturbable systems; it is the
// subset of *math/rand.Rand the implementations need.
type Rand interface {
	Intn(n int) int
	Uint32() uint32
}

// Replicable is implemented by systems that can manufacture independent
// deep copies of themselves, enabling the checkers to shard work across
// worker goroutines, each owning a private replica. A clone must share no
// mutable state with its original, must implement every model interface
// the original implements, and must accept StateRefs produced by the
// original (and vice versa). Clone returns nil when the system cannot be
// replicated — for example when it is wired to shared environment state —
// in which case the checkers fall back to single-threaded operation.
type Replicable interface {
	Clone() SharedSystem
}

// Digester is optionally implemented by systems that can compute a 64-bit
// digest of Φ^c(s) without materializing the canonical string. The digest
// MUST be the FNV-1a hash of exactly the bytes Abstract(c) would produce
// (use Digest64 to stream them), so that digest equality coincides with
// string equality up to hash collisions. The checkers compare digests on
// their hot paths and re-derive full strings only when a violation needs a
// human-readable counterexample.
type Digester interface {
	AbstractDigest(c Colour) uint64
}

// FNV-1a 64-bit parameters (FNV is the digest of record for Φ comparison:
// fast, allocation-free, and trivially streamable).
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// DigestString returns the FNV-1a 64-bit digest of s; it is the reference
// implementation AbstractDigest must agree with.
func DigestString(s string) uint64 {
	h := fnvOffset64
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	return h
}

// AbstractDigest computes the digest of Φ^c for sys's current state: via
// the system's own Digester implementation when present, else by hashing
// the canonical Abstract encoding.
func AbstractDigest(sys SharedSystem, c Colour) uint64 {
	if d, ok := sys.(Digester); ok {
		return d.AbstractDigest(c)
	}
	return DigestString(sys.Abstract(c))
}

// Digest64 is a streaming FNV-1a 64-bit hasher. It implements io.Writer,
// io.StringWriter and io.ByteWriter with the same signatures as
// strings.Builder, so code that renders a canonical Φ encoding can be
// written once against the common subset and fed either a builder (for the
// string) or a Digest64 (for the digest), guaranteeing both views hash the
// same bytes.
type Digest64 struct{ h uint64 }

// NewDigest64 returns a digest in its initial (offset-basis) state.
func NewDigest64() *Digest64 { return &Digest64{h: fnvOffset64} }

// Write implements io.Writer; it never fails.
func (d *Digest64) Write(p []byte) (int, error) {
	h := d.h
	for _, b := range p {
		h = (h ^ uint64(b)) * fnvPrime64
	}
	d.h = h
	return len(p), nil
}

// WriteString implements io.StringWriter; it never fails.
func (d *Digest64) WriteString(s string) (int, error) {
	h := d.h
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * fnvPrime64
	}
	d.h = h
	return len(s), nil
}

// WriteByte implements io.ByteWriter; it never fails.
func (d *Digest64) WriteByte(b byte) error {
	d.h = (d.h ^ uint64(b)) * fnvPrime64
	return nil
}

// Sum64 returns the digest of everything written so far.
func (d *Digest64) Sum64() uint64 { return d.h }

// Checkpoint is an opaque handle to a delta checkpoint taken by a
// Checkpointer.
type Checkpoint interface{}

// Checkpointer is optionally implemented by systems that can roll back to a
// recent point in O(state actually touched) instead of the O(whole state)
// that Save/Restore costs. The checkers anchor every per-state condition
// sweep on a Checkpoint when one is available and fall back to Save/Restore
// otherwise; both paths must produce identical observable behaviour.
type Checkpointer interface {
	// Checkpoint begins tracking mutations from the current state and
	// returns a handle for rolling back to it. It returns nil when delta
	// tracking is unavailable right now (for example a checkpoint is
	// already active); the caller must then use Save/Restore.
	Checkpoint() Checkpoint
	// Rollback returns the system to the checkpoint state. Tracking
	// continues: the system may be mutated and rolled back repeatedly.
	Rollback(Checkpoint)
	// Release rolls back to the checkpoint state and ends tracking,
	// recycling the checkpoint's buffers. The handle is dead afterwards.
	Release(Checkpoint)
}

// DirtyTracker is an optional refinement of Checkpointer: it reports which
// colours' abstractions MAY have changed since the given checkpoint was
// taken (or since the most recent Rollback to it). The mask is indexed by
// the position of each colour in Colours(): a CLEAR bit ci is a proof that
// Φ^c for Colours()[ci] is byte-identical to its checkpoint-time value; a
// set bit promises nothing. ok=false means the tracker cannot answer for
// this checkpoint (the caller must treat every colour as dirty).
//
// The exhaustive checker uses this to skip whole digest passes: after
// stepping or applying an input from a checkpointed state, colours the
// mutation provably never touched reuse the checkpoint-time digest.
// Implementations must therefore be conservative in exactly one direction —
// over-marking wastes a recompute, under-marking corrupts verdicts.
type DirtyTracker interface {
	DirtyColours(cp Checkpoint) (mask uint64, ok bool)
}

// Portable is optionally implemented by systems whose states and inputs can
// leave the process: the witness subsystem persists a counterexample's
// pre-state and input sequence through these codecs and re-materializes them
// in a later run against a freshly built system. Encodings must be
// self-describing and versioned — DecodeState on bytes from an incompatible
// build must fail with an error, never yield a plausible wrong state — and
// the round trip must be exact: DecodeState(EncodeState(ref)) restores to a
// state indistinguishable from ref under Step, ApplyInput and Abstract.
// Encoding either direction must not disturb the system's current state.
type Portable interface {
	EncodeState(ref StateRef) ([]byte, error)
	DecodeState(data []byte) (StateRef, error)
	EncodeInput(i Input) ([]byte, error)
	DecodeInput(data []byte) (Input, error)
}

// OpClassifier is optionally implemented by systems that can map an OpID to
// a low-cardinality operation class for metrics (OpIDs themselves embed
// state detail like program counters, far too many distinct values to
// count). Classes should be stable, human-meaningful buckets — "user:MOV",
// "syscall", "deliver-irq".
type OpClassifier interface {
	ClassifyOp(op OpID) string
}

// OpClass buckets op for per-operation metrics: via the system's own
// OpClassifier when present, else by truncating the OpID at its first ':'
// (the conventional "kind:detail" shape of OpIDs).
func OpClass(sys SharedSystem, op OpID) string {
	if c, ok := sys.(OpClassifier); ok {
		return c.ClassifyOp(op)
	}
	s := string(op)
	for i := 0; i < len(s); i++ {
		if s[i] == ':' {
			return s[:i]
		}
	}
	return s
}

// Perturbable is implemented by systems too large to enumerate; the checker
// samples random reachable states and perturbs the parts of the state that
// a given colour should not be able to observe.
type Perturbable interface {
	SharedSystem

	// Randomize drives the system into a random plausible reachable state
	// (typically: reset, then run a random prefix with random stimuli).
	Randomize(r Rand)

	// PerturbOutside mutates state components that do not belong to colour
	// c — other regimes' memory, registers and device state — while
	// preserving Φ^c(s) and COLOUR(s). The checker verifies preservation
	// and fails the *system definition* (not separability) if violated.
	PerturbOutside(c Colour, r Rand)

	// RandomInput produces a random input stimulus.
	RandomInput(r Rand) Input

	// RandomInputMatching produces a random input i' with
	// EXTRACT(c, i') == EXTRACT(c, i): same c-coloured components as i,
	// everything else free.
	RandomInputMatching(c Colour, i Input, r Rand) Input
}
