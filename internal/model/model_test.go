package model_test

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/separability"
)

// The model package is pure interface; its tests pin the contracts:
// the two real implementations must satisfy the intended interfaces, and
// the documented step protocol must hold for any SharedSystem.

var (
	_ model.Enumerable  = (*separability.ToySystem)(nil)
	_ model.Perturbable = (*separability.ToySystem)(nil)
	_ model.Perturbable = (*kernel.Adapter)(nil)
)

func TestStepProtocolOnToy(t *testing.T) {
	var sys model.SharedSystem = separability.NewToySystem(separability.ToySecure)

	if len(sys.Colours()) != 2 {
		t.Fatalf("colours = %v", sys.Colours())
	}
	s0 := sys.Save()
	// One model time step: output, input, operation.
	_ = sys.CurrentOutput()
	sys.ApplyInput(nil)
	before := sys.Colour()
	op := sys.NextOp()
	sys.Step()
	if op == "" || before == "" {
		t.Error("colour/op must be defined at every state")
	}
	// Save/Restore is a true snapshot: restoring replays identically.
	after1 := sys.Abstract(sys.Colours()[0])
	sys.Restore(s0)
	sys.ApplyInput(nil)
	sys.Step()
	if got := sys.Abstract(sys.Colours()[0]); got != after1 {
		t.Error("restore did not reproduce the state")
	}
}

func TestAbstractEncodingsDifferPerColour(t *testing.T) {
	sys := separability.NewToySystem(separability.ToySecure)
	sys.Step()
	a := sys.Abstract("red")
	b := sys.Abstract("black")
	if a == "" || b == "" {
		t.Fatal("empty abstraction")
	}
	// After one red operation the two projections must differ (red moved,
	// black did not).
	if a == b {
		t.Error("distinct colours share an abstraction")
	}
}
