package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/lint"
)

// write lays out a synthetic source tree for the linter.
func write(t *testing.T, root, rel, src string) {
	t.Helper()
	path := filepath.Join(root, filepath.FromSlash(rel))
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

func runLint(t *testing.T, root string) []lint.Diagnostic {
	t.Helper()
	diags, err := lint.Run(root)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

func rules(diags []lint.Diagnostic) []string {
	var out []string
	for _, d := range diags {
		out = append(out, d.Rule)
	}
	return out
}

func TestObsZeroDep(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/obs/metrics.go", `package obs
import (
	"fmt"
	"repro/internal/machine"
)
var _ = fmt.Sprint
var _ = machine.Word(0)
`)
	diags := runLint(t, root)
	if len(diags) != 1 || diags[0].Rule != "obs-zero-dep" {
		t.Fatalf("diags = %v, want one obs-zero-dep", diags)
	}
	// Test files may import whatever they like.
	root2 := t.TempDir()
	write(t, root2, "internal/obs/metrics_test.go", `package obs_test
import "repro/internal/obs"
var _ = obs.Event{}
`)
	if d := runLint(t, root2); len(d) != 0 {
		t.Fatalf("test file flagged: %v", d)
	}
}

func TestObsSubpackageImports(t *testing.T) {
	// Subpackages may build on the obs core and on covert, nothing else.
	root := t.TempDir()
	write(t, root, "internal/obs/analyze/analyze.go", `package analyze
import (
	"repro/internal/covert"
	"repro/internal/obs"
)
var _ = obs.Event{}
var _ = covert.Bitstring
`)
	if d := runLint(t, root); len(d) != 0 {
		t.Fatalf("allowed subpackage imports flagged: %v", d)
	}

	root2 := t.TempDir()
	write(t, root2, "internal/obs/analyze/bad.go", `package analyze
import "repro/internal/kernel"
var _ = kernel.Stats{}
`)
	diags := runLint(t, root2)
	if len(diags) != 1 || diags[0].Rule != "obs-zero-dep" {
		t.Fatalf("diags = %v, want one obs-zero-dep for the kernel import", diags)
	}
}

func TestRawMachineAccess(t *testing.T) {
	root := t.TempDir()
	const offender = `package x
func f(m interface{ SetReg(int, uint16) }) { m.SetReg(0, 1) }
`
	write(t, root, "internal/other/x.go", offender)
	// The same call inside an allowlisted package is fine.
	write(t, root, "internal/kernel/x.go", strings.Replace(offender, "package x", "package kernel", 1))
	// And fine in tests anywhere.
	write(t, root, "internal/other/x_test.go", strings.Replace(offender, "func f", "func g", 1))
	diags := runLint(t, root)
	if len(diags) != 1 || diags[0].Rule != "raw-machine-access" {
		t.Fatalf("diags = %v, want one raw-machine-access in internal/other", diags)
	}
	if !strings.Contains(diags[0].Pos.Filename, filepath.FromSlash("internal/other/x.go")) {
		t.Errorf("flagged wrong file: %s", diags[0].Pos)
	}
}

func TestRawDeviceAccess(t *testing.T) {
	root := t.TempDir()
	const offender = `package x
func f(d interface{ InjectInput([]uint16) bool }) { d.InjectInput(nil) }
`
	write(t, root, "internal/kernel/x.go", strings.Replace(offender, "package x", "package kernel", 1))
	// Only internal/machine itself owns the write barrier.
	write(t, root, "internal/machine/x.go", strings.Replace(offender, "package x", "package machine", 1))
	// And tests may poke devices directly.
	write(t, root, "internal/kernel/x_test.go", strings.Replace(offender, "func f", "func g", 1))
	diags := runLint(t, root)
	if len(diags) != 1 || diags[0].Rule != "raw-device-access" {
		t.Fatalf("diags = %v, want one raw-device-access in internal/kernel", diags)
	}
	if !strings.Contains(diags[0].Pos.Filename, filepath.FromSlash("internal/kernel/x.go")) {
		t.Errorf("flagged wrong file: %s", diags[0].Pos)
	}
}

func TestHookPurity(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/kernel/hooks.go", `package kernel
type K struct {
	tracer interface{ Emit(int) }
	state  int
	cells  [4]int
}
func (k *K) good() {
	if k.tracer != nil {
		k.tracer.Emit(k.state) // reading is fine
	}
	k.state++ // outside the hook: fine
}
func (k *K) badGuarded() {
	if k.tracer != nil {
		k.state = 7
	}
}
func (k *K) badAfterEarlyReturn() {
	if k.tracer == nil {
		return
	}
	k.cells[0] = 9
	k.tracer.Emit(0)
}
func (k *K) emitThing(v int) {
	k.state += v
}
func (k *K) setTracer(t interface{ Emit(int) }) {
	k.tracer = t // assigning the tracer field itself is sanctioned
}
`)
	diags := runLint(t, root)
	got := rules(diags)
	want := 3 // badGuarded, badAfterEarlyReturn, emitThing
	if len(got) != want {
		t.Fatalf("diags = %v, want %d obs-hook-pure", diags, want)
	}
	for _, r := range got {
		if r != "obs-hook-pure" {
			t.Fatalf("unexpected rule %s in %v", r, diags)
		}
	}
}

func TestHookPurityInsideLoop(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/machine/hooks.go", `package machine
type M struct {
	events interface{ Emit(int) }
	n      int
}
func (m *M) tick() {
	for i := 0; i < 3; i++ {
		if m.events != nil {
			m.n = i
		}
	}
}
`)
	diags := runLint(t, root)
	if len(diags) != 1 || diags[0].Rule != "obs-hook-pure" {
		t.Fatalf("diags = %v, want one obs-hook-pure inside the loop", diags)
	}
}

func TestTCHostOnly(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/machine/snap.go", `package machine
type M struct {
	ram []uint16
	tc  *tcache
}
type tcache struct{ hits uint64 }
type Snap struct{ words []uint16 }
func (m *M) Snapshot() *Snap {
	_ = m.tc // the cache must never reach a snapshot
	return &Snap{words: m.ram}
}
func (m *M) restoreLike() {
	m.tc = nil // invalidation outside the read-out family: sanctioned
}
`)
	diags := runLint(t, root)
	if len(diags) != 1 || diags[0].Rule != "tc-host-only" {
		t.Fatalf("diags = %v, want one tc-host-only in Snapshot", diags)
	}

	// Digest paths are policed in every package, kernel included.
	root2 := t.TempDir()
	write(t, root2, "internal/kernel/phi.go", `package kernel
type A struct{ enabled bool }
func (a *A) AbstractDigest(c string) uint64 {
	if a.TranslationEnabled() {
		return 1
	}
	return 0
}
func (a *A) TranslationEnabled() bool { return a.enabled }
`)
	diags = runLint(t, root2)
	if len(diags) != 1 || diags[0].Rule != "tc-host-only" {
		t.Fatalf("diags = %v, want one tc-host-only in AbstractDigest", diags)
	}
}

// TestRepositoryClean is the invariant itself: the real tree has zero
// violations. If this fails, the code — not the linter — regressed.
// A save slot or service code declared in the layout but absent from the
// footprint table is flagged; the stride sizing constant is exempt.
func TestTrapSummarySync(t *testing.T) {
	root := t.TempDir()
	write(t, root, "internal/kernel/layout.go", `package kernel
type Word uint16
const (
	saveR0     Word = 0
	saveGhost  Word = 12
	saveStride Word = 16
	TrapSwap   Word = 0
	TrapGhost  Word = 9
)
`)
	write(t, root, "internal/kernel/footprint.go", `package kernel
var slots = []Word{saveR0}
var codes = []Word{TrapSwap}
`)
	diags := runLint(t, root)
	var missing []string
	for _, d := range diags {
		if d.Rule != "trap-summary-sync" {
			t.Errorf("unexpected rule %s", d.Rule)
			continue
		}
		for _, name := range []string{"saveGhost", "TrapGhost", "saveStride", "saveR0", "TrapSwap"} {
			if strings.Contains(d.Msg, name) {
				missing = append(missing, name)
			}
		}
	}
	if strings.Join(missing, ",") != "saveGhost,TrapGhost" {
		t.Errorf("flagged constants = %v, want [saveGhost TrapGhost]; diags: %v", missing, diags)
	}

	// A layout with no footprint table at all is one diagnostic.
	root2 := t.TempDir()
	write(t, root2, "internal/kernel/layout.go", `package kernel
type Word uint16
const saveR0 Word = 0
`)
	diags2 := runLint(t, root2)
	if len(diags2) != 1 || diags2[0].Rule != "trap-summary-sync" ||
		!strings.Contains(diags2[0].Msg, "footprint.go is missing") {
		t.Errorf("diags = %v, want one missing-footprint diagnostic", diags2)
	}
}

func TestRepositoryClean(t *testing.T) {
	diags := runLint(t, filepath.Join("..", ".."))
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
