// Package lint enforces the repository's security-architecture invariants
// over the Go sources themselves — the repo-level analogue of what package
// staticflow does to machine programs. Six rules, all purely syntactic
// (go/ast, no external dependencies):
//
//   - obs-zero-dep: internal/obs is the observability layer every subsystem
//     may import, so it must import nothing from this module — otherwise
//     instrumentation could drag modelled state into scope. Subpackages
//     (internal/obs/analyze) sit a layer above: they consume recorded
//     traces offline, so they may import the obs core and the equally
//     dependency-free covert arithmetic, but still nothing that models or
//     mutates machine state (kernel, machine, separability, ...).
//
//   - raw-machine-access: only internal/kernel, internal/machine itself and
//     internal/distmachine (whose boot path stands in for the hardware
//     loader) may call the machine's raw state mutators. Everything else
//     reaches machine state through the kernel's Φ abstraction (the
//     adapter), never into another colour's registers or memory directly.
//
//   - raw-device-access: outside internal/machine, device state is mutated
//     only through the machine's write-barrier entry points
//     (machine.Inject, Restore, the I/O page). Calling a Device's own
//     mutators (InjectInput, WriteReg, RestoreState, ...) directly would
//     bypass delta-snapshot dirty tracking and silently corrupt O(dirty)
//     rollback, so the linter forbids it.
//
//   - obs-hook-pure: tracing hooks observe, they never mutate. Inside a
//     tracer-guarded region (an `if x.tracer != nil` body, code following an
//     `if x.tracer == nil { return }` guard, or a method named emit*/trace*)
//     no receiver state may be assigned and no raw mutator may be called.
//     Observation must not perturb the modelled system — the property that
//     keeps verification results valid with tracing enabled.
//
//   - tc-host-only: the basic-block translation cache is host-side
//     acceleration state, invisible to the modelled machine. Guest-visible
//     read-out paths — Snapshot, Encode, Hash, Equal, Abstract,
//     AbstractDigest, renderPhi — must never reference it: a cache that
//     leaked into a snapshot or a Φ digest would make verification verdicts
//     depend on execution strategy instead of machine state.
//
//   - trap-summary-sync: the per-trap footprint table
//     (internal/kernel/footprint.go) is how the static analyzer models
//     kernel services, so it must track the kernel's real save-area layout.
//     Every save-area slot constant declared in layout.go (save*, except the
//     stride) and every Trap* service code must be referenced by name in
//     footprint.go — a slot or service added to the layout without a
//     footprint entry would silently widen the gap between the modelled and
//     the actual kernel.
package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"io/fs"
	"path/filepath"
	"strings"
)

// Diagnostic is one rule violation.
type Diagnostic struct {
	Pos  token.Position
	Rule string
	Msg  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Rule, d.Msg)
}

// module is the import-path prefix of this repository.
const module = "repro"

// rawMutators are machine methods that write modelled machine state. The
// names are specific enough that a bare name match is reliable in this
// repository (generic names like Reset or Step are deliberately absent).
var rawMutators = map[string]bool{
	"SetReg": true, "SetPC": true, "SetPSW": true, "SetAltSP": true,
	"SetSeg": true, "WritePhys": true, "LoadImage": true, "SetVector": true,
	"ClearRAM": true, "ClearWaiting": true, "TickDevices": true,
	"DeltaRestore": true,
}

// deviceMutators are Device methods that write device state without passing
// through the machine's write barrier. Only internal/machine (which owns
// the barrier) may call them; everyone else goes through machine.Inject or
// the I/O page so delta snapshots journal the mutation.
var deviceMutators = map[string]bool{
	"InjectInput": true, "InjectString": true, "DrainOutput": true,
	"RestoreState": true, "WriteReg": true,
}

// mutatorAllowed lists package directories that may call raw mutators.
var mutatorAllowed = map[string]bool{
	"internal/machine":     true,
	"internal/kernel":      true,
	"internal/distmachine": true,
}

// tracerFields are the receiver fields recognised as tracer hooks.
var tracerFields = map[string]bool{"tracer": true, "events": true}

// tcReadoutFuncs are the guest-visible read-out functions tc-host-only
// polices: everything that encodes, digests or compares modelled machine
// state. (Restore/DeltaRestore legitimately touch the cache — they must
// invalidate it — so they are deliberately absent.)
var tcReadoutFuncs = map[string]bool{
	"Snapshot": true, "Encode": true, "Hash": true, "Equal": true,
	"Abstract": true, "AbstractDigest": true, "renderPhi": true,
}

// tcIdents are identifiers that belong to the translation cache: its field,
// its types, and the machine methods that expose or drive it.
var tcIdents = map[string]bool{
	"tc": true, "tcache": true, "tblock": true, "noTranslate": true,
	"TranslationStats": true, "TranslationEnabled": true, "SetTranslation": true,
	"stepTranslated": true, "runFast": true, "flushTC": true, "invalidateTC": true,
}

// Run lints every .go file under root (skipping testdata and hidden
// directories) and returns the diagnostics in file order.
func Run(root string) ([]Diagnostic, error) {
	var diags []Diagnostic
	fset := token.NewFileSet()
	sync := &trapSync{}
	err := filepath.WalkDir(root, func(path string, d fs.DirEntry, err error) error {
		if err != nil {
			return err
		}
		name := d.Name()
		if d.IsDir() {
			if path != root && (strings.HasPrefix(name, ".") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			return nil
		}
		if !strings.HasSuffix(name, ".go") {
			return nil
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		ds, err := lintFile(fset, path, filepath.ToSlash(filepath.Dir(rel)), sync)
		if err != nil {
			return err
		}
		diags = append(diags, ds...)
		return nil
	})
	if err != nil {
		return diags, err
	}
	return append(diags, sync.check(fset)...), nil
}

// lintFile lints one file; dir is the slash-separated package directory
// relative to the repository root ("internal/obs", "cmd/sepflow", ...).
func lintFile(fset *token.FileSet, path, dir string, sync *trapSync) ([]Diagnostic, error) {
	f, err := parser.ParseFile(fset, path, nil, parser.SkipObjectResolution)
	if err != nil {
		return nil, err
	}
	isTest := strings.HasSuffix(path, "_test.go")
	l := &linter{fset: fset}

	if !isTest && dir == "internal/obs" {
		l.checkObsImports(f)
	}
	if !isTest && strings.HasPrefix(dir, "internal/obs/") {
		l.checkObsSubImports(f)
	}
	if !isTest && !mutatorAllowed[dir] {
		l.checkRawAccess(f)
	}
	if !isTest && dir != "internal/machine" {
		l.checkDeviceAccess(f)
	}
	if !isTest && mutatorAllowed[dir] {
		l.checkHookPurity(f)
	}
	if !isTest {
		l.checkTCPurity(f)
	}
	if sync != nil && dir == "internal/kernel" {
		switch filepath.Base(path) {
		case "layout.go":
			sync.collectLayout(f)
		case "footprint.go":
			sync.collectFootprint(f)
		}
	}
	return l.diags, nil
}

type linter struct {
	fset  *token.FileSet
	diags []Diagnostic
}

func (l *linter) report(pos token.Pos, rule, format string, args ...any) {
	l.diags = append(l.diags, Diagnostic{
		Pos:  l.fset.Position(pos),
		Rule: rule,
		Msg:  fmt.Sprintf(format, args...),
	})
}

// checkObsImports enforces obs-zero-dep for the obs core.
func (l *linter) checkObsImports(f *ast.File) {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if p == module || strings.HasPrefix(p, module+"/") {
			l.report(imp.Pos(), "obs-zero-dep",
				"internal/obs must not import %s (keep the observability layer dependency-free)", p)
		}
	}
}

// obsSubAllowed are the module imports an internal/obs subpackage may use:
// the obs core itself plus covert, both of which import only the standard
// library (the core by this linter, covert by inspection — fmt and math).
var obsSubAllowed = map[string]bool{
	module + "/internal/obs":    true,
	module + "/internal/covert": true,
}

// checkObsSubImports enforces obs-zero-dep for internal/obs subpackages.
func (l *linter) checkObsSubImports(f *ast.File) {
	for _, imp := range f.Imports {
		p := strings.Trim(imp.Path.Value, `"`)
		if (p == module || strings.HasPrefix(p, module+"/")) && !obsSubAllowed[p] {
			l.report(imp.Pos(), "obs-zero-dep",
				"internal/obs subpackages may import only the obs core and internal/covert, not %s (trace analysis must stay outside the modelled system)", p)
		}
	}
}

// checkRawAccess enforces raw-machine-access.
func (l *linter) checkRawAccess(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !rawMutators[sel.Sel.Name] {
			return true
		}
		l.report(call.Pos(), "raw-machine-access",
			"%s writes raw machine state; go through the kernel adapter (Φ) instead", sel.Sel.Name)
		return true
	})
}

// checkDeviceAccess enforces raw-device-access.
func (l *linter) checkDeviceAccess(f *ast.File) {
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || !deviceMutators[sel.Sel.Name] {
			return true
		}
		l.report(call.Pos(), "raw-device-access",
			"%s mutates device state behind the write barrier; use machine.Inject (or the I/O page) so delta snapshots stay sound", sel.Sel.Name)
		return true
	})
}

// checkTCPurity enforces tc-host-only: read-out functions must not mention
// any translation-cache identifier, neither as a field/method selector nor
// as a bare name.
func (l *linter) checkTCPurity(f *ast.File) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Body == nil || !tcReadoutFuncs[fn.Name.Name] {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if ok && tcIdents[id.Name] {
				l.report(id.Pos(), "tc-host-only",
					"%s references translation-cache state (%s); the cache is host-only and must stay out of snapshots, digests and Φ",
					fn.Name.Name, id.Name)
			}
			return true
		})
	}
}

// checkHookPurity enforces obs-hook-pure over every method in the file.
func (l *linter) checkHookPurity(f *ast.File) {
	for _, decl := range f.Decls {
		fn, ok := decl.(*ast.FuncDecl)
		if !ok || fn.Recv == nil || fn.Body == nil || len(fn.Recv.List) == 0 ||
			len(fn.Recv.List[0].Names) == 0 {
			continue
		}
		recv := fn.Recv.List[0].Names[0].Name
		lname := strings.ToLower(fn.Name.Name)
		inHook := strings.HasPrefix(lname, "emit") || strings.HasPrefix(lname, "trace")
		l.walkBlock(fn.Body, recv, inHook)
	}
}

// walkBlock walks a statement block tracking whether execution is inside a
// tracer-guarded hook region.
func (l *linter) walkBlock(b *ast.BlockStmt, recv string, inHook bool) {
	hooked := inHook
	for _, stmt := range b.List {
		if ifs, ok := stmt.(*ast.IfStmt); ok {
			switch l.guardKind(ifs.Cond, recv) {
			case guardEnabled: // if r.tracer != nil { hook body }
				l.walkBlock(ifs.Body, recv, true)
				if els, ok := ifs.Else.(*ast.BlockStmt); ok {
					l.walkBlock(els, recv, hooked)
				}
				continue
			case guardDisabled: // if r.tracer == nil { return }: the rest is hook code
				l.walkBlock(ifs.Body, recv, hooked)
				if endsInReturn(ifs.Body) {
					hooked = true
				}
				continue
			}
		}
		l.walkStmt(stmt, recv, hooked)
	}
}

type guard int

const (
	guardNone guard = iota
	guardEnabled
	guardDisabled
)

// guardKind classifies `recv.tracer != nil` / `recv.tracer == nil` tests.
func (l *linter) guardKind(cond ast.Expr, recv string) guard {
	bin, ok := cond.(*ast.BinaryExpr)
	if !ok {
		return guardNone
	}
	var sel ast.Expr
	switch {
	case isNil(bin.Y):
		sel = bin.X
	case isNil(bin.X):
		sel = bin.Y
	default:
		return guardNone
	}
	se, ok := sel.(*ast.SelectorExpr)
	if !ok || !tracerFields[se.Sel.Name] {
		return guardNone
	}
	if id, ok := se.X.(*ast.Ident); !ok || id.Name != recv {
		return guardNone
	}
	switch bin.Op {
	case token.NEQ:
		return guardEnabled
	case token.EQL:
		return guardDisabled
	}
	return guardNone
}

func isNil(e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	return ok && id.Name == "nil"
}

func endsInReturn(b *ast.BlockStmt) bool {
	if len(b.List) == 0 {
		return false
	}
	_, ok := b.List[len(b.List)-1].(*ast.ReturnStmt)
	return ok
}

// walkStmt inspects one statement; when hooked, receiver-state writes and
// raw mutator calls are violations.
func (l *linter) walkStmt(stmt ast.Stmt, recv string, hooked bool) {
	ast.Inspect(stmt, func(n ast.Node) bool {
		// Nested blocks re-enter walkBlock so guards inside loops work.
		if inner, ok := n.(*ast.BlockStmt); ok {
			l.walkBlock(inner, recv, hooked)
			return false
		}
		if !hooked {
			return true
		}
		switch x := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range x.Lhs {
				if fld, yes := l.rootedAtRecv(lhs, recv); yes && !tracerFields[fld] {
					l.report(lhs.Pos(), "obs-hook-pure",
						"tracing hook writes receiver state (%s.%s); hooks must only observe", recv, fld)
				}
			}
		case *ast.IncDecStmt:
			if fld, yes := l.rootedAtRecv(x.X, recv); yes && !tracerFields[fld] {
				l.report(x.Pos(), "obs-hook-pure",
					"tracing hook mutates receiver state (%s.%s); hooks must only observe", recv, fld)
			}
		case *ast.CallExpr:
			if sel, ok := x.Fun.(*ast.SelectorExpr); ok && rawMutators[sel.Sel.Name] {
				l.report(x.Pos(), "obs-hook-pure",
					"tracing hook calls raw mutator %s; hooks must only observe", sel.Sel.Name)
			}
		}
		return true
	})
}

// trapSync accumulates the cross-file state for trap-summary-sync: the
// save-area slot and service-code constants declared in
// internal/kernel/layout.go, and every identifier referenced in
// internal/kernel/footprint.go.
type trapSync struct {
	// required maps each layout constant the footprint table must cover to
	// its declaration position.
	required map[string]token.Pos
	// order preserves declaration order for deterministic diagnostics.
	order []string
	// footprintIdents is every identifier appearing in footprint.go.
	footprintIdents map[string]bool
	sawLayout       bool
	sawFootprint    bool
}

// syncExempt are layout constants the footprint table legitimately never
// names: the stride is a sizing constant, not a slot.
var syncExempt = map[string]bool{"saveStride": true}

// collectLayout records the save-slot (save*) and service-code (Trap*)
// constants declared in layout.go.
func (s *trapSync) collectLayout(f *ast.File) {
	s.sawLayout = true
	if s.required == nil {
		s.required = map[string]token.Pos{}
	}
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				n := name.Name
				if syncExempt[n] {
					continue
				}
				if strings.HasPrefix(n, "save") || strings.HasPrefix(n, "Trap") {
					if _, dup := s.required[n]; !dup {
						s.required[n] = name.Pos()
						s.order = append(s.order, n)
					}
				}
			}
		}
	}
}

// collectFootprint records every identifier footprint.go mentions.
func (s *trapSync) collectFootprint(f *ast.File) {
	s.sawFootprint = true
	if s.footprintIdents == nil {
		s.footprintIdents = map[string]bool{}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			s.footprintIdents[id.Name] = true
		}
		return true
	})
}

// check emits one diagnostic per layout constant the footprint table fails
// to reference. Linting a tree that contains neither file is fine (rule
// inapplicable); a layout without a footprint table is one diagnostic.
func (s *trapSync) check(fset *token.FileSet) []Diagnostic {
	if !s.sawLayout {
		return nil
	}
	var diags []Diagnostic
	if !s.sawFootprint {
		var pos token.Pos
		if len(s.order) > 0 {
			pos = s.required[s.order[0]]
		}
		return append(diags, Diagnostic{
			Pos:  fset.Position(pos),
			Rule: "trap-summary-sync",
			Msg:  "internal/kernel/layout.go declares trap and save-area constants but footprint.go is missing: the static analyzer's kernel model has nothing to stay in sync with",
		})
	}
	for _, n := range s.order {
		if !s.footprintIdents[n] {
			diags = append(diags, Diagnostic{
				Pos:  fset.Position(s.required[n]),
				Rule: "trap-summary-sync",
				Msg: fmt.Sprintf("%s is declared in the kernel layout but never referenced by the trap footprint table (footprint.go); add it to the relevant TrapFootprint so the static analyzer models it", n),
			})
		}
	}
	return diags
}

// rootedAtRecv reports whether expr is a selector chain rooted at the
// receiver identifier, returning the first selected field name.
func (l *linter) rootedAtRecv(expr ast.Expr, recv string) (field string, ok bool) {
	for {
		switch x := expr.(type) {
		case *ast.SelectorExpr:
			if id, isID := x.X.(*ast.Ident); isID && id.Name == recv {
				return x.Sel.Name, true
			}
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.ParenExpr:
			expr = x.X
		default:
			return "", false
		}
	}
}
