package separability

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/model"
	"repro/internal/obs"
)

// stateInfo is the per-state precomputation the exhaustive checker works
// from: Φ digests and extracts for every colour, before and after the
// state's operation and after every enumerated input. Colours and inputs
// are indexed positionally (dense slices, not maps): the precompute sweep
// over states×inputs is the dominant cost of exhaustive checking and maps
// were both slower and allocation-heavy.
type stateInfo struct {
	ref    model.StateRef
	colour model.Colour
	op     model.OpID
	phi    []uint64   // Φc(s) digest, per colour index
	phiOp  []uint64   // Φc(op(s)) digest, per colour index
	outEx  []string   // EXTRACT(c, OUTPUT(s)), per colour index
	phiIn  [][]uint64 // [input][colour] Φc(INPUT(s,i)) digest
	inEx   [][]string // [input][colour] EXTRACT(c, i)
}

// CheckExhaustive verifies the six conditions universally over every state
// and input an Enumerable system yields. For a system whose enumerator
// covers its whole (reachable) state space this constitutes a proof of
// separability by explicit-state model checking.
//
// When the system implements model.Replicable, the per-state precomputation
// and the per-colour condition passes are sharded across GOMAXPROCS worker
// goroutines, each on a private replica; the result is identical to the
// single-threaded check. Use CheckExhaustiveWorkers to pin the worker
// count.
func CheckExhaustive(sys model.Enumerable, maxViolations int) *Result {
	return CheckExhaustiveWorkers(sys, maxViolations, runtime.GOMAXPROCS(0))
}

// CheckExhaustiveWorkers is CheckExhaustive with an explicit worker count
// (1 = single-threaded; 0 = one worker per CPU core). Results are identical
// for every worker count.
func CheckExhaustiveWorkers(sys model.Enumerable, maxViolations, workers int) *Result {
	return CheckExhaustiveOpt(sys, ExhaustiveOptions{
		MaxViolations: maxViolations, Workers: workers})
}

// ExhaustiveOptions tunes CheckExhaustiveOpt.
type ExhaustiveOptions struct {
	// MaxViolations stops the check early once this many counterexamples
	// have been collected (0 = 64).
	MaxViolations int
	// Workers shards the precompute sweep and the per-colour passes
	// across this many goroutines (1 = single-threaded; 0 = one per CPU
	// core). Results are identical for every worker count.
	Workers int
	// Metrics, when non-nil, receives live progress counters so a
	// -progress consumer can report percent-of-space completed:
	//
	//	sep_exh_space_total   — precompute units the pass will visit:
	//	                        states × (1 + inputs), published up front
	//	sep_exh_states_total  — units completed so far
	//
	// Attaching a registry never changes the Result.
	Metrics *obs.Registry
}

// CheckExhaustiveOpt is the options form of CheckExhaustive.
func CheckExhaustiveOpt(sys model.Enumerable, opt ExhaustiveOptions) *Result {
	maxViolations, workers := opt.MaxViolations, opt.Workers
	if maxViolations <= 0 {
		maxViolations = 64
	}
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	var states []model.StateRef
	sys.EnumerateStates(func(s model.StateRef) bool {
		states = append(states, s)
		return true
	})
	var inputs []model.Input
	sys.EnumerateInputs(func(i model.Input) bool {
		inputs = append(inputs, i)
		return true
	})
	colours := sys.Colours()

	if workers > len(states) {
		workers = len(states)
	}
	var replicas []model.Enumerable
	if workers > 1 {
		replicas = replicate(sys, workers)
		workers = len(replicas) // 1 when the system is not replicable
	}

	// Progress counters: the space is published before the sweep starts so
	// consumers can compute percent-complete from the first scrape; each
	// precomputed state advances the done counter by its unit weight
	// (1 op pass + one per input).
	unitsPerState := uint64(1 + len(inputs))
	var done *obs.Counter
	if opt.Metrics != nil {
		opt.Metrics.Counter("sep_exh_space_total").Add(uint64(len(states)) * unitsPerState)
		done = opt.Metrics.Counter("sep_exh_states_total")
	}

	// Phase 1: the Restore/Step/ApplyInput sweep over states×inputs,
	// chunked across workers writing disjoint slots of infos.
	infos := make([]*stateInfo, len(states))
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		const chunk = 64
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(rep model.Enumerable) {
				defer wg.Done()
				for {
					lo := int(next.Add(chunk)) - chunk
					if lo >= len(states) {
						return
					}
					hi := lo + chunk
					if hi > len(states) {
						hi = len(states)
					}
					for si := lo; si < hi; si++ {
						infos[si] = precompute(rep, states[si], colours, inputs)
						if done != nil {
							done.Add(unitsPerState)
						}
					}
				}
			}(replicas[w])
		}
		wg.Wait()
	} else {
		for si, ref := range states {
			infos[si] = precompute(sys, ref, colours, inputs)
			if done != nil {
				done.Add(unitsPerState)
			}
		}
	}

	// Phase 2: per-colour condition passes. Each colour's pass is
	// independent given the precomputed infos; it needs a system only to
	// lazily re-derive canonical Φ strings when a violation needs a
	// human-readable Detail. Per-colour Results are merged in colour
	// order, so the outcome does not depend on the worker count.
	perColour := make([]*Result, len(colours))
	if workers > 1 {
		var next atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func(rep model.Enumerable) {
				defer wg.Done()
				for {
					ci := int(next.Add(1)) - 1
					if ci >= len(colours) {
						return
					}
					perColour[ci] = checkColour(rep, ci, colours[ci], infos, inputs, maxViolations)
				}
			}(replicas[w])
		}
		wg.Wait()
	} else {
		for ci, c := range colours {
			perColour[ci] = checkColour(sys, ci, c, infos, inputs, maxViolations)
		}
	}

	res := &Result{Checks: map[Condition]int{}}
	for _, cr := range perColour {
		if len(res.Violations) >= maxViolations {
			break
		}
		res.Merge(cr)
	}
	return res
}

// replicate clones sys up to n times; the original is element 0. A system
// that is not Replicable (or whose Clone fails) yields just the original,
// collapsing the check to single-threaded.
func replicate(sys model.Enumerable, n int) []model.Enumerable {
	out := []model.Enumerable{sys}
	rep, ok := sys.(model.Replicable)
	if !ok {
		return out
	}
	for len(out) < n {
		clone, ok := rep.Clone().(model.Enumerable)
		if !ok || clone == nil {
			return out[:1]
		}
		out = append(out, clone)
	}
	return out
}

// precompute gathers one state's stateInfo on the given system instance.
// The per-input resets anchor on a stateScope so Checkpointer systems pay
// O(words touched) per reset instead of a full Restore.
func precompute(sys model.Enumerable, ref model.StateRef,
	colours []model.Colour, inputs []model.Input) *stateInfo {

	sys.Restore(ref)
	sc := openScopeAt(sys, ref)
	defer sc.close()
	info := &stateInfo{
		ref:    ref,
		colour: sys.Colour(),
		op:     sys.NextOp(),
		phi:    make([]uint64, len(colours)),
		phiOp:  make([]uint64, len(colours)),
		outEx:  make([]string, len(colours)),
		phiIn:  make([][]uint64, len(inputs)),
		inEx:   make([][]string, len(inputs)),
	}
	out := sys.CurrentOutput()
	for ci, c := range colours {
		info.phi[ci] = model.AbstractDigest(sys, c)
		info.outEx[ci] = sys.ExtractOutput(c, out)
	}
	// The footprint shortcut: when the system can prove which colours a
	// mutation touched (model.DirtyTracker over the checkpoint's write
	// journal), untouched colours reuse the anchor digest — Φ^c is a pure
	// function of state the mutation never wrote. Masks wider than 64
	// colours cannot be represented; such systems take the full sweeps.
	wide := len(colours) > 64
	sys.Step()
	opMask, opOK := sc.dirty()
	for ci, c := range colours {
		if opOK && !wide && opMask&(1<<uint(ci)) == 0 {
			info.phiOp[ci] = info.phi[ci]
		} else {
			info.phiOp[ci] = model.AbstractDigest(sys, c)
		}
	}
	for ii, in := range inputs {
		sc.reset()
		phiIn := make([]uint64, len(colours))
		inEx := make([]string, len(colours))
		for ci, c := range colours {
			inEx[ci] = sys.ExtractInput(c, in)
		}
		sys.ApplyInput(in)
		inMask, inOK := sc.dirty()
		for ci, c := range colours {
			if inOK && !wide && inMask&(1<<uint(ci)) == 0 {
				phiIn[ci] = info.phi[ci]
			} else {
				phiIn[ci] = model.AbstractDigest(sys, c)
			}
		}
		info.phiIn[ii] = phiIn
		info.inEx[ii] = inEx
	}
	return info
}

// The lazy string re-derivations for violation Details: each restores the
// relevant state on sys and renders the canonical encoding the stored
// digest summarizes. Violations are cold, so the extra Restore/Abstract
// round trips cost nothing on passing checks.

func phiAt(sys model.Enumerable, ref model.StateRef, c model.Colour) string {
	sys.Restore(ref)
	return sys.Abstract(c)
}

func phiOpAt(sys model.Enumerable, ref model.StateRef, c model.Colour) string {
	sys.Restore(ref)
	sys.Step()
	return sys.Abstract(c)
}

func phiInAt(sys model.Enumerable, ref model.StateRef, in model.Input, c model.Colour) string {
	sys.Restore(ref)
	sys.ApplyInput(in)
	return sys.Abstract(c)
}

// checkColour runs every condition pass for one colour over the
// precomputed state table, accumulating into a private Result capped at
// maxViolations. sys is used only for lazy Detail re-derivation.
func checkColour(sys model.Enumerable, ci int, c model.Colour,
	infos []*stateInfo, inputs []model.Input, maxViolations int) *Result {

	res := &Result{Checks: map[Condition]int{}}
	tooMany := func() bool { return len(res.Violations) >= maxViolations }

	// cls memoizes operation classes: OpIDs repeat heavily across states,
	// and classification may decode instruction words.
	opClass := map[model.OpID]string{}
	cls := func(op model.OpID) string {
		s, ok := opClass[op]
		if !ok {
			s = model.OpClass(sys, op)
			opClass[op] = s
		}
		return s
	}

	// Condition 2 (single-state).
	for si, info := range infos {
		if info.colour == c {
			continue
		}
		res.count(Condition2)
		res.countOp(cls(info.op), 1)
		if info.phiOp[ci] != info.phi[ci] {
			res.add(Violation{Condition: Condition2, Colour: c, Op: info.op,
				Step: si, Want: info.phi[ci], Got: info.phiOp[ci],
				Detail: diffDetail(phiAt(sys, info.ref, c), phiOpAt(sys, info.ref, c))})
			if tooMany() {
				return res
			}
		}
	}

	// Pairwise conditions: bucket states by Φc digest. Buckets are
	// processed in order of their first member so violation order is a
	// pure function of the enumeration (Go map iteration is randomized).
	buckets := map[uint64][]int{}
	for si, info := range infos {
		buckets[info.phi[ci]] = append(buckets[info.phi[ci]], si)
	}
	for leadSi, leadInfo := range infos {
		bucket := buckets[leadInfo.phi[ci]]
		if bucket[0] != leadSi {
			continue
		}
		lead := infos[bucket[0]]
		for _, si := range bucket[1:] {
			info := infos[si]

			// One condition-5 check plus one condition-3 check per input,
			// all attributed to this member's operation.
			res.countOp(cls(info.op), 1+len(inputs))

			// Condition 5: outputs agree across the bucket.
			res.count(Condition5)
			if info.outEx[ci] != lead.outEx[ci] {
				res.add(Violation{Condition: Condition5, Colour: c, Op: info.op,
					Step: si,
					Want: model.DigestString(lead.outEx[ci]), Got: model.DigestString(info.outEx[ci]),
					Detail: fmt.Sprintf("EXTRACT(c,OUTPUT) %q vs %q",
						lead.outEx[ci], info.outEx[ci])})
			}

			// Condition 3: inputs act congruently across the bucket.
			for ii := range inputs {
				res.count(Condition3)
				if info.phiIn[ii][ci] != lead.phiIn[ii][ci] {
					res.add(Violation{Condition: Condition3, Colour: c, Op: info.op,
						Step: si, Want: lead.phiIn[ii][ci], Got: info.phiIn[ii][ci],
						Detail: fmt.Sprintf("input %d: %s", ii,
							diffDetail(phiInAt(sys, lead.ref, inputs[ii], c),
								phiInAt(sys, info.ref, inputs[ii], c)))})
				}
			}
			if tooMany() {
				return res
			}
		}

		// Conditions 1 and 6 apply to the sub-bucket with COLOUR=c.
		var activeIdx []int
		for _, si := range bucket {
			if infos[si].colour == c {
				activeIdx = append(activeIdx, si)
			}
		}
		if len(activeIdx) > 1 {
			lead := infos[activeIdx[0]]
			for _, si := range activeIdx[1:] {
				info := infos[si]
				res.countOp(cls(info.op), 2)
				res.count(Condition6)
				if info.op != lead.op {
					res.add(Violation{Condition: Condition6, Colour: c, Op: info.op,
						Step: si,
						Want: model.DigestString(string(lead.op)), Got: model.DigestString(string(info.op)),
						Detail: fmt.Sprintf("NEXTOP %q vs %q", lead.op, info.op)})
				}
				res.count(Condition1)
				if info.phiOp[ci] != lead.phiOp[ci] {
					res.add(Violation{Condition: Condition1, Colour: c, Op: info.op,
						Step: si, Want: lead.phiOp[ci], Got: info.phiOp[ci],
						Detail: diffDetail(phiOpAt(sys, lead.ref, c),
							phiOpAt(sys, info.ref, c))})
				}
				if tooMany() {
					return res
				}
			}
		}
	}

	// Condition 4: per state, inputs grouped by EXTRACT(c, i).
	for si, info := range infos {
		groups := map[string]int{}
		checked := 0
		for ii := range inputs {
			key := info.inEx[ii][ci]
			if first, ok := groups[key]; ok {
				res.count(Condition4)
				checked++
				if info.phiIn[ii][ci] != info.phiIn[first][ci] {
					res.add(Violation{Condition: Condition4, Colour: c, Op: info.op,
						Step: si, Want: info.phiIn[first][ci], Got: info.phiIn[ii][ci],
						Detail: fmt.Sprintf("inputs %d and %d extract-equal but act differently",
							first, ii)})
					if tooMany() {
						res.countOp(cls(info.op), checked)
						return res
					}
				}
			} else {
				groups[key] = ii
			}
		}
		res.countOp(cls(info.op), checked)
	}
	return res
}
