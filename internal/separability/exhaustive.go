package separability

import (
	"fmt"

	"repro/internal/model"
)

// CheckExhaustive verifies the six conditions universally over every state
// and input an Enumerable system yields. For a system whose enumerator
// covers its whole (reachable) state space this constitutes a proof of
// separability by explicit-state model checking.
func CheckExhaustive(sys model.Enumerable, maxViolations int) *Result {
	if maxViolations <= 0 {
		maxViolations = 64
	}
	res := &Result{Checks: map[Condition]int{}}

	var states []model.StateRef
	sys.EnumerateStates(func(s model.StateRef) bool {
		states = append(states, s)
		return true
	})
	var inputs []model.Input
	sys.EnumerateInputs(func(i model.Input) bool {
		inputs = append(inputs, i)
		return true
	})

	type stateInfo struct {
		ref    model.StateRef
		colour model.Colour
		op     model.OpID
		phi    map[model.Colour]string // Φc(s)
		phiOp  map[model.Colour]string // Φc(op(s))
		outEx  map[model.Colour]string // EXTRACT(c, OUTPUT(s))
		phiIn  []map[model.Colour]string
		inEx   []map[model.Colour]string // EXTRACT(c, i) per input
	}

	colours := sys.Colours()
	infos := make([]*stateInfo, 0, len(states))
	for _, ref := range states {
		sys.Restore(ref)
		info := &stateInfo{
			ref:    ref,
			colour: sys.Colour(),
			op:     sys.NextOp(),
			phi:    map[model.Colour]string{},
			phiOp:  map[model.Colour]string{},
			outEx:  map[model.Colour]string{},
		}
		out := sys.CurrentOutput()
		for _, c := range colours {
			info.phi[c] = sys.Abstract(c)
			info.outEx[c] = sys.ExtractOutput(c, out)
		}
		sys.Step()
		for _, c := range colours {
			info.phiOp[c] = sys.Abstract(c)
		}
		for ii, in := range inputs {
			sys.Restore(ref)
			phiIn := map[model.Colour]string{}
			inEx := map[model.Colour]string{}
			for _, c := range colours {
				inEx[c] = sys.ExtractInput(c, in)
			}
			sys.ApplyInput(in)
			for _, c := range colours {
				phiIn[c] = sys.Abstract(c)
			}
			info.phiIn = append(info.phiIn, phiIn)
			info.inEx = append(info.inEx, inEx)
			_ = ii
		}
		infos = append(infos, info)
	}

	tooMany := func() bool { return len(res.Violations) >= maxViolations }

	// Condition 2 (single-state) per colour.
	for _, c := range colours {
		for si, info := range infos {
			if info.colour == c {
				continue
			}
			res.count(Condition2)
			if info.phiOp[c] != info.phi[c] {
				res.add(Violation{Condition: Condition2, Colour: c, Op: info.op,
					Step: si, Detail: diffDetail(info.phi[c], info.phiOp[c])})
				if tooMany() {
					return res
				}
			}
		}
	}

	// Pairwise conditions: bucket states by Φc.
	for _, c := range colours {
		buckets := map[string][]int{}
		for si, info := range infos {
			buckets[info.phi[c]] = append(buckets[info.phi[c]], si)
		}
		for _, bucket := range buckets {
			lead := infos[bucket[0]]
			for _, si := range bucket[1:] {
				info := infos[si]

				// Condition 5: outputs agree across the bucket.
				res.count(Condition5)
				if info.outEx[c] != lead.outEx[c] {
					res.add(Violation{Condition: Condition5, Colour: c, Op: info.op,
						Step: si, Detail: fmt.Sprintf("EXTRACT(c,OUTPUT) %q vs %q",
							lead.outEx[c], info.outEx[c])})
				}

				// Condition 3: inputs act congruently across the bucket.
				for ii := range inputs {
					res.count(Condition3)
					if info.phiIn[ii][c] != lead.phiIn[ii][c] {
						res.add(Violation{Condition: Condition3, Colour: c, Op: info.op,
							Step: si, Detail: fmt.Sprintf("input %d: %s", ii,
								diffDetail(lead.phiIn[ii][c], info.phiIn[ii][c]))})
					}
				}
				if tooMany() {
					return res
				}
			}

			// Conditions 1 and 6 apply to the sub-bucket with COLOUR=c.
			var activeIdx []int
			for _, si := range bucket {
				if infos[si].colour == c {
					activeIdx = append(activeIdx, si)
				}
			}
			if len(activeIdx) > 1 {
				lead := infos[activeIdx[0]]
				for _, si := range activeIdx[1:] {
					info := infos[si]
					res.count(Condition6)
					if info.op != lead.op {
						res.add(Violation{Condition: Condition6, Colour: c, Op: info.op,
							Step: si, Detail: fmt.Sprintf("NEXTOP %q vs %q", lead.op, info.op)})
					}
					res.count(Condition1)
					if info.phiOp[c] != lead.phiOp[c] {
						res.add(Violation{Condition: Condition1, Colour: c, Op: info.op,
							Step: si, Detail: diffDetail(lead.phiOp[c], info.phiOp[c])})
					}
					if tooMany() {
						return res
					}
				}
			}
		}

		// Condition 4: per state, inputs grouped by EXTRACT(c, i).
		for si, info := range infos {
			groups := map[string]int{}
			for ii := range inputs {
				key := info.inEx[ii][c]
				if first, ok := groups[key]; ok {
					res.count(Condition4)
					if info.phiIn[ii][c] != info.phiIn[first][c] {
						res.add(Violation{Condition: Condition4, Colour: c, Op: info.op,
							Step: si, Detail: fmt.Sprintf("inputs %d and %d extract-equal but act differently",
								first, ii)})
						if tooMany() {
							return res
						}
					}
				} else {
					groups[key] = ii
				}
			}
		}
	}
	return res
}
