package separability

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
)

// The exhaustive checker sweeps the enumerated state space in fixed-size
// chunks of consecutive states and checks every condition for every colour
// at each state. Chunks are the unit of work distribution (worker
// goroutines claim them from an atomic counter), of sharding (a shard is a
// contiguous chunk range, so `sepverify -shard k/n` processes run disjoint
// ranges of the same partition) and of checkpointing (completed-chunk
// frontier plus partial per-colour results).
//
// The pairwise conditions (1, 3, 5, 6) quantify over Φc-equal state PAIRS,
// which cross any contiguous partition. To keep sharding exact, a cheap
// sequential-order pass first digests Φc of every state for every colour
// and elects, per (colour, digest) bucket, a canonical LEAD state: the
// bucket member with the smallest enumeration index (and, for conditions 1
// and 6, the smallest member with COLOUR=c). Only the lead states are
// materialized as full stateInfo records; the chunk sweep then compares
// each state against its bucket's lead. Equality against the lead is
// equivalent to pairwise equality across the bucket (equality is
// transitive), every non-lead member performs exactly one comparison, and
// the comparison a state performs depends only on global enumeration order
// — so concatenating per-chunk results in chunk order reproduces the
// unsharded sweep exactly, at any shard x worker count.
//
// MaxViolations does not stop the sweep early: condition *counts* always
// cover the full space, and violation construction is merely suppressed
// once a per-chunk per-colour result holds MaxViolations entries for the
// violation's condition. The cap is per condition, so every condition that
// is violated anywhere keeps its first counterexamples — ViolatedConditions
// is exact, not an artifact of which violations happened to fill a global
// cap first. Per-condition prefix-truncation is associative and
// order-stable, so folding chunk results into shard accumulators, shard
// files into the combined Result, and per-colour results into the final
// verdict all commute with the cap — the surviving violations are
// identical however the space was partitioned.
type stateInfo struct {
	ref    model.StateRef
	colour model.Colour
	op     model.OpID
	phi    []uint64   // Φc(s) digest, per colour index
	phiOp  []uint64   // Φc(op(s)) digest, per colour index
	outEx  []uint64   // digest of EXTRACT(c, OUTPUT(s)), per colour index
	phiIn  [][]uint64 // [input][colour] Φc(INPUT(s,i)) digest
	inEx   [][]uint64 // [input][colour] digest of EXTRACT(c, i)
}

// CheckExhaustive verifies the six conditions universally over every state
// and input an Enumerable system yields. For a system whose enumerator
// covers its whole (reachable) state space this constitutes a proof of
// separability by explicit-state model checking.
//
// When the system implements model.Replicable, the sweep is sharded across
// GOMAXPROCS worker goroutines, each on a private replica; the result is
// identical to the single-threaded check. Use CheckExhaustiveWorkers to pin
// the worker count.
func CheckExhaustive(sys model.Enumerable, maxViolations int) *Result {
	return CheckExhaustiveWorkers(sys, maxViolations, runtime.GOMAXPROCS(0))
}

// CheckExhaustiveWorkers is CheckExhaustive with an explicit worker count
// (1 = single-threaded; 0 = one worker per CPU core). Results are identical
// for every worker count.
func CheckExhaustiveWorkers(sys model.Enumerable, maxViolations, workers int) *Result {
	return CheckExhaustiveOpt(sys, ExhaustiveOptions{
		MaxViolations: maxViolations, Workers: workers})
}

// defaultChunkSize is the per-claim state count when ExhaustiveOptions
// leaves ChunkSize zero. It is also the checkpoint granularity.
const defaultChunkSize = 64

// ExhaustiveOptions tunes CheckExhaustiveOpt / CheckExhaustiveShard.
type ExhaustiveOptions struct {
	// MaxViolations caps how many counterexamples are collected PER
	// CONDITION (0 = 64), so every violated condition surfaces even when
	// another condition fails at millions of states. The sweep itself
	// always covers the full space — the cap suppresses violation
	// construction, never checking — so results stay identical at any
	// shard x worker x chunk arrangement.
	MaxViolations int
	// Workers shards the sweeps across this many goroutines
	// (1 = single-threaded; 0 = one per CPU core). The count is clamped to
	// the number of chunks, so small systems never pay for replicas that
	// would have no work. Results are identical for every worker count.
	Workers int
	// Metrics, when non-nil, receives live progress counters so a
	// -progress consumer can report percent-of-space completed:
	//
	//	sep_exh_space_total   — check units this shard will visit:
	//	                        shard states × (1 + inputs), published up
	//	                        front (resumed work counts as visited)
	//	sep_exh_states_total  — units completed so far
	//
	// Attaching a registry never changes the Result.
	Metrics *obs.Registry

	// Shard/Shards select one shard of a deterministic partition of the
	// chunked state space: shard k of n covers chunk range
	// [k*nChunks/n, (k+1)*nChunks/n). Zero values mean the whole space
	// (shard 0 of 1). Merging the n shard results in shard order
	// (MergeShards) is byte-identical to the unsharded run.
	Shard, Shards int
	// ChunkSize is the number of consecutive states per work chunk
	// (0 = 64). Every shard of one partition must use the same value; it
	// is recorded in shard artifacts and validated on merge and resume.
	ChunkSize int
	// Checkpoint, when non-empty, names a file that persists the
	// completed-chunk frontier plus partial per-colour results, rewritten
	// atomically every CheckpointEvery folded chunks. A rerun pointed at
	// the same file validates it (content-addressed ID plus parameter
	// match; tampered or mismatched files are rejected with an error) and
	// resumes after the frontier, producing the identical ShardResult.
	Checkpoint string
	// CheckpointEvery is the checkpoint cadence in folded chunks (0 = 8).
	CheckpointEvery int
	// Target names the system being swept; it is stamped into shard
	// artifacts so results from different targets cannot be merged or
	// resumed into each other.
	Target string

	// AbortAfterChunks, when positive, stops the run with ErrAborted after
	// this many chunks have been folded this run, writing a final
	// checkpoint first (testing lever: simulates a kill at a chosen point).
	AbortAfterChunks int
	// ChunkDelay sleeps this long before processing each claimed chunk
	// (testing/fleet-smoke lever: slows the sweep so externally timed
	// kills land mid-run).
	ChunkDelay time.Duration
}

// ErrAborted reports that CheckExhaustiveShard stopped early because
// ExhaustiveOptions.AbortAfterChunks was reached; if a checkpoint file is
// configured, the partial progress has been persisted to it.
var ErrAborted = errors.New("separability: exhaustive sweep aborted after configured chunk budget")

// CheckExhaustiveOpt is the options form of CheckExhaustive, for complete
// in-process runs. It panics on errors, which for full sweeps can only be
// option misuse (an invalid shard spec, an unusable checkpoint file) —
// process-level drivers that need error handling use CheckExhaustiveShard.
func CheckExhaustiveOpt(sys model.Enumerable, opt ExhaustiveOptions) *Result {
	sr, err := CheckExhaustiveShard(sys, opt)
	if err != nil {
		panic("separability: CheckExhaustiveOpt: " + err.Error())
	}
	res, err := sr.Result()
	if err != nil {
		panic("separability: CheckExhaustiveOpt: " + err.Error())
	}
	return res
}

// CheckExhaustiveShard runs one shard of the exhaustive sweep (the whole
// space when Shards <= 1) and returns its sealed, content-addressed
// ShardResult. Checkpoint resume, sharding and worker parallelism all
// compose: the merged result is byte-identical however the sweep was cut.
func CheckExhaustiveShard(sys model.Enumerable, opt ExhaustiveOptions) (*ShardResult, error) {
	maxViolations := opt.MaxViolations
	if maxViolations <= 0 {
		maxViolations = 64
	}
	workers := opt.Workers
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	chunkSize := opt.ChunkSize
	if chunkSize <= 0 {
		chunkSize = defaultChunkSize
	}
	shard, shards := opt.Shard, opt.Shards
	if shards == 0 {
		shards = 1
	}
	if shard < 0 || shard >= shards {
		return nil, fmt.Errorf("separability: invalid shard %d/%d", shard, shards)
	}
	ckEvery := opt.CheckpointEvery
	if ckEvery <= 0 {
		ckEvery = 8
	}

	var states []model.StateRef
	sys.EnumerateStates(func(s model.StateRef) bool {
		states = append(states, s)
		return true
	})
	var inputs []model.Input
	sys.EnumerateInputs(func(i model.Input) bool {
		inputs = append(inputs, i)
		return true
	})
	colours := sys.Colours()
	nc := len(colours)

	nChunks := (len(states) + chunkSize - 1) / chunkSize
	startChunk := shard * nChunks / shards
	endChunk := (shard + 1) * nChunks / shards
	params := ShardParams{
		Target: opt.Target, Shard: shard, Shards: shards,
		ChunkSize: chunkSize, MaxViolations: maxViolations,
		States: len(states), Inputs: len(inputs), Colours: colourNames(colours),
	}

	// Resume: load, validate and adopt any prior checkpoint before paying
	// for the sweeps. A missing file is a cold start; an invalid or
	// mismatched one is an error, never a silent restart.
	frontier := startChunk
	acc := make([]*Result, nc)
	for ci := range acc {
		acc[ci] = &Result{Checks: map[Condition]int{}}
	}
	if opt.Checkpoint != "" {
		ck, err := ReadShardCheckpoint(opt.Checkpoint)
		if err != nil {
			return nil, err
		}
		if ck != nil {
			if err := ck.ShardParams.sameSweep(params); err != nil {
				return nil, fmt.Errorf("separability: checkpoint %s: %w", opt.Checkpoint, err)
			}
			if ck.Shard != shard {
				return nil, fmt.Errorf("separability: checkpoint %s: shard %d, want %d",
					opt.Checkpoint, ck.Shard, shard)
			}
			frontier = ck.Frontier
			for ci := range acc {
				r, err := ck.PerColour[ci].result()
				if err != nil {
					return nil, fmt.Errorf("separability: checkpoint %s: colour %d: %w",
						opt.Checkpoint, ci, err)
				}
				acc[ci] = r
			}
		}
	}

	// Progress counters: the shard's own unit space is published before the
	// sweep starts, and resumed work is credited immediately, so consumers
	// can compute percent-complete from the first scrape.
	unitsPerState := uint64(1 + len(inputs))
	var done *obs.Counter
	if opt.Metrics != nil {
		opt.Metrics.Counter("sep_exh_space_total").
			Add(uint64(statesInChunks(startChunk, endChunk, chunkSize, len(states))) * unitsPerState)
		done = opt.Metrics.Counter("sep_exh_states_total")
		if n := statesInChunks(startChunk, frontier, chunkSize, len(states)); n > 0 {
			done.Add(uint64(n) * unitsPerState)
		}
	}

	// Chunks are the unit of parallelism: clamp the worker count so small
	// systems never spin up replicas that would claim nothing.
	if workers > nChunks {
		workers = nChunks
	}
	if workers < 1 {
		workers = 1
	}
	replicas := []model.Enumerable{sys}
	if workers > 1 {
		replicas = replicate(sys, workers)
	}

	// Pass 0: anchor Φ digests of EVERY state for every colour, plus the
	// lead-table election. This pass is shard-independent — every shard
	// derives the same global pairing structure, which is what makes a
	// contiguous chunk range an exact slice of the unsharded sweep.
	phi0 := make([]uint64, len(states)*nc)
	cols := make([]model.Colour, len(states))
	runChunks(replicas, nChunks, func(rep model.Enumerable, cj int) {
		lo, hi := chunkBounds(cj, chunkSize, len(states))
		for si := lo; si < hi; si++ {
			rep.Restore(states[si])
			cols[si] = rep.Colour()
			for ci, c := range colours {
				phi0[si*nc+ci] = model.AbstractDigest(rep, c)
			}
		}
	})
	leads := make([]map[uint64]*leadEnt, nc)
	needed := map[int]bool{}
	for ci := range colours {
		m := make(map[uint64]*leadEnt)
		for si := range states {
			d := phi0[si*nc+ci]
			e := m[d]
			if e == nil {
				e = &leadEnt{leadSi: si, activeSi: -1}
				m[d] = e
			}
			e.n++
			if cols[si] == colours[ci] {
				if e.activeSi < 0 {
					e.activeSi = si
				}
				e.nActive++
			}
		}
		for _, e := range m {
			if e.n >= 2 {
				needed[e.leadSi] = true
			}
			if e.nActive >= 2 {
				needed[e.activeSi] = true
			}
		}
		leads[ci] = m
	}
	cols = nil

	// Materialize full stateInfo for just the lead states (only buckets
	// with a second member need one) — the O(leads) resident set that
	// replaces the old O(space) whole-table precompute.
	neededSis := make([]int, 0, len(needed))
	for si := range needed {
		neededSis = append(neededSis, si)
	}
	sort.Ints(neededSis)
	leadBySi := make(map[int]*stateInfo, len(neededSis))
	leadInfos := make([]*stateInfo, len(neededSis))
	runChunks(replicas, (len(neededSis)+chunkSize-1)/chunkSize, func(rep model.Enumerable, cj int) {
		lo, hi := chunkBounds(cj, chunkSize, len(neededSis))
		for k := lo; k < hi; k++ {
			si := neededSis[k]
			info := &stateInfo{}
			precomputeInto(rep, states[si], colours, inputs, phi0[si*nc:(si+1)*nc], info)
			leadInfos[k] = info
		}
	})
	for k, si := range neededSis {
		leadBySi[si] = leadInfos[k]
	}

	e := &exhEngine{
		colours: colours, inputs: inputs,
		leads: leads, leadBySi: leadBySi,
		maxViolations: maxViolations,
	}

	// The chunk sweep: workers claim chunks from the shard's frontier, each
	// precomputing states into one pooled stateInfo and checking them
	// in place; the folder merges finished chunks strictly in chunk order
	// and persists the checkpoint at the configured cadence.
	folder := &chunkFolder{
		pending: map[int][]*Result{}, frontier: frontier, endChunk: endChunk,
		acc: acc, max: maxViolations, abortAfter: opt.AbortAfterChunks,
		ckPath: opt.Checkpoint, ckEvery: ckEvery,
		mkCk: func(frontier int, acc []*Result, doneFlag bool) *ShardCheckpoint {
			return newShardCheckpoint(params, startChunk, endChunk, frontier, doneFlag, acc)
		},
	}
	var claim atomic.Int64
	claim.Store(int64(frontier))
	work := func(rep model.Enumerable) {
		var info stateInfo
		groups := make(map[uint64]int, len(inputs))
		opClass := map[model.OpID]string{}
		cls := func(op model.OpID) string {
			s, ok := opClass[op]
			if !ok {
				s = model.OpClass(rep, op)
				opClass[op] = s
			}
			return s
		}
		for {
			if folder.stopped() {
				return
			}
			cj := int(claim.Add(1)) - 1
			if cj >= endChunk {
				return
			}
			if opt.ChunkDelay > 0 {
				time.Sleep(opt.ChunkDelay)
			}
			perColour := make([]*Result, nc)
			for ci := range perColour {
				perColour[ci] = &Result{Checks: map[Condition]int{}}
			}
			lo, hi := chunkBounds(cj, chunkSize, len(states))
			for si := lo; si < hi; si++ {
				precomputeInto(rep, states[si], colours, inputs, phi0[si*nc:(si+1)*nc], &info)
				e.checkState(rep, cls, groups, si, &info, perColour)
				if done != nil {
					done.Add(unitsPerState)
				}
			}
			folder.deliver(cj, perColour)
		}
	}
	if len(replicas) == 1 {
		work(replicas[0])
	} else {
		var wg sync.WaitGroup
		for _, rep := range replicas {
			wg.Add(1)
			go func(rep model.Enumerable) {
				defer wg.Done()
				work(rep)
			}(rep)
		}
		wg.Wait()
	}
	if folder.err != nil {
		return nil, folder.err
	}
	if folder.stop {
		return nil, ErrAborted
	}

	sr := &ShardResult{
		Version: ShardSchemaVersion, Kind: KindShardResult, ShardParams: params,
		StartChunk: startChunk, EndChunk: endChunk, PerColour: resultRecords(acc),
	}
	if err := sr.seal(); err != nil {
		return nil, err
	}
	if opt.Checkpoint != "" {
		if err := writeShardCheckpoint(opt.Checkpoint,
			newShardCheckpoint(params, startChunk, endChunk, endChunk, true, acc)); err != nil {
			return nil, err
		}
	}
	return sr, nil
}

// leadEnt is one (colour, Φ-digest) bucket of the lead table: its size, its
// lead (first member in enumeration order) and the first member whose
// COLOUR is the bucket's colour (the reference for conditions 1 and 6).
type leadEnt struct {
	leadSi, activeSi int
	n, nActive       int
}

// exhEngine bundles the read-only sweep context the per-state check needs.
type exhEngine struct {
	colours       []model.Colour
	inputs        []model.Input
	leads         []map[uint64]*leadEnt
	leadBySi      map[int]*stateInfo
	maxViolations int
}

// checkState runs every condition for every colour at one state, appending
// to the chunk's per-colour results. The condition order per (state,
// colour) is fixed — 2, 5, 3 per input, 6, 1, 4 — so violation order is a
// pure function of enumeration order, independent of chunking. sys is used
// only for lazy Detail re-derivation on the cold violation path; groups is
// a caller-owned scratch map reused across states.
func (e *exhEngine) checkState(sys model.Enumerable, cls func(model.OpID) string,
	groups map[uint64]int, si int, info *stateInfo, out []*Result) {

	for ci, c := range e.colours {
		res := out[ci]
		ent := e.leads[ci][info.phi[ci]]

		// Condition 2: an operation on another colour's behalf leaves Φc
		// unchanged (single-state check).
		if info.colour != c {
			res.count(Condition2)
			res.countOp(cls(info.op), 1)
			if info.phiOp[ci] != info.phi[ci] {
				e.addCapped(res, Violation{Condition: Condition2, Colour: c, Op: info.op,
					Step: si, Want: info.phi[ci], Got: info.phiOp[ci],
					Detail: diffDetail(phiAt(sys, info.ref, c), phiOpAt(sys, info.ref, c))})
			}
		}

		// Pairwise conditions against the bucket lead; the lead itself has
		// nothing to compare against.
		if ent.n >= 2 && si != ent.leadSi {
			lead := e.leadBySi[ent.leadSi]
			res.countOp(cls(info.op), 1+len(e.inputs))

			// Condition 5: outputs agree across the bucket.
			res.count(Condition5)
			if info.outEx[ci] != lead.outEx[ci] {
				e.addCapped(res, Violation{Condition: Condition5, Colour: c, Op: info.op,
					Step: si, Want: lead.outEx[ci], Got: info.outEx[ci],
					Detail: fmt.Sprintf("EXTRACT(c,OUTPUT) %q vs %q",
						outExAt(sys, lead.ref, c), outExAt(sys, info.ref, c))})
			}

			// Condition 3: inputs act congruently across the bucket.
			for ii := range e.inputs {
				res.count(Condition3)
				if info.phiIn[ii][ci] != lead.phiIn[ii][ci] {
					e.addCapped(res, Violation{Condition: Condition3, Colour: c, Op: info.op,
						Step: si, Want: lead.phiIn[ii][ci], Got: info.phiIn[ii][ci],
						Detail: fmt.Sprintf("input %d: %s", ii,
							diffDetail(phiInAt(sys, lead.ref, e.inputs[ii], c),
								phiInAt(sys, info.ref, e.inputs[ii], c)))})
				}
			}
		}

		// Conditions 6 and 1 against the bucket's first COLOUR=c member.
		if info.colour == c && ent.nActive >= 2 && si != ent.activeSi {
			aLead := e.leadBySi[ent.activeSi]
			res.countOp(cls(info.op), 2)
			res.count(Condition6)
			if info.op != aLead.op {
				e.addCapped(res, Violation{Condition: Condition6, Colour: c, Op: info.op,
					Step: si,
					Want: model.DigestString(string(aLead.op)), Got: model.DigestString(string(info.op)),
					Detail: fmt.Sprintf("NEXTOP %q vs %q", aLead.op, info.op)})
			}
			res.count(Condition1)
			if info.phiOp[ci] != aLead.phiOp[ci] {
				e.addCapped(res, Violation{Condition: Condition1, Colour: c, Op: info.op,
					Step: si, Want: aLead.phiOp[ci], Got: info.phiOp[ci],
					Detail: diffDetail(phiOpAt(sys, aLead.ref, c), phiOpAt(sys, info.ref, c))})
			}
		}

		// Condition 4: this state's inputs grouped by EXTRACT(c, i).
		clear(groups)
		checked := 0
		for ii := range e.inputs {
			key := info.inEx[ii][ci]
			if first, ok := groups[key]; ok {
				res.count(Condition4)
				checked++
				if info.phiIn[ii][ci] != info.phiIn[first][ci] {
					e.addCapped(res, Violation{Condition: Condition4, Colour: c, Op: info.op,
						Step: si, Want: info.phiIn[first][ci], Got: info.phiIn[ii][ci],
						Detail: fmt.Sprintf("inputs %d and %d extract-equal but act differently",
							first, ii)})
				}
			} else {
				groups[key] = ii
			}
		}
		res.countOp(cls(info.op), checked)
	}
}

// addCapped appends unless the chunk-colour result already holds the
// per-condition cap for v's condition (the scan is cold: it only runs when
// a violation was found, and chunk results are bounded); counting is
// unaffected, so suppression composes with any partitioning.
func (e *exhEngine) addCapped(res *Result, v Violation) {
	n := 0
	for i := range res.Violations {
		if res.Violations[i].Condition == v.Condition {
			if n++; n >= e.maxViolations {
				return
			}
		}
	}
	res.add(v)
}

// chunkFolder merges finished chunks into the shard's per-colour
// accumulators strictly in chunk order (out-of-order deliveries wait in
// pending), truncating each colour to the violation cap, and persists the
// checkpoint at the configured cadence under the same lock.
type chunkFolder struct {
	mu         sync.Mutex
	pending    map[int][]*Result
	frontier   int
	endChunk   int
	acc        []*Result
	max        int
	foldedRun  int
	abortAfter int
	stop       bool
	ckPath     string
	ckEvery    int
	sinceCk    int
	mkCk       func(frontier int, acc []*Result, done bool) *ShardCheckpoint
	err        error
}

func (f *chunkFolder) stopped() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stop
}

func (f *chunkFolder) deliver(cj int, perColour []*Result) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.stop {
		return
	}
	f.pending[cj] = perColour
	for {
		next, ok := f.pending[f.frontier]
		if !ok {
			break
		}
		delete(f.pending, f.frontier)
		for ci, cr := range next {
			f.acc[ci].Merge(cr)
			f.acc[ci].Violations = truncatePerCondition(f.acc[ci].Violations, f.max)
		}
		f.frontier++
		f.foldedRun++
		f.sinceCk++
	}
	aborting := f.abortAfter > 0 && f.foldedRun >= f.abortAfter && f.frontier < f.endChunk
	if f.ckPath != "" && f.sinceCk > 0 && (f.sinceCk >= f.ckEvery || aborting) {
		if err := writeShardCheckpoint(f.ckPath, f.mkCk(f.frontier, f.acc, false)); err != nil {
			if f.err == nil {
				f.err = err
			}
			f.stop = true
			return
		}
		f.sinceCk = 0
	}
	if aborting {
		f.stop = true
	}
}

// runChunks claims chunk indices [0, n) across one goroutine per replica
// (inline when there is only one).
func runChunks(replicas []model.Enumerable, n int, fn func(rep model.Enumerable, cj int)) {
	if len(replicas) == 1 {
		for cj := 0; cj < n; cj++ {
			fn(replicas[0], cj)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for _, rep := range replicas {
		wg.Add(1)
		go func(rep model.Enumerable) {
			defer wg.Done()
			for {
				cj := int(next.Add(1)) - 1
				if cj >= n {
					return
				}
				fn(rep, cj)
			}
		}(rep)
	}
	wg.Wait()
}

// chunkBounds returns chunk cj's state range clipped to n states.
func chunkBounds(cj, chunkSize, n int) (int, int) {
	lo := cj * chunkSize
	hi := lo + chunkSize
	if hi > n {
		hi = n
	}
	return lo, hi
}

// statesInChunks counts the states covered by chunk range [lo, hi).
func statesInChunks(lo, hi, chunkSize, states int) int {
	a := min(lo*chunkSize, states)
	b := min(hi*chunkSize, states)
	return b - a
}

// replicate clones sys up to n times; the original is element 0. A system
// that is not Replicable (or whose Clone fails) yields just the original,
// collapsing the check to single-threaded.
func replicate(sys model.Enumerable, n int) []model.Enumerable {
	out := []model.Enumerable{sys}
	rep, ok := sys.(model.Replicable)
	if !ok {
		return out
	}
	for len(out) < n {
		clone, ok := rep.Clone().(model.Enumerable)
		if !ok || clone == nil {
			return out[:1]
		}
		out = append(out, clone)
	}
	return out
}

// precomputeInto gathers one state's stateInfo on the given system instance
// into info, reusing info's backing slices when they are large enough (the
// chunk sweep recycles one buffer per worker across every state it
// processes). Anchor Φ digests come from phiAnchor, the caller's pass-0
// row, so the sweep pays only the post-op and post-input digests. All
// extracts are stored as FNV-64 digests; canonical strings are re-derived
// lazily on the cold violation path. The per-input resets anchor on a
// stateScope so Checkpointer systems pay O(words touched) per reset
// instead of a full Restore.
func precomputeInto(sys model.Enumerable, ref model.StateRef,
	colours []model.Colour, inputs []model.Input, phiAnchor []uint64, info *stateInfo) {

	nc, ni := len(colours), len(inputs)
	info.ref = ref
	info.phi = append(info.phi[:0], phiAnchor...)
	info.phiOp = growU64(info.phiOp, nc)
	info.outEx = growU64(info.outEx, nc)
	info.phiIn = growU64Rows(info.phiIn, ni, nc)
	info.inEx = growU64Rows(info.inEx, ni, nc)

	sys.Restore(ref)
	sc := openScopeAt(sys, ref)
	defer sc.close()
	info.colour = sys.Colour()
	info.op = sys.NextOp()
	out := sys.CurrentOutput()
	for ci, c := range colours {
		info.outEx[ci] = model.DigestString(sys.ExtractOutput(c, out))
	}
	// The footprint shortcut: when the system can prove which colours a
	// mutation touched (model.DirtyTracker over the checkpoint's write
	// journal), untouched colours reuse the anchor digest — Φ^c is a pure
	// function of state the mutation never wrote. Masks wider than 64
	// colours cannot be represented; such systems take the full sweeps.
	wide := nc > 64
	sys.Step()
	opMask, opOK := sc.dirty()
	for ci, c := range colours {
		if opOK && !wide && opMask&(1<<uint(ci)) == 0 {
			info.phiOp[ci] = info.phi[ci]
		} else {
			info.phiOp[ci] = model.AbstractDigest(sys, c)
		}
	}
	for ii, in := range inputs {
		sc.reset()
		for ci, c := range colours {
			info.inEx[ii][ci] = model.DigestString(sys.ExtractInput(c, in))
		}
		sys.ApplyInput(in)
		inMask, inOK := sc.dirty()
		for ci, c := range colours {
			if inOK && !wide && inMask&(1<<uint(ci)) == 0 {
				info.phiIn[ii][ci] = info.phi[ci]
			} else {
				info.phiIn[ii][ci] = model.AbstractDigest(sys, c)
			}
		}
	}
}

func growU64(s []uint64, n int) []uint64 {
	if cap(s) < n {
		return make([]uint64, n)
	}
	return s[:n]
}

func growU64Rows(s [][]uint64, n, m int) [][]uint64 {
	if cap(s) < n {
		s = make([][]uint64, n)
	} else {
		s = s[:n]
	}
	for i := range s {
		s[i] = growU64(s[i], m)
	}
	return s
}

// The lazy string re-derivations for violation Details: each restores the
// relevant state on sys and renders the canonical encoding the stored
// digest summarizes. Violations are cold, so the extra Restore/Abstract
// round trips cost nothing on passing checks.

func phiAt(sys model.Enumerable, ref model.StateRef, c model.Colour) string {
	sys.Restore(ref)
	return sys.Abstract(c)
}

func phiOpAt(sys model.Enumerable, ref model.StateRef, c model.Colour) string {
	sys.Restore(ref)
	sys.Step()
	return sys.Abstract(c)
}

func phiInAt(sys model.Enumerable, ref model.StateRef, in model.Input, c model.Colour) string {
	sys.Restore(ref)
	sys.ApplyInput(in)
	return sys.Abstract(c)
}

func outExAt(sys model.Enumerable, ref model.StateRef, c model.Colour) string {
	sys.Restore(ref)
	return sys.ExtractOutput(c, sys.CurrentOutput())
}

// foldColours merges per-colour results in colour order and truncates to
// the per-condition violation cap — the deterministic final fold shared by
// the in-process engine and the shard-file merge.
func foldColours(perColour []*Result, max int) *Result {
	res := &Result{Checks: map[Condition]int{}}
	for _, cr := range perColour {
		res.Merge(cr)
	}
	res.Violations = truncatePerCondition(res.Violations, max)
	return res
}

// truncatePerCondition keeps each condition's first max violations,
// preserving order (stable in-place filter). Prefix-truncation per
// condition is associative: applying it per chunk, per shard and on the
// final fold yields the same survivors as one pass over the whole list.
func truncatePerCondition(vs []Violation, max int) []Violation {
	var counts [ConditionSched + 1]int
	overflow := false
	for i := range vs {
		if counts[vs[i].Condition] >= max {
			overflow = true
			break
		}
		counts[vs[i].Condition]++
	}
	if !overflow {
		return vs
	}
	out := vs[:0]
	clear(counts[:])
	for _, v := range vs {
		if counts[v.Condition] < max {
			counts[v.Condition]++
			out = append(out, v)
		}
	}
	return out
}

func colourNames(cs []model.Colour) []string {
	out := make([]string, len(cs))
	for i, c := range cs {
		out[i] = string(c)
	}
	return out
}
