package separability_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/model"
	"repro/internal/separability"
)

// runSharded cuts sys's sweep into n shards (each rebuilt from build so
// shards never share state), runs them with the given worker count, and
// merges the shard results.
func runSharded(t *testing.T, build func() model.Enumerable,
	shards, workers, maxViolations int) *separability.Result {
	t.Helper()
	srs := make([]*separability.ShardResult, shards)
	for k := 0; k < shards; k++ {
		sr, err := separability.CheckExhaustiveShard(build(), separability.ExhaustiveOptions{
			MaxViolations: maxViolations, Workers: workers, Shard: k, Shards: shards,
		})
		if err != nil {
			t.Fatalf("shard %d/%d: %v", k, shards, err)
		}
		srs[k] = sr
	}
	res, err := separability.MergeShards(srs)
	if err != nil {
		t.Fatalf("merge %d shards: %v", shards, err)
	}
	return res
}

// The sharding guarantee: cutting the sweep into any shard count, run at
// any worker count, merges to a result identical to the single-threaded
// unsharded run — same violations in the same order, same counts.
func TestShardWorkerInvarianceMatrix(t *testing.T) {
	for _, tc := range []struct {
		name    string
		variant separability.ToyVariant
	}{
		{"secure", separability.ToySecure},
		{"leaky-direct-write", separability.ToyDirectWrite},
		{"leaky-input-snoop", separability.ToyInputSnoop},
	} {
		t.Run(tc.name, func(t *testing.T) {
			build := func() model.Enumerable { return separability.NewToySystem(tc.variant) }
			base := separability.CheckExhaustiveWorkers(build(), 6, 1)
			for _, shards := range []int{1, 2, 4} {
				for _, workers := range []int{1, 4} {
					got := runSharded(t, build, shards, workers, 6)
					requireIdentical(t, base, got,
						tc.name+"/"+shardLabel(shards, workers))
				}
			}
		})
	}
}

func shardLabel(shards, workers int) string {
	return "shards=" + string(rune('0'+shards)) + ",workers=" + string(rune('0'+workers))
}

// A sealed shard-result survives the file round trip bit-for-bit, and its
// content address detects tampering and truncation.
func TestShardResultFileRoundTrip(t *testing.T) {
	sr, err := separability.CheckExhaustiveShard(
		separability.NewToySystem(separability.ToyDirectWrite),
		separability.ExhaustiveOptions{
			MaxViolations: 4, Workers: 1, Shard: 1, Shards: 2, Target: "toy:direct-write",
		})
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "shard.json")
	if err := sr.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := separability.ReadShardResult(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(sr, got) {
		t.Error("shard result changed across the file round trip")
	}

	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := separability.DecodeShardResult(b[:len(b)/2]); err == nil {
		t.Error("truncated shard result decoded without error")
	}
	tampered := bytes.Replace(b, []byte(`"shard":1`), []byte(`"shard":0`), 1)
	if bytes.Equal(tampered, b) {
		t.Fatal("tamper substitution did not apply")
	}
	if _, err := separability.DecodeShardResult(tampered); err == nil {
		t.Error("tampered shard result decoded without error")
	}
	if _, err := separability.DecodeShardResult([]byte("not json")); err == nil {
		t.Error("garbage decoded without error")
	}
}

// MergeShards refuses incomplete sets, duplicates and mismatched sweeps.
func TestMergeShardsValidation(t *testing.T) {
	mk := func(shard, shards, chunkSize int) *separability.ShardResult {
		sr, err := separability.CheckExhaustiveShard(
			separability.NewToySystem(separability.ToySecure),
			separability.ExhaustiveOptions{
				MaxViolations: 4, Workers: 1, Shard: shard, Shards: shards, ChunkSize: chunkSize,
			})
		if err != nil {
			t.Fatal(err)
		}
		return sr
	}
	s0, s1 := mk(0, 2, 0), mk(1, 2, 0)

	if _, err := separability.MergeShards([]*separability.ShardResult{s0, s1}); err != nil {
		t.Fatalf("complete set rejected: %v", err)
	}
	if _, err := separability.MergeShards(nil); err == nil {
		t.Error("empty set merged without error")
	}
	if _, err := separability.MergeShards([]*separability.ShardResult{s0}); err == nil {
		t.Error("incomplete set merged without error")
	}
	if _, err := separability.MergeShards([]*separability.ShardResult{s0, s0}); err == nil {
		t.Error("duplicate shard merged without error")
	}
	other := mk(1, 2, 32) // same space, different chunking
	if _, err := separability.MergeShards([]*separability.ShardResult{s0, other}); err == nil {
		t.Error("mismatched chunk size merged without error")
	}
}

// The checkpoint guarantee: kill the sweep after any number of folded
// chunks, at any checkpoint cadence, resume from the file — the final
// artifact is identical (same content address) to the uninterrupted run.
// Covers single-shard and mid-shard kills, worker-count changes across the
// kill, and a redundant rerun after completion.
func TestCheckpointResumeDifferential(t *testing.T) {
	build := func() model.Enumerable { return separability.NewToySystem(separability.ToyDirectWrite) }
	base := separability.ExhaustiveOptions{
		MaxViolations: 4, Workers: 1, ChunkSize: 16, Target: "toy:direct-write",
	}
	clean, err := separability.CheckExhaustiveShard(build(), base)
	if err != nil {
		t.Fatal(err)
	}

	for _, cadence := range []int{1, 3} {
		for _, abortAt := range []int{1, 5, 20, 63} {
			ck := filepath.Join(t.TempDir(), "ck.json")
			opt := base
			opt.Checkpoint = ck
			opt.CheckpointEvery = cadence
			opt.AbortAfterChunks = abortAt
			if _, err := separability.CheckExhaustiveShard(build(), opt); !errors.Is(err, separability.ErrAborted) {
				t.Fatalf("cadence %d abort %d: got %v, want ErrAborted", cadence, abortAt, err)
			}
			resumed, err := separability.ReadShardCheckpoint(ck)
			if err != nil || resumed == nil {
				t.Fatalf("cadence %d abort %d: no checkpoint after abort: %v", cadence, abortAt, err)
			}
			opt.AbortAfterChunks = 0
			opt.Workers = 2 // the replacement worker pool need not match
			sr, err := separability.CheckExhaustiveShard(build(), opt)
			if err != nil {
				t.Fatalf("cadence %d abort %d: resume: %v", cadence, abortAt, err)
			}
			if sr.ID != clean.ID || !reflect.DeepEqual(sr, clean) {
				t.Errorf("cadence %d abort %d: resumed artifact differs from uninterrupted (%s vs %s)",
					cadence, abortAt, sr.ID, clean.ID)
			}
			// A rerun over the completed checkpoint folds nothing and
			// reproduces the artifact again.
			again, err := separability.CheckExhaustiveShard(build(), opt)
			if err != nil {
				t.Fatalf("cadence %d abort %d: rerun after done: %v", cadence, abortAt, err)
			}
			if again.ID != clean.ID {
				t.Errorf("cadence %d abort %d: rerun after done diverged", cadence, abortAt)
			}
		}
	}

	// The same differential for one shard of a 2-way cut.
	shOpt := base
	shOpt.Shard, shOpt.Shards = 1, 2
	shClean, err := separability.CheckExhaustiveShard(build(), shOpt)
	if err != nil {
		t.Fatal(err)
	}
	ck := filepath.Join(t.TempDir(), "ck.json")
	opt := shOpt
	opt.Checkpoint = ck
	opt.CheckpointEvery = 1
	opt.AbortAfterChunks = 7
	if _, err := separability.CheckExhaustiveShard(build(), opt); !errors.Is(err, separability.ErrAborted) {
		t.Fatalf("shard abort: got %v, want ErrAborted", err)
	}
	opt.AbortAfterChunks = 0
	sr, err := separability.CheckExhaustiveShard(build(), opt)
	if err != nil {
		t.Fatal(err)
	}
	if sr.ID != shClean.ID {
		t.Errorf("sharded resume diverged: %s vs %s", sr.ID, shClean.ID)
	}
}

// A checkpoint from a different sweep — other parameters, another shard,
// tampered or truncated bytes, or a shard-result file passed off as a
// checkpoint — must be rejected, never silently restarted from.
func TestCheckpointRejectsForeignOrDamaged(t *testing.T) {
	build := func() model.Enumerable { return separability.NewToySystem(separability.ToyDirectWrite) }
	base := separability.ExhaustiveOptions{
		MaxViolations: 4, Workers: 1, ChunkSize: 16, Target: "toy:direct-write",
		CheckpointEvery: 1, AbortAfterChunks: 5,
	}
	dir := t.TempDir()
	ck := filepath.Join(dir, "ck.json")
	opt := base
	opt.Checkpoint = ck
	if _, err := separability.CheckExhaustiveShard(build(), opt); !errors.Is(err, separability.ErrAborted) {
		t.Fatalf("seeding abort: %v", err)
	}

	run := func(mutate func(opt *separability.ExhaustiveOptions, path string) string) error {
		o := base
		o.AbortAfterChunks = 0
		o.Checkpoint = mutate(&o, ck)
		_, err := separability.CheckExhaustiveShard(build(), o)
		return err
	}

	if err := run(func(o *separability.ExhaustiveOptions, p string) string {
		o.ChunkSize = 8
		return p
	}); err == nil {
		t.Error("checkpoint with different chunk size adopted")
	}
	if err := run(func(o *separability.ExhaustiveOptions, p string) string {
		o.Target = "toy:other"
		return p
	}); err == nil {
		t.Error("checkpoint for different target adopted")
	}
	if err := run(func(o *separability.ExhaustiveOptions, p string) string {
		o.Shard, o.Shards = 1, 2
		return p
	}); err == nil {
		t.Error("checkpoint for different shard adopted")
	}

	b, err := os.ReadFile(ck)
	if err != nil {
		t.Fatal(err)
	}
	trunc := filepath.Join(dir, "trunc.json")
	os.WriteFile(trunc, b[:len(b)-12], 0o644)
	if err := run(func(o *separability.ExhaustiveOptions, _ string) string { return trunc }); err == nil {
		t.Error("truncated checkpoint adopted")
	}
	tampered := filepath.Join(dir, "tampered.json")
	os.WriteFile(tampered, bytes.Replace(b, []byte(`"frontier":`), []byte(`"frontier": 1`), 1), 0o644)
	if err := run(func(o *separability.ExhaustiveOptions, _ string) string { return tampered }); err == nil {
		t.Error("tampered checkpoint adopted")
	}

	// A shard result is not a checkpoint, even though both are sealed JSON.
	srOpt := base
	srOpt.AbortAfterChunks = 0
	sr, err := separability.CheckExhaustiveShard(build(), srOpt)
	if err != nil {
		t.Fatal(err)
	}
	asCk := filepath.Join(dir, "result-as-ck.json")
	if err := sr.WriteFile(asCk); err != nil {
		t.Fatal(err)
	}
	if err := run(func(o *separability.ExhaustiveOptions, _ string) string { return asCk }); err == nil {
		t.Error("shard-result file adopted as a checkpoint")
	}
}

// cloneCounter wraps an Enumerable, counting how many replicas the checker
// actually manufactures.
type cloneCounter struct {
	model.Enumerable
	n *atomic.Int32
}

func (c *cloneCounter) Clone() model.SharedSystem {
	clone := c.Enumerable.(model.Replicable).Clone()
	if clone == nil {
		return nil
	}
	c.n.Add(1)
	return &cloneCounter{clone.(model.Enumerable), c.n}
}

// A worker pool wider than the chunk count must be clamped before replicas
// are manufactured: a 2-chunk sweep asked for 8 workers makes at most 1
// clone, and the result is still identical to the single-threaded run.
func TestWorkersClampedToChunks(t *testing.T) {
	var n atomic.Int32
	sys := &cloneCounter{separability.NewToySystem(separability.ToyDirectWrite), &n}
	res, err := separability.CheckExhaustiveShard(sys, separability.ExhaustiveOptions{
		MaxViolations: 4, Workers: 8, ChunkSize: 512, // 1024 states -> 2 chunks
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Load(); got > 1 {
		t.Errorf("made %d clones for a 2-chunk sweep with 8 requested workers, want <= 1", got)
	}
	base := separability.CheckExhaustiveWorkers(
		separability.NewToySystem(separability.ToyDirectWrite), 4, 1)
	got, err := res.Result()
	if err != nil {
		t.Fatal(err)
	}
	// ChunkSize differs from the default, so only the verdict-level facts
	// are comparable here; order invariance is covered by the matrix test.
	if got.Summary() != base.Summary() {
		t.Errorf("clamped run summary %q, want %q", got.Summary(), base.Summary())
	}
}

// Concurrent CheckExhaustiveShard calls (the in-process analogue of a
// fleet) must not interfere: each shard on its own instance, merged, equals
// the direct run.
func TestConcurrentShardsMerge(t *testing.T) {
	build := func() model.Enumerable { return separability.NewToySystem(separability.ToyInputCross) }
	base := separability.CheckExhaustiveWorkers(build(), 6, 1)
	const shards = 4
	srs := make([]*separability.ShardResult, shards)
	var wg sync.WaitGroup
	for k := 0; k < shards; k++ {
		wg.Add(1)
		go func(k int) {
			defer wg.Done()
			sr, err := separability.CheckExhaustiveShard(build(), separability.ExhaustiveOptions{
				MaxViolations: 6, Workers: 2, Shard: k, Shards: shards,
			})
			if err != nil {
				t.Errorf("shard %d: %v", k, err)
				return
			}
			srs[k] = sr
		}(k)
	}
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}
	got, err := separability.MergeShards(srs)
	if err != nil {
		t.Fatal(err)
	}
	requireIdentical(t, base, got, "concurrent shards")
}

// FuzzCheckpointResume drives arbitrary bytes through the checkpoint
// decoder and, when they validate, through an actual resume. Decoding is
// total (errors, never panics), valid checkpoints re-encode canonically,
// and a checkpoint the engine adopts must still produce the artifact of an
// uninterrupted run.
func FuzzCheckpointResume(f *testing.F) {
	build := func() model.Enumerable { return separability.NewToySystem(separability.ToyDirectWrite) }
	opt := separability.ExhaustiveOptions{
		MaxViolations: 4, Workers: 1, ChunkSize: 64, Target: "toy:direct-write",
	}
	clean, err := separability.CheckExhaustiveShard(build(), opt)
	if err != nil {
		f.Fatal(err)
	}

	seedDir := f.TempDir()
	ckPath := filepath.Join(seedDir, "ck.json")
	abortOpt := opt
	abortOpt.Checkpoint = ckPath
	abortOpt.CheckpointEvery = 1
	abortOpt.AbortAfterChunks = 3
	if _, err := separability.CheckExhaustiveShard(build(), abortOpt); !errors.Is(err, separability.ErrAborted) {
		f.Fatal(err)
	}
	valid, err := os.ReadFile(ckPath)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add(bytes.Replace(valid, []byte(`"frontier"`), []byte(`"frontier_"`), 1))
	f.Add([]byte(`{}`))
	f.Add([]byte(`not json at all`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ck, err := separability.DecodeShardCheckpoint(data)
		if err != nil {
			return // invalid bytes are rejected, which is the contract
		}
		// Canonical re-encode round trip.
		b, err := json.Marshal(ck)
		if err != nil {
			t.Fatalf("valid checkpoint failed to re-encode: %v", err)
		}
		again, err := separability.DecodeShardCheckpoint(b)
		if err != nil {
			t.Fatalf("canonical re-encode no longer decodes: %v", err)
		}
		if !reflect.DeepEqual(ck, again) {
			t.Fatal("checkpoint changed across re-encode round trip")
		}
		// Hand the validated checkpoint to the engine: it either rejects a
		// foreign sweep or resumes and lands on the uninterrupted artifact.
		p := filepath.Join(t.TempDir(), "ck.json")
		if err := os.WriteFile(p, data, 0o600); err != nil {
			t.Fatal(err)
		}
		o := opt
		o.Checkpoint = p
		sr, err := separability.CheckExhaustiveShard(build(), o)
		if err != nil {
			return // parameter mismatch with this sweep: rejected, fine
		}
		if sr.ID != clean.ID {
			t.Fatalf("adopted checkpoint produced artifact %s, uninterrupted run %s", sr.ID, clean.ID)
		}
	})
}
