package separability

import "repro/internal/model"

// stateScope anchors a restore point for one per-state condition sweep,
// preferring the O(dirty) model.Checkpointer API (delta snapshots) and
// falling back to Save/Restore for systems without it. Both paths leave
// identical observable behaviour: reset() returns the system to the anchor
// state, close() does the same and releases any checkpoint resources.
type stateScope struct {
	sys model.SharedSystem
	ckp model.Checkpointer
	cp  model.Checkpoint
	ref model.StateRef
}

// openScope anchors at the system's current state.
func openScope(sys model.SharedSystem) *stateScope { return openScopeAt(sys, nil) }

// openScopeAt anchors at the system's current state; ref, when non-nil, is
// an existing StateRef of that same state, reused to avoid a redundant
// Save on the fallback path.
func openScopeAt(sys model.SharedSystem, ref model.StateRef) *stateScope {
	sc := &stateScope{sys: sys}
	if ckp, ok := sys.(model.Checkpointer); ok {
		if cp := ckp.Checkpoint(); cp != nil {
			sc.ckp, sc.cp = ckp, cp
			return sc
		}
	}
	if ref == nil {
		ref = sys.Save()
	}
	sc.ref = ref
	return sc
}

// dirty consults the system's DirtyTracker for the set of colours possibly
// mutated since the anchor (or the most recent reset): bit ci covers
// Colours()[ci]. ok=false — no checkpoint, no tracker, or the tracker
// declined — means the caller must assume everything is dirty.
func (sc *stateScope) dirty() (uint64, bool) {
	if sc.ckp == nil {
		return 0, false
	}
	dt, ok := sc.sys.(model.DirtyTracker)
	if !ok {
		return 0, false
	}
	return dt.DirtyColours(sc.cp)
}

func (sc *stateScope) reset() {
	if sc.ckp != nil {
		sc.ckp.Rollback(sc.cp)
		return
	}
	sc.sys.Restore(sc.ref)
}

func (sc *stateScope) close() {
	if sc.ckp != nil {
		sc.ckp.Release(sc.cp)
		return
	}
	sc.sys.Restore(sc.ref)
}
