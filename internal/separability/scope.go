package separability

import "repro/internal/model"

// stateScope anchors a restore point for one per-state condition sweep,
// preferring the O(dirty) model.Checkpointer API (delta snapshots) and
// falling back to Save/Restore for systems without it. Both paths leave
// identical observable behaviour: reset() returns the system to the anchor
// state, close() does the same and releases any checkpoint resources.
type stateScope struct {
	sys model.SharedSystem
	ckp model.Checkpointer
	cp  model.Checkpoint
	ref model.StateRef
}

// openScope anchors at the system's current state.
func openScope(sys model.SharedSystem) *stateScope { return openScopeAt(sys, nil) }

// openScopeAt anchors at the system's current state; ref, when non-nil, is
// an existing StateRef of that same state, reused to avoid a redundant
// Save on the fallback path.
func openScopeAt(sys model.SharedSystem, ref model.StateRef) *stateScope {
	sc := &stateScope{sys: sys}
	if ckp, ok := sys.(model.Checkpointer); ok {
		if cp := ckp.Checkpoint(); cp != nil {
			sc.ckp, sc.cp = ckp, cp
			return sc
		}
	}
	if ref == nil {
		ref = sys.Save()
	}
	sc.ref = ref
	return sc
}

func (sc *stateScope) reset() {
	if sc.ckp != nil {
		sc.ckp.Rollback(sc.cp)
		return
	}
	sc.sys.Restore(sc.ref)
}

func (sc *stateScope) close() {
	if sc.ckp != nil {
		sc.ckp.Release(sc.cp)
		return
	}
	sc.sys.Restore(sc.ref)
}
