package separability_test

import (
	"reflect"
	"testing"

	"repro/internal/model"
	"repro/internal/separability"
)

// requireIdentical asserts two results are indistinguishable: same summary
// bytes, same violations in the same order, same check counts.
func requireIdentical(t *testing.T, want, got *separability.Result, label string) {
	t.Helper()
	if want.Summary() != got.Summary() {
		t.Errorf("%s: summaries differ:\n  serial:   %s\n  parallel: %s",
			label, want.Summary(), got.Summary())
	}
	if !reflect.DeepEqual(want.Violations, got.Violations) {
		t.Errorf("%s: violation lists differ: %d vs %d entries",
			label, len(want.Violations), len(got.Violations))
	}
	if !reflect.DeepEqual(want.Checks, got.Checks) {
		t.Errorf("%s: check counts differ: %v vs %v", label, want.Checks, got.Checks)
	}
}

// The tentpole determinism guarantee: CheckRandomized with Workers: 1 and
// Workers: N produce identical violation sets and check counts for a fixed
// seed, on both a secure and a leaky system.
func TestCheckRandomizedWorkerDeterminism(t *testing.T) {
	for _, tc := range []struct {
		name    string
		variant separability.ToyVariant
	}{
		{"secure", separability.ToySecure},
		{"leaky-direct-write", separability.ToyDirectWrite},
		{"leaky-nextop", separability.ToyNextOpLeak},
	} {
		t.Run(tc.name, func(t *testing.T) {
			for _, seed := range []int64{1, 7, 99} {
				base := separability.Options{
					Trials: 12, StepsPerTrial: 40, Seed: seed, CheckScheduling: true,
				}
				serialOpt := base
				serialOpt.Workers = 1
				serial := separability.CheckRandomized(
					separability.NewToySystem(tc.variant), serialOpt)
				for _, workers := range []int{2, 4, 9} {
					parOpt := base
					parOpt.Workers = workers
					par := separability.CheckRandomized(
						separability.NewToySystem(tc.variant), parOpt)
					requireIdentical(t, serial, par, tc.name)
				}
			}
		})
	}
}

// The factory-based entry point must agree with the Replicable-based one.
func TestCheckRandomizedParallelFactory(t *testing.T) {
	opt := separability.Options{Trials: 8, StepsPerTrial: 30, Seed: 5}
	opt.Workers = 1
	serial := separability.CheckRandomized(separability.NewToySystem(separability.ToyOutputLeak), opt)
	opt.Workers = 4
	par := separability.CheckRandomizedParallel(func() model.Perturbable {
		return separability.NewToySystem(separability.ToyOutputLeak)
	}, opt)
	requireIdentical(t, serial, par, "factory")
}

// CheckExhaustive must be a pure function of the system, independent of
// how many workers shard the state sweep and the per-colour passes.
func TestCheckExhaustiveWorkerDeterminism(t *testing.T) {
	variants := []separability.ToyVariant{
		separability.ToySecure, separability.ToyCovertStore,
		separability.ToyInputSnoop, separability.ToyOutputLeak,
	}
	for _, v := range variants {
		name := separability.ToyVariantName(v)
		serial := separability.CheckExhaustiveWorkers(separability.NewToySystem(v), 0, 1)
		for _, workers := range []int{2, 4} {
			par := separability.CheckExhaustiveWorkers(separability.NewToySystem(v), 0, workers)
			requireIdentical(t, serial, par, name)
		}
	}
}

// Digest-vs-string equivalence over the enumerated toy state space: for
// every state and colour, AbstractDigest must collide exactly when the
// Abstract strings are equal. (The toy system goes through the default
// hash-the-string shim, so this checks FNV-1a injectivity on the space the
// calibration proofs rely on; the kernel adapter's native digest has its
// own test against the same reference.)
func TestToyDigestMatchesAbstract(t *testing.T) {
	for v := separability.ToySecure; v <= separability.ToyNextOpLeak; v++ {
		sys := separability.NewToySystem(v)
		byDigest := map[uint64]string{}
		byString := map[string]uint64{}
		sys.EnumerateStates(func(ref model.StateRef) bool {
			sys.Restore(ref)
			for _, c := range sys.Colours() {
				str := sys.Abstract(c)
				dig := model.AbstractDigest(sys, c)
				if dig != model.DigestString(str) {
					t.Fatalf("variant %d: digest %x is not the FNV of %q",
						v, dig, str)
				}
				if prev, ok := byDigest[dig]; ok && prev != str {
					t.Fatalf("variant %d: digest collision: %q and %q both hash to %x",
						v, prev, str, dig)
				}
				if prev, ok := byString[str]; ok && prev != dig {
					t.Fatalf("variant %d: string %q produced digests %x and %x",
						v, str, prev, dig)
				}
				byDigest[dig] = str
				byString[str] = dig
			}
			return true
		})
		if len(byDigest) != len(byString) {
			t.Errorf("variant %d: %d digests for %d distinct strings",
				v, len(byDigest), len(byString))
		}
	}
}

// A clone must be a genuinely independent replica: advancing the original
// must not move the clone, and both must accept each other's StateRefs.
func TestToyCloneIndependence(t *testing.T) {
	orig := separability.NewToySystem(separability.ToySecure)
	clone, ok := orig.Clone().(*separability.ToySystem)
	if !ok || clone == nil {
		t.Fatal("toy Clone did not return a *ToySystem")
	}
	before := map[model.Colour]string{}
	for _, c := range clone.Colours() {
		before[c] = clone.Abstract(c)
	}
	for i := 0; i < 5; i++ {
		orig.Step()
	}
	for _, c := range clone.Colours() {
		if got := clone.Abstract(c); got != before[c] {
			t.Errorf("stepping the original moved the clone's Φ^%s: %q -> %q",
				c, before[c], got)
		}
	}
	// Cross-instance StateRefs: restore the original's state on the clone.
	ref := orig.Save()
	clone.Restore(ref)
	for _, c := range clone.Colours() {
		if clone.Abstract(c) != orig.Abstract(c) {
			t.Errorf("clone did not accept the original's StateRef for colour %s", c)
		}
	}
}

// Result.Merge must append violations in order and sum check counts, so
// the engines can merge worker-private results deterministically.
func TestResultMerge(t *testing.T) {
	bad := separability.NewToySystem(separability.ToyDirectWrite)
	a := separability.CheckExhaustive(bad, 3)
	b := separability.CheckExhaustive(separability.NewToySystem(separability.ToySecure), 0)
	var merged separability.Result
	merged.Merge(a)
	merged.Merge(b)
	merged.Merge(nil) // must be a no-op
	if len(merged.Violations) != len(a.Violations)+len(b.Violations) {
		t.Errorf("merged %d violations, want %d",
			len(merged.Violations), len(a.Violations)+len(b.Violations))
	}
	for c, n := range a.Checks {
		if merged.Checks[c] != n+b.Checks[c] {
			t.Errorf("merged count for %s = %d, want %d",
				c, merged.Checks[c], n+b.Checks[c])
		}
	}
}
