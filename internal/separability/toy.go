package separability

import (
	"fmt"

	"repro/internal/model"
)

// ToyVariant selects the behaviour of a ToySystem: one secure reference
// and a family of planted insecurities, each engineered to violate exactly
// one of the six conditions. The toy system is small enough (1024 states,
// 4 inputs) for CheckExhaustive to constitute a real proof, which makes it
// the calibration standard for the checker itself.
type ToyVariant int

// Toy system variants.
const (
	// ToySecure is the reference: two users, each with a private register
	// and output latch, strictly alternating.
	ToySecure ToyVariant = iota
	// ToyCovertStore lets red park a bit in a shared cell which black's
	// operation then consumes — violates condition 1 for black.
	ToyCovertStore
	// ToyDirectWrite makes each operation also flip the other user's
	// register — violates condition 2.
	ToyDirectWrite
	// ToyInputCross adds red's input bit to black's register — violates
	// condition 4 (and 3 is preserved: the effect depends on the input,
	// not on hidden state).
	ToyInputCross
	// ToyInputSnoop scales black's input by red's register — violates
	// condition 3.
	ToyInputSnoop
	// ToyOutputLeak mixes red's register into black's extracted output —
	// violates condition 5.
	ToyOutputLeak
	// ToyNextOpLeak selects black's operation based on red's register —
	// violates condition 6.
	ToyNextOpLeak
)

// toyState is the complete state of the toy machine.
type toyState struct {
	cur    int    // whose operation runs next (0 = red, 1 = black)
	reg    [2]int // private registers, 2 bits each
	out    [2]int // output latches, 2 bits each
	shared int    // a kernel-internal cell, 1 bit; no user's abstract state
}

// toyInput is one stimulus: one input bit per user.
type toyInput struct{ bit [2]int }

// ToyColours are the two users of the toy system.
var ToyColours = []model.Colour{"red", "black"}

// ToySystem implements both model.Enumerable and model.Perturbable.
type ToySystem struct {
	Variant ToyVariant
	s       toyState
}

// NewToySystem creates a toy system in its initial state.
func NewToySystem(v ToyVariant) *ToySystem { return &ToySystem{Variant: v} }

// Clone implements model.Replicable: the whole machine state is one value.
func (t *ToySystem) Clone() model.SharedSystem {
	c := *t
	return &c
}

func colourIndex(c model.Colour) int {
	if c == "red" {
		return 0
	}
	return 1
}

// Colours implements model.SharedSystem.
func (t *ToySystem) Colours() []model.Colour {
	return append([]model.Colour(nil), ToyColours...)
}

// Save implements model.SharedSystem.
func (t *ToySystem) Save() model.StateRef { s := t.s; return &s }

// Restore implements model.SharedSystem.
func (t *ToySystem) Restore(r model.StateRef) { t.s = *r.(*toyState) }

// Colour implements model.SharedSystem.
func (t *ToySystem) Colour() model.Colour { return ToyColours[t.s.cur] }

// NextOp implements model.SharedSystem.
func (t *ToySystem) NextOp() model.OpID {
	if t.Variant == ToyNextOpLeak && t.s.cur == 1 {
		// Black's operation is chosen by red's register parity.
		if t.s.reg[0]&1 == 1 {
			return "dec"
		}
		return "inc"
	}
	return "inc"
}

// Step implements model.SharedSystem.
func (t *ToySystem) Step() {
	cur := t.s.cur
	delta := 1
	if t.NextOp() == "dec" {
		delta = 3 // -1 mod 4
	}
	t.s.reg[cur] = (t.s.reg[cur] + delta) & 3

	switch t.Variant {
	case ToyCovertStore:
		if cur == 0 {
			t.s.shared = t.s.reg[0] & 1 // red parks a bit
		} else {
			t.s.reg[1] = (t.s.reg[1] + t.s.shared) & 3 // black collects it
		}
	case ToyDirectWrite:
		t.s.reg[1-cur] ^= 1
	}

	t.s.out[cur] = t.s.reg[cur]
	t.s.cur = 1 - cur
}

// ApplyInput implements model.SharedSystem.
func (t *ToySystem) ApplyInput(in model.Input) {
	if in == nil {
		return
	}
	i := in.(toyInput)
	t.s.reg[0] = (t.s.reg[0] + i.bit[0]) & 3
	switch t.Variant {
	case ToyInputCross:
		t.s.reg[1] = (t.s.reg[1] + i.bit[1] + i.bit[0]) & 3
	case ToyInputSnoop:
		t.s.reg[1] = (t.s.reg[1] + i.bit[1]*(t.s.reg[0]&1)) & 3
	default:
		t.s.reg[1] = (t.s.reg[1] + i.bit[1]) & 3
	}
}

// CurrentOutput implements model.SharedSystem.
func (t *ToySystem) CurrentOutput() model.Output { s := t.s; return &s }

// Abstract implements model.SharedSystem: a user's abstract machine is its
// register and output latch.
func (t *ToySystem) Abstract(c model.Colour) string {
	i := colourIndex(c)
	return fmt.Sprintf("reg=%d;out=%d", t.s.reg[i], t.s.out[i])
}

// ExtractInput implements model.SharedSystem.
func (t *ToySystem) ExtractInput(c model.Colour, in model.Input) string {
	if in == nil {
		return ""
	}
	return fmt.Sprintf("bit=%d", in.(toyInput).bit[colourIndex(c)])
}

// ExtractOutput implements model.SharedSystem.
func (t *ToySystem) ExtractOutput(c model.Colour, o model.Output) string {
	s := o.(*toyState)
	i := colourIndex(c)
	if t.Variant == ToyOutputLeak && i == 1 {
		return fmt.Sprintf("out=%d", (s.out[1]+s.reg[0])&3)
	}
	return fmt.Sprintf("out=%d", s.out[i])
}

// EnumerateStates implements model.Enumerable: all 1024 states.
func (t *ToySystem) EnumerateStates(fn func(model.StateRef) bool) {
	for cur := 0; cur < 2; cur++ {
		for r0 := 0; r0 < 4; r0++ {
			for r1 := 0; r1 < 4; r1++ {
				for o0 := 0; o0 < 4; o0++ {
					for o1 := 0; o1 < 4; o1++ {
						for sh := 0; sh < 2; sh++ {
							s := toyState{cur: cur, reg: [2]int{r0, r1},
								out: [2]int{o0, o1}, shared: sh}
							if !fn(&s) {
								return
							}
						}
					}
				}
			}
		}
	}
}

// EnumerateInputs implements model.Enumerable: all four bit pairs.
func (t *ToySystem) EnumerateInputs(fn func(model.Input) bool) {
	for b0 := 0; b0 < 2; b0++ {
		for b1 := 0; b1 < 2; b1++ {
			if !fn(toyInput{bit: [2]int{b0, b1}}) {
				return
			}
		}
	}
}

// Randomize implements model.Perturbable.
func (t *ToySystem) Randomize(r model.Rand) {
	t.s = toyState{
		cur:    r.Intn(2),
		reg:    [2]int{r.Intn(4), r.Intn(4)},
		out:    [2]int{r.Intn(4), r.Intn(4)},
		shared: r.Intn(2),
	}
}

// PerturbOutside implements model.Perturbable: scramble the other user's
// register and latch plus the shared cell, preserving Φc and the schedule.
func (t *ToySystem) PerturbOutside(c model.Colour, r model.Rand) {
	o := 1 - colourIndex(c)
	t.s.reg[o] = r.Intn(4)
	t.s.out[o] = r.Intn(4)
	t.s.shared = r.Intn(2)
}

// RandomInput implements model.Perturbable.
func (t *ToySystem) RandomInput(r model.Rand) model.Input {
	return toyInput{bit: [2]int{r.Intn(2), r.Intn(2)}}
}

// RandomInputMatching implements model.Perturbable.
func (t *ToySystem) RandomInputMatching(c model.Colour, in model.Input, r model.Rand) model.Input {
	i := colourIndex(c)
	out := toyInput{bit: [2]int{r.Intn(2), r.Intn(2)}}
	if in != nil {
		out.bit[i] = in.(toyInput).bit[i]
	} else {
		out.bit[i] = 0
	}
	return out
}

// ToyVariantConditions maps each insecure variant to the condition it is
// engineered to violate; used by the calibration tests and experiment E8.
var ToyVariantConditions = map[ToyVariant]Condition{
	ToyCovertStore: Condition1,
	ToyDirectWrite: Condition2,
	ToyInputSnoop:  Condition3,
	ToyInputCross:  Condition4,
	ToyOutputLeak:  Condition5,
	ToyNextOpLeak:  Condition6,
}

// ToyVariantName names a variant for reports.
func ToyVariantName(v ToyVariant) string {
	switch v {
	case ToySecure:
		return "secure"
	case ToyCovertStore:
		return "covert-store"
	case ToyDirectWrite:
		return "direct-write"
	case ToyInputCross:
		return "input-cross"
	case ToyInputSnoop:
		return "input-snoop"
	case ToyOutputLeak:
		return "output-leak"
	case ToyNextOpLeak:
		return "nextop-leak"
	}
	return "unknown"
}
