package separability_test

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/separability"
)

// TestMetricsPopulated runs the randomized checker with a registry
// attached and checks the bookkeeping adds up: totals match the Result,
// per-worker counters sum to the totals, and attaching metrics does not
// change the verification outcome.
func TestMetricsPopulated(t *testing.T) {
	opt := separability.Options{Trials: 8, StepsPerTrial: 40, Seed: 5, Workers: 4}

	bare := separability.CheckRandomized(separability.NewToySystem(separability.ToySecure), opt)

	reg := obs.NewRegistry()
	opt.Metrics = reg
	res := separability.CheckRandomized(separability.NewToySystem(separability.ToySecure), opt)

	if bare.Summary() != res.Summary() {
		t.Fatalf("metrics changed the outcome:\n  %s\n  %s", bare.Summary(), res.Summary())
	}
	if got := reg.CounterValue("sep_trials_total"); got != 8 {
		t.Fatalf("sep_trials_total = %d, want 8", got)
	}
	states := reg.CounterValue("sep_states_checked_total")
	if states != uint64(res.States) {
		t.Fatalf("sep_states_checked_total = %d, Result.States = %d", states, res.States)
	}
	if res.States != 8*40 {
		t.Fatalf("Result.States = %d, want %d", res.States, 8*40)
	}

	var wTrials, wStates uint64
	var condChecks uint64
	for _, cv := range reg.Counters() {
		switch {
		case strings.HasPrefix(cv.Name, "sep_worker_trials_total"):
			wTrials += cv.Value
		case strings.HasPrefix(cv.Name, "sep_worker_states_total"):
			wStates += cv.Value
		case strings.HasPrefix(cv.Name, "sep_checks_total"):
			condChecks += cv.Value
		}
	}
	if wTrials != 8 || wStates != states {
		t.Fatalf("per-worker sums: trials=%d states=%d, want 8 and %d", wTrials, wStates, states)
	}
	var resChecks uint64
	for _, n := range res.Checks {
		resChecks += uint64(n)
	}
	if condChecks != resChecks {
		t.Fatalf("sep_checks_total sums to %d, Result.Checks to %d", condChecks, resChecks)
	}
	if h := reg.Histogram("sep_trial_seconds", nil); h.Count() != 8 {
		t.Fatalf("sep_trial_seconds count = %d, want 8", h.Count())
	}
}

// TestMetricsSingleThreaded covers the Workers<=1 path (no per-worker
// counters, but totals still recorded).
func TestMetricsSingleThreaded(t *testing.T) {
	reg := obs.NewRegistry()
	opt := separability.Options{Trials: 3, StepsPerTrial: 20, Seed: 2, Metrics: reg}
	res := separability.CheckRandomized(separability.NewToySystem(separability.ToySecure), opt)
	if got := reg.CounterValue("sep_trials_total"); got != 3 {
		t.Fatalf("sep_trials_total = %d, want 3", got)
	}
	if got := reg.CounterValue("sep_states_checked_total"); got != uint64(res.States) {
		t.Fatalf("states counter %d != Result.States %d", got, res.States)
	}
}
