package separability

import (
	"math/rand"

	"repro/internal/model"
)

// This file is the replay surface of the randomized checker: the
// primitives package witness uses to turn a Violation into a standalone,
// re-executable counterexample. The contract rests on two facts about
// runTrial:
//
//   - the walk (Randomize, injected inputs, colour choices) draws from one
//     stream seeded by the trial seed, while each step's condition sweep
//     draws from a private stream seeded by (trial seed, step); and
//   - checkState leaves the system state exactly as it found it.
//
// Together these mean the state visited at (trial, step) is a pure
// function of the walk alone, and the condition sweep performed there is a
// pure function of that state plus StepCheckSeed(seed, trial, step) —
// whether or not any other sweep ran.

// stepSeed derives the per-step condition-sweep seed from a trial seed,
// reusing the trialSeed avalanche so streams stay uncorrelated.
func stepSeed(tseed int64, step int) int64 { return trialSeed(tseed, step) }

// StepCheckSeed returns the RNG seed the randomized checker's condition
// sweep uses at (Options.Seed, trial, step). A witness records this value;
// CheckStateSeeded with the same seed reproduces the identical sweep.
func StepCheckSeed(seed int64, trial, step int) int64 {
	return stepSeed(trialSeed(seed, trial), step)
}

// stepRand is the condition sweep's RNG: a SplitMix64 generator small
// enough to create per step without the ~5 KB state of math/rand's default
// source. It implements model.Rand; determinism of the sweep (and of
// witness replay) depends only on its seed.
type stepRand struct{ s uint64 }

func newStepRand(seed int64) *stepRand { return &stepRand{s: uint64(seed)} }

func (r *stepRand) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// Uint32 implements model.Rand.
func (r *stepRand) Uint32() uint32 { return uint32(r.next() >> 32) }

// Intn implements model.Rand.
func (r *stepRand) Intn(n int) int {
	if n <= 0 {
		panic("separability: stepRand.Intn called with n <= 0")
	}
	return int(r.next() % uint64(n))
}

// WalkTrial re-executes the state walk of one trial — Randomize plus the
// per-step input draws — without running any condition sweeps, visiting
// exactly the states CheckRandomized checked for the same Options. visit
// is called before each step's input is applied (so at step 0 the system
// sits in the trial's start state) with the input about to be injected
// (nil on non-input steps); returning false stops the walk with the
// step's input and operation NOT yet applied.
//
// opt must be the same Options value given to CheckRandomized (defaults
// are filled identically); the walk consumes the colour draws the checker
// would, so the stream stays aligned even though no colour is checked.
func WalkTrial(sys model.Perturbable, opt Options, trial int, visit func(step int, in model.Input) bool) {
	opt.fill()
	colours := opt.Colours
	if colours == nil {
		colours = sys.Colours()
	}
	walk := rand.New(rand.NewSource(trialSeed(opt.Seed, trial)))
	sys.Randomize(walk)
	for step := 0; step < opt.StepsPerTrial; step++ {
		var in model.Input
		if step%opt.InputEvery == opt.InputEvery-1 {
			in = sys.RandomInput(walk)
		}
		if !visit(step, in) {
			return
		}
		sys.ApplyInput(in)
		_ = colours[walk.Intn(len(colours))] // keep the stream aligned with runTrial
		sys.Step()
	}
}

// CheckStateSeeded runs the per-state condition sweep for colour c at the
// system's current state, drawing perturbations from the given seed, and
// returns the violations found (stamped with trial and step for
// reporting). The system state is left unchanged. With seed =
// StepCheckSeed(opt.Seed, trial, step) and the state the walk visited at
// (trial, step), the returned violations are exactly those CheckRandomized
// recorded there.
func CheckStateSeeded(sys model.Perturbable, c model.Colour, seed int64,
	trial, step int, sched bool) []Violation {

	res := &Result{Checks: map[Condition]int{}}
	checkState(sys, c, newStepRand(seed), res, trial, step, Options{CheckScheduling: sched})
	return res.Violations
}
