// Package separability implements Rushby's "Proof of Separability" as an
// executable verification technique: it checks the six conditions of the
// paper's Appendix against any system implementing the interfaces of
// package model.
//
// Two drivers are provided. CheckExhaustive visits every state and input of
// an Enumerable system and verifies the conditions universally — for toy
// systems this *is* a proof, by explicit-state model checking. The real
// SM11/SUE-Go system has far too many states for that, so CheckRandomized
// verifies the conditions on sampled reachable states, using the system's
// PerturbOutside operation to construct the Φ-equivalent state pairs the
// pairwise conditions quantify over. A randomized check is testing rather
// than proof, but every violation it reports is a genuine one, with a
// counterexample.
//
// The six conditions, restated operationally (see model's package comment
// for the setting):
//
//  1. COLOUR(s)=c  ⇒ Φc(op(s)) = ABOPc(op)(Φc(s))
//     — checked as a congruence: states with equal Φc and the same
//     operation must have equal Φc afterwards.
//  2. COLOUR(s)≠c  ⇒ Φc(op(s)) = Φc(s)
//  3. Φc(s)=Φc(s') ⇒ Φc(INPUT(s,i)) = Φc(INPUT(s',i))
//  4. EXTRACT(c,i)=EXTRACT(c,i') ⇒ Φc(INPUT(s,i)) = Φc(INPUT(s,i'))
//  5. Φc(s)=Φc(s') ⇒ EXTRACT(c,OUTPUT(s)) = EXTRACT(c,OUTPUT(s'))
//  6. COLOUR(s)=COLOUR(s')=c ∧ Φc(s)=Φc(s') ⇒ NEXTOP(s)=NEXTOP(s')
//
// Condition 1's ABOPc is never materialized: if the congruence holds, the
// abstract operation exists by construction (its value on an abstract state
// is the common image), which is exactly Hoare's abstraction-function
// argument the paper appeals to.
package separability

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/model"
	"repro/internal/obs"
)

// Condition identifies which of the six conditions a violation breaks.
// ConditionMeta flags a defect in the system's own perturbation operation
// (the checker validates it before trusting any pair), and
// ConditionSched is the scheduling-independence extension check, which is
// deliberately *not* one of the paper's six (see ExtensionNote).
type Condition int

// Condition values.
const (
	ConditionMeta  Condition = 0
	Condition1     Condition = 1
	Condition2     Condition = 2
	Condition3     Condition = 3
	Condition4     Condition = 4
	Condition5     Condition = 5
	Condition6     Condition = 6
	ConditionSched Condition = 7
)

// String names the condition.
func (c Condition) String() string {
	switch c {
	case ConditionMeta:
		return "meta(perturbation)"
	case ConditionSched:
		return "scheduling-independence(extension)"
	default:
		return fmt.Sprintf("condition %d", int(c))
	}
}

// ExtensionNote explains ConditionSched's standing relative to the paper.
const ExtensionNote = `The six conditions of the paper deliberately permit
scheduling channels: "denial of service is not a security problem" for the
single-function systems the SUE serves (paper, section 3). The
scheduling-independence check is therefore an extension, off by default:
it requires that WHICH colour runs next never depends on state outside the
active colour's abstract machine and the kernel's own scheduling state.`

// Violation is one counterexample to one condition.
type Violation struct {
	Condition Condition
	Colour    model.Colour
	Op        model.OpID
	Detail    string
	Trial     int
	Step      int
	// Want and Got are FNV-1a digests of the two encodings whose
	// disagreement constitutes the violation: the Φ^c digests for the
	// state-congruence conditions (Meta, 1, 2, 3, 4), and digests of the
	// compared extracts, OpIDs or colours for conditions 5, 6 and the
	// scheduling extension. They identify a counterexample across runs
	// (package witness matches replayed violations on them) without
	// re-deriving the full canonical strings.
	Want, Got uint64
}

func (v Violation) String() string {
	return fmt.Sprintf("%s for colour %q at trial %d step %d (op %q): %s",
		v.Condition, v.Colour, v.Trial, v.Step, v.Op, v.Detail)
}

// Result accumulates the outcome of a check.
//
// Result is NOT goroutine-safe: the parallel checkers have every worker
// accumulate violations and counts into a private Result and merge the
// per-trial (or per-colour) Results on a single goroutine once the workers
// are done, which also fixes a deterministic merge order.
type Result struct {
	Violations []Violation
	// Checks counts how many instances of each condition were verified.
	Checks map[Condition]int
	// OpChecks buckets the verified condition instances by the operation
	// class of the checked state (model.OpClass of its NEXTOP), feeding the
	// metrics-guided exploration work: under-exercised operation classes
	// show up as small buckets.
	OpChecks map[string]int
	// States counts the sampled states conditions were checked at.
	States int
}

// Passed reports whether no violation was found.
func (r *Result) Passed() bool { return len(r.Violations) == 0 }

// Summary renders a one-line outcome.
func (r *Result) Summary() string {
	total := 0
	for _, n := range r.Checks {
		total += n
	}
	if r.Passed() {
		return fmt.Sprintf("PASS: %d condition instances verified, 0 violations", total)
	}
	return fmt.Sprintf("FAIL: %d violations (first: %s)", len(r.Violations), r.Violations[0])
}

func (r *Result) add(v Violation) { r.Violations = append(r.Violations, v) }

func (r *Result) count(c Condition) { r.countN(c, 1) }

func (r *Result) countN(c Condition, n int) {
	if r.Checks == nil {
		r.Checks = map[Condition]int{}
	}
	r.Checks[c] += n
}

func (r *Result) countOp(class string, n int) {
	if n == 0 {
		return
	}
	if r.OpChecks == nil {
		r.OpChecks = map[string]int{}
	}
	r.OpChecks[class] += n
}

// totalChecks sums Checks across conditions; checkState uses before/after
// totals to attribute a state's checks to its operation class.
func (r *Result) totalChecks() int {
	total := 0
	for _, n := range r.Checks {
		total += n
	}
	return total
}

// Merge folds other into r: violations are appended in other's order and
// check counts are summed. Like every Result method it must be called from
// one goroutine at a time; the engines merge worker-private Results in
// trial (or colour) order after the workers finish, so merged output is
// identical regardless of worker count.
func (r *Result) Merge(other *Result) {
	if other == nil {
		return
	}
	for _, v := range other.Violations {
		r.add(v)
	}
	for c, n := range other.Checks {
		r.countN(c, n)
	}
	for class, n := range other.OpChecks {
		r.countOp(class, n)
	}
	r.States += other.States
}

// ViolatedConditions returns the distinct conditions violated.
func (r *Result) ViolatedConditions() []Condition {
	seen := map[Condition]bool{}
	var out []Condition
	for _, v := range r.Violations {
		if !seen[v.Condition] {
			seen[v.Condition] = true
			out = append(out, v.Condition)
		}
	}
	return out
}

// Options tunes a randomized check.
type Options struct {
	// Trials is the number of random reachable traces to explore.
	Trials int
	// StepsPerTrial is how many states along each trace are checked.
	StepsPerTrial int
	// Seed makes the exploration reproducible.
	Seed int64
	// MaxViolations stops the check early once this many counterexamples
	// have been collected (0 = 32).
	MaxViolations int
	// InputEvery injects a random input each time this many steps pass
	// while walking a trace (0 = 8).
	InputEvery int
	// CheckScheduling enables the scheduling-independence extension.
	CheckScheduling bool
	// Colours restricts checking to these colours (nil = all).
	Colours []model.Colour
	// Workers shards the trials across this many checker goroutines, each
	// owning a private replica of the system (1 = single-threaded;
	// 0 = one worker per CPU core, runtime.GOMAXPROCS(0)).
	// Using more than one worker requires the system to implement
	// model.Replicable (or use CheckRandomizedParallel with a factory);
	// non-replicable systems are checked single-threaded regardless.
	// Results are identical for every worker count.
	Workers int
	// Metrics, when non-nil, receives live progress and throughput
	// counters while the check runs (goroutine-safe; see package obs):
	//
	//	sep_trials_total, sep_states_checked_total,
	//	sep_violations_total, sep_checks_total{condition="..."},
	//	sep_checks_by_op_total{op="..."},
	//	sep_trial_seconds (histogram), and per worker
	//	sep_worker_trials_total{worker="N"},
	//	sep_worker_states_total{worker="N"},
	//	sep_worker_busy_us_total{worker="N"}.
	//
	// Metrics count the work actually performed; when MaxViolations stops
	// the deterministic merge early, the merged Result can report fewer
	// checks than the metrics (trials already run are still counted).
	// Attaching a registry never changes the Result.
	Metrics *obs.Registry
}

// trialSecondsBounds buckets per-trial wall time from 100µs to ~100s.
var trialSecondsBounds = []float64{0.0001, 0.001, 0.01, 0.1, 1, 10, 100}

// DefaultOptions returns options balanced for CI-speed checking of the
// SUE-Go kernel configurations used in the test suite.
func DefaultOptions(seed int64) Options {
	return Options{Trials: 6, StepsPerTrial: 60, Seed: seed}
}

func (o *Options) fill() {
	if o.Trials == 0 {
		o.Trials = 6
	}
	if o.StepsPerTrial == 0 {
		o.StepsPerTrial = 60
	}
	if o.MaxViolations == 0 {
		o.MaxViolations = 32
	}
	if o.InputEvery == 0 {
		o.InputEvery = 8
	}
	if o.Workers == 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
}

// CheckRandomized verifies the six conditions on randomly sampled
// reachable states of sys.
//
// Trials are mutually independent: each runs from its own deterministically
// derived RNG stream, so they can execute in any order — or concurrently,
// when Options.Workers > 1 and sys implements model.Replicable — and the
// merged Result is byte-identical for every worker count.
func CheckRandomized(sys model.Perturbable, opt Options) *Result {
	opt.fill()
	colours := opt.Colours
	if colours == nil {
		colours = sys.Colours()
	}
	if opt.Workers > 1 {
		if rep, ok := sys.(model.Replicable); ok {
			factory := func() model.Perturbable {
				clone, _ := rep.Clone().(model.Perturbable)
				return clone
			}
			if probe := factory(); probe != nil {
				return runTrialsParallel(sys, factory, opt, colours)
			}
		}
		// Not replicable: fall through to the single-threaded engine,
		// which produces the same Result a worker pool would.
	}
	res := &Result{Checks: map[Condition]int{}}
	for trial := 0; trial < opt.Trials; trial++ {
		// Deterministic stopping rule (shared with the parallel merge):
		// stop starting trials once the merged prefix hit the cap.
		if len(res.Violations) >= opt.MaxViolations {
			break
		}
		res.Merge(runTrial(sys, trial, opt, colours))
	}
	return res
}

// CheckRandomizedParallel runs CheckRandomized with each worker goroutine
// owning a system replica manufactured by factory, for systems that cannot
// implement model.Replicable but can be rebuilt from configuration. The
// factory must return independent instances; a nil return disables that
// worker (its trials are picked up by the others, or run on the first
// instance). Results are identical to a single-threaded CheckRandomized of
// a factory-built system with the same Options.
func CheckRandomizedParallel(factory func() model.Perturbable, opt Options) *Result {
	opt.fill()
	base := factory()
	if base == nil {
		return &Result{Checks: map[Condition]int{}}
	}
	colours := opt.Colours
	if colours == nil {
		colours = base.Colours()
	}
	if opt.Workers <= 1 {
		o := opt
		o.Workers = 1
		return CheckRandomized(base, o)
	}
	return runTrialsParallel(base, factory, opt, colours)
}

// runTrialsParallel shards trial indices across a worker pool. base is an
// instance reserved for the calling goroutine (used to backfill any trial
// a worker could not run); factory supplies each worker's private replica.
func runTrialsParallel(base model.Perturbable, factory func() model.Perturbable,
	opt Options, colours []model.Colour) *Result {

	workers := opt.Workers
	if workers > opt.Trials {
		workers = opt.Trials
	}
	results := make([]*Result, opt.Trials)
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			sys := factory()
			if sys == nil {
				return
			}
			// Per-worker throughput counters (created on demand; the
			// worker label is the pool slot, not a goroutine id).
			var wTrials, wStates, wBusy *obs.Counter
			if opt.Metrics != nil {
				wTrials = opt.Metrics.Counter(fmt.Sprintf("sep_worker_trials_total{worker=%q}", fmt.Sprint(w)))
				wStates = opt.Metrics.Counter(fmt.Sprintf("sep_worker_states_total{worker=%q}", fmt.Sprint(w)))
				wBusy = opt.Metrics.Counter(fmt.Sprintf("sep_worker_busy_us_total{worker=%q}", fmt.Sprint(w)))
			}
			for {
				trial := int(next.Add(1)) - 1
				if trial >= opt.Trials {
					return
				}
				start := time.Now()
				results[trial] = runTrial(sys, trial, opt, colours)
				if opt.Metrics != nil {
					wTrials.Inc()
					wStates.Add(uint64(results[trial].States))
					wBusy.Add(uint64(time.Since(start).Microseconds()))
				}
			}
		}(w)
	}
	wg.Wait()
	// Backfill trials no worker reached (factory failures) on base, then
	// merge in trial order under the deterministic stopping rule.
	res := &Result{Checks: map[Condition]int{}}
	for trial := 0; trial < opt.Trials; trial++ {
		if len(res.Violations) >= opt.MaxViolations {
			break
		}
		if results[trial] == nil {
			results[trial] = runTrial(base, trial, opt, colours)
		}
		res.Merge(results[trial])
	}
	return res
}

// trialSeed derives trial t's RNG seed from the user seed via a
// SplitMix64-style avalanche, so per-trial streams are uncorrelated while
// remaining a pure function of (Seed, trial).
func trialSeed(seed int64, trial int) int64 {
	z := uint64(seed) + 0x9e3779b97f4a7c15*uint64(trial+1)
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return int64(z)
}

// runTrial explores one random reachable trace and checks every applicable
// condition along it, accumulating into a private Result. It touches only
// sys and its own RNGs, so distinct trials may run concurrently on
// distinct replicas.
//
// Two RNG streams are involved. The walk stream (seeded from the trial
// seed) drives Randomize, the injected inputs and the per-step colour
// choice — everything that determines WHICH states get checked. Each
// step's condition sweep then draws from its own stream, seeded purely
// from (trial seed, step). The split is what makes counterexamples
// replayable: a witness that records the walk's inputs and a step's check
// seed can re-run that step's exact sweep from a restored state, with or
// without the intervening sweeps (they leave the state unchanged), and
// even over a shrunk prefix — see WalkTrial, CheckStateSeeded and package
// witness.
func runTrial(sys model.Perturbable, trial int, opt Options, colours []model.Colour) *Result {
	res := &Result{Checks: map[Condition]int{}}
	// Live progress counter: one atomic increment per checked state, so a
	// -progress consumer sees movement inside long trials, not just
	// between them. Everything else is recorded once per trial.
	var liveStates *obs.Counter
	var start time.Time
	if opt.Metrics != nil {
		liveStates = opt.Metrics.Counter("sep_states_checked_total")
		start = time.Now()
	}
	tseed := trialSeed(opt.Seed, trial)
	walk := rand.New(rand.NewSource(tseed))
	sys.Randomize(walk)
	for step := 0; step < opt.StepsPerTrial; step++ {
		if len(res.Violations) >= opt.MaxViolations {
			break
		}
		// Advance the input phase first so that states with freshly
		// raised device interrupts are among the states checked (the
		// interrupt-fielding operations are exactly where kernels
		// historically go wrong, and the paper's motivation for a new
		// technique).
		if step%opt.InputEvery == opt.InputEvery-1 {
			sys.ApplyInput(sys.RandomInput(walk))
		} else {
			sys.ApplyInput(nil)
		}

		c := colours[walk.Intn(len(colours))]
		checkState(sys, c, newStepRand(stepSeed(tseed, step)), res, trial, step, opt)
		res.States++
		if liveStates != nil {
			liveStates.Inc()
		}

		sys.Step()
	}
	if opt.Metrics != nil {
		reg := opt.Metrics
		reg.Counter("sep_trials_total").Inc()
		if n := len(res.Violations); n > 0 {
			reg.Counter("sep_violations_total").Add(uint64(n))
		}
		for c, n := range res.Checks {
			reg.Counter(fmt.Sprintf("sep_checks_total{condition=%q}", c.String())).Add(uint64(n))
		}
		for class, n := range res.OpChecks {
			reg.Counter(fmt.Sprintf("sep_checks_by_op_total{op=%q}", class)).Add(uint64(n))
		}
		reg.Histogram("sep_trial_seconds", trialSecondsBounds).
			Observe(time.Since(start).Seconds())
	}
	return res
}

// checkState verifies every applicable condition for colour c at the
// system's current state, leaving the system state unchanged.
//
// All hot-path Φ comparisons use 64-bit FNV digests (model.AbstractDigest)
// rather than the canonical strings; the strings are re-derived — by
// restoring the relevant states and calling Abstract — only on the cold
// path where a violation needs a human-readable Detail. A digest collision
// could mask a real violation with probability ~2^-64 per comparison,
// which is far below the residual risk of sampling itself.
//
// The sweep anchors on a stateScope, so systems implementing
// model.Checkpointer pay O(words touched) per reset instead of O(state);
// the check sequence (and every RNG draw) is identical on both paths.
func checkState(sys model.Perturbable, c model.Colour, rng model.Rand,
	res *Result, trial, step int, opt Options) {

	sc := openScope(sys)
	defer sc.close()

	active := sys.Colour()
	op := sys.NextOp()
	phi0 := model.AbstractDigest(sys, c)

	// Attribute this state's verified condition instances to its operation
	// class once the sweep (including early meta-failure exits) finishes.
	checksBefore := res.totalChecks()
	defer func() {
		res.countOp(model.OpClass(sys, op), res.totalChecks()-checksBefore)
	}()

	// phiString re-derives the canonical Φc encoding of the anchor state
	// (violation reporting only; leaves the system at the anchor).
	phiString := func() string {
		sc.reset()
		return sys.Abstract(c)
	}

	if active != c {
		// Condition 2: an operation on another's behalf must not change
		// Φc. Single-state check, no perturbation needed.
		sys.Step()
		if after := model.AbstractDigest(sys, c); after != phi0 {
			afterStr := sys.Abstract(c)
			res.add(Violation{Condition: Condition2, Colour: c, Op: op,
				Trial: trial, Step: step, Want: phi0, Got: after,
				Detail: diffDetail(phiString(), afterStr)})
		}
		res.count(Condition2)
		sc.reset()
	} else {
		// Conditions 1 and 6 via a perturbed twin: Φc is preserved by
		// construction, so the twin must select the same operation and
		// produce the same abstract successor.
		sys.Step()
		phiAfter := model.AbstractDigest(sys, c)
		sc.reset()

		sys.PerturbOutside(c, rng)
		if got := model.AbstractDigest(sys, c); got != phi0 {
			gotStr := sys.Abstract(c)
			res.add(Violation{Condition: ConditionMeta, Colour: c, Op: op,
				Trial: trial, Step: step, Want: phi0, Got: got,
				Detail: "PerturbOutside failed to preserve Φc: " + diffDetail(phiString(), gotStr)})
			res.count(ConditionMeta)
			return
		}
		if sys.Colour() == c {
			op2 := sys.NextOp()
			res.count(Condition6)
			if op2 != op {
				res.add(Violation{Condition: Condition6, Colour: c, Op: op,
					Trial: trial, Step: step,
					Want: model.DigestString(string(op)), Got: model.DigestString(string(op2)),
					Detail: fmt.Sprintf("NEXTOP %q vs %q on Φc-equal states", op, op2)})
			}
			sys.Step()
			res.count(Condition1)
			if got := model.AbstractDigest(sys, c); got != phiAfter {
				gotStr := sys.Abstract(c)
				sc.reset()
				sys.Step()
				res.add(Violation{Condition: Condition1, Colour: c, Op: op,
					Trial: trial, Step: step, Want: phiAfter, Got: got,
					Detail: "Φc after op differs on Φc-equal states: " + diffDetail(sys.Abstract(c), gotStr)})
			}
		}
		sc.reset()
	}

	// Condition 5: outputs extract equal on Φc-equal states. The extracts
	// are compared as strings (they are the counterexample payload and are
	// cheap relative to Φ); only the Φ-preservation guard uses digests.
	out0 := sys.ExtractOutput(c, sys.CurrentOutput())
	sys.PerturbOutside(c, rng)
	if model.AbstractDigest(sys, c) == phi0 {
		res.count(Condition5)
		if out1 := sys.ExtractOutput(c, sys.CurrentOutput()); out1 != out0 {
			res.add(Violation{Condition: Condition5, Colour: c, Op: op,
				Trial: trial, Step: step,
				Want: model.DigestString(out0), Got: model.DigestString(out1),
				Detail: fmt.Sprintf("EXTRACT(c,OUTPUT) %q vs %q", out0, out1)})
		}
	}
	sc.reset()

	// phiInString re-derives Φc of INPUT(anchor, in) for violation reports.
	phiInString := func(in model.Input) string {
		sc.reset()
		sys.ApplyInput(in)
		return sys.Abstract(c)
	}

	// Condition 3: same input on Φc-equal states.
	in := sys.RandomInput(rng)
	sys.ApplyInput(in)
	phiIn := model.AbstractDigest(sys, c)
	sc.reset()
	sys.PerturbOutside(c, rng)
	if model.AbstractDigest(sys, c) == phi0 {
		sys.ApplyInput(in)
		res.count(Condition3)
		if got := model.AbstractDigest(sys, c); got != phiIn {
			gotStr := sys.Abstract(c)
			res.add(Violation{Condition: Condition3, Colour: c, Op: op,
				Trial: trial, Step: step, Want: phiIn, Got: got,
				Detail: "Φc after INPUT differs on Φc-equal states: " + diffDetail(phiInString(in), gotStr)})
		}
	}
	sc.reset()

	// Condition 4: inputs with equal c-extract act equally on Φc.
	in2 := sys.RandomInputMatching(c, in, rng)
	if sys.ExtractInput(c, in) == sys.ExtractInput(c, in2) {
		sys.ApplyInput(in2)
		res.count(Condition4)
		if got := model.AbstractDigest(sys, c); got != phiIn {
			gotStr := sys.Abstract(c)
			res.add(Violation{Condition: Condition4, Colour: c, Op: op,
				Trial: trial, Step: step, Want: phiIn, Got: got,
				Detail: "Φc after INPUT differs on EXTRACT-equal inputs: " + diffDetail(phiInString(in), gotStr)})
		}
		sc.reset()
	}

	// Extension: the scheduling decision after the active colour's own
	// operation must not depend on state outside that colour.
	if opt.CheckScheduling && active == c {
		sys.Step()
		colAfter := sys.Colour()
		sc.reset()
		sys.PerturbOutside(c, rng)
		if model.AbstractDigest(sys, c) == phi0 && sys.Colour() == c {
			sys.Step()
			res.count(ConditionSched)
			if got := sys.Colour(); got != colAfter {
				res.add(Violation{Condition: ConditionSched, Colour: c, Op: op,
					Trial: trial, Step: step,
					Want: model.DigestString(string(colAfter)), Got: model.DigestString(string(got)),
					Detail: fmt.Sprintf("next active colour %q vs %q after identical op", colAfter, got)})
			}
		}
		sc.reset()
	}
}

// diffDetail renders a compact description of where two Φ encodings differ.
func diffDetail(a, b string) string {
	if len(a) != len(b) {
		return fmt.Sprintf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := 0; i < len(a); i++ {
		if a[i] != b[i] {
			lo := i - 24
			if lo < 0 {
				lo = 0
			}
			hi := i + 24
			if hi > len(a) {
				hi = len(a)
			}
			return fmt.Sprintf("first difference at byte %d: %q vs %q", i, a[lo:hi], b[lo:hi])
		}
	}
	return "equal (no difference found?)"
}
