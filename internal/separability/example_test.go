package separability_test

import (
	"fmt"

	"repro/internal/separability"
)

// Exhaustive checking of a small system is a proof: every state and input
// is visited and all six conditions verified universally.
func ExampleCheckExhaustive() {
	secure := separability.NewToySystem(separability.ToySecure)
	fmt.Println(separability.CheckExhaustive(secure, 0).Passed())

	leaky := separability.NewToySystem(separability.ToyDirectWrite)
	res := separability.CheckExhaustive(leaky, 0)
	fmt.Println(res.Passed())
	fmt.Println(res.ViolatedConditions())
	// Output:
	// true
	// false
	// [condition 2]
}

// Randomized checking scales to systems too large to enumerate; every
// violation it reports is a genuine counterexample.
func ExampleCheckRandomized() {
	sys := separability.NewToySystem(separability.ToyCovertStore)
	res := separability.CheckRandomized(sys, separability.Options{
		Trials: 20, StepsPerTrial: 40, Seed: 7,
	})
	fmt.Println(res.Passed())
	fmt.Println(res.ViolatedConditions())
	// Output:
	// false
	// [condition 1]
}
