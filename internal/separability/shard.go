package separability

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"

	"repro/internal/model"
)

// Shard artifacts follow the conventions of internal/witness: canonical
// JSON (encoding/json with struct field order and sorted map keys) carrying
// a content-address ID — the first 16 hex digits of the SHA-256 of the
// record with its ID blanked. Readers are total: arbitrary bytes yield an
// error, never a panic, and any edit to a sealed file (truncation,
// tampering, a result file passed off as a checkpoint) breaks the ID and is
// rejected. Writes go through a temp file plus rename, so a worker killed
// mid-write leaves either the previous complete artifact or the new one,
// never a torn file.

const (
	// ShardSchemaVersion versions the shard-result/checkpoint schema.
	ShardSchemaVersion = 1
	// KindShardResult and KindShardCheckpoint discriminate the two
	// artifact flavours; each reader accepts only its own.
	KindShardResult     = "shard-result"
	KindShardCheckpoint = "shard-checkpoint"
)

// ShardParams pins everything a sweep's partition depends on. Two shard
// artifacts may only be merged — and a checkpoint only resumed — when
// their parameters describe the same sweep of the same space.
type ShardParams struct {
	Target        string   `json:"target,omitempty"`
	Shard         int      `json:"shard"`
	Shards        int      `json:"shards"`
	ChunkSize     int      `json:"chunkSize"`
	MaxViolations int      `json:"maxViolations"`
	States        int      `json:"states"`
	Inputs        int      `json:"inputs"`
	Colours       []string `json:"colours"`
}

// NChunks returns the chunk count of the partition the parameters describe.
func (p ShardParams) NChunks() int {
	if p.ChunkSize <= 0 {
		return 0
	}
	return (p.States + p.ChunkSize - 1) / p.ChunkSize
}

// UnitsPerState is the progress weight of one state: its op pass plus one
// pass per enumerated input.
func (p ShardParams) UnitsPerState() int { return 1 + p.Inputs }

func (p ShardParams) validate() error {
	switch {
	case p.Shards < 1:
		return fmt.Errorf("shards %d < 1", p.Shards)
	case p.Shard < 0 || p.Shard >= p.Shards:
		return fmt.Errorf("shard %d outside [0,%d)", p.Shard, p.Shards)
	case p.ChunkSize < 1:
		return fmt.Errorf("chunk size %d < 1", p.ChunkSize)
	case p.MaxViolations < 1:
		return fmt.Errorf("max violations %d < 1", p.MaxViolations)
	case p.States < 0:
		return fmt.Errorf("negative state count %d", p.States)
	case p.Inputs < 0:
		return fmt.Errorf("negative input count %d", p.Inputs)
	case len(p.Colours) == 0:
		return fmt.Errorf("no colours")
	}
	return nil
}

// sameSweep reports whether q describes the same partitioned sweep as p,
// ignoring which shard each side is.
func (p ShardParams) sameSweep(q ShardParams) error {
	switch {
	case p.Target != q.Target:
		return fmt.Errorf("target %q, want %q", p.Target, q.Target)
	case p.Shards != q.Shards:
		return fmt.Errorf("shard count %d, want %d", p.Shards, q.Shards)
	case p.ChunkSize != q.ChunkSize:
		return fmt.Errorf("chunk size %d, want %d", p.ChunkSize, q.ChunkSize)
	case p.MaxViolations != q.MaxViolations:
		return fmt.Errorf("max violations %d, want %d", p.MaxViolations, q.MaxViolations)
	case p.States != q.States:
		return fmt.Errorf("state count %d, want %d", p.States, q.States)
	case p.Inputs != q.Inputs:
		return fmt.Errorf("input count %d, want %d", p.Inputs, q.Inputs)
	}
	if len(p.Colours) != len(q.Colours) {
		return fmt.Errorf("%d colours, want %d", len(p.Colours), len(q.Colours))
	}
	for i := range p.Colours {
		if p.Colours[i] != q.Colours[i] {
			return fmt.Errorf("colour[%d] %q, want %q", i, p.Colours[i], q.Colours[i])
		}
	}
	return nil
}

// ViolationRecord is the codec form of one Violation; digests are rendered
// as fixed-width hex so the JSON is stable and greppable.
type ViolationRecord struct {
	Condition int    `json:"condition"`
	Colour    string `json:"colour"`
	Op        string `json:"op"`
	Detail    string `json:"detail,omitempty"`
	Trial     int    `json:"trial,omitempty"`
	Step      int    `json:"step"`
	Want      string `json:"want"`
	Got       string `json:"got"`
}

// ResultRecord is the codec form of one per-colour Result. Checks is keyed
// by the integer Condition value.
type ResultRecord struct {
	Violations []ViolationRecord `json:"violations,omitempty"`
	Checks     map[string]int    `json:"checks,omitempty"`
	OpChecks   map[string]int    `json:"opChecks,omitempty"`
	States     int               `json:"states,omitempty"`
}

// ShardResult is the sealed artifact of one completed shard sweep.
type ShardResult struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	ID      string `json:"id"`
	ShardParams
	StartChunk int             `json:"startChunk"`
	EndChunk   int             `json:"endChunk"`
	PerColour  []*ResultRecord `json:"perColour"`
}

// ShardCheckpoint is the resumable progress artifact of one shard: every
// chunk in [StartChunk, Frontier) is folded into PerColour; Done marks a
// finished shard.
type ShardCheckpoint struct {
	Version int    `json:"version"`
	Kind    string `json:"kind"`
	ID      string `json:"id"`
	ShardParams
	StartChunk int             `json:"startChunk"`
	EndChunk   int             `json:"endChunk"`
	Frontier   int             `json:"frontier"`
	Done       bool            `json:"done,omitempty"`
	PerColour  []*ResultRecord `json:"perColour"`
}

func newShardCheckpoint(params ShardParams, startChunk, endChunk, frontier int,
	done bool, acc []*Result) *ShardCheckpoint {
	return &ShardCheckpoint{
		Version: ShardSchemaVersion, Kind: KindShardCheckpoint, ShardParams: params,
		StartChunk: startChunk, EndChunk: endChunk, Frontier: frontier, Done: done,
		PerColour: resultRecords(acc),
	}
}

// contentID seals the canonical JSON of v (which must already have its ID
// field blanked) into a 16-hex-digit content address.
func contentID(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])[:16], nil
}

func (sr *ShardResult) computeID() (string, error) {
	cp := *sr
	cp.ID = ""
	return contentID(&cp)
}

func (ck *ShardCheckpoint) computeID() (string, error) {
	cp := *ck
	cp.ID = ""
	return contentID(&cp)
}

func (sr *ShardResult) seal() error {
	id, err := sr.computeID()
	sr.ID = id
	return err
}

// Validate checks internal consistency: schema version and kind, the
// content-address ID, parameter sanity, the chunk range against the
// partition function, and that every record decodes.
func (sr *ShardResult) Validate() error {
	if sr.Version != ShardSchemaVersion {
		return fmt.Errorf("unsupported shard-result version %d", sr.Version)
	}
	if sr.Kind != KindShardResult {
		return fmt.Errorf("kind %q, want %q", sr.Kind, KindShardResult)
	}
	id, err := sr.computeID()
	if err != nil {
		return err
	}
	if sr.ID != id {
		return fmt.Errorf("ID %q does not match content %q: file truncated or tampered", sr.ID, id)
	}
	if err := sr.ShardParams.validate(); err != nil {
		return err
	}
	n := sr.NChunks()
	if sr.StartChunk != sr.Shard*n/sr.Shards || sr.EndChunk != (sr.Shard+1)*n/sr.Shards {
		return fmt.Errorf("chunk range [%d,%d) inconsistent with shard %d/%d over %d chunks",
			sr.StartChunk, sr.EndChunk, sr.Shard, sr.Shards, n)
	}
	return validateRecords(sr.PerColour, len(sr.Colours))
}

// Validate is ShardResult.Validate for checkpoints, additionally pinning
// the frontier inside the shard's chunk range.
func (ck *ShardCheckpoint) Validate() error {
	if ck.Version != ShardSchemaVersion {
		return fmt.Errorf("unsupported shard-checkpoint version %d", ck.Version)
	}
	if ck.Kind != KindShardCheckpoint {
		return fmt.Errorf("kind %q, want %q", ck.Kind, KindShardCheckpoint)
	}
	id, err := ck.computeID()
	if err != nil {
		return err
	}
	if ck.ID != id {
		return fmt.Errorf("ID %q does not match content %q: file truncated or tampered", ck.ID, id)
	}
	if err := ck.ShardParams.validate(); err != nil {
		return err
	}
	n := ck.NChunks()
	if ck.StartChunk != ck.Shard*n/ck.Shards || ck.EndChunk != (ck.Shard+1)*n/ck.Shards {
		return fmt.Errorf("chunk range [%d,%d) inconsistent with shard %d/%d over %d chunks",
			ck.StartChunk, ck.EndChunk, ck.Shard, ck.Shards, n)
	}
	if ck.Frontier < ck.StartChunk || ck.Frontier > ck.EndChunk {
		return fmt.Errorf("frontier %d outside chunk range [%d,%d]",
			ck.Frontier, ck.StartChunk, ck.EndChunk)
	}
	if ck.Done && ck.Frontier != ck.EndChunk {
		return fmt.Errorf("done checkpoint with frontier %d != end chunk %d",
			ck.Frontier, ck.EndChunk)
	}
	return validateRecords(ck.PerColour, len(ck.Colours))
}

func validateRecords(rrs []*ResultRecord, colours int) error {
	if len(rrs) != colours {
		return fmt.Errorf("%d per-colour records for %d colours", len(rrs), colours)
	}
	for ci, rr := range rrs {
		if rr == nil {
			return fmt.Errorf("perColour[%d] missing", ci)
		}
		if _, err := rr.result(); err != nil {
			return fmt.Errorf("perColour[%d]: %w", ci, err)
		}
	}
	return nil
}

// Result folds this shard's per-colour records into one Result; for a
// single-shard run this is the full verdict.
func (sr *ShardResult) Result() (*Result, error) {
	perColour := make([]*Result, len(sr.PerColour))
	for ci, rr := range sr.PerColour {
		r, err := rr.result()
		if err != nil {
			return nil, fmt.Errorf("separability: shard %d colour %d: %w", sr.Shard, ci, err)
		}
		perColour[ci] = r
	}
	return foldColours(perColour, sr.MaxViolations), nil
}

// WriteFile seals the result (if not yet sealed) and writes it atomically.
func (sr *ShardResult) WriteFile(path string) error {
	if sr.ID == "" {
		if err := sr.seal(); err != nil {
			return err
		}
	}
	b, err := json.Marshal(sr)
	if err != nil {
		return err
	}
	return writeFileAtomic(path, append(b, '\n'))
}

func writeShardCheckpoint(path string, ck *ShardCheckpoint) error {
	id, err := ck.computeID()
	if err != nil {
		return err
	}
	ck.ID = id
	b, err := json.Marshal(ck)
	if err != nil {
		return err
	}
	return writeFileAtomic(path, append(b, '\n'))
}

// writeFileAtomic writes through a same-directory temp file and rename, so
// readers and resumed runs never observe a torn artifact.
func writeFileAtomic(path string, b []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// DecodeShardResult decodes and validates one shard-result artifact. It is
// total over arbitrary bytes: errors, never panics.
func DecodeShardResult(b []byte) (*ShardResult, error) {
	sr := &ShardResult{}
	if err := json.Unmarshal(b, sr); err != nil {
		return nil, err
	}
	if err := sr.Validate(); err != nil {
		return nil, err
	}
	return sr, nil
}

// DecodeShardCheckpoint is DecodeShardResult for checkpoint artifacts.
func DecodeShardCheckpoint(b []byte) (*ShardCheckpoint, error) {
	ck := &ShardCheckpoint{}
	if err := json.Unmarshal(b, ck); err != nil {
		return nil, err
	}
	if err := ck.Validate(); err != nil {
		return nil, err
	}
	return ck, nil
}

// ReadShardResult reads and validates a shard-result file.
func ReadShardResult(path string) (*ShardResult, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	sr, err := DecodeShardResult(b)
	if err != nil {
		return nil, fmt.Errorf("separability: %s: %w", path, err)
	}
	return sr, nil
}

// ReadShardCheckpoint reads and validates a checkpoint file. A missing
// file is a cold start, reported as (nil, nil); an unreadable or invalid
// one is an error.
func ReadShardCheckpoint(path string) (*ShardCheckpoint, error) {
	b, err := os.ReadFile(path)
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	ck, err := DecodeShardCheckpoint(b)
	if err != nil {
		return nil, fmt.Errorf("separability: %s: %w", path, err)
	}
	return ck, nil
}

// MergeShards folds a complete shard set (given in any order) into the
// combined Result, byte-identical to the unsharded run: per-colour records
// concatenate in shard order under the violation cap, then colours fold in
// colour order exactly as the in-process engine does.
func MergeShards(srs []*ShardResult) (*Result, error) {
	if len(srs) == 0 {
		return nil, fmt.Errorf("separability: no shard results to merge")
	}
	sorted := append([]*ShardResult(nil), srs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Shard < sorted[j].Shard })
	want := sorted[0].ShardParams
	if len(sorted) != want.Shards {
		return nil, fmt.Errorf("separability: have %d shard results, want %d", len(sorted), want.Shards)
	}
	nc := len(want.Colours)
	perColour := make([]*Result, nc)
	for ci := range perColour {
		perColour[ci] = &Result{Checks: map[Condition]int{}}
	}
	for i, sr := range sorted {
		if sr.Shard != i {
			return nil, fmt.Errorf("separability: shard set has a duplicate or gap at shard %d", i)
		}
		if err := sr.ShardParams.sameSweep(want); err != nil {
			return nil, fmt.Errorf("separability: shard %d: %w", sr.Shard, err)
		}
		if len(sr.PerColour) != nc {
			return nil, fmt.Errorf("separability: shard %d: %d per-colour records for %d colours",
				sr.Shard, len(sr.PerColour), nc)
		}
		for ci := range perColour {
			cr, err := sr.PerColour[ci].result()
			if err != nil {
				return nil, fmt.Errorf("separability: shard %d colour %d: %w", sr.Shard, ci, err)
			}
			perColour[ci].Merge(cr)
			perColour[ci].Violations = truncatePerCondition(perColour[ci].Violations, want.MaxViolations)
		}
	}
	return foldColours(perColour, want.MaxViolations), nil
}

// MergeShardFiles reads and merges shard-result files.
func MergeShardFiles(paths []string) (*Result, error) {
	srs := make([]*ShardResult, 0, len(paths))
	for _, p := range paths {
		sr, err := ReadShardResult(p)
		if err != nil {
			return nil, err
		}
		srs = append(srs, sr)
	}
	return MergeShards(srs)
}

func resultRecords(rs []*Result) []*ResultRecord {
	out := make([]*ResultRecord, len(rs))
	for i, r := range rs {
		out[i] = resultRecord(r)
	}
	return out
}

// NewViolationRecord converts one Violation to its stable codec form, for
// artifact stores outside this package (the sepwatch build ledger records
// the violations behind each FAIL verdict this way).
func NewViolationRecord(v Violation) ViolationRecord {
	return ViolationRecord{
		Condition: int(v.Condition), Colour: string(v.Colour), Op: string(v.Op),
		Detail: v.Detail, Trial: v.Trial, Step: v.Step,
		Want: fmt.Sprintf("%016x", v.Want), Got: fmt.Sprintf("%016x", v.Got),
	}
}

func resultRecord(r *Result) *ResultRecord {
	rr := &ResultRecord{States: r.States}
	for _, v := range r.Violations {
		rr.Violations = append(rr.Violations, NewViolationRecord(v))
	}
	if len(r.Checks) > 0 {
		rr.Checks = make(map[string]int, len(r.Checks))
		for c, n := range r.Checks {
			rr.Checks[strconv.Itoa(int(c))] = n
		}
	}
	if len(r.OpChecks) > 0 {
		rr.OpChecks = make(map[string]int, len(r.OpChecks))
		for k, n := range r.OpChecks {
			rr.OpChecks[k] = n
		}
	}
	return rr
}

// result decodes the record back into a Result, rejecting malformed
// digests, unknown conditions and negative counts.
func (rr *ResultRecord) result() (*Result, error) {
	r := &Result{Checks: map[Condition]int{}, States: rr.States}
	for i, vr := range rr.Violations {
		if vr.Condition < int(ConditionMeta) || vr.Condition > int(ConditionSched) {
			return nil, fmt.Errorf("violation %d: unknown condition %d", i, vr.Condition)
		}
		want, err := parseDigest(vr.Want)
		if err != nil {
			return nil, fmt.Errorf("violation %d: want: %w", i, err)
		}
		got, err := parseDigest(vr.Got)
		if err != nil {
			return nil, fmt.Errorf("violation %d: got: %w", i, err)
		}
		r.Violations = append(r.Violations, Violation{
			Condition: Condition(vr.Condition), Colour: model.Colour(vr.Colour),
			Op: model.OpID(vr.Op), Detail: vr.Detail, Trial: vr.Trial, Step: vr.Step,
			Want: want, Got: got,
		})
	}
	for k, n := range rr.Checks {
		c, err := strconv.Atoi(k)
		if err != nil || c < int(ConditionMeta) || c > int(ConditionSched) {
			return nil, fmt.Errorf("bad condition key %q", k)
		}
		if n < 0 {
			return nil, fmt.Errorf("negative check count for condition %s", k)
		}
		r.Checks[Condition(c)] = n
	}
	for k, n := range rr.OpChecks {
		if n < 0 {
			return nil, fmt.Errorf("negative op check count for %q", k)
		}
		if r.OpChecks == nil {
			r.OpChecks = make(map[string]int, len(rr.OpChecks))
		}
		r.OpChecks[k] = n
	}
	return r, nil
}

func parseDigest(s string) (uint64, error) {
	if len(s) != 16 {
		return 0, fmt.Errorf("digest %q is not 16 hex digits", s)
	}
	v, err := strconv.ParseUint(s, 16, 64)
	if err != nil {
		return 0, fmt.Errorf("digest %q: %w", s, err)
	}
	return v, nil
}
