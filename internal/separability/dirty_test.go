package separability_test

import (
	"testing"

	"repro/internal/model"
	"repro/internal/separability"
)

// trackedToy wraps ToySystem with a Checkpointer and an *exact*
// DirtyTracker: checkpoints are full saves, and DirtyColours answers by
// honestly comparing each colour's digest against its checkpoint-time
// value. Exact tracking is the strongest mask an implementation may legally
// return, so verdict equivalence here bounds every sound tracker.
type trackedToy struct {
	*separability.ToySystem
}

type toyCheckpoint struct {
	ref model.StateRef
	phi []uint64
}

func (tt *trackedToy) Checkpoint() model.Checkpoint {
	cp := &toyCheckpoint{ref: tt.Save()}
	for _, c := range tt.Colours() {
		cp.phi = append(cp.phi, model.AbstractDigest(tt.ToySystem, c))
	}
	return cp
}

func (tt *trackedToy) Rollback(cp model.Checkpoint) { tt.Restore(cp.(*toyCheckpoint).ref) }
func (tt *trackedToy) Release(cp model.Checkpoint)  { tt.Restore(cp.(*toyCheckpoint).ref) }

func (tt *trackedToy) DirtyColours(cp model.Checkpoint) (uint64, bool) {
	st := cp.(*toyCheckpoint)
	var mask uint64
	for ci, c := range tt.Colours() {
		if model.AbstractDigest(tt.ToySystem, c) != st.phi[ci] {
			mask |= 1 << uint(ci)
		}
	}
	return mask, true
}

func (tt *trackedToy) Clone() model.SharedSystem {
	return &trackedToy{ToySystem: tt.ToySystem.Clone().(*separability.ToySystem)}
}

// TestExhaustiveDirtyTrackerEquivalence: the footprint shortcut must be
// invisible in verdicts. For every toy variant — secure and each planted
// leak — CheckExhaustive over the tracked wrapper must produce the same
// summary, violations and check counts as over the plain system, serial
// and sharded.
func TestExhaustiveDirtyTrackerEquivalence(t *testing.T) {
	for v := separability.ToySecure; v <= separability.ToyNextOpLeak; v++ {
		name := separability.ToyVariantName(v)
		plain := separability.CheckExhaustiveWorkers(separability.NewToySystem(v), 0, 1)
		tracked := separability.CheckExhaustiveWorkers(
			&trackedToy{ToySystem: separability.NewToySystem(v)}, 0, 1)
		requireIdentical(t, plain, tracked, name+"/serial")
		par := separability.CheckExhaustiveWorkers(
			&trackedToy{ToySystem: separability.NewToySystem(v)}, 0, 4)
		requireIdentical(t, plain, par, name+"/parallel")
	}
}

// allCleanToy lies: every colour is always reported clean. Illegal as a
// real tracker, but it proves the checker actually consults the mask — on
// a direct-write leak the planted violations vanish, because the checker
// reuses anchor digests instead of recomputing Φ after each mutation.
type allCleanToy struct {
	trackedToy
}

func (at *allCleanToy) DirtyColours(model.Checkpoint) (uint64, bool) { return 0, true }

func TestExhaustiveDirtyTrackerIsConsulted(t *testing.T) {
	honest := separability.CheckExhaustiveWorkers(
		separability.NewToySystem(separability.ToyDirectWrite), 0, 1)
	if len(honest.Violations) == 0 {
		t.Fatal("direct-write variant should violate condition 2")
	}
	lying := separability.CheckExhaustiveWorkers(&allCleanToy{
		trackedToy{ToySystem: separability.NewToySystem(separability.ToyDirectWrite)}}, 0, 1)
	if len(lying.Violations) != 0 {
		t.Fatalf("all-clean tracker should mask the violations (checker not consulting the mask?): %d reported",
			len(lying.Violations))
	}
}
