package separability_test

import (
	"reflect"
	"testing"

	"repro/internal/separability"
)

func TestToySecureExhaustivePasses(t *testing.T) {
	sys := separability.NewToySystem(separability.ToySecure)
	res := separability.CheckExhaustive(sys, 0)
	if !res.Passed() {
		t.Fatalf("secure toy system failed exhaustive check: %s", res.Summary())
	}
	// Every condition must actually have been exercised.
	for c := separability.Condition1; c <= separability.Condition6; c++ {
		if res.Checks[c] == 0 {
			t.Errorf("%s was never checked", c)
		}
	}
}

func TestToyVariantsCaughtExhaustive(t *testing.T) {
	for variant, want := range separability.ToyVariantConditions {
		name := separability.ToyVariantName(variant)
		t.Run(name, func(t *testing.T) {
			sys := separability.NewToySystem(variant)
			res := separability.CheckExhaustive(sys, 0)
			if res.Passed() {
				t.Fatalf("insecure variant %s passed the exhaustive check", name)
			}
			found := false
			for _, got := range res.ViolatedConditions() {
				if got == want {
					found = true
				}
			}
			if !found {
				t.Errorf("variant %s: want %s among violations, got %v",
					name, want, res.ViolatedConditions())
			}
		})
	}
}

func TestToySecureRandomizedPasses(t *testing.T) {
	sys := separability.NewToySystem(separability.ToySecure)
	opt := separability.Options{Trials: 20, StepsPerTrial: 50, Seed: 1}
	res := separability.CheckRandomized(sys, opt)
	if !res.Passed() {
		t.Fatalf("secure toy system failed randomized check: %s", res.Summary())
	}
	for _, c := range []separability.Condition{
		separability.Condition1, separability.Condition2,
		separability.Condition3, separability.Condition5,
		separability.Condition6,
	} {
		if res.Checks[c] == 0 {
			t.Errorf("randomized check never exercised %s", c)
		}
	}
}

func TestToyVariantsCaughtRandomized(t *testing.T) {
	for variant, want := range separability.ToyVariantConditions {
		name := separability.ToyVariantName(variant)
		t.Run(name, func(t *testing.T) {
			sys := separability.NewToySystem(variant)
			opt := separability.Options{Trials: 40, StepsPerTrial: 60, Seed: 7}
			res := separability.CheckRandomized(sys, opt)
			if res.Passed() {
				t.Fatalf("insecure variant %s passed the randomized check", name)
			}
			found := false
			for _, got := range res.ViolatedConditions() {
				if got == want {
					found = true
				}
			}
			if !found {
				t.Errorf("variant %s: want %s among violations, got %v",
					name, want, res.ViolatedConditions())
			}
		})
	}
}

func TestResultSummaryFormats(t *testing.T) {
	sys := separability.NewToySystem(separability.ToySecure)
	res := separability.CheckExhaustive(sys, 0)
	if got := res.Summary(); len(got) == 0 || got[:4] != "PASS" {
		t.Errorf("summary = %q, want PASS...", got)
	}
	bad := separability.NewToySystem(separability.ToyDirectWrite)
	res = separability.CheckExhaustive(bad, 0)
	if got := res.Summary(); len(got) == 0 || got[:4] != "FAIL" {
		t.Errorf("summary = %q, want FAIL...", got)
	}
}

// MaxViolations caps the counterexamples collected per condition: no
// condition may exceed the cap, and every condition the uncapped run
// catches must still surface under a tight cap.
func TestMaxViolationsCapsPerCondition(t *testing.T) {
	bad := separability.NewToySystem(separability.ToyDirectWrite)
	res := separability.CheckExhaustive(bad, 5)
	perCond := map[separability.Condition]int{}
	for _, v := range res.Violations {
		perCond[v.Condition]++
	}
	for c, n := range perCond {
		if n > 5 {
			t.Errorf("collected %d violations for %s, cap was 5", n, c)
		}
	}
	full := separability.CheckExhaustive(separability.NewToySystem(separability.ToyDirectWrite), 1<<20)
	want := full.ViolatedConditions()
	got := separability.CheckExhaustive(separability.NewToySystem(separability.ToyDirectWrite), 1).ViolatedConditions()
	if !reflect.DeepEqual(want, got) {
		t.Errorf("cap 1 lost conditions: got %v, uncapped %v", got, want)
	}
}
