package separability_test

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/separability"
	"repro/internal/verifysys"
)

// These tests verify the real SUE-Go kernel with the standard verification
// system of package verifysys (worker + peer + probe regimes).

func build(t testing.TB, probe string, leaks kernel.Leaks, cut bool) *kernel.Adapter {
	t.Helper()
	sys, err := verifysys.Build(probe, leaks, cut)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestHonestCutKernelPassesSeparability(t *testing.T) {
	for _, probe := range []struct{ name, src string }{
		{"plain", verifysys.ProbePlain},
		{"combined", verifysys.ProbeCombined},
		{"scratch", verifysys.ProbeScratch},
		{"overlap", verifysys.ProbeOverlap},
	} {
		t.Run(probe.name, func(t *testing.T) {
			sys := build(t, probe.src, kernel.Leaks{}, true)
			opt := separability.Options{
				Trials: 6, StepsPerTrial: 80, Seed: 42, CheckScheduling: true,
			}
			res := separability.CheckRandomized(sys, opt)
			if !res.Passed() {
				for i, v := range res.Violations {
					if i > 4 {
						break
					}
					t.Logf("violation: %s", v)
				}
				t.Fatalf("honest cut kernel failed: %s", res.Summary())
			}
			for _, c := range []separability.Condition{
				separability.Condition1, separability.Condition2,
				separability.Condition3, separability.Condition6,
			} {
				if res.Checks[c] == 0 {
					t.Errorf("%s was never exercised", c)
				}
			}
		})
	}
}

func TestUncutKernelShowsConfiguredChannelFlows(t *testing.T) {
	// With channels NOT cut, information legitimately flows worker->probe
	// and probe->worker, so isolation checking must fail — that failure is
	// what motivates the cutting transformation (paper, section 4).
	sys := build(t, verifysys.ProbePlain, kernel.Leaks{}, false)
	opt := separability.Options{Trials: 6, StepsPerTrial: 80, Seed: 42}
	res := separability.CheckRandomized(sys, opt)
	if res.Passed() {
		t.Fatal("uncut kernel passed isolation checking; the configured channels should register as flows")
	}
	t.Logf("uncut flows registered as: %v", res.ViolatedConditions())
}

func TestLeakyKernelsCaught(t *testing.T) {
	cases := []struct {
		name  string
		leaks kernel.Leaks
		sched bool // requires the scheduling extension
	}{
		{"RegisterLeak", kernel.Leaks{RegisterLeak: true}, false},
		{"PartitionOverlap", kernel.Leaks{PartitionOverlap: true}, false},
		{"SharedScratch", kernel.Leaks{SharedScratch: true}, false},
		{"InterruptMisroute", kernel.Leaks{InterruptMisroute: true}, false},
		{"ChannelAlias", kernel.Leaks{ChannelAlias: true}, false},
		{"OutputCopy", kernel.Leaks{OutputCopy: true}, false},
		{"SchedulerSnoop", kernel.Leaks{SchedulerSnoop: true}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := build(t, verifysys.ProbeFor(tc.leaks), tc.leaks, true)
			opt := separability.Options{
				Trials: 10, StepsPerTrial: 100, Seed: 99,
				CheckScheduling: tc.sched,
			}
			res := separability.CheckRandomized(sys, opt)
			if res.Passed() {
				t.Fatalf("leak %s was NOT caught by separability checking", tc.name)
			}
			t.Logf("%s caught: %v", tc.name, res.ViolatedConditions())
			if tc.sched {
				found := false
				for _, c := range res.ViolatedConditions() {
					if c == separability.ConditionSched {
						found = true
					}
				}
				if !found {
					t.Errorf("SchedulerSnoop should trip the scheduling extension; got %v",
						res.ViolatedConditions())
				}
			}
			// A perturbation defect would invalidate the whole run.
			for _, v := range res.Violations {
				if v.Condition == separability.ConditionMeta {
					t.Errorf("meta violation (adapter defect): %s", v)
				}
			}
		})
	}
}

func TestSchedulerSnoopInvisibleToSixConditions(t *testing.T) {
	// The paper scopes scheduling/denial-of-service out of its security
	// model ("denial of service is not a security problem", section 3).
	// SchedulerSnoop demonstrates that boundary: the literal six
	// conditions do not see it.
	sys := build(t, verifysys.ProbePlain, kernel.Leaks{SchedulerSnoop: true}, true)
	opt := separability.Options{Trials: 8, StepsPerTrial: 80, Seed: 11}
	res := separability.CheckRandomized(sys, opt)
	if !res.Passed() {
		t.Fatalf("six conditions unexpectedly flagged the pure scheduling channel: %s",
			res.Summary())
	}
}

// Seed robustness: the honest kernel must pass for every exploration seed
// (a seed-dependent false positive would make the checker useless).
func TestHonestKernelManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short mode")
	}
	for seed := int64(1); seed <= 12; seed++ {
		sys := build(t, verifysys.ProbePlain, kernel.Leaks{}, true)
		res := separability.CheckRandomized(sys, separability.Options{
			Trials: 3, StepsPerTrial: 50, Seed: seed, CheckScheduling: true,
		})
		if !res.Passed() {
			t.Fatalf("seed %d: honest kernel failed: %s", seed, res.Summary())
		}
	}
}
