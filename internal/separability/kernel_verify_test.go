package separability_test

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/kernel"
	"repro/internal/model"
	"repro/internal/separability"
	"repro/internal/verifysys"
)

// These tests verify the real SUE-Go kernel with the standard verification
// system of package verifysys (worker + peer + probe regimes).

func build(t testing.TB, probe string, leaks kernel.Leaks, cut bool) *kernel.Adapter {
	t.Helper()
	sys, err := verifysys.Build(probe, leaks, cut)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func TestHonestCutKernelPassesSeparability(t *testing.T) {
	for _, probe := range []struct{ name, src string }{
		{"plain", verifysys.ProbePlain},
		{"combined", verifysys.ProbeCombined},
		{"scratch", verifysys.ProbeScratch},
		{"overlap", verifysys.ProbeOverlap},
	} {
		t.Run(probe.name, func(t *testing.T) {
			sys := build(t, probe.src, kernel.Leaks{}, true)
			opt := separability.Options{
				Trials: 6, StepsPerTrial: 80, Seed: 42, CheckScheduling: true,
			}
			res := separability.CheckRandomized(sys, opt)
			if !res.Passed() {
				for i, v := range res.Violations {
					if i > 4 {
						break
					}
					t.Logf("violation: %s", v)
				}
				t.Fatalf("honest cut kernel failed: %s", res.Summary())
			}
			for _, c := range []separability.Condition{
				separability.Condition1, separability.Condition2,
				separability.Condition3, separability.Condition6,
			} {
				if res.Checks[c] == 0 {
					t.Errorf("%s was never exercised", c)
				}
			}
		})
	}
}

func TestUncutKernelShowsConfiguredChannelFlows(t *testing.T) {
	// With channels NOT cut, information legitimately flows worker->probe
	// and probe->worker, so isolation checking must fail — that failure is
	// what motivates the cutting transformation (paper, section 4).
	sys := build(t, verifysys.ProbePlain, kernel.Leaks{}, false)
	opt := separability.Options{Trials: 6, StepsPerTrial: 80, Seed: 42}
	res := separability.CheckRandomized(sys, opt)
	if res.Passed() {
		t.Fatal("uncut kernel passed isolation checking; the configured channels should register as flows")
	}
	t.Logf("uncut flows registered as: %v", res.ViolatedConditions())
}

func TestLeakyKernelsCaught(t *testing.T) {
	cases := []struct {
		name  string
		leaks kernel.Leaks
		sched bool // requires the scheduling extension
	}{
		{"RegisterLeak", kernel.Leaks{RegisterLeak: true}, false},
		{"PartitionOverlap", kernel.Leaks{PartitionOverlap: true}, false},
		{"SharedScratch", kernel.Leaks{SharedScratch: true}, false},
		{"InterruptMisroute", kernel.Leaks{InterruptMisroute: true}, false},
		{"ChannelAlias", kernel.Leaks{ChannelAlias: true}, false},
		{"OutputCopy", kernel.Leaks{OutputCopy: true}, false},
		{"SchedulerSnoop", kernel.Leaks{SchedulerSnoop: true}, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys := build(t, verifysys.ProbeFor(tc.leaks), tc.leaks, true)
			opt := separability.Options{
				Trials: 10, StepsPerTrial: 100, Seed: 99,
				CheckScheduling: tc.sched,
			}
			res := separability.CheckRandomized(sys, opt)
			if res.Passed() {
				t.Fatalf("leak %s was NOT caught by separability checking", tc.name)
			}
			t.Logf("%s caught: %v", tc.name, res.ViolatedConditions())
			if tc.sched {
				found := false
				for _, c := range res.ViolatedConditions() {
					if c == separability.ConditionSched {
						found = true
					}
				}
				if !found {
					t.Errorf("SchedulerSnoop should trip the scheduling extension; got %v",
						res.ViolatedConditions())
				}
			}
			// A perturbation defect would invalidate the whole run.
			for _, v := range res.Violations {
				if v.Condition == separability.ConditionMeta {
					t.Errorf("meta violation (adapter defect): %s", v)
				}
			}
		})
	}
}

func TestSchedulerSnoopInvisibleToSixConditions(t *testing.T) {
	// The paper scopes scheduling/denial-of-service out of its security
	// model ("denial of service is not a security problem", section 3).
	// SchedulerSnoop demonstrates that boundary: the literal six
	// conditions do not see it.
	sys := build(t, verifysys.ProbePlain, kernel.Leaks{SchedulerSnoop: true}, true)
	opt := separability.Options{Trials: 8, StepsPerTrial: 80, Seed: 11}
	res := separability.CheckRandomized(sys, opt)
	if !res.Passed() {
		t.Fatalf("six conditions unexpectedly flagged the pure scheduling channel: %s",
			res.Summary())
	}
}

// The kernel adapter's native AbstractDigest must be exactly the FNV-1a
// hash of the canonical Abstract string, on randomly sampled reachable
// states (the adapter state space cannot be enumerated, so this samples
// the same distribution the randomized checker visits).
func TestAdapterDigestMatchesAbstract(t *testing.T) {
	for _, cut := range []bool{true, false} {
		sys := build(t, verifysys.ProbePlain, kernel.Leaks{}, cut)
		rng := rand.New(rand.NewSource(23))
		for trial := 0; trial < 4; trial++ {
			sys.Randomize(rng)
			for step := 0; step < 40; step++ {
				if step%5 == 0 {
					sys.ApplyInput(sys.RandomInput(rng))
				} else {
					sys.ApplyInput(nil)
				}
				for _, c := range sys.Colours() {
					str := sys.Abstract(c)
					if got, want := sys.AbstractDigest(c), model.DigestString(str); got != want {
						t.Fatalf("cut=%v colour %s: AbstractDigest %x, FNV(Abstract) %x (len %d)",
							cut, c, got, want, len(str))
					}
				}
				sys.Step()
			}
		}
	}
}

// Adapter.Clone must produce a replica that (a) agrees with the original
// on every colour's abstract state, and (b) evolves independently.
func TestAdapterCloneIndependence(t *testing.T) {
	sys := build(t, verifysys.ProbePlain, kernel.Leaks{}, true)
	rng := rand.New(rand.NewSource(3))
	sys.Randomize(rng)

	clone, ok := sys.Clone().(*kernel.Adapter)
	if !ok || clone == nil {
		t.Fatal("adapter Clone failed on a replicable device set")
	}
	for _, c := range sys.Colours() {
		if clone.Abstract(c) != sys.Abstract(c) {
			t.Fatalf("clone disagrees on Φ^%s immediately after cloning", c)
		}
	}
	if clone.NextOp() != sys.NextOp() {
		t.Fatalf("clone selects %q where original selects %q", clone.NextOp(), sys.NextOp())
	}

	// Lock in the clone's view, advance only the original.
	before := map[model.Colour]string{}
	for _, c := range clone.Colours() {
		before[c] = clone.Abstract(c)
	}
	for i := 0; i < 25; i++ {
		sys.ApplyInput(nil)
		sys.Step()
	}
	for _, c := range clone.Colours() {
		if got := clone.Abstract(c); got != before[c] {
			t.Errorf("stepping the original moved the clone's Φ^%s", c)
		}
	}

	// Identical stimuli from identical states must keep them in lockstep
	// (the clone is a real machine, not a stale view).
	clone2, _ := sys.Clone().(*kernel.Adapter)
	if clone2 == nil {
		t.Fatal("second clone failed")
	}
	for i := 0; i < 25; i++ {
		sys.ApplyInput(nil)
		sys.Step()
		clone2.ApplyInput(nil)
		clone2.Step()
	}
	for _, c := range sys.Colours() {
		if sys.Abstract(c) != clone2.Abstract(c) {
			t.Errorf("lockstep broke for colour %s", c)
		}
	}
}

// Worker-count determinism on the real kernel: the acceptance bar is
// byte-identical Summary() output (and in fact identical violation lists)
// between the serial and parallel engines for a fixed seed.
func TestKernelParallelDeterminism(t *testing.T) {
	cases := []struct {
		name  string
		leaks kernel.Leaks
	}{
		{"honest", kernel.Leaks{}},
		{"RegisterLeak", kernel.Leaks{RegisterLeak: true}},
		{"SharedScratch", kernel.Leaks{SharedScratch: true}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			opt := separability.Options{
				Trials: 6, StepsPerTrial: 60, Seed: 42, CheckScheduling: true,
			}
			opt.Workers = 1
			serial := separability.CheckRandomized(
				build(t, verifysys.ProbeFor(tc.leaks), tc.leaks, true), opt)
			for _, workers := range []int{2, 5} {
				opt.Workers = workers
				par := separability.CheckRandomized(
					build(t, verifysys.ProbeFor(tc.leaks), tc.leaks, true), opt)
				if serial.Summary() != par.Summary() {
					t.Fatalf("workers=%d: summary diverged:\n  serial:   %s\n  parallel: %s",
						workers, serial.Summary(), par.Summary())
				}
				if !reflect.DeepEqual(serial.Violations, par.Violations) {
					t.Fatalf("workers=%d: violation lists diverged", workers)
				}
				if !reflect.DeepEqual(serial.Checks, par.Checks) {
					t.Fatalf("workers=%d: check counts diverged: %v vs %v",
						workers, serial.Checks, par.Checks)
				}
			}
		})
	}
}

// Seed robustness: the honest kernel must pass for every exploration seed
// (a seed-dependent false positive would make the checker useless).
func TestHonestKernelManySeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("seed sweep skipped in -short mode")
	}
	for seed := int64(1); seed <= 12; seed++ {
		sys := build(t, verifysys.ProbePlain, kernel.Leaks{}, true)
		res := separability.CheckRandomized(sys, separability.Options{
			Trials: 3, StepsPerTrial: 50, Seed: seed, CheckScheduling: true,
		})
		if !res.Passed() {
			t.Fatalf("seed %d: honest kernel failed: %s", seed, res.Summary())
		}
	}
}
