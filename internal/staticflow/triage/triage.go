// Package triage reconciles the static analyzer's residual flows with the
// dynamic Proof-of-Separability evidence. The paper's §4 point is that a
// syntactic analyzer over-rejects: some residual flows are real channels,
// most are artifacts of the abstraction. Triage makes that distinction
// operational — each residual flow is mapped to the separability conditions
// and Φ-encoding location that would witness it dynamically, the witness
// store (internal/witness) is queried for a matching counterexample, and
// the flow is classified:
//
//   - CONFIRMED: a captured counterexample disagrees exactly where the
//     static flow lands — the flow is dynamically realizable (in the
//     deployment the store was captured from);
//   - SPURIOUS: no witness matches AND a dynamic separability check of the
//     analyzed system passed — the flow is an artifact of syntactic
//     certification, the §4 false positive made explicit;
//   - UNDECIDED: no witness and no clean pass — no dynamic evidence either
//     way.
package triage

import (
	"fmt"
	"regexp"
	"strings"

	"repro/internal/separability"
	"repro/internal/staticflow"
	"repro/internal/witness"
)

// Class is a triage verdict for one residual flow.
type Class string

// The three verdicts.
const (
	Confirmed Class = "CONFIRMED"
	Spurious  Class = "SPURIOUS"
	Undecided Class = "UNDECIDED"
)

// Finding is one classified residual flow.
type Finding struct {
	// Flow is the static violation being triaged.
	Flow staticflow.Flow
	// Location is the Φ-encoding field the flow lands in ("r5", "mem",
	// "ch"), used to match witness digests; empty when the destination has
	// no Φ rendering.
	Location string
	// Conditions are the separability conditions whose violation would
	// dynamically witness this flow.
	Conditions []separability.Condition
	Class      Class
	// Evidence names the deciding artifact: the witness, or the clean
	// dynamic pass.
	Evidence string
}

// Options configures Classify.
type Options struct {
	// Witnesses is the loaded witness store (see witness.Load); nil or
	// empty means no captured counterexamples.
	Witnesses []*witness.Witness
	// CleanPass records that a dynamic separability check of the analyzed
	// system passed: unmatched flows become SPURIOUS instead of UNDECIDED.
	CleanPass bool
	// CleanNote describes the passing check for the evidence column
	// (defaulted when empty).
	CleanNote string
}

var registerDst = regexp.MustCompile(`register R([0-5])`)

// locate maps a static flow to the Φ-encoding field it pollutes and the
// separability conditions that would expose it.
func locate(f staticflow.Flow) (string, []separability.Condition) {
	// Channel flows are observable through EXTRACT/OUTPUT: conditions 5/6.
	if f.Kind == staticflow.FlowChannel || strings.Contains(f.Dst, "channel") {
		return "ch", []separability.Condition{
			separability.Condition5, separability.Condition6,
		}
	}
	// State stores perturb Φ^c: the congruence conditions (and the
	// scheduling extension, which also compares abstract state).
	congruence := []separability.Condition{
		separability.ConditionMeta, separability.Condition1,
		separability.Condition2, separability.Condition3,
		separability.Condition4, separability.ConditionSched,
	}
	if m := registerDst.FindStringSubmatch(f.Dst); m != nil {
		return "r" + m[1], congruence
	}
	if strings.HasPrefix(f.Dst, "mem[") {
		return "mem", congruence
	}
	if strings.Contains(f.Dst, "flags") || strings.Contains(f.Dst, "condition codes") {
		return "cc", congruence
	}
	return "", congruence
}

// Classify triages every violation in the report. The result preserves the
// report's (deterministic) violation order.
func Classify(rep *staticflow.Report, opt Options) []Finding {
	findings := make([]Finding, 0, len(rep.Violations))
	for _, v := range rep.Violations {
		loc, conds := locate(v)
		f := Finding{Flow: v, Location: loc, Conditions: conds}
		var hit *witness.Witness
		if loc != "" {
			q := witness.Query{Conditions: conds, Field: loc}
			if ws := witness.Find(opt.Witnesses, q); len(ws) > 0 {
				hit = ws[0]
			}
		}
		switch {
		case hit != nil:
			f.Class = Confirmed
			f.Evidence = fmt.Sprintf("witness %s (%s, colour %q, leak %q)",
				hit.ID, separability.Condition(hit.Condition), hit.Colour,
				hit.System.Leak)
		case opt.CleanPass:
			f.Class = Spurious
			f.Evidence = opt.CleanNote
			if f.Evidence == "" {
				f.Evidence = "proof of separability passed"
			}
		default:
			f.Class = Undecided
			f.Evidence = "no matching witness; no clean dynamic pass"
		}
		findings = append(findings, f)
	}
	return findings
}

// Count tallies the findings per class.
func Count(fs []Finding) map[Class]int {
	m := map[Class]int{}
	for _, f := range fs {
		m[f.Class]++
	}
	return m
}

// Summary renders the one-line tally, with the classification rate the
// acceptance gate watches (UNDECIDED = unclassified).
func Summary(fs []Finding) string {
	c := Count(fs)
	classified := len(fs) - c[Undecided]
	pct := 100
	if len(fs) > 0 {
		pct = classified * 100 / len(fs)
	}
	return fmt.Sprintf("%d residual flows: %d CONFIRMED, %d SPURIOUS, %d UNDECIDED (%d%% classified)",
		len(fs), c[Confirmed], c[Spurious], c[Undecided], pct)
}

// Table renders the classified findings deterministically (golden-tested
// by cmd/sepflow).
func Table(fs []Finding) string {
	var b strings.Builder
	b.WriteString("residual flow triage (static flows vs dynamic evidence):\n")
	fmt.Fprintf(&b, "  %-5s %-9s %-24s %-10s %s\n",
		"addr", "location", "destination", "class", "evidence")
	for _, f := range fs {
		loc := f.Location
		if loc == "" {
			loc = "-"
		}
		fmt.Fprintf(&b, "  %04x  %-9s %-24s %-10s %s\n",
			f.Flow.Addr, loc, f.Flow.Dst, f.Class, f.Evidence)
	}
	b.WriteString("  " + Summary(fs) + "\n")
	return b.String()
}
