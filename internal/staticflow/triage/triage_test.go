package triage_test

import (
	"fmt"
	"strings"
	"testing"

	"repro/internal/separability"
	"repro/internal/staticflow"
	"repro/internal/staticflow/triage"
	"repro/internal/verifysys"
	"repro/internal/witness"
)

func swapReport(t *testing.T) *staticflow.Report {
	t.Helper()
	rep, err := staticflow.AnalyzeKernelSwap([]staticflow.Colour{"red", "black"}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Violations) != 7 {
		t.Fatalf("SWAP violations = %d, want 7", len(rep.Violations))
	}
	return rep
}

// r5Witness fabricates a RegisterLeak-shaped counterexample: Φ^c first
// differs inside the r5 field.
func r5Witness(cond separability.Condition) *witness.Witness {
	phi := "r0=0001;r1=0002;r2=0003;r3=0004;r4=0005;r5=1111;sp=0100;"
	other := strings.Replace(phi, "r5=1111", "r5=2222", 1)
	return &witness.Witness{
		ID:        "deadbeefdeadbeef",
		System:    witness.SystemSpec{Kind: "verifysys", Leak: "RegisterLeak", Cut: true},
		Condition: int(cond),
		Colour:    "peer",
		Detail: fmt.Sprintf("first difference at byte 43: %q vs %q",
			phi[19:], other[19:]),
	}
}

// The acceptance gate: on the golden (honest) kernel, with the dynamic
// check passed, every residual SWAP flow classifies — no UNDECIDED.
func TestHonestSwapAllSpurious(t *testing.T) {
	rep := swapReport(t)
	fs := triage.Classify(rep, triage.Options{
		CleanPass: true, CleanNote: "proof of separability passed (seed 99)",
	})
	if len(fs) != 7 {
		t.Fatalf("findings = %d, want 7", len(fs))
	}
	c := triage.Count(fs)
	if c[triage.Spurious] != 7 || c[triage.Undecided] != 0 || c[triage.Confirmed] != 0 {
		t.Errorf("classes = %v, want 7 SPURIOUS", c)
	}
	if s := triage.Summary(fs); !strings.Contains(s, "100% classified") {
		t.Errorf("summary %q lacks the 100%% classification rate", s)
	}
}

// A RegisterLeak witness confirms exactly the R5 restore; the clean pass
// dismisses the rest.
func TestRegisterLeakWitnessConfirmsR5(t *testing.T) {
	rep := swapReport(t)
	fs := triage.Classify(rep, triage.Options{
		Witnesses: []*witness.Witness{r5Witness(separability.Condition1)},
		CleanPass: true,
	})
	for _, f := range fs {
		want := triage.Spurious
		if f.Location == "r5" {
			want = triage.Confirmed
		}
		if f.Class != want {
			t.Errorf("%s (%04x): class %s, want %s", f.Location, f.Flow.Addr, f.Class, want)
		}
		if f.Class == triage.Confirmed && !strings.Contains(f.Evidence, "deadbeefdeadbeef") {
			t.Errorf("confirmed finding does not name its witness: %s", f.Evidence)
		}
	}
}

// An I/O-condition witness must NOT confirm a register flow: the condition
// set gates the match.
func TestConditionSetGatesMatching(t *testing.T) {
	rep := swapReport(t)
	fs := triage.Classify(rep, triage.Options{
		Witnesses: []*witness.Witness{r5Witness(separability.Condition5)},
	})
	for _, f := range fs {
		if f.Class != triage.Undecided {
			t.Errorf("%s: class %s, want UNDECIDED (condition 5 is not a state-congruence witness)",
				f.Location, f.Class)
		}
	}
}

// Without witnesses or a clean pass there is no evidence either way.
func TestNoEvidenceIsUndecided(t *testing.T) {
	fs := triage.Classify(swapReport(t), triage.Options{})
	for _, f := range fs {
		if f.Class != triage.Undecided {
			t.Errorf("%s: class %s, want UNDECIDED", f.Location, f.Class)
		}
	}
	if s := triage.Summary(fs); !strings.Contains(s, "0% classified") {
		t.Errorf("summary %q should report 0%% classified", s)
	}
}

// Channel endpoint flows map to the I/O conditions and the ch location.
func TestChannelFlowLocation(t *testing.T) {
	rep := &staticflow.Report{Violations: []staticflow.Flow{{
		Kind: staticflow.FlowStore, Addr: 0x100,
		From: "red", To: "⊥", Dst: "uncut channel import",
	}}}
	fs := triage.Classify(rep, triage.Options{})
	if fs[0].Location != "ch" {
		t.Errorf("channel flow location = %q, want ch", fs[0].Location)
	}
	want := []separability.Condition{separability.Condition5, separability.Condition6}
	if len(fs[0].Conditions) != 2 || fs[0].Conditions[0] != want[0] || fs[0].Conditions[1] != want[1] {
		t.Errorf("channel flow conditions = %v, want %v", fs[0].Conditions, want)
	}
}

// End to end against a real store: capture RegisterLeak counterexamples
// with the actual checker, then triage the honest SWAP's residual flows
// against them — the R5 restore is the one the leak build realizes.
func TestTriageAgainstCapturedStore(t *testing.T) {
	if testing.Short() {
		t.Skip("capture is slow in -short mode")
	}
	spec := verifysys.SpecFor("RegisterLeak", true, false)
	sys, err := verifysys.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	copt := separability.Options{Trials: 10, StepsPerTrial: 100, Seed: 99,
		CheckScheduling: true}
	res := separability.CheckRandomized(sys, copt)
	if res.Passed() {
		t.Fatal("RegisterLeak not caught; no witnesses to triage against")
	}
	ws, err := witness.Capture(sys, copt, res, witness.Options{System: spec})
	if err != nil {
		t.Fatal(err)
	}

	fs := triage.Classify(swapReport(t), triage.Options{
		Witnesses: ws, CleanPass: true, CleanNote: "honest kernel passed",
	})
	c := triage.Count(fs)
	if c[triage.Undecided] != 0 {
		t.Errorf("classes = %v: residual flows left UNDECIDED with a full store", c)
	}
	var confirmedR5 bool
	for _, f := range fs {
		if f.Location == "r5" && f.Class == triage.Confirmed {
			confirmedR5 = true
		}
	}
	if !confirmedR5 {
		var lines []string
		for _, w := range ws {
			lines = append(lines, fmt.Sprintf("%s cond=%d colour=%s field=%q",
				w.ID, w.Condition, w.Colour, w.Field()))
		}
		t.Errorf("R5 restore not confirmed by the RegisterLeak store:\n%s\n%s",
			strings.Join(lines, "\n"), triage.Table(fs))
	}
}
