package staticflow_test

import (
	"encoding/binary"
	"testing"

	"repro/internal/asm"
	"repro/internal/machine"
	"repro/internal/staticflow"
)

// vsaFuzzSeed assembles a source program into the fuzzer's byte encoding
// (LE org followed by LE image words).
func vsaFuzzSeed(f *testing.F, src string) {
	f.Helper()
	img, err := asm.Assemble(src)
	if err != nil {
		f.Fatalf("seed assemble: %v", err)
	}
	buf := make([]byte, 2+2*len(img.Words))
	binary.LittleEndian.PutUint16(buf, uint16(img.Org))
	for i, w := range img.Words {
		binary.LittleEndian.PutUint16(buf[2+2*i:], uint16(w))
	}
	f.Add(buf)
}

// FuzzVSAResolve is the soundness oracle for the indirect-jump resolver:
// whatever the value-set analysis claims about a site's targets, the real
// interpreter must agree. Each resolved site's observed jump targets —
// swept over several initial memory fills and register values, since VSA
// assumes nothing about either — must be a subset of the resolved target
// set. A target taken at a resolved site that is missing from the set
// means the analyzer wired a CFG edge that hides real control flow: a
// soundness bug, not a precision one.
func FuzzVSAResolve(f *testing.F) {
	// The canonical bounded table dispatch.
	vsaFuzzSeed(f, `
	.org 0x40
start:	MOV @0x500, R1
	AND #1, R1
	MOV tab(R1), R2
	JMP (R2)
a:	MOV #1, @0x200
	HALT
b:	MOV #2, @0x201
	HALT
tab:	.word a
	.word b
`)
	// Register-constant jump, no table.
	vsaFuzzSeed(f, `
	.org 0x40
start:	MOV #done, R2
	JMP (R2)
done:	HALT
`)
	// Indexed jump: JMP disp(Rn) computes PC without a memory read.
	vsaFuzzSeed(f, `
	.org 0x40
start:	MOV #0, R3
	AND #1, R3
	JMP hops(R3)
hops:	HALT
	HALT
`)
	// Unresolvable: the selector is unbounded.
	vsaFuzzSeed(f, `
	.org 0x40
start:	MOV @0x500, R1
	MOV tab(R1), R2
	JMP (R2)
a:	HALT
tab:	.word a
`)
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) < 4 || len(data) > 1024 {
			return
		}
		org := staticflow.Word(binary.LittleEndian.Uint16(data))
		words := make([]staticflow.Word, 0, (len(data)-2)/2)
		for i := 2; i+1 < len(data); i += 2 {
			words = append(words, staticflow.Word(binary.LittleEndian.Uint16(data[i:])))
		}
		if len(words) == 0 {
			return
		}
		img := &asm.Image{Org: org, Words: words}
		g, err := staticflow.BuildCFG(img)
		if err != nil || len(g.Resolved) == 0 {
			return
		}
		inTargets := func(site, to staticflow.Word) bool {
			for _, tgt := range g.Resolved[site] {
				if tgt == to {
					return true
				}
			}
			return false
		}

		for variant := 0; variant < 4; variant++ {
			m := machine.New(0) // default: kernel mode, interrupts masked
			ram := staticflow.Word(m.RAMWords())
			if org >= ram || int(org)+len(words) > m.RAMWords() {
				return
			}
			// VSA assumed nothing about memory outside the image or about
			// initial register values: sweep both.
			fill := staticflow.Word(0x1111 * (variant + 1))
			for a := staticflow.Word(0); a < ram; a++ {
				m.WritePhys(a, fill^a)
			}
			if err := m.LoadImage(org, words); err != nil {
				return
			}
			for r := 0; r < 6; r++ {
				m.SetReg(r, fill+staticflow.Word(r))
			}
			m.SetPC(org)
			if s, ok := img.Symbol("start"); ok {
				m.SetPC(s)
			}
			for step := 0; step < 512 && !m.Halted(); step++ {
				pc := m.PC()
				if pc < org || pc >= org+staticflow.Word(len(words)) {
					break // left the image: undecoded territory
				}
				op := machine.DecodeOp(m.ReadPhys(pc))
				if op == machine.OpTRAP || op == machine.OpWAIT ||
					op == machine.OpMTPS || op > machine.OpMUL {
					// Raw execution diverges from the static model here
					// (kernel semantics, PSW rewrite, illegal-op trap).
					break
				}
				_, site := g.Resolved[pc]
				m.Step()
				if site && !inTargets(pc, m.PC()) {
					t.Fatalf("site %04x: interpreter went to %04x, resolved set %v (variant %d)",
						pc, m.PC(), g.Resolved[pc], variant)
				}
			}
		}
	})
}
