package staticflow_test

import (
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/ifa"
	"repro/internal/kernel"
	"repro/internal/staticflow"
)

func assemble(t *testing.T, src string) *asm.Image {
	t.Helper()
	img, err := asm.Assemble(kernel.Prelude + src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return img
}

func analyze(t *testing.T, src string, spec staticflow.Spec) *staticflow.Report {
	t.Helper()
	rep, err := staticflow.Analyze(assemble(t, src), spec)
	if err != nil {
		t.Fatalf("analyze: %v", err)
	}
	return rep
}

// twoColour classifies a red program with a black-coloured window at
// [0x500, 0x510) inside an otherwise red partition.
func twoColour(name string) staticflow.Spec {
	return staticflow.Spec{
		Name:  name,
		Entry: "red",
		Regions: []staticflow.Region{
			{Name: "black.window", Lo: 0x500, Hi: 0x510, Colour: "black"},
			{Name: "partition", Lo: 0, Hi: 0x1000, Colour: "red"},
		},
	}
}

func TestExplicitFlowRejected(t *testing.T) {
	rep := analyze(t, `
		.org 0x40
	start:	MOV @0x500, R1
		MOV R1, @0x100
		HALT
	`, twoColour("explicit"))
	if rep.Certified() {
		t.Fatalf("certified despite black->red move:\n%s", rep)
	}
	found := false
	for _, v := range rep.Violations {
		if v.From == "black" && v.Dst == "register R1" && !v.Implicit {
			found = true
			if len(v.Chain) == 0 {
				t.Errorf("violation %s has no provenance chain", v)
			}
		}
	}
	if !found {
		t.Errorf("no explicit black->R1 violation in:\n%s", rep)
	}
}

func TestSameColourMoveCertified(t *testing.T) {
	// A black regime shuffling black words stays certified. (A *red* regime
	// doing the same move ahead of a conditional branch is rejected — MOV
	// sets the condition codes, which belong to the executing context — so
	// the entry colour must be black; see TestFlagResidueRejected.)
	spec := staticflow.Spec{
		Name:  "samecolour",
		Entry: "black",
		Regions: []staticflow.Region{
			{Name: "black.window", Lo: 0x500, Hi: 0x510, Colour: "black"},
			{Name: "partition", Lo: 0, Hi: 0x1000, Colour: "red"},
		},
	}
	rep := analyze(t, `
		.org 0x40
	start:	MOV @0x500, @0x508
		HALT
	`, spec)
	if !rep.Certified() {
		t.Fatalf("black->black store rejected:\n%s", rep)
	}
}

func TestFlagResidueRejected(t *testing.T) {
	// The same move performed by a red regime leaves the black word's
	// residue in the condition codes. Whether that is a flow depends on
	// liveness: followed by a conditional branch the codes are read, so the
	// residue is rejected; followed only by HALT the codes are provably
	// dead and the precise analyzer certifies what the coarse one flagged.
	live := analyze(t, `
		.org 0x40
	start:	MOV @0x500, @0x508
		BEQ start
		HALT
	`, twoColour("flagresidue-live"))
	if live.Certified() {
		t.Fatalf("live flag residue not flagged:\n%s", live)
	}
	if got := live.Violations[0].Dst; got != "condition codes" {
		t.Errorf("violation dst = %q, want condition codes", got)
	}

	dead := analyze(t, `
		.org 0x40
	start:	MOV @0x500, @0x508
		HALT
	`, twoColour("flagresidue-dead"))
	if !dead.Certified() {
		t.Fatalf("dead flag residue still flagged:\n%s", dead)
	}

	// The coarse analyzer (liveness lever off) keeps the original verdict.
	spec := twoColour("flagresidue-coarse")
	spec.Precision.NoFlagLiveness = true
	coarse := analyze(t, `
		.org 0x40
	start:	MOV @0x500, @0x508
		HALT
	`, spec)
	if coarse.Certified() {
		t.Fatalf("coarse analyzer lost the flag-residue rejection:\n%s", coarse)
	}
}

func TestImplicitFlowRejected(t *testing.T) {
	// A black regime branches on its own data, then stores a constant into
	// a red window: nothing red is read, but the store is control-dependent
	// on black state.
	spec := staticflow.Spec{
		Name:  "implicit",
		Entry: "black",
		Regions: []staticflow.Region{
			{Name: "red.window", Lo: 0x500, Hi: 0x510, Colour: "red"},
			{Name: "partition", Lo: 0, Hi: 0x1000, Colour: "black"},
		},
	}
	rep := analyze(t, `
		.org 0x40
	start:	CMP #0, R1
		BEQ skip
		MOV #1, @0x500
	skip:	HALT
	`, spec)
	if rep.Certified() {
		t.Fatalf("certified despite implicit flow:\n%s", rep)
	}
	var hit *staticflow.Flow
	for i := range rep.Violations {
		if strings.Contains(rep.Violations[i].Dst, "red.window") {
			hit = &rep.Violations[i]
		}
	}
	if hit == nil {
		t.Fatalf("no violation on the red window in:\n%s", rep)
	}
	if !hit.Implicit {
		t.Errorf("violation not marked implicit: %s", *hit)
	}
}

func TestStraightLineConstantStoreCertified(t *testing.T) {
	// Same store, no branch: a constant into one's own partition is fine.
	spec := staticflow.ProgramSpec("const", "black", nil, 0x1000)
	rep := analyze(t, `
		.org 0x40
	start:	MOV #1, @0x500
		HALT
	`, spec)
	if !rep.Certified() {
		t.Fatalf("constant store rejected:\n%s", rep)
	}
}

func TestChannelEndpointsSanctioned(t *testing.T) {
	spec := staticflow.ProgramSpec("echoish", "red", []staticflow.Colour{"black"}, 0x1000)
	rep := analyze(t, `
		.org 0x40
	start:	MOV #0, R0
		TRAP #RECV
		MOV #0, R0
		TRAP #SEND
		MOV R1, @0x100
		HALT
	`, spec)
	if !rep.Certified() {
		t.Fatalf("cut channel use rejected:\n%s", rep)
	}
	if len(rep.Channels) != 2 {
		t.Fatalf("channel flows = %d, want 2 (SEND+RECV):\n%s", len(rep.Channels), rep)
	}
}

func TestUncutChannelRejected(t *testing.T) {
	spec := staticflow.ProgramSpec("uncut", "red", []staticflow.Colour{"black"}, 0x1000)
	spec.Uncut = true
	rep := analyze(t, `
		.org 0x40
	start:	MOV #0, R0
		TRAP #RECV
		MOV R1, @0x100
		HALT
	`, spec)
	if rep.Certified() {
		t.Fatalf("uncut channel import certified:\n%s", rep)
	}
}

func TestLoopConverges(t *testing.T) {
	spec := staticflow.ProgramSpec("counterish", "red", nil, 0x1000)
	rep := analyze(t, `
		.org 0x40
	start:	MOV #0, R2
	loop:	ADD #1, R2
		MOV R2, @0x20
		TRAP #SWAP
		BR loop
	`, spec)
	if !rep.Certified() {
		t.Fatalf("counter loop rejected:\n%s", rep)
	}
	if rep.Instrs == 0 || rep.Blocks < 2 {
		t.Errorf("suspicious CFG: %d instrs, %d blocks", rep.Instrs, rep.Blocks)
	}
}

func TestIRQHandlerDiscoveredAndAnalyzed(t *testing.T) {
	// The handler stores a black-window word into the red partition; it is
	// only reachable through the vector install, so a violation inside it
	// proves interrupt edges are part of the CFG.
	spec := staticflow.Spec{
		Name:  "irq",
		Entry: "red",
		Regions: []staticflow.Region{
			{Name: "black.window", Lo: 0x500, Hi: 0x510, Colour: "black"},
			{Name: "partition", Lo: 0, Hi: 0x1000, Colour: "red"},
		},
	}
	img := assemble(t, `
		.org 0x40
	start:	MOV #isr, @VECBASE
		TRAP #WAITIRQ
		BR start
	isr:	MOV @0x500, @0x100
		RTI
	`)
	g, err := staticflow.BuildCFG(img)
	if err != nil {
		t.Fatalf("BuildCFG: %v", err)
	}
	if len(g.IRQRoots) != 1 {
		t.Fatalf("IRQRoots = %v, want one handler", g.IRQRoots)
	}
	rep := staticflow.AnalyzeCFG(g, spec)
	if rep.Certified() {
		t.Fatalf("handler's black->red store missed:\n%s", rep)
	}
}

func TestKernelSwapRejectedAbstractCertified(t *testing.T) {
	colours := []staticflow.Colour{"red", "black"}
	conc, err := staticflow.AnalyzeKernelSwap(colours, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if conc.Certified() {
		t.Fatalf("concrete SWAP certified — the analyzer lost the paper's point:\n%s", conc)
	}
	// Every violation must stem from the incoming (black) side; the saving
	// half of the sequence is clean.
	for _, v := range conc.Violations {
		if v.From != "black" {
			t.Errorf("unexpected violation source %s: %s", v.From, v)
		}
	}
	abs, err := staticflow.AnalyzeKernelSwapAbstract(colours, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !abs.Certified() {
		t.Fatalf("abstract SWAP rejected:\n%s", abs)
	}
}

func TestReportDeterministic(t *testing.T) {
	colours := []staticflow.Colour{"red", "black"}
	a, err := staticflow.AnalyzeKernelSwap(colours, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := staticflow.AnalyzeKernelSwap(colours, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Errorf("reports differ across runs:\n---\n%s\n---\n%s", a, b)
	}
}

func TestUnmappedAccessWarns(t *testing.T) {
	spec := staticflow.Spec{
		Name:    "unmapped",
		Entry:   "red",
		Regions: []staticflow.Region{{Name: "partition", Lo: 0, Hi: 0x100, Colour: "red"}},
	}
	rep := analyze(t, `
		.org 0x40
	start:	MOV @0x7000, R1
		HALT
	`, spec)
	if len(rep.Warnings) == 0 {
		t.Errorf("no warning for unmapped read:\n%s", rep)
	}
}

func TestIndirectStoreCheckedAgainstAllRegions(t *testing.T) {
	rep := analyze(t, `
		.org 0x40
	start:	MOV @0x500, R1
		MOV #0x100, R2
		MOV R1, (R2)
		HALT
	`, twoColour("indirect"))
	hit := false
	for _, v := range rep.Violations {
		if strings.Contains(v.Dst, "may reach partition") {
			hit = true
		}
	}
	if !hit {
		t.Errorf("indirect store of black value not flagged against red region:\n%s", rep)
	}
}

func TestTwoPointLattice(t *testing.T) {
	// With a proper ordering (low ⊑ high) instead of isolation, a low->high
	// move is certified and high->low rejected.
	spec := staticflow.Spec{
		Name:  "twopoint",
		Entry: ifa.High,
		Regions: []staticflow.Region{
			{Name: "low.window", Lo: 0x500, Hi: 0x510, Colour: ifa.Low},
			{Name: "partition", Lo: 0, Hi: 0x1000, Colour: ifa.High},
		},
		Lattice: ifa.TwoPoint(),
	}
	up := analyze(t, `
		.org 0x40
	start:	MOV @0x500, @0x100
		HALT
	`, spec)
	if !up.Certified() {
		t.Fatalf("low->high rejected under TwoPoint:\n%s", up)
	}
	down := analyze(t, `
		.org 0x40
	start:	MOV @0x100, @0x500
		HALT
	`, spec)
	if down.Certified() {
		t.Fatalf("high->low certified under TwoPoint:\n%s", down)
	}
}
