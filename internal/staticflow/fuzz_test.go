package staticflow_test

import (
	"encoding/binary"
	"testing"

	"repro/internal/asm"
	"repro/internal/staticflow"
)

// FuzzBuildCFG feeds arbitrary word images to the CFG builder and the
// analyzer: decoding garbage must terminate without panicking, and the
// resulting report must render. (Assembled programs are well-formed by
// construction; the CFG builder also has to survive hand-built images.)
func FuzzBuildCFG(f *testing.F) {
	seed := func(org staticflow.Word, words ...uint16) {
		buf := make([]byte, 2+2*len(words))
		binary.LittleEndian.PutUint16(buf, uint16(org))
		for i, w := range words {
			binary.LittleEndian.PutUint16(buf[2+2*i:], w)
		}
		f.Add(buf)
	}
	// MOV #1, R2; HALT
	seed(0x40, 0x08fa, 0x0001, 0x0000)
	// A tight self-loop (BR .-0) and a branch off the image end.
	seed(0x40, 0x4fff)
	seed(0x40, 0x47ff)
	// TRAP #6 (HALTME), TRAP #1 (SEND).
	seed(0x40, 0x7406, 0x7401)
	// Truncated two-word instruction at the image edge.
	seed(0x40, 0x0bfa)
	// Vector install shape: MOV #imm, @abs.
	seed(0x40, 0x0bfa, 0x0044, 0x0010, 0x0000)
	f.Fuzz(func(t *testing.T, data []byte) {
		// Cap the image size: postdominator sets are quadratic in the block
		// count, and a branch-dense image makes every word its own block.
		// Real programs are tiny; the bound keeps the worst fuzz input well
		// under the fuzzer's per-exec hang timeout.
		if len(data) < 4 || len(data) > 1024 {
			return
		}
		org := staticflow.Word(binary.LittleEndian.Uint16(data))
		words := make([]staticflow.Word, 0, (len(data)-2)/2)
		for i := 2; i+1 < len(data); i += 2 {
			words = append(words, staticflow.Word(binary.LittleEndian.Uint16(data[i:])))
		}
		if len(words) == 0 {
			return
		}
		img := &asm.Image{Org: org, Words: words}
		g, err := staticflow.BuildCFG(img)
		if err != nil {
			return
		}
		spec := staticflow.Spec{
			Name:  "fuzz",
			Entry: "red",
			Regions: []staticflow.Region{
				{Name: "black.window", Lo: 0x500, Hi: 0x510, Colour: "black"},
				{Name: "partition", Lo: 0, Hi: 0x1000, Colour: "red"},
			},
			Peers: []staticflow.Colour{"black"},
		}
		rep := staticflow.AnalyzeCFG(g, spec)
		if rep == nil {
			t.Fatal("nil report")
		}
		if s := rep.String(); s == "" {
			t.Fatal("empty report rendering")
		}
	})
}
