package staticflow_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/asm"
	"repro/internal/kernel"
	"repro/internal/staticflow"
)

// coarse is the precision configuration of the analyzer before this
// package grew VSA, stack cells and flag liveness.
var coarsePrecision = staticflow.Precision{
	NoVSA: true, NoStackCells: true, NoFlagLiveness: true,
}

// loadProgram assembles one programs/*.s source under its natural spec:
// censor fixtures are standalone under CensorSpec, everything else is a
// regime program under the kernel prelude.
func loadProgram(t *testing.T, dir, name string) (*asm.Image, staticflow.Spec) {
	t.Helper()
	src, err := os.ReadFile(filepath.Join(dir, name+".s"))
	if err != nil {
		t.Fatal(err)
	}
	if strings.HasPrefix(name, "censor_") {
		img, err := asm.Assemble(string(src))
		if err != nil {
			t.Fatalf("%s.s: %v", name, err)
		}
		return img, staticflow.CensorSpec(name)
	}
	img, err := asm.Assemble(kernel.Prelude + string(src))
	if err != nil {
		t.Fatalf("%s.s: %v", name, err)
	}
	return img, staticflow.ProgramSpec(name, "RED", []staticflow.Colour{"BLACK"}, 0x1000)
}

// TestDifferentialPrecision is the no-regression rail for every precision
// lever: over every shipped program the precise analyzer is never less
// precise than the coarse one (anything the coarse analyzer certifies, the
// precise one certifies; the violation count never grows), and the planted
// kernel leaks never flip from REJECTED to CERTIFIED (leaks_test.go checks
// each lever in isolation; here the full-vs-coarse direction).
func TestDifferentialPrecision(t *testing.T) {
	dir := filepath.Join("..", "..", "programs")
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	names := []string{}
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), ".s"); ok {
			names = append(names, n)
		}
	}
	if len(names) < 6 {
		t.Fatalf("programs/ holds %d sources, want the 3 regime programs + 3 censors", len(names))
	}

	for _, name := range names {
		img, spec := loadProgram(t, dir, name)
		precise, err := staticflow.Analyze(img, spec)
		if err != nil {
			t.Fatalf("%s precise: %v", name, err)
		}
		spec.Precision = coarsePrecision
		coarse, err := staticflow.Analyze(img, spec)
		if err != nil {
			t.Fatalf("%s coarse: %v", name, err)
		}
		if coarse.Certified() && !precise.Certified() {
			t.Errorf("%s: precision regression — coarse CERTIFIED, precise REJECTED:\n%s",
				name, precise)
		}
		if p, c := len(precise.Violations), len(coarse.Violations); p > c {
			t.Errorf("%s: precise analyzer found MORE violations (%d) than coarse (%d)",
				name, p, c)
		}
	}

	// The planted leaks must stay REJECTED in both configurations.
	for _, f := range staticflow.LeakFixtures() {
		for _, p := range []staticflow.Precision{{}, coarsePrecision} {
			f := f
			f.Spec.Precision = p
			rep, err := staticflow.AnalyzeLeakFixture(f)
			if err != nil {
				t.Fatal(err)
			}
			if rep.Certified() {
				t.Errorf("leak %s certified under %+v", f.Name, p)
			}
		}
	}
}

// TestDifferentialHeadlines pins the individual verdicts the differential
// rail rides on: the regime programs certify at both precisions, the
// format and canonicalizing censors reject at both (real syntactic flows),
// and the strict censor is the precision headline — its PUSH/POP
// interleave is a false positive of the coarse joined-stack summary that
// frame-offset cells dissolve.
func TestDifferentialHeadlines(t *testing.T) {
	dir := filepath.Join("..", "..", "programs")
	want := map[string]struct{ precise, coarse bool }{
		"counter":       {true, true},
		"echo":          {true, true},
		"chanpair":      {true, true},
		"censor_format": {false, false},
		"censor_canon":  {false, false},
		"censor_strict": {true, false},
	}
	for name, w := range want {
		img, spec := loadProgram(t, dir, name)
		precise, err := staticflow.Analyze(img, spec)
		if err != nil {
			t.Fatal(err)
		}
		spec.Precision = coarsePrecision
		coarse, err := staticflow.Analyze(img, spec)
		if err != nil {
			t.Fatal(err)
		}
		if precise.Certified() != w.precise {
			t.Errorf("%s precise certified = %v, want %v:\n%s",
				name, precise.Certified(), w.precise, precise)
		}
		if coarse.Certified() != w.coarse {
			t.Errorf("%s coarse certified = %v, want %v:\n%s",
				name, coarse.Certified(), w.coarse, coarse)
		}
	}

	// The kernel SWAP false-positive count: 15 syntactic flows coarse,
	// 7 after flag liveness (the register restores — E17's before/after).
	precise, err := staticflow.AnalyzeKernelSwap([]staticflow.Colour{"red", "black"}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	spec := staticflow.KernelSwapSpec([]staticflow.Colour{"red", "black"}, 0, 1)
	spec.Precision = coarsePrecision
	img, err := asm.Assemble(staticflow.KernelSwapSource(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := staticflow.Analyze(img, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(coarse.Violations) != 15 {
		t.Errorf("coarse SWAP violations = %d, want 15", len(coarse.Violations))
	}
	if len(precise.Violations) != 7 {
		t.Errorf("precise SWAP violations = %d, want 7", len(precise.Violations))
	}
}
