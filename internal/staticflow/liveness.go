package staticflow

import "repro/internal/machine"

// Dead condition-code suppression. Most SM11 instructions set the condition
// codes as a side effect, and the original analyzer flow-checked every one
// of those writes — which is where 8 of the kernel SWAP's 15 static
// violations came from: restore-path MOVs set the codes from the incoming
// regime's save words, and the codes are then overwritten (by the next
// restore, or by the dispatch itself) before anything reads them. This pass
// computes, per instruction, whether the condition codes can be *read*
// after the instruction executes before being redefined; flag writes that
// are provably dead are still propagated through the fixpoint (so the state
// stays a sound over-approximation) but are not reported as flows.
//
// Readers are the conditional branches, MFPS, and TRAP (the kernel stores
// the caller's PSW into its save area). Writers are the ALU/MOV family,
// MTPS and RTI. The analysis is a backwards may-analysis over the CFG:
//
//   - a block ending in HALT exits with the codes dead (execution of this
//     fragment ends; a kernel fragment's dispatch hands the incoming regime
//     a PSW restored from its own save area, never the live codes);
//   - a block with no successors for any other reason — unresolved
//     indirect jump, RTS without recorded return sites — exits live: the
//     continuation is unknown, so the codes must be assumed observable;
//   - programs that install interrupt handlers get no suppression at all:
//     interrupt delivery pushes the live PSW onto the stack between any
//     two instructions, so the codes are always observable.

// flagReads reports whether executing in observes the condition codes.
func flagReads(op Word) bool {
	if machine.IsBranch(op) && op != machine.OpBR {
		return true
	}
	return op == machine.OpMFPS || op == machine.OpTRAP
}

// flagWrites reports whether executing in redefines the condition codes.
func flagWrites(op Word) bool {
	switch op {
	case machine.OpMOV, machine.OpADD, machine.OpSUB, machine.OpCMP,
		machine.OpAND, machine.OpOR, machine.OpXOR, machine.OpSHL,
		machine.OpSHR, machine.OpMUL, machine.OpNOT, machine.OpNEG,
		machine.OpMTPS, machine.OpRTI:
		return true
	}
	return false
}

// flagsLiveAfter computes, for each instruction address, whether the
// condition codes may be read after that instruction executes and before
// they are redefined. A nil map means "assume live everywhere" (handler
// programs, or the lever disabled).
func flagsLiveAfter(g *CFG) map[Word]bool {
	if len(g.IRQRoots) > 0 {
		return nil
	}
	n := len(g.Blocks)
	liveIn := make([]bool, n)

	// blockLiveIn recomputes one block's entry liveness from its exit
	// liveness by scanning the instructions backwards.
	blockLiveIn := func(b *Block, live bool) bool {
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			op := b.Instrs[i].Op
			if flagReads(op) {
				live = true
			} else if flagWrites(op) {
				live = false
			}
		}
		return live
	}
	liveOut := func(b *Block) bool {
		if len(b.Succs) == 0 {
			// HALT ends the fragment with the codes unobservable; any
			// other dead end means the continuation is unknown.
			last := b.Instrs[len(b.Instrs)-1].Op
			return last != machine.OpHALT
		}
		for _, e := range b.Succs {
			if liveIn[e.To] {
				return true
			}
		}
		return false
	}

	// Backwards fixpoint; liveness only rises, so n+8 sweeps suffice (and
	// bound fuzzer-shaped graphs).
	for sweep := 0; sweep < n+8; sweep++ {
		changed := false
		for bi := n - 1; bi >= 0; bi-- {
			if l := blockLiveIn(g.Blocks[bi], liveOut(g.Blocks[bi])); l != liveIn[bi] {
				liveIn[bi] = l
				changed = true
			}
		}
		if !changed {
			break
		}
	}

	// Final sweep records per-instruction "live after this point".
	out := make(map[Word]bool, g.NumInstrs())
	for _, b := range g.Blocks {
		live := liveOut(b)
		for i := len(b.Instrs) - 1; i >= 0; i-- {
			in := &b.Instrs[i]
			out[in.Addr] = out[in.Addr] || live
			op := in.Op
			if flagReads(op) {
				live = true
			} else if flagWrites(op) {
				live = false
			}
		}
	}
	return out
}
