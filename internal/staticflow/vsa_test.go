package staticflow_test

import (
	"strings"
	"testing"

	"repro/internal/staticflow"
)

// tableDispatchSource is the canonical VSA target: a runtime selector,
// masked to a bounded range, indexes a constant table of handler addresses.
const tableDispatchSource = `
	.org 0x40
start:	MOV @0x500, R1		; runtime selector
	AND #1, R1		; bounded: {0,1}
	MOV tab(R1), R2		; constant table load
	JMP (R2)
a:	MOV #1, @0x200
	HALT
b:	MOV #2, @0x201
	HALT
tab:	.word a
	.word b
`

func TestVSAResolvesTableDispatch(t *testing.T) {
	img := assemble(t, tableDispatchSource)
	g, err := staticflow.BuildCFG(img)
	if err != nil {
		t.Fatal(err)
	}
	aAddr, _ := img.Symbol("a")
	bAddr, _ := img.Symbol("b")
	if len(g.Resolved) != 1 {
		t.Fatalf("resolved sites = %d, want 1 (notes: %v)", len(g.Resolved), g.Notes)
	}
	for site, targets := range g.Resolved {
		if len(targets) != 2 || targets[0] != aAddr || targets[1] != bAddr {
			t.Errorf("site %04x resolved to %v, want [%04x %04x]", site, targets, aAddr, bAddr)
		}
	}
	// Both handlers must be real CFG blocks reachable through jump edges.
	found := 0
	for _, blk := range g.Blocks {
		if blk.Addr == aAddr || blk.Addr == bAddr {
			found++
		}
	}
	if found != 2 {
		t.Errorf("handler blocks found = %d, want 2", found)
	}
	// The note must say resolved, with the table size, and there must be no
	// unresolved note left for the site.
	var resolvedNote, unresolvedNote bool
	for _, n := range g.Notes {
		if strings.Contains(n, "resolved by value-set analysis (2 targets)") {
			resolvedNote = true
		}
		if strings.Contains(n, "unresolved indirect JMP") {
			unresolvedNote = true
		}
	}
	if !resolvedNote {
		t.Errorf("no resolution note in %v", g.Notes)
	}
	if unresolvedNote {
		t.Errorf("stale unresolved note in %v", g.Notes)
	}
}

func TestVSAResolutionSharpensVerdict(t *testing.T) {
	// With the dispatch resolved, the analyzer sees both handlers store
	// constants into the red partition: certified. With VSA off, the JMP
	// target is unknown — the handlers are still scanned (reachability
	// decodes them as straight-line code), but the unresolved note stands.
	spec := staticflow.ProgramSpec("dispatch", "red", nil, 0x1000)
	rep := analyze(t, tableDispatchSource, spec)
	if !rep.Certified() {
		t.Fatalf("resolved dispatch rejected:\n%s", rep)
	}

	coarse := spec
	coarse.Precision.NoVSA = true
	crep := analyze(t, tableDispatchSource, coarse)
	var sawUnresolved bool
	for _, n := range crep.Notes {
		if strings.Contains(n, "unresolved indirect JMP") {
			sawUnresolved = true
		}
	}
	if !sawUnresolved {
		t.Errorf("NoVSA run lost the unresolved note: %v", crep.Notes)
	}
}

func TestVSAUnboundedSelectorStaysUnresolved(t *testing.T) {
	// No mask: the selector can be anything, the set blows the cap, and the
	// site soundly stays unresolved.
	img := assemble(t, `
	.org 0x40
start:	MOV @0x500, R1
	MOV tab(R1), R2
	JMP (R2)
a:	HALT
tab:	.word a
`)
	g, err := staticflow.BuildCFG(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Resolved) != 0 {
		t.Errorf("unbounded selector resolved: %v", g.Resolved)
	}
	var sawUnresolved bool
	for _, n := range g.Notes {
		if strings.Contains(n, "unresolved indirect JMP") {
			sawUnresolved = true
		}
	}
	if !sawUnresolved {
		t.Errorf("no unresolved note in %v", g.Notes)
	}
}

func TestVSASelfModifyingImageNotROM(t *testing.T) {
	// A store into the image (here: over the table itself) must kill the
	// ROM assumption, so the table load yields ⊤ and nothing resolves.
	img := assemble(t, `
	.org 0x40
start:	MOV #0x200, @tab	; the image is not ROM
	MOV @0x500, R1
	AND #1, R1
	MOV tab(R1), R2
	JMP (R2)
a:	HALT
b:	HALT
tab:	.word a
	.word b
`)
	g, err := staticflow.BuildCFG(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Resolved) != 0 {
		t.Errorf("self-modifying image still resolved: %v", g.Resolved)
	}
}

func TestVSAIRQHandlersDisableResolution(t *testing.T) {
	// An installed interrupt handler can rewrite registers between any two
	// instructions: no resolution is sound.
	img := assemble(t, `
	.org 0x40
start:	MOV #isr, @VECBASE
	MOV @0x500, R1
	AND #1, R1
	MOV tab(R1), R2
	JMP (R2)
a:	HALT
b:	HALT
isr:	RTI
tab:	.word a
	.word b
`)
	g, err := staticflow.BuildCFG(img)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.IRQRoots) != 1 {
		t.Fatalf("IRQRoots = %v, want 1", g.IRQRoots)
	}
	if len(g.Resolved) != 0 {
		t.Errorf("handler program still resolved: %v", g.Resolved)
	}
}

// Note dedup: a site revisited by decode walks from multiple roots must be
// noted exactly once, resolved or not.
func TestUnresolvedNoteCounts(t *testing.T) {
	// Two paths converge on the same unresolved JMP site.
	img := assemble(t, `
	.org 0x40
start:	CMP #0, R1
	BEQ other
	MOV @0x500, R3
	BR join
other:	MOV @0x501, R3
join:	MOV @0x502, R2
	JMP (R2)
`)
	g, err := staticflow.BuildCFG(img)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	for _, n := range g.Notes {
		if strings.Contains(n, "unresolved indirect JMP") {
			count++
		}
	}
	if count != 1 {
		t.Errorf("unresolved notes = %d, want exactly 1:\n%s", count, strings.Join(g.Notes, "\n"))
	}

	// And a resolved site gets exactly one resolution note.
	img2 := assemble(t, tableDispatchSource)
	g2, err := staticflow.BuildCFG(img2)
	if err != nil {
		t.Fatal(err)
	}
	resolved := 0
	for _, n := range g2.Notes {
		if strings.Contains(n, "resolved by value-set analysis") {
			resolved++
		}
	}
	if resolved != 1 {
		t.Errorf("resolution notes = %d, want exactly 1:\n%s", resolved, strings.Join(g2.Notes, "\n"))
	}
}
