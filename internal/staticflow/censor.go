package staticflow

import "repro/internal/ifa"

// Machine-level spec for the SNFE bypass censor programs
// (programs/censor_*.s). The structured-IR models in internal/ifa/censor.go
// certify the censor designs; these fixtures are the same designs as
// genuinely assembled SM11 code, so the machine-level analyzer can be
// compared against the IR verdicts (cmd/ifacheck -compare) and against its
// own coarse configuration (the differential tests).
//
// The censor is the one trusted process that handles HIGH data by design,
// so its registers and private stack are classified HIGH; the security
// question is solely what reaches the network-visible LOW output fields.

// Censor memory map, shared by all three fixtures.
const (
	CensorHdrBase   Word = 0x500 // red-supplied header fields (HIGH)
	CensorStateBase Word = 0x600 // censor-private counters (LOW)
	CensorOutBase   Word = 0x700 // network-visible output fields (LOW)
	censorWindow    Word = 0x10
)

// CensorSpec classifies the censor memory map under the LOW ⊑ HIGH
// lattice. All three censor fixtures share it; name labels the report.
func CensorSpec(name string) Spec {
	return Spec{
		Name:  name,
		Entry: ifa.High,
		Regions: []Region{
			{Name: "header", Lo: CensorHdrBase, Hi: CensorHdrBase + censorWindow, Colour: ifa.High},
			{Name: "state", Lo: CensorStateBase, Hi: CensorStateBase + censorWindow, Colour: ifa.Low},
			{Name: "out", Lo: CensorOutBase, Hi: CensorOutBase + censorWindow, Colour: ifa.Low},
		},
		Lattice: ifa.TwoPoint(),
	}
}
