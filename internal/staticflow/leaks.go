package staticflow

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/ifa"
	"repro/internal/kernel"
)

// Static renderings of the kernel's planted leaks. internal/kernel/leaks.go
// enumerates seven deliberate separation violations that can be compiled
// into a SUE-Go instance; the dynamic verifier must catch all seven. This
// file renders each leak's essential data movement as an SM11 fragment over
// the kernel's real physical addresses, under a spec that classifies those
// addresses the way the kernel configuration does — so the *static*
// analyzer must reject all seven too. The fixtures are the soundness rail
// for every precision lever in this package: however much sharper VSA,
// trap summaries, stack cells and flag liveness make the analyzer, a
// planted leak flipping to CERTIFIED is a bug (asserted by TestLeakFixtures
// and the differential tests).

// LeakFixture is one planted leak in statically-analyzable form.
type LeakFixture struct {
	// Name matches the field name in kernel.Leaks / kernel.AllLeaks().
	Name string
	// Source is the SM11 rendering of the leaking data movement.
	Source string
	// Spec classifies the touched addresses as the kernel config does.
	Spec Spec
}

// leakColours fixes the two-regime classification the fixtures use:
// regime 0 is red (the outgoing/owning side), regime 1 is black.
var leakColours = []Colour{"red", "black"}

// kernelRegions returns the classification shared by the kernel-fragment
// fixtures: the scheduling variable at bottom, each regime's save area in
// its own colour, plus any extra regions the fixture needs.
func kernelRegions(extra ...Region) []Region {
	regions := []Region{{
		Name: "sched", Lo: kernel.SchedCurrentAddr(),
		Hi: kernel.SchedCurrentAddr() + 1, Colour: ifa.IsolationBottom,
	}}
	for i, c := range leakColours {
		regions = append(regions, Region{
			Name:   fmt.Sprintf("save.%s", c),
			Lo:     kernel.SaveBase(i),
			Hi:     kernel.SaveBase(i) + kernel.SaveAreaStride,
			Colour: c,
		})
	}
	return append(regions, extra...)
}

// kernelFragmentSpec builds a spec for a kernel fragment executing on
// behalf of the red regime, dispatching black at its HALT.
func kernelFragmentSpec(name string, extra ...Region) Spec {
	return Spec{
		Name:           fmt.Sprintf("leak-%s", name),
		Entry:          leakColours[0],
		Regions:        kernelRegions(extra...),
		Lattice:        ifa.Isolation(leakColours...),
		DispatchColour: leakColours[1],
	}
}

// registerLeakSource renders the SWAP sequence with the R5 restore skipped:
// the outgoing regime's R5 rides into the incoming regime's register file.
func registerLeakSource(from, to int) string {
	full := KernelSwapSource(from, to)
	var b strings.Builder
	for _, line := range strings.SplitAfter(full, "\n") {
		if strings.Contains(line, "restore incoming R5") {
			b.WriteString("\t\t\t\t; RegisterLeak: R5 restore skipped\n")
			continue
		}
		b.WriteString(line)
	}
	return b.String()
}

// LeakFixtures returns one fixture per planted leak in kernel.AllLeaks(),
// in a fixed order.
func LeakFixtures() []LeakFixture {
	red, black := leakColours[0], leakColours[1]
	partRed := Region{Name: "part.red", Lo: 0x2000, Hi: 0x2010, Colour: red}
	partBlack := Region{Name: "part.black", Lo: 0x2010, Hi: 0x2020, Colour: black}
	devRed := Region{Name: "dev.red", Lo: 0x3000, Hi: 0x3001, Colour: red}
	scratch := Region{Name: "scratch", Lo: kernel.ScratchAddr(),
		Hi: kernel.ScratchAddr() + 1, Colour: ifa.IsolationBottom}
	chanRed := Region{Name: "chan0.buf", Lo: 0x4000, Hi: 0x4001, Colour: red}
	chanBlack := Region{Name: "chan1.buf", Lo: 0x4010, Hi: 0x4011, Colour: black}

	return []LeakFixture{
		{
			// The paper's own hazard: a context switch that forgets R5.
			Name:   "RegisterLeak",
			Source: registerLeakSource(0, 1),
			Spec:   kernelFragmentSpec("RegisterLeak"),
		},
		{
			// Every switch copies an outgoing-partition word into the
			// incoming partition: the blatant direct flow.
			Name: "OutputCopy",
			Source: `
	.org 0x300
start:	MOV @0x2000, @0x2010	; outgoing word -> incoming partition
	HALT
`,
			Spec: kernelFragmentSpec("OutputCopy", partRed, partBlack),
		},
		{
			// The scheduling decision reads a word of regime 0's memory:
			// red data flows into the unclassified scheduling variable.
			Name: "SchedulerSnoop",
			Source: fmt.Sprintf(`
	.org 0x300
start:	MOV @0x2000, R0		; a word of regime 0's partition
	AND #1, R0
	MOV R0, @0x%04x		; ...decides who runs next
	HALT
`, kernel.SchedCurrentAddr()),
			Spec: kernelFragmentSpec("SchedulerSnoop", partRed),
		},
		{
			// A kernel scratch word is mapped into every regime: anything a
			// regime stores there is readable by all, so the store must be
			// ⊥-colourable — red data is not.
			Name: "SharedScratch",
			Source: fmt.Sprintf(`
	.org 0x40
start:	MOV @0x500, @0x%04x	; own data into the shared scratch word
	HALT
`, kernel.ScratchAddr()),
			Spec: Spec{
				Name:  "leak-SharedScratch",
				Entry: red,
				Regions: append([]Region{scratch},
					Region{Name: "partition", Lo: 0, Hi: 0x1000, Colour: red}),
				Lattice: ifa.Isolation(leakColours...),
			},
		},
		{
			// One word of the next regime's partition is mapped into this
			// one (botched MMU config): an ordinary store lands in it.
			Name: "PartitionOverlap",
			Source: `
	.org 0x40
start:	MOV @0x500, @0x2010	; own data into the overlap window
	HALT
`,
			Spec: Spec{
				Name:  "leak-PartitionOverlap",
				Entry: red,
				Regions: append([]Region{partBlack},
					Region{Name: "partition", Lo: 0, Hi: 0x1000, Colour: red}),
				Lattice: ifa.Isolation(leakColours...),
			},
		},
		{
			// Every channel shares channel 0's buffer: a red sender's datum
			// appears in the black pair's buffer object.
			Name: "ChannelAlias",
			Source: `
	.org 0x300
start:	MOV @0x4000, @0x4010	; chan0 buffer aliased into chan1
	HALT
`,
			Spec: kernelFragmentSpec("ChannelAlias", chanRed, chanBlack),
		},
		{
			// A red device's interrupt is credited to the black regime's
			// pending word: black's control flow is modulated by red I/O.
			Name: "InterruptMisroute",
			Source: fmt.Sprintf(`
	.org 0x300
start:	MOV @0x3000, R0		; red device status
	CMP #0, R0
	BEQ done
	MOV #1, @0x%04x		; ...sets black's pending word
done:	HALT
`, kernel.SaveBase(1)+kernel.SaveOffPending),
			Spec: kernelFragmentSpec("InterruptMisroute", devRed),
		},
	}
}

// AnalyzeLeakFixture assembles and analyzes one fixture.
func AnalyzeLeakFixture(f LeakFixture) (*Report, error) {
	img, err := asm.Assemble(f.Source)
	if err != nil {
		return nil, fmt.Errorf("staticflow: assemble leak %s: %w", f.Name, err)
	}
	return Analyze(img, f.Spec)
}
