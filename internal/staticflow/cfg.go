package staticflow

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/kernel"
	"repro/internal/machine"
)

// EdgeKind classifies a CFG edge.
type EdgeKind int

// Edge kinds.
const (
	EdgeFall   EdgeKind = iota // fall-through to the next instruction
	EdgeBranch                 // taken conditional/unconditional branch
	EdgeJump                   // JMP to a resolved absolute target
	EdgeCall                   // JSR to a resolved absolute target
	EdgeReturn                 // RTS back to a recorded JSR return site
	EdgeTrap                   // resumption after a kernel service (TRAP)
	EdgeIRQ                    // asynchronous entry into an interrupt handler
)

func (k EdgeKind) String() string {
	switch k {
	case EdgeFall:
		return "fall"
	case EdgeBranch:
		return "branch"
	case EdgeJump:
		return "jump"
	case EdgeCall:
		return "call"
	case EdgeReturn:
		return "return"
	case EdgeTrap:
		return "trap"
	case EdgeIRQ:
		return "irq"
	}
	return "?"
}

// Edge is one successor link between blocks.
type Edge struct {
	To   int
	Kind EdgeKind
}

// Instr is one decoded instruction.
type Instr struct {
	Addr  Word   // virtual address of the first word
	Words []Word // raw words (1..3)
	Op    Word
	Text  string // disassembly
}

// Len returns the instruction length in words.
func (i *Instr) Len() Word { return Word(len(i.Words)) }

// Block is a maximal straight-line instruction run.
type Block struct {
	ID     int
	Addr   Word
	Instrs []Instr
	Succs  []Edge
	// CondBranch marks a block ending in a conditional branch: its exit
	// condition-code colour becomes the implicit-flow colour of every block
	// control-dependent on it.
	CondBranch bool
}

// CFG is the control-flow graph of one assembled image.
type CFG struct {
	Blocks   []*Block
	Entry    int   // block index of the program entry
	IRQRoots []int // block indices of discovered interrupt handlers
	// Notes record decoding caveats: unresolved indirect jumps, branches
	// out of the image, undecodable bytes. Identical notes are recorded
	// once, however many decode walks revisit the site.
	Notes []string
	// Resolved maps the address of each indirect JMP/JSR that value-set
	// analysis resolved to its sorted list of proven targets.
	Resolved map[Word][]Word
}

// NumInstrs counts decoded instructions across all blocks.
func (g *CFG) NumInstrs() int {
	n := 0
	for _, b := range g.Blocks {
		n += len(b.Instrs)
	}
	return n
}

// blockAt maps a leader address to its block index (-1 when absent).
func (g *CFG) blockAt(addr Word, byAddr map[Word]int) int {
	if i, ok := byAddr[addr]; ok {
		return i
	}
	return -1
}

// BuildCFG decodes the image into a control-flow graph, starting from the
// `start` symbol (or the image origin) and from every interrupt handler the
// program installs into the regime vector table. Decoding is reachability
// based, so .word data that is never executed is never misparsed.
//
// Indirect JMP/JSR sites are fed to value-set analysis (vsa.go): when a
// site's target set is proven finite the graph is rebuilt with those edges
// in place, iterating until the resolution map is stable (new edges can
// reveal new code, which can invalidate the ROM assumption resolutions
// depend on). Sites that never resolve keep the sound top-colour treatment
// in the flow analysis, with one note each.
func BuildCFG(img *asm.Image) (*CFG, error) {
	return buildCFG(img, true)
}

// vsaRounds caps the build→resolve→rebuild iterations. On the last round
// the resolution map is verified once more; if it is still unstable the
// builder falls back to the fully unresolved graph, which is always sound.
const vsaRounds = 4

func buildCFG(img *asm.Image, useVSA bool) (*CFG, error) {
	resolved := map[Word][]Word{}
	for round := 0; ; round++ {
		g, err := buildOnce(img, resolved)
		if err != nil || !useVSA {
			return g, err
		}
		next := vsaResolve(img, g)
		if resolutionsEqual(resolved, next) {
			g.Resolved = resolved
			return g, nil
		}
		if round >= vsaRounds-1 {
			// No fixpoint within budget: drop every resolution.
			g, err = buildOnce(img, map[Word][]Word{})
			return g, err
		}
		resolved = next
	}
}

func resolutionsEqual(a, b map[Word][]Word) bool {
	if len(a) != len(b) {
		return false
	}
	for site, ta := range a {
		tb, ok := b[site]
		if !ok || len(ta) != len(tb) {
			return false
		}
		for i := range ta {
			if ta[i] != tb[i] {
				return false
			}
		}
	}
	return true
}

func buildOnce(img *asm.Image, resolved map[Word][]Word) (*CFG, error) {
	if img == nil || len(img.Words) == 0 {
		return nil, fmt.Errorf("staticflow: empty image")
	}
	entry := img.Org
	if s, ok := img.Symbol("start"); ok {
		entry = s
	}
	b := &cfgBuilder{
		img:      img,
		instrs:   map[Word]*Instr{},
		succs:    map[Word][]succ{},
		leaders:  map[Word]bool{},
		resolved: resolved,
		noted:    map[string]bool{},
	}
	b.addRoot(entry)
	for len(b.work) > 0 {
		a := b.work[len(b.work)-1]
		b.work = b.work[:len(b.work)-1]
		b.decodeFrom(a)
	}
	// Context-insensitive returns: every RTS may resume at any recorded
	// JSR return site.
	for addr, in := range b.instrs {
		if in.Op == machine.OpRTS {
			for _, r := range b.returnSites {
				b.addSucc(addr, r, EdgeReturn)
			}
		}
	}
	g := b.build(entry)
	if g.Entry < 0 {
		return nil, fmt.Errorf("staticflow: entry %#x not decodable", entry)
	}
	return g, nil
}

type succ struct {
	to   Word
	kind EdgeKind
}

type cfgBuilder struct {
	img         *asm.Image
	instrs      map[Word]*Instr
	succs       map[Word][]succ
	leaders     map[Word]bool
	work        []Word
	irqRoots    []Word
	returnSites []Word
	notes       []string
	noted       map[string]bool
	resolved    map[Word][]Word // indirect JMP/JSR sites proven by VSA
}

// note records one decoding caveat. Decode walks from different roots can
// revisit the same site, so identical messages are kept once.
func (b *cfgBuilder) note(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if b.noted[msg] {
		return
	}
	b.noted[msg] = true
	b.notes = append(b.notes, msg)
}

func (b *cfgBuilder) inImage(a Word) bool {
	return a >= b.img.Org && a < b.img.End()
}

func (b *cfgBuilder) addRoot(a Word) {
	if !b.leaders[a] {
		b.leaders[a] = true
		b.work = append(b.work, a)
	}
}

func (b *cfgBuilder) addSucc(from, to Word, kind EdgeKind) {
	if !b.inImage(to) {
		b.note("%s target %04x outside image at %04x", kind, to, from)
		return
	}
	for _, s := range b.succs[from] {
		if s.to == to && s.kind == kind {
			return
		}
	}
	b.succs[from] = append(b.succs[from], succ{to: to, kind: kind})
	b.addRoot(to)
}

// decode decodes the instruction at a, returning nil when the address or
// the instruction's extension words fall outside the image.
func (b *cfgBuilder) decode(a Word) *Instr {
	if in, ok := b.instrs[a]; ok {
		return in
	}
	if !b.inImage(a) {
		return nil
	}
	w := b.img.Words[a-b.img.Org]
	op := machine.DecodeOp(w)
	if op >= machine.OpMUL+1 { // beyond the defined opcode range
		b.note("undecodable word %04x at %04x", w, a)
		return nil
	}
	n := Word(machine.InstrLen(w))
	if a+n > b.img.End() || a+n < a {
		b.note("truncated instruction at %04x", a)
		return nil
	}
	words := append([]Word(nil), b.img.Words[a-b.img.Org:a-b.img.Org+n]...)
	text, _ := machine.Disasm(words)
	in := &Instr{Addr: a, Words: words, Op: op, Text: text}
	b.instrs[a] = in
	return in
}

// decodeFrom walks a straight-line run from a, recording successors and
// queueing discovered control-transfer targets.
func (b *cfgBuilder) decodeFrom(a Word) {
	for {
		in := b.decode(a)
		if in == nil {
			return
		}
		next := a + in.Len()
		op := in.Op
		switch {
		case machine.IsBranch(op):
			target := next + Word(machine.BranchOffset(in.Words[0]))
			b.addSucc(a, target, EdgeBranch)
			if op != machine.OpBR {
				b.addSucc(a, next, EdgeFall)
			}
			return
		case op == machine.OpJMP || op == machine.OpJSR:
			kind := EdgeJump
			if op == machine.OpJSR {
				kind = EdgeCall
			}
			spec := machine.DstSpec(in.Words[0])
			switch {
			case machine.SpecMode(spec) == machine.ModeExtended &&
				machine.SpecReg(spec) == machine.RegSP:
				b.addSucc(a, in.Words[len(in.Words)-1], kind)
			case len(b.resolved[a]) > 0:
				for _, t := range b.resolved[a] {
					b.addSucc(a, t, kind)
				}
				b.note("indirect %s at %04x resolved by value-set analysis (%d targets): %s",
					machine.OpName(op), a, len(b.resolved[a]), in.Text)
			default:
				b.note("unresolved indirect %s at %04x: %s",
					machine.OpName(op), a, in.Text)
			}
			if op == machine.OpJSR {
				b.returnSites = append(b.returnSites, next)
				b.leaders[next] = true
			}
			return
		case op == machine.OpTRAP:
			if machine.TrapCodeOf(in.Words[0]) == kernel.TrapHalt {
				return // HALTME: the regime is dead
			}
			b.addSucc(a, next, EdgeTrap)
			return
		case op == machine.OpRTS, op == machine.OpRTI, op == machine.OpHALT:
			return // return edges for RTS are filled in afterwards
		case op == machine.OpMOV:
			// Vector-table installs reveal interrupt handlers:
			// MOV #handler, @RegimeVecBase+2j.
			b.scanVectorInstall(in)
		}
		// Plain fall-through; keep walking the run.
		if _, seen := b.instrs[next]; seen && !b.leaders[next] {
			// Converging with a run decoded from another root: make the
			// join point a leader so block construction links both paths.
			b.leaders[next] = true
			return
		}
		a = next
	}
}

// scanVectorInstall detects MOV #imm, @vec with vec inside the regime
// vector table and registers imm as an interrupt-handler root.
func (b *cfgBuilder) scanVectorInstall(in *Instr) {
	w := in.Words[0]
	src, dst := machine.SrcSpec(w), machine.DstSpec(w)
	if machine.SpecMode(src) != machine.ModeExtended ||
		machine.SpecReg(src) != machine.RegPC {
		return // source is not an immediate
	}
	if machine.SpecMode(dst) != machine.ModeExtended ||
		machine.SpecReg(dst) != machine.RegSP {
		return // destination is not an absolute address
	}
	if len(in.Words) < 3 {
		return
	}
	handler, vec := in.Words[1], in.Words[2]
	if vec < kernel.RegimeVecBase || vec >= kernel.RegimeVecBase+8 {
		return
	}
	if !b.inImage(handler) {
		b.note("interrupt handler %04x outside image (installed at %04x)",
			handler, in.Addr)
		return
	}
	for _, r := range b.irqRoots {
		if r == handler {
			return
		}
	}
	b.irqRoots = append(b.irqRoots, handler)
	b.addRoot(handler)
}

// build partitions decoded instructions into basic blocks and links them.
func (b *cfgBuilder) build(entry Word) *CFG {
	// Every control-transfer target and root is a leader; so is any
	// instruction following one that has explicit successors or ends a run.
	addrs := make([]Word, 0, len(b.instrs))
	for a := range b.instrs {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })

	ends := map[Word]bool{} // instructions that terminate their block
	for a, in := range b.instrs {
		op := in.Op
		if machine.IsBranch(op) || op == machine.OpJMP || op == machine.OpJSR ||
			op == machine.OpRTS || op == machine.OpRTI || op == machine.OpHALT ||
			op == machine.OpTRAP {
			ends[a] = true
			b.leaders[a+in.Len()] = true
		}
	}

	g := &CFG{Entry: -1}
	byAddr := map[Word]int{}
	var cur *Block
	for _, a := range addrs {
		in := b.instrs[a]
		if cur == nil || b.leaders[a] || cur.Instrs[len(cur.Instrs)-1].Addr+
			cur.Instrs[len(cur.Instrs)-1].Len() != a {
			cur = &Block{ID: len(g.Blocks), Addr: a}
			g.Blocks = append(g.Blocks, cur)
			byAddr[a] = cur.ID
		}
		cur.Instrs = append(cur.Instrs, *in)
		if ends[a] {
			cur = nil
		}
	}

	// Successor edges: explicit successors of each block's last
	// instruction, plus the implicit fall-through into the next leader.
	for _, blk := range g.Blocks {
		last := blk.Instrs[len(blk.Instrs)-1]
		ss := b.succs[last.Addr]
		if len(ss) == 0 && !ends[last.Addr] {
			// The run was split by a leader: implicit fall-through.
			if to, ok := byAddr[last.Addr+last.Len()]; ok {
				blk.Succs = append(blk.Succs, Edge{To: to, Kind: EdgeFall})
			}
			continue
		}
		for _, s := range ss {
			if to, ok := byAddr[s.to]; ok {
				blk.Succs = append(blk.Succs, Edge{To: to, Kind: s.kind})
			}
		}
		op := last.Op
		blk.CondBranch = machine.IsBranch(op) && op != machine.OpBR
	}

	if i, ok := byAddr[entry]; ok {
		g.Entry = i
	}
	for _, r := range b.irqRoots {
		if i, ok := byAddr[r]; ok {
			g.IRQRoots = append(g.IRQRoots, i)
		}
	}
	sort.Ints(g.IRQRoots)
	g.Notes = b.notes
	return g
}
