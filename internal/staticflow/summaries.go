package staticflow

import (
	"fmt"

	"repro/internal/kernel"
	"repro/internal/machine"
)

// Kernel-service summaries. TRAP instructions used to be coloured by a
// fixed ABI switch written by hand inside the analyzer; this file derives
// the same transfer functions from the footprint table the kernel itself
// exports (kernel.Footprints(), held in sync with layout.go by the seplint
// trap-summary-sync rule). Each service's summary is regime-indexed by
// construction: the save-area slots a service reads and writes are the
// *calling* regime's slots at its own SaveBase, so a trap never joins
// colours across regimes — the registers that ride across do so unchanged,
// saved into and restored from the caller's own area.
//
// The register effects map onto the analyzer's lattice as:
//
//   EffKernelOwn  — a kernel-produced fact about the caller's own view
//                   (status, occupancy): the caller's entry colour;
//   EffConfig     — a static configuration constant (the regime index):
//                   lattice bottom;
//   EffChannelIn  — a datum imported from the channel peer: relabelled at
//                   the cut endpoint X2, or flow-checked against the entry
//                   colour when channels are modelled uncut.
//
// A service with ChanOutReg set is the declared export endpoint X1: the
// named register's colour leaves through the kernel channel and is reported
// as a sanctioned channel flow, never a violation.

// trap applies the summary of the kernel service named by the TRAP code.
func (a *analysis) trap(in *Instr, st *state, pc Colour, report bool) {
	code := machine.TrapCodeOf(in.Words[0])
	entry := a.spec.Entry
	fp, ok := kernel.FootprintFor(code)
	if !ok {
		// Unknown service: the kernel writes an error status into R0.
		a.kernelSet(in, st, loc(0), entry)
		return
	}
	if fp.ChanOutReg >= 0 {
		c := a.lat.Lub(a.get(st, loc(fp.ChanOutReg)), pc)
		if report {
			a.report(Flow{
				Kind: FlowChannel, Addr: in.Addr, Text: in.Text,
				From: c, To: entry,
				Dst: fmt.Sprintf("SEND endpoint (X1): R%d leaves through the kernel channel",
					fp.ChanOutReg),
				Chain: a.chain(st, loc(fp.ChanOutReg)),
			})
		}
	}
	inColour := entry // cut endpoint X2: relabelled on import
	if fp.ChanInReg >= 0 {
		if a.spec.Uncut {
			for _, p := range a.spec.Peers {
				inColour = a.lat.Lub(inColour, p)
			}
		}
		if report {
			a.report(Flow{
				Kind: FlowChannel, Addr: in.Addr, Text: in.Text,
				From: inColour, To: entry,
				Dst: fmt.Sprintf("RECV endpoint (X2): R%d imported through the kernel channel",
					fp.ChanInReg),
			})
		}
	}
	for _, rw := range fp.WriteRegs {
		switch rw.Effect {
		case kernel.EffKernelOwn:
			a.kernelSet(in, st, loc(rw.Reg), entry)
		case kernel.EffConfig:
			a.kernelSet(in, st, loc(rw.Reg), a.bot)
		case kernel.EffChannelIn:
			// Uncut channels are the configured flows sepverify -uncut
			// shows: the import is flow-checked instead of relabelled.
			a.checkedSet(in, st, loc(rw.Reg), inColour, inColour, locNone,
				"uncut channel import", report)
		}
	}
	// Services whose footprint writes no registers (SWAP, IRQON/IRQOFF,
	// WAITIRQ, HALTME) leave the register file untouched: the caller's
	// registers are saved into and restored from its own save area.
}
