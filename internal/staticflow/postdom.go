package staticflow

// Postdominators and control dependence over the CFG. Implicit flows in a
// machine program have no syntactic block structure to lean on (the
// structured-IR certifier in package ifa gets them for free from if/while
// nesting), so the machine-level analyzer recovers them the standard way: a
// block is control-dependent on a conditional branch iff the branch decides
// whether the block executes, i.e. the block postdominates one successor of
// the branch but not the branch itself.

// postdoms computes, for each block, the set of blocks that postdominate it
// (including itself), using the iterative dataflow formulation over a
// virtual exit node. Blocks that cannot reach the exit (infinite loops with
// no HALT/RTI) are given a synthetic exit edge, the usual pseudo-exit
// treatment, so the computation converges for every program shape.
func postdoms(g *CFG) []map[int]bool {
	n := len(g.Blocks)
	exit := n // virtual exit node

	succs := make([][]int, n+1)
	for i, b := range g.Blocks {
		for _, e := range b.Succs {
			succs[i] = append(succs[i], e.To)
		}
		if len(b.Succs) == 0 {
			succs[i] = append(succs[i], exit)
		}
	}

	// Pseudo-exit for exit-free cycles: any block that cannot reach the
	// exit gets a direct synthetic edge to it.
	reach := make([]bool, n+1)
	reach[exit] = true
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			if reach[i] {
				continue
			}
			for _, s := range succs[i] {
				if reach[s] {
					reach[i] = true
					changed = true
					break
				}
			}
		}
	}
	for i := 0; i < n; i++ {
		if !reach[i] {
			succs[i] = append(succs[i], exit)
			reach[i] = true
		}
	}

	// Iterative postdominator sets: pdom(exit) = {exit};
	// pdom(b) = {b} ∪ ⋂ pdom(s) over successors s.
	pdom := make([]map[int]bool, n+1)
	pdom[exit] = map[int]bool{exit: true}
	all := map[int]bool{}
	for i := 0; i <= n; i++ {
		all[i] = true
	}
	for i := 0; i < n; i++ {
		pdom[i] = all // ⊤ start
	}
	for changed := true; changed; {
		changed = false
		for i := n - 1; i >= 0; i-- {
			var inter map[int]bool
			for _, s := range succs[i] {
				if inter == nil {
					inter = copySet(pdom[s])
					continue
				}
				for k := range inter {
					if !pdom[s][k] {
						delete(inter, k)
					}
				}
			}
			if inter == nil {
				inter = map[int]bool{}
			}
			inter[i] = true
			if !equalSet(inter, pdom[i]) {
				pdom[i] = inter
				changed = true
			}
		}
	}
	return pdom[:n]
}

func copySet(s map[int]bool) map[int]bool {
	out := make(map[int]bool, len(s))
	for k := range s {
		out[k] = true
	}
	return out
}

func equalSet(a, b map[int]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// controlDeps returns, for each block, the list of conditional-branch
// blocks it is control-dependent on: Y depends on branch B iff Y
// postdominates some successor of B but does not strictly postdominate B.
func controlDeps(g *CFG) [][]int {
	pdom := postdoms(g)
	n := len(g.Blocks)
	deps := make([][]int, n)
	for bi, b := range g.Blocks {
		if !b.CondBranch || len(b.Succs) < 2 {
			continue
		}
		for y := 0; y < n; y++ {
			if y != bi && pdom[bi][y] {
				continue // y strictly postdominates the branch: runs anyway
			}
			for _, e := range b.Succs {
				if pdom[e.To][y] {
					deps[y] = append(deps[y], bi)
					break
				}
			}
		}
	}
	return deps
}
