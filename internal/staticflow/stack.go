package staticflow

// Frame-offset stack cells. The original analyzer folded the entire stack
// into one summary location (locStack): every PUSH joined its colour in,
// every POP read the join — so a push/pop pair of one colour poisoned every
// later pop of another. This file splits the stack into SP-relative cells:
// the state carries a stack of (colour, witness) cells maintained through
// PUSH/POP/JSR/RTS, giving pops the exact colour pushed at that depth.
//
// The cells are an overlay, not a replacement: the locStack summary is
// still maintained as the join of everything pushed, and the analyzer
// collapses back onto it — soundly — the moment it can no longer prove the
// cell/SP correspondence:
//
//   - an explicit write to SP (MOV #x, SP; ADD #n, SP ...) of any kind;
//   - a store through a run-time address (it may alias the stack);
//   - an RTI (pops a frame the analyzer did not see pushed);
//   - joining two states whose tracked depths differ;
//   - stack depth past stackCellCap;
//   - any program that installs interrupt handlers (delivery pushes a
//     PSW/PC frame between any two instructions).
//
// After collapse, PUSH/POP behave exactly as before: the summary location
// takes the joins, and precision is lost but never soundness.

// stackCellCap bounds the tracked depth; deeper stacks collapse.
const stackCellCap = 64

// stackCell is one tracked stack slot.
type stackCell struct {
	col Colour
	wit witness
}

// stackLose abandons the tracked cells; the locStack summary (which has
// absorbed every pushed colour all along) takes over.
func (s *state) stackLose() {
	s.stkLost = true
	s.stk = nil
}

// stackTracked reports whether precise cells are in effect.
func (s *state) stackTracked() bool { return !s.stkLost && !s.stkVirgin }

// stackPush appends a cell, collapsing at the cap.
func (s *state) stackPush(c stackCell) {
	if !s.stackTracked() {
		return
	}
	if len(s.stk) >= stackCellCap {
		s.stackLose()
		return
	}
	s.stk = append(append([]stackCell{}, s.stk...), c)
}

// stackPop removes and returns the top cell; ok is false when the cells are
// collapsed or the tracked stack is empty (an underflowing pop reads memory
// the program never pushed — the summary handles it).
func (s *state) stackPop() (stackCell, bool) {
	if !s.stackTracked() || len(s.stk) == 0 {
		return stackCell{}, false
	}
	c := s.stk[len(s.stk)-1]
	s.stk = s.stk[:len(s.stk)-1]
	return c, true
}

// joinStacks merges src's stack into dst, returning whether dst changed.
// Virgin states (never reached by any predecessor) adopt the other side's
// stack verbatim; mismatched depths collapse both.
func (a *analysis) joinStacks(dst, src *state) bool {
	if src.stkVirgin {
		return false
	}
	if dst.stkVirgin {
		dst.stkVirgin = false
		dst.stkLost = src.stkLost
		dst.stk = append([]stackCell{}, src.stk...)
		return true
	}
	if dst.stkLost {
		return false
	}
	if src.stkLost || len(dst.stk) != len(src.stk) {
		dst.stackLose()
		return true
	}
	changed := false
	for i := range dst.stk {
		j := a.lat.Lub(dst.stk[i].col, src.stk[i].col)
		if j != dst.stk[i].col {
			dst.stk[i].col = j
			dst.stk[i].wit = src.stk[i].wit
			changed = true
		}
	}
	return changed
}

// equalStacks compares the stack components of two states.
func equalStacks(x, y *state) bool {
	if x.stkVirgin != y.stkVirgin || x.stkLost != y.stkLost || len(x.stk) != len(y.stk) {
		return false
	}
	for i := range x.stk {
		if x.stk[i].col != y.stk[i].col {
			return false
		}
	}
	return true
}
