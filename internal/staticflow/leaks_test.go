package staticflow_test

import (
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/staticflow"
)

// Every planted leak in kernel.AllLeaks() must have a static fixture and
// every fixture must be REJECTED — under full precision AND with every
// precision lever disabled. A leak flipping to CERTIFIED under any
// combination is a soundness regression.
func TestLeakFixturesAllRejected(t *testing.T) {
	fixtures := staticflow.LeakFixtures()
	byName := map[string]staticflow.LeakFixture{}
	for _, f := range fixtures {
		byName[f.Name] = f
	}
	for name := range kernel.AllLeaks() {
		if _, ok := byName[name]; !ok {
			t.Errorf("kernel leak %s has no static fixture", name)
		}
	}
	if len(fixtures) != len(kernel.AllLeaks()) {
		t.Errorf("fixtures = %d, kernel leaks = %d", len(fixtures), len(kernel.AllLeaks()))
	}

	precisions := map[string]staticflow.Precision{
		"full":          {},
		"no-vsa":        {NoVSA: true},
		"no-stackcells": {NoStackCells: true},
		"no-liveness":   {NoFlagLiveness: true},
		"coarse":        {NoVSA: true, NoStackCells: true, NoFlagLiveness: true},
	}
	for _, f := range fixtures {
		for pname, p := range precisions {
			f := f
			f.Spec.Precision = p
			rep, err := staticflow.AnalyzeLeakFixture(f)
			if err != nil {
				t.Fatalf("%s/%s: %v", f.Name, pname, err)
			}
			if rep.Certified() {
				t.Errorf("%s certified under precision %q — planted leak lost:\n%s",
					f.Name, pname, rep)
			}
		}
	}
}

// The RegisterLeak fixture must be caught by the dispatch check
// specifically: R5 still carries the outgoing regime's colour at HALT.
func TestRegisterLeakCaughtAtDispatch(t *testing.T) {
	for _, f := range staticflow.LeakFixtures() {
		if f.Name != "RegisterLeak" {
			continue
		}
		rep, err := staticflow.AnalyzeLeakFixture(f)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, v := range rep.Violations {
			if v.Dst == "register R5 handed to the black regime at dispatch" {
				found = true
				if v.From != "red" {
					t.Errorf("dispatch violation from %s, want red: %s", v.From, v)
				}
			}
		}
		if !found {
			t.Errorf("no R5 dispatch violation in RegisterLeak fixture:\n%s", rep)
		}
		return
	}
	t.Fatal("RegisterLeak fixture missing")
}

// The honest swap must NOT trip the dispatch check: every register is
// restored from the incoming regime's own save area before the HALT.
func TestHonestSwapPassesDispatchCheck(t *testing.T) {
	rep, err := staticflow.AnalyzeKernelSwap([]staticflow.Colour{"red", "black"}, 0, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range rep.Violations {
		// Register-restore violations are expected; dispatch-check
		// violations name the incoming regime and must not appear.
		if strings.Contains(v.Dst, "dispatch") {
			t.Errorf("honest swap tripped the dispatch check: %s", v)
		}
	}
	if len(rep.Violations) != 7 {
		t.Errorf("honest swap violations = %d, want 7 (the register restores)",
			len(rep.Violations))
	}
}
