package staticflow

import (
	"sort"

	"repro/internal/asm"
	"repro/internal/kernel"
	"repro/internal/machine"
)

// Value-set analysis: a small constant-propagation domain over the general
// registers, existing for exactly one purpose — resolving indirect JMP/JSR
// sites (`JMP (Rn)`, `JMP tab(Rn)`, dispatch through a constant table) into
// real CFG edges instead of "unresolved indirect" notes. The domain is
// deliberately tiny:
//
//   - each of R0..R5 carries either ⊤ (unknown) or a set of at most vsaCap
//     concrete words;
//   - MOV/ADD/SUB/SHL propagate sets (pairwise for register-register
//     arithmetic, capped); every other register write is ⊤;
//   - memory loads contribute sets only when the image is provably ROM —
//     no instruction anywhere in the program can write inside the image
//     (any indirect/indexed store, PUSH or JSR disqualifies it, since the
//     analyzer tracks no pointer or SP values);
//   - programs that install interrupt handlers get no resolutions at all:
//     a handler can rewrite registers between any two instructions.
//
// Everything that falls outside these cases keeps the sound fallback: the
// site stays unresolved, noted once, and the flow analysis treats it as
// reaching any region. The machine semantics mirrored here are exact:
// JMP/JSR compute PC from the *effective address* of the destination
// operand (mode reg → Rn, indirect → Rn, indexed → Rn+disp, absolute →
// ext), with no memory read — table dispatch therefore reads its table
// through an ordinary MOV, which is where the ROM rule applies.

// vsaCap bounds a tracked value set; one past it, the register is ⊤.
const vsaCap = 8

// vset is a register's value set: top means unknown; otherwise vals is
// sorted and duplicate-free with 0 < len ≤ vsaCap.
type vset struct {
	top  bool
	vals []Word
}

func vsTop() vset            { return vset{top: true} }
func vsConst(w Word) vset    { return vset{vals: []Word{w}} }
func (v vset) known() bool   { return !v.top && len(v.vals) > 0 }
func (v vset) isBottom() bool { return !v.top && len(v.vals) == 0 }

// norm sorts, dedups and caps a value list into a vset.
func vsOf(vals []Word) vset {
	if len(vals) == 0 {
		return vset{}
	}
	sort.Slice(vals, func(i, j int) bool { return vals[i] < vals[j] })
	out := vals[:1]
	for _, w := range vals[1:] {
		if w != out[len(out)-1] {
			out = append(out, w)
		}
	}
	if len(out) > vsaCap {
		return vsTop()
	}
	return vset{vals: out}
}

// join is set union with the cap; ⊤ absorbs.
func (v vset) join(o vset) vset {
	if v.top || o.top {
		return vsTop()
	}
	return vsOf(append(append([]Word{}, v.vals...), o.vals...))
}

func (v vset) equal(o vset) bool {
	if v.top != o.top || len(v.vals) != len(o.vals) {
		return false
	}
	for i := range v.vals {
		if v.vals[i] != o.vals[i] {
			return false
		}
	}
	return true
}

// submasks enumerates every submask of every mask in ms (⊤ past the cap):
// the value set of (unknown AND mask).
func submasks(ms vset) vset {
	var out []Word
	for _, m := range ms.vals {
		// Standard submask walk; the count is 2^popcount(m).
		for sub := m; ; sub = (sub - 1) & m {
			out = append(out, sub)
			if len(out) > vsaCap {
				return vsTop()
			}
			if sub == 0 {
				break
			}
		}
	}
	return vsOf(out)
}

// map2 applies f pairwise over two sets; any ⊤ (or blown cap) is ⊤.
func map2(a, b vset, f func(x, y Word) Word) vset {
	if a.top || b.top {
		return vsTop()
	}
	if len(a.vals)*len(b.vals) > vsaCap {
		return vsTop()
	}
	var out []Word
	for _, x := range a.vals {
		for _, y := range b.vals {
			out = append(out, f(x, y))
		}
	}
	return vsOf(out)
}

// vsaState is the per-program-point abstraction: one set per R0..R5.
type vsaState [6]vset

func vsaTopState() vsaState {
	var s vsaState
	for i := range s {
		s[i] = vsTop()
	}
	return s
}

func (s vsaState) join(o vsaState) vsaState {
	var out vsaState
	for i := range out {
		out[i] = s[i].join(o[i])
	}
	return out
}

func (s vsaState) equal(o vsaState) bool {
	for i := range s {
		if !s[i].equal(o[i]) {
			return false
		}
	}
	return true
}

// vsa is one value-set pass over a built CFG.
type vsa struct {
	img *asm.Image
	g   *CFG
	rom bool // no instruction can store into the image
}

// imageROM reports whether the image is provably immutable during
// execution: no decoded instruction can write a word inside [org, end).
// Stores through run-time addresses (indirect/indexed destinations), stack
// writes (PUSH, JSR) and absolute stores landing inside the image all
// disqualify it.
func imageROM(g *CFG, img *asm.Image) bool {
	for _, b := range g.Blocks {
		for i := range b.Instrs {
			in := &b.Instrs[i]
			switch in.Op {
			case machine.OpPUSH, machine.OpJSR:
				return false
			case machine.OpMOV, machine.OpADD, machine.OpSUB, machine.OpAND,
				machine.OpOR, machine.OpXOR, machine.OpSHL, machine.OpSHR,
				machine.OpMUL, machine.OpNOT, machine.OpNEG, machine.OpPOP,
				machine.OpMFPS:
				spec := machine.DstSpec(in.Words[0])
				switch machine.SpecMode(spec) {
				case machine.ModeIndirect, machine.ModeIndexed:
					return false
				case machine.ModeExtended:
					if machine.SpecReg(spec) == machine.RegSP {
						ext := in.Words[len(in.Words)-1]
						if ext >= img.Org && ext < img.End() {
							return false
						}
					}
				}
			}
		}
	}
	return true
}

// imageWord reads a word from the image, reporting whether a is inside it.
func (v *vsa) imageWord(a Word) (Word, bool) {
	if a >= v.img.Org && a < v.img.End() {
		return v.img.Words[a-v.img.Org], true
	}
	return 0, false
}

// load models a memory read at each address in as: defined only under the
// ROM rule with every address inside the image.
func (v *vsa) load(as vset) vset {
	if !v.rom || !as.known() {
		return vsTop()
	}
	var out []Word
	for _, a := range as.vals {
		w, ok := v.imageWord(a)
		if !ok {
			return vsTop()
		}
		out = append(out, w)
	}
	return vsOf(out)
}

// readSrc evaluates a source operand as a value set.
func (v *vsa) readSrc(s *vsaState, spec, ext Word) vset {
	mode, reg := machine.SpecMode(spec), machine.SpecReg(spec)
	switch mode {
	case machine.ModeReg:
		if reg <= 5 {
			return s[reg]
		}
		return vsTop() // SP, PC
	case machine.ModeIndirect:
		if reg <= 5 {
			return v.load(s[reg])
		}
		return vsTop()
	case machine.ModeIndexed:
		if reg <= 5 {
			return v.load(map2(s[reg], vsConst(ext), func(x, y Word) Word { return x + y }))
		}
		return vsTop()
	default: // ModeExtended
		if reg == machine.RegPC {
			return vsConst(ext) // immediate
		}
		return v.load(vsConst(ext)) // absolute
	}
}

// step applies one instruction's value transfer to s in place.
func (v *vsa) step(in *Instr, s *vsaState) {
	op := in.Op
	w := in.Words[0]

	var srcExt Word
	next := 1
	getExt := func(spec Word) Word {
		m := machine.SpecMode(spec)
		if (m == machine.ModeIndexed || m == machine.ModeExtended) && next < len(in.Words) {
			e := in.Words[next]
			next++
			return e
		}
		return 0
	}
	srcSpec, dstSpec := machine.SrcSpec(w), machine.DstSpec(w)
	if machine.HasSrc(op) {
		srcExt = getExt(srcSpec)
	}

	// dstReg returns the tracked register the destination names, or -1.
	dstReg := func() int {
		if machine.SpecMode(dstSpec) == machine.ModeReg {
			if r := machine.SpecReg(dstSpec); r <= 5 {
				return r
			}
		}
		return -1
	}

	switch op {
	case machine.OpMOV:
		if d := dstReg(); d >= 0 {
			s[d] = v.readSrc(s, srcSpec, srcExt)
		}
	case machine.OpADD:
		if d := dstReg(); d >= 0 {
			s[d] = map2(s[d], v.readSrc(s, srcSpec, srcExt),
				func(x, y Word) Word { return x + y })
		}
	case machine.OpSUB:
		if d := dstReg(); d >= 0 {
			s[d] = map2(s[d], v.readSrc(s, srcSpec, srcExt),
				func(x, y Word) Word { return x - y })
		}
	case machine.OpSHL:
		if d := dstReg(); d >= 0 {
			s[d] = map2(s[d], v.readSrc(s, srcSpec, srcExt),
				func(x, y Word) Word { return x << (y & 15) })
		}
	case machine.OpAND:
		if d := dstReg(); d >= 0 {
			src := v.readSrc(s, srcSpec, srcExt)
			if s[d].top && src.known() {
				// Masking an unknown value bounds it: the result is some
				// submask of the mask. This is how a runtime selector
				// (AND #1, Rn) becomes a resolvable table index.
				s[d] = submasks(src)
			} else {
				s[d] = map2(s[d], src, func(x, y Word) Word { return x & y })
			}
		}

	case machine.OpOR, machine.OpXOR, machine.OpSHR,
		machine.OpMUL, machine.OpNOT, machine.OpNEG, machine.OpPOP,
		machine.OpMFPS:
		if d := dstReg(); d >= 0 {
			s[d] = vsTop()
		}
	case machine.OpTRAP:
		// Kernel services write registers per their exported footprints;
		// an unknown code writes the error status into R0.
		if fp, ok := kernel.FootprintFor(machine.TrapCodeOf(w)); ok {
			for _, rw := range fp.WriteRegs {
				if rw.Reg <= 5 {
					s[rw.Reg] = vsTop()
				}
			}
		} else {
			s[0] = vsTop()
		}
	}
}

// siteTargets computes the jump-target set of an indirect JMP/JSR given the
// value state before it, mirroring the machine's effective-address rule.
func siteTargets(in *Instr, s *vsaState) vset {
	spec := machine.DstSpec(in.Words[0])
	mode, reg := machine.SpecMode(spec), machine.SpecReg(spec)
	switch mode {
	case machine.ModeReg, machine.ModeIndirect: // PC := Rn
		if reg <= 5 {
			return s[reg]
		}
	case machine.ModeIndexed: // PC := Rn + disp
		if reg <= 5 && len(in.Words) >= 2 {
			return map2(s[reg], vsConst(in.Words[len(in.Words)-1]),
				func(x, y Word) Word { return x + y })
		}
	}
	return vsTop()
}

// vsaResolve runs the value-set fixpoint over g and returns, for every
// indirect JMP/JSR site whose target set is finite and entirely inside the
// image, the sorted target list.
//
// Resolution is all-or-nothing: a resolved edge claims that execution can
// only reach those targets, which is defensible only when every executed
// instruction is one the decoder saw and modelled. So nothing resolves
// unless the whole graph is closed —
//
//   - the image is ROM (no store anywhere can rewrite code or tables);
//   - no RTS or RTI (either can transfer to a stack value the analysis
//     does not track);
//   - no interrupt handlers (delivery rewrites registers asynchronously);
//   - every reachable indirect site resolves (one escape hatch would let
//     execution run undecoded code that clobbers registers and returns).
//
// An open graph keeps the existing sound treatment: unresolved notes and
// top-colour at the flow level.
func vsaResolve(img *asm.Image, g *CFG) map[Word][]Word {
	if len(g.IRQRoots) > 0 || len(g.Blocks) == 0 || g.Entry < 0 {
		return nil
	}
	if !imageROM(g, img) {
		return nil
	}
	for _, b := range g.Blocks {
		for i := range b.Instrs {
			if op := b.Instrs[i].Op; op == machine.OpRTS || op == machine.OpRTI {
				return nil
			}
		}
	}
	v := &vsa{img: img, g: g, rom: true}

	n := len(g.Blocks)
	ins := make([]vsaState, n)
	reached := make([]bool, n)
	ins[g.Entry] = vsaTopState()
	reached[g.Entry] = true

	inWork := make([]bool, n)
	work := []int{g.Entry}
	push := func(i int) {
		if !inWork[i] {
			inWork[i] = true
			work = append(work, i)
		}
	}
	steps := 0
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		inWork[bi] = false
		st := ins[bi]
		for i := range g.Blocks[bi].Instrs {
			v.step(&g.Blocks[bi].Instrs[i], &st)
		}
		for _, e := range g.Blocks[bi].Succs {
			if !reached[e.To] {
				reached[e.To] = true
				ins[e.To] = st
				push(e.To)
			} else if j := ins[e.To].join(st); !j.equal(ins[e.To]) {
				ins[e.To] = j
				push(e.To)
			}
		}
		// The domain is finite (each register rises to ⊤ through capped
		// sets) so this converges; the bound is a fuzz belt.
		steps++
		if steps > 64*n+4096 {
			return nil
		}
	}

	out := map[Word][]Word{}
	for bi, b := range g.Blocks {
		if !reached[bi] {
			continue
		}
		st := ins[bi]
		for i := range b.Instrs {
			in := &b.Instrs[i]
			if in.Op == machine.OpJMP || in.Op == machine.OpJSR {
				spec := machine.DstSpec(in.Words[0])
				already := machine.SpecMode(spec) == machine.ModeExtended &&
					machine.SpecReg(spec) == machine.RegSP
				if !already {
					ts := siteTargets(in, &st)
					if !ts.known() {
						return nil // one open site poisons the closure
					}
					for _, t := range ts.vals {
						if _, inImg := v.imageWord(t); !inImg {
							return nil
						}
					}
					out[in.Addr] = append([]Word{}, ts.vals...)
				}
			}
			v.step(in, &st)
		}
	}
	return out
}
