// Package staticflow is a static information-flow analyzer for assembled
// SM11 machine programs — the machine-level counterpart of the structured-IR
// certifier in package ifa, built so the paper's §4 critique can be
// demonstrated on the code this repository actually executes rather than on
// a toy language.
//
// The analyzer is deliberately faithful to the technique the paper
// criticizes: it is *syntactic*. Every register and memory cell carries a
// security colour from an isolation lattice (package ifa's lattices are
// reused verbatim), the colour of a computed value is the least upper bound
// of its operands, and a store is certified only if the value's colour —
// joined with the implicit-flow colour of the governing branches — flows to
// the destination's declared colour. Values are never consulted. The
// pipeline is:
//
//  1. BuildCFG decodes the assembled image into basic blocks, following
//     fall-throughs, branches, JMP/JSR/RTS, TRAP resumption, and the
//     interrupt edges implied by writes to the regime vector table;
//  2. postdominators over the CFG yield control dependence, which turns the
//     condition-code colour at each conditional branch into the implicit
//     "pc colour" of every block the branch controls;
//  3. a worklist fixpoint propagates per-register/per-cell colours, with the
//     kernel's TRAP ABI built in: SEND and RECV are the declared channel
//     endpoints — the X1/X2 aliases of the paper's channel-cutting argument —
//     and are the only sanctioned points where information may change
//     colour.
//
// Violations carry instruction-level provenance chains (which load gave the
// offending register its colour, and so on).
//
// The headline use is AnalyzeKernelSwap: the kernel's own context-switch
// sequence, written over the real save-area addresses of internal/kernel's
// layout, is REJECTED by this analyzer — BLACK save-area words syntactically
// reach the RED-classified register file — while package separability
// proves the very same kernel separable. That is Rushby's "manifestly
// secure but uncertifiable" SWAP, reproduced on genuine machine code.
package staticflow

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ifa"
	"repro/internal/machine"
)

// Word aliases the machine word type.
type Word = machine.Word

// Colour aliases ifa.Class: staticflow reuses the ifa lattices so the two
// analyzers are comparable verdict-for-verdict (see cmd/ifacheck -compare).
type Colour = ifa.Class

// Region declares the colour of a half-open range [Lo, Hi) of addresses in
// the analyzed program's address space.
type Region struct {
	Name   string
	Lo, Hi Word
	Colour Colour
}

// Contains reports whether the region covers address a.
func (r *Region) Contains(a Word) bool { return a >= r.Lo && a < r.Hi }

// Precision switches off individual precision levers, restoring the
// analyzer's original coarse behaviour. All levers default to on; the
// toggles exist for the differential tests that prove the precise analyzer
// never certifies a program the coarse one rejected for a real reason, and
// for bisecting which lever a verdict change came from.
type Precision struct {
	// NoVSA disables value-set resolution of indirect JMP/JSR: every
	// indirect site keeps the unresolved note and top-colour treatment.
	NoVSA bool
	// NoStackCells disables frame-offset stack cells: PUSH/POP/JSR/RTS all
	// flow through the single joined stack summary location.
	NoStackCells bool
	// NoFlagLiveness disables dead-condition-code suppression: every
	// flag-setting instruction is flow-checked even when the codes are
	// provably overwritten before any use.
	NoFlagLiveness bool
}

// Spec classifies an analysis subject: the colour of the executing context
// (which classifies the register file and condition codes), the coloured
// memory regions, and how channel endpoints behave.
type Spec struct {
	// Name labels the report.
	Name string
	// Entry is the colour of the executing regime: the registers, flags and
	// stack are classified Entry, and the implicit-flow colour starts at the
	// lattice bottom.
	Entry Colour
	// Regions colour the address space. Addresses outside every region are
	// reported as warnings (they fault at run time under the MMU).
	Regions []Region
	// Peers are the colours reachable over configured channels. With Uncut
	// set, a RECV imports the join of the peer colours instead of being
	// relabelled at the cut endpoint — reproducing sepverify -uncut, which
	// shows the configured channels as flows.
	Peers []Colour
	Uncut bool
	// Lattice defaults to ifa.Isolation over every colour mentioned in the
	// spec.
	Lattice ifa.Lattice
	// DispatchColour, when set, marks the program as a kernel fragment that
	// ends by dispatching the named regime: at each HALT the general
	// registers are flow-checked against this colour, since the hardware
	// hands them to that regime's code. This is how a skipped restore in a
	// context switch (a register still carrying the outgoing regime's data)
	// becomes a reported flow.
	DispatchColour Colour
	// Precision selectively disables precision levers (tests only).
	Precision Precision
}

// lattice returns the spec's lattice, building the default isolation
// lattice when unset.
func (s *Spec) lattice() ifa.Lattice {
	if s.Lattice != nil {
		return s.Lattice
	}
	seen := map[Colour]bool{s.Entry: true}
	atoms := []Colour{s.Entry}
	add := func(c Colour) {
		if c != ifa.IsolationBottom && c != ifa.IsolationTop && !seen[c] {
			seen[c] = true
			atoms = append(atoms, c)
		}
	}
	for _, r := range s.Regions {
		add(r.Colour)
	}
	for _, p := range s.Peers {
		add(p)
	}
	if s.DispatchColour != "" {
		add(s.DispatchColour)
	}
	return ifa.Isolation(atoms...)
}

// regionAt returns the region containing a, or nil.
func (s *Spec) regionAt(a Word) *Region {
	for i := range s.Regions {
		if s.Regions[i].Contains(a) {
			return &s.Regions[i]
		}
	}
	return nil
}

// FlowKind distinguishes the reportable flows.
type FlowKind int

// Flow kinds.
const (
	// FlowStore is an uncertifiable store: value colour ⊔ pc colour does
	// not flow to the destination's declared colour.
	FlowStore FlowKind = iota
	// FlowChannel is a sanctioned endpoint flow: information leaving or
	// entering through the kernel's SEND/RECV services, the declared
	// declassification points.
	FlowChannel
)

// Flow is one information flow: a violation (FlowStore) or a sanctioned
// channel endpoint crossing (FlowChannel).
type Flow struct {
	Kind     FlowKind
	Addr     Word   // address of the responsible instruction
	Text     string // its disassembly
	From, To Colour
	Dst      string // destination description ("register R0", "mem[0x121] (save.black)")
	Implicit bool   // true when the pc colour alone pushed the flow over
	Chain    []string
}

func (f Flow) String() string {
	kind := "explicit"
	if f.Implicit {
		kind = "implicit"
	}
	if f.Kind == FlowChannel {
		return fmt.Sprintf("channel %s at %04x: %s [%s]", f.From, f.Addr, f.Text, f.Dst)
	}
	return fmt.Sprintf("%s flow %s -> %s at %04x: %s [%s]", kind, f.From, f.To, f.Addr, f.Text, f.Dst)
}

// Report is the outcome of analyzing one program.
type Report struct {
	Name   string
	Entry  Colour
	Blocks int
	Instrs int
	// Violations are the uncertifiable flows; empty means CERTIFIED.
	Violations []Flow
	// Channels are the sanctioned endpoint flows (listed, not violations).
	Channels []Flow
	// Warnings note accesses outside every declared region and other
	// conservative assumptions taken.
	Warnings []string
	// Notes carry CFG construction caveats (unresolved indirect jumps...).
	Notes []string
}

// Certified reports whether the analysis found no uncertifiable flow.
func (r *Report) Certified() bool { return len(r.Violations) == 0 }

// Verdict renders the one-word outcome.
func (r *Report) Verdict() string {
	if r.Certified() {
		return "CERTIFIED"
	}
	return "REJECTED"
}

// Summary renders a one-line outcome.
func (r *Report) Summary() string {
	if r.Certified() {
		return fmt.Sprintf("%s: CERTIFIED (%d instructions, %d blocks, %d channel flows)",
			r.Name, r.Instrs, r.Blocks, len(r.Channels))
	}
	return fmt.Sprintf("%s: REJECTED (%d violations, first: %s)",
		r.Name, len(r.Violations), r.Violations[0])
}

// String renders the full report deterministically (golden-tested).
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s (entry colour %s)\n", r.Name, r.Entry)
	fmt.Fprintf(&b, "  %d instructions in %d blocks\n", r.Instrs, r.Blocks)
	fmt.Fprintf(&b, "  verdict: %s", r.Verdict())
	if !r.Certified() {
		fmt.Fprintf(&b, " (%d violations)", len(r.Violations))
	}
	b.WriteByte('\n')
	for _, v := range r.Violations {
		fmt.Fprintf(&b, "  %s\n", v)
		for _, c := range v.Chain {
			fmt.Fprintf(&b, "      %s\n", c)
		}
	}
	for _, c := range r.Channels {
		fmt.Fprintf(&b, "  %s\n", c)
	}
	for _, w := range r.Warnings {
		fmt.Fprintf(&b, "  warning: %s\n", w)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// sortFlows fixes a deterministic report order: by address, then dst.
func sortFlows(fs []Flow) {
	sort.SliceStable(fs, func(i, j int) bool {
		if fs[i].Addr != fs[j].Addr {
			return fs[i].Addr < fs[j].Addr
		}
		return fs[i].Dst < fs[j].Dst
	})
}
