package staticflow_test

import (
	"strings"
	"testing"

	"repro/internal/staticflow"
)

// The frame-offset stack cell tests: each exercises one rule of the
// tracked-stack abstraction through full Analyze runs, with the coarse
// configuration as the contrast. The censor memory map (CensorSpec) is
// reused so HIGH/LOW have a fixed meaning: header 0x500 HIGH, state 0x600
// and out 0x700 LOW.

func censorAnalyze(t *testing.T, name, src string, coarse bool) *staticflow.Report {
	t.Helper()
	spec := staticflow.CensorSpec(name)
	if coarse {
		spec.Precision.NoStackCells = true
	}
	return analyze(t, src, spec)
}

// An interleaved PUSH/PUSH/POP/POP where the colours differ per depth:
// cells keep them apart, the summary conflates them.
func TestStackCellsSeparateDepths(t *testing.T) {
	src := `
	.org 0x40
start:	MOV @0x500, R1		; HIGH
	PUSH R1
	MOV @0x600, R2		; LOW
	PUSH R2
	POP @0x700		; the LOW cell -> LOW out
	POP @0x50f		; the HIGH cell -> HIGH slot
	HALT
`
	if rep := censorAnalyze(t, "cells-depths", src, false); !rep.Certified() {
		t.Errorf("tracked stack rejected the balanced interleave:\n%s", rep)
	}
	if rep := censorAnalyze(t, "cells-depths", src, true); rep.Certified() {
		t.Error("coarse summary certified the interleave — contrast lost")
	}
}

// Writing SP directly retargets the stack: every tracked cell is invalid,
// and later pops must fall back to the joined summary.
func TestStackCollapseOnSPWrite(t *testing.T) {
	src := `
	.org 0x40
start:	MOV @0x500, R1		; HIGH
	PUSH R1
	MOV #0x7f0, SP		; retarget the stack: cells are meaningless
	PUSH R2
	POP @0x700		; summary pop: HIGH joined in -> violation
	HALT
`
	rep := censorAnalyze(t, "cells-sp-write", src, false)
	if rep.Certified() {
		t.Fatalf("SP write did not collapse the tracked stack:\n%s", rep)
	}
}

// An indirect store could land anywhere — including the stack — so it must
// collapse the cells too.
func TestStackCollapseOnIndirectStore(t *testing.T) {
	src := `
	.org 0x40
start:	MOV @0x500, R1		; HIGH
	PUSH R1
	MOV #0x600, R3
	MOV R2, (R3)		; indirect store: may alias the stack
	PUSH R2
	POP @0x700		; must use the summary -> violation
	POP @0x50f
	HALT
`
	rep := censorAnalyze(t, "cells-indirect", src, false)
	if rep.Certified() {
		t.Fatalf("indirect store did not collapse the tracked stack:\n%s", rep)
	}
}

// Two arms that push different depths force a sound collapse at the join.
func TestStackDepthMismatchJoin(t *testing.T) {
	src := `
	.org 0x40
start:	MOV @0x500, R1		; HIGH
	PUSH R1
	MOV @0x600, R2		; LOW
	CMP #0, R2
	BEQ skip
	PUSH R2			; one arm pushes, the other does not
skip:	POP @0x700		; depths disagree: summary pop -> violation
	HALT
`
	rep := censorAnalyze(t, "cells-depth-mismatch", src, false)
	if rep.Certified() {
		t.Fatalf("depth-mismatched join did not collapse the stack:\n%s", rep)
	}
}

// JSR/RTS are balanced on the tracked stack: a call between a push and its
// pop must not disturb the cell.
func TestStackCellsSurviveCall(t *testing.T) {
	src := `
	.org 0x40
start:	MOV @0x500, R1		; HIGH
	PUSH R1
	MOV @0x600, R2		; LOW
	PUSH R2
	JSR bump		; balanced call between push and pop
	POP @0x700		; still the LOW cell
	POP @0x50f		; still the HIGH cell
	HALT
bump:	ADD #1, R2
	RTS
`
	rep := censorAnalyze(t, "cells-call", src, false)
	if rep.Certified() {
		return
	}
	// A JSR also breaks the ROM closure for VSA — make the failure mode
	// readable if the balance ever regresses.
	var lines []string
	for _, v := range rep.Violations {
		lines = append(lines, v.String())
	}
	t.Errorf("balanced JSR/RTS disturbed the tracked cells:\n%s", strings.Join(lines, "\n"))
}
