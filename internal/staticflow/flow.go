package staticflow

import (
	"fmt"
	"sort"

	"repro/internal/asm"
	"repro/internal/ifa"
	"repro/internal/machine"
)

// A loc is one colour-carrying location: the six general registers, the
// user SP, the condition codes, a single summary location for the stack
// (the analyzer tracks no values, so stack slots cannot be distinguished),
// and one location per absolutely-addressed memory cell.
type loc int32

const (
	locR0    loc = 0 // R0..R5 at locR0..locR0+5
	locSP    loc = 6
	locFlags loc = 7
	locStack loc = 8
	locNone  loc = -1 // constants and kernel-produced values
	memBase  loc = 16
)

func memLoc(a Word) loc { return memBase + loc(a) }

// witness records which instruction established a location's current
// colour, and from where — the raw material of provenance chains.
type witness struct {
	addr     Word
	text     string
	from     loc
	fromDesc string
}

// state maps locations to colours, storing only entries that differ from
// the spec-declared default. Witnesses ride along and never influence the
// fixpoint (colour maps and stack cells alone decide convergence). The
// stack fields are the frame-offset cell overlay (stack.go): stk holds the
// tracked cells bottom-to-top, stkLost marks a sound collapse onto the
// locStack summary, and stkVirgin marks a state no predecessor has reached
// yet (its depth-0 stack is a placeholder, not a fact).
type state struct {
	col map[loc]Colour
	wit map[loc]witness

	stk       []stackCell
	stkLost   bool
	stkVirgin bool
}

func newState() *state {
	return &state{col: map[loc]Colour{}, wit: map[loc]witness{}, stkVirgin: true}
}

func (s *state) clone() *state {
	c := &state{col: make(map[loc]Colour, len(s.col)), wit: make(map[loc]witness, len(s.wit)),
		stk: append([]stackCell{}, s.stk...), stkLost: s.stkLost, stkVirgin: s.stkVirgin}
	for k, v := range s.col {
		c.col[k] = v
	}
	for k, v := range s.wit {
		c.wit[k] = v
	}
	return c
}

// analysis carries one Analyze run.
type analysis struct {
	spec *Spec
	lat  ifa.Lattice
	bot  Colour
	g    *CFG

	pcCol     []Colour // implicit-flow colour per block
	handlerIn *state   // join state at interrupt-handler entries

	// cellsOn enables the frame-offset stack cells (stack.go); off, every
	// stack op uses the locStack summary as before.
	cellsOn bool
	// liveAfter maps instruction addresses to condition-code liveness
	// after the instruction (liveness.go); nil means live everywhere.
	liveAfter map[Word]bool

	rep      *Report
	seen     map[string]bool // violation/channel dedup
	warnSeen map[string]bool
}

// Analyze runs the static information-flow analysis of the image under the
// spec and returns the report.
func Analyze(img *asm.Image, spec Spec) (*Report, error) {
	g, err := buildCFG(img, !spec.Precision.NoVSA)
	if err != nil {
		return nil, err
	}
	return AnalyzeCFG(g, spec), nil
}

// AnalyzeCFG analyzes an already-built CFG (exposed for the fuzz harness
// and for tools that post-process the graph).
func AnalyzeCFG(g *CFG, spec Spec) *Report {
	a := &analysis{
		spec:     &spec,
		lat:      spec.lattice(),
		g:        g,
		pcCol:    make([]Colour, len(g.Blocks)),
		rep:      &Report{Name: spec.Name, Entry: spec.Entry, Blocks: len(g.Blocks), Instrs: g.NumInstrs()},
		seen:     map[string]bool{},
		warnSeen: map[string]bool{},
	}
	a.bot = a.lat.Bottom()
	for i := range a.pcCol {
		a.pcCol[i] = a.bot
	}
	// Interrupt delivery pushes a frame and reads the PSW between any two
	// instructions, so handler programs keep the coarse stack summary and
	// always-live condition codes.
	a.cellsOn = !spec.Precision.NoStackCells && len(g.IRQRoots) == 0
	if !spec.Precision.NoFlagLiveness {
		a.liveAfter = flagsLiveAfter(g)
	}
	a.handlerIn = newState()
	a.rep.Notes = append(a.rep.Notes, g.Notes...)
	a.run()
	sortFlows(a.rep.Violations)
	sortFlows(a.rep.Channels)
	sort.Strings(a.rep.Warnings)
	return a.rep
}

// def returns the declared colour of a location: registers, flags and the
// stack belong to the executing regime; memory cells to their region.
func (a *analysis) def(l loc) Colour {
	if l < memBase {
		return a.spec.Entry
	}
	if r := a.spec.regionAt(Word(l - memBase)); r != nil {
		return r.Colour
	}
	return a.bot // unmapped: faults at run time, warned separately
}

func (a *analysis) get(s *state, l loc) Colour {
	if c, ok := s.col[l]; ok {
		return c
	}
	return a.def(l)
}

func (a *analysis) set(s *state, l loc, c Colour, w witness) {
	if c == a.def(l) {
		delete(s.col, l)
	} else {
		s.col[l] = c
	}
	s.wit[l] = w
}

// joinInto joins src into dst, reporting whether dst changed.
func (a *analysis) joinInto(dst, src *state) bool {
	changed := false
	if a.cellsOn && a.joinStacks(dst, src) {
		changed = true
	}
	keys := map[loc]bool{}
	for k := range dst.col {
		keys[k] = true
	}
	for k := range src.col {
		keys[k] = true
	}
	for k := range keys {
		dc, sc := a.get(dst, k), a.get(src, k)
		j := a.lat.Lub(dc, sc)
		if j != dc {
			changed = true
			if j == a.def(k) {
				delete(dst.col, k)
			} else {
				dst.col[k] = j
			}
			// The colour rose because of src's contribution: adopt its
			// witness so chains point at the path that supplied the colour.
			if w, ok := src.wit[k]; ok {
				dst.wit[k] = w
			}
		} else if _, ok := dst.wit[k]; !ok {
			if w, ok := src.wit[k]; ok {
				dst.wit[k] = w
			}
		}
	}
	return changed
}

func (a *analysis) equalStates(x, y *state) bool {
	if a.cellsOn && !equalStacks(x, y) {
		return false
	}
	keys := map[loc]bool{}
	for k := range x.col {
		keys[k] = true
	}
	for k := range y.col {
		keys[k] = true
	}
	for k := range keys {
		if a.get(x, k) != a.get(y, k) {
			return false
		}
	}
	return true
}

func (a *analysis) warnf(format string, args ...any) {
	msg := fmt.Sprintf(format, args...)
	if !a.warnSeen[msg] {
		a.warnSeen[msg] = true
		a.rep.Warnings = append(a.rep.Warnings, msg)
	}
}

// locDesc renders a location for reports.
func (a *analysis) locDesc(l loc) string {
	switch {
	case l >= locR0 && l < locR0+6:
		return fmt.Sprintf("register R%d", int(l))
	case l == locSP:
		return "register SP"
	case l == locFlags:
		return "condition codes"
	case l == locStack:
		return "stack"
	case l >= memBase:
		addr := Word(l - memBase)
		if r := a.spec.regionAt(addr); r != nil {
			return fmt.Sprintf("mem[%04x] (%s)", addr, r.Name)
		}
		return fmt.Sprintf("mem[%04x] (unmapped)", addr)
	}
	return "?"
}

// run drives the outer fixpoint: the inner worklist propagates colours
// under the current implicit-flow assignment; the implicit colours are then
// recomputed from the condition-code colours at conditional branches (via
// control dependence) and the interrupt-handler entry state from the join
// of every block (an interrupt may fire anywhere). Both only rise in a
// finite lattice, so the loop converges.
func (a *analysis) run() {
	deps := controlDeps(a.g)
	var outs []*state
	for iter := 0; ; iter++ {
		outs = a.inner(false)
		changed := false
		for bi := range a.g.Blocks {
			pc := a.bot
			for _, br := range deps[bi] {
				pc = a.lat.Lub(pc, a.get(outs[br], locFlags))
			}
			if pc != a.pcCol[bi] {
				a.pcCol[bi] = pc
				changed = true
			}
		}
		if len(a.g.IRQRoots) > 0 {
			h := newState()
			a.joinInto(h, a.entryState())
			for _, o := range outs {
				a.joinInto(h, o)
			}
			if !a.equalStates(h, a.handlerIn) {
				a.handlerIn = h
				changed = true
			}
		}
		if !changed {
			break
		}
		if iter > len(a.g.Blocks)+8 {
			a.rep.Notes = append(a.rep.Notes, "fixpoint iteration bound hit; results are conservative")
			break
		}
	}
	// Reporting pass over the converged states.
	a.inner(true)
}

// entryState builds the program-entry state: everything at its declared
// colour (the maps start empty; defaults supply the colours), with a real
// depth-0 tracked stack.
func (a *analysis) entryState() *state {
	s := newState()
	s.stkVirgin = false
	return s
}

// inner runs the worklist dataflow under the current pcCol/handlerIn,
// returning each block's out-state. With report set, flow checks record
// violations and channel flows.
func (a *analysis) inner(report bool) []*state {
	n := len(a.g.Blocks)
	ins := make([]*state, n)
	for i := range ins {
		ins[i] = newState()
	}
	inWork := make([]bool, n)
	var work []int
	push := func(i int) {
		if !inWork[i] {
			inWork[i] = true
			work = append(work, i)
		}
	}
	a.joinInto(ins[a.g.Entry], a.entryState())
	for _, r := range a.g.IRQRoots {
		a.joinInto(ins[r], a.handlerIn)
	}
	// Seed every block, not just the roots: a block whose in-state join is
	// a no-op (all defaults) would otherwise never be processed, leaving
	// its out-state empty and the implicit-flow recomputation blind to any
	// condition-code colour it raises.
	push(a.g.Entry)
	for i := 0; i < n; i++ {
		push(i)
	}
	outs := make([]*state, n)
	for i := range outs {
		outs[i] = newState()
	}
	steps := 0
	for len(work) > 0 {
		bi := work[0]
		work = work[1:]
		inWork[bi] = false
		st := ins[bi].clone()
		for i := range a.g.Blocks[bi].Instrs {
			a.step(&a.g.Blocks[bi].Instrs[i], st, a.pcCol[bi], false)
		}
		outs[bi] = st
		for _, e := range a.g.Blocks[bi].Succs {
			if a.joinInto(ins[e.To], st) {
				push(e.To)
			}
		}
		// Safety bound: the lattice is finite so this terminates, but a
		// fuzzer-built CFG deserves a belt anyway.
		steps++
		if steps > 64*n+4096 {
			a.rep.Notes = append(a.rep.Notes, "worklist bound hit; results are conservative")
			break
		}
	}
	if report {
		// The reporting pass proper: one deterministic sweep over the
		// converged in-states, in block order.
		for bi, b := range a.g.Blocks {
			st := ins[bi].clone()
			for i := range b.Instrs {
				a.step(&b.Instrs[i], st, a.pcCol[bi], true)
			}
		}
	}
	return outs
}

// chain walks witnesses backwards from l to build a provenance chain.
func (a *analysis) chain(st *state, l loc) []string {
	var out []string
	seen := map[loc]bool{}
	for depth := 0; depth < 8 && l >= 0 && !seen[l]; depth++ {
		seen[l] = true
		w, ok := st.wit[l]
		if !ok {
			// Never written along this path: the colour is the declaration.
			out = append(out, fmt.Sprintf("%s is declared %s", a.locDesc(l), a.def(l)))
			break
		}
		if w.fromDesc == "" {
			out = append(out, fmt.Sprintf("%s set at %04x: %s", a.locDesc(l), w.addr, w.text))
			break
		}
		out = append(out, fmt.Sprintf("%s <- %s at %04x: %s", a.locDesc(l), w.fromDesc, w.addr, w.text))
		l = w.from
	}
	return out
}

// report records a flow, deduplicating across the reporting sweep.
func (a *analysis) report(f Flow) {
	key := fmt.Sprintf("%d|%04x|%s|%s", f.Kind, f.Addr, f.Dst, f.From)
	if a.seen[key] {
		return
	}
	a.seen[key] = true
	if f.Kind == FlowChannel {
		a.rep.Channels = append(a.rep.Channels, f)
	} else {
		a.rep.Violations = append(a.rep.Violations, f)
	}
}

// readOperand evaluates one operand for reading, returning its colour, the
// location it came from (locNone for constants and summaries) and a
// description.
func (a *analysis) readOperand(in *Instr, spec Word, ext Word, st *state) (Colour, loc, string) {
	mode, reg := machine.SpecMode(spec), machine.SpecReg(spec)
	switch mode {
	case machine.ModeReg:
		l := a.regLoc(reg)
		if l == locNone {
			return a.bot, locNone, "PC"
		}
		return a.get(st, l), l, a.locDesc(l)
	case machine.ModeExtended:
		if reg == machine.RegPC { // immediate
			return a.bot, locNone, "constant"
		}
		l := memLoc(ext)
		if a.spec.regionAt(ext) == nil {
			a.warnf("read of unmapped address %04x at %04x (%s) — faults at run time", ext, in.Addr, in.Text)
		}
		return a.get(st, l), l, a.locDesc(l)
	default: // indirect / indexed: the address is a run-time value
		c := a.get(st, a.regLocOr(reg, locSP))
		for i := range a.spec.Regions {
			c = a.lat.Lub(c, a.spec.Regions[i].Colour)
		}
		return c, locNone, fmt.Sprintf("mem[(R%d)] (address unresolved: any region)", reg)
	}
}

func (a *analysis) regLoc(reg int) loc {
	switch {
	case reg >= 0 && reg <= 5:
		return loc(reg)
	case reg == machine.RegSP:
		return locSP
	}
	return locNone // PC
}

func (a *analysis) regLocOr(reg int, fallback loc) loc {
	if l := a.regLoc(reg); l != locNone {
		return l
	}
	return fallback
}

// writeOperand performs a flow-checked store of colour c (already joined
// with the pc colour) into the destination operand.
func (a *analysis) writeOperand(in *Instr, spec, ext Word, c Colour, explicit Colour,
	from loc, fromDesc string, st *state, report bool) {
	mode, reg := machine.SpecMode(spec), machine.SpecReg(spec)
	switch mode {
	case machine.ModeReg:
		l := a.regLoc(reg)
		if l == locNone {
			a.warnf("write to PC at %04x (%s) treated as control transfer only", in.Addr, in.Text)
			return
		}
		if l == locSP {
			// An explicit SP write breaks the cell/SP correspondence.
			st.stackLose()
		}
		a.checkedSet(in, st, l, c, explicit, from, fromDesc, report)
	case machine.ModeExtended:
		if reg == machine.RegPC {
			return // immediate destination: rejected by the assembler
		}
		if a.spec.regionAt(ext) == nil {
			a.warnf("write to unmapped address %04x at %04x (%s) — faults at run time", ext, in.Addr, in.Text)
		}
		a.checkedSet(in, st, memLoc(ext), c, explicit, from, fromDesc, report)
	default:
		// Store through a run-time address: it could land in any declared
		// region, so the value must flow to every one of them — and it may
		// alias the stack, so the tracked cells collapse.
		st.stackLose()
		if report {
			for i := range a.spec.Regions {
				r := &a.spec.Regions[i]
				if !a.lat.Leq(c, r.Colour) {
					a.report(Flow{
						Kind: FlowStore, Addr: in.Addr, Text: in.Text,
						From: c, To: r.Colour,
						Dst:      fmt.Sprintf("mem[(R%d)] may reach %s", reg, r.Name),
						Implicit: a.lat.Leq(explicit, r.Colour),
						Chain:    a.chain(st, from),
					})
				}
			}
		}
	}
}

// checkedSet applies the certification rule — c (= value ⊔ pc) must flow to
// the destination's declared colour — then updates the state.
func (a *analysis) checkedSet(in *Instr, st *state, l loc, c Colour, explicit Colour,
	from loc, fromDesc string, report bool) {
	d := a.def(l)
	if report && !a.lat.Leq(c, d) {
		a.report(Flow{
			Kind: FlowStore, Addr: in.Addr, Text: in.Text,
			From: c, To: d, Dst: a.locDesc(l),
			Implicit: a.lat.Leq(explicit, d),
			Chain:    a.chain(st, from),
		})
	}
	a.set(st, l, c, witness{addr: in.Addr, text: in.Text, from: from, fromDesc: fromDesc})
}

// kernelSet models a register written by the kernel on service return: the
// value is produced by the kernel about this regime's own view, so it
// carries the regime's colour (or bottom) without a flow check.
func (a *analysis) kernelSet(in *Instr, st *state, l loc, c Colour) {
	a.set(st, l, c, witness{addr: in.Addr, text: in.Text, from: locNone, fromDesc: "kernel service result"})
}

// step applies one instruction's transfer function.
func (a *analysis) step(in *Instr, st *state, pc Colour, report bool) {
	op := in.Op
	w := in.Words[0]

	// Operand extension words: source first, then destination.
	var srcExt, dstExt Word
	next := 1
	getExt := func(spec Word) Word {
		m := machine.SpecMode(spec)
		if (m == machine.ModeIndexed || m == machine.ModeExtended) && next < len(in.Words) {
			e := in.Words[next]
			next++
			return e
		}
		return 0
	}
	srcSpec, dstSpec := machine.SrcSpec(w), machine.DstSpec(w)
	if machine.HasSrc(op) {
		srcExt = getExt(srcSpec)
	}
	if machine.HasDst(op) {
		dstExt = getExt(dstSpec)
	}

	// Flag writes are flow-checked only where the condition codes are live
	// (liveness.go); the colour always propagates so the state stays sound.
	flagsLive := a.liveAfter == nil || a.liveAfter[in.Addr]
	setFlags := func(c Colour, from loc, fromDesc string) {
		a.checkedSet(in, st, locFlags, c, c, from, fromDesc, report && flagsLive)
	}

	switch op {
	case machine.OpMOV:
		c, from, fromDesc := a.readOperand(in, srcSpec, srcExt, st)
		joined := a.lat.Lub(c, pc)
		a.writeOperand(in, dstSpec, dstExt, joined, c, from, fromDesc, st, report)
		setFlags(joined, from, fromDesc)

	case machine.OpADD, machine.OpSUB, machine.OpAND, machine.OpOR,
		machine.OpXOR, machine.OpSHL, machine.OpSHR, machine.OpMUL:
		sc, sfrom, sdesc := a.readOperand(in, srcSpec, srcExt, st)
		dc, _, _ := a.readOperand(in, dstSpec, dstExt, st)
		mixed := a.lat.Lub(sc, dc)
		joined := a.lat.Lub(mixed, pc)
		from, fromDesc := sfrom, sdesc
		if !a.lat.Leq(sc, dc) && sfrom == locNone {
			from, fromDesc = locNone, sdesc
		}
		a.writeOperand(in, dstSpec, dstExt, joined, mixed, from, fromDesc, st, report)
		setFlags(joined, from, fromDesc)

	case machine.OpCMP:
		sc, sfrom, sdesc := a.readOperand(in, srcSpec, srcExt, st)
		dc, _, _ := a.readOperand(in, dstSpec, dstExt, st)
		setFlags(a.lat.Lub(a.lat.Lub(sc, dc), pc), sfrom, sdesc)

	case machine.OpNOT, machine.OpNEG:
		dc, from, fromDesc := a.readOperand(in, dstSpec, dstExt, st)
		joined := a.lat.Lub(dc, pc)
		a.writeOperand(in, dstSpec, dstExt, joined, dc, from, fromDesc, st, report)
		setFlags(joined, from, fromDesc)

	case machine.OpPUSH:
		sc, from, fromDesc := a.readOperand(in, srcSpec, srcExt, st)
		pushed := a.lat.Lub(sc, pc)
		if a.cellsOn && st.stackTracked() {
			// Precise cell: flow-check the push against the stack's
			// declared colour, record the exact pushed colour at this
			// depth, and keep the summary absorbing it for any later
			// collapse.
			if report && !a.lat.Leq(pushed, a.def(locStack)) {
				a.report(Flow{
					Kind: FlowStore, Addr: in.Addr, Text: in.Text,
					From: pushed, To: a.def(locStack), Dst: a.locDesc(locStack),
					Implicit: a.lat.Leq(sc, a.def(locStack)),
					Chain:    a.chain(st, from),
				})
			}
			w := witness{addr: in.Addr, text: in.Text, from: from, fromDesc: fromDesc}
			st.stackPush(stackCell{col: pushed, wit: w})
			a.set(st, locStack, a.lat.Lub(pushed, a.get(st, locStack)), w)
		} else {
			joined := a.lat.Lub(pushed, a.get(st, locStack))
			a.checkedSet(in, st, locStack, joined, sc, from, fromDesc, report)
		}

	case machine.OpPOP:
		var cell stackCell
		ok := false
		if a.cellsOn {
			cell, ok = st.stackPop()
		}
		if ok {
			// Precise cell: the pop carries exactly the colour pushed at
			// this depth, with the push's own witness for the chain.
			st.wit[locStack] = cell.wit
			c := a.lat.Lub(cell.col, pc)
			a.writeOperand(in, dstSpec, dstExt, c, cell.col, locStack, a.locDesc(locStack), st, report)
		} else {
			c := a.lat.Lub(a.get(st, locStack), pc)
			a.writeOperand(in, dstSpec, dstExt, c, a.get(st, locStack), locStack, a.locDesc(locStack), st, report)
		}

	case machine.OpMFPS:
		c := a.lat.Lub(a.get(st, locFlags), pc)
		a.writeOperand(in, dstSpec, dstExt, c, a.get(st, locFlags), locFlags, a.locDesc(locFlags), st, report)

	case machine.OpMTPS:
		sc, from, fromDesc := a.readOperand(in, srcSpec, srcExt, st)
		setFlags(a.lat.Lub(sc, pc), from, fromDesc)

	case machine.OpTRAP:
		a.trap(in, st, pc, report)

	case machine.OpJSR:
		if a.cellsOn {
			// The pushed return address is a code constant; only the
			// implicit pc colour rides on which address it is.
			w := witness{addr: in.Addr, text: in.Text, from: locNone, fromDesc: "return address"}
			st.stackPush(stackCell{col: pc, wit: w})
			a.set(st, locStack, a.lat.Lub(pc, a.get(st, locStack)), w)
		}

	case machine.OpRTS:
		if a.cellsOn {
			st.stackPop() // discard the tracked return address
		}

	case machine.OpRTI:
		if a.cellsOn {
			// Pops a PC/PSW frame the analyzer did not see pushed.
			st.stackLose()
		}

	case machine.OpHALT:
		// A kernel fragment's HALT is the dispatch: the hardware hands the
		// register file to the incoming regime named by the spec.
		if dc := a.spec.DispatchColour; dc != "" && report {
			for r := 0; r < 6; r++ {
				c := a.get(st, loc(r))
				if !a.lat.Leq(c, dc) {
					a.report(Flow{
						Kind: FlowStore, Addr: in.Addr, Text: in.Text,
						From: c, To: dc,
						Dst:   fmt.Sprintf("register R%d handed to the %s regime at dispatch", r, dc),
						Chain: a.chain(st, loc(r)),
					})
				}
			}
		}
	}
	// Branches, JMP, WAIT and NOP move no data; branch conditions reach
	// the analysis through control dependence instead.
}

