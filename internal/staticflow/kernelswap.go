package staticflow

import (
	"fmt"
	"strings"

	"repro/internal/asm"
	"repro/internal/ifa"
	"repro/internal/kernel"
)

// This file models the kernel's context-switch sequence for the analyzer —
// the paper's §4 centrepiece. The repository's kernel performs the switch in
// Go (the "microcode" substitution of DESIGN.md), so for the static analysis
// the same sequence is rendered as SM11 assembly over the *real* physical
// addresses of internal/kernel's save areas. The sequence is manifestly
// secure: it runs with interrupts off, moves each regime's registers only
// between that regime's own save area and the register file, and touches
// nothing else. Yet a syntactic flow analysis must reject it — the register
// file is classified with the outgoing regime's colour, and the incoming
// regime's save-area words flow straight into it. Rushby's fix is not a
// cleverer analyzer but a coarser specification: prove the abstract SWAP
// (only the scheduling variable changes) and check the code against that.

// KernelSwapSource renders the context-switch from regime `from` to regime
// `to` as SM11 assembly over the kernel's physical save-area addresses.
func KernelSwapSource(from, to int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "; SWAP: save regime %d, dispatch regime %d\n", from, to)
	fmt.Fprintf(&b, "\t.org 0x300\n")
	fmt.Fprintf(&b, "\t.equ SAVEF, 0x%04x\n", kernel.SaveBase(from))
	fmt.Fprintf(&b, "\t.equ SAVET, 0x%04x\n", kernel.SaveBase(to))
	fmt.Fprintf(&b, "\t.equ SCHED, 0x%04x\n", kernel.SchedCurrentAddr())
	b.WriteString("start:\n")
	for r := 0; r < 6; r++ {
		fmt.Fprintf(&b, "\tMOV R%d, @SAVEF+%d\t; save outgoing R%d\n", r, r, r)
	}
	b.WriteString("\tMFPS R0\n")
	fmt.Fprintf(&b, "\tMOV R0, @SAVEF+%d\t; save outgoing PSW\n", int(kernel.SaveOffPSW))
	fmt.Fprintf(&b, "\tMOV #%d, @SCHED\t\t; the scheduling variable changes hands\n", to)
	fmt.Fprintf(&b, "\tMOV @SAVET+%d, R0\t; incoming PSW\n", int(kernel.SaveOffPSW))
	b.WriteString("\tMTPS R0\t\t\t; restore incoming condition codes\n")
	for r := 0; r < 6; r++ {
		fmt.Fprintf(&b, "\tMOV @SAVET+%d, R%d\t; restore incoming R%d\n", r, r, r)
	}
	b.WriteString("\tHALT\t\t\t; dispatch (control leaves this fragment)\n")
	return b.String()
}

// KernelSwapAbstractSource renders the paper's high-level SWAP
// specification: the only state the abstract operation changes is the
// scheduling variable. This is the version a flow analysis can certify.
func KernelSwapAbstractSource(to int) string {
	var b strings.Builder
	b.WriteString("; SWAP, abstract specification: sched := to\n")
	b.WriteString("\t.org 0x300\n")
	fmt.Fprintf(&b, "\t.equ SCHED, 0x%04x\n", kernel.SchedCurrentAddr())
	b.WriteString("start:\n")
	fmt.Fprintf(&b, "\tMOV #%d, @SCHED\n", to)
	b.WriteString("\tHALT\n")
	return b.String()
}

// KernelSwapSpec classifies the switch sequence: the register file carries
// the outgoing regime's colour, each save area carries its own regime's
// colour, and the scheduling variable is unclassified (bottom) — exactly the
// paper's premise that scheduling state belongs to no one regime.
func KernelSwapSpec(colours []Colour, from, to int) Spec {
	regions := []Region{{
		Name: "sched", Lo: kernel.SchedCurrentAddr(),
		Hi: kernel.SchedCurrentAddr() + 1, Colour: ifa.IsolationBottom,
	}}
	for i, c := range colours {
		regions = append(regions, Region{
			Name:   fmt.Sprintf("save.%s", c),
			Lo:     kernel.SaveBase(i),
			Hi:     kernel.SaveBase(i) + kernel.SaveAreaStride,
			Colour: c,
		})
	}
	return Spec{
		Name:    fmt.Sprintf("kernel-swap %s->%s", colours[from], colours[to]),
		Entry:   colours[from],
		Regions: regions,
		Lattice: ifa.Isolation(colours...),
		// The HALT is the dispatch: the register file is handed to the
		// incoming regime, so a register still carrying anything that does
		// not flow to the incoming colour (a skipped restore) is a flow.
		DispatchColour: colours[to],
	}
}

// AnalyzeKernelSwap assembles and analyzes the concrete switch sequence.
func AnalyzeKernelSwap(colours []Colour, from, to int) (*Report, error) {
	img, err := asm.Assemble(KernelSwapSource(from, to))
	if err != nil {
		return nil, fmt.Errorf("staticflow: assemble swap: %w", err)
	}
	return Analyze(img, KernelSwapSpec(colours, from, to))
}

// AnalyzeKernelSwapAbstract assembles and analyzes the abstract SWAP
// specification under the same classification.
func AnalyzeKernelSwapAbstract(colours []Colour, from, to int) (*Report, error) {
	img, err := asm.Assemble(KernelSwapAbstractSource(to))
	if err != nil {
		return nil, fmt.Errorf("staticflow: assemble abstract swap: %w", err)
	}
	spec := KernelSwapSpec(colours, from, to)
	spec.Name = fmt.Sprintf("kernel-swap-spec %s->%s", colours[from], colours[to])
	// The abstract operation changes only the scheduling variable; the
	// register handoff is below its level of abstraction, so no dispatch
	// check applies.
	spec.DispatchColour = ""
	return Analyze(img, spec)
}

// ProgramSpec classifies an ordinary regime program: the whole partition
// [0, partWords) plus the owned-device segments carry the regime's own
// colour. partWords 0 defaults to one 4K segment.
func ProgramSpec(name string, colour Colour, peers []Colour, partWords Word) Spec {
	if partWords == 0 {
		partWords = 0x1000
	}
	regions := []Region{
		{Name: "partition", Lo: 0, Hi: partWords, Colour: colour},
		{Name: "devices", Lo: kernel.DeviceVirtBase(0),
			Hi: kernel.DeviceVirtBase(3) + 0x1000, Colour: colour},
	}
	return Spec{Name: name, Entry: colour, Regions: regions, Peers: peers}
}
