// Package timingchan builds a scheduling/timing covert channel on the real
// SUE-Go kernel — the channel the paper's model deliberately permits.
//
// The paper scopes it out explicitly: "Because the whole system is
// dedicated to a single function, 'denial of service' is not a security
// problem (although it is clearly a reliability issue)" (§3). Under
// round-robin-until-voluntary-SWAP scheduling, a sender regime can
// modulate how long it holds the CPU; a receiver regime that owns a clock
// device observes the gaps between its own turns and decodes bits — with
// no shared memory, no channels, and no kernel bug.
//
// The package's tests measure the channel (it works, reliably) and then
// run Proof of Separability over the very same system (it PASSES): an
// executable, quantitative demonstration of where the six conditions'
// guarantee ends. The scheduling-independence extension in package
// separability does not catch it either — correctly, because the kernel's
// *decision* sequence is untainted; it is the wall-clock duration of the
// sender's turns that carries the bits, and wall-clock time is outside
// the model.
package timingchan

import (
	"fmt"
	"strings"

	"repro/internal/core"
	"repro/internal/covert"
	"repro/internal/machine"
	"repro/internal/obs"
)

// senderSrc modulates CPU hold time per bit: a long busy loop for 1, an
// immediate yield for 0. The bit table is assembled into its partition.
func senderSrc(bits []int, busy int) string {
	var b strings.Builder
	fmt.Fprintf(&b, `
	.org 0x40
	.equ NBITS, %d
start:
	MOV #0, R4          ; bit index
	TRAP #SWAP          ; let the receiver take its clock baseline first
loop:
	CMP #NBITS, R4
	BEQ done
	MOV R4, R3
	ADD #bits, R3
	MOV (R3), R2        ; the bit
	CMP #1, R2
	BNE yield
	MOV #%d, R3         ; bit 1: hold the CPU
busy:
	SUB #1, R3
	BNE busy
yield:
	ADD #1, R4
	TRAP #SWAP
	BR loop
done:
	TRAP #SWAP
	BR done
bits:
`, len(bits), busy)
	for _, bit := range bits {
		fmt.Fprintf(&b, "\t.word %d\n", bit)
	}
	return b.String()
}

// receiverSrc samples its clock's free-running counter once per scheduling
// turn; a large delta means the sender held the CPU. Decoded bits land at
// virtual 0x200+i.
func receiverSrc(nbits, threshold int) string {
	return fmt.Sprintf(`
	.org 0x40
	.equ NBITS, %d
	.equ THRESH, %d
start:
	MOV @DEV0+1, R5     ; clock COUNT baseline
	MOV #0, R4          ; bit index
	TRAP #SWAP          ; align with the sender's first turn
loop:
	CMP #NBITS, R4
	BEQ done
	MOV @DEV0+1, R2
	MOV R2, R3
	SUB R5, R3          ; delta since our last turn
	MOV R2, R5
	MOV #0, R1
	CMP #THRESH, R3     ; THRESH - delta
	BGT store           ; THRESH > delta: short gap: bit 0
	MOV #1, R1
store:
	MOV R4, R0
	ADD #0x200, R0
	MOV R1, (R0)
	ADD #1, R4
	TRAP #SWAP
	BR loop
done:
	MOV #1, @0x100      ; completion flag
	TRAP #SWAP
	BR done
`, nbits, threshold)
}

// Result reports one timing-channel run.
type Result struct {
	Sent     []int
	Decoded  []int
	Covert   covert.Measurement
	Finished bool
}

// Config parameterizes one timing-channel run.
type Config struct {
	NBits     int    // bits to transmit
	Seed      uint64 // PRNG seed for the sent bitstring
	Busy      int    // sender's hold-loop length for a 1 bit
	Threshold int    // receiver's decision boundary in clock ticks
	// FixedSlice, when > 0, enables the kernel's fixed-slice scheduling
	// (the channel cut); 0 keeps round-robin-until-voluntary-SWAP.
	FixedSlice int
	// Tracer, when non-nil, is attached to the kernel and machine for the
	// whole run, so cmd/septrace can measure the channel from the event
	// stream alone.
	Tracer obs.Tracer
	// StopOnFinish polls the receiver's completion flag between bursts and
	// ends the run as soon as the transfer is decoded, instead of spending
	// the whole cycle budget on the post-transfer SWAP spin. Keeps traced
	// runs compact without changing what was transmitted.
	StopOnFinish bool
}

// RunConfig builds the two-regime system (no channels!), runs it, and
// decodes the receiver's memory. Sender is regime 0, receiver regime 1.
func RunConfig(cfg Config) (*Result, *core.System, error) {
	bits := covert.Bitstring(cfg.Seed, cfg.NBits)
	clk := machine.NewClock("clk", 1) // the receiver's wall clock
	b := core.NewBuilder().
		RegimeSized("sender", senderSrc(bits, cfg.Busy), 0x400).
		RegimeSized("receiver", receiverSrc(cfg.NBits, cfg.Threshold), 0x400, clk)
	cycles := cfg.NBits*(cfg.Busy*2+64) + 4000
	if cfg.FixedSlice > 0 {
		b = b.WithFixedSlice(cfg.FixedSlice)
		cycles = cfg.NBits*cfg.FixedSlice*4 + 8000
	}
	sys, err := b.Build()
	if err != nil {
		return nil, nil, err
	}
	if cfg.Tracer != nil {
		sys.SetTracer(cfg.Tracer)
	}
	if cfg.StopOnFinish {
		for spent := 0; spent < cycles; spent += 256 {
			sys.Run(256)
			if flag, _ := sys.RegimeWord("receiver", 0x100); flag == 1 {
				break
			}
		}
	} else {
		sys.Run(cycles)
	}
	if sys.Kernel.Dead() {
		return nil, nil, fmt.Errorf("timingchan: kernel died: %v", sys.Kernel.Cause)
	}
	res := &Result{Sent: bits}
	if flag, _ := sys.RegimeWord("receiver", 0x100); flag == 1 {
		res.Finished = true
	}
	for i := 0; i < cfg.NBits; i++ {
		v, _ := sys.RegimeWord("receiver", machine.Word(0x200+i))
		res.Decoded = append(res.Decoded, int(v))
	}
	res.Covert = covert.Measure(bits, res.Decoded, int(sys.Machine.Cycles()))
	return res, sys, nil
}

// Run is RunConfig under round-robin scheduling (the open channel).
func Run(nbits int, seed uint64, busy, threshold int) (*Result, *core.System, error) {
	return RunConfig(Config{NBits: nbits, Seed: seed, Busy: busy, Threshold: threshold})
}

// RunFixed is Run with the kernel's fixed-slice scheduling enabled: every
// rotation takes the same wall-clock time regardless of the sender's
// behaviour, so the receiver's deltas carry (nearly) nothing.
func RunFixed(nbits int, seed uint64, busy, threshold, slice int) (*Result, *core.System, error) {
	return RunConfig(Config{NBits: nbits, Seed: seed, Busy: busy, Threshold: threshold, FixedSlice: slice})
}
