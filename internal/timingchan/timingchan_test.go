package timingchan_test

import (
	"testing"

	"repro/internal/separability"
	"repro/internal/timingchan"
)

func TestTimingChannelCarriesBits(t *testing.T) {
	res, _, err := timingchan.Run(64, 11, 60, 40)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatalf("receiver did not finish; decoded %d bits", len(res.Decoded))
	}
	if res.Covert.ErrorRate > 0.05 {
		t.Errorf("timing channel error rate %.2f; the scheduling channel should be nearly clean",
			res.Covert.ErrorRate)
	}
	if res.Covert.CapacityPerSymbol < 0.8 {
		t.Errorf("timing channel capacity %.3f b/sym, expected ~1", res.Covert.CapacityPerSymbol)
	}
	t.Logf("timing channel: %s", res.Covert)
}

// The demonstration that matters: the very system that just moved bits
// between regimes with NO channels configured passes Proof of
// Separability — the six conditions do not, and per the paper's own
// scoping should not, see wall-clock scheduling channels. The scheduling
// extension does not flag it either, correctly: the kernel's *decisions*
// are untainted; only their durations differ.
func TestTimingChannelInvisibleToSixConditions(t *testing.T) {
	_, sys, err := timingchan.Run(16, 11, 60, 40)
	if err != nil {
		t.Fatal(err)
	}
	opt := separability.Options{Trials: 6, StepsPerTrial: 60, Seed: 3, CheckScheduling: true}
	res := separability.CheckRandomized(sys.Adapter, opt)
	if !res.Passed() {
		t.Fatalf("separability flagged the timing-channel system: %s — the model boundary moved?",
			res.Summary())
	}
	t.Logf("bits flowed, yet: %s", res.Summary())
}

func TestThresholdMatters(t *testing.T) {
	// With a hopeless threshold the channel degrades toward noise.
	res, _, err := timingchan.Run(64, 11, 60, 4000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Covert.ErrorRate < 0.2 {
		t.Errorf("absurd threshold still decoded cleanly (err %.2f)?", res.Covert.ErrorRate)
	}
}

// The extension that closes the channel: under fixed time slices every
// rotation takes identical wall-clock time, so the receiver's clock deltas
// carry (nearly) nothing — while the kernel still passes separability and
// ordinary workloads still run.
func TestFixedSlicesCloseTheTimingChannel(t *testing.T) {
	res, _, err := timingchan.RunFixed(64, 11, 60, 40, 200)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatalf("receiver did not finish under fixed slices; decoded %d bits", len(res.Decoded))
	}
	if res.Covert.CapacityPerSymbol > 0.1 {
		t.Errorf("fixed slices left %.3f b/sym of timing channel (err %.2f)",
			res.Covert.CapacityPerSymbol, res.Covert.ErrorRate)
	}
	t.Logf("fixed-slice residual: %s", res.Covert)
}

func TestFixedSliceKernelPassesSeparability(t *testing.T) {
	_, sys, err := timingchan.RunFixed(8, 11, 60, 40, 200)
	if err != nil {
		t.Fatal(err)
	}
	opt := separability.Options{Trials: 5, StepsPerTrial: 60, Seed: 3, CheckScheduling: true}
	res := separability.CheckRandomized(sys.Adapter, opt)
	if !res.Passed() {
		for i, v := range res.Violations {
			if i > 3 {
				break
			}
			t.Logf("violation: %s", v)
		}
		t.Fatalf("fixed-slice kernel failed separability: %s", res.Summary())
	}
}
