package snfe

import (
	"bytes"
	"fmt"

	"repro/internal/covert"
	"repro/internal/distsys"
)

// Config parameterizes one SNFE run.
type Config struct {
	Mode      Exfil
	Censor    CensorMode
	RateEvery int
	// Packets is how many user-data packets the host sends.
	Packets int
	// Key is the end-to-end cipher key.
	Key uint64
	// Seed generates the covert bitstring.
	Seed uint64
}

// System is one wired SNFE instance.
type System struct {
	Fabric *distsys.Fabric
	Host   *Host
	Red    *Red
	Censor *Censor
	Net    *NetSink
	sent   [][]byte
	bits   []int
}

// Build wires the SNFE: host → red → {crypto, censor} → black → net,
// exactly the paper's four boxes plus host and network.
func Build(cfg Config) (*System, error) {
	if cfg.Packets <= 0 {
		cfg.Packets = 64
	}
	if cfg.Key == 0 {
		cfg.Key = 0x0123456789ABCDEF
	}
	// Payload chunks avoid trailing zeros so ExfilLenMod padding can be
	// compared by prefix; each chunk carries a recognizable needle.
	var chunks [][]byte
	for i := 0; i < cfg.Packets; i++ {
		chunks = append(chunks, []byte(fmt.Sprintf("SECRET-user-data-%03d", i)))
	}
	// Enough covert bits for the hungriest encoding (4 bits/packet).
	bits := covert.Bitstring(cfg.Seed, cfg.Packets*4)

	f := distsys.New(distsys.KernelHosted)
	sys := &System{
		Fabric: f,
		Host:   NewHost(chunks...),
		Red:    NewRed(cfg.Mode, bits),
		Censor: NewCensor(cfg.Censor, cfg.RateEvery),
		Net:    NewNetSink(cfg.Key),
		sent:   chunks,
		bits:   bits,
	}
	crypto := NewCrypto(cfg.Key)
	black := NewBlack()
	for _, c := range []distsys.Component{sys.Host, sys.Red, crypto, sys.Censor, black, sys.Net} {
		if err := f.Add(c); err != nil {
			return nil, err
		}
	}
	wires := [][2]string{
		{"host:out", "red:host"},
		{"red:crypto", "crypto:in"},
		{"crypto:out", "black:ct"},
		{"red:bypass", "censor:in"},
		{"censor:out", "black:hdr"},
		{"black:net", "net:in"},
	}
	for _, w := range wires {
		if err := f.Connect(w[0], w[1], 4096); err != nil {
			return nil, err
		}
	}
	return sys, nil
}

// Result is the outcome of one experiment run.
type Result struct {
	Config Config
	// Delivered reports whether the legitimate user data made it through
	// end to end (the SNFE must still function under censorship).
	Delivered bool
	// Leaked reports whether raw cleartext appeared on the network.
	Leaked bool
	// Covert is the bypass covert-channel measurement.
	Covert covert.Measurement
	// Scrubbed and Dropped are the censor's counters.
	Scrubbed int
	Dropped  int
	Rounds   int
}

// Run executes the experiment to quiescence.
func Run(cfg Config) (*Result, error) {
	sys, err := Build(cfg)
	if err != nil {
		return nil, err
	}
	rounds := sys.Fabric.Run(cfg.Packets*(cfg.RateEvery+20) + 2000)

	res := &Result{Config: cfg, Rounds: rounds,
		Scrubbed: sys.Censor.Scrubbed, Dropped: sys.Censor.Dropped}

	// Functional check: the remote end recovers every user-data chunk
	// (modulo red's parity padding, which is trailing zeros per chunk).
	chunks, ok := sys.Net.RecoverChunks()
	res.Delivered = ok && len(chunks) == len(sys.sent)
	if res.Delivered {
		for i, want := range sys.sent {
			got := bytes.TrimRight(chunks[i], "\x00")
			if !bytes.Equal(got, want) {
				res.Delivered = false
				break
			}
		}
	}

	// Security check 1: no raw cleartext on the wire.
	res.Leaked = sys.Net.CleartextLeaked("SECRET-user-data")

	// Security check 2: residual bypass bandwidth.
	consumed := sys.Red.BitsConsumed()
	if consumed > 0 {
		decoded := sys.Net.DecodeCovert(cfg.Mode, consumed)
		res.Covert = covert.Measure(sys.bits[:consumed], decoded, rounds)
	}
	return res, nil
}

// SweepRow is one line of the E4 table.
type SweepRow struct {
	Encoding  string
	Censor    string
	RateEvery int
	Result    *Result
}

// Sweep runs the full E4 matrix: every exfiltration encoding against every
// censor mode (plus a rate-limited canonical censor).
func Sweep(packets int) ([]SweepRow, error) {
	var rows []SweepRow
	type cen struct {
		mode CensorMode
		rate int
	}
	censors := []cen{{CensorOff, 0}, {CensorFormat, 0}, {CensorCanon, 0}, {CensorStrict, 0}, {CensorCanon, 8}}
	for _, mode := range []Exfil{ExfilField, ExfilLenMod, ExfilSeqSkip} {
		for _, cz := range censors {
			res, err := Run(Config{
				Mode: mode, Censor: cz.mode, RateEvery: cz.rate,
				Packets: packets, Seed: 7,
			})
			if err != nil {
				return nil, err
			}
			rows = append(rows, SweepRow{
				Encoding:  ExfilName(mode),
				Censor:    CensorModeName(cz.mode),
				RateEvery: cz.rate,
				Result:    res,
			})
		}
	}
	return rows, nil
}
