package snfe

import (
	"fmt"
	"strconv"

	"repro/internal/distsys"
)

// Exfiltration encodings the (malicious) red component may attempt on the
// cleartext bypass.
type Exfil int

// Exfil encodings.
const (
	// ExfilNone: an honest red component.
	ExfilNone Exfil = iota
	// ExfilField smuggles covert bits in an extra header field — the
	// blatant channel a format check removes.
	ExfilField
	// ExfilLenMod encodes one bit per packet in the parity of the
	// declared payload length (the payload is genuinely padded to match,
	// so pure format checking does not object).
	ExfilLenMod
	// ExfilSeqSkip encodes one bit per packet by advancing the sequence
	// number by one or two.
	ExfilSeqSkip
)

// ExfilName names an encoding.
func ExfilName(e Exfil) string {
	switch e {
	case ExfilNone:
		return "none"
	case ExfilField:
		return "field"
	case ExfilLenMod:
		return "len-mod"
	case ExfilSeqSkip:
		return "seq-skip"
	}
	return "unknown"
}

// Host is the protected host: it emits cleartext user-data packets.
//
// Ports: out (to red).
type Host struct {
	Chunks [][]byte
	sent   int
}

// NewHost creates a host that will send the given chunks.
func NewHost(chunks ...[]byte) *Host { return &Host{Chunks: chunks} }

// Name implements distsys.Component.
func (h *Host) Name() string { return "host" }

// Handle implements distsys.Component.
func (h *Host) Handle(distsys.Context, string, distsys.Message) {}

// Poll implements distsys.Component.
func (h *Host) Poll(ctx distsys.Context) bool {
	if h.sent >= len(h.Chunks) {
		return false
	}
	ctx.Send("out", distsys.Msg("userdata").WithBody(h.Chunks[h.sent]))
	h.sent++
	return true
}

// Red is the host-side protocol component: large, unverified, and in this
// model actively malicious. For every host packet it forwards the payload
// to the crypto and a protocol header over the bypass — embedding covert
// bits per its Exfil mode.
//
// Ports: host (in), crypto (out), bypass (out).
type Red struct {
	Mode Exfil
	Bits []int // the covert payload red wants to leak
	pos  int
	seq  int
}

// NewRed creates a red component leaking bits with the given encoding.
func NewRed(mode Exfil, bits []int) *Red { return &Red{Mode: mode, Bits: bits} }

// Name implements distsys.Component.
func (r *Red) Name() string { return "red" }

// Poll implements distsys.Component.
func (r *Red) Poll(distsys.Context) bool { return false }

func (r *Red) nextBit() int {
	if r.pos >= len(r.Bits) {
		return 0
	}
	b := r.Bits[r.pos]
	r.pos++
	return b
}

// Handle implements distsys.Component.
func (r *Red) Handle(ctx distsys.Context, port string, m distsys.Message) {
	if port != "host" || m.Kind != "userdata" {
		return
	}
	payload := append([]byte(nil), m.Body...)
	hdr := distsys.Msg("hdr", "type", "data")

	switch r.Mode {
	case ExfilNone:
		r.seq++
	case ExfilField:
		r.seq++
		// Four covert bits per packet, in a field honest protocols lack.
		v := 0
		for i := 0; i < 4; i++ {
			v = v<<1 | r.nextBit()
		}
		hdr.Args["xtra"] = fmt.Sprintf("%x", v)
	case ExfilLenMod:
		r.seq++
		// Pad the payload so its length parity is the covert bit; the
		// declared length stays truthful.
		bit := r.nextBit()
		for len(payload)%2 != bit {
			payload = append(payload, 0)
		}
	case ExfilSeqSkip:
		r.seq += 1 + r.nextBit()
	}

	hdr.Args["seq"] = strconv.Itoa(r.seq)
	hdr.Args["len"] = strconv.Itoa(len(payload))
	ctx.Send("crypto", distsys.Msg("plain", "seq", strconv.Itoa(r.seq)).WithBody(payload))
	ctx.Send("bypass", hdr)
}

// BitsConsumed reports how many covert bits red has embedded so far.
func (r *Red) BitsConsumed() int { return r.pos }

// Crypto is the trusted cipher box between red and black.
//
// Ports: in (from red), out (to black).
type Crypto struct {
	c *StreamCipher
}

// NewCrypto creates the box with a key shared with the remote end.
func NewCrypto(key uint64) *Crypto { return &Crypto{c: NewStreamCipher(key)} }

// Name implements distsys.Component.
func (cb *Crypto) Name() string { return "crypto" }

// Poll implements distsys.Component.
func (cb *Crypto) Poll(distsys.Context) bool { return false }

// Handle implements distsys.Component.
func (cb *Crypto) Handle(ctx distsys.Context, port string, m distsys.Message) {
	if port != "in" || m.Kind != "plain" {
		return
	}
	ct := cb.c.Seal(m.Body)
	ctx.Send("out", distsys.Msg("ct", "seq", m.Arg("seq")).WithBody(ct))
}

// Black is the network-side component: it pairs ciphertext from the crypto
// with headers from the (censored) bypass and emits network frames.
//
// Ports: ct (in), hdr (in), net (out).
type Black struct {
	cts  []distsys.Message
	hdrs []distsys.Message
}

// NewBlack creates the component.
func NewBlack() *Black { return &Black{} }

// Name implements distsys.Component.
func (b *Black) Name() string { return "black" }

// Handle implements distsys.Component.
func (b *Black) Handle(ctx distsys.Context, port string, m distsys.Message) {
	switch port {
	case "ct":
		b.cts = append(b.cts, m)
	case "hdr":
		b.hdrs = append(b.hdrs, m)
	}
	b.emit(ctx)
}

// Poll implements distsys.Component.
func (b *Black) Poll(ctx distsys.Context) bool {
	if len(b.cts) > 0 && len(b.hdrs) > 0 {
		b.emit(ctx)
		return true
	}
	return false
}

func (b *Black) emit(ctx distsys.Context) {
	for len(b.cts) > 0 && len(b.hdrs) > 0 {
		ct, hdr := b.cts[0], b.hdrs[0]
		b.cts, b.hdrs = b.cts[1:], b.hdrs[1:]
		frame := distsys.Msg("frame").WithBody(ct.Body)
		for k, v := range hdr.Args {
			frame.Args[k] = v
		}
		ctx.Send("net", frame)
	}
}

// Frame is one captured network frame.
type Frame struct {
	Args map[string]string
	Body []byte
}

// NetSink is the network: it records every frame. It doubles as the remote
// trusted end (it can decrypt with the shared key) and as the adversary's
// observation point (the frames' headers are cleartext).
//
// Ports: in.
type NetSink struct {
	Frames []Frame
	c      *StreamCipher
}

// NewNetSink creates the sink holding the remote key.
func NewNetSink(key uint64) *NetSink { return &NetSink{c: NewStreamCipher(key)} }

// Name implements distsys.Component.
func (n *NetSink) Name() string { return "net" }

// Poll implements distsys.Component.
func (n *NetSink) Poll(distsys.Context) bool { return false }

// Handle implements distsys.Component.
func (n *NetSink) Handle(_ distsys.Context, port string, m distsys.Message) {
	if port != "in" || m.Kind != "frame" {
		return
	}
	args := map[string]string{}
	for k, v := range m.Args {
		args[k] = v
	}
	n.Frames = append(n.Frames, Frame{Args: args, Body: append([]byte(nil), m.Body...)})
}

// RecoverChunks decrypts the frames in order as the remote trusted end
// would, returning one cleartext chunk per frame.
func (n *NetSink) RecoverChunks() ([][]byte, bool) {
	n.c.Reset()
	var out [][]byte
	for _, f := range n.Frames {
		data, ok := n.c.Open(f.Body)
		if !ok {
			return nil, false
		}
		out = append(out, data)
	}
	return out, true
}

// CleartextLeaked scans frame headers and bodies for a cleartext needle —
// the SNFE's core requirement is that user data never appears.
func (n *NetSink) CleartextLeaked(needle string) bool {
	for _, f := range n.Frames {
		if containsBytes(f.Body, []byte(needle)) {
			return true
		}
		for _, v := range f.Args {
			if containsBytes([]byte(v), []byte(needle)) {
				return true
			}
		}
	}
	return false
}

func containsBytes(h, n []byte) bool {
	if len(n) == 0 || len(h) < len(n) {
		return false
	}
	for i := 0; i+len(n) <= len(h); i++ {
		match := true
		for j := range n {
			if h[i+j] != n[j] {
				match = false
				break
			}
		}
		if match {
			return true
		}
	}
	return false
}

// DecodeCovert is the bypass adversary: knowing the encoding, it recovers
// covert bits from the captured frame headers.
func (n *NetSink) DecodeCovert(mode Exfil, nbits int) []int {
	var bits []int
	prevSeq := 0
	for _, f := range n.Frames {
		if len(bits) >= nbits {
			break
		}
		switch mode {
		case ExfilField:
			if x, err := strconv.ParseUint(f.Args["xtra"], 16, 8); err == nil {
				for i := 3; i >= 0; i-- {
					bits = append(bits, int(x>>i)&1)
				}
			} else {
				bits = append(bits, 0, 0, 0, 0) // stripped: guess zeros
			}
		case ExfilLenMod:
			l, err := strconv.Atoi(f.Args["len"])
			if err != nil {
				bits = append(bits, 0)
				continue
			}
			bits = append(bits, l%2)
		case ExfilSeqSkip:
			s, err := strconv.Atoi(f.Args["seq"])
			if err != nil {
				bits = append(bits, 0)
				continue
			}
			bits = append(bits, s-prevSeq-1)
			prevSeq = s
		}
	}
	if len(bits) > nbits {
		bits = bits[:nbits]
	}
	return bits
}
