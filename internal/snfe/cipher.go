// Package snfe implements the paper's Secure Network Front End design: a
// red (host-side) component, a black (network-side) component, a trusted
// crypto device between them, and — because red and black must exchange
// protocol headers in the clear — a cleartext bypass guarded by a censor.
//
// The security requirement is exactly the paper's: "user data from the
// host must not reach the network in cleartext form", and the crucial
// question is "not *whether* red and black can communicate, but *what
// channels* are available for that communication." The red component is
// assumed too big to verify and potentially malicious: it tries to smuggle
// user data through the bypass with several encodings. Experiment E4
// sweeps censor strictness against those encodings and measures the
// residual bypass bandwidth with package covert.
package snfe

import "encoding/binary"

// StreamCipher is the trusted crypto box: a toy XOR stream cipher driven
// by an xorshift64* keystream. It stands in for the paper's "trusted
// physical device" — its strength is out of scope; its interface (red
// cleartext in, black ciphertext out, no other paths) is what matters.
type StreamCipher struct {
	key   uint64
	state uint64
}

// NewStreamCipher creates a cipher with the given key.
func NewStreamCipher(key uint64) *StreamCipher {
	if key == 0 {
		key = 0xDEADBEEFCAFEF00D
	}
	return &StreamCipher{key: key, state: key}
}

// Reset rewinds the keystream.
func (c *StreamCipher) Reset() { c.state = c.key }

func (c *StreamCipher) next() byte {
	c.state ^= c.state >> 12
	c.state ^= c.state << 25
	c.state ^= c.state >> 27
	return byte((c.state * 0x2545F4914F6CDD1D) >> 56)
}

// XOR transforms data in place-free fashion: encryption and decryption are
// the same operation on a synchronized keystream.
func (c *StreamCipher) XOR(data []byte) []byte {
	out := make([]byte, len(data))
	for i, b := range data {
		out[i] = b ^ c.next()
	}
	return out
}

// PadQuantum is the ciphertext length quantum: the crypto pads every
// payload so that frame length reveals only a coarse bucket, closing the
// trivial traffic-analysis side of the length channel and leaving the
// header "len" field (bypass-carried) as the channel the censor governs.
const PadQuantum = 16

// Seal encrypts a payload: a 2-byte true-length prefix plus the data,
// padded to PadQuantum, all under the keystream.
func (c *StreamCipher) Seal(data []byte) []byte {
	plain := make([]byte, 2+len(data))
	binary.BigEndian.PutUint16(plain, uint16(len(data)))
	copy(plain[2:], data)
	for len(plain)%PadQuantum != 0 {
		plain = append(plain, 0)
	}
	return c.XOR(plain)
}

// Open decrypts a sealed payload and strips the padding.
func (c *StreamCipher) Open(ct []byte) ([]byte, bool) {
	plain := c.XOR(ct)
	if len(plain) < 2 {
		return nil, false
	}
	n := int(binary.BigEndian.Uint16(plain))
	if n > len(plain)-2 {
		return nil, false
	}
	return plain[2 : 2+n], true
}
