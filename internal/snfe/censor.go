package snfe

import (
	"strconv"

	"repro/internal/distsys"
)

// CensorMode sets how strictly the bypass censor scrubs headers.
type CensorMode int

// Censor strictness levels, from the paper's "rigid procedural checks on
// the traffic passing through".
const (
	// CensorOff passes the bypass through untouched (no censor box).
	CensorOff CensorMode = iota
	// CensorFormat enforces the protocol grammar: only the fields
	// {type, seq, len} survive, type must be "data", seq must advance by
	// exactly one (rewritten if not), len must be a number in range.
	CensorFormat
	// CensorCanon re-derives every header field from the censor's own
	// state: seq from its own counter, len quantized to PadQuantum. The
	// header that leaves the censor carries (almost) no degrees of
	// freedom chosen by red.
	CensorCanon
	// CensorStrict emits only fields computed from the censor's own
	// counters — no red-chosen information at all crosses the bypass.
	// This is the flow-free design package ifa certifies (CensorStrictSpec);
	// the cost is that the receiving side must not depend on the length
	// field (ours does not: payload lengths are sealed inside the
	// ciphertext).
	CensorStrict
)

// CensorModeName names a mode.
func CensorModeName(m CensorMode) string {
	switch m {
	case CensorOff:
		return "off"
	case CensorFormat:
		return "format"
	case CensorCanon:
		return "canonical"
	case CensorStrict:
		return "strict"
	}
	return "unknown"
}

// Censor is the one verified software component of the SNFE design. It
// forwards bypass headers subject to its mode, optionally rate-limited to
// one header per RateEvery fabric rounds.
//
// Ports: in (from red), out (to black).
type Censor struct {
	Mode CensorMode
	// RateEvery > 0 delays forwarding to at most one header per that many
	// rounds (a bandwidth cap on whatever covert content survives).
	RateEvery int

	queue    []distsys.Message
	lastSend uint64
	seq      int
	// Dropped counts headers rejected outright.
	Dropped int
	// Scrubbed counts fields removed or rewritten.
	Scrubbed int
}

// NewCensor creates a censor.
func NewCensor(mode CensorMode, rateEvery int) *Censor {
	return &Censor{Mode: mode, RateEvery: rateEvery}
}

// Name implements distsys.Component.
func (c *Censor) Name() string { return "censor" }

// Handle implements distsys.Component.
func (c *Censor) Handle(ctx distsys.Context, port string, m distsys.Message) {
	if port != "in" {
		return
	}
	out, ok := c.scrub(m)
	if !ok {
		c.Dropped++
		return
	}
	c.queue = append(c.queue, out)
	c.pump(ctx)
}

// Poll implements distsys.Component. Holding queued headers counts as
// live work even while the rate window is closed, so the fabric does not
// quiesce with traffic still inside the censor.
func (c *Censor) Poll(ctx distsys.Context) bool {
	if len(c.queue) == 0 {
		return false
	}
	c.pump(ctx)
	return true
}

func (c *Censor) pump(ctx distsys.Context) {
	for len(c.queue) > 0 {
		if c.RateEvery > 0 && ctx.Now() < c.lastSend+uint64(c.RateEvery) {
			return
		}
		ctx.Send("out", c.queue[0])
		c.queue = c.queue[1:]
		c.lastSend = ctx.Now()
		if c.RateEvery > 0 {
			return
		}
	}
}

// scrub applies the mode's checks to one header.
func (c *Censor) scrub(m distsys.Message) (distsys.Message, bool) {
	if c.Mode == CensorOff {
		return m, true
	}
	if m.Kind != "hdr" || m.Arg("type") != "data" {
		return distsys.Message{}, false
	}
	l, err := strconv.Atoi(m.Arg("len"))
	if err != nil || l < 0 || l > 4096 {
		return distsys.Message{}, false
	}

	c.seq++
	out := distsys.Msg("hdr", "type", "data")
	if len(m.Args) > 3 {
		c.Scrubbed += len(m.Args) - 3 // fields outside the grammar
	}

	switch c.Mode {
	case CensorFormat:
		// Sequence numbers must advance by exactly one; anything else is
		// rewritten (recording the scrub).
		if s, err := strconv.Atoi(m.Arg("seq")); err != nil || s != c.seq {
			c.Scrubbed++
		}
		out.Args["seq"] = strconv.Itoa(c.seq)
		out.Args["len"] = strconv.Itoa(l)
	case CensorCanon:
		// Every field is re-derived: seq from the censor's counter, len
		// quantized to the crypto's padding bucket.
		out.Args["seq"] = strconv.Itoa(c.seq)
		q := ((l + PadQuantum - 1) / PadQuantum) * PadQuantum
		if q != l {
			c.Scrubbed++
		}
		out.Args["len"] = strconv.Itoa(q)
	case CensorStrict:
		// Nothing red chose survives: the header is rebuilt wholesale
		// from the censor's own counter, and the length field is gone.
		out.Args["seq"] = strconv.Itoa(c.seq)
		c.Scrubbed++
	}
	return out, true
}
