package snfe_test

import (
	"bytes"
	"testing"
	"testing/quick"

	"repro/internal/snfe"
)

func TestCipherRoundTrip(t *testing.T) {
	prop := func(data []byte, key uint64) bool {
		if len(data) > 2048 {
			data = data[:2048]
		}
		enc := snfe.NewStreamCipher(key)
		dec := snfe.NewStreamCipher(key)
		ct := enc.Seal(data)
		if len(ct)%snfe.PadQuantum != 0 {
			return false
		}
		pt, ok := dec.Open(ct)
		return ok && bytes.Equal(pt, data)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestCipherHidesPlaintext(t *testing.T) {
	c := snfe.NewStreamCipher(42)
	data := []byte("SECRET-user-data-attack-at-dawn")
	ct := c.Seal(data)
	if bytes.Contains(ct, []byte("SECRET")) {
		t.Error("ciphertext contains plaintext")
	}
}

func TestHonestSNFEDeliversWithoutLeaking(t *testing.T) {
	res, err := snfe.Run(snfe.Config{Mode: snfe.ExfilNone, Censor: snfe.CensorOff, Packets: 16})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Delivered {
		t.Error("honest SNFE failed to deliver user data")
	}
	if res.Leaked {
		t.Error("honest SNFE leaked cleartext")
	}
}

func TestSNFEStillDeliversUnderEveryCensor(t *testing.T) {
	for _, mode := range []snfe.CensorMode{snfe.CensorOff, snfe.CensorFormat, snfe.CensorCanon} {
		for _, exfil := range []snfe.Exfil{snfe.ExfilNone, snfe.ExfilField, snfe.ExfilLenMod, snfe.ExfilSeqSkip} {
			res, err := snfe.Run(snfe.Config{Mode: exfil, Censor: mode, Packets: 12})
			if err != nil {
				t.Fatal(err)
			}
			if !res.Delivered {
				t.Errorf("censor=%s exfil=%s: user data not delivered",
					snfe.CensorModeName(mode), snfe.ExfilName(exfil))
			}
			if res.Leaked {
				t.Errorf("censor=%s exfil=%s: raw cleartext leaked",
					snfe.CensorModeName(mode), snfe.ExfilName(exfil))
			}
		}
	}
}

func TestFieldChannelWideOpenWithoutCensor(t *testing.T) {
	res, err := snfe.Run(snfe.Config{Mode: snfe.ExfilField, Censor: snfe.CensorOff, Packets: 32, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.Covert.ErrorRate > 0.01 {
		t.Errorf("uncensored field channel error rate %.2f, want ~0", res.Covert.ErrorRate)
	}
	if res.Covert.CapacityPerSymbol < 0.99 {
		t.Errorf("uncensored field channel capacity %.2f, want ~1", res.Covert.CapacityPerSymbol)
	}
}

func TestFormatCensorKillsFieldAndSeqChannels(t *testing.T) {
	for _, exfil := range []snfe.Exfil{snfe.ExfilField, snfe.ExfilSeqSkip} {
		res, err := snfe.Run(snfe.Config{Mode: exfil, Censor: snfe.CensorFormat, Packets: 48, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if res.Covert.CapacityPerSymbol > 0.15 {
			t.Errorf("%s under format censor: residual capacity %.3f b/sym, want ~0",
				snfe.ExfilName(exfil), res.Covert.CapacityPerSymbol)
		}
	}
}

func TestLenModSurvivesFormatButNotCanonical(t *testing.T) {
	fmtRes, err := snfe.Run(snfe.Config{Mode: snfe.ExfilLenMod, Censor: snfe.CensorFormat, Packets: 48, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if fmtRes.Covert.CapacityPerSymbol < 0.9 {
		t.Errorf("len-mod under format censor should survive (truthful lengths); capacity %.3f",
			fmtRes.Covert.CapacityPerSymbol)
	}
	canonRes, err := snfe.Run(snfe.Config{Mode: snfe.ExfilLenMod, Censor: snfe.CensorCanon, Packets: 48, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if canonRes.Covert.CapacityPerSymbol > 0.15 {
		t.Errorf("len-mod under canonical censor: residual capacity %.3f, want ~0",
			canonRes.Covert.CapacityPerSymbol)
	}
}

func TestRateLimitSlowsResidualChannel(t *testing.T) {
	fast, err := snfe.Run(snfe.Config{Mode: snfe.ExfilField, Censor: snfe.CensorOff, Packets: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	slow, err := snfe.Run(snfe.Config{Mode: snfe.ExfilField, Censor: snfe.CensorOff, RateEvery: 16, Packets: 32, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if slow.Covert.BitsPerRound >= fast.Covert.BitsPerRound {
		t.Errorf("rate limiting did not slow the channel: %.4f vs %.4f b/round",
			slow.Covert.BitsPerRound, fast.Covert.BitsPerRound)
	}
	if !slow.Delivered {
		t.Error("rate-limited SNFE must still deliver user data")
	}
}

func TestCensorCountsScrubs(t *testing.T) {
	res, err := snfe.Run(snfe.Config{Mode: snfe.ExfilField, Censor: snfe.CensorFormat, Packets: 16})
	if err != nil {
		t.Fatal(err)
	}
	if res.Scrubbed == 0 {
		t.Error("format censor scrubbed nothing while red was smuggling fields")
	}
}

func TestSweepShape(t *testing.T) {
	rows, err := snfe.Sweep(24)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 15 {
		t.Fatalf("sweep produced %d rows, want 15", len(rows))
	}
	// The paper's claim, as a shape: for every encoding, the best censor
	// reduces capacity far below the uncensored channel.
	byEnc := map[string]map[string]float64{}
	for _, r := range rows {
		if byEnc[r.Encoding] == nil {
			byEnc[r.Encoding] = map[string]float64{}
		}
		key := r.Censor
		if r.RateEvery > 0 {
			key += "+rate"
		}
		byEnc[r.Encoding][key] = r.Result.Covert.CapacityPerSymbol
		if !r.Result.Delivered {
			t.Errorf("%s/%s: user data lost", r.Encoding, key)
		}
	}
	for enc, caps := range byEnc {
		open := caps["off"]
		best := caps["canonical"]
		if caps["canonical+rate"] < best {
			best = caps["canonical+rate"]
		}
		if open < 0.9 {
			t.Errorf("%s: uncensored capacity %.3f, expected ~1", enc, open)
		}
		if best > 0.15 {
			t.Errorf("%s: best censor leaves capacity %.3f, expected ~0", enc, best)
		}
		if caps["strict"] > 0.15 {
			t.Errorf("%s: strict censor leaves capacity %.3f, expected ~0", enc, caps["strict"])
		}
	}
}

func TestStrictCensorKillsEverythingAndStillDelivers(t *testing.T) {
	for _, exfil := range []snfe.Exfil{snfe.ExfilField, snfe.ExfilLenMod, snfe.ExfilSeqSkip} {
		res, err := snfe.Run(snfe.Config{Mode: exfil, Censor: snfe.CensorStrict, Packets: 48, Seed: 3})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Delivered {
			t.Errorf("%s under strict censor: user data not delivered", snfe.ExfilName(exfil))
		}
		if res.Covert.CapacityPerSymbol > 0.15 {
			t.Errorf("%s under strict censor: residual capacity %.3f",
				snfe.ExfilName(exfil), res.Covert.CapacityPerSymbol)
		}
	}
}
