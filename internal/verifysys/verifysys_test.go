package verifysys_test

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/verifysys"
)

func TestBuildBootsAndRuns(t *testing.T) {
	sys, err := verifysys.Build(verifysys.ProbePlain, kernel.Leaks{}, true)
	if err != nil {
		t.Fatal(err)
	}
	k := sys.K
	k.Run(5000)
	if k.Dead() {
		t.Fatalf("kernel died: %v", k.Cause)
	}
	// Worker and peer must be alive and progressing.
	for _, name := range []string{"worker", "peer"} {
		i := k.RegimeIndex(name)
		if st := k.RegimeStateOf(i); st != kernel.StateRunnable {
			t.Errorf("%s state = %d", name, st)
		}
		if v, _ := k.ReadRegimeMem(i, 0x20); v == 0 {
			t.Errorf("%s made no progress", name)
		}
	}
}

func TestProbesDieOnHonestKernel(t *testing.T) {
	for _, probe := range []struct{ name, src string }{
		{"scratch", verifysys.ProbeScratch},
		{"overlap", verifysys.ProbeOverlap},
		{"combined", verifysys.ProbeCombined},
	} {
		sys, err := verifysys.Build(probe.src, kernel.Leaks{}, true)
		if err != nil {
			t.Fatal(err)
		}
		sys.K.Run(5000)
		i := sys.K.RegimeIndex("probe")
		if st := sys.K.RegimeStateOf(i); st != kernel.StateDead {
			t.Errorf("probe %q survived the honest kernel (state %d)", probe.name, st)
		}
	}
}

func TestProbesSurviveTheirLeak(t *testing.T) {
	cases := []struct {
		name  string
		leaks kernel.Leaks
	}{
		{"scratch", kernel.Leaks{SharedScratch: true}},
		{"overlap", kernel.Leaks{PartitionOverlap: true}},
	}
	for _, c := range cases {
		sys, err := verifysys.Build(verifysys.ProbeFor(c.leaks), c.leaks, true)
		if err != nil {
			t.Fatal(err)
		}
		sys.K.Run(5000)
		i := sys.K.RegimeIndex("probe")
		if st := sys.K.RegimeStateOf(i); st != kernel.StateRunnable {
			t.Errorf("probe for %s died under its own leak: %+v",
				c.name, sys.K.RegimeFault(i))
		}
	}
}

func TestProbeForSelection(t *testing.T) {
	if verifysys.ProbeFor(kernel.Leaks{SharedScratch: true}) != verifysys.ProbeScratch {
		t.Error("scratch leak should select the scratch probe")
	}
	if verifysys.ProbeFor(kernel.Leaks{PartitionOverlap: true}) != verifysys.ProbeOverlap {
		t.Error("overlap leak should select the overlap probe")
	}
	if verifysys.ProbeFor(kernel.Leaks{RegisterLeak: true}) != verifysys.ProbePlain {
		t.Error("other leaks should select the plain probe")
	}
}

func TestBadProbeRejected(t *testing.T) {
	if _, err := verifysys.Build("NOT ASSEMBLY", kernel.Leaks{}, true); err == nil {
		t.Error("unassemblable probe accepted")
	}
}
