// Package verifysys provides the standard SUE-Go verification
// configuration shared by the test suite, the sepverify tool and the
// benchmark harness: three regimes that together exercise every kernel
// service, so randomized Proof-of-Separability checking reaches the code
// paths where each fault-injected leak lives.
//
//   - worker owns a TTY, handles its interrupts, and talks on both
//     channels;
//   - peer is a plain compute loop with a distinctive register pattern;
//   - probe pokes at an address-space hole. Under an honest kernel every
//     probe faults at its first poke and dies — harmlessly; under the
//     corresponding leak it lives and generates flows the checker must see.
package verifysys

import (
	"fmt"

	"repro/internal/asm"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/model"
	"repro/internal/witness"
)

// WorkerSrc is the device-owning regime program.
const WorkerSrc = `
	.org 0x40
start:
	MOV #isr, @0x10
	MOV #0x40, @DEV0     ; TTY: enable receive interrupts
	TRAP #IRQON
	MOV #0, R2
loop:
	ADD #1, R2
	MOV R2, @0x0         ; distinctive partition-base word
	MOV R2, @0x20
	MOV @DEV0+1, R3      ; poll RDATA so the receiver keeps presenting
	MOV #0, R0           ; channel 0: worker -> probe
	MOV R2, R1
	TRAP #SEND
	MOV #1, R0           ; channel 1: probe -> worker
	TRAP #RECV
	TRAP #SWAP
	BR loop
isr:
	MOV @DEV0+1, R1
	MOV R1, @DEV0+3      ; echo
	RTI
`

// PeerSrc is the plain compute regime program.
const PeerSrc = `
	.org 0x40
start:
	MOV #0x1111, R5
	MOV #0, R2
loop:
	ADD #1, R2
	MOV R2, @0x0
	MOV R2, @0x20
	ADD #1, R5
	TRAP #SWAP
	BR loop
`

// ProbeScratch reads the kernel scratch word through segment 13.
const ProbeScratch = `
	.org 0x40
start:
	MOV #0, R4
loop:
	MOV @0xD000, R5      ; read the kernel scratch word (segment 13)
	ADD R5, R4
	MOV R4, @0x20
	MOV R4, @0x0
	TRAP #SWAP
	BR loop
`

// ProbeOverlap reads and writes the neighbour's partition through
// segment 12.
const ProbeOverlap = `
	.org 0x40
start:
	MOV #0, R4
loop:
	ADD #1, R4
	MOV @0xC000, R5      ; read the neighbour's partition word (segment 12)
	ADD R5, R4
	MOV R4, @0xC000      ; and write it back, perturbed
	TRAP #SWAP
	BR loop
`

// ProbePlain exercises channels and swaps without probing anything.
const ProbePlain = `
	.org 0x40
start:
	MOV #0, R4
loop:
	ADD #1, R4
	MOV R4, @0x0
	MOV R4, @0x20
	MOV #1, R0
	MOV R4, R1
	TRAP #SEND           ; channel 1: probe -> worker
	MOV #0, R0
	TRAP #RECV           ; channel 0: worker -> probe
	TRAP #SWAP
	BR loop
`

// ProbeCombined pokes both holes; it exists to show the honest kernel
// contains probes harmlessly.
const ProbeCombined = `
	.org 0x40
start:
	MOV #0, R4
loop:
	MOV @0xD000, R5
	ADD R5, R4
	MOV R4, @0xC000
	MOV R4, @0x20
	TRAP #SWAP
	BR loop
`

// ProbeFor returns the probe program best suited to detecting a leak set.
func ProbeFor(l kernel.Leaks) string {
	switch {
	case l.SharedScratch:
		return ProbeScratch
	case l.PartitionOverlap:
		return ProbeOverlap
	default:
		return ProbePlain
	}
}

// Factory returns a builder of independent replicas of the standard
// verification system, suitable for separability.CheckRandomizedParallel:
// each call boots a fresh machine, kernel and device set from scratch. A
// build error yields nil (the checker then skips that worker). Note the
// kernel adapter also implements model.Replicable, so Options.Workers on a
// Build-produced system works without this factory; it remains useful when
// the configuration, not a live instance, is the natural unit to ship to
// workers.
func Factory(probe string, leaks kernel.Leaks, cut bool) func() model.Perturbable {
	return func() model.Perturbable {
		sys, err := Build(probe, leaks, cut)
		if err != nil {
			return nil
		}
		return sys
	}
}

// SpecFor describes the standard verification system built with the given
// leak name (empty = honest), channel cut and translation choice, as the
// witness subsystem records it.
func SpecFor(leakName string, cut, noTranslate bool) witness.SystemSpec {
	return witness.SystemSpec{Kind: "verifysys", Leak: leakName, Cut: cut,
		NoTranslate: noTranslate}
}

// FromSpec rebuilds the system a witness was captured from. Only the
// "verifysys" kind is known; the leak name must be one of kernel.AllLeaks
// (or empty for the honest kernel).
func FromSpec(spec witness.SystemSpec) (*kernel.Adapter, error) {
	if spec.Kind != "verifysys" {
		return nil, fmt.Errorf("verifysys: unknown system kind %q", spec.Kind)
	}
	var leaks kernel.Leaks
	if spec.Leak != "" {
		l, ok := kernel.AllLeaks()[spec.Leak]
		if !ok {
			return nil, fmt.Errorf("verifysys: unknown leak %q", spec.Leak)
		}
		leaks = l
	}
	sys, err := Build(ProbeFor(leaks), leaks, spec.Cut)
	if err != nil {
		return nil, err
	}
	if spec.NoTranslate {
		sys.K.Machine().SetTranslation(false)
	}
	return sys, nil
}

// Build boots the standard verification system with the given probe
// program, leak set, and channel-cutting choice, returning its adapter.
func Build(probe string, leaks kernel.Leaks, cut bool) (*kernel.Adapter, error) {
	m := machine.New(0x2000)
	tty := machine.NewTTY("tty0", 2)
	m.Attach(tty)
	mk := func(src string) (*asm.Image, error) {
		return asm.Assemble(kernel.Prelude + src)
	}
	worker, err := mk(WorkerSrc)
	if err != nil {
		return nil, fmt.Errorf("verifysys: worker: %w", err)
	}
	peer, err := mk(PeerSrc)
	if err != nil {
		return nil, fmt.Errorf("verifysys: peer: %w", err)
	}
	probeIm, err := mk(probe)
	if err != nil {
		return nil, fmt.Errorf("verifysys: probe: %w", err)
	}
	cfg := kernel.Config{
		Regimes: []kernel.RegimeSpec{
			{Name: "worker", Base: 0x0400, Size: 0x200, Image: worker,
				Devices: []machine.Device{tty}},
			{Name: "peer", Base: 0x0600, Size: 0x200, Image: peer},
			{Name: "probe", Base: 0x0800, Size: 0x200, Image: probeIm},
		},
		Channels: []kernel.ChannelSpec{
			{Name: "wp", From: "worker", To: "probe", Capacity: 48},
			{Name: "pw", From: "probe", To: "worker", Capacity: 48},
		},
		CutChannels: cut,
		Leaks:       leaks,
	}
	k, err := kernel.New(m, cfg)
	if err != nil {
		return nil, err
	}
	if err := k.Boot(); err != nil {
		return nil, err
	}
	return kernel.NewAdapter(k), nil
}
