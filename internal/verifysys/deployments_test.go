package verifysys

import (
	"strings"
	"testing"

	"repro/internal/kernel"
)

func TestDeploymentSpecsRegistry(t *testing.T) {
	ds := DeploymentSpecs()
	if len(ds) != 2+len(kernel.AllLeaks()) {
		t.Fatalf("registry has %d deployments, want %d", len(ds), 2+len(kernel.AllLeaks()))
	}
	seen := map[string]bool{}
	for i, d := range ds {
		if i > 0 && ds[i-1].Name >= d.Name {
			t.Errorf("registry unsorted at %q >= %q", ds[i-1].Name, d.Name)
		}
		if seen[d.Name] {
			t.Errorf("duplicate deployment %q", d.Name)
		}
		seen[d.Name] = true
		if strings.ContainsAny(d.Name, ":/ ") {
			t.Errorf("deployment name %q is not filesystem-safe", d.Name)
		}
		// Only the deployed (cut) honest configuration is expected to pass:
		// the uncut variant's configured channels register as flows, and
		// every leak variant must be caught.
		if wantSecure := d.Name == "honest"; d.Secure != wantSecure {
			t.Errorf("deployment %q Secure = %v", d.Name, d.Secure)
		}
		if d.Name != "honest-uncut" && !d.Spec.Cut {
			t.Errorf("deployment %q should cut its channels", d.Name)
		}
		// Every spec must actually rebuild.
		sys, err := FromSpec(d.Spec)
		if err != nil {
			t.Errorf("deployment %q does not build: %v", d.Name, err)
			continue
		}
		if sys == nil {
			t.Errorf("deployment %q built nil system", d.Name)
		}
	}
	if _, ok := FindDeployment("honest"); !ok {
		t.Error("FindDeployment(honest) missing")
	}
	if _, ok := FindDeployment("nope"); ok {
		t.Error("FindDeployment(nope) found something")
	}
}
