package verifysys

import (
	"fmt"
	"sort"

	"repro/internal/minisue"
	"repro/internal/model"
	"repro/internal/separability"
)

// An ExhaustiveTarget is one named enumerable system configuration the
// sharded exhaustive checker can sweep. The registry gives every process of
// a verification fleet — coordinator, workers, merge step — one shared
// vocabulary for WHAT is being verified, so shard artifacts stamped with a
// target name can never be merged across different systems.
type ExhaustiveTarget struct {
	// Name is the stable identifier ("family:variant") stamped into shard
	// artifacts and passed to `sepverify -target`.
	Name string
	// Secure reports the expected verdict, letting drivers pick an exit
	// status (a leaky target that passes is as alarming as an honest one
	// that fails).
	Secure bool
	// Build boots a fresh instance; each call returns an independent one.
	Build func() model.Enumerable
}

// ExhaustiveTargets returns every registered target, sorted by name.
func ExhaustiveTargets() []ExhaustiveTarget {
	out := make([]ExhaustiveTarget, len(exhaustiveTargets))
	copy(out, exhaustiveTargets)
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FindExhaustiveTarget resolves a target name.
func FindExhaustiveTarget(name string) (ExhaustiveTarget, error) {
	for _, t := range exhaustiveTargets {
		if t.Name == name {
			return t, nil
		}
	}
	names := make([]string, 0, len(exhaustiveTargets))
	for _, t := range ExhaustiveTargets() {
		names = append(names, t.Name)
	}
	return ExhaustiveTarget{}, fmt.Errorf("verifysys: unknown exhaustive target %q (have %v)", name, names)
}

var exhaustiveTargets = buildExhaustiveTargets()

func buildExhaustiveTargets() []ExhaustiveTarget {
	var out []ExhaustiveTarget
	for _, v := range []minisue.Variant{
		minisue.Secure, minisue.RegisterLeak, minisue.InterruptMisroute, minisue.SharedCell,
	} {
		v := v
		out = append(out, ExhaustiveTarget{
			Name:   "minisue:" + minisue.VariantName(v),
			Secure: v == minisue.Secure,
			Build:  func() model.Enumerable { return minisue.New(v) },
		})
	}
	for v := separability.ToySecure; v <= separability.ToyNextOpLeak; v++ {
		v := v
		out = append(out, ExhaustiveTarget{
			Name:   "toy:" + separability.ToyVariantName(v),
			Secure: v == separability.ToySecure,
			Build:  func() model.Enumerable { return separability.NewToySystem(v) },
		})
	}
	return out
}
