package verifysys

import (
	"sort"

	"repro/internal/kernel"
	"repro/internal/witness"
)

// A NamedSpec is one named deployment of the standard verification system:
// a kernel configuration (leak set, channel cut) under a stable name, with
// the verdict verification is expected to reach. The registry is the
// fleet's vocabulary for continuous re-verification — sepwatch re-verifies
// each named deployment every cycle and appends the outcome to that
// deployment's build ledger, so a configuration that silently changes
// between builds surfaces as drift against its own history.
//
// Names are filesystem-safe (no ':', unlike exhaustive target names)
// because each deployment owns a ledger directory.
type NamedSpec struct {
	// Name is the stable deployment identifier ("honest", "honest-uncut",
	// "leak-RegisterLeak", ...).
	Name string
	// Spec rebuilds the system via FromSpec.
	Spec witness.SystemSpec
	// Secure is the expected verification verdict: an honest deployment
	// that fails is a rollout failure, and a planted-leak deployment that
	// passes is a detection failure — both alarming.
	Secure bool
}

// DeploymentSpecs returns the registered deployments, sorted by name: the
// honest kernel as deployed (channels cut — the configuration that passes
// isolation checking), the honest kernel with its channels left uncut (the
// configured worker<->probe flows register as violations, so its expected
// verdict is insecure — the paper's motivation for the cutting
// transformation), and one planted-leak variant per kernel.AllLeaks entry,
// each with channels cut so the only expected flows are the leak's own.
func DeploymentSpecs() []NamedSpec {
	out := []NamedSpec{
		{Name: "honest", Spec: SpecFor("", true, false), Secure: true},
		{Name: "honest-uncut", Spec: SpecFor("", false, false), Secure: false},
	}
	for name := range kernel.AllLeaks() {
		out = append(out, NamedSpec{
			Name: "leak-" + name, Spec: SpecFor(name, true, false), Secure: false,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// FindDeployment resolves a deployment name.
func FindDeployment(name string) (NamedSpec, bool) {
	for _, d := range DeploymentSpecs() {
		if d.Name == name {
			return d, true
		}
	}
	return NamedSpec{}, false
}
