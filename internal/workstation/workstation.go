// Package workstation assembles the paper's section-2 multilevel secure
// system: user terminals on private machines, a shared multilevel
// file-server, a printer-server, and an authentication service — all
// joined by dedicated wires and nothing else. The same assembly runs under
// either distsys deployment, which is the substance of experiment E7.
package workstation

import (
	"fmt"

	"repro/internal/auth"
	"repro/internal/distsys"
	"repro/internal/fileserver"
	"repro/internal/mls"
	"repro/internal/printserver"
	"repro/internal/terminal"
)

// User declares one user of the system.
type User struct {
	Name      string
	Password  string
	Clearance mls.Label
	Script    []terminal.Action
}

// System is one assembled workstation.
type System struct {
	Fabric    *distsys.Fabric
	Auth      *auth.Service
	Files     *fileserver.Server
	Printer   *printserver.Server
	Terminals map[string]*terminal.Terminal
}

// Build wires the full system for the given deployment.
//
// Wire plan (every line dedicated and unidirectional, per the paper):
//
//	terminal <-> auth        (login)
//	terminal <-> file-server (file requests)
//	terminal <-> printer     (print requests)
//	auth      -> file-server (clearance announcements)
//	auth      -> printer     (clearance announcements)
//	printer  <-> file-server (spool special services)
func Build(deploy distsys.Deployment, users []User) (*System, error) {
	f := distsys.New(deploy)
	a := auth.New("auth", "fs", "ps")
	fs := fileserver.New("fs")
	ps := printserver.New("ps")
	sys := &System{Fabric: f, Auth: a, Files: fs, Printer: ps,
		Terminals: map[string]*terminal.Terminal{}}

	for _, c := range []distsys.Component{a, fs, ps} {
		if err := f.Add(c); err != nil {
			return nil, err
		}
	}
	if err := f.Connect("auth:server_fs", "fs:auth", 64); err != nil {
		return nil, err
	}
	if err := f.Connect("auth:server_ps", "ps:auth", 64); err != nil {
		return nil, err
	}
	if err := f.Connect("ps:fs", "fs:printer", 64); err != nil {
		return nil, err
	}
	if err := f.Connect("fs:re_printer", "ps:fsin", 64); err != nil {
		return nil, err
	}

	for _, u := range users {
		a.Register(u.Name, u.Password, u.Clearance)
		t := terminal.New(u.Name, u.Script...)
		sys.Terminals[u.Name] = t
		if err := f.Add(t); err != nil {
			return nil, err
		}
		wires := [][2]string{
			{u.Name + ":auth", fmt.Sprintf("auth:term_%s", u.Name)},
			{fmt.Sprintf("auth:re_term_%s", u.Name), u.Name + ":auth_re"},
			{u.Name + ":fs", fmt.Sprintf("fs:user_%s", u.Name)},
			{fmt.Sprintf("fs:re_user_%s", u.Name), u.Name + ":fs_re"},
			{u.Name + ":ps", fmt.Sprintf("ps:user_%s", u.Name)},
			{fmt.Sprintf("ps:re_user_%s", u.Name), u.Name + ":ps_re"},
		}
		for _, w := range wires {
			if err := f.Connect(w[0], w[1], 64); err != nil {
				return nil, err
			}
		}
	}
	return sys, nil
}

// Run drives the system until every terminal script completes and the
// servers quiesce, up to max rounds. It reports rounds executed.
func (s *System) Run(max int) int {
	for i := 0; i < max; i++ {
		progress := s.Fabric.StepRound()
		if !progress && s.allDone() {
			return i
		}
	}
	return max
}

func (s *System) allDone() bool {
	for _, t := range s.Terminals {
		if !t.Done() {
			return false
		}
	}
	return s.Printer.QueueLength() == 0
}
