package workstation_test

import (
	"strings"
	"testing"

	"repro/internal/distsys"
	"repro/internal/mls"
	"repro/internal/terminal"
	"repro/internal/workstation"
)

func lowHighUsers() []workstation.User {
	return []workstation.User{
		{
			Name: "lois", Password: "pw-lois", Clearance: mls.L(mls.Unclassified),
			Script: []terminal.Action{
				terminal.Login("lois", "pw-lois"),
				terminal.Create("notes"),
				terminal.Write("notes", "unclassified notes"),
				terminal.Read("notes"),
				terminal.List(),
			},
		},
		{
			Name: "hank", Password: "pw-hank", Clearance: mls.L(mls.Secret),
			Script: []terminal.Action{
				terminal.Login("hank", "pw-hank"),
				terminal.Create("plans"),
				terminal.Write("plans", "secret plans"),
				terminal.Read("notes"), // read-down: allowed
				terminal.List(),
			},
		},
	}
}

func TestLoginAndBasicFileOps(t *testing.T) {
	sys, err := workstation.Build(distsys.Physical, lowHighUsers())
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(500)
	lois := sys.Terminals["lois"]
	if !lois.Done() {
		t.Fatalf("lois's script did not finish: %v", lois.Transcript)
	}
	if errs := lois.Errors(); len(errs) != 0 {
		t.Errorf("lois got errors: %v", errs)
	}
	// Her read must return her own data.
	found := false
	for _, line := range lois.Replies("data") {
		if strings.Contains(line, "unclassified notes") {
			found = true
		}
	}
	if !found {
		t.Errorf("lois's read did not return her data: %v", lois.Transcript)
	}
}

func TestReadDownAllowedReadUpDenied(t *testing.T) {
	users := lowHighUsers()
	// Lois additionally tries to read hank's SECRET file.
	users[0].Script = append(users[0].Script, terminal.Read("plans"))
	sys, err := workstation.Build(distsys.Physical, users)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(800)

	hank := sys.Terminals["hank"]
	ok := false
	for _, line := range hank.Replies("data") {
		if strings.Contains(line, "unclassified notes") {
			ok = true
		}
	}
	if !ok {
		t.Errorf("hank's read-down failed: %v", hank.Transcript)
	}

	lois := sys.Terminals["lois"]
	denied := false
	for _, line := range lois.Errors() {
		if strings.Contains(line, "ss-property") {
			denied = true
		}
	}
	if !denied {
		t.Errorf("lois's read-up was not denied by the ss-property: %v", lois.Transcript)
	}
}

func TestWriteDownDenied(t *testing.T) {
	users := lowHighUsers()
	// Hank (SECRET) tries to scribble on lois's UNCLASSIFIED file.
	users[1].Script = append(users[1].Script, terminal.Write("notes", "leak!"))
	sys, err := workstation.Build(distsys.Physical, users)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(800)
	hank := sys.Terminals["hank"]
	denied := false
	for _, line := range hank.Errors() {
		if strings.Contains(line, "*-property") {
			denied = true
		}
	}
	if !denied {
		t.Errorf("hank's write-down was not denied: %v", hank.Transcript)
	}
}

func TestUnauthenticatedUserRejected(t *testing.T) {
	users := []workstation.User{{
		Name: "mallory", Password: "x", Clearance: mls.L(mls.Unclassified),
		Script: []terminal.Action{
			// No login: straight to the file-server.
			terminal.Create("sneaky"),
		},
	}}
	sys, err := workstation.Build(distsys.Physical, users)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(200)
	m := sys.Terminals["mallory"]
	if errs := m.Errors(); len(errs) == 0 || !strings.Contains(errs[0], "not authenticated") {
		t.Errorf("unauthenticated request not rejected: %v", m.Transcript)
	}
}

func TestBadPasswordDenied(t *testing.T) {
	users := []workstation.User{{
		Name: "eve", Password: "right", Clearance: mls.L(mls.Secret),
		Script: []terminal.Action{
			terminal.Login("eve", "wrong"),
		},
	}}
	sys, err := workstation.Build(distsys.Physical, users)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(200)
	e := sys.Terminals["eve"]
	if got := e.Replies("denied"); len(got) != 1 {
		t.Errorf("bad password not denied: %v", e.Transcript)
	}
	if _, fails := sys.Auth.Stats(); fails != 1 {
		t.Errorf("failure counter = %d, want 1", fails)
	}
}

// The full print path: spool, print, banner classification, spool cleanup —
// WITHOUT any trusted process, which is experiment E5's distributed side.
func TestPrintPathDeletesSpoolWithoutTrustedProcess(t *testing.T) {
	users := []workstation.User{{
		Name: "lois", Password: "pw", Clearance: mls.L(mls.Unclassified),
		Script: []terminal.Action{
			terminal.Login("lois", "pw"),
			terminal.Create("memo"),
			terminal.Write("memo", "please print me"),
			terminal.Spool("memo"),
			terminal.PrintLast(),
		},
	}, {
		Name: "hank", Password: "pw2", Clearance: mls.L(mls.Secret),
		Script: []terminal.Action{
			terminal.Login("hank", "pw2"),
			terminal.Create("battle"),
			terminal.Write("battle", "secret battle plan"),
			terminal.Spool("battle"),
			terminal.PrintLast(),
		},
	}}
	sys, err := workstation.Build(distsys.Physical, users)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(2000)

	if got := sys.Printer.JobsPrinted(); got != 2 {
		t.Fatalf("jobs printed = %d, want 2 (lois: %v, hank: %v)", got,
			sys.Terminals["lois"].Transcript, sys.Terminals["hank"].Transcript)
	}
	if err := sys.Printer.CheckJobSeparation(); err != nil {
		t.Errorf("job separation violated: %v", err)
	}
	// Banners carry the job's classification.
	var banners []string
	for _, p := range sys.Printer.Printed() {
		if p.Kind == "banner" {
			banners = append(banners, p.Text)
		}
	}
	wantLabels := map[string]bool{"UNCLASSIFIED": false, "SECRET": false}
	for _, b := range banners {
		for lbl := range wantLabels {
			if strings.Contains(b, lbl) {
				wantLabels[lbl] = true
			}
		}
	}
	for lbl, seen := range wantLabels {
		if !seen {
			t.Errorf("no banner carries %s: %v", lbl, banners)
		}
	}
	// The spool files are gone: deletion needed no *-property violation
	// anywhere, because the file-server's special service is scoped to the
	// spool area.
	if got := sys.Files.SpoolCount(); got != 0 {
		t.Errorf("spool files remaining = %d, want 0", got)
	}
	// And no trusted-process escape hatch was ever used.
	if got := sys.Files.Monitor().TrustedUses(); got != 0 {
		t.Errorf("trusted-process uses = %d, want 0", got)
	}
}

func TestUserCannotPrintOthersSpool(t *testing.T) {
	users := []workstation.User{{
		Name: "hank", Password: "pw", Clearance: mls.L(mls.Secret),
		Script: []terminal.Action{
			terminal.Login("hank", "pw"),
			terminal.Create("battle"),
			terminal.Write("battle", "secret"),
			terminal.Spool("battle"),
		},
	}, {
		Name: "lois", Password: "pw2", Clearance: mls.L(mls.Unclassified),
		Script: []terminal.Action{
			terminal.Login("lois", "pw2"),
			// Try to print hank's first spool file by guessing its id.
			{Target: "ps", Msg: distsys.Msg("print", "id", "spool/hank/1")},
		},
	}}
	sys, err := workstation.Build(distsys.Physical, users)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(1000)
	lois := sys.Terminals["lois"]
	denied := false
	for _, e := range lois.Errors() {
		if strings.Contains(e, "not your spool") {
			denied = true
		}
	}
	if !denied {
		t.Errorf("cross-user print not denied: %v", lois.Transcript)
	}
}

// E7: the same system, same scripts, run under the physical and the
// kernel-hosted deployments; every component's per-port observations are
// identical.
func TestDeploymentIndistinguishability(t *testing.T) {
	build := func(d distsys.Deployment) *workstation.System {
		sys, err := workstation.Build(d, lowHighUsers())
		if err != nil {
			t.Fatal(err)
		}
		sys.Run(2000)
		return sys
	}
	phys := build(distsys.Physical)
	hosted := build(distsys.KernelHosted)
	for _, comp := range []string{"lois", "hank", "auth", "fs", "ps"} {
		if ok, why := distsys.PerPortTracesEqual(phys.Fabric, hosted.Fabric, comp); !ok {
			t.Errorf("deployments distinguishable at %q: %s", comp, why)
		}
	}
}

// Category compartments flow through the whole stack: a SECRET{crypto}
// user and a SECRET{nuclear} user are mutually unreadable even at the
// same level, and a SECRET{crypto,nuclear} user reads both.
func TestCategoryCompartments(t *testing.T) {
	const crypto, nuclear = 0, 1
	users := []workstation.User{
		{Name: "carol", Password: "c", Clearance: mls.L(mls.Secret, crypto),
			Script: []terminal.Action{
				terminal.Login("carol", "c"),
				terminal.Create("keys"),
				terminal.Write("keys", "crypto keys"),
			}},
		{Name: "ned", Password: "n", Clearance: mls.L(mls.Secret, nuclear),
			Script: []terminal.Action{
				terminal.Login("ned", "n"),
				terminal.Create("yields"),
				terminal.Write("yields", "nuclear yields"),
				terminal.Read("keys"), // cross-compartment: denied
			}},
		{Name: "boss", Password: "b", Clearance: mls.L(mls.Secret, crypto, nuclear),
			Script: []terminal.Action{
				terminal.Login("boss", "b"),
				terminal.Read("keys"),
				terminal.Read("yields"),
				terminal.List(),
			}},
	}
	sys, err := workstation.Build(distsys.Physical, users)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(2000)

	ned := sys.Terminals["ned"]
	denied := false
	for _, e := range ned.Errors() {
		if strings.Contains(e, "ss-property") {
			denied = true
		}
	}
	if !denied {
		t.Errorf("cross-compartment read was not denied: %v", ned.Transcript)
	}
	boss := sys.Terminals["boss"]
	if errs := boss.Errors(); len(errs) != 0 {
		t.Errorf("boss (both compartments) hit errors: %v", errs)
	}
	// Both reads were GRANTED (content may trail the create in a
	// distributed run; the verdict is what the compartments control).
	reads := 0
	for _, line := range boss.Replies("data") {
		if strings.Contains(line, `name="keys"`) || strings.Contains(line, `name="yields"`) {
			reads++
		}
	}
	if reads != 2 {
		t.Errorf("boss read %d compartmented files, want 2: %v", reads, boss.Transcript)
	}
	// The boss's listing shows both files; ned's world is smaller.
	var bossList string
	for _, l := range boss.Replies("listing") {
		bossList += l
	}
	if !strings.Contains(bossList, "keys") || !strings.Contains(bossList, "yields") {
		t.Errorf("boss listing incomplete: %q", bossList)
	}
}

// Terminals that lower their level mid-session create at the lowered
// label and lose sight of higher files — the current-level machinery end
// to end.
func TestSetLevelEndToEnd(t *testing.T) {
	users := []workstation.User{
		{Name: "hank", Password: "h", Clearance: mls.L(mls.Secret),
			Script: []terminal.Action{
				terminal.Login("hank", "h"),
				terminal.Create("high-doc"),
				terminal.SetLevel(mls.L(mls.Unclassified).Compact()),
				terminal.Create("public-doc"),
				terminal.Read("high-doc"), // above current level now
				terminal.List(),
			}},
	}
	sys, err := workstation.Build(distsys.Physical, users)
	if err != nil {
		t.Fatal(err)
	}
	sys.Run(2000)

	if lbl, ok := sys.Files.FileLabel("public-doc"); !ok || lbl.Level != mls.Unclassified {
		t.Errorf("public-doc label = %v ok=%v", lbl, ok)
	}
	hank := sys.Terminals["hank"]
	denied := false
	for _, e := range hank.Errors() {
		if strings.Contains(e, "ss-property") {
			denied = true
		}
	}
	if !denied {
		t.Errorf("read above current level was not denied: %v", hank.Transcript)
	}
	var listing string
	for _, l := range hank.Replies("listing") {
		listing += l
	}
	if strings.Contains(listing, "high-doc") {
		t.Errorf("lowered session still lists high-doc: %q", listing)
	}
}
