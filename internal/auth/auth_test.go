package auth_test

import (
	"testing"

	"repro/internal/auth"
	"repro/internal/distsys"
	"repro/internal/mls"
)

func newService() *auth.Service {
	s := auth.New("auth", "fs", "ps")
	s.Register("alice", "wonderland", mls.L(mls.Secret))
	s.Register("bob", "builder", mls.L(mls.Unclassified))
	return s
}

func TestLoginSuccessAnnouncesClearance(t *testing.T) {
	s := newService()
	rec := &distsys.Recorder{}
	s.Handle(rec, "term_t1", distsys.Msg("login", "user", "alice", "pass", "wonderland"))

	welcomes := rec.OnPort("re_term_t1")
	if len(welcomes) != 1 || welcomes[0].Kind != "welcome" {
		t.Fatalf("reply = %v", welcomes)
	}
	lbl, err := mls.ParseCompact(welcomes[0].Arg("clearance"))
	if err != nil || lbl.Level != mls.Secret {
		t.Errorf("clearance = %v err=%v", lbl, err)
	}
	for _, srv := range []string{"fs", "ps"} {
		anns := rec.OnPort("server_" + srv)
		if len(anns) != 1 || anns[0].Kind != "clearance" || anns[0].Arg("user") != "alice" {
			t.Errorf("announcement to %s = %v", srv, anns)
		}
	}
	if s.SessionUser("t1") != "alice" {
		t.Errorf("session = %q", s.SessionUser("t1"))
	}
}

func TestLoginFailure(t *testing.T) {
	s := newService()
	rec := &distsys.Recorder{}
	s.Handle(rec, "term_t1", distsys.Msg("login", "user", "alice", "pass", "wrong"))
	s.Handle(rec, "term_t1", distsys.Msg("login", "user", "nobody", "pass", "x"))

	denies := rec.OnPort("re_term_t1")
	if len(denies) != 2 || denies[0].Kind != "denied" || denies[1].Kind != "denied" {
		t.Fatalf("replies = %v", denies)
	}
	if len(rec.OnPort("server_fs")) != 0 {
		t.Error("failed login announced to servers")
	}
	if a, f := s.Stats(); a != 2 || f != 2 {
		t.Errorf("stats = %d/%d", a, f)
	}
	if s.SessionUser("t1") != "" {
		t.Error("session created on failure")
	}
}

func TestLogout(t *testing.T) {
	s := newService()
	rec := &distsys.Recorder{}
	s.Handle(rec, "term_t1", distsys.Msg("login", "user", "bob", "pass", "builder"))
	rec.Take()
	s.Handle(rec, "term_t1", distsys.Msg("logout"))
	if got := rec.OnPort("re_term_t1"); len(got) != 1 || got[0].Kind != "bye" {
		t.Errorf("logout reply = %v", got)
	}
	if got := rec.OnPort("server_fs"); len(got) != 1 || got[0].Kind != "logout" {
		t.Errorf("logout announcement = %v", got)
	}
	if s.SessionUser("t1") != "" {
		t.Error("session persisted after logout")
	}
	// Logging out twice is a no-op.
	rec.Take()
	s.Handle(rec, "term_t1", distsys.Msg("logout"))
	if len(rec.Sent) != 0 {
		t.Error("double logout produced traffic")
	}
}

func TestWhoami(t *testing.T) {
	s := newService()
	rec := &distsys.Recorder{}
	s.Handle(rec, "term_t9", distsys.Msg("whoami"))
	if got := rec.OnPort("re_term_t9"); len(got) != 1 || got[0].Arg("user") != "" {
		t.Errorf("whoami before login = %v", got)
	}
}

func TestNonTerminalPortIgnored(t *testing.T) {
	s := newService()
	rec := &distsys.Recorder{}
	s.Handle(rec, "bogus", distsys.Msg("login", "user", "alice", "pass", "wonderland"))
	if len(rec.Sent) != 0 {
		t.Error("non-terminal port produced traffic")
	}
}

func TestHashPasswordDistinct(t *testing.T) {
	if auth.HashPassword("a") == auth.HashPassword("b") {
		t.Error("distinct passwords hash equal")
	}
	if auth.VerifierString(auth.HashPassword("a")) == "" {
		t.Error("verifier string empty")
	}
}

func TestTerminalsAreIndependent(t *testing.T) {
	s := newService()
	rec := &distsys.Recorder{}
	s.Handle(rec, "term_t1", distsys.Msg("login", "user", "alice", "pass", "wonderland"))
	s.Handle(rec, "term_t2", distsys.Msg("login", "user", "bob", "pass", "builder"))
	if s.SessionUser("t1") != "alice" || s.SessionUser("t2") != "bob" {
		t.Errorf("sessions = %q/%q", s.SessionUser("t1"), s.SessionUser("t2"))
	}
}
