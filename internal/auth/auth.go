// Package auth implements the authentication component of the paper's
// section-2 distributed design: "some additional mechanism to authenticate
// the identities of users as they log in to the single-user machines and to
// inform the file and printer-servers of the security classifications
// associated with each user."
//
// The component is a trusted distsys.Component. User terminals reach it on
// dedicated wires (one per terminal); it verifies credentials and, on
// success, announces the user's clearance to every registered server over
// further dedicated wires. Physical wiring identifies the terminal — no
// network-style identity spoofing is possible in the distributed design,
// which is part of what makes this component small enough to verify.
package auth

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"repro/internal/distsys"
	"repro/internal/mls"
)

// Credential is one registered user.
type Credential struct {
	User      string
	PassHash  [32]byte
	Clearance mls.Label
}

// HashPassword derives the stored verifier for a password.
func HashPassword(pw string) [32]byte { return sha256.Sum256([]byte(pw)) }

// Service is the authentication component.
//
// Ports:
//
//	term_<name>      (in)  login requests from terminal <name>
//	re_term_<name>   (out) replies to terminal <name>
//	server_<name>    (out) clearance announcements to server <name>
type Service struct {
	name    string
	users   map[string]Credential
	servers []string
	// sessions: terminal -> logged-in user ("" = none)
	sessions map[string]string
	attempts int
	failures int
}

// New creates the service. servers lists the component names that must be
// told about successful logins (each needs a wired "server_<name>" port).
func New(name string, servers ...string) *Service {
	return &Service{
		name:     name,
		users:    map[string]Credential{},
		servers:  append([]string(nil), servers...),
		sessions: map[string]string{},
	}
}

// Register adds a user with a password and clearance.
func (s *Service) Register(user, password string, clearance mls.Label) {
	s.users[user] = Credential{User: user, PassHash: HashPassword(password), Clearance: clearance}
}

// Name implements distsys.Component.
func (s *Service) Name() string { return s.name }

// Poll implements distsys.Component.
func (s *Service) Poll(distsys.Context) bool { return false }

// Handle implements distsys.Component.
//
// Login protocol: a terminal sends
//
//	Msg("login", "user", u, "pass", p)
//
// and receives either ("welcome","user",u,"clearance",compact) or
// ("denied","why",reason). On success every server is sent
// ("clearance","user",u,"terminal",t,"label",compact). A "logout" message
// clears the terminal's session and announces ("logout","user",u) to the
// servers.
func (s *Service) Handle(ctx distsys.Context, port string, m distsys.Message) {
	if len(port) < 6 || port[:5] != "term_" {
		return // not a terminal port: ignore
	}
	terminal := port[5:]
	reply := "re_term_" + terminal
	switch m.Kind {
	case "login":
		s.attempts++
		user := m.Arg("user")
		cred, ok := s.users[user]
		if !ok || HashPassword(m.Arg("pass")) != cred.PassHash {
			s.failures++
			ctx.Send(reply, distsys.Msg("denied", "why", "bad credentials"))
			return
		}
		s.sessions[terminal] = user
		compact := cred.Clearance.Compact()
		ctx.Send(reply, distsys.Msg("welcome", "user", user, "clearance", compact))
		for _, srv := range s.servers {
			ctx.Send("server_"+srv, distsys.Msg("clearance",
				"user", user, "terminal", terminal, "label", compact))
		}
	case "logout":
		user := s.sessions[terminal]
		if user == "" {
			return
		}
		delete(s.sessions, terminal)
		ctx.Send(reply, distsys.Msg("bye", "user", user))
		for _, srv := range s.servers {
			ctx.Send("server_"+srv, distsys.Msg("logout", "user", user, "terminal", terminal))
		}
	case "whoami":
		ctx.Send(reply, distsys.Msg("you", "user", s.sessions[terminal]))
	}
}

// SessionUser returns the user logged in at a terminal.
func (s *Service) SessionUser(terminal string) string { return s.sessions[terminal] }

// Stats reports attempt/failure counters.
func (s *Service) Stats() (attempts, failures int) { return s.attempts, s.failures }

// VerifierString renders a credential hash for audit displays.
func VerifierString(h [32]byte) string { return hex.EncodeToString(h[:8]) }

// Describe renders the service's configuration for documentation tools.
func (s *Service) Describe() string {
	return fmt.Sprintf("auth service %q: %d users, announces to %v", s.name, len(s.users), s.servers)
}
