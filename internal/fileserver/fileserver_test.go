package fileserver_test

import (
	"strings"
	"testing"

	"repro/internal/distsys"
	"repro/internal/fileserver"
	"repro/internal/mls"
)

// announce registers a user's clearance as the auth service would.
func announce(s *fileserver.Server, user string, lbl mls.Label) {
	rec := &distsys.Recorder{}
	s.Handle(rec, "auth", distsys.Msg("clearance", "user", user, "label", lbl.Compact()))
}

func ask(s *fileserver.Server, user string, m distsys.Message) distsys.Message {
	rec := &distsys.Recorder{}
	s.Handle(rec, "user_"+user, m)
	replies := rec.OnPort("re_user_" + user)
	if len(replies) != 1 {
		return distsys.Msg("no-reply")
	}
	return replies[0]
}

func TestUnknownUserRejected(t *testing.T) {
	s := fileserver.New("fs")
	if r := ask(s, "ghost", distsys.Msg("create", "name", "f")); r.Kind != "err" {
		t.Errorf("reply = %v", r)
	}
}

func TestCreateWriteReadAtLevel(t *testing.T) {
	s := fileserver.New("fs")
	announce(s, "hank", mls.L(mls.Secret))
	if r := ask(s, "hank", distsys.Msg("create", "name", "plans")); r.Kind != "ok" {
		t.Fatalf("create: %v", r)
	}
	if lbl, _ := s.FileLabel("plans"); lbl.Level != mls.Secret {
		t.Errorf("file label = %v, want creator's level", lbl)
	}
	if r := ask(s, "hank", distsys.Msg("write", "name", "plans").WithBody([]byte("x"))); r.Kind != "ok" {
		t.Errorf("write: %v", r)
	}
	r := ask(s, "hank", distsys.Msg("read", "name", "plans"))
	if r.Kind != "data" || string(r.Body) != "x" {
		t.Errorf("read: %v", r)
	}
}

func TestBLPEnforced(t *testing.T) {
	s := fileserver.New("fs")
	announce(s, "low", mls.L(mls.Unclassified))
	announce(s, "high", mls.L(mls.Secret))
	ask(s, "high", distsys.Msg("create", "name", "secret-doc"))
	ask(s, "low", distsys.Msg("create", "name", "public-doc"))

	// Read-up denied.
	if r := ask(s, "low", distsys.Msg("read", "name", "secret-doc")); r.Kind != "err" || r.Arg("why") != "ss-property" {
		t.Errorf("read-up: %v", r)
	}
	// Write-down denied (including delete).
	if r := ask(s, "high", distsys.Msg("write", "name", "public-doc").WithBody([]byte("!"))); r.Kind != "err" || r.Arg("why") != "*-property" {
		t.Errorf("write-down: %v", r)
	}
	if r := ask(s, "high", distsys.Msg("delete", "name", "public-doc")); r.Kind != "err" {
		t.Errorf("delete-down: %v", r)
	}
	// Read-down and write-up behave per BLP.
	if r := ask(s, "high", distsys.Msg("read", "name", "public-doc")); r.Kind != "data" {
		t.Errorf("read-down: %v", r)
	}
	if r := ask(s, "low", distsys.Msg("write", "name", "secret-doc").WithBody([]byte("up"))); r.Kind != "ok" {
		t.Errorf("blind write-up: %v", r)
	}
}

func TestListFiltersByCurrentLevel(t *testing.T) {
	s := fileserver.New("fs")
	announce(s, "low", mls.L(mls.Unclassified))
	announce(s, "high", mls.L(mls.Secret))
	ask(s, "high", distsys.Msg("create", "name", "hidden"))
	ask(s, "low", distsys.Msg("create", "name", "visible"))

	r := ask(s, "low", distsys.Msg("list"))
	if strings.Contains(string(r.Body), "hidden") {
		t.Errorf("low listing shows high file: %q", r.Body)
	}
	r = ask(s, "high", distsys.Msg("list"))
	if !strings.Contains(string(r.Body), "hidden") || !strings.Contains(string(r.Body), "visible") {
		t.Errorf("high listing incomplete: %q", r.Body)
	}
}

func TestSetLevelWithinClearance(t *testing.T) {
	s := fileserver.New("fs")
	announce(s, "hank", mls.L(mls.Secret))
	if r := ask(s, "hank", distsys.Msg("setlevel", "level", mls.L(mls.Unclassified).Compact())); r.Kind != "ok" {
		t.Fatalf("lower: %v", r)
	}
	// Files are now created at the lowered level.
	ask(s, "hank", distsys.Msg("create", "name", "memo"))
	if lbl, _ := s.FileLabel("memo"); lbl.Level != mls.Unclassified {
		t.Errorf("file created at %v", lbl)
	}
	// Raising above clearance is rejected.
	if r := ask(s, "hank", distsys.Msg("setlevel", "level", mls.L(mls.TopSecret).Compact())); r.Kind != "err" {
		t.Errorf("raise: %v", r)
	}
}

func TestSpoolLifecycle(t *testing.T) {
	s := fileserver.New("fs")
	announce(s, "lois", mls.L(mls.Unclassified))
	ask(s, "lois", distsys.Msg("create", "name", "memo"))
	ask(s, "lois", distsys.Msg("write", "name", "memo").WithBody([]byte("print me")))
	r := ask(s, "lois", distsys.Msg("spool", "name", "memo"))
	if r.Kind != "spooled" {
		t.Fatalf("spool: %v", r)
	}
	id := r.Arg("id")
	if !strings.HasPrefix(id, "spool/lois/") {
		t.Errorf("spool id = %q", id)
	}
	if s.SpoolCount() != 1 {
		t.Errorf("spool count = %d", s.SpoolCount())
	}

	// The printer's special services.
	rec := &distsys.Recorder{}
	s.Handle(rec, "printer", distsys.Msg("delspool", "id", id))
	if got := rec.OnPort("re_printer"); len(got) != 1 || got[0].Kind != "err" || got[0].Arg("why") != "not printed" {
		t.Errorf("premature delete: %v", got)
	}
	rec.Take()
	s.Handle(rec, "printer", distsys.Msg("readspool", "id", id))
	got := rec.OnPort("re_printer")
	if len(got) != 1 || got[0].Kind != "spooldata" || string(got[0].Body) != "print me" {
		t.Fatalf("readspool: %v", got)
	}
	rec.Take()
	s.Handle(rec, "printer", distsys.Msg("delspool", "id", id))
	if got := rec.OnPort("re_printer"); len(got) != 1 || got[0].Kind != "ok" {
		t.Errorf("delete after print: %v", got)
	}
	if s.SpoolCount() != 0 {
		t.Errorf("spool count after delete = %d", s.SpoolCount())
	}
}

func TestPrinterPortCannotTouchOrdinaryFiles(t *testing.T) {
	s := fileserver.New("fs")
	announce(s, "hank", mls.L(mls.Secret))
	ask(s, "hank", distsys.Msg("create", "name", "plans"))

	rec := &distsys.Recorder{}
	s.Handle(rec, "printer", distsys.Msg("readspool", "id", "plans"))
	if got := rec.OnPort("re_printer"); len(got) != 1 || got[0].Kind != "err" {
		t.Errorf("printer read of non-spool file: %v", got)
	}
	rec.Take()
	s.Handle(rec, "printer", distsys.Msg("delspool", "id", "plans"))
	if got := rec.OnPort("re_printer"); len(got) != 1 || got[0].Kind != "err" {
		t.Errorf("printer delete of non-spool file: %v", got)
	}
	if s.FileCount() != 1 {
		t.Error("printer port damaged ordinary files")
	}
}

func TestUsersCannotForgeSpoolNames(t *testing.T) {
	s := fileserver.New("fs")
	announce(s, "eve", mls.L(mls.Unclassified))
	if r := ask(s, "eve", distsys.Msg("create", "name", "spool/other/1")); r.Kind != "err" {
		t.Errorf("spool-prefixed create: %v", r)
	}
}

func TestSpoolUpRequiresReadAccess(t *testing.T) {
	s := fileserver.New("fs")
	announce(s, "low", mls.L(mls.Unclassified))
	announce(s, "high", mls.L(mls.Secret))
	ask(s, "high", distsys.Msg("create", "name", "secret-doc"))
	if r := ask(s, "low", distsys.Msg("spool", "name", "secret-doc")); r.Kind != "err" {
		t.Errorf("spooling an unreadable file: %v", r)
	}
}

func TestDuplicateCreateAndMissingFiles(t *testing.T) {
	s := fileserver.New("fs")
	announce(s, "u", mls.L(mls.Unclassified))
	ask(s, "u", distsys.Msg("create", "name", "f"))
	if r := ask(s, "u", distsys.Msg("create", "name", "f")); r.Kind != "err" {
		t.Errorf("duplicate create: %v", r)
	}
	for _, op := range []string{"read", "write", "delete", "spool"} {
		if r := ask(s, "u", distsys.Msg(op, "name", "missing")); r.Kind != "err" {
			t.Errorf("%s of missing file: %v", op, r)
		}
	}
}
