// Package fileserver implements the multilevel secure file-server of the
// paper's section 2: the single trusted component of the idealized
// distributed system in which "files are the only medium of information
// flow between users of different security classifications."
//
// The server runs one program, needs no operating system, and enforces
// Bell–LaPadula on every request. Its interface to the printer-server is
// the paper's example of a *concrete special service*: the ability to read
// and delete spool files of all classifications — precisely scoped to the
// spool area, rather than a blanket "trusted process" privilege.
package fileserver

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/distsys"
	"repro/internal/mls"
)

// file is one stored object.
type file struct {
	name    string
	label   mls.Label
	owner   string
	data    []byte
	spool   bool
	printed bool
}

// Server is the file-server component.
//
// Ports:
//
//	user_<name>     (in)  requests from user <name>'s machine
//	re_user_<name>  (out) replies to that machine
//	auth            (in)  clearance announcements from the auth service
//	printer         (in)  special-service requests from the printer-server
//	re_printer      (out) replies to the printer-server
type Server struct {
	name  string
	files map[string]*file
	mon   *mls.Monitor
	// known users (announced by auth) and their clearance.
	clearances map[string]mls.Label
	current    map[string]mls.Label
	spoolSeq   int
}

// New creates an empty file-server.
func New(name string) *Server {
	return &Server{
		name:       name,
		files:      map[string]*file{},
		mon:        mls.NewMonitor(),
		clearances: map[string]mls.Label{},
		current:    map[string]mls.Label{},
	}
}

// Name implements distsys.Component.
func (s *Server) Name() string { return s.name }

// Poll implements distsys.Component.
func (s *Server) Poll(distsys.Context) bool { return false }

// Monitor exposes the reference monitor (for audit inspection in tests and
// experiments).
func (s *Server) Monitor() *mls.Monitor { return s.mon }

// Handle implements distsys.Component.
func (s *Server) Handle(ctx distsys.Context, port string, m distsys.Message) {
	switch {
	case port == "auth":
		s.handleAuth(m)
	case port == "printer":
		s.handlePrinter(ctx, m)
	case strings.HasPrefix(port, "user_"):
		s.handleUser(ctx, port[5:], m)
	}
}

func (s *Server) handleAuth(m distsys.Message) {
	switch m.Kind {
	case "clearance":
		label, err := mls.ParseCompact(m.Arg("label"))
		if err != nil {
			return
		}
		user := m.Arg("user")
		s.clearances[user] = label
		s.current[user] = label
		if _, known := s.mon.Subject(user); !known {
			s.mon.AddSubject(user, label, false)
		}
	case "logout":
		// Clearance records persist; sessions are the terminals' concern.
	}
}

// reply sends a response to a user's machine.
func reply(ctx distsys.Context, user string, m distsys.Message) {
	ctx.Send("re_user_"+user, m)
}

func errMsg(why string) distsys.Message { return distsys.Msg("err", "why", why) }

func (s *Server) handleUser(ctx distsys.Context, user string, m distsys.Message) {
	clr, known := s.clearances[user]
	if !known {
		reply(ctx, user, errMsg("not authenticated"))
		return
	}
	switch m.Kind {
	case "setlevel":
		lvl, err := mls.ParseCompact(m.Arg("level"))
		if err != nil || !clr.Dominates(lvl) {
			reply(ctx, user, errMsg("level exceeds clearance"))
			return
		}
		s.current[user] = lvl
		s.mon.SetCurrent(user, lvl)
		reply(ctx, user, distsys.Msg("ok", "level", lvl.Compact()))

	case "create":
		name := m.Arg("name")
		if name == "" || strings.HasPrefix(name, "spool/") {
			reply(ctx, user, errMsg("bad name"))
			return
		}
		if _, exists := s.files[name]; exists {
			reply(ctx, user, errMsg("exists"))
			return
		}
		// New files are classified at the creator's current level.
		lbl := s.current[user]
		s.files[name] = &file{name: name, label: lbl, owner: user}
		s.mon.AddObject(name, lbl)
		reply(ctx, user, distsys.Msg("ok", "name", name, "label", lbl.Compact()))

	case "write":
		name := m.Arg("name")
		f, ok := s.files[name]
		if !ok {
			reply(ctx, user, errMsg("no such file"))
			return
		}
		if d := s.mon.Check(user, name, mls.Alter); !d.Granted {
			reply(ctx, user, errMsg(d.Rule))
			return
		}
		f.data = append([]byte(nil), m.Body...)
		reply(ctx, user, distsys.Msg("ok", "name", name))

	case "read":
		name := m.Arg("name")
		f, ok := s.files[name]
		if !ok {
			reply(ctx, user, errMsg("no such file"))
			return
		}
		if d := s.mon.Check(user, name, mls.Observe); !d.Granted {
			reply(ctx, user, errMsg(d.Rule))
			return
		}
		reply(ctx, user, distsys.Msg("data", "name", name,
			"label", f.label.Compact()).WithBody(f.data))

	case "delete":
		name := m.Arg("name")
		f, ok := s.files[name]
		if !ok {
			reply(ctx, user, errMsg("no such file"))
			return
		}
		// Deleting alters the object (and the directory): *-property.
		if d := s.mon.Check(user, name, mls.Alter); !d.Granted {
			reply(ctx, user, errMsg(d.Rule))
			return
		}
		_ = f
		delete(s.files, name)
		s.mon.RemoveObject(name)
		reply(ctx, user, distsys.Msg("ok", "name", name))

	case "list":
		// A listing reveals names and labels: only files the user's
		// current level dominates are visible.
		var names []string
		for n := range s.files {
			names = append(names, n)
		}
		sort.Strings(names)
		var b strings.Builder
		for _, n := range names {
			f := s.files[n]
			if s.current[user].Dominates(f.label) {
				fmt.Fprintf(&b, "%s %s %d\n", n, f.label, len(f.data))
			}
		}
		reply(ctx, user, distsys.Msg("listing").WithBody([]byte(b.String())))

	case "spool":
		// Copy a readable file into the spool area at the file's own
		// label; returns the spool id to hand to the printer-server.
		name := m.Arg("name")
		f, ok := s.files[name]
		if !ok {
			reply(ctx, user, errMsg("no such file"))
			return
		}
		if d := s.mon.Check(user, name, mls.Observe); !d.Granted {
			reply(ctx, user, errMsg(d.Rule))
			return
		}
		s.spoolSeq++
		id := fmt.Sprintf("spool/%s/%d", user, s.spoolSeq)
		sf := &file{name: id, label: f.label, owner: user,
			data: append([]byte(nil), f.data...), spool: true}
		s.files[id] = sf
		s.mon.AddObject(id, sf.label)
		reply(ctx, user, distsys.Msg("spooled", "id", id, "label", sf.label.Compact()))

	default:
		reply(ctx, user, errMsg("unknown request "+m.Kind))
	}
}

// handlePrinter implements the special services for the printer-server.
// They are deliberately narrow: they apply only to spool-area files, and
// the delete requires the job to have been fetched first. This narrowness
// is the paper's answer to trusted processes — "we can state precisely
// what the special services are that the printer-server requires of the
// file-server."
func (s *Server) handlePrinter(ctx distsys.Context, m distsys.Message) {
	switch m.Kind {
	case "readspool":
		id := m.Arg("id")
		f, ok := s.files[id]
		if !ok || !f.spool {
			ctx.Send("re_printer", distsys.Msg("err", "why", "no such spool", "id", id))
			return
		}
		f.printed = true
		ctx.Send("re_printer", distsys.Msg("spooldata", "id", id,
			"owner", f.owner, "label", f.label.Compact()).WithBody(f.data))
	case "delspool":
		id := m.Arg("id")
		f, ok := s.files[id]
		if !ok || !f.spool {
			ctx.Send("re_printer", distsys.Msg("err", "why", "no such spool", "id", id))
			return
		}
		if !f.printed {
			ctx.Send("re_printer", distsys.Msg("err", "why", "not printed", "id", id))
			return
		}
		delete(s.files, id)
		s.mon.RemoveObject(id)
		ctx.Send("re_printer", distsys.Msg("ok", "id", id))
	}
}

// FileCount reports how many files (including spool copies) exist.
func (s *Server) FileCount() int { return len(s.files) }

// SpoolCount reports how many spool files remain.
func (s *Server) SpoolCount() int {
	n := 0
	for _, f := range s.files {
		if f.spool {
			n++
		}
	}
	return n
}

// FileLabel returns a file's label for test inspection.
func (s *Server) FileLabel(name string) (mls.Label, bool) {
	f, ok := s.files[name]
	if !ok {
		return mls.Label{}, false
	}
	return f.label, true
}
