package minisue_test

import (
	"testing"

	"repro/internal/minisue"
	"repro/internal/model"
	"repro/internal/separability"
)

// The headline result: the secure MiniSUE — a system with the real
// kernel's structure (shared accumulator, save slots, interrupt flags) —
// satisfies all six conditions over its ENTIRE state space. This is a
// proof by explicit-state model checking, the executable analogue of the
// companion paper's hand proof.
func TestSecureMiniSUEProvenSeparable(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive proof skipped in -short mode")
	}
	sys := minisue.New(minisue.Secure)
	res := separability.CheckExhaustive(sys, 0)
	if !res.Passed() {
		for i, v := range res.Violations {
			if i > 4 {
				break
			}
			t.Logf("violation: %s", v)
		}
		t.Fatalf("secure MiniSUE failed: %s", res.Summary())
	}
	// Every condition was genuinely exercised, and at scale.
	for c := separability.Condition1; c <= separability.Condition6; c++ {
		if res.Checks[c] == 0 {
			t.Errorf("%s never checked", c)
		}
	}
	total := 0
	for _, n := range res.Checks {
		total += n
	}
	if total < 100000 {
		t.Errorf("only %d condition instances checked; expected an exhaustive sweep", total)
	}
	t.Logf("proved: %s", res.Summary())
}

func TestInsecureVariantsRefuted(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive refutation skipped in -short mode")
	}
	cases := []struct {
		v    minisue.Variant
		want separability.Condition
	}{
		// The SWAP register leak: the incoming regime's abstract
		// accumulator changes under the outgoing regime's operation.
		{minisue.RegisterLeak, separability.Condition2},
		// Misrouted interrupts: a regime's pending flag moves on inputs
		// that carry no component of its colour.
		{minisue.InterruptMisroute, separability.Condition4},
		// The shared cell: two states with equal Φc but different cell
		// contents diverge under the same INC.
		{minisue.SharedCell, separability.Condition1},
	}
	for _, tc := range cases {
		t.Run(minisue.VariantName(tc.v), func(t *testing.T) {
			sys := minisue.New(tc.v)
			res := separability.CheckExhaustive(sys, 0)
			if res.Passed() {
				t.Fatalf("insecure variant %s passed the exhaustive check",
					minisue.VariantName(tc.v))
			}
			found := false
			for _, got := range res.ViolatedConditions() {
				if got == tc.want {
					found = true
				}
			}
			if !found {
				t.Errorf("want %s among violations, got %v", tc.want, res.ViolatedConditions())
			}
		})
	}
}

// The randomized checker agrees with the exhaustive one on this system —
// calibrating the sampling approach used on the real kernel.
func TestRandomizedAgreesWithExhaustive(t *testing.T) {
	opt := separability.Options{Trials: 30, StepsPerTrial: 40, Seed: 5}
	if res := separability.CheckRandomized(minisue.New(minisue.Secure), opt); !res.Passed() {
		t.Errorf("randomized check failed the proven-secure system: %s", res.Summary())
	}
	for _, v := range []minisue.Variant{minisue.RegisterLeak, minisue.InterruptMisroute, minisue.SharedCell} {
		if res := separability.CheckRandomized(minisue.New(v), opt); res.Passed() {
			t.Errorf("randomized check missed %s", minisue.VariantName(v))
		}
	}
}

func TestBasicExecution(t *testing.T) {
	sys := minisue.New(minisue.Secure)
	// Run the boot state forward: red INC, OUT, SWAP; then black.
	if sys.Colour() != "red" {
		t.Fatalf("boot colour = %s", sys.Colour())
	}
	sys.Step() // red INC
	sys.Step() // red OUT
	if got := sys.ExtractOutput("red", sys.CurrentOutput()); got != "out=1" {
		t.Errorf("red out = %s", got)
	}
	sys.Step() // red SWAP
	if sys.Colour() != "black" {
		t.Errorf("after swap colour = %s", sys.Colour())
	}
	// Black's view is pristine.
	if got := sys.Abstract("black"); got != "acc=0;pc=0;out=0;pend=0" {
		t.Errorf("black abstract = %s", got)
	}
}

func TestInterruptDelivery(t *testing.T) {
	sys := minisue.New(minisue.Secure)
	sys.ApplyInput(sys.RandomInputMatching("red", nil, fixedRand{})) // no irq
	// Raise red's interrupt explicitly via enumerated input.
	var irqRed model.Input
	sys.EnumerateInputs(func(i model.Input) bool {
		if sys.ExtractInput("red", i) == "irq=1" && sys.ExtractInput("black", i) == "irq=0" {
			irqRed = i
			return false
		}
		return true
	})
	sys.ApplyInput(irqRed)
	if op := sys.NextOp(); op != "deliver:red" {
		t.Fatalf("next op = %s", op)
	}
	sys.Step()
	if got := sys.Abstract("red"); got != "acc=2;pc=0;out=0;pend=0" {
		t.Errorf("after delivery: %s", got)
	}
	// Black is untouched.
	if got := sys.Abstract("black"); got != "acc=0;pc=0;out=0;pend=0" {
		t.Errorf("black perturbed by red's interrupt: %s", got)
	}
}

// fixedRand is a degenerate model.Rand for deterministic test setup.
type fixedRand struct{}

func (fixedRand) Intn(int) int   { return 0 }
func (fixedRand) Uint32() uint32 { return 0 }
