package minisue_test

import (
	"errors"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/minisue"
	"repro/internal/model"
	"repro/internal/separability"
)

// The fleet-scale guarantee on the kernel-shaped model: cutting the
// exhaustive MiniSUE sweep into shards, run at any worker count, merges to
// a result identical to the single-threaded unsharded run — on the honest
// kernel and on planted-leak variants, so neither the verdict nor the
// counterexamples depend on how the fleet was cut.
func TestMiniSUEShardWorkerInvariance(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive matrix skipped in -short mode")
	}
	for _, tc := range []struct {
		name    string
		variant minisue.Variant
	}{
		{"honest", minisue.Secure},
		{"register-leak", minisue.RegisterLeak},
		{"interrupt-misroute", minisue.InterruptMisroute},
	} {
		t.Run(tc.name, func(t *testing.T) {
			build := func() model.Enumerable { return minisue.New(tc.variant) }
			base := separability.CheckExhaustiveWorkers(build(), 6, 1)
			for _, cut := range []struct{ shards, workers int }{
				{1, 4}, {2, 1}, {2, 4}, {4, 1}, {4, 4},
			} {
				srs := make([]*separability.ShardResult, cut.shards)
				for k := 0; k < cut.shards; k++ {
					sr, err := separability.CheckExhaustiveShard(build(),
						separability.ExhaustiveOptions{
							MaxViolations: 6, Workers: cut.workers,
							Shard: k, Shards: cut.shards,
						})
					if err != nil {
						t.Fatalf("shards=%d workers=%d shard %d: %v",
							cut.shards, cut.workers, k, err)
					}
					srs[k] = sr
				}
				got, err := separability.MergeShards(srs)
				if err != nil {
					t.Fatalf("shards=%d workers=%d: merge: %v", cut.shards, cut.workers, err)
				}
				if base.Summary() != got.Summary() {
					t.Errorf("shards=%d workers=%d: summary %q, want %q",
						cut.shards, cut.workers, got.Summary(), base.Summary())
				}
				if !reflect.DeepEqual(base.Violations, got.Violations) {
					t.Errorf("shards=%d workers=%d: violation lists differ (%d vs %d entries)",
						cut.shards, cut.workers, len(got.Violations), len(base.Violations))
				}
				if !reflect.DeepEqual(base.Checks, got.Checks) {
					t.Errorf("shards=%d workers=%d: check counts differ: %v vs %v",
						cut.shards, cut.workers, got.Checks, base.Checks)
				}
			}
		})
	}
}

// Kill-and-resume on the kernel-shaped model: abort a checkpointed shard
// mid-sweep, resume from the file, and the sealed artifact is identical to
// the uninterrupted shard.
func TestMiniSUECheckpointResume(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive resume differential skipped in -short mode")
	}
	build := func() model.Enumerable { return minisue.New(minisue.RegisterLeak) }
	opt := separability.ExhaustiveOptions{
		MaxViolations: 6, Workers: 2, Shard: 1, Shards: 2, Target: "minisue:register-leak",
	}
	clean, err := separability.CheckExhaustiveShard(build(), opt)
	if err != nil {
		t.Fatal(err)
	}
	abortOpt := opt
	abortOpt.Checkpoint = filepath.Join(t.TempDir(), "ck.json")
	abortOpt.CheckpointEvery = 4
	abortOpt.AbortAfterChunks = 100
	if _, err := separability.CheckExhaustiveShard(build(), abortOpt); !errors.Is(err, separability.ErrAborted) {
		t.Fatalf("abort run: got %v, want ErrAborted", err)
	}
	abortOpt.AbortAfterChunks = 0
	sr, err := separability.CheckExhaustiveShard(build(), abortOpt)
	if err != nil {
		t.Fatal(err)
	}
	if sr.ID != clean.ID || !reflect.DeepEqual(sr, clean) {
		t.Errorf("resumed artifact %s differs from uninterrupted %s", sr.ID, clean.ID)
	}
}
