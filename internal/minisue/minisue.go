// Package minisue is a kernel-shaped system small enough to *prove*
// separable by exhaustive model checking — the executable analogue of the
// formal proof Rushby gives for a SUE-like kernel in the companion paper
// [31]. Where package separability's ToySystem calibrates the checker with
// arbitrary condition violations, MiniSUE has the *structure* of the real
// kernel: a shared CPU accumulator that context switches through per-regime
// save slots, per-regime program counters, interrupt pending flags fed by
// coloured inputs, and per-regime output latches.
//
// The state space (≈74k states × 4 inputs) is enumerated completely, so
// CheckExhaustive constitutes a genuine proof that the six conditions hold
// of the secure variant — and the fault-injected variants (mirroring the
// real kernel's Leaks) are refuted with counterexamples.
package minisue

import (
	"fmt"

	"repro/internal/model"
)

// Variant selects the kernel behaviour.
type Variant int

// Variants. Each insecure one mirrors a kernel.Leaks entry.
const (
	// Secure is the correct mini separation kernel.
	Secure Variant = iota
	// RegisterLeak omits reloading the accumulator from the incoming
	// regime's save slot on SWAP (kernel.Leaks.RegisterLeak).
	RegisterLeak
	// InterruptMisroute posts incoming interrupts to the other regime's
	// pending flag (kernel.Leaks.InterruptMisroute).
	InterruptMisroute
	// SharedCell gives both regimes' OUT operation a common scratch cell:
	// writer's accumulator parity lands where the other's INC reads it
	// (kernel.Leaks.SharedScratch).
	SharedCell
)

// VariantName names a variant.
func VariantName(v Variant) string {
	switch v {
	case Secure:
		return "secure"
	case RegisterLeak:
		return "register-leak"
	case InterruptMisroute:
		return "interrupt-misroute"
	case SharedCell:
		return "shared-cell"
	}
	return "unknown"
}

// Each regime runs the fixed three-instruction loop INC; OUT; SWAP.
const progLen = 3

// state is the complete concrete machine state.
type state struct {
	cur  int    // which regime holds the CPU
	acc  int    // the shared CPU accumulator (2 bits)
	save [2]int // per-regime accumulator save slots
	pc   [2]int // per-regime program counters (0..2)
	out  [2]int // per-regime output latches
	pend [2]int // per-regime interrupt pending flags
	cell int    // kernel-internal cell (used by SharedCell)
}

// input is one stimulus: an interrupt request bit per regime.
type input struct{ irq [2]int }

// Colours of the two regimes.
var Colours = []model.Colour{"red", "black"}

func colourIndex(c model.Colour) int {
	if c == Colours[0] {
		return 0
	}
	return 1
}

// System implements model.Enumerable and model.Perturbable.
type System struct {
	Variant Variant
	s       state
}

// New creates a MiniSUE in its boot state.
func New(v Variant) *System { return &System{Variant: v} }

// Clone implements model.Replicable: the whole machine state is one value,
// so a copy of the System is an independent replica.
func (m *System) Clone() model.SharedSystem {
	c := *m
	return &c
}

// Colours implements model.SharedSystem.
func (m *System) Colours() []model.Colour {
	return append([]model.Colour(nil), Colours...)
}

// Save implements model.SharedSystem.
func (m *System) Save() model.StateRef { s := m.s; return &s }

// Restore implements model.SharedSystem.
func (m *System) Restore(r model.StateRef) { m.s = *r.(*state) }

// Colour implements model.SharedSystem: interrupts are delivered to the
// current regime first, so the active colour is always the current one.
func (m *System) Colour() model.Colour { return Colours[m.s.cur] }

// NextOp implements model.SharedSystem. The operation is determined by
// the current regime's own state: deliver a pending interrupt, or execute
// its next program step.
func (m *System) NextOp() model.OpID {
	c := m.s.cur
	if m.s.pend[c] == 1 {
		return model.OpID(fmt.Sprintf("deliver:%s", Colours[c]))
	}
	names := [progLen]string{"inc", "out", "swap"}
	return model.OpID(fmt.Sprintf("%s:%s", names[m.s.pc[c]], Colours[c]))
}

// Step implements model.SharedSystem.
func (m *System) Step() {
	c := m.s.cur
	if m.s.pend[c] == 1 {
		// Interrupt delivery: the regime's handler bumps the accumulator
		// by 2 (a visible, regime-local effect) and the flag clears.
		m.s.pend[c] = 0
		m.s.acc = (m.s.acc + 2) & 3
		return
	}
	switch m.s.pc[c] {
	case 0: // INC
		m.s.acc = (m.s.acc + 1) & 3
		if m.Variant == SharedCell {
			// Insecure: the increment also absorbs the shared cell.
			m.s.acc = (m.s.acc + m.s.cell) & 3
		}
		m.s.pc[c] = 1
	case 1: // OUT
		m.s.out[c] = m.s.acc
		if m.Variant == SharedCell {
			m.s.cell = m.s.acc & 1
		}
		m.s.pc[c] = 2
	case 2: // SWAP — the context switch through the save slots.
		m.s.save[c] = m.s.acc
		m.s.cur = 1 - c
		if m.Variant != RegisterLeak {
			m.s.acc = m.s.save[1-c]
		}
		// (RegisterLeak: the incoming regime sees the outgoing
		// accumulator — the paper's exact SWAP hazard.)
		m.s.pc[c] = 0
	}
}

// ApplyInput implements model.SharedSystem: each regime's input bit raises
// its interrupt pending flag.
func (m *System) ApplyInput(in model.Input) {
	if in == nil {
		return
	}
	i := in.(input)
	for c := 0; c < 2; c++ {
		target := c
		if m.Variant == InterruptMisroute {
			target = 1 - c
		}
		if i.irq[c] == 1 {
			m.s.pend[target] = 1
		}
	}
}

// CurrentOutput implements model.SharedSystem.
func (m *System) CurrentOutput() model.Output { s := m.s; return &s }

// Abstract implements model.SharedSystem: a regime's abstract machine is
// its accumulator (live or saved), program counter, output latch and
// pending flag — exactly the per-regime view of the real adapter.
func (m *System) Abstract(c model.Colour) string {
	i := colourIndex(c)
	acc := m.s.save[i]
	if m.s.cur == i {
		acc = m.s.acc
	}
	return fmt.Sprintf("acc=%d;pc=%d;out=%d;pend=%d", acc, m.s.pc[i], m.s.out[i], m.s.pend[i])
}

// ExtractInput implements model.SharedSystem.
func (m *System) ExtractInput(c model.Colour, in model.Input) string {
	if in == nil {
		return ""
	}
	return fmt.Sprintf("irq=%d", in.(input).irq[colourIndex(c)])
}

// ExtractOutput implements model.SharedSystem.
func (m *System) ExtractOutput(c model.Colour, o model.Output) string {
	return fmt.Sprintf("out=%d", o.(*state).out[colourIndex(c)])
}

// EnumerateStates implements model.Enumerable: every concrete state.
func (m *System) EnumerateStates(fn func(model.StateRef) bool) {
	cells := 1
	if m.Variant == SharedCell {
		cells = 2
	}
	for cur := 0; cur < 2; cur++ {
		for acc := 0; acc < 4; acc++ {
			for s0 := 0; s0 < 4; s0++ {
				for s1 := 0; s1 < 4; s1++ {
					for p0 := 0; p0 < progLen; p0++ {
						for p1 := 0; p1 < progLen; p1++ {
							for o0 := 0; o0 < 4; o0++ {
								for o1 := 0; o1 < 4; o1++ {
									for q0 := 0; q0 < 2; q0++ {
										for q1 := 0; q1 < 2; q1++ {
											for cl := 0; cl < cells; cl++ {
												s := state{cur: cur, acc: acc,
													save: [2]int{s0, s1},
													pc:   [2]int{p0, p1},
													out:  [2]int{o0, o1},
													pend: [2]int{q0, q1},
													cell: cl}
												if !fn(&s) {
													return
												}
											}
										}
									}
								}
							}
						}
					}
				}
			}
		}
	}
}

// EnumerateInputs implements model.Enumerable.
func (m *System) EnumerateInputs(fn func(model.Input) bool) {
	for r := 0; r < 2; r++ {
		for b := 0; b < 2; b++ {
			if !fn(input{irq: [2]int{r, b}}) {
				return
			}
		}
	}
}

// Randomize implements model.Perturbable.
func (m *System) Randomize(r model.Rand) {
	m.s = state{
		cur:  r.Intn(2),
		acc:  r.Intn(4),
		save: [2]int{r.Intn(4), r.Intn(4)},
		pc:   [2]int{r.Intn(progLen), r.Intn(progLen)},
		out:  [2]int{r.Intn(4), r.Intn(4)},
		pend: [2]int{r.Intn(2), r.Intn(2)},
	}
	if m.Variant == SharedCell {
		m.s.cell = r.Intn(2)
	}
}

// PerturbOutside implements model.Perturbable.
func (m *System) PerturbOutside(c model.Colour, r model.Rand) {
	o := 1 - colourIndex(c)
	if m.s.cur == o {
		m.s.acc = r.Intn(4)
	} else {
		m.s.save[o] = r.Intn(4)
	}
	m.s.pc[o] = r.Intn(progLen)
	m.s.out[o] = r.Intn(4)
	// pend[o] stays: flipping it would not change Φc, but it is part of
	// the other colour's control state the checker samples anyway.
	m.s.cell = r.Intn(2)
}

// RandomInput implements model.Perturbable.
func (m *System) RandomInput(r model.Rand) model.Input {
	return input{irq: [2]int{r.Intn(2), r.Intn(2)}}
}

// RandomInputMatching implements model.Perturbable.
func (m *System) RandomInputMatching(c model.Colour, in model.Input, r model.Rand) model.Input {
	i := colourIndex(c)
	out := input{irq: [2]int{r.Intn(2), r.Intn(2)}}
	if in != nil {
		out.irq[i] = in.(input).irq[i]
	} else {
		out.irq[i] = 0
	}
	return out
}
