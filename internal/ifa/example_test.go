package ifa_test

import (
	"fmt"

	"repro/internal/ifa"
)

// The paper's section-4 argument in four lines: the SWAP a separation
// kernel must perform is rejected by information flow analysis even
// though it is manifestly secure.
func ExampleCertify() {
	swap := ifa.SwapImplementation(2)
	report := ifa.Certify(swap, ifa.Isolation("RED", "BLACK"))
	fmt.Println(report.Certified())
	fmt.Println(report.Violations[0])
	// Output:
	// false
	// explicit flow BLACK -> RED in "reg0 := blacksave0"
}

// Implicit flows through control structure are caught exactly as Denning
// & Denning prescribe.
func ExampleCertify_implicitFlow() {
	p := ifa.NewProgram("leak").
		Declare(ifa.Low, "l").
		Declare(ifa.High, "h").
		Add(ifa.If{Cond: ifa.V("h"), Then: []ifa.Stmt{ifa.Set("l", ifa.N(1))}})
	report := ifa.Certify(p, ifa.TwoPoint())
	fmt.Println(report.Violations[0])
	// Output:
	// implicit flow HIGH -> LOW in "l := 1"
}

func ExampleIsolation() {
	l := ifa.Isolation("RED", "BLACK")
	fmt.Println(l.Leq("RED", "BLACK"))
	fmt.Println(l.Lub("RED", "BLACK"))
	// Output:
	// false
	// ⊤
}
