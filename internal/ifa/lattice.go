// Package ifa implements Information Flow Analysis — the verification
// technique the paper argues is unsuitable for separation kernels — in the
// style of Denning & Denning's certification semantics [8] as used for the
// MITRE kernels [20] and KSOS [7,10].
//
// The analysis is syntactic: every variable carries a security class from a
// lattice, the class of an expression is the least upper bound of its
// operands, and an assignment is certified only if the expression's class
// (joined with the implicit-flow class of the governing guards) flows to
// the destination's class. Values are never consulted — which is exactly
// why IFA rejects a separation kernel's SWAP operation even though SWAP is,
// in Rushby's words, "manifestly secure". Experiment E2 reproduces that
// mismatch executably.
package ifa

import (
	"fmt"
	"sort"
	"strings"
)

// Class is a security class (a "colour" in the paper's vocabulary).
type Class string

// Lattice is a finite security lattice.
type Lattice interface {
	// Leq reports whether information may flow from class a to class b.
	Leq(a, b Class) bool
	// Lub returns the least upper bound of two classes.
	Lub(a, b Class) Class
	// Bottom is the class of constants: flows anywhere.
	Bottom() Class
	// Classes enumerates the lattice's elements.
	Classes() []Class
}

// twoPoint is the classic LOW ⊑ HIGH lattice.
type twoPoint struct{}

// Low and High are the two classes of the TwoPoint lattice.
const (
	Low  Class = "LOW"
	High Class = "HIGH"
)

// TwoPoint returns the LOW ⊑ HIGH lattice.
func TwoPoint() Lattice { return twoPoint{} }

func (twoPoint) Leq(a, b Class) bool { return a == b || (a == Low && b == High) }

func (twoPoint) Lub(a, b Class) Class {
	if a == High || b == High {
		return High
	}
	return Low
}

func (twoPoint) Bottom() Class { return Low }

func (twoPoint) Classes() []Class { return []Class{Low, High} }

// isolation is the lattice for separation: a set of mutually incomparable
// atoms (one per regime) with a shared bottom (constants, "uncoloured") and
// a top (the join of any two distinct atoms, from which nothing may flow
// back down). It expresses "RED values may not reach BLACK variables and
// vice versa".
type isolation struct {
	atoms map[Class]bool
}

// IsolationBottom and IsolationTop bound the isolation lattice.
const (
	IsolationBottom Class = "⊥"
	IsolationTop    Class = "⊤"
)

// Isolation builds the separation lattice over the given regime colours.
func Isolation(atoms ...Class) Lattice {
	m := map[Class]bool{}
	for _, a := range atoms {
		m[a] = true
	}
	return isolation{atoms: m}
}

func (l isolation) Leq(a, b Class) bool {
	switch {
	case a == b:
		return true
	case a == IsolationBottom:
		return true
	case b == IsolationTop:
		return true
	}
	return false
}

func (l isolation) Lub(a, b Class) Class {
	switch {
	case a == b:
		return a
	case a == IsolationBottom:
		return b
	case b == IsolationBottom:
		return a
	}
	return IsolationTop
}

func (l isolation) Bottom() Class { return IsolationBottom }

func (l isolation) Classes() []Class {
	out := []Class{IsolationBottom}
	var atoms []string
	for a := range l.atoms {
		atoms = append(atoms, string(a))
	}
	sort.Strings(atoms)
	for _, a := range atoms {
		out = append(out, Class(a))
	}
	return append(out, IsolationTop)
}

// Subset lattice: classes are sets of categories; flow = subset. Used by
// the MLS substrate's category component and handy for tests.
type subset struct {
	cats []string
}

// Subsets returns the powerset lattice over the given category names.
// Classes are rendered canonically as "{a,b}".
func Subsets(cats ...string) Lattice {
	sorted := append([]string(nil), cats...)
	sort.Strings(sorted)
	return subset{cats: sorted}
}

func parseSet(c Class) map[string]bool {
	s := strings.Trim(string(c), "{}")
	m := map[string]bool{}
	if s == "" {
		return m
	}
	for _, part := range strings.Split(s, ",") {
		m[strings.TrimSpace(part)] = true
	}
	return m
}

func formatSet(m map[string]bool) Class {
	var names []string
	for n := range m {
		names = append(names, n)
	}
	sort.Strings(names)
	return Class("{" + strings.Join(names, ",") + "}")
}

// SetClass builds a subset-lattice class from category names.
func SetClass(cats ...string) Class {
	m := map[string]bool{}
	for _, c := range cats {
		m[c] = true
	}
	return formatSet(m)
}

func (subset) Leq(a, b Class) bool {
	bm := parseSet(b)
	for n := range parseSet(a) {
		if !bm[n] {
			return false
		}
	}
	return true
}

func (subset) Lub(a, b Class) Class {
	m := parseSet(a)
	for n := range parseSet(b) {
		m[n] = true
	}
	return formatSet(m)
}

func (subset) Bottom() Class { return "{}" }

func (l subset) Classes() []Class {
	n := len(l.cats)
	if n > 16 {
		panic(fmt.Sprintf("ifa: subset lattice over %d categories is too large to enumerate", n))
	}
	var out []Class
	for bits := 0; bits < 1<<n; bits++ {
		m := map[string]bool{}
		for i, c := range l.cats {
			if bits&(1<<i) != 0 {
				m[c] = true
			}
		}
		out = append(out, formatSet(m))
	}
	return out
}
