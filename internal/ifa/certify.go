package ifa

import "fmt"

// Violation is one uncertifiable flow.
type Violation struct {
	Stmt     string // rendering of the offending statement
	From     Class  // class of the flowing information (expression ⊔ pc)
	To       Class  // class of the destination variable
	Implicit bool   // true when the guard context contributed the flow
}

func (v Violation) String() string {
	kind := "explicit"
	if v.Implicit {
		kind = "implicit"
	}
	return fmt.Sprintf("%s flow %s -> %s in %q", kind, v.From, v.To, v.Stmt)
}

// Report is the outcome of certifying one program.
type Report struct {
	Program    string
	Violations []Violation
	// Assignments counts certified assignment statements.
	Assignments int
}

// Certified reports whether the program passed.
func (r *Report) Certified() bool { return len(r.Violations) == 0 }

// Summary renders a one-line outcome.
func (r *Report) Summary() string {
	if r.Certified() {
		return fmt.Sprintf("%s: CERTIFIED (%d assignments)", r.Program, r.Assignments)
	}
	return fmt.Sprintf("%s: REJECTED (%d violations, first: %s)",
		r.Program, len(r.Violations), r.Violations[0])
}

// Certify runs Denning-style information flow certification of the program
// under the lattice: the class of every expression is the join of its
// operands, and an assignment x := e under guard context pc is certified
// iff class(e) ⊔ pc ⊑ class(x).
func Certify(p *Program, l Lattice) *Report {
	c := &certifier{l: l, p: p, rep: &Report{Program: p.Name}}
	c.block(p.Body, l.Bottom())
	return c.rep
}

type certifier struct {
	l   Lattice
	p   *Program
	rep *Report
}

func (c *certifier) exprClass(e Expr) Class {
	switch e := e.(type) {
	case VarRef:
		if cl, ok := c.p.Vars[e.Name]; ok {
			return cl
		}
		// Undeclared variables are a specification error; treating them as
		// top is the conservative choice.
		return c.topOf()
	case Const:
		return c.l.Bottom()
	case BinOp:
		return c.l.Lub(c.exprClass(e.L), c.exprClass(e.R))
	}
	return c.topOf()
}

// topOf computes the lattice's top as the join of all classes.
func (c *certifier) topOf() Class {
	top := c.l.Bottom()
	for _, cl := range c.l.Classes() {
		top = c.l.Lub(top, cl)
	}
	return top
}

func (c *certifier) block(ss []Stmt, pc Class) {
	for _, s := range ss {
		c.stmt(s, pc)
	}
}

func (c *certifier) stmt(s Stmt, pc Class) {
	switch s := s.(type) {
	case Assign:
		c.rep.Assignments++
		srcClass := c.exprClass(s.Src)
		flow := c.l.Lub(srcClass, pc)
		dst, ok := c.p.Vars[s.Dst]
		if !ok {
			dst = c.l.Bottom() // undeclared destination: strictest reading
		}
		if !c.l.Leq(flow, dst) {
			// The flow is implicit when the explicit part alone would have
			// been fine and the guard context pushed it over.
			c.rep.Violations = append(c.rep.Violations, Violation{
				Stmt:     s.stmtString(""),
				From:     flow,
				To:       dst,
				Implicit: c.l.Leq(srcClass, dst),
			})
		}
	case If:
		inner := c.l.Lub(pc, c.exprClass(s.Cond))
		c.block(s.Then, inner)
		c.block(s.Else, inner)
	case While:
		inner := c.l.Lub(pc, c.exprClass(s.Cond))
		c.block(s.Body, inner)
	}
}
