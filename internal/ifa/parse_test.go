package ifa_test

import (
	"strings"
	"testing"

	"repro/internal/ifa"
)

func TestParseSimpleProgram(t *testing.T) {
	prog, err := ifa.Parse(`
program demo
var h, h2 : HIGH
var l : LOW
l := 3
h := l + 1
h2 := h * 2
`)
	if err != nil {
		t.Fatal(err)
	}
	if prog.Name != "demo" {
		t.Errorf("name = %q", prog.Name)
	}
	if prog.Vars["h"] != ifa.High || prog.Vars["l"] != ifa.Low {
		t.Errorf("vars = %v", prog.Vars)
	}
	rep := ifa.Certify(prog, ifa.TwoPoint())
	if !rep.Certified() {
		t.Errorf("upward-only program rejected: %s", rep.Summary())
	}
	if rep.Assignments != 3 {
		t.Errorf("assignments = %d", rep.Assignments)
	}
}

func TestParseControlFlow(t *testing.T) {
	prog, err := ifa.Parse(`
program leaky
var h : HIGH
var l : LOW
if h {
    l := 1
}
while h {
    h := h - 1
}
`)
	if err != nil {
		t.Fatal(err)
	}
	rep := ifa.Certify(prog, ifa.TwoPoint())
	if rep.Certified() {
		t.Fatal("implicit flow certified")
	}
	if !rep.Violations[0].Implicit {
		t.Errorf("violation not implicit: %v", rep.Violations[0])
	}
}

func TestParseIfElse(t *testing.T) {
	prog, err := ifa.Parse(`
program branches
var a, b : LOW
if a {
    b := 1
}
else {
    b := 2
}
b := a + 1
`)
	if err != nil {
		t.Fatal(err)
	}
	if rep := ifa.Certify(prog, ifa.TwoPoint()); !rep.Certified() {
		t.Errorf("low-only branches rejected: %s", rep.Summary())
	}
	if rep := ifa.Certify(prog, ifa.TwoPoint()); rep.Assignments != 3 {
		t.Errorf("assignments = %d, want 3", rep.Assignments)
	}
}

func TestParseParensAndComments(t *testing.T) {
	prog, err := ifa.Parse(`
program expr // with a comment
var x, y : LOW
// whole-line comment
x := (x + 1) * (y - 2)
`)
	if err != nil {
		t.Fatal(err)
	}
	if len(prog.Body) != 1 {
		t.Fatalf("body = %v", prog.Body)
	}
	if !strings.Contains(prog.String(), "((x + 1) * (y - 2))") {
		t.Errorf("expression mangled: %s", prog.String())
	}
}

func TestParseRoundTripsCanonicalPrograms(t *testing.T) {
	// The built-in specifications can be expressed in the textual syntax
	// and yield the same verdicts.
	src := `
program swap_impl
var reg0, reg1, redsave0, redsave1 : RED
var blacksave0, blacksave1 : BLACK
redsave0 := reg0
redsave1 := reg1
reg0 := blacksave0
reg1 := blacksave1
`
	prog, err := ifa.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	rep := ifa.Certify(prog, ifa.Isolation("RED", "BLACK"))
	if rep.Certified() {
		t.Fatal("parsed SWAP certified")
	}
	if len(rep.Violations) != 2 {
		t.Errorf("violations = %d, want 2", len(rep.Violations))
	}
}

func TestParseErrors(t *testing.T) {
	cases := []string{
		"var x : LOW",                // no program header
		"program p\nvar x LOW",       // missing colon
		"program p\nbogus statement", // unparsable
		"program p\nif x {",          // unterminated block
		"program p\nx := 1 +",        // dangling operator
		"program p\nx := (1",         // missing paren
		"program p\n1x := 2",         // bad target
		"program p\nx := y ? 1",      // bad character
	}
	for _, src := range cases {
		if _, err := ifa.Parse(src); err == nil {
			t.Errorf("accepted %q", src)
		}
	}
}
