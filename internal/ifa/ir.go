package ifa

import (
	"fmt"
	"strings"
)

// The IR is a small structured imperative language, rich enough to express
// kernel specifications (register save/restore, buffer copies, guarded
// updates) and the trusted-component specifications the distributed design
// verifies with IFA.

// Expr is an expression.
type Expr interface {
	exprString() string
}

// VarRef reads a variable.
type VarRef struct{ Name string }

func (v VarRef) exprString() string { return v.Name }

// Const is a literal; its class is the lattice bottom.
type Const struct{ Value int }

func (c Const) exprString() string { return fmt.Sprintf("%d", c.Value) }

// BinOp combines two expressions; the operator is irrelevant to flow.
type BinOp struct {
	Op   string
	L, R Expr
}

func (b BinOp) exprString() string {
	return "(" + b.L.exprString() + " " + b.Op + " " + b.R.exprString() + ")"
}

// Stmt is a statement.
type Stmt interface {
	stmtString(indent string) string
}

// Assign stores an expression into a variable.
type Assign struct {
	Dst string
	Src Expr
}

func (a Assign) stmtString(ind string) string {
	return ind + a.Dst + " := " + a.Src.exprString()
}

// If branches on a condition; both arms are analysed under the condition's
// implicit-flow class.
type If struct {
	Cond Expr
	Then []Stmt
	Else []Stmt
}

func (s If) stmtString(ind string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%sif %s {\n", ind, s.Cond.exprString())
	for _, st := range s.Then {
		b.WriteString(st.stmtString(ind+"  ") + "\n")
	}
	if len(s.Else) > 0 {
		b.WriteString(ind + "} else {\n")
		for _, st := range s.Else {
			b.WriteString(st.stmtString(ind+"  ") + "\n")
		}
	}
	b.WriteString(ind + "}")
	return b.String()
}

// While loops under its condition's implicit-flow class.
type While struct {
	Cond Expr
	Body []Stmt
}

func (s While) stmtString(ind string) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%swhile %s {\n", ind, s.Cond.exprString())
	for _, st := range s.Body {
		b.WriteString(st.stmtString(ind+"  ") + "\n")
	}
	b.WriteString(ind + "}")
	return b.String()
}

// Program is a set of classified variables and a statement body.
type Program struct {
	Name string
	Vars map[string]Class
	Body []Stmt
}

// NewProgram creates an empty program.
func NewProgram(name string) *Program {
	return &Program{Name: name, Vars: map[string]Class{}}
}

// Declare adds variables of a class.
func (p *Program) Declare(class Class, names ...string) *Program {
	for _, n := range names {
		p.Vars[n] = class
	}
	return p
}

// Add appends statements to the body.
func (p *Program) Add(ss ...Stmt) *Program {
	p.Body = append(p.Body, ss...)
	return p
}

// String renders the program.
func (p *Program) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "program %s\n", p.Name)
	for n, c := range p.Vars {
		fmt.Fprintf(&b, "  var %s : %s\n", n, c)
	}
	for _, s := range p.Body {
		b.WriteString(s.stmtString("  ") + "\n")
	}
	return b.String()
}

// Convenience constructors.

// V references a variable.
func V(name string) Expr { return VarRef{Name: name} }

// N is a numeric literal.
func N(v int) Expr { return Const{Value: v} }

// Op builds a binary expression.
func Op(op string, l, r Expr) Expr { return BinOp{Op: op, L: l, R: r} }

// Set builds an assignment.
func Set(dst string, src Expr) Stmt { return Assign{Dst: dst, Src: src} }
