package ifa_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/ifa"
)

func TestTwoPointLatticeLaws(t *testing.T) {
	l := ifa.TwoPoint()
	if !l.Leq(ifa.Low, ifa.High) {
		t.Error("LOW must flow to HIGH")
	}
	if l.Leq(ifa.High, ifa.Low) {
		t.Error("HIGH must not flow to LOW")
	}
	if got := l.Lub(ifa.Low, ifa.High); got != ifa.High {
		t.Errorf("lub(LOW,HIGH) = %s", got)
	}
	if l.Bottom() != ifa.Low {
		t.Error("bottom must be LOW")
	}
}

func TestIsolationLatticeLaws(t *testing.T) {
	l := ifa.Isolation("RED", "BLACK", "CRYPTO")
	if l.Leq("RED", "BLACK") || l.Leq("BLACK", "RED") {
		t.Error("atoms must be incomparable")
	}
	if !l.Leq(ifa.IsolationBottom, "RED") {
		t.Error("bottom flows to atoms")
	}
	if !l.Leq("RED", ifa.IsolationTop) {
		t.Error("atoms flow to top")
	}
	if got := l.Lub("RED", "BLACK"); got != ifa.IsolationTop {
		t.Errorf("lub of distinct atoms = %s, want top", got)
	}
	if got := l.Lub("RED", "RED"); got != "RED" {
		t.Errorf("lub(RED,RED) = %s", got)
	}
}

func TestSubsetLatticeLaws(t *testing.T) {
	l := ifa.Subsets("nato", "crypto", "nuclear")
	a := ifa.SetClass("nato")
	ab := ifa.SetClass("nato", "crypto")
	b := ifa.SetClass("crypto")
	if !l.Leq(a, ab) || !l.Leq(b, ab) {
		t.Error("subset must flow to superset")
	}
	if l.Leq(ab, a) {
		t.Error("superset must not flow to subset")
	}
	if got := l.Lub(a, b); got != ab {
		t.Errorf("lub = %s, want %s", got, ab)
	}
	if got := len(l.Classes()); got != 8 {
		t.Errorf("powerset over 3 categories has %d classes, want 8", got)
	}
}

// Property: every lattice satisfies partial-order and lub laws on its
// enumerated classes.
func TestLatticePropertyLaws(t *testing.T) {
	lattices := map[string]ifa.Lattice{
		"two-point": ifa.TwoPoint(),
		"isolation": ifa.Isolation("R", "B", "G"),
		"subsets":   ifa.Subsets("x", "y"),
	}
	for name, l := range lattices {
		cs := l.Classes()
		pick := func(i int) ifa.Class { return cs[((i%len(cs))+len(cs))%len(cs)] }
		// Reflexivity, lub upper-bound and commutativity, bottom identity.
		prop := func(i, j int) bool {
			a, b := pick(i), pick(j)
			lub := l.Lub(a, b)
			return l.Leq(a, a) &&
				l.Leq(a, lub) && l.Leq(b, lub) &&
				l.Lub(a, b) == l.Lub(b, a) &&
				l.Lub(a, l.Bottom()) == a &&
				l.Leq(l.Bottom(), a)
		}
		if err := quick.Check(prop, nil); err != nil {
			t.Errorf("lattice %s violates laws: %v", name, err)
		}
		// Transitivity (exhaustive: the lattices are tiny).
		for _, a := range cs {
			for _, b := range cs {
				for _, c := range cs {
					if l.Leq(a, b) && l.Leq(b, c) && !l.Leq(a, c) {
						t.Errorf("lattice %s: transitivity fails %s,%s,%s", name, a, b, c)
					}
				}
			}
		}
	}
}

func TestCertifyDirectFlow(t *testing.T) {
	p := ifa.NewProgram("up-ok").
		Declare(ifa.Low, "l").
		Declare(ifa.High, "h").
		Add(ifa.Set("h", ifa.V("l"))) // LOW -> HIGH: fine
	if rep := ifa.Certify(p, ifa.TwoPoint()); !rep.Certified() {
		t.Errorf("upward flow rejected: %s", rep.Summary())
	}

	p2 := ifa.NewProgram("down-bad").
		Declare(ifa.Low, "l").
		Declare(ifa.High, "h").
		Add(ifa.Set("l", ifa.V("h"))) // HIGH -> LOW: violation
	rep := ifa.Certify(p2, ifa.TwoPoint())
	if rep.Certified() {
		t.Fatal("downward flow certified")
	}
	if v := rep.Violations[0]; v.Implicit {
		t.Error("direct flow misreported as implicit")
	}
}

func TestCertifyImplicitFlow(t *testing.T) {
	// if h { l := 1 } leaks h into l through control flow.
	p := ifa.NewProgram("implicit").
		Declare(ifa.Low, "l").
		Declare(ifa.High, "h").
		Add(ifa.If{Cond: ifa.V("h"), Then: []ifa.Stmt{ifa.Set("l", ifa.N(1))}})
	rep := ifa.Certify(p, ifa.TwoPoint())
	if rep.Certified() {
		t.Fatal("implicit flow certified")
	}
	if v := rep.Violations[0]; !v.Implicit {
		t.Errorf("implicit flow misreported: %+v", v)
	}
}

func TestCertifyWhileGuard(t *testing.T) {
	p := ifa.NewProgram("while-leak").
		Declare(ifa.Low, "l").
		Declare(ifa.High, "h").
		Add(ifa.While{Cond: ifa.V("h"), Body: []ifa.Stmt{
			ifa.Set("l", ifa.Op("+", ifa.V("l"), ifa.N(1))),
		}})
	if rep := ifa.Certify(p, ifa.TwoPoint()); rep.Certified() {
		t.Error("loop-guard leak certified")
	}
}

func TestCertifyExpressionJoin(t *testing.T) {
	// l2 := l + h has class HIGH and must not land in LOW.
	p := ifa.NewProgram("join").
		Declare(ifa.Low, "l", "l2").
		Declare(ifa.High, "h").
		Add(ifa.Set("l2", ifa.Op("+", ifa.V("l"), ifa.V("h"))))
	if rep := ifa.Certify(p, ifa.TwoPoint()); rep.Certified() {
		t.Error("joined HIGH expression certified into LOW")
	}
}

func TestCertifyConstantsFlowAnywhere(t *testing.T) {
	p := ifa.NewProgram("const").
		Declare(ifa.Low, "l").
		Declare(ifa.High, "h").
		Add(ifa.Set("l", ifa.N(7)), ifa.Set("h", ifa.N(9)))
	if rep := ifa.Certify(p, ifa.TwoPoint()); !rep.Certified() {
		t.Errorf("constants rejected: %s", rep.Summary())
	}
}

// The paper's central example: IFA rejects the manifestly secure SWAP.
func TestIFARejectsSwapImplementation(t *testing.T) {
	p := ifa.SwapImplementation(6)
	rep := ifa.Certify(p, ifa.Isolation(ifa.SwapColours...))
	if rep.Certified() {
		t.Fatal("IFA certified the SWAP implementation; the paper's argument requires rejection")
	}
	// Exactly the reload-from-BLACK assignments must be flagged.
	if got, want := len(rep.Violations), 6; got != want {
		t.Errorf("violations = %d, want %d (one per register reload)", got, want)
	}
	for _, v := range rep.Violations {
		if !strings.Contains(v.Stmt, "blacksave") {
			t.Errorf("unexpected violation site: %s", v)
		}
		if v.From != "BLACK" || v.To != "RED" {
			t.Errorf("violation should be BLACK->RED, got %s->%s", v.From, v.To)
		}
	}
}

// ...while the high-level specification (per-regime registers) certifies.
func TestIFACertifiesSwapHighLevelSpec(t *testing.T) {
	p := ifa.SwapHighLevelSpec(6)
	rep := ifa.Certify(p, ifa.Isolation(ifa.SwapColours...))
	if !rep.Certified() {
		t.Errorf("high-level SWAP spec rejected: %s", rep.Summary())
	}
}

// The spooler needs a *-property violation: IFA (correctly) refuses it,
// which in a kernelized system forces "trusted process" status.
func TestIFARejectsTrustedSpooler(t *testing.T) {
	rep := ifa.Certify(ifa.SpoolerTrusted(), ifa.TwoPoint())
	if rep.Certified() {
		t.Fatal("spooler write-down certified; it must be rejected")
	}
}

// The file-server, by contrast, is an "ordinary program" that fits the
// model: IFA certifies its specification.
func TestIFACertifiesFileServerSpec(t *testing.T) {
	rep := ifa.Certify(ifa.FileServerSpec(), ifa.TwoPoint())
	if !rep.Certified() {
		t.Errorf("file-server spec rejected: %s", rep.Summary())
	}
}

func TestProgramRendering(t *testing.T) {
	p := ifa.SwapImplementation(2)
	s := p.String()
	for _, want := range []string{"swap-implementation", "reg0 := blacksave0", "redsave1 := reg1"} {
		if !strings.Contains(s, want) {
			t.Errorf("program rendering missing %q:\n%s", want, s)
		}
	}
}

// The censor gradient: IFA rejects the format and canonical censors (both
// pass red-derived lengths to the network, however narrowed) and certifies
// the strict censor — whose measured covert capacity package snfe shows to
// be exactly zero.
func TestIFACensorGradient(t *testing.T) {
	l := ifa.TwoPoint()
	if rep := ifa.Certify(ifa.CensorFormatSpec(), l); rep.Certified() {
		t.Error("format censor certified; its length pass-through is a HIGH->LOW flow")
	}
	if rep := ifa.Certify(ifa.CensorCanonSpec(), l); rep.Certified() {
		t.Error("canonical censor certified; the quantized length is still a HIGH->LOW flow")
	}
	if rep := ifa.Certify(ifa.CensorStrictSpec(), l); !rep.Certified() {
		t.Errorf("strict censor rejected: %s", rep.Summary())
	}
}
