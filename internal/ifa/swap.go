package ifa

import "fmt"

// This file encodes the paper's central IFA counterexample — the SWAP
// operation of a separation kernel — together with the high-level
// specification that IFA *can* certify, reproducing the section 4 argument:
//
//	"Verification by IFA requires that operations invoked by RED may only
//	 access RED values — but it is evident that the SWAP operation *must*
//	 access *both* RED and BLACK values. It follows that IFA cannot verify
//	 the security of a SWAP operation, even though it is manifestly
//	 secure."
//
// Package separability demonstrates the other half of the argument: the
// very same context-switch logic, running in the real SUE-Go kernel,
// passes Proof of Separability.

// SwapColours are the two regimes of the canonical example.
var SwapColours = []Class{"RED", "BLACK"}

// SwapImplementation models the machine-level SWAP invoked by RED: the
// shared general registers (RED-classified while RED is running) are saved
// to the RED save area and reloaded from the BLACK save area.
func SwapImplementation(nregs int) *Program {
	p := NewProgram("swap-implementation")
	for i := 0; i < nregs; i++ {
		p.Declare("RED", fmt.Sprintf("reg%d", i))
		p.Declare("RED", fmt.Sprintf("redsave%d", i))
		p.Declare("BLACK", fmt.Sprintf("blacksave%d", i))
	}
	for i := 0; i < nregs; i++ {
		p.Add(Set(fmt.Sprintf("redsave%d", i), V(fmt.Sprintf("reg%d", i))))
	}
	for i := 0; i < nregs; i++ {
		// The manifestly secure but syntactically uncertifiable step:
		// the (currently RED) registers receive BLACK values, which is
		// precisely what a context switch is.
		p.Add(Set(fmt.Sprintf("reg%d", i), V(fmt.Sprintf("blacksave%d", i))))
	}
	return p
}

// SwapHighLevelSpec models the same operation at the level of abstraction
// the paper says conventional practice retreats to: each regime has its own
// register set, and SWAP merely toggles a scheduling variable internal to
// the kernel. IFA certifies this trivially — and the entire verification
// burden silently moves to the unperformed proof that the implementation
// refines the specification.
func SwapHighLevelSpec(nregs int) *Program {
	p := NewProgram("swap-high-level-spec")
	p.Declare(IsolationBottom, "current")
	for i := 0; i < nregs; i++ {
		p.Declare("RED", fmt.Sprintf("redreg%d", i))
		p.Declare("BLACK", fmt.Sprintf("blackreg%d", i))
	}
	// Each regime's registers persist untouched; only the kernel-internal
	// scheduling variable changes.
	p.Add(Set("current", Op("-", N(1), V("current"))))
	return p
}

// SpoolerTrusted models the KSOS-style line-printer spooler the paper's
// section 1 discusses: running at HIGH so it can read all spool files, it
// must *delete* (write) LOW spool files after printing — a write-down that
// violates the *-property, which is why kernelized systems must grant the
// spooler "trusted process" status.
func SpoolerTrusted() *Program {
	p := NewProgram("spooler-delete-low-spool")
	p.Declare(High, "spooler_cursor", "high_spool")
	p.Declare(Low, "low_spool")
	// Reading everything is fine at HIGH...
	p.Add(Set("spooler_cursor", Op("+", V("low_spool"), V("high_spool"))))
	// ...but deleting the printed LOW spool file writes HIGH-influenced
	// state down to LOW: the *-property violation.
	p.Add(If{
		Cond: V("spooler_cursor"),
		Then: []Stmt{Set("low_spool", N(0))},
	})
	return p
}

// FileServerSpec models the multilevel file-server of section 2 at its
// natural level: per-level stores, with reads up and writes at level —
// certifiable by IFA, which is the paper's point that Feiertag-style models
// fit "ordinary programs" like servers, just not kernels.
func FileServerSpec() *Program {
	p := NewProgram("file-server-spec")
	p.Declare(Low, "low_store", "low_request")
	p.Declare(High, "high_store", "high_request", "high_view")
	// A HIGH subject may read LOW and HIGH data into its view.
	p.Add(Set("high_view", Op("+", V("low_store"), V("high_store"))))
	// Writes stay at the writer's level.
	p.Add(Set("low_store", V("low_request")))
	p.Add(Set("high_store", V("high_request")))
	return p
}
