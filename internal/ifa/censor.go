package ifa

// IFA specifications of the SNFE bypass censor — "the only software which
// performs a security critical task" in the paper's SNFE design. The
// lattice is TwoPoint with the red-supplied header fields HIGH (they may
// encode user data) and the network-visible output fields LOW.
//
// The gradient these specs certify matches what package snfe *measures*:
//
//   - the format-checking censor copies the (truthful) length field
//     through: an explicit HIGH→LOW flow — IFA rejects it, and indeed the
//     length-parity encoding beats it (measured capacity ≈ 1 b/symbol);
//   - the canonicalizing censor still derives its output length from the
//     input length (quantized): the flow narrows but syntactically remains
//     — IFA rejects it too, even though the measured capacity is ≈ 0
//     (IFA is all-or-nothing: exactly the §4 critique, now working in the
//     censor's favour as conservatism);
//   - the strict censor emits only fields derived from its own counters —
//     IFA certifies it, and the measured capacity of every encoding
//     against it is exactly zero.

// CensorFormatSpec models the format-checking censor: sequence numbers are
// re-derived from the censor's own counter, but the declared length passes
// through after a range check.
func CensorFormatSpec() *Program {
	p := NewProgram("censor-format-spec")
	p.Declare(High, "in_len", "in_seq", "in_xtra")
	p.Declare(Low, "own_seq", "out_seq", "out_len")
	p.Add(
		Set("own_seq", Op("+", V("own_seq"), N(1))),
		Set("out_seq", V("own_seq")),
		// The range check and pass-through: the HIGH length reaches LOW.
		If{Cond: V("in_len"), Then: []Stmt{Set("out_len", V("in_len"))}},
	)
	return p
}

// CensorCanonSpec models the canonicalizing censor: the output length is
// quantized — a narrower, but syntactically present, HIGH→LOW flow.
func CensorCanonSpec() *Program {
	p := NewProgram("censor-canonical-spec")
	p.Declare(High, "in_len")
	p.Declare(Low, "own_seq", "out_seq", "out_len")
	p.Add(
		Set("own_seq", Op("+", V("own_seq"), N(1))),
		Set("out_seq", V("own_seq")),
		// out_len := ((in_len + 15) / 16) * 16 — still derived from in_len.
		Set("out_len", Op("*", Op("/", Op("+", V("in_len"), N(15)), N(16)), N(16))),
	)
	return p
}

// CensorStrictSpec models the strict censor: every output field is a
// function of the censor's own state alone. This is the flow-free design
// IFA can certify outright.
func CensorStrictSpec() *Program {
	p := NewProgram("censor-strict-spec")
	p.Declare(High, "in_len", "in_seq", "in_xtra")
	p.Declare(Low, "own_seq", "out_seq", "out_type")
	p.Add(
		Set("own_seq", Op("+", V("own_seq"), N(1))),
		Set("out_seq", V("own_seq")),
		Set("out_type", N(1)), // constant "data"
	)
	return p
}
