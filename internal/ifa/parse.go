package ifa

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse reads the textual form of an IFA program:
//
//	program spooler
//	var high_spool, cursor : HIGH
//	var low_spool : LOW
//	cursor := high_spool + low_spool
//	if cursor {
//	    low_spool := 0
//	}
//	while cursor {
//	    cursor := cursor - 1
//	}
//
// Classes are free-form tokens (they must make sense to the lattice the
// caller certifies against). Expressions support identifiers, integer
// literals, binary operators (+ - * / &) with no precedence (left
// associative), and parentheses.
func Parse(src string) (*Program, error) {
	p := &parser{lines: strings.Split(src, "\n")}
	return p.parse()
}

// MustParse is Parse for programs embedded in tests and tools.
func MustParse(src string) *Program {
	prog, err := Parse(src)
	if err != nil {
		panic(err)
	}
	return prog
}

type parser struct {
	lines []string
	pos   int
}

func (p *parser) errf(format string, args ...any) error {
	return fmt.Errorf("ifa: line %d: %s", p.pos+1, fmt.Sprintf(format, args...))
}

// next returns the next significant line without consuming it; ok=false at
// end of input.
func (p *parser) next() (string, bool) {
	for p.pos < len(p.lines) {
		line := strings.TrimSpace(p.lines[p.pos])
		if i := strings.Index(line, "//"); i >= 0 {
			line = strings.TrimSpace(line[:i])
		}
		if line == "" {
			p.pos++
			continue
		}
		return line, true
	}
	return "", false
}

func (p *parser) consume() { p.pos++ }

func (p *parser) parse() (*Program, error) {
	line, ok := p.next()
	if !ok || !strings.HasPrefix(line, "program ") {
		return nil, p.errf("expected 'program <name>'")
	}
	prog := NewProgram(strings.TrimSpace(strings.TrimPrefix(line, "program ")))
	p.consume()

	// Declarations.
	for {
		line, ok = p.next()
		if !ok {
			return prog, nil
		}
		if !strings.HasPrefix(line, "var ") {
			break
		}
		rest := strings.TrimPrefix(line, "var ")
		parts := strings.SplitN(rest, ":", 2)
		if len(parts) != 2 {
			return nil, p.errf("expected 'var name[, name...] : CLASS'")
		}
		class := Class(strings.TrimSpace(parts[1]))
		for _, name := range strings.Split(parts[0], ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				return nil, p.errf("empty variable name")
			}
			prog.Declare(class, name)
		}
		p.consume()
	}

	body, err := p.block("")
	if err != nil {
		return nil, err
	}
	prog.Add(body...)
	return prog, nil
}

// block parses statements until end-of-input or a line equal to terminator.
func (p *parser) block(terminator string) ([]Stmt, error) {
	var out []Stmt
	for {
		line, ok := p.next()
		if !ok {
			if terminator != "" {
				return nil, p.errf("missing %q", terminator)
			}
			return out, nil
		}
		if terminator != "" && line == terminator {
			p.consume()
			return out, nil
		}
		st, err := p.statement(line)
		if err != nil {
			return nil, err
		}
		out = append(out, st)
	}
}

func (p *parser) statement(line string) (Stmt, error) {
	switch {
	case strings.HasPrefix(line, "if ") && strings.HasSuffix(line, "{"):
		cond, err := parseExpr(strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(line, "if "), "{")))
		if err != nil {
			return nil, p.errf("%v", err)
		}
		p.consume()
		thenB, err := p.block("}")
		if err != nil {
			return nil, err
		}
		// Optional else block.
		var elseB []Stmt
		if nxt, ok := p.next(); ok && (nxt == "else {" || nxt == "} else {") {
			p.consume()
			elseB, err = p.block("}")
			if err != nil {
				return nil, err
			}
		}
		return If{Cond: cond, Then: thenB, Else: elseB}, nil

	case strings.HasPrefix(line, "while ") && strings.HasSuffix(line, "{"):
		cond, err := parseExpr(strings.TrimSpace(strings.TrimSuffix(strings.TrimPrefix(line, "while "), "{")))
		if err != nil {
			return nil, p.errf("%v", err)
		}
		p.consume()
		body, err := p.block("}")
		if err != nil {
			return nil, err
		}
		return While{Cond: cond, Body: body}, nil

	case strings.Contains(line, ":="):
		parts := strings.SplitN(line, ":=", 2)
		dst := strings.TrimSpace(parts[0])
		if !isIdent(dst) {
			return nil, p.errf("bad assignment target %q", dst)
		}
		src, err := parseExpr(strings.TrimSpace(parts[1]))
		if err != nil {
			return nil, p.errf("%v", err)
		}
		p.consume()
		return Assign{Dst: dst, Src: src}, nil
	}
	return nil, p.errf("cannot parse statement %q", line)
}

// --- expression parsing (flat left-associative binary chain) ---

type tokenizer struct {
	s   string
	pos int
}

func (t *tokenizer) token() (string, error) {
	for t.pos < len(t.s) && t.s[t.pos] == ' ' {
		t.pos++
	}
	if t.pos >= len(t.s) {
		return "", nil
	}
	c := t.s[t.pos]
	switch {
	case strings.ContainsRune("+-*/&()", rune(c)):
		t.pos++
		return string(c), nil
	case c >= '0' && c <= '9':
		start := t.pos
		for t.pos < len(t.s) && t.s[t.pos] >= '0' && t.s[t.pos] <= '9' {
			t.pos++
		}
		return t.s[start:t.pos], nil
	case isIdentByte(c):
		start := t.pos
		for t.pos < len(t.s) && isIdentByte(t.s[t.pos]) {
			t.pos++
		}
		return t.s[start:t.pos], nil
	}
	return "", fmt.Errorf("bad character %q in expression", c)
}

func parseExpr(s string) (Expr, error) {
	t := &tokenizer{s: s}
	e, err := parseChain(t)
	if err != nil {
		return nil, err
	}
	if rest, _ := t.token(); rest != "" {
		return nil, fmt.Errorf("trailing %q in expression %q", rest, s)
	}
	return e, nil
}

func parseChain(t *tokenizer) (Expr, error) {
	left, err := parseAtom(t)
	if err != nil {
		return nil, err
	}
	for {
		save := t.pos
		op, err := t.token()
		if err != nil {
			return nil, err
		}
		if op == "" || op == ")" {
			t.pos = save
			return left, nil
		}
		if !strings.Contains("+-*/&", op) {
			return nil, fmt.Errorf("expected operator, got %q", op)
		}
		right, err := parseAtom(t)
		if err != nil {
			return nil, err
		}
		left = BinOp{Op: op, L: left, R: right}
	}
}

func parseAtom(t *tokenizer) (Expr, error) {
	tok, err := t.token()
	if err != nil {
		return nil, err
	}
	switch {
	case tok == "":
		return nil, fmt.Errorf("unexpected end of expression")
	case tok == "(":
		e, err := parseChain(t)
		if err != nil {
			return nil, err
		}
		if close, _ := t.token(); close != ")" {
			return nil, fmt.Errorf("missing )")
		}
		return e, nil
	case tok[0] >= '0' && tok[0] <= '9':
		v, err := strconv.Atoi(tok)
		if err != nil {
			return nil, err
		}
		return Const{Value: v}, nil
	case isIdent(tok):
		return VarRef{Name: tok}, nil
	}
	return nil, fmt.Errorf("bad token %q", tok)
}

func isIdentByte(c byte) bool {
	return c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' || c >= '0' && c <= '9'
}

func isIdent(s string) bool {
	if s == "" || s[0] >= '0' && s[0] <= '9' {
		return false
	}
	for i := 0; i < len(s); i++ {
		if !isIdentByte(s[i]) {
			return false
		}
	}
	return true
}
