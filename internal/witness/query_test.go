package witness

import (
	"fmt"
	"testing"

	"repro/internal/separability"
)

func detailFor(phi string, diffAt int) string {
	a := []byte(phi)
	b := append([]byte(nil), a...)
	b[diffAt] ^= 1
	lo := diffAt - 24
	if lo < 0 {
		lo = 0
	}
	hi := diffAt + 24
	if hi > len(a) {
		hi = len(a)
	}
	return fmt.Sprintf("first difference at byte %d: %q vs %q", diffAt, a[lo:hi], b[lo:hi])
}

func TestWitnessField(t *testing.T) {
	phi := "r0=0001;r1=0002;r2=0003;r3=0004;r4=0005;r5=1111;sp=0100;pc=0040;cc=0;" +
		"st=1;pend=0000;ipl=0;mem=deadbeef;ch:wp:free=48;"
	cases := []struct {
		diffAt int
		want   string
	}{
		{3, "r0"},       // r0 value, window starts at 0
		{43, "r5"},      // r5 value, window starts mid-string
		{66, "cc"},      // cc value
		{95, "mem"},     // inside the partition dump
		{112, "ch:wp:free"},
	}
	for _, c := range cases {
		w := &Witness{Detail: detailFor(phi, c.diffAt)}
		if got := w.Field(); got != c.want {
			t.Errorf("diff at %d: Field() = %q, want %q (detail %s)",
				c.diffAt, got, c.want, w.Detail)
		}
	}

	// Non-diff details resolve to no field.
	for _, d := range []string{
		`NEXTOP "swap" vs "send"`,
		`EXTRACT(c,OUTPUT) "a" vs "b"`,
		"lengths differ: 10 vs 12",
		"",
	} {
		w := &Witness{Detail: d}
		if got := w.Field(); got != "" {
			t.Errorf("detail %q: Field() = %q, want empty", d, got)
		}
	}

	// A window starting mid-field must not misattribute the difference.
	long := "mem=" + string(make([]byte, 100)) + ";"
	w := &Witness{Detail: detailFor(long, 60)}
	if got := w.Field(); got != "" {
		t.Errorf("mid-field window: Field() = %q, want empty", got)
	}
}

func TestQueryMatches(t *testing.T) {
	sys := SystemSpec{Kind: "verifysys", Leak: "RegisterLeak", Cut: true}
	w := &Witness{
		System:    sys,
		Condition: int(separability.Condition1),
		Colour:    "worker",
		Detail:    detailFor("r0=0001;r1=0002;r2=0003;r3=0004;r4=0005;r5=1111;", 43),
	}
	match := []Query{
		{},
		{System: &sys},
		{Conditions: []separability.Condition{separability.Condition1}},
		{Conditions: []separability.Condition{separability.Condition2, separability.Condition1}},
		{Colours: []string{"worker", "peer"}},
		{Field: "r5"},
		{System: &sys, Field: "r5", Colours: []string{"worker"}},
	}
	for i, q := range match {
		if !q.Matches(w) {
			t.Errorf("query %d should match", i)
		}
	}
	other := SystemSpec{Kind: "verifysys", Cut: true}
	reject := []Query{
		{System: &other},
		{Conditions: []separability.Condition{separability.Condition5}},
		{Colours: []string{"probe"}},
		{Field: "r4"},
		{Field: "r5", Colours: []string{"probe"}},
	}
	for i, q := range reject {
		if q.Matches(w) {
			t.Errorf("query %d should not match", i)
		}
	}
}

func TestQueryFieldPrefix(t *testing.T) {
	w := &Witness{Detail: detailFor("r5=1111;ch:wp:rd=3:aaaa;", 20)}
	if f := w.Field(); f != "ch:wp:rd" {
		t.Fatalf("Field() = %q, want ch:wp:rd", f)
	}
	if !(Query{Field: "ch"}).Matches(w) {
		t.Error("prefix query ch should match ch:wp:rd")
	}
	if !(Query{Field: "ch:wp:rd"}).Matches(w) {
		t.Error("exact query should match")
	}
	if (Query{Field: "ch:pw"}).Matches(w) {
		t.Error("ch:pw must not match ch:wp:rd")
	}
}

func TestFindOrder(t *testing.T) {
	ws := []*Witness{
		{ID: "a", Colour: "worker"},
		{ID: "b", Colour: "peer"},
		{ID: "c", Colour: "worker"},
	}
	got := Find(ws, Query{Colours: []string{"worker"}})
	if len(got) != 2 || got[0].ID != "a" || got[1].ID != "c" {
		t.Errorf("Find returned %v, want [a c] in store order", got)
	}
}
