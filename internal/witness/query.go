package witness

import (
	"strconv"
	"strings"

	"repro/internal/separability"
)

// Query selects witnesses from a loaded store. The zero Query matches
// everything; each set field narrows the selection. This is the interface
// the triage layer (internal/staticflow/triage) uses to reconcile static
// flows with dynamic counterexamples.
type Query struct {
	// System, when non-nil, requires an exact SystemSpec match.
	System *SystemSpec
	// Conditions, when non-empty, requires the witness's condition to be
	// one of them.
	Conditions []separability.Condition
	// Colours, when non-empty, requires the witness's colour to be one of
	// them.
	Colours []string
	// Field, when non-empty, requires the Φ-encoding field at the
	// witness's recorded first difference (see Witness.Field) to match:
	// equal, or a sub-field of it ("ch" matches "ch:wp:rd").
	Field string
}

// Matches reports whether w satisfies every set constraint of q.
func (q Query) Matches(w *Witness) bool {
	if q.System != nil && *q.System != w.System {
		return false
	}
	if len(q.Conditions) > 0 {
		ok := false
		for _, c := range q.Conditions {
			if int(c) == w.Condition {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if len(q.Colours) > 0 {
		ok := false
		for _, c := range q.Colours {
			if c == w.Colour {
				ok = true
				break
			}
		}
		if !ok {
			return false
		}
	}
	if q.Field != "" {
		f := w.Field()
		if f != q.Field && !strings.HasPrefix(f, q.Field+":") {
			return false
		}
	}
	return true
}

// Find returns the witnesses matching q, in store (manifest) order.
func Find(ws []*Witness, q Query) []*Witness {
	var out []*Witness
	for _, w := range ws {
		if q.Matches(w) {
			out = append(out, w)
		}
	}
	return out
}

// Field extracts the name of the Φ-encoding field holding the first
// difference recorded in the witness Detail — "r5", "cc", "mem",
// "ch:wp:rd", "dev:tty0" — or "" when the detail does not carry a
// field-resolvable digest diff (NEXTOP and EXTRACT details, truncated
// windows).
//
// The Detail format is separability.diffDetail's: the byte offset of the
// first difference plus a quoted window of up to 24 bytes of context on
// each side. The field name is recovered by scanning the window back from
// the differing byte to the previous ';' field separator and forward to
// the '=' that ends the name.
func (w *Witness) Field() string {
	const marker = "first difference at byte "
	i := strings.Index(w.Detail, marker)
	if i < 0 {
		return ""
	}
	rest := w.Detail[i+len(marker):]
	colon := strings.Index(rest, ": ")
	if colon < 0 {
		return ""
	}
	offset, err := strconv.Atoi(rest[:colon])
	if err != nil {
		return ""
	}
	quoted, err := strconv.QuotedPrefix(rest[colon+2:])
	if err != nil {
		return ""
	}
	window, err := strconv.Unquote(quoted)
	if err != nil {
		return ""
	}
	// The window is detail[lo:hi] with lo = max(0, offset-24): the
	// differing byte sits at offset-lo.
	at := offset
	if at > 24 {
		at = 24
	}
	if at >= len(window) {
		return ""
	}
	start := strings.LastIndexByte(window[:at], ';') + 1
	if start == 0 && offset > 24 {
		return "" // window starts mid-field: the name is cut off
	}
	eq := strings.IndexByte(window[start:], '=')
	if eq < 0 {
		return ""
	}
	return window[start : start+eq]
}
