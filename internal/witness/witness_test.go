package witness_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/kernel"
	"repro/internal/obs"
	"repro/internal/separability"
	"repro/internal/verifysys"
	"repro/internal/witness"
)

// leakOpt is the check budget TestLeakyKernelsCaught uses; every planted
// leak is caught under it, so captures always have material to work with.
func leakOpt(sched bool) separability.Options {
	return separability.Options{Trials: 10, StepsPerTrial: 100, Seed: 99,
		CheckScheduling: sched}
}

func buildSpec(t testing.TB, spec witness.SystemSpec) *kernel.Adapter {
	t.Helper()
	sys, err := verifysys.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// The full pipeline on a planted leak: check, capture, shrink, persist,
// then replay every witness from the artifact alone on a freshly built
// system and demand the identical condition, colour and digest pair.
func TestCaptureShrinkReplayFromDisk(t *testing.T) {
	for _, leak := range []string{"RegisterLeak", "SharedScratch"} {
		t.Run(leak, func(t *testing.T) {
			spec := verifysys.SpecFor(leak, true, false)
			sys := buildSpec(t, spec)
			opt := leakOpt(false)
			res := separability.CheckRandomized(sys, opt)
			if res.Passed() {
				t.Fatalf("leak %s not caught; nothing to capture", leak)
			}

			dir := t.TempDir()
			reg := obs.NewRegistry()
			ws, err := witness.Capture(sys, opt, res, witness.Options{
				Dir: dir, Metrics: reg, System: spec})
			if err != nil {
				t.Fatal(err)
			}
			if len(ws) == 0 {
				t.Fatal("no witnesses captured")
			}
			if got := reg.CounterValue("sep_witness_captured_total"); got != uint64(len(ws)) {
				t.Errorf("captured counter = %d, want %d", got, len(ws))
			}
			if reg.CounterValue("sep_witness_replayed_total") == 0 {
				t.Error("no replays counted during capture")
			}

			anyShrunk := false
			for _, w := range ws {
				if len(w.Steps) > w.OrigSteps {
					t.Errorf("witness %s grew: %d > %d", w.ID, len(w.Steps), w.OrigSteps)
				}
				if len(w.Steps) < w.OrigSteps {
					anyShrunk = true
				}
				if w.Want == w.Got {
					t.Errorf("witness %s: want and got digests equal (%s)", w.ID, w.Want)
				}
				if len(w.Events) == 0 {
					t.Errorf("witness %s: no event window", w.ID)
				}
			}
			if !anyShrunk {
				t.Error("shrinker dropped nothing on any witness")
			}
			if reg.CounterValue("sep_witness_shrunk_ops_total") == 0 && anyShrunk {
				t.Error("shrunk ops counter stayed zero")
			}

			// From disk, against a fresh system.
			loaded, err := witness.Load(dir)
			if err != nil {
				t.Fatal(err)
			}
			if len(loaded) != len(ws) {
				t.Fatalf("loaded %d witnesses, captured %d", len(loaded), len(ws))
			}
			for i, w := range loaded {
				if w.ID != ws[i].ID {
					t.Errorf("witness %d: ID %s loaded as %s", i, ws[i].ID, w.ID)
				}
				if err := w.LoadState(dir); err != nil {
					t.Fatal(err)
				}
				fresh := buildSpec(t, w.System)
				v, err := witness.Replay(fresh, w)
				if err != nil {
					t.Fatalf("witness %s failed to replay: %v", w.ID, err)
				}
				if int(v.Condition) != w.Condition || string(v.Colour) != w.Colour {
					t.Errorf("witness %s replayed to %s/%s, recorded %s/%s",
						w.ID, v.Condition, v.Colour, w.ConditionName, w.Colour)
				}
			}
		})
	}
}

// Witnesses are a pure function of the checker's Result, which is itself
// worker-count independent — so capture at workers=1 and workers=4 must
// produce identical artifacts (same IDs, same shrunk sequences).
func TestCaptureWorkerCountInvariant(t *testing.T) {
	spec := verifysys.SpecFor("RegisterLeak", true, false)
	capture := func(workers int) []*witness.Witness {
		sys := buildSpec(t, spec)
		opt := leakOpt(false)
		opt.Workers = workers
		res := separability.CheckRandomized(sys, opt)
		if res.Passed() {
			t.Fatalf("workers=%d: leak not caught", workers)
		}
		ws, err := witness.Capture(sys, opt, res, witness.Options{System: spec})
		if err != nil {
			t.Fatal(err)
		}
		return ws
	}
	w1, w4 := capture(1), capture(4)
	if len(w1) == 0 || len(w1) != len(w4) {
		t.Fatalf("captured %d vs %d witnesses", len(w1), len(w4))
	}
	for i := range w1 {
		if w1[i].ID != w4[i].ID {
			t.Errorf("witness %d: workers=1 ID %s, workers=4 ID %s", i, w1[i].ID, w4[i].ID)
		}
		if w1[i].Want != w4[i].Want || w1[i].Got != w4[i].Got {
			t.Errorf("witness %d: digest pair diverged across worker counts", i)
		}
		if len(w1[i].Steps) != len(w4[i].Steps) {
			t.Errorf("witness %d: shrunk lengths diverged: %d vs %d",
				i, len(w1[i].Steps), len(w4[i].Steps))
		}
	}
}

// Host-state independence: a witness captured with the translation cache
// enabled must replay identically on a system running without it — the
// cache is a host-side accelerator, invisible to the architectural walk.
func TestReplayWithTranslationDisabled(t *testing.T) {
	spec := verifysys.SpecFor("SharedScratch", true, false)
	sys := buildSpec(t, spec)
	opt := leakOpt(false)
	res := separability.CheckRandomized(sys, opt)
	if res.Passed() {
		t.Fatal("leak not caught")
	}
	dir := t.TempDir()
	if _, err := witness.Capture(sys, opt, res, witness.Options{Dir: dir, System: spec}); err != nil {
		t.Fatal(err)
	}
	loaded, err := witness.Load(dir)
	if err != nil || len(loaded) == 0 {
		t.Fatalf("load: %d witnesses, err=%v", len(loaded), err)
	}
	for _, w := range loaded {
		if err := w.LoadState(dir); err != nil {
			t.Fatal(err)
		}
		nt := w.System
		nt.NoTranslate = true
		fresh := buildSpec(t, nt)
		if _, err := witness.Replay(fresh, w); err != nil {
			t.Errorf("witness %s does not replay with translation off: %v", w.ID, err)
		}
	}
}

// The differential the acceptance criteria demand: capture is cold-side
// only. Running Capture must not change what a subsequent identical check
// reports, and the captured-from Result is never mutated.
func TestCaptureIsColdSide(t *testing.T) {
	spec := verifysys.SpecFor("RegisterLeak", true, false)
	opt := leakOpt(false)

	ref := separability.CheckRandomized(buildSpec(t, spec), opt)

	sys := buildSpec(t, spec)
	res1 := separability.CheckRandomized(sys, opt)
	before := len(res1.Violations)
	if _, err := witness.Capture(sys, opt, res1, witness.Options{System: spec}); err != nil {
		t.Fatal(err)
	}
	if len(res1.Violations) != before {
		t.Error("Capture mutated the Result it was given")
	}
	res2 := separability.CheckRandomized(sys, opt)

	if !reflect.DeepEqual(ref.Violations, res1.Violations) ||
		!reflect.DeepEqual(res1.Violations, res2.Violations) {
		t.Error("violation lists differ across capture-on/capture-off runs")
	}
	if !reflect.DeepEqual(ref.Checks, res2.Checks) {
		t.Errorf("check counts differ: %v vs %v", ref.Checks, res2.Checks)
	}
}

// Persisting the same witnesses twice must not duplicate manifest lines or
// blobs (content addressing makes capture idempotent).
func TestStoreIdempotent(t *testing.T) {
	spec := verifysys.SpecFor("RegisterLeak", true, false)
	sys := buildSpec(t, spec)
	opt := leakOpt(false)
	res := separability.CheckRandomized(sys, opt)
	dir := t.TempDir()
	wopt := witness.Options{Dir: dir, System: spec, MaxWitnesses: 2}
	ws1, err := witness.Capture(sys, opt, res, wopt)
	if err != nil {
		t.Fatal(err)
	}
	ws2, err := witness.Capture(sys, opt, res, wopt)
	if err != nil {
		t.Fatal(err)
	}
	if len(ws1) != len(ws2) {
		t.Fatalf("second capture found %d witnesses, first %d", len(ws2), len(ws1))
	}
	loaded, err := witness.Load(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(loaded) != len(ws1) {
		t.Errorf("manifest holds %d records after double capture, want %d", len(loaded), len(ws1))
	}
}

// A tampered manifest or blob must be rejected, not replayed.
func TestStoreRejectsTampering(t *testing.T) {
	spec := verifysys.SpecFor("RegisterLeak", true, false)
	sys := buildSpec(t, spec)
	opt := leakOpt(false)
	res := separability.CheckRandomized(sys, opt)
	dir := t.TempDir()
	ws, err := witness.Capture(sys, opt, res, witness.Options{
		Dir: dir, System: spec, MaxWitnesses: 1})
	if err != nil || len(ws) == 0 {
		t.Fatalf("capture: %d witnesses, err=%v", len(ws), err)
	}

	mp := filepath.Join(dir, "manifest.jsonl")
	orig, err := os.ReadFile(mp)
	if err != nil {
		t.Fatal(err)
	}
	// Flip the recorded colour: the ID no longer matches the content.
	tampered := strings.Replace(string(orig), `"colour":"`, `"colour":"x`, 1)
	if tampered == string(orig) {
		t.Fatal("tampering had no effect; test is vacuous")
	}
	if err := os.WriteFile(mp, []byte(tampered), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := witness.Load(dir); err == nil {
		t.Error("tampered manifest loaded without error")
	}
	if err := os.WriteFile(mp, orig, 0o644); err != nil {
		t.Fatal(err)
	}

	// Corrupt the blob: LoadState must catch the hash mismatch.
	bp := filepath.Join(dir, "blobs", ws[0].Snapshot)
	blob, err := os.ReadFile(bp)
	if err != nil {
		t.Fatal(err)
	}
	blob[len(blob)-1] ^= 0xFF
	if err := os.WriteFile(bp, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	loaded, err := witness.Load(dir)
	if err != nil || len(loaded) == 0 {
		t.Fatalf("load after restore: %v", err)
	}
	if err := loaded[0].LoadState(dir); err == nil {
		t.Error("corrupt blob loaded without error")
	}
}
