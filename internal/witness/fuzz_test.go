package witness_test

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strconv"
	"testing"

	"repro/internal/separability"
	"repro/internal/verifysys"
	"repro/internal/witness"
)

// marshalManifest renders witnesses back into canonical manifest bytes.
func marshalManifest(t *testing.T, ws []*witness.Witness) []byte {
	t.Helper()
	var buf bytes.Buffer
	for _, w := range ws {
		line, err := json.Marshal(w)
		if err != nil {
			t.Fatalf("re-marshal: %v", err)
		}
		buf.Write(line)
		buf.WriteByte('\n')
	}
	return buf.Bytes()
}

// FuzzWitnessRead holds the manifest decoder total and canonicalizing:
// arbitrary bytes either fail with an error or decode to witnesses whose
// re-encoding is a fixed point (read -> write -> read -> write is
// byte-stable), and never panic. Same contract as obs.FuzzReadJSONL.
func FuzzWitnessRead(f *testing.F) {
	// A genuine captured manifest lives in the committed corpus
	// (testdata/fuzz/FuzzWitnessRead), regenerable with
	// TestRegenerateWitnessCorpus below; inline seeds cover the trivial
	// shapes. Keeping capture out of the seed phase matters: fuzz workers
	// re-run it per process, and under coverage instrumentation a full
	// checker run costs seconds.
	f.Add([]byte(""))
	f.Add([]byte("{}\n"))
	f.Add([]byte(`{"id":"0000000000000000","snapshot":"x","steps":[]}` + "\n"))

	f.Fuzz(func(t *testing.T, data []byte) {
		ws, err := witness.ReadManifest(bytes.NewReader(data))
		if err != nil {
			return
		}
		canon := marshalManifest(t, ws)
		ws2, err := witness.ReadManifest(bytes.NewReader(canon))
		if err != nil {
			t.Fatalf("canonical manifest failed to re-read: %v\n%s", err, canon)
		}
		if again := marshalManifest(t, ws2); !bytes.Equal(canon, again) {
			t.Fatalf("canonicalization is not a fixed point:\n%s\nvs\n%s", canon, again)
		}
	})
}

// TestRegenerateWitnessCorpus rewrites the committed FuzzWitnessRead corpus
// entry from a live capture when REGEN_WITNESS_CORPUS is set; otherwise it
// verifies the committed entry still parses as a valid manifest, so the
// corpus cannot silently rot when the schema evolves.
func TestRegenerateWitnessCorpus(t *testing.T) {
	path := filepath.Join("testdata", "fuzz", "FuzzWitnessRead", "captured-manifest")
	if os.Getenv("REGEN_WITNESS_CORPUS") == "" {
		b, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("committed corpus missing (run with REGEN_WITNESS_CORPUS=1): %v", err)
		}
		line := corpusValue(t, b)
		if _, err := witness.ReadManifest(bytes.NewReader(line)); err != nil {
			t.Fatalf("committed corpus entry no longer parses — schema drifted; "+
				"regenerate with REGEN_WITNESS_CORPUS=1: %v", err)
		}
		return
	}
	spec := verifysys.SpecFor("RegisterLeak", true, false)
	sys, err := verifysys.FromSpec(spec)
	if err != nil {
		t.Fatal(err)
	}
	opt := separability.Options{Trials: 10, StepsPerTrial: 100, Seed: 99}
	res := separability.CheckRandomized(sys, opt)
	dir := t.TempDir()
	if _, err := witness.Capture(sys, opt, res, witness.Options{
		Dir: dir, System: spec, MaxWitnesses: 1}); err != nil {
		t.Fatal(err)
	}
	b, err := os.ReadFile(filepath.Join(dir, "manifest.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	entry := "go test fuzz v1\n[]byte(" + strconv.Quote(string(b)) + ")\n"
	if err := os.WriteFile(path, []byte(entry), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s (%d bytes)", path, len(entry))
}

// corpusValue extracts the single []byte value from a go-fuzz corpus file.
func corpusValue(t *testing.T, b []byte) []byte {
	t.Helper()
	lines := bytes.SplitN(b, []byte("\n"), 2)
	if len(lines) != 2 || !bytes.HasPrefix(lines[0], []byte("go test fuzz v1")) {
		t.Fatal("corpus file is not in go test fuzz v1 format")
	}
	body := bytes.TrimSpace(lines[1])
	body = bytes.TrimPrefix(body, []byte("[]byte("))
	body = bytes.TrimSuffix(body, []byte(")"))
	s, err := strconv.Unquote(string(body))
	if err != nil {
		t.Fatalf("corpus value unquote: %v", err)
	}
	return []byte(s)
}
