package witness

import (
	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/separability"
)

// Greybox shrinking: every candidate is validated by an actual replay, so
// a shrunk witness is by construction still a witness. Two passes, both
// bounded by a replay budget:
//
//  1. prefix halving — drop the first n entries (the walk then starts from
//     the trial snapshot and skips straight to the tail), halving n on
//     failure. Violating states are usually *absorbing* (a leaked value
//     sits in memory), so most of the walk's approach run is droppable.
//  2. prefix absorption — when drops stall above the tail target (some
//     violations are alignment-sensitive: removing any one machine step
//     moves the final program counter off the leaking instruction, so no
//     drop-candidate trips), advance the snapshot itself along the walk
//     and keep only the last maxTail entries. The final state is then
//     reached identically by construction, so this shrink never changes
//     the violation — it trades "walk from trial start" for "walk from a
//     later checkpoint".
//  3. linear drops — remove single entries right-to-left. The last entry
//     is never dropped: its input and the sweep after it are the violation
//     itself.
//
// A candidate "still trips" when the recorded condition fires for the
// recorded colour under the recorded CheckSeed; the digest pair may drift
// while shrinking (a shorter walk reaches a different violating state), so
// the caller re-stamps the witness from the last good replay's violation.

// shrinkTail is how many walk entries prefix absorption keeps: enough to
// show the operations leading into the violation, short enough that every
// witness is readable.
const shrinkTail = 16

// shrinkSeq shrinks ins — already verified to trip, with violation got —
// returning the (possibly advanced) pre-state, the shrunk sequence and the
// violation its replay produces. budget bounds the number of candidate
// replays (recorded in w.ShrinkReplays); shrunkOps (optional) counts
// dropped entries.
func shrinkSeq(sys model.Perturbable, ref model.StateRef, ins []model.Input,
	w *Witness, got separability.Violation, budget int,
	replayed, shrunkOps *obs.Counter) (model.StateRef, []model.Input, separability.Violation) {

	cur, last := ins, got

	trips := func(cand []model.Input) bool {
		if budget <= 0 {
			return false
		}
		budget--
		w.ShrinkReplays++
		if v := replaySeq(sys, ref, cand, w, replayed); v != nil {
			last = *v
			return true
		}
		return false
	}

	// Pass 1: prefix halving.
	for n := len(cur) / 2; n >= 1 && budget > 0; {
		if trips(cur[n:]) {
			if shrunkOps != nil {
				shrunkOps.Add(uint64(n))
			}
			cur = cur[n:]
			n = len(cur) / 2
		} else {
			n /= 2
		}
	}

	// Pass 2: prefix absorption. Walk the snapshot forward to shrinkTail
	// entries before the violating step, then verify the (by construction
	// identical) final state still trips under the recorded seed.
	if n := len(cur) - shrinkTail; n > 0 && budget > 0 {
		sys.Restore(ref)
		for i := 0; i < n; i++ {
			sys.ApplyInput(cur[i])
			sys.Step()
		}
		ref2 := sys.Save()
		budget--
		w.ShrinkReplays++
		if v := replaySeq(sys, ref2, cur[n:], w, replayed); v != nil &&
			v.Want == last.Want && v.Got == last.Got {
			if shrunkOps != nil {
				shrunkOps.Add(uint64(n))
			}
			ref, cur, last = ref2, cur[n:], *v
		}
	}

	// Pass 3: linear single-entry drops (never the last entry).
	for i := len(cur) - 2; i >= 0 && budget > 0; i-- {
		cand := make([]model.Input, 0, len(cur)-1)
		cand = append(cand, cur[:i]...)
		cand = append(cand, cur[i+1:]...)
		if trips(cand) {
			if shrunkOps != nil {
				shrunkOps.Inc()
			}
			cur = cand
		}
	}
	return ref, cur, last
}
