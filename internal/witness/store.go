package witness

import (
	"bufio"
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// The on-disk layout of a witness directory:
//
//	<dir>/manifest.jsonl   — one canonical JSON Witness per line, appended
//	<dir>/blobs/<sha256>   — pre-state snapshot blobs, content-addressed
//
// Both sides are content-addressed: blobs by their SHA-256, manifest
// records by the ID baked into each line (the SHA-256 of the record with
// its ID blanked). Re-capturing the identical counterexample is therefore
// idempotent — the store recognizes the ID and skips the append.

const (
	manifestName = "manifest.jsonl"
	blobsDir     = "blobs"
	// maxManifestLine bounds one manifest record; a line is a few KB of
	// metadata plus the encoded input steps, far below this.
	maxManifestLine = 16 << 20
)

// HashHex is the store's content address function: the SHA-256 of b in
// lowercase hex. Exported because other artifact stores in this repository
// (shard artifacts, the sepwatch build ledger) follow the same conventions
// and must address identical bytes identically.
func HashHex(b []byte) string {
	h := sha256.Sum256(b)
	return hex.EncodeToString(h[:])
}

func hashHex(b []byte) string { return HashHex(b) }

// ContentID derives the 16-hex-digit short content address used for
// manifest/ledger record IDs: the truncated SHA-256 of the record's
// canonical JSON. The caller must blank the record's own ID field first,
// exactly as computeID does for witnesses.
func ContentID(v any) (string, error) {
	b, err := json.Marshal(v)
	if err != nil {
		return "", err
	}
	return HashHex(b)[:16], nil
}

// AtomicWriteFile writes b through a same-directory temp file plus rename,
// so concurrent readers (and a process killed mid-write) observe either
// the previous complete file or the new one, never a torn artifact.
func AtomicWriteFile(path string, b []byte) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-")
	if err != nil {
		return err
	}
	if _, err := tmp.Write(b); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return nil
}

// canonicalJSON is the byte form IDs are computed over and manifest lines
// are written in: encoding/json with fixed field order (struct order) and
// compacted RawMessage values. Re-encoding a decoded witness reproduces
// the same bytes — the fixed point FuzzWitnessRead checks.
func canonicalJSON(w *Witness) ([]byte, error) {
	return json.Marshal(w)
}

// computeID derives the content address of a witness record: the first 16
// hex digits of the SHA-256 of its canonical JSON with the ID field empty.
func computeID(w *Witness) (string, error) {
	cp := *w
	cp.ID = ""
	return ContentID(&cp)
}

// writeWitness persists w into dir, creating the layout as needed. The
// blob write and the manifest append are both skipped when the content is
// already present.
func writeWitness(dir string, w *Witness) error {
	if w.ID == "" {
		return fmt.Errorf("witness: refusing to persist a witness without an ID")
	}
	if err := os.MkdirAll(filepath.Join(dir, blobsDir), 0o755); err != nil {
		return err
	}
	if w.blob != nil {
		bp := filepath.Join(dir, blobsDir, w.Snapshot)
		if _, err := os.Stat(bp); os.IsNotExist(err) {
			if err := os.WriteFile(bp, w.blob, 0o644); err != nil {
				return err
			}
		}
	}

	existing, err := Load(dir)
	if err != nil {
		return err
	}
	for _, e := range existing {
		if e.ID == w.ID {
			return nil
		}
	}
	line, err := canonicalJSON(w)
	if err != nil {
		return err
	}
	f, err := os.OpenFile(filepath.Join(dir, manifestName),
		os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(append(line, '\n')); err != nil {
		return err
	}
	return f.Close()
}

// Load reads the manifest of a witness directory. Snapshot blobs are NOT
// loaded — call LoadState per witness before replaying. A missing
// manifest yields an empty slice (an empty store, not an error).
func Load(dir string) ([]*Witness, error) {
	f, err := os.Open(filepath.Join(dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	defer f.Close()
	ws, err := ReadManifest(f)
	if err != nil {
		return nil, fmt.Errorf("witness: %s: %w", filepath.Join(dir, manifestName), err)
	}
	return ws, nil
}

// ReadManifest decodes a manifest.jsonl stream. Every line must be a
// valid witness record: parseable JSON, an ID consistent with the record's
// content, and a well-formed snapshot hash. The decoder is total — any
// input, including adversarial bytes, yields witnesses or an error, never
// a panic (FuzzWitnessRead holds it to that).
func ReadManifest(r io.Reader) ([]*Witness, error) {
	var out []*Witness
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 64*1024), maxManifestLine)
	ln := 0
	for sc.Scan() {
		ln++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		w := &Witness{}
		if err := json.Unmarshal(line, w); err != nil {
			return nil, fmt.Errorf("line %d: %w", ln, err)
		}
		if err := validate(w); err != nil {
			return nil, fmt.Errorf("line %d: %w", ln, err)
		}
		out = append(out, w)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// validate enforces the structural invariants a record must satisfy before
// anything trusts it: a content-consistent ID, a hex snapshot address, and
// at least one step (the violating step itself).
func validate(w *Witness) error {
	id, err := computeID(w)
	if err != nil {
		return err
	}
	if w.ID != id {
		return fmt.Errorf("witness %q: ID does not match content (want %s)", w.ID, id)
	}
	if len(w.Snapshot) != 64 {
		return fmt.Errorf("witness %s: snapshot address %q is not a sha256", w.ID, w.Snapshot)
	}
	if _, err := hex.DecodeString(w.Snapshot); err != nil {
		return fmt.Errorf("witness %s: snapshot address: %w", w.ID, err)
	}
	if len(w.Steps) == 0 {
		return fmt.Errorf("witness %s: no steps", w.ID)
	}
	if w.Step < 0 || w.Trial < 0 || len(w.Steps) > w.OrigSteps {
		return fmt.Errorf("witness %s: inconsistent step accounting", w.ID)
	}
	return nil
}

// LoadState reads and verifies the witness's snapshot blob from dir,
// making the witness replayable.
func (w *Witness) LoadState(dir string) error {
	if w.blob != nil {
		return nil
	}
	b, err := os.ReadFile(filepath.Join(dir, blobsDir, w.Snapshot))
	if err != nil {
		return err
	}
	if hashHex(b) != w.Snapshot {
		return fmt.Errorf("witness %s: snapshot blob corrupt (hash mismatch)", w.ID)
	}
	w.blob = b
	return nil
}
