// Package witness turns separability violations into first-class,
// replayable artifacts. Rushby's argument rests on *exhibiting* an
// information channel when separability fails; a witness is that exhibit
// made durable: the trial's pre-state, the exact input sequence that walked
// the system to the violating state, the seed of the condition sweep that
// caught it, and the Φ^c digest disagreement — enough to re-execute the
// counterexample against a freshly built system in a later process and
// watch the same condition fire.
//
// The capture contract comes from package separability's two-stream RNG
// split: the state checked at (trial, step) is a pure function of the
// walk's inputs (WalkTrial re-derives them), and the condition sweep there
// is a pure function of that state plus StepCheckSeed. Capture is entirely
// cold-side — it re-runs trials only after CheckRandomized has returned, so
// enabling it cannot change a verification Result or its hot-path cost.
//
// Captured witnesses are shrunk greybox-style (prefix halving, then
// per-operation drops, each candidate validated by an actual replay) and
// persisted to a content-addressed directory: a manifest.jsonl of canonical
// JSON records plus blobs/<sha256> pre-state snapshots.
package witness

import (
	"encoding/json"
	"fmt"

	"repro/internal/model"
	"repro/internal/obs"
	"repro/internal/separability"
)

// Step is one walk entry: the input applied at that step ("null" for the
// pure device-tick steps between injections), encoded by the system's
// model.Portable codec.
type Step struct {
	Input json.RawMessage `json:"input"`
}

// SystemSpec names the system a witness was captured from, with enough
// detail for a later process to rebuild an equivalent instance (see
// verifysys.FromSpec). Kind is a registry key ("verifysys" for the standard
// verification configuration); Leak is the planted-leak name, empty for the
// honest kernel.
type SystemSpec struct {
	Kind        string `json:"kind"`
	Leak        string `json:"leak,omitempty"`
	Cut         bool   `json:"cut"`
	NoTranslate bool   `json:"noTranslate,omitempty"`
}

// Witness is one replayable counterexample. All fields are stable JSON —
// the manifest line IS the artifact; the pre-state snapshot blob is stored
// beside it, keyed by Snapshot (its SHA-256).
type Witness struct {
	// ID is the first 16 hex digits of the SHA-256 of the canonical JSON
	// encoding of this record with ID itself blanked: content-addressed,
	// so identical counterexamples collide instead of duplicating.
	ID     string     `json:"id"`
	System SystemSpec `json:"system"`

	// Provenance: which checker run found it.
	Seed  int64 `json:"seed"`
	Trial int   `json:"trial"`
	Step  int   `json:"step"`

	// CheckSeed drives the replayed condition sweep. It is recorded as
	// StepCheckSeed(Seed, Trial, Step) at capture time and never changes —
	// shrinking shortens the walk but replays the identical sweep.
	CheckSeed int64 `json:"checkSeed"`
	Sched     bool  `json:"sched,omitempty"`

	// The violation the witness reproduces. Want and Got are the two
	// 64-bit Φ^c (or extract) digests whose disagreement constitutes the
	// violation, as 16-digit hex strings.
	Condition     int    `json:"condition"`
	ConditionName string `json:"conditionName"`
	Colour        string `json:"colour"`
	Op            string `json:"op"`
	Detail        string `json:"detail"`
	Want          string `json:"want"`
	Got           string `json:"got"`

	// Shrink provenance: the original walk length (entries) and how many
	// replays the shrinker spent. len(Steps) is the shrunk length.
	OrigSteps     int `json:"origSteps"`
	ShrinkReplays int `json:"shrinkReplays,omitempty"`

	// Snapshot is the SHA-256 (hex) of the pre-state blob in blobs/.
	Snapshot string `json:"snapshot"`
	Steps    []Step `json:"steps"`

	// Events is the obs event window emitted while replaying the shrunk
	// sequence: the system-level story (context switches, traps, channel
	// traffic) leading into the violation.
	Events []obs.Event `json:"events,omitempty"`

	// In-memory state, populated on capture or by LoadState: the pre-state
	// blob and its decoded StateRef.
	blob []byte
	ref  model.StateRef
}

// Options tunes Capture.
type Options struct {
	// Dir is the artifact directory; empty means capture without
	// persisting (the caller keeps the returned witnesses in memory).
	Dir string
	// MaxWitnesses bounds how many violations are captured, after
	// deduplication by (condition, colour) (0 = 8).
	MaxWitnesses int
	// ShrinkReplays bounds how many candidate replays the shrinker may
	// spend per witness (0 = 256; negative = no shrinking).
	ShrinkReplays int
	// EventWindow is the obs ring capacity for the captured event window
	// (0 = 64).
	EventWindow int
	// Metrics, when non-nil, receives sep_witness_captured_total,
	// sep_witness_shrunk_ops_total and sep_witness_replayed_total.
	Metrics *obs.Registry
	// System is stamped into each witness so replay tooling can rebuild
	// the system it was captured from.
	System SystemSpec
}

func (o *Options) fill() {
	if o.MaxWitnesses == 0 {
		o.MaxWitnesses = 8
	}
	if o.ShrinkReplays == 0 {
		o.ShrinkReplays = 256
	}
	if o.EventWindow == 0 {
		o.EventWindow = 64
	}
}

// tracerSetter is how a tracer is attached for event-window capture; the
// kernel adapter implements it. Systems that don't simply yield witnesses
// without event windows.
type tracerSetter interface {
	SetTracer(t obs.Tracer)
}

// Capture re-derives a replayable witness for each violation in res (up to
// opt.MaxWitnesses after deduplication by condition and colour), shrinks
// it, and — when opt.Dir is set — persists it. sys must be the system the
// check ran against (or an equivalent replica) and must implement
// model.Portable; opt must be the exact Options the check ran with. The
// system's current state is disturbed.
//
// Capture never runs unless the caller asks for it, and it re-executes
// trials entirely after the fact: the verification Result it works from is
// immutable by construction.
func Capture(sys model.Perturbable, copt separability.Options,
	res *separability.Result, opt Options) ([]*Witness, error) {

	opt.fill()
	port, ok := sys.(model.Portable)
	if !ok {
		return nil, fmt.Errorf("witness: system %T does not implement model.Portable", sys)
	}

	var replayed, shrunkOps, captured *obs.Counter
	if opt.Metrics != nil {
		captured = opt.Metrics.Counter("sep_witness_captured_total")
		shrunkOps = opt.Metrics.Counter("sep_witness_shrunk_ops_total")
		replayed = opt.Metrics.Counter("sep_witness_replayed_total")
	}

	seen := map[string]bool{}
	var out []*Witness
	for _, v := range res.Violations {
		key := fmt.Sprintf("%d/%s", v.Condition, v.Colour)
		if seen[key] {
			continue
		}
		if len(out) >= opt.MaxWitnesses {
			break
		}
		w, err := captureOne(sys, port, copt, v, opt, replayed, shrunkOps)
		if err != nil {
			return out, fmt.Errorf("witness: violation %s at trial %d step %d: %w",
				v.Condition, v.Trial, v.Step, err)
		}
		seen[key] = true
		out = append(out, w)
		if captured != nil {
			captured.Inc()
		}
		if opt.Dir != "" {
			if err := writeWitness(opt.Dir, w); err != nil {
				return out, err
			}
		}
	}
	return out, nil
}

// captureOne builds, verifies and shrinks the witness for one violation.
func captureOne(sys model.Perturbable, port model.Portable, copt separability.Options,
	v separability.Violation, opt Options, replayed, shrunkOps *obs.Counter) (*Witness, error) {

	// Re-walk the trial, snapshotting its start state and recording every
	// input up to and including the violating step's.
	var ref model.StateRef
	var ins []model.Input
	separability.WalkTrial(sys, copt, v.Trial, func(step int, in model.Input) bool {
		if step == 0 {
			ref = sys.Save()
		}
		ins = append(ins, in)
		return step < v.Step
	})
	if ref == nil || len(ins) != v.Step+1 {
		return nil, fmt.Errorf("walk replayed %d steps, want %d (StepsPerTrial too small?)",
			len(ins), v.Step+1)
	}

	w := &Witness{
		System:        opt.System,
		Seed:          copt.Seed,
		Trial:         v.Trial,
		Step:          v.Step,
		CheckSeed:     separability.StepCheckSeed(copt.Seed, v.Trial, v.Step),
		Sched:         copt.CheckScheduling,
		Condition:     int(v.Condition),
		ConditionName: v.Condition.String(),
		Colour:        string(v.Colour),
		OrigSteps:     len(ins),
		ref:           ref,
	}

	// The full sequence must reproduce the original violation exactly —
	// same digests — or the witness is worthless; fail loudly.
	got := replaySeq(sys, ref, ins, w, replayed)
	if got == nil {
		return nil, fmt.Errorf("full sequence failed to reproduce the violation")
	}
	if got.Want != v.Want || got.Got != v.Got {
		return nil, fmt.Errorf("full-sequence replay digests %016x/%016x differ from original %016x/%016x",
			got.Want, got.Got, v.Want, v.Got)
	}

	// Shrink, then re-stamp the violation detail from the last good replay
	// (the shrunk walk reaches a different — smaller — violating state, so
	// its digests, op and detail are the ones replay tooling must match).
	final := *got
	if opt.ShrinkReplays > 0 {
		ref, ins, final = shrinkSeq(sys, ref, ins, w, *got, opt.ShrinkReplays, replayed, shrunkOps)
		w.ref = ref
	}
	w.Op = string(final.Op)
	w.Detail = final.Detail
	w.Want = fmt.Sprintf("%016x", final.Want)
	w.Got = fmt.Sprintf("%016x", final.Got)

	// Event window: one more replay of the final sequence with a ring
	// tracer attached, when the system supports attachment. Tracing is
	// host-side observation only — it cannot change what replays.
	if ts, ok := sys.(tracerSetter); ok {
		ring := obs.NewRing(opt.EventWindow)
		ts.SetTracer(ring)
		rv := replaySeq(sys, ref, ins, w, replayed)
		ts.SetTracer(nil)
		if rv == nil {
			return nil, fmt.Errorf("traced replay failed to reproduce the violation")
		}
		w.Events = ring.Events()
	}

	// Persistably encode state and inputs.
	blob, err := port.EncodeState(ref)
	if err != nil {
		return nil, err
	}
	w.blob = blob
	w.Snapshot = hashHex(blob)
	w.Steps = make([]Step, len(ins))
	for i, in := range ins {
		b, err := port.EncodeInput(in)
		if err != nil {
			return nil, err
		}
		w.Steps[i] = Step{Input: rawOrNull(b)}
	}
	id, err := computeID(w)
	if err != nil {
		return nil, err
	}
	w.ID = id
	return w, nil
}

// Replay re-executes w against sys — restore the pre-state, apply the
// recorded inputs with a machine step between each, then run the recorded
// condition sweep at the final state — and returns the violation matching
// the witness's condition and colour, or an error naming what diverged. sys
// must implement model.Portable when w came from disk (its state and inputs
// still need decoding); a freshly captured witness replays directly.
func Replay(sys model.Perturbable, w *Witness) (*separability.Violation, error) {
	if err := decodeForReplay(sys, w); err != nil {
		return nil, err
	}
	ins, err := decodeInputs(sys, w)
	if err != nil {
		return nil, err
	}
	got := replaySeq(sys, w.ref, ins, w, nil)
	if got == nil {
		return nil, fmt.Errorf("witness %s: condition %s did not fire for colour %s at replayed step %d",
			w.ID, w.ConditionName, w.Colour, len(ins)-1)
	}
	if want := fmt.Sprintf("%016x/%016x", got.Want, got.Got); want != w.Want+"/"+w.Got {
		return nil, fmt.Errorf("witness %s: condition fired but digests %s differ from recorded %s/%s",
			w.ID, want, w.Want, w.Got)
	}
	return got, nil
}

// decodeForReplay materializes w.ref from the blob when the witness was
// loaded from disk rather than captured in-process.
func decodeForReplay(sys model.Perturbable, w *Witness) error {
	if w.ref != nil {
		return nil
	}
	port, ok := sys.(model.Portable)
	if !ok {
		return fmt.Errorf("witness: system %T does not implement model.Portable", sys)
	}
	if w.blob == nil {
		return fmt.Errorf("witness %s: snapshot blob not loaded (use LoadState)", w.ID)
	}
	ref, err := port.DecodeState(w.blob)
	if err != nil {
		return err
	}
	w.ref = ref
	return nil
}

// decodeInputs materializes the recorded walk inputs.
func decodeInputs(sys model.Perturbable, w *Witness) ([]model.Input, error) {
	port, _ := sys.(model.Portable)
	ins := make([]model.Input, len(w.Steps))
	for i, s := range w.Steps {
		if isNullRaw(s.Input) {
			continue
		}
		if port == nil {
			return nil, fmt.Errorf("witness: system %T does not implement model.Portable", sys)
		}
		in, err := port.DecodeInput(s.Input)
		if err != nil {
			return nil, fmt.Errorf("witness %s: step %d: %w", w.ID, i, err)
		}
		ins[i] = in
	}
	return ins, nil
}

// replaySeq restores ref, applies ins[0..n-2] each followed by one machine
// step, applies ins[n-1] (the violating step's input), and runs the
// witness's recorded condition sweep at the resulting state. It returns the
// sweep's violation matching the witness's condition and colour, or nil.
func replaySeq(sys model.Perturbable, ref model.StateRef, ins []model.Input,
	w *Witness, replayed *obs.Counter) *separability.Violation {

	if replayed != nil {
		replayed.Inc()
	}
	sys.Restore(ref)
	for i := 0; i < len(ins)-1; i++ {
		sys.ApplyInput(ins[i])
		sys.Step()
	}
	if len(ins) > 0 {
		sys.ApplyInput(ins[len(ins)-1])
	}
	vs := separability.CheckStateSeeded(sys, model.Colour(w.Colour), w.CheckSeed,
		w.Trial, len(ins)-1, w.Sched)
	for i := range vs {
		if int(vs[i].Condition) == w.Condition && string(vs[i].Colour) == w.Colour {
			return &vs[i]
		}
	}
	return nil
}

// rawOrNull wraps encoded input bytes as a JSON value; nil (the nil input)
// becomes JSON null.
func rawOrNull(b []byte) json.RawMessage {
	if b == nil {
		return json.RawMessage("null")
	}
	return json.RawMessage(b)
}

func isNullRaw(r json.RawMessage) bool {
	return len(r) == 0 || string(r) == "null"
}
