// Package asm implements a two-pass assembler for the SM11 instruction set,
// so that regime programs (and the native baselines used by the benchmark
// harness) can be written as readable source rather than hand-encoded words.
//
// Syntax overview:
//
//	; comment               — to end of line
//	label:                  — define label at current location
//	.org  expr              — set the location counter
//	.equ  name, expr        — define a symbol
//	.word e1, e2, ...       — emit literal words
//	.space n                — emit n zero words
//	.ascii "text"           — emit one word per byte
//	MOV  #5, R0             — immediate source
//	MOV  @0xF040, R1        — absolute address (also a bare symbol: MOV buf, R1)
//	MOV  (R2), 4(R3)        — indirect and indexed
//	BEQ  label              — PC-relative branch
//	TRAP #3                 — kernel service call
//
// Expressions support +, - and the usual numeric literals (decimal, 0x, 0o,
// 0b, 'c'), plus previously defined symbols and labels. The assembler is
// strictly two-pass: pass one sizes every statement and collects symbols,
// pass two encodes.
package asm

import (
	"fmt"
	"strconv"
	"strings"

	"repro/internal/machine"
)

// Word aliases the machine word type for brevity.
type Word = machine.Word

// Image is an assembled program: a contiguous block of words to be loaded
// at Org, plus the symbol table for use by loaders and tests.
type Image struct {
	Org     Word
	Words   []Word
	Symbols map[string]Word
}

// End returns the first word address past the image.
func (im *Image) End() Word { return im.Org + Word(len(im.Words)) }

// Symbol looks up a symbol, returning ok=false if undefined.
func (im *Image) Symbol(name string) (Word, bool) {
	v, ok := im.Symbols[name]
	return v, ok
}

// Error describes an assembly failure with its source line.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

// Assemble translates source text into an Image.
func Assemble(src string) (*Image, error) {
	a := &assembler{symbols: map[string]Word{}}
	if err := a.pass(src, 1); err != nil {
		return nil, err
	}
	a.loc = a.org
	a.emitted = a.emitted[:0]
	if err := a.pass(src, 2); err != nil {
		return nil, err
	}
	return &Image{Org: a.org, Words: a.emitted, Symbols: a.symbols}, nil
}

// MustAssemble is Assemble for program literals in tests and examples.
func MustAssemble(src string) *Image {
	im, err := Assemble(src)
	if err != nil {
		panic(err)
	}
	return im
}

type assembler struct {
	symbols map[string]Word
	org     Word
	orgSet  bool
	loc     Word
	over    bool // emission ran past the top of the address space
	emitted []Word
	passNum int
	line    int
}

func (a *assembler) errf(format string, args ...any) error {
	return &Error{Line: a.line, Msg: fmt.Sprintf(format, args...)}
}

func (a *assembler) emit(ws ...Word) {
	// Images must fit below the top of the 16-bit address space: a wrapped
	// location counter would corrupt every later symbol and make the
	// image's [Org, End) range meaningless to loaders.
	if int(a.loc)+len(ws) > 0xFFFF {
		a.over = true
	}
	if a.passNum == 2 {
		a.emitted = append(a.emitted, ws...)
	}
	a.loc += Word(len(ws))
}

func (a *assembler) pass(src string, n int) error {
	a.passNum = n
	a.loc = a.org
	for i, raw := range strings.Split(src, "\n") {
		a.line = i + 1
		if err := a.statement(raw); err != nil {
			return err
		}
		if a.over {
			return a.errf("image extends past the top of the address space (location %#x)", a.loc)
		}
	}
	return nil
}

func (a *assembler) statement(raw string) error {
	line := raw
	if i := strings.IndexByte(line, ';'); i >= 0 {
		// Keep quoted semicolons in .ascii lines.
		if q := strings.IndexByte(line, '"'); q < 0 || q > i {
			line = line[:i]
		} else if e := strings.IndexByte(line[q+1:], '"'); e >= 0 {
			if j := strings.IndexByte(line[q+1+e:], ';'); j >= 0 {
				line = line[:q+1+e+j]
			}
		}
	}
	line = strings.TrimSpace(line)
	if line == "" {
		return nil
	}

	// Labels (possibly several on one line).
	for {
		i := strings.IndexByte(line, ':')
		if i < 0 {
			break
		}
		name := strings.TrimSpace(line[:i])
		if !isIdent(name) {
			break
		}
		if a.passNum == 1 {
			if _, dup := a.symbols[name]; dup {
				return a.errf("duplicate symbol %q", name)
			}
			a.symbols[name] = a.loc
		}
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return nil
		}
	}

	if strings.HasPrefix(line, ".") {
		return a.directive(line)
	}
	return a.instruction(line)
}

func (a *assembler) directive(line string) error {
	fields := strings.SplitN(line, " ", 2)
	name := strings.ToLower(strings.TrimSpace(fields[0]))
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	switch name {
	case ".org":
		v, err := a.expr(rest)
		if err != nil {
			return err
		}
		if !a.orgSet {
			a.org, a.orgSet = v, true
			a.loc = v
			return nil
		}
		if v < a.loc {
			return a.errf(".org %#x moves backwards (location is %#x)", v, a.loc)
		}
		for a.loc < v {
			a.emit(0)
		}
		return nil
	case ".equ":
		parts := splitArgs(rest)
		if len(parts) != 2 {
			return a.errf(".equ needs name, value")
		}
		if a.passNum == 1 {
			v, err := a.expr(parts[1])
			if err != nil {
				return err
			}
			if _, dup := a.symbols[parts[0]]; dup {
				return a.errf("duplicate symbol %q", parts[0])
			}
			a.symbols[parts[0]] = v
		}
		return nil
	case ".word":
		for _, p := range splitArgs(rest) {
			v, err := a.expr(p)
			if err != nil {
				if a.passNum == 1 {
					v = 0 // forward reference; resolved in pass 2
				} else {
					return err
				}
			}
			a.emit(v)
		}
		return nil
	case ".space":
		v, err := a.expr(rest)
		if err != nil {
			return err
		}
		for i := 0; i < int(v); i++ {
			a.emit(0)
		}
		return nil
	case ".ascii", ".asciz":
		s, err := strconv.Unquote(rest)
		if err != nil {
			return a.errf("bad string %s", rest)
		}
		for i := 0; i < len(s); i++ {
			a.emit(Word(s[i]))
		}
		if name == ".asciz" {
			a.emit(0)
		}
		return nil
	}
	return a.errf("unknown directive %s", name)
}

func (a *assembler) instruction(line string) error {
	fields := strings.SplitN(line, " ", 2)
	mnem := strings.ToUpper(strings.TrimSpace(fields[0]))
	rest := ""
	if len(fields) == 2 {
		rest = strings.TrimSpace(fields[1])
	}
	op, ok := machine.OpByName(mnem)
	if !ok {
		return a.errf("unknown instruction %q", mnem)
	}
	args := splitArgs(rest)

	switch {
	case machine.IsBranch(op):
		if len(args) != 1 {
			return a.errf("%s needs one target", mnem)
		}
		next := a.loc + 1
		target, err := a.expr(args[0])
		if err != nil {
			if a.passNum == 1 {
				a.emit(0)
				return nil
			}
			return err
		}
		off := int(int16(target - next))
		if off < -512 || off > 511 {
			return a.errf("branch to %#x out of range (offset %d)", target, off)
		}
		a.emit(machine.EncBranch(op, off))
		return nil

	case op == machine.OpTRAP:
		if len(args) != 1 || !strings.HasPrefix(args[0], "#") {
			return a.errf("TRAP needs #code")
		}
		v, err := a.expr(args[0][1:])
		if err != nil {
			return err
		}
		if v > 0x3ff {
			return a.errf("TRAP code %d exceeds 10 bits", v)
		}
		a.emit(machine.EncTrap(v))
		return nil
	}

	src, dst, err := a.arity(op, mnem, args)
	if err != nil {
		return err
	}

	words := []Word{0}
	var srcSpec, dstSpec Word
	if src != "" {
		spec, ext, hasExt, err := a.operand(src, true)
		if err != nil {
			return err
		}
		srcSpec = spec
		if hasExt {
			words = append(words, ext)
		}
	}
	if dst != "" {
		spec, ext, hasExt, err := a.operand(dst, false)
		if err != nil {
			return err
		}
		dstSpec = spec
		if hasExt {
			words = append(words, ext)
		}
	}
	words[0] = machine.Enc2(op, srcSpec, dstSpec)
	a.emit(words...)
	return nil
}

// arity validates operand count against the opcode's needs.
func (a *assembler) arity(op Word, mnem string, args []string) (src, dst string, err error) {
	needSrc := opNeedsSrc(op)
	needDst := opNeedsDst(op)
	want := 0
	if needSrc {
		want++
	}
	if needDst {
		want++
	}
	if len(args) != want {
		return "", "", a.errf("%s needs %d operand(s), got %d", mnem, want, len(args))
	}
	switch {
	case needSrc && needDst:
		return args[0], args[1], nil
	case needSrc:
		return args[0], "", nil
	case needDst:
		return "", args[0], nil
	}
	return "", "", nil
}

func opNeedsSrc(op Word) bool {
	switch op {
	case machine.OpMOV, machine.OpADD, machine.OpSUB, machine.OpCMP,
		machine.OpAND, machine.OpOR, machine.OpXOR, machine.OpSHL,
		machine.OpSHR, machine.OpPUSH, machine.OpMTPS, machine.OpMUL:
		return true
	}
	return false
}

func opNeedsDst(op Word) bool {
	switch op {
	case machine.OpMOV, machine.OpADD, machine.OpSUB, machine.OpCMP,
		machine.OpAND, machine.OpOR, machine.OpXOR, machine.OpSHL,
		machine.OpSHR, machine.OpNOT, machine.OpNEG, machine.OpJMP,
		machine.OpJSR, machine.OpPOP, machine.OpMFPS, machine.OpMUL:
		return true
	}
	return false
}

// operand parses one operand and returns its 5-bit spec plus any extension
// word. Forward references are tolerated on pass 1 (size is still exact
// because every non-register form is classified syntactically).
func (a *assembler) operand(s string, isSrc bool) (spec, ext Word, hasExt bool, err error) {
	s = strings.TrimSpace(s)
	eval := func(e string) (Word, error) {
		v, err := a.expr(e)
		if err != nil && a.passNum == 1 {
			return 0, nil // forward reference
		}
		return v, err
	}
	switch {
	case isRegName(s):
		return machine.Spec(machine.ModeReg, regNum(s)), 0, false, nil

	case strings.HasPrefix(s, "#"):
		if !isSrc {
			return 0, 0, false, a.errf("immediate %q not allowed as destination", s)
		}
		v, err := eval(s[1:])
		if err != nil {
			return 0, 0, false, err
		}
		return machine.Spec(machine.ModeExtended, machine.RegPC), v, true, nil

	case strings.HasPrefix(s, "(") && strings.HasSuffix(s, ")"):
		r := strings.TrimSpace(s[1 : len(s)-1])
		if !isRegName(r) {
			return 0, 0, false, a.errf("bad indirect operand %q", s)
		}
		return machine.Spec(machine.ModeIndirect, regNum(r)), 0, false, nil

	case strings.HasSuffix(s, ")"):
		i := strings.LastIndexByte(s, '(')
		if i < 0 {
			return 0, 0, false, a.errf("bad operand %q", s)
		}
		r := strings.TrimSpace(s[i+1 : len(s)-1])
		if !isRegName(r) {
			return 0, 0, false, a.errf("bad index register in %q", s)
		}
		v, err := eval(s[:i])
		if err != nil {
			return 0, 0, false, err
		}
		return machine.Spec(machine.ModeIndexed, regNum(r)), v, true, nil

	case strings.HasPrefix(s, "@"):
		v, err := eval(s[1:])
		if err != nil {
			return 0, 0, false, err
		}
		return machine.Spec(machine.ModeExtended, machine.RegSP), v, true, nil

	default:
		// A bare expression is absolute addressing: MOV buf, R0.
		v, err := eval(s)
		if err != nil {
			return 0, 0, false, err
		}
		return machine.Spec(machine.ModeExtended, machine.RegSP), v, true, nil
	}
}

// --- expressions ---

func (a *assembler) expr(s string) (Word, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return 0, a.errf("empty expression")
	}
	var total int64
	sign := int64(1)
	tok := ""
	flush := func() error {
		if tok == "" {
			return nil
		}
		v, err := a.term(tok)
		if err != nil {
			return err
		}
		total += sign * int64(v)
		tok = ""
		return nil
	}
	i := 0
	for i < len(s) {
		c := s[i]
		switch {
		case c == '\'': // char literal
			j := strings.IndexByte(s[i+1:], '\'')
			if j < 0 {
				return 0, a.errf("unterminated char literal in %q", s)
			}
			tok += s[i : i+j+2]
			i += j + 2
		case c == '+' || c == '-':
			if tok == "" && c == '-' && sign == 1 {
				sign = -1
				i++
				continue
			}
			if err := flush(); err != nil {
				return 0, err
			}
			if c == '+' {
				sign = 1
			} else {
				sign = -1
			}
			i++
		case c == ' ' || c == '\t':
			i++
		default:
			tok += string(c)
			i++
		}
	}
	if err := flush(); err != nil {
		return 0, err
	}
	return Word(total), nil
}

func (a *assembler) term(t string) (Word, error) {
	t = strings.TrimSpace(t)
	if t == "" {
		return 0, a.errf("empty term")
	}
	if t[0] == '\'' && len(t) >= 3 && t[len(t)-1] == '\'' {
		return Word(t[1]), nil
	}
	if t == "." {
		return a.loc, nil
	}
	if v, err := strconv.ParseInt(t, 0, 32); err == nil {
		return Word(v), nil
	}
	if v, ok := a.symbols[t]; ok {
		return v, nil
	}
	return 0, a.errf("undefined symbol %q", t)
}

// --- lexical helpers ---

func splitArgs(s string) []string {
	s = strings.TrimSpace(s)
	if s == "" {
		return nil
	}
	var out []string
	depth := 0
	inStr := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			inStr = !inStr
		case '(':
			depth++
		case ')':
			depth--
		case ',':
			if depth == 0 && !inStr {
				out = append(out, strings.TrimSpace(s[start:i]))
				start = i + 1
			}
		}
	}
	out = append(out, strings.TrimSpace(s[start:]))
	return out
}

func isRegName(s string) bool {
	switch strings.ToUpper(s) {
	case "R0", "R1", "R2", "R3", "R4", "R5", "R6", "R7", "SP", "PC":
		return true
	}
	return false
}

func regNum(s string) int {
	switch strings.ToUpper(s) {
	case "SP":
		return machine.RegSP
	case "PC":
		return machine.RegPC
	}
	return int(s[1] - '0')
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c >= 'a' && c <= 'z' || c >= 'A' && c <= 'Z' ||
			i > 0 && c >= '0' && c <= '9'
		if !ok {
			return false
		}
	}
	return true
}
