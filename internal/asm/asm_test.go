package asm_test

import (
	"strings"
	"testing"
	"testing/quick"

	"repro/internal/asm"
	"repro/internal/machine"
)

func mustAsm(t *testing.T, src string) *asm.Image {
	t.Helper()
	im, err := asm.Assemble(src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	return im
}

func TestOrgAndSymbols(t *testing.T) {
	im := mustAsm(t, `
		.org 0x200
	start:
		NOP
	after:
		HALT
	`)
	if im.Org != 0x200 {
		t.Errorf("org = %#x", im.Org)
	}
	if v, ok := im.Symbol("start"); !ok || v != 0x200 {
		t.Errorf("start = %#x ok=%v", v, ok)
	}
	if v, ok := im.Symbol("after"); !ok || v != 0x201 {
		t.Errorf("after = %#x ok=%v", v, ok)
	}
	if im.End() != 0x202 {
		t.Errorf("end = %#x", im.End())
	}
}

func TestDirectives(t *testing.T) {
	im := mustAsm(t, `
		.org 0
		.equ MAGIC, 0x42
		.word MAGIC, MAGIC+1, 'A'
		.space 3
		.ascii "hi"
		.asciz "z"
	`)
	want := []machine.Word{0x42, 0x43, 'A', 0, 0, 0, 'h', 'i', 'z', 0}
	if len(im.Words) != len(want) {
		t.Fatalf("emitted %d words, want %d: %v", len(im.Words), len(want), im.Words)
	}
	for i, w := range want {
		if im.Words[i] != w {
			t.Errorf("word %d = %#x, want %#x", i, im.Words[i], w)
		}
	}
}

func TestMultipleOrgPadding(t *testing.T) {
	im := mustAsm(t, `
		.org 0x10
		.word 1
		.org 0x14
		.word 2
	`)
	want := []machine.Word{1, 0, 0, 0, 2}
	for i, w := range want {
		if im.Words[i] != w {
			t.Errorf("word %d = %#x, want %#x", i, im.Words[i], w)
		}
	}
}

func TestBackwardOrgRejected(t *testing.T) {
	if _, err := asm.Assemble(".org 0x10\n.word 1\n.org 0x5\n"); err == nil {
		t.Error("backwards .org accepted")
	}
}

func TestForwardReferences(t *testing.T) {
	im := mustAsm(t, `
		.org 0x100
		MOV #target, R0
		BR target
		.word target
	target:
		HALT
	`)
	addr, _ := im.Symbol("target")
	if addr != 0x104 {
		t.Fatalf("target = %#x", addr)
	}
	if im.Words[1] != addr {
		t.Errorf("immediate forward ref = %#x", im.Words[1])
	}
	if im.Words[3] != addr {
		t.Errorf(".word forward ref = %#x", im.Words[3])
	}
}

func TestExpressions(t *testing.T) {
	im := mustAsm(t, `
		.org 0
		.equ BASE, 0x100
		.word BASE+0x10, BASE-1, -1, 'Z'-'A', 0o17, 0b101
	`)
	want := []machine.Word{0x110, 0xFF, 0xFFFF, 25, 15, 5}
	for i, w := range want {
		if im.Words[i] != w {
			t.Errorf("expr %d = %#x, want %#x", i, im.Words[i], w)
		}
	}
}

func TestDotSymbol(t *testing.T) {
	im := mustAsm(t, `
		.org 0x50
		.word .
		.word .+1
	`)
	if im.Words[0] != 0x50 || im.Words[1] != 0x52 {
		t.Errorf("dot = %v", im.Words[:2])
	}
}

func TestErrorsAreReportedWithLines(t *testing.T) {
	cases := []string{
		"BOGUS R0",               // unknown mnemonic
		"MOV R0",                 // wrong arity
		"MOV #1, #2",             // immediate destination
		"dup: NOP\ndup: NOP",     // duplicate label
		".word undefined_symbol", // undefined symbol
		".equ X, 1\n.equ X, 2",   // duplicate .equ
		"TRAP R0",                // TRAP needs #code
		"TRAP #0x7FF0",           // code too wide
		".ascii bad",             // unquoted string
		".bogus 1",               // unknown directive
		"MOV (R0, R1",            // mangled operand
	}
	for _, src := range cases {
		if _, err := asm.Assemble(src); err == nil {
			t.Errorf("accepted bad source %q", src)
		} else if !strings.Contains(err.Error(), "line") {
			t.Errorf("error for %q lacks line info: %v", src, err)
		}
	}
}

func TestBranchRange(t *testing.T) {
	var b strings.Builder
	b.WriteString(".org 0\nBR far\n")
	for i := 0; i < 600; i++ {
		b.WriteString("NOP\n")
	}
	b.WriteString("far: HALT\n")
	if _, err := asm.Assemble(b.String()); err == nil {
		t.Error("out-of-range branch accepted")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	im := mustAsm(t, `
		; full-line comment
		.org 0x10   ; trailing comment

		NOP         ; another
	`)
	if len(im.Words) != 1 {
		t.Errorf("words = %v", im.Words)
	}
}

// Property: assembling a program of random simple instructions and
// disassembling the image reproduces a parseable stream of the same length.
func TestAssembleDisasmLengthAgreement(t *testing.T) {
	prop := func(seed uint8) bool {
		lines := []string{".org 0x100"}
		ops := []string{"NOP", "MOV #1, R0", "ADD R1, R2", "SUB 4(R3), R4",
			"CMP #2, @0x200", "PUSH R5", "POP R0", "NOT R1", "TRAP #3"}
		for i := 0; i < 20; i++ {
			lines = append(lines, ops[(int(seed)+i*7)%len(ops)])
		}
		im, err := asm.Assemble(strings.Join(lines, "\n"))
		if err != nil {
			return false
		}
		pos, count := 0, 0
		for pos < len(im.Words) {
			_, n := machine.Disasm(im.Words[pos:])
			if n <= 0 {
				return false
			}
			pos += n
			count++
		}
		return count == 20 && pos == len(im.Words)
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Error(err)
	}
}

// Round-trip: run an assembled program and verify execution semantics end
// to end for each addressing mode combination.
func TestAssembledAddressingModesExecute(t *testing.T) {
	m := machine.New(0x1000)
	im := mustAsm(t, `
		.org 0x100
		.equ SLOT, 0x300
		MOV #0x55, @SLOT
		MOV #SLOT, R1
		MOV (R1), R2          ; 0x55
		MOV #0x2F0, R3
		MOV 0x10(R3), R4      ; mem[0x300] again
		ADD (R1), R4          ; 0xAA
		HALT
	`)
	m.LoadImage(im.Org, im.Words)
	m.SetPC(im.Org)
	m.Run(100)
	if !m.Halted() {
		t.Fatal("did not halt")
	}
	if m.Reg(2) != 0x55 || m.Reg(4) != 0xAA {
		t.Errorf("R2=%#x R4=%#x", m.Reg(2), m.Reg(4))
	}
}

// Robustness: the assembler must reject or accept arbitrary mangled input
// without ever panicking.
func TestAssemblerNeverPanics(t *testing.T) {
	fragments := []string{
		".org", "0x", "MOV", "#", ",", "(R9)", "label:", ":", ".word",
		".equ", "\"", "@", "+", "-", "R0", "#-1", ".space -1", ".ascii",
		"TRAP", "BR", "16(R2", "'", "..", ".asciz \"x", "a: b: c:",
	}
	prop := func(seed int64) bool {
		r := seed
		nextInt := func(n int) int {
			r = r*6364136223846793005 + 1442695040888963407
			v := int((r >> 33) % int64(n))
			if v < 0 {
				v += n
			}
			return v
		}
		var b strings.Builder
		for i := 0; i < 30; i++ {
			b.WriteString(fragments[nextInt(len(fragments))])
			if nextInt(3) == 0 {
				b.WriteByte(' ')
			} else {
				b.WriteByte('\n')
			}
		}
		// Success or error are both fine; a panic fails the property via
		// the test harness.
		_, _ = asm.Assemble(b.String())
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
