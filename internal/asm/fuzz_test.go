package asm_test

import (
	"testing"

	"repro/internal/asm"
	"repro/internal/kernel"
)

// FuzzAssemble throws arbitrary source at the assembler. The assembler may
// reject input with an error, but it must never panic, and accepted input
// must assemble deterministically into a self-consistent image.
func FuzzAssemble(f *testing.F) {
	f.Add("\t.org 0x40\nstart:\tMOV #0, R2\nloop:\tADD #1, R2\n\tBR loop\n")
	f.Add(kernel.Prelude + "\tTRAP #SWAP\n")
	f.Add(".org 0x10\n.word 1, 2, 'A', sym\nsym:\n")
	f.Add(".equ A, 5\n.equ B, A+1\n\t.word B\n")
	f.Add("MOV @0x100, (R2)\nCMP 3(R1), R0\nPUSH R5\nPOP R0\n")
	f.Add("label::\n")
	f.Add(".org 0xffff\n.word 1, 2\n")
	f.Add("BR far\n.org 0x200\nfar:\n")
	f.Fuzz(func(t *testing.T, src string) {
		img, err := asm.Assemble(src)
		if err != nil {
			return
		}
		if img == nil {
			t.Fatal("nil image without error")
		}
		if img.End() < img.Org {
			t.Fatalf("image wraps: org %#x, %d words", img.Org, len(img.Words))
		}
		img2, err2 := asm.Assemble(src)
		if err2 != nil {
			t.Fatalf("second assembly failed: %v", err2)
		}
		if img2.Org != img.Org || len(img2.Words) != len(img.Words) {
			t.Fatalf("non-deterministic assembly: %#x/%d vs %#x/%d",
				img.Org, len(img.Words), img2.Org, len(img2.Words))
		}
		for i := range img.Words {
			if img.Words[i] != img2.Words[i] {
				t.Fatalf("non-deterministic word %d: %#x vs %#x", i, img.Words[i], img2.Words[i])
			}
		}
	})
}
