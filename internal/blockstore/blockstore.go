// Package blockstore realizes the paper's central architectural move at
// machine level: a shared resource (a block store) managed by a dedicated
// trusted component that runs as an ordinary regime on the separation
// kernel, serving client regimes over kernel-mediated channels.
//
// The kernel knows nothing of the store's policy. The per-client slot
// ownership rule ("client A may touch slots 0..15, client B slots 16..31")
// lives entirely in the server regime — the paper's "the task of
// specifying and verifying the properties required of the trusted
// components … should be tackled at this level", with no kernel privilege
// anywhere: the server needs nothing from the kernel that the clients do
// not get too.
package blockstore

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/machine"
)

// Protocol: a request is one word —
//
//	bit 15     operation: 1 = PUT, 0 = GET
//	bits 8–14  slot number
//	bits 0–7   value (PUT only)
//
// The reply is one word: the slot's value, or ErrWord for a denied or
// malformed request.
const (
	OpPut   machine.Word = 1 << 15
	ErrWord machine.Word = 0xFFFF
)

// Put encodes a PUT request.
func Put(slot int, val byte) machine.Word {
	return OpPut | machine.Word(slot&0x7f)<<8 | machine.Word(val)
}

// Get encodes a GET request.
func Get(slot int) machine.Word { return machine.Word(slot&0x7f) << 8 }

// ServerSrc is the block-store server regime. Channel plan (indexes are
// global kernel channel ids, fixed by Build's configuration order):
//
//	0: alice -> server    1: server -> alice
//	2: bob   -> server    3: server -> bob
//
// Slot table at virtual 0x100. Alice owns slots 0..15, bob 16..31 — the
// access policy is these few instructions, nothing more.
const ServerSrc = `
	.org 0x40
	.equ TABLE, 0x100
start:
serve:
	MOV #0, R0          ; poll alice's request channel
	TRAP #RECV
	CMP #1, R0
	BNE try_bob
	MOV R1, R4          ; R4 = request word
	MOV #0, R5          ; alice's slot base
	MOV #16, R3         ; alice's slot limit
	JSR handle
	MOV #1, R0          ; reply to alice
	MOV R2, R1
	TRAP #SEND
try_bob:
	MOV #2, R0          ; poll bob's request channel
	TRAP #RECV
	CMP #1, R0
	BNE idle
	MOV R1, R4
	MOV #16, R5         ; bob's slot base
	MOV #32, R3         ; bob's slot limit
	JSR handle
	MOV #3, R0          ; reply to bob
	MOV R2, R1
	TRAP #SEND
idle:
	TRAP #SWAP
	BR serve

; handle: R4 = request, R5 = first owned slot, R3 = first slot past the
; owned range. Returns R2 = reply word.
handle:
	MOV R4, R2
	SHR #8, R2
	AND #0x7F, R2       ; R2 = slot
	CMP R5, R2          ; flags = slot-base? CMP src,dst → src-dst = base-slot
	BGT deny            ; base > slot: below the owned range
	CMP R3, R2          ; limit - slot
	BLE deny            ; limit <= slot: past the owned range
	MOV R4, R1
	AND #0x8000, R1
	BEQ do_get
	; PUT: store the low byte.
	MOV R4, R1
	AND #0xFF, R1
	MOV R2, R0
	ADD #TABLE, R0
	MOV R1, (R0)
	MOV R1, R2          ; reply echoes the stored value
	RTS
do_get:
	MOV R2, R0
	ADD #TABLE, R0
	MOV (R0), R2
	RTS
deny:
	MOV #0xFFFF, R2
	RTS
`

// clientSrc builds a scripted client regime: it sends each request word
// from its table in turn, waits for the reply, and records replies at
// virtual 0x200+i. reqChan/repChan are the client's global channel ids.
func clientSrc(reqChan, repChan int, requests []machine.Word) string {
	src := fmt.Sprintf(`
	.org 0x40
	.equ NREQ, %d
start:
	MOV #0, R4          ; request index
next:
	CMP #NREQ, R4       ; NREQ - R4
	BEQ done
	MOV R4, R3
	ADD #reqtab, R3
	MOV (R3), R1        ; the request word
	MOV #%d, R0
	TRAP #SEND
	CMP #1, R0
	BNE yield_send      ; channel full: retry later
wait:
	MOV #%d, R0
	TRAP #RECV
	CMP #1, R0
	BEQ got
	TRAP #SWAP
	BR wait
got:
	MOV R4, R3
	ADD #0x200, R3
	MOV R1, (R3)        ; record the reply
	ADD #1, R4
	BR next
yield_send:
	TRAP #SWAP
	BR next
done:
	TRAP #HALTME
reqtab:
`, len(requests), reqChan, repChan)
	for _, r := range requests {
		src += fmt.Sprintf("\t.word %#x\n", r)
	}
	return src
}

// System is a booted block-store deployment.
type System struct {
	*core.System
}

// Build boots the server plus two scripted clients.
func Build(aliceReqs, bobReqs []machine.Word) (*System, error) {
	return build(aliceReqs, bobReqs, false)
}

// BuildCut boots the same system with the channel-cutting transformation
// applied, for isolation verification.
func BuildCut(aliceReqs, bobReqs []machine.Word) (*System, error) {
	return build(aliceReqs, bobReqs, true)
}

func build(aliceReqs, bobReqs []machine.Word, cut bool) (*System, error) {
	b := core.NewBuilder().
		RegimeSized("server", ServerSrc, 0x400).
		RegimeSized("alice", clientSrc(0, 1, aliceReqs), 0x400).
		RegimeSized("bob", clientSrc(2, 3, bobReqs), 0x400).
		Channel("alice", "server", 8).
		Channel("server", "alice", 8).
		Channel("bob", "server", 8).
		Channel("server", "bob", 8)
	if cut {
		b.CutChannels()
	}
	sys, err := b.Build()
	if err != nil {
		return nil, err
	}
	return &System{System: sys}, nil
}

// Replies reads back the replies a client recorded.
func (s *System) Replies(client string, n int) ([]machine.Word, error) {
	var out []machine.Word
	for i := 0; i < n; i++ {
		v, ok := s.RegimeWord(client, machine.Word(0x200+i))
		if !ok {
			return nil, fmt.Errorf("blockstore: cannot read %s reply %d", client, i)
		}
		out = append(out, v)
	}
	return out, nil
}
