package blockstore_test

import (
	"testing"

	"repro/internal/blockstore"
	"repro/internal/kernel"
	"repro/internal/machine"
	"repro/internal/separability"
)

func run(t *testing.T, alice, bob []machine.Word) *blockstore.System {
	t.Helper()
	sys, err := blockstore.Build(alice, bob)
	if err != nil {
		t.Fatal(err)
	}
	sys.RunUntilIdle(200000)
	if sys.Kernel.Dead() {
		t.Fatalf("kernel died: %v", sys.Kernel.Cause)
	}
	return sys
}

func TestPutGetRoundTrip(t *testing.T) {
	sys := run(t,
		[]machine.Word{blockstore.Put(3, 0x5A), blockstore.Get(3)},
		[]machine.Word{blockstore.Put(20, 0x7B), blockstore.Get(20)})
	a, err := sys.Replies("alice", 2)
	if err != nil {
		t.Fatal(err)
	}
	if a[0] != 0x5A || a[1] != 0x5A {
		t.Errorf("alice replies = %#v, want [0x5A 0x5A]", a)
	}
	b, _ := sys.Replies("bob", 2)
	if b[0] != 0x7B || b[1] != 0x7B {
		t.Errorf("bob replies = %#v, want [0x7B 0x7B]", b)
	}
}

func TestSlotOwnershipEnforcedByComponent(t *testing.T) {
	// Alice tries bob's slot 20; bob tries alice's slot 3. Both must be
	// denied by the SERVER (the kernel knows nothing of slots).
	sys := run(t,
		[]machine.Word{blockstore.Put(20, 0x11), blockstore.Get(20)},
		[]machine.Word{blockstore.Get(3), blockstore.Put(3, 0x22)})
	a, _ := sys.Replies("alice", 2)
	b, _ := sys.Replies("bob", 2)
	for i, v := range a {
		if v != blockstore.ErrWord {
			t.Errorf("alice cross-tenant request %d returned %#x, want denial", i, v)
		}
	}
	for i, v := range b {
		if v != blockstore.ErrWord {
			t.Errorf("bob cross-tenant request %d returned %#x, want denial", i, v)
		}
	}
}

func TestTenantsDoNotInterfere(t *testing.T) {
	// Both write "their" slot 0-relative value; each reads back its own.
	sys := run(t,
		[]machine.Word{blockstore.Put(0, 0xAA), blockstore.Get(0)},
		[]machine.Word{blockstore.Put(16, 0xBB), blockstore.Get(16)})
	a, _ := sys.Replies("alice", 2)
	b, _ := sys.Replies("bob", 2)
	if a[1] != 0xAA {
		t.Errorf("alice read back %#x", a[1])
	}
	if b[1] != 0xBB {
		t.Errorf("bob read back %#x", b[1])
	}
}

func TestClientsFinish(t *testing.T) {
	sys := run(t,
		[]machine.Word{blockstore.Get(0)},
		[]machine.Word{blockstore.Get(16)})
	for _, c := range []string{"alice", "bob"} {
		i := sys.Kernel.RegimeIndex(c)
		if st := sys.Kernel.RegimeStateOf(i); st != kernel.StateDead {
			t.Errorf("%s did not halt cleanly (state %d, fault %+v)",
				c, st, sys.Kernel.RegimeFault(i))
		}
	}
}

// The block-store system itself submits to Proof of Separability: with its
// four channels cut, the three regimes must verify isolated. (Partitions
// here are 1K words, so this is the largest configuration the randomized
// checker exercises in the suite.)
func TestBlockstoreSeparabilityWhenCut(t *testing.T) {
	cut, err := blockstore.BuildCut(
		[]machine.Word{blockstore.Put(1, 0x11), blockstore.Get(1)},
		[]machine.Word{blockstore.Put(17, 0x22), blockstore.Get(17)})
	if err != nil {
		t.Fatal(err)
	}
	res := separability.CheckRandomized(cut.Adapter, separability.Options{
		Trials: 4, StepsPerTrial: 50, Seed: 21,
	})
	if !res.Passed() {
		for i, v := range res.Violations {
			if i > 3 {
				break
			}
			t.Logf("violation: %s", v)
		}
		t.Fatalf("cut blockstore failed separability: %s", res.Summary())
	}
}
