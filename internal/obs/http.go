package obs

import (
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
)

// This file closes the ROADMAP item "stream sepverify -progress counters
// over an HTTP /metrics endpoint": the registry already speaks the
// Prometheus text format, so the listener is a thin stdlib shim around it.
// Package obs stays dependency-free — net/http is standard library.

// MetricsHandler serves a registry snapshot. The default representation is
// the Prometheus text exposition format; `?format=json` returns the same
// snapshot as JSON (the WriteJSON encoding).
func MetricsHandler(r *Registry) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		switch req.URL.Query().Get("format") {
		case "", "prom":
			w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
			_ = r.WritePrometheus(w)
		case "json":
			w.Header().Set("Content-Type", "application/json")
			_ = r.WriteJSON(w)
		default:
			http.Error(w, "unknown format (want prom or json)", http.StatusBadRequest)
		}
	})
}

// ListenOptions tunes ListenMetricsOpts.
type ListenOptions struct {
	// Pprof additionally serves the net/http/pprof profiling handlers
	// under /debug/pprof/, so long verification runs can be profiled live
	// (go tool pprof http://ADDR/debug/pprof/profile) instead of only via
	// -cpuprofile files written at exit.
	Pprof bool
	// Handlers mounts additional endpoints on the same listener, keyed by
	// pattern ("/status"). /metrics always serves the registry; a Handlers
	// entry for "/metrics" is ignored. Long-running services (sepwatch)
	// use this to co-host their status JSON with the metrics scrape.
	Handlers map[string]http.Handler
}

// ListenMetrics exposes the registry at /metrics on addr (use host:0 for an
// ephemeral port). It returns the bound address and a shutdown function
// that stops the listener; scraping never perturbs the counters beyond the
// atomic loads the registry already performs.
func ListenMetrics(addr string, r *Registry) (bound string, shutdown func() error, err error) {
	return ListenMetricsOpts(addr, r, ListenOptions{})
}

// ListenMetricsOpts is ListenMetrics with options.
func ListenMetricsOpts(addr string, r *Registry, opt ListenOptions) (bound string, shutdown func() error, err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, fmt.Errorf("obs: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	for pattern, h := range opt.Handlers {
		if pattern == "/metrics" {
			continue
		}
		mux.Handle(pattern, h)
	}
	mux.Handle("/metrics", MetricsHandler(r))
	if opt.Pprof {
		// The pprof package registers only on http.DefaultServeMux; wire
		// its handlers onto the private mux explicitly.
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Handler: mux}
	go func() { _ = srv.Serve(ln) }()
	return ln.Addr().String(), srv.Close, nil
}
