package obs_test

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
	"repro/internal/model"
	"repro/internal/obs"
)

// The two-regime demo from cmd/seprun, duplicated here so the golden trace
// is pinned against the same workload the CLI ships.
const demoSender = `
	.org 0x40
start:
	MOV #1, R2
loop:
	MOV #0, R0
	MOV R2, R1
	TRAP #SEND
	ADD #1, R2
	CMP #11, R2
	BEQ done
	TRAP #SWAP
	BR loop
done:
	TRAP #HALTME
`

const demoReceiver = `
	.org 0x40
start:
	MOV #0, R4
loop:
	MOV #0, R0
	TRAP #RECV
	CMP #1, R0
	BNE yield
	ADD R1, R4
	MOV R4, @0x20
	BR loop
yield:
	TRAP #SWAP
	BR loop
`

func buildDemo(t *testing.T) *core.System {
	t.Helper()
	b := core.NewBuilder()
	b.Regime("sender", demoSender)
	b.Regime("receiver", demoReceiver)
	b.Channel("sender", "receiver", 8)
	sys, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestDemoTraceGolden pins the event trace of the seprun demo: the exact
// opening sequence (JSONL-encoded) and the census of interesting events.
// The demo is deterministic, so any drift here is a real behaviour change.
func TestDemoTraceGolden(t *testing.T) {
	sys := buildDemo(t)
	ring := obs.NewRing(65536)
	sys.SetTracer(ring)
	sys.RunUntilIdle(50000)

	events := ring.Events()
	if len(events) == 0 {
		t.Fatal("no events traced")
	}

	golden := []string{
		`{"cycle":4,"kind":"syscall-enter","regime":0,"trap":1,"name":"SEND"}`,
		`{"cycle":4,"kind":"chan-send","regime":0,"chan":0,"value":1,"occ":1,"name":"sender->receiver"}`,
		`{"cycle":4,"kind":"syscall-exit","regime":0,"trap":1,"r0":1,"name":"SEND"}`,
		`{"cycle":8,"kind":"syscall-enter","regime":0,"trap":0,"name":"SWAP"}`,
		`{"cycle":8,"kind":"ctx-switch","regime":1,"prev":0,"name":"receiver"}`,
		`{"cycle":8,"kind":"syscall-exit","regime":0,"trap":0,"r0":1,"name":"SWAP"}`,
		`{"cycle":11,"kind":"syscall-enter","regime":1,"trap":2,"name":"RECV"}`,
		`{"cycle":11,"kind":"chan-recv","regime":1,"chan":0,"value":1,"occ":0,"name":"sender->receiver"}`,
	}
	for i, want := range golden {
		got := string(obs.AppendJSON(nil, events[i]))
		if got != want {
			t.Errorf("event %d:\n  got  %s\n  want %s", i, got, want)
		}
	}

	counts := map[obs.EventKind]int{}
	for _, e := range events {
		counts[e.Kind]++
	}
	// The sender hands 1..10 across the channel, then halts; the receiver
	// takes each value. Every syscall pairs an enter with an exit.
	if counts[obs.EvChanSend] != 10 || counts[obs.EvChanRecv] != 10 {
		t.Errorf("channel census: %d sends, %d recvs, want 10/10",
			counts[obs.EvChanSend], counts[obs.EvChanRecv])
	}
	if counts[obs.EvRegimeHalt] != 1 {
		t.Errorf("halts = %d, want 1", counts[obs.EvRegimeHalt])
	}
	if counts[obs.EvSyscallEnter] != counts[obs.EvSyscallExit] {
		t.Errorf("unbalanced syscalls: %d enters, %d exits",
			counts[obs.EvSyscallEnter], counts[obs.EvSyscallExit])
	}
	// The boot hand-off happens before the tracer is attached, so the ring
	// sees exactly one fewer switch than the kernel counted.
	if got, want := counts[obs.EvContextSwitch], int(sys.Stats().Switches)-1; got != want {
		t.Errorf("ctx-switch events = %d, kernel counted %d post-boot", got, want)
	}

	// The same events must render as a loadable Chrome trace.
	var buf bytes.Buffer
	if err := obs.WriteChrome(&buf, sys.RegimeNames(), events); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("chrome trace is not valid JSON: %v", err)
	}
	// Syscall enter/exit pairs fold into single X events, so expect one
	// slice per enter plus the metadata, instants and B/E switch slices.
	var begins, ends, slices int
	for _, p := range parsed {
		switch p["ph"] {
		case "B":
			begins++
		case "E":
			ends++
		case "X":
			slices++
		}
	}
	if begins != ends {
		t.Errorf("unbalanced duration events: %d B, %d E", begins, ends)
	}
	if slices != counts[obs.EvSyscallEnter] {
		t.Errorf("chrome trace has %d X slices for %d syscalls", slices, counts[obs.EvSyscallEnter])
	}
}

// TestTracerDoesNotPerturbDigests is the load-bearing guarantee of the
// whole subsystem: attaching a tracer must not change the modelled state.
// Two identical systems — one traced, one not — must agree on Φ^c and its
// digest for every colour at every sampled point, and a verification run
// over the traced system must produce a byte-identical summary.
func TestTracerDoesNotPerturbDigests(t *testing.T) {
	bare := buildDemo(t)
	traced := buildDemo(t)
	ring := obs.NewRing(65536)
	traced.SetTracer(ring)

	for step := 0; step < 50; step++ {
		bare.Run(100)
		traced.Run(100)
		for _, c := range bare.Adapter.Colours() {
			bd, td := bare.Adapter.AbstractDigest(c), traced.Adapter.AbstractDigest(c)
			if bd != td {
				t.Fatalf("step %d colour %v: digest %#x (bare) != %#x (traced)", step, c, bd, td)
			}
			ba, ta := bare.Adapter.Abstract(c), traced.Adapter.Abstract(c)
			if ba != ta {
				t.Fatalf("step %d colour %v: Φ^c diverged:\n%s\nvs\n%s", step, c, ba, ta)
			}
			if want := model.DigestString(ba); bd != want {
				t.Fatalf("digest %#x does not hash Φ^c (%#x)", bd, want)
			}
		}
	}
	if ring.Len() == 0 {
		t.Fatal("traced system emitted no events — the comparison proved nothing")
	}

	// Verification outcome must be byte-identical with the tracer attached.
	vo := core.VerifyOptions{Trials: 4, StepsPerTrial: 50, Seed: 3, Workers: 1}
	bareRes := buildDemo(t).Verify(vo)
	tsys := buildDemo(t)
	tsys.SetTracer(obs.NewRing(1024))
	tracedRes := tsys.Verify(vo)
	if bareRes.Summary() != tracedRes.Summary() {
		t.Fatalf("tracer changed the verification outcome:\n  %s\n  %s",
			bareRes.Summary(), tracedRes.Summary())
	}
}

// TestTraceFormatsAgree encodes the demo trace both ways and checks the
// JSONL line count matches the ring (every event renders exactly once).
func TestTraceFormatsAgree(t *testing.T) {
	sys := buildDemo(t)
	ring := obs.NewRing(65536)
	sys.SetTracer(ring)
	sys.RunUntilIdle(50000)

	var buf bytes.Buffer
	j := obs.NewJSONL(&buf)
	for _, e := range ring.Events() {
		j.Emit(e)
	}
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Count(buf.String(), "\n")
	if lines != ring.Len() {
		t.Fatalf("JSONL rendered %d lines for %d events", lines, ring.Len())
	}
}
