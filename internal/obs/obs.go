// Package obs is the observability layer of the reproduction: a
// zero-dependency (standard library only) event-tracing and metrics
// subsystem threaded through the SUE-Go kernel, the SM11 machine, and the
// separability verifier.
//
// Rushby's argument rests on what each regime can observe of the shared
// machine; obs makes the machine's own behaviour observable to *us* —
// context switches, system calls, interrupt fielding and delivery, channel
// traffic, faults — while staying strictly outside the modelled state S.
// Tracer hooks are held in fields that machine.Snapshot never captures and
// Φ^c never renders, so attaching a Tracer cannot change AbstractDigest,
// cannot survive a model.Replicable clone, and therefore can never become a
// covert channel inside the proofs (kernel tests enforce digest equality
// with tracing on and off).
//
// The two halves:
//
//   - Tracer + Event: a typed event stream. Sinks provided here are Ring
//     (bounded in-memory buffer), JSONL (one JSON object per line), and
//     Chrome (the trace_event format that chrome://tracing and Perfetto
//     open directly).
//   - Registry: goroutine-safe counters and histograms with Prometheus
//     text and JSON exporters, used for per-regime kernel activity and
//     per-worker verifier throughput.
package obs

// EventKind classifies a trace event.
type EventKind uint8

// Event kinds. Kernel-side kinds mirror the SUE-Go kernel's entry points;
// EvIRQRaise is emitted by the machine's device-tick phase when a device's
// interrupt line goes pending (the INPUT half of a model time step).
const (
	// EvContextSwitch: the CPU was handed to Regime (or the kernel idle
	// loop when Regime < 0); Prev is the outgoing regime.
	EvContextSwitch EventKind = iota
	// EvSyscallEnter: regime Regime entered kernel service Arg (trap code).
	EvSyscallEnter
	// EvSyscallExit: the service returned; Value is the regime's R0 (the
	// kernel ABI's result register) as the service left it.
	EvSyscallExit
	// EvIRQField: the kernel fielded device Arg's hardware interrupt and
	// credited it to Regime (-1 = unowned, dropped).
	EvIRQField
	// EvIRQDeliver: virtual interrupt Arg was delivered into Regime.
	EvIRQDeliver
	// EvChanSend: Regime sent Value on channel Arg; Occ is the occupancy
	// after the send.
	EvChanSend
	// EvChanRecv: Regime received Value from channel Arg; Occ is the
	// occupancy after the receive.
	EvChanRecv
	// EvFault: Regime died; Detail is the reason.
	EvFault
	// EvRegimeHalt: Regime halted voluntarily (TRAP #HALTME).
	EvRegimeHalt
	// EvIRQRaise: device Arg's interrupt line went pending during a device
	// tick (emitted by the machine, not the kernel).
	EvIRQRaise

	numEventKinds
)

var kindNames = [numEventKinds]string{
	EvContextSwitch: "ctx-switch",
	EvSyscallEnter:  "syscall-enter",
	EvSyscallExit:   "syscall-exit",
	EvIRQField:      "irq-field",
	EvIRQDeliver:    "irq-deliver",
	EvChanSend:      "chan-send",
	EvChanRecv:      "chan-recv",
	EvFault:         "fault",
	EvRegimeHalt:    "halt",
	EvIRQRaise:      "irq-raise",
}

// String names the kind ("ctx-switch", "syscall-enter", ...).
func (k EventKind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "unknown"
}

// Event is one observation. Fields beyond Cycle/Kind are kind-specific;
// unused ones are zero. Events are plain values: emitting one never hands
// the sink a pointer into kernel or machine state.
type Event struct {
	// Cycle is the machine cycle counter at emission time.
	Cycle uint64
	// Kind classifies the event.
	Kind EventKind
	// Regime is the regime index the event concerns (-1 = kernel/none).
	Regime int
	// Prev is the outgoing regime on a context switch (-1 = idle/boot).
	Prev int
	// Arg is the kind-specific small integer: trap code, device index,
	// virtual interrupt number, or channel index.
	Arg int
	// Value is the kind-specific payload word (channel word, R0 result).
	Value uint64
	// Occ is the channel occupancy after a send/receive.
	Occ int
	// Name is the symbolic subject: trap, device, channel or regime name.
	Name string
	// Detail carries free-form context (fault reasons).
	Detail string
}

// Tracer receives events. Implementations must be safe for use from the
// single goroutine stepping the traced system; Ring and JSONL are
// additionally safe for concurrent emitters.
type Tracer interface {
	Emit(Event)
}

// TracerFunc adapts a function to the Tracer interface.
type TracerFunc func(Event)

// Emit implements Tracer.
func (f TracerFunc) Emit(e Event) { f(e) }

// Nop is a Tracer that discards every event; it is the cheap default for
// benchmarking the cost of the hooks themselves (the true default in the
// kernel and machine is no tracer at all: a nil check).
type Nop struct{}

// Emit implements Tracer.
func (Nop) Emit(Event) {}
