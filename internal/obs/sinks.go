package obs

import (
	"bufio"
	"io"
	"strconv"
	"sync"
)

// --- Ring ---

// Ring is a bounded in-memory event sink: once full it overwrites the
// oldest events, so it always holds the most recent window. Every
// overwrite is counted as a dropped event (the window silently losing
// history is itself an observability failure worth observing); read the
// count with Dropped or publish it with FillRegistry. Safe for concurrent
// emitters.
type Ring struct {
	mu      sync.Mutex
	buf     []Event
	next    int
	wrapped bool
	dropped uint64
}

// NewRing returns a ring holding at most capacity events (minimum 1).
func NewRing(capacity int) *Ring {
	if capacity < 1 {
		capacity = 1
	}
	return &Ring{buf: make([]Event, capacity)}
}

// Emit implements Tracer.
func (r *Ring) Emit(e Event) {
	r.mu.Lock()
	if r.wrapped {
		r.dropped++ // this write evicts the oldest held event
	}
	r.buf[r.next] = e
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.wrapped = true
	}
	r.mu.Unlock()
}

// Dropped reports how many events have been evicted to make room since the
// ring was created. The count is cumulative — Reset empties the window but
// does not forget past losses (drop counters are monotonic, like the
// obs_events_dropped_total counter FillRegistry publishes).
func (r *Ring) Dropped() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.dropped
}

// FillRegistry publishes the ring's loss counter into a metrics registry
// as obs_events_dropped_total. It adds the current point-in-time value, so
// use a fresh registry per export (the same contract as the kernel's
// FillRegistry).
func (r *Ring) FillRegistry(reg *Registry) {
	reg.Counter("obs_events_dropped_total").Add(r.Dropped())
}

// Len reports how many events are currently held.
func (r *Ring) Len() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.wrapped {
		return len(r.buf)
	}
	return r.next
}

// Events returns the held events oldest-first.
func (r *Ring) Events() []Event {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.wrapped {
		return append([]Event(nil), r.buf[:r.next]...)
	}
	out := make([]Event, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// Reset empties the ring.
func (r *Ring) Reset() {
	r.mu.Lock()
	r.next = 0
	r.wrapped = false
	r.mu.Unlock()
}

// --- JSONL ---

// JSONL writes one JSON object per event per line. The field order is
// fixed (cycle, kind, then kind-relevant fields), so equal event sequences
// produce byte-identical files — which is what makes JSONL traces diffable
// across runs. Safe for concurrent emitters.
type JSONL struct {
	mu sync.Mutex
	w  *bufio.Writer
}

// NewJSONL wraps w in a buffered JSONL sink; call Flush when done.
func NewJSONL(w io.Writer) *JSONL {
	return &JSONL{w: bufio.NewWriter(w)}
}

// Emit implements Tracer.
func (j *JSONL) Emit(e Event) {
	j.mu.Lock()
	j.w.Write(AppendJSON(nil, e))
	j.w.WriteByte('\n')
	j.mu.Unlock()
}

// Flush drains the internal buffer to the underlying writer.
func (j *JSONL) Flush() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.w.Flush()
}

// AppendJSON appends e's canonical JSON encoding to dst and returns the
// extended slice. Fields irrelevant to the event's kind are omitted.
func AppendJSON(dst []byte, e Event) []byte {
	dst = append(dst, `{"cycle":`...)
	dst = strconv.AppendUint(dst, e.Cycle, 10)
	dst = append(dst, `,"kind":"`...)
	dst = append(dst, e.Kind.String()...)
	dst = append(dst, `","regime":`...)
	dst = strconv.AppendInt(dst, int64(e.Regime), 10)
	switch e.Kind {
	case EvContextSwitch:
		dst = append(dst, `,"prev":`...)
		dst = strconv.AppendInt(dst, int64(e.Prev), 10)
	case EvSyscallEnter:
		dst = append(dst, `,"trap":`...)
		dst = strconv.AppendInt(dst, int64(e.Arg), 10)
	case EvSyscallExit:
		dst = append(dst, `,"trap":`...)
		dst = strconv.AppendInt(dst, int64(e.Arg), 10)
		dst = append(dst, `,"r0":`...)
		dst = strconv.AppendUint(dst, e.Value, 10)
	case EvIRQField, EvIRQDeliver, EvIRQRaise:
		dst = append(dst, `,"irq":`...)
		dst = strconv.AppendInt(dst, int64(e.Arg), 10)
	case EvChanSend, EvChanRecv:
		dst = append(dst, `,"chan":`...)
		dst = strconv.AppendInt(dst, int64(e.Arg), 10)
		dst = append(dst, `,"value":`...)
		dst = strconv.AppendUint(dst, e.Value, 10)
		dst = append(dst, `,"occ":`...)
		dst = strconv.AppendInt(dst, int64(e.Occ), 10)
	}
	if e.Name != "" {
		dst = append(dst, `,"name":`...)
		dst = strconv.AppendQuote(dst, e.Name)
	}
	if e.Detail != "" {
		dst = append(dst, `,"detail":`...)
		dst = strconv.AppendQuote(dst, e.Detail)
	}
	return append(dst, '}')
}
