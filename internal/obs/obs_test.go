package obs

import (
	"encoding/json"
	"strings"
	"testing"
)

func TestRingOrderAndWrap(t *testing.T) {
	r := NewRing(4)
	for i := 0; i < 3; i++ {
		r.Emit(Event{Cycle: uint64(i)})
	}
	if r.Len() != 3 {
		t.Fatalf("Len = %d, want 3", r.Len())
	}
	evs := r.Events()
	for i, e := range evs {
		if e.Cycle != uint64(i) {
			t.Fatalf("event %d has cycle %d", i, e.Cycle)
		}
	}
	// Overflow: the ring keeps the newest window.
	for i := 3; i < 10; i++ {
		r.Emit(Event{Cycle: uint64(i)})
	}
	evs = r.Events()
	if len(evs) != 4 {
		t.Fatalf("after wrap Len = %d, want 4", len(evs))
	}
	for i, e := range evs {
		if want := uint64(6 + i); e.Cycle != want {
			t.Fatalf("after wrap event %d has cycle %d, want %d", i, e.Cycle, want)
		}
	}
	r.Reset()
	if r.Len() != 0 {
		t.Fatalf("after Reset Len = %d", r.Len())
	}
}

func TestJSONLEncoding(t *testing.T) {
	var sb strings.Builder
	j := NewJSONL(&sb)
	j.Emit(Event{Cycle: 7, Kind: EvChanSend, Regime: 0, Arg: 2, Value: 42, Occ: 3, Name: "a->b"})
	j.Emit(Event{Cycle: 9, Kind: EvFault, Regime: 1, Name: "rx", Detail: "MMU abort"})
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("got %d lines", len(lines))
	}
	want0 := `{"cycle":7,"kind":"chan-send","regime":0,"chan":2,"value":42,"occ":3,"name":"a->b"}`
	if lines[0] != want0 {
		t.Fatalf("line 0:\n got %s\nwant %s", lines[0], want0)
	}
	// Every line must be standalone valid JSON.
	for _, l := range lines {
		var m map[string]any
		if err := json.Unmarshal([]byte(l), &m); err != nil {
			t.Fatalf("invalid JSON %q: %v", l, err)
		}
	}
	var m map[string]any
	json.Unmarshal([]byte(lines[1]), &m)
	if m["detail"] != "MMU abort" || m["kind"] != "fault" {
		t.Fatalf("fault line decoded to %v", m)
	}
}

func TestChromeTraceIsValidJSON(t *testing.T) {
	var sb strings.Builder
	events := []Event{
		{Cycle: 0, Kind: EvContextSwitch, Regime: 0, Prev: -1, Name: "tx"},
		{Cycle: 3, Kind: EvSyscallEnter, Regime: 0, Arg: 1, Name: "SEND"},
		{Cycle: 3, Kind: EvChanSend, Regime: 0, Arg: 0, Value: 5, Occ: 1, Name: "tx->rx"},
		{Cycle: 3, Kind: EvSyscallExit, Regime: 0, Arg: 1, Name: "SEND", Value: 1},
		{Cycle: 4, Kind: EvContextSwitch, Regime: 1, Prev: 0, Name: "rx"},
		{Cycle: 8, Kind: EvIRQRaise, Regime: -1, Arg: 0, Name: "tty"},
		{Cycle: 9, Kind: EvContextSwitch, Regime: -1, Prev: 1},
	}
	if err := WriteChrome(&sb, []string{"tx", "rx"}, events); err != nil {
		t.Fatal(err)
	}
	var records []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &records); err != nil {
		t.Fatalf("chrome trace is not a JSON array: %v\n%s", err, sb.String())
	}
	// 3 thread_name metadata records, then geometry.
	var metas, begins, ends int
	for _, r := range records {
		switch r["ph"] {
		case "M":
			metas++
		case "B":
			begins++
		case "E":
			ends++
		}
	}
	if metas != 3 {
		t.Fatalf("thread_name records = %d, want 3", metas)
	}
	if begins != ends || begins != 2 {
		t.Fatalf("unbalanced slices: %d B vs %d E (want 2 each)", begins, ends)
	}
}

func TestRegistryExporters(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total").Add(3)
	r.Counter(`b_total{worker="1"}`).Inc()
	h := r.Histogram(`lat_seconds{worker="1"}`, []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)

	var prom strings.Builder
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	want := `a_total 3
b_total{worker="1"} 1
lat_seconds_bucket{worker="1",le="0.1"} 1
lat_seconds_bucket{worker="1",le="1"} 2
lat_seconds_bucket{worker="1",le="+Inf"} 3
lat_seconds_sum{worker="1"} 5.55
lat_seconds_count{worker="1"} 3
`
	if prom.String() != want {
		t.Fatalf("prometheus text:\n got:\n%s\nwant:\n%s", prom.String(), want)
	}

	var js strings.Builder
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Counters   map[string]uint64 `json:"counters"`
		Histograms map[string]struct {
			Count   uint64            `json:"count"`
			Sum     float64           `json:"sum"`
			Buckets map[string]uint64 `json:"buckets"`
		} `json:"histograms"`
	}
	if err := json.Unmarshal([]byte(js.String()), &decoded); err != nil {
		t.Fatalf("JSON export invalid: %v\n%s", err, js.String())
	}
	if decoded.Counters["a_total"] != 3 {
		t.Fatalf("a_total = %d", decoded.Counters["a_total"])
	}
	hd := decoded.Histograms[`lat_seconds{worker="1"}`]
	if hd.Count != 3 || hd.Buckets["+Inf"] != 3 || hd.Buckets["0.1"] != 1 {
		t.Fatalf("histogram export wrong: %+v", hd)
	}

	// Exports are deterministic.
	var prom2 strings.Builder
	r.WritePrometheus(&prom2)
	if prom.String() != prom2.String() {
		t.Fatal("prometheus export not deterministic")
	}
}

func TestCounterValueWithoutCreate(t *testing.T) {
	r := NewRegistry()
	if v := r.CounterValue("missing"); v != 0 {
		t.Fatalf("missing counter read %d", v)
	}
	if got := len(r.Counters()); got != 0 {
		t.Fatalf("CounterValue created a counter: %d registered", got)
	}
}
