package obs_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

func TestGaugeSetAndExport(t *testing.T) {
	r := obs.NewRegistry()
	r.Gauge(`sep_watch_last_verdict{deployment="honest"}`).Set(1)
	r.Gauge("sep_watch_ledger_age_seconds").Set(12.5)
	r.Gauge("sep_watch_ledger_age_seconds").Set(3.25) // settable both ways
	r.Counter("sep_watch_cycles_total").Add(2)

	if got := r.GaugeValue("sep_watch_ledger_age_seconds"); got != 3.25 {
		t.Fatalf("GaugeValue = %g, want 3.25", got)
	}
	if got := r.GaugeValue("nonexistent"); got != 0 {
		t.Fatalf("absent gauge = %g, want 0", got)
	}

	var prom bytes.Buffer
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"sep_watch_cycles_total 2\n",
		"sep_watch_ledger_age_seconds 3.25\n",
		`sep_watch_last_verdict{deployment="honest"} 1` + "\n",
	} {
		if !strings.Contains(prom.String(), want) {
			t.Errorf("Prometheus export missing %q:\n%s", want, prom.String())
		}
	}

	var js bytes.Buffer
	if err := r.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded struct {
		Counters map[string]uint64  `json:"counters"`
		Gauges   map[string]float64 `json:"gauges"`
	}
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("WriteJSON output not JSON: %v\n%s", err, js.String())
	}
	if decoded.Gauges["sep_watch_ledger_age_seconds"] != 3.25 {
		t.Errorf("JSON gauges = %v", decoded.Gauges)
	}
	if decoded.Counters["sep_watch_cycles_total"] != 2 {
		t.Errorf("JSON counters = %v", decoded.Counters)
	}
}

// Equal registries must export byte-identical text regardless of the order
// gauges were created in (the same determinism contract counters have).
func TestGaugeExportDeterministic(t *testing.T) {
	a, b := obs.NewRegistry(), obs.NewRegistry()
	a.Gauge("za").Set(1)
	a.Gauge("ab").Set(2)
	b.Gauge("ab").Set(2)
	b.Gauge("za").Set(1)
	var pa, pb bytes.Buffer
	a.WritePrometheus(&pa)
	b.WritePrometheus(&pb)
	if pa.String() != pb.String() {
		t.Errorf("export order-dependent:\n%s\nvs\n%s", pa.String(), pb.String())
	}
}

func TestGaugeConcurrentSet(t *testing.T) {
	r := obs.NewRegistry()
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 1000; j++ {
				r.Gauge("g").Set(float64(i))
			}
		}(i)
	}
	wg.Wait()
	if v := r.GaugeValue("g"); v < 0 || v > 7 {
		t.Fatalf("gauge holds torn value %g", v)
	}
}

// Extra handlers mount beside /metrics on the same listener; "/metrics"
// itself cannot be shadowed.
func TestListenMetricsExtraHandlers(t *testing.T) {
	r := obs.NewRegistry()
	r.Counter("c_total").Inc()
	bound, shutdown, err := obs.ListenMetricsOpts("127.0.0.1:0", r, obs.ListenOptions{
		Handlers: map[string]http.Handler{
			"/status": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				io.WriteString(w, `{"ok":true}`)
			}),
			"/metrics": http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
				io.WriteString(w, "shadowed")
			}),
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	get := func(path string) string {
		resp, err := http.Get("http://" + bound + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return string(b)
	}
	if got := get("/status"); got != `{"ok":true}` {
		t.Errorf("/status = %q", got)
	}
	if got := get("/metrics"); !strings.Contains(got, "c_total 1") {
		t.Errorf("/metrics shadowed by extra handler: %q", got)
	}
}
