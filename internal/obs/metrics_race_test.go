package obs

import (
	"sync"
	"testing"
)

// TestMetricsConcurrentHammer drives the registry the way the parallel
// verifier does — many workers bumping shared and per-worker counters and
// observing into a shared histogram — and checks the totals. Run under
// -race (the Makefile race target and CI do) to verify goroutine safety.
func TestMetricsConcurrentHammer(t *testing.T) {
	const workers = 8
	const perWorker = 5000

	r := NewRegistry()
	shared := r.Counter("sep_states_checked_total")
	hist := r.Histogram("sep_trial_seconds", []float64{0.001, 0.01, 0.1, 1})

	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// Per-worker counters are created concurrently on first use.
			mine := r.Counter(`sep_worker_states_total{worker="` + string(rune('0'+w)) + `"}`)
			for i := 0; i < perWorker; i++ {
				shared.Inc()
				mine.Inc()
				hist.Observe(float64(i%100) / 1000.0)
				// Concurrent reads must also be safe.
				if i%1024 == 0 {
					_ = r.CounterValue("sep_states_checked_total")
				}
			}
		}(w)
	}
	wg.Wait()

	if got := shared.Value(); got != workers*perWorker {
		t.Fatalf("shared counter = %d, want %d", got, workers*perWorker)
	}
	var perWorkerSum uint64
	for _, cv := range r.Counters() {
		if cv.Name != "sep_states_checked_total" {
			perWorkerSum += cv.Value
		}
	}
	if perWorkerSum != workers*perWorker {
		t.Fatalf("per-worker counters sum to %d, want %d", perWorkerSum, workers*perWorker)
	}
	if hist.Count() != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", hist.Count(), workers*perWorker)
	}
}

// TestConcurrentRingAndJSONL hammers the concurrent-safe sinks.
func TestConcurrentRingAndJSONL(t *testing.T) {
	ring := NewRing(256)
	j := NewJSONL(discard{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				e := Event{Cycle: uint64(i), Kind: EvChanSend, Regime: w}
				ring.Emit(e)
				j.Emit(e)
			}
		}(w)
	}
	wg.Wait()
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}
	if ring.Len() != 256 {
		t.Fatalf("ring length %d, want 256", ring.Len())
	}
}

type discard struct{}

func (discard) Write(p []byte) (int, error) { return len(p), nil }
