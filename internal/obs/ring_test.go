package obs_test

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

// The Ring used to discard its oldest event silently when full; these tests
// pin the drop accounting that replaced the silence.
func TestRingCountsDrops(t *testing.T) {
	r := obs.NewRing(4)
	for i := 0; i < 4; i++ {
		r.Emit(obs.Event{Cycle: uint64(i)})
	}
	if got := r.Dropped(); got != 0 {
		t.Fatalf("dropped %d before the ring ever wrapped", got)
	}
	for i := 4; i < 10; i++ {
		r.Emit(obs.Event{Cycle: uint64(i)})
	}
	if got := r.Dropped(); got != 6 {
		t.Fatalf("dropped = %d after 10 emits into capacity 4, want 6", got)
	}
	// The window holds the newest events; the drops are the oldest.
	evs := r.Events()
	if len(evs) != 4 || evs[0].Cycle != 6 || evs[3].Cycle != 9 {
		t.Fatalf("window = %+v, want cycles 6..9", evs)
	}

	// Reset empties the window but keeps the monotonic loss count.
	r.Reset()
	if r.Len() != 0 || r.Dropped() != 6 {
		t.Fatalf("after Reset: len=%d dropped=%d, want 0 and 6", r.Len(), r.Dropped())
	}
	r.Emit(obs.Event{})
	if r.Dropped() != 6 {
		t.Fatalf("emit into a reset ring dropped something: %d", r.Dropped())
	}
}

func TestRingFillRegistry(t *testing.T) {
	r := obs.NewRing(2)
	for i := 0; i < 5; i++ {
		r.Emit(obs.Event{Cycle: uint64(i)})
	}
	reg := obs.NewRegistry()
	r.FillRegistry(reg)
	if got := reg.CounterValue("obs_events_dropped_total"); got != 3 {
		t.Fatalf("obs_events_dropped_total = %d, want 3", got)
	}
	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "obs_events_dropped_total 3") {
		t.Fatalf("prometheus export missing drop counter:\n%s", b.String())
	}
}

// Concurrent emitters must not lose or double-count drops (run under -race
// via make race).
func TestRingDropsConcurrent(t *testing.T) {
	const emitters, each = 8, 1000
	r := obs.NewRing(16)
	var wg sync.WaitGroup
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < each; i++ {
				r.Emit(obs.Event{})
			}
		}()
	}
	wg.Wait()
	if got, want := r.Dropped(), uint64(emitters*each-16); got != want {
		t.Fatalf("dropped = %d, want %d", got, want)
	}
}
