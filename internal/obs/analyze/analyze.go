// Package analyze turns recorded obs event traces into evidence.
//
// Rushby's criterion is observational: the kernel is secure when each
// regime's view of the shared machine is indistinguishable from a private
// machine. The traces internal/obs records are therefore not just debug
// output — they are checkable artifacts. This package provides the three
// analyses cmd/septrace exposes:
//
//   - Projection: a trace-level Φ^c. Project maps a full event stream to
//     the subsequence one regime could itself observe (its system calls,
//     channel operations, interrupt deliveries, fault/halt), with event
//     times renormalized to the regime's own virtual clock so that two
//     runs scheduling the regime differently but feeding it identical
//     observations project identically. Each projection carries a
//     canonical FNV-1a digest of its JSONL rendering.
//
//   - Diffing: Diff/DiffAll compare per-regime projections between two
//     traces — the same workload under distsys's Physical and KernelHosted
//     deployments, or an honest and a suspect kernel build. Identical
//     projections are a finer-grained indistinguishability check than the
//     E7 per-port comparison; a divergence yields a structured
//     first-divergence report instead of a bare boolean.
//
//   - Covert measurement (covert.go): gaps between a regime's scheduling
//     turns and channel occupancy series, fed into internal/covert's
//     capacity arithmetic to measure real covert-channel bandwidth from
//     traces alone.
//
// The package deliberately imports only the obs core and internal/covert
// (enforced by the repository linter): trace analysis lives entirely
// outside the modelled system and can never perturb it.
package analyze

import (
	"fmt"

	"repro/internal/obs"
)

// observable reports whether a regime could itself observe event e — the
// trace-level analogue of "in its own abstract state". Context switches,
// interrupt fielding (kernel-internal routing) and device-side interrupt
// raises are excluded: a regime on a private machine would see none of
// them, only the deliveries, syscall results and channel data that reach
// it.
func observable(e obs.Event, regime int) bool {
	if e.Regime != regime {
		return false
	}
	switch e.Kind {
	case obs.EvSyscallEnter, obs.EvSyscallExit,
		obs.EvChanSend, obs.EvChanRecv,
		obs.EvIRQDeliver, obs.EvFault, obs.EvRegimeHalt:
		return true
	}
	return false
}

// Projection is one regime's view of a trace: the events it could observe,
// restamped onto its own virtual clock, plus a canonical digest.
type Projection struct {
	Regime int
	// Events hold the observable subsequence. Cycle carries virtual time:
	// machine cycles accumulated while this regime held the CPU (traces
	// with context-switch events), or the event ordinal (traces without,
	// e.g. distsys fabric traces, whose components have no wall clock).
	Events []obs.Event
	// Digest is the FNV-1a 64-bit hash of the projection's canonical JSONL
	// rendering; equal digests (plus equal lengths) mean equal views.
	Digest uint64
}

// Project computes regime's projection of a trace.
//
// Virtual-clock renormalization: while the trace contains context-switch
// events, time advances for a regime only while it runs. An event observed
// at machine cycle t during a turn that began at cycle t0, with v cycles
// accumulated over earlier turns, is restamped to v + (t - t0); events
// observed while switched out (e.g. the syscall-exit of the SWAP that
// suspended the regime) carry the virtual time at which its last turn
// ended. Two runs that schedule the regime differently — preempt it more
// often, delay its turns — but hand it the same observations therefore
// project identically, which is exactly the indistinguishability claim.
//
// Traces with no context-switch events at all (distsys fabric traces) have
// no shared clock worth renormalizing; each observable event is restamped
// to its ordinal in the projection.
func Project(events []obs.Event, regime int) Projection {
	p := Projection{Regime: regime}
	hasSwitches := false
	for _, e := range events {
		if e.Kind == obs.EvContextSwitch {
			hasSwitches = true
			break
		}
	}
	var (
		vclock    uint64 // cycles accumulated over completed turns
		turnStart uint64 // wall cycle the current turn began
		running   bool
	)
	for _, e := range events {
		if e.Kind == obs.EvContextSwitch {
			switch {
			case e.Regime == regime && !running:
				running, turnStart = true, e.Cycle
			case e.Regime != regime && running:
				vclock += e.Cycle - turnStart
				running = false
			}
			continue
		}
		if !observable(e, regime) {
			continue
		}
		pe := e
		if hasSwitches {
			pe.Cycle = vclock
			if running {
				pe.Cycle = vclock + (e.Cycle - turnStart)
			}
		} else {
			pe.Cycle = uint64(len(p.Events))
		}
		p.Events = append(p.Events, pe)
	}
	p.Digest = digest(p.Events)
	return p
}

// Regimes returns the sorted set of regime indexes (>= 0) appearing in a
// trace, including regimes that only ever appear in context switches.
func Regimes(events []obs.Event) []int {
	seen := map[int]bool{}
	max := -1
	for _, e := range events {
		if e.Regime >= 0 {
			seen[e.Regime] = true
			if e.Regime > max {
				max = e.Regime
			}
		}
	}
	var out []int
	for i := 0; i <= max; i++ {
		if seen[i] {
			out = append(out, i)
		}
	}
	return out
}

// digest hashes a projected event sequence: FNV-1a 64 over the canonical
// JSONL rendering, one line per event.
func digest(events []obs.Event) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	var buf []byte
	for _, e := range events {
		buf = obs.AppendJSON(buf[:0], e)
		buf = append(buf, '\n')
		for _, b := range buf {
			h ^= uint64(b)
			h *= prime64
		}
	}
	return h
}

// DiffResult reports the comparison of one regime's projections across two
// traces. When the views diverge, DivergeAt is the index of the first
// differing event and A/B carry its canonical rendering from each side ("",
// when that side's view ended early).
type DiffResult struct {
	Regime           int
	Equal            bool
	ALen, BLen       int
	ADigest, BDigest uint64
	DivergeAt        int
	A, B             string
}

// String renders the verdict as cmd/septrace prints it.
func (d DiffResult) String() string {
	if d.Equal {
		return fmt.Sprintf("regime %d: IDENTICAL (%d events, digest %016x)",
			d.Regime, d.ALen, d.ADigest)
	}
	s := fmt.Sprintf("regime %d: DIVERGED at event %d (a: %d events %016x, b: %d events %016x)",
		d.Regime, d.DivergeAt, d.ALen, d.ADigest, d.BLen, d.BDigest)
	a, b := d.A, d.B
	if a == "" {
		a = "<view ended>"
	}
	if b == "" {
		b = "<view ended>"
	}
	return s + fmt.Sprintf("\n  a[%d]: %s\n  b[%d]: %s", d.DivergeAt, a, d.DivergeAt, b)
}

// DiffRecord is the stable JSON codec form of a DiffResult, for
// machine-readable drift reports (`septrace diff -format json`, the
// sepwatch drift ledger). Digests are rendered as 16-digit hex so the JSON
// round-trips without precision loss; DivergeAt is -1 for identical views.
type DiffRecord struct {
	Regime    int    `json:"regime"`
	Equal     bool   `json:"equal"`
	ALen      int    `json:"aLen"`
	BLen      int    `json:"bLen"`
	ADigest   string `json:"aDigest"`
	BDigest   string `json:"bDigest"`
	DivergeAt int    `json:"divergeAt"`
	A         string `json:"a,omitempty"`
	B         string `json:"b,omitempty"`
}

// Record converts the result to its codec form.
func (d DiffResult) Record() DiffRecord {
	return DiffRecord{
		Regime: d.Regime, Equal: d.Equal,
		ALen: d.ALen, BLen: d.BLen,
		ADigest: fmt.Sprintf("%016x", d.ADigest), BDigest: fmt.Sprintf("%016x", d.BDigest),
		DivergeAt: d.DivergeAt, A: d.A, B: d.B,
	}
}

// Records converts a DiffAll result set to codec form.
func Records(ds []DiffResult) []DiffRecord {
	out := make([]DiffRecord, len(ds))
	for i, d := range ds {
		out[i] = d.Record()
	}
	return out
}

// Diff compares two projections of the same regime.
func Diff(a, b Projection) DiffResult {
	d := DiffResult{
		Regime: a.Regime,
		ALen:   len(a.Events), BLen: len(b.Events),
		ADigest: a.Digest, BDigest: b.Digest,
		DivergeAt: -1,
	}
	n := len(a.Events)
	if len(b.Events) < n {
		n = len(b.Events)
	}
	var abuf, bbuf []byte
	for i := 0; i < n; i++ {
		abuf = obs.AppendJSON(abuf[:0], a.Events[i])
		bbuf = obs.AppendJSON(bbuf[:0], b.Events[i])
		if string(abuf) != string(bbuf) {
			d.DivergeAt, d.A, d.B = i, string(abuf), string(bbuf)
			return d
		}
	}
	if len(a.Events) != len(b.Events) {
		d.DivergeAt = n
		if n < len(a.Events) {
			d.A = string(obs.AppendJSON(nil, a.Events[n]))
		}
		if n < len(b.Events) {
			d.B = string(obs.AppendJSON(nil, b.Events[n]))
		}
		return d
	}
	d.Equal = true
	return d
}

// DiffAll projects and diffs every regime appearing in either trace, in
// regime order.
func DiffAll(a, b []obs.Event) []DiffResult {
	seen := map[int]bool{}
	var regimes []int
	for _, r := range append(Regimes(a), Regimes(b)...) {
		if !seen[r] {
			seen[r] = true
			regimes = append(regimes, r)
		}
	}
	// The union preserves ascending order except for b-only regimes beyond
	// a's maximum; re-sort cheaply.
	for i := 1; i < len(regimes); i++ {
		for j := i; j > 0 && regimes[j] < regimes[j-1]; j-- {
			regimes[j], regimes[j-1] = regimes[j-1], regimes[j]
		}
	}
	out := make([]DiffResult, 0, len(regimes))
	for _, r := range regimes {
		out = append(out, Diff(Project(a, r), Project(b, r)))
	}
	return out
}
