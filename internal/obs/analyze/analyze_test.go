package analyze_test

import (
	"strings"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// ev is shorthand for test events.
func ev(cycle uint64, kind obs.EventKind, regime int) obs.Event {
	return obs.Event{Cycle: cycle, Kind: kind, Regime: regime}
}

func sw(cycle uint64, to, from int) obs.Event {
	return obs.Event{Cycle: cycle, Kind: obs.EvContextSwitch, Regime: to, Prev: from}
}

func TestProjectVirtualClock(t *testing.T) {
	// Regime 0 runs [10,18) and [30,33); regime 1 fills the gaps.
	trace := []obs.Event{
		sw(10, 0, -1),
		ev(14, obs.EvSyscallEnter, 0), // 4 cycles into turn 1 → vt 4
		sw(18, 1, 0),
		ev(18, obs.EvSyscallExit, 0), // observed while switched out → vt 8 (turn ended)
		ev(25, obs.EvChanSend, 1),    // not regime 0's
		sw(30, 0, 1),
		ev(32, obs.EvChanRecv, 0), // 2 cycles into turn 2 → vt 8+2
		sw(33, -1, 0),
		ev(40, obs.EvIRQRaise, 0),   // device-side, never observable
		ev(41, obs.EvIRQField, 0),   // kernel-internal, never observable
		ev(50, obs.EvRegimeHalt, 0), // while idle → vt 11
	}
	p := analyze.Project(trace, 0)
	wantKinds := []obs.EventKind{obs.EvSyscallEnter, obs.EvSyscallExit, obs.EvChanRecv, obs.EvRegimeHalt}
	wantVT := []uint64{4, 8, 10, 11}
	if len(p.Events) != len(wantKinds) {
		t.Fatalf("projected %d events, want %d: %+v", len(p.Events), len(wantKinds), p.Events)
	}
	for i := range wantKinds {
		if p.Events[i].Kind != wantKinds[i] || p.Events[i].Cycle != wantVT[i] {
			t.Errorf("event %d = kind %v vt %d, want kind %v vt %d",
				i, p.Events[i].Kind, p.Events[i].Cycle, wantKinds[i], wantVT[i])
		}
	}
}

// The projection's whole point: delaying and fragmenting a regime's turns
// without changing what it observes must not change its projection.
func TestProjectInvariantUnderRescheduling(t *testing.T) {
	compact := []obs.Event{
		sw(0, 0, -1),
		ev(5, obs.EvSyscallEnter, 0),
		ev(5, obs.EvSyscallExit, 0),
		ev(9, obs.EvChanSend, 0),
	}
	// Same observations, but the regime is preempted mid-turn and resumed
	// much later on the wall clock.
	fragmented := []obs.Event{
		sw(100, 0, -1),
		ev(105, obs.EvSyscallEnter, 0),
		ev(105, obs.EvSyscallExit, 0),
		sw(106, 1, 0), // preempt after 6 cycles
		ev(200, obs.EvChanSend, 1),
		sw(500, 0, 1),              // resume
		ev(503, obs.EvChanSend, 0), // 6+3 = vt 9, as in the compact run
	}
	a, b := analyze.Project(compact, 0), analyze.Project(fragmented, 0)
	if a.Digest != b.Digest {
		t.Fatalf("rescheduling changed the projection:\n%+v\nvs\n%+v", a.Events, b.Events)
	}
	d := analyze.Diff(a, b)
	if !d.Equal {
		t.Fatalf("diff of equal views: %s", d)
	}
}

func TestProjectOrdinalFallback(t *testing.T) {
	// No context switches anywhere (a fabric trace): ordinals, not cycles.
	trace := []obs.Event{
		{Cycle: 7, Kind: obs.EvChanSend, Regime: 2, Arg: 0, Name: "out"},
		{Cycle: 9, Kind: obs.EvChanRecv, Regime: 1, Arg: 1, Name: "in"},
		{Cycle: 12, Kind: obs.EvChanRecv, Regime: 2, Arg: 1, Name: "in"},
	}
	p := analyze.Project(trace, 2)
	if len(p.Events) != 2 || p.Events[0].Cycle != 0 || p.Events[1].Cycle != 1 {
		t.Fatalf("ordinal renormalization wrong: %+v", p.Events)
	}
}

func TestDiffFirstDivergence(t *testing.T) {
	base := []obs.Event{
		sw(0, 0, -1),
		ev(1, obs.EvChanSend, 0),
		ev(2, obs.EvChanSend, 0),
	}
	changed := append([]obs.Event(nil), base...)
	changed[2] = obs.Event{Cycle: 2, Kind: obs.EvChanSend, Regime: 0, Value: 99}

	d := analyze.Diff(analyze.Project(base, 0), analyze.Project(changed, 0))
	if d.Equal || d.DivergeAt != 1 {
		t.Fatalf("diff = %+v, want divergence at event 1", d)
	}
	if !strings.Contains(d.B, `"value":99`) {
		t.Errorf("report does not carry the divergent rendering: %s", d.B)
	}
	if !strings.Contains(d.String(), "DIVERGED at event 1") {
		t.Errorf("String() = %q", d.String())
	}

	// One view being a strict prefix of the other is also a divergence, at
	// the first missing event.
	short := base[:2]
	d = analyze.Diff(analyze.Project(base, 0), analyze.Project(short, 0))
	if d.Equal || d.DivergeAt != 1 || d.B != "" || d.A == "" {
		t.Fatalf("prefix diff = %+v", d)
	}
	if !strings.Contains(d.String(), "<view ended>") {
		t.Errorf("String() = %q", d.String())
	}
}

func TestDiffAllAndRegimes(t *testing.T) {
	a := []obs.Event{
		ev(1, obs.EvChanSend, 0),
		ev(2, obs.EvChanRecv, 1),
	}
	b := []obs.Event{
		ev(1, obs.EvChanSend, 0),
		ev(2, obs.EvChanRecv, 1),
		ev(3, obs.EvChanRecv, 3), // a regime only trace b knows about
	}
	if got := analyze.Regimes(b); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("Regimes = %v", got)
	}
	ds := analyze.DiffAll(a, b)
	if len(ds) != 3 {
		t.Fatalf("DiffAll covers %d regimes, want 3: %+v", len(ds), ds)
	}
	if !ds[0].Equal || !ds[1].Equal {
		t.Errorf("regimes 0/1 should be identical: %+v", ds[:2])
	}
	if ds[2].Equal || ds[2].Regime != 3 || ds[2].DivergeAt != 0 {
		t.Errorf("regime 3 should diverge at event 0: %+v", ds[2])
	}
}
