package analyze

import (
	"repro/internal/covert"
	"repro/internal/obs"
)

// This file measures covert-channel bandwidth from traces alone. The
// synthetic harness in internal/timingchan reads the receiver's decoded
// memory after the run; here the same channel is measured from the
// outside, using only the kernel's event stream — the way an auditor with
// a trace file (and no access to regime memory) would measure it.

// TurnStarts returns the machine cycle of every context switch INTO the
// given regime, in trace order: the wall-clock shape of its schedule.
func TurnStarts(events []obs.Event, regime int) []uint64 {
	var out []uint64
	for _, e := range events {
		if e.Kind == obs.EvContextSwitch && e.Regime == regime {
			out = append(out, e.Cycle)
		}
	}
	return out
}

// Gaps returns the successive differences of an ascending series: for turn
// starts, the turn-to-turn wall-clock gaps a regime's own clock device
// would let it measure.
func Gaps(series []uint64) []uint64 {
	if len(series) < 2 {
		return nil
	}
	out := make([]uint64, len(series)-1)
	for i := 1; i < len(series); i++ {
		out[i-1] = series[i] - series[i-1]
	}
	return out
}

// DecodeThreshold turns a series into bits: 1 where the sample exceeds the
// threshold, else 0 — the same decision rule the timingchan receiver runs
// in assembly against its clock deltas.
func DecodeThreshold(series []uint64, threshold uint64) []int {
	bits := make([]int, len(series))
	for i, v := range series {
		if v > threshold {
			bits[i] = 1
		}
	}
	return bits
}

// BestAlignment slides the sent bitstring over the decoded series at
// offsets 0..maxOffset and returns the offset with the most position-wise
// matches (ties to the smallest offset). Trace-derived decodes start with
// the sender's and receiver's synchronization turns, whose count is a
// protocol detail the auditor should not need to know; recovering the
// alignment from the data is standard covert-channel practice.
func BestAlignment(sent, decoded []int, maxOffset int) (offset, matches int) {
	if maxOffset < 0 {
		maxOffset = 0
	}
	for off := 0; off <= maxOffset; off++ {
		if off >= len(decoded) {
			break
		}
		m, _ := covert.Compare(sent, decoded[off:])
		if m > matches {
			matches, offset = m, off
		}
	}
	return offset, matches
}

// ScheduleMeasurement is the outcome of a trace-driven scheduling-channel
// measurement.
type ScheduleMeasurement struct {
	// Turns is how many times the regime was scheduled in the trace.
	Turns int
	// Offset is the recovered alignment between the gap series and the
	// sent bits.
	Offset int
	// Decoded is the aligned decoded window (len == len(sent), shorter if
	// the trace ended early).
	Decoded []int
	// Covert carries the error-rate/capacity/bandwidth arithmetic shared
	// with the synthetic harness.
	Covert covert.Measurement
}

// MeasureSchedule measures the scheduling channel toward `regime` (the
// receiver) from a kernel trace: gaps between the regime's successive turn
// starts are thresholded into bits, aligned against the known sent
// bitstring, and scored with the same binary-symmetric-channel arithmetic
// covert.Measure applies to the synthetic harness. Rounds is taken from
// the trace's cycle span, so BitsPerRound is bits per machine cycle,
// directly comparable with the synthetic measurement.
func MeasureSchedule(events []obs.Event, regime int, sent []int, threshold uint64, maxOffset int) ScheduleMeasurement {
	starts := TurnStarts(events, regime)
	decoded := DecodeThreshold(Gaps(starts), threshold)
	off, _ := BestAlignment(sent, decoded, maxOffset)
	window := decoded[min(off, len(decoded)):]
	if len(window) > len(sent) {
		window = window[:len(sent)]
	}
	rounds := 0
	if n := len(events); n > 0 {
		rounds = int(events[n-1].Cycle - events[0].Cycle)
	}
	return ScheduleMeasurement{
		Turns:   len(starts),
		Offset:  off,
		Decoded: window,
		Covert:  covert.Measure(sent, window, rounds),
	}
}

// OccupancySeries extracts the occupancy-after-operation series of one
// kernel channel from a trace: every EvChanSend/EvChanRecv on channel ch
// contributes its Occ field. Channel occupancy is the storage-channel
// counterpart of scheduling gaps — a receiver polling a shared channel
// sees occupancy modulated by the sender's behaviour.
func OccupancySeries(events []obs.Event, ch int) []uint64 {
	var out []uint64
	for _, e := range events {
		if (e.Kind == obs.EvChanSend || e.Kind == obs.EvChanRecv) && e.Arg == ch {
			out = append(out, uint64(e.Occ))
		}
	}
	return out
}

// MeasureOccupancy measures a storage channel carried by channel ch's
// occupancy: the series is thresholded, aligned and scored exactly like
// the scheduling gaps.
func MeasureOccupancy(events []obs.Event, ch int, sent []int, threshold uint64, maxOffset int) ScheduleMeasurement {
	series := OccupancySeries(events, ch)
	decoded := DecodeThreshold(series, threshold)
	off, _ := BestAlignment(sent, decoded, maxOffset)
	window := decoded[min(off, len(decoded)):]
	if len(window) > len(sent) {
		window = window[:len(sent)]
	}
	rounds := 0
	if n := len(events); n > 0 {
		rounds = int(events[n-1].Cycle - events[0].Cycle)
	}
	return ScheduleMeasurement{
		Turns:   len(series),
		Offset:  off,
		Decoded: window,
		Covert:  covert.Measure(sent, window, rounds),
	}
}
