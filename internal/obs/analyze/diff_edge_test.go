package analyze_test

import (
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
)

// A regime present in only one trace must still be diffed — an empty view
// on the other side — rather than silently skipped: a deployment losing a
// regime IS drift.
func TestDiffAllRegimeInOneTraceOnly(t *testing.T) {
	a := []obs.Event{
		ev(1, obs.EvSyscallEnter, 0),
		ev(2, obs.EvSyscallEnter, 2),
	}
	b := []obs.Event{
		ev(1, obs.EvSyscallEnter, 0),
	}
	ds := analyze.DiffAll(a, b)
	if len(ds) != 2 {
		t.Fatalf("got %d diffs, want 2 (regimes 0 and 2): %+v", len(ds), ds)
	}
	if !ds[0].Equal || ds[0].Regime != 0 {
		t.Errorf("regime 0 should be identical: %+v", ds[0])
	}
	d := ds[1]
	if d.Regime != 2 || d.Equal {
		t.Fatalf("regime 2 should diverge: %+v", d)
	}
	if d.DivergeAt != 0 || d.ALen != 1 || d.BLen != 0 {
		t.Errorf("divergence shape wrong: %+v", d)
	}
	if d.A == "" || d.B != "" {
		t.Errorf("want a-side event and empty b-side, got a=%q b=%q", d.A, d.B)
	}

	// And symmetrically for a regime only in b.
	ds = analyze.DiffAll(b, a)
	if len(ds) != 2 || ds[1].Equal || ds[1].B == "" || ds[1].A != "" {
		t.Errorf("b-only regime not reported: %+v", ds)
	}
}

// b-only regimes above a's maximum arrive out of order from the union; the
// result must still be sorted by regime.
func TestDiffAllRegimeOrderWithDisjointSets(t *testing.T) {
	a := []obs.Event{ev(1, obs.EvSyscallEnter, 1), ev(2, obs.EvSyscallEnter, 5)}
	b := []obs.Event{ev(1, obs.EvSyscallEnter, 0), ev(2, obs.EvSyscallEnter, 3)}
	ds := analyze.DiffAll(a, b)
	want := []int{0, 1, 3, 5}
	if len(ds) != len(want) {
		t.Fatalf("got %d diffs, want %d", len(ds), len(want))
	}
	for i, d := range ds {
		if d.Regime != want[i] {
			t.Errorf("diff[%d].Regime = %d, want %d", i, d.Regime, want[i])
		}
		if d.Equal {
			t.Errorf("regime %d appears in one trace only but reads Equal", d.Regime)
		}
	}
}

// Two empty traces are indistinguishable by definition and must not panic
// or fabricate regimes.
func TestDiffAllEmptyTraces(t *testing.T) {
	if ds := analyze.DiffAll(nil, nil); len(ds) != 0 {
		t.Fatalf("empty vs empty yields diffs: %+v", ds)
	}
	// Empty vs non-empty: every regime of the non-empty side diverges at 0.
	b := []obs.Event{ev(1, obs.EvChanSend, 0)}
	ds := analyze.DiffAll(nil, b)
	if len(ds) != 1 || ds[0].Equal || ds[0].DivergeAt != 0 {
		t.Fatalf("empty vs populated: %+v", ds)
	}
	// A trace whose events are all unobservable (pure context switches)
	// still registers its regimes, with empty equal views.
	onlySwitches := []obs.Event{sw(1, 0, -1), sw(5, 1, 0)}
	ds = analyze.DiffAll(onlySwitches, onlySwitches)
	if len(ds) != 2 {
		t.Fatalf("switch-only trace regimes: %+v", ds)
	}
	for _, d := range ds {
		if !d.Equal || d.ALen != 0 {
			t.Errorf("switch-only projection should be empty and equal: %+v", d)
		}
	}
}

// Equal digests with differing event counts must NOT read as equal: the
// digest contract is "equal digests plus equal lengths mean equal views",
// and Diff must pin the divergence at the shorter view's end. (A real
// digest collision needs 2^64 luck; the projections are hand-built here.)
func TestDiffDigestEqualLengthDiffering(t *testing.T) {
	shared := ev(1, obs.EvSyscallEnter, 0)
	extra := ev(2, obs.EvSyscallEnter, 0)
	a := analyze.Projection{Regime: 0, Events: []obs.Event{shared}}
	b := analyze.Projection{Regime: 0, Events: []obs.Event{shared, extra}}
	// Forge digest equality; lengths still differ.
	a.Digest, b.Digest = 0xdeadbeef, 0xdeadbeef
	d := analyze.Diff(a, b)
	if d.Equal {
		t.Fatalf("digest-equal but count-differing projections read Equal: %+v", d)
	}
	if d.DivergeAt != 1 {
		t.Errorf("DivergeAt = %d, want 1 (end of shorter view)", d.DivergeAt)
	}
	if d.A != "" || d.B == "" {
		t.Errorf("want <view ended> on a-side only: a=%q b=%q", d.A, d.B)
	}
	if d.ALen != 1 || d.BLen != 2 {
		t.Errorf("lengths %d/%d, want 1/2", d.ALen, d.BLen)
	}
}

// The codec form round-trips through encoding/json with hex digests and
// preserves the -1 DivergeAt sentinel for identical views.
func TestDiffRecordJSON(t *testing.T) {
	a := []obs.Event{ev(1, obs.EvSyscallEnter, 0)}
	recs := analyze.Records(analyze.DiffAll(a, a))
	if len(recs) != 1 {
		t.Fatalf("got %d records", len(recs))
	}
	r := recs[0]
	if !r.Equal || r.DivergeAt != -1 || len(r.ADigest) != 16 || r.ADigest != r.BDigest {
		t.Fatalf("identical-view record wrong: %+v", r)
	}
	b, err := json.Marshal(r)
	if err != nil {
		t.Fatal(err)
	}
	var back analyze.DiffRecord
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back != r {
		t.Errorf("round trip changed record: %+v vs %+v", back, r)
	}
}
