package analyze_test

import (
	"testing"

	"repro/internal/obs"
	"repro/internal/obs/analyze"
	"repro/internal/timingchan"
)

// These tests close the loop the tentpole promises: the scheduling channel
// internal/timingchan builds on the real kernel is measured here from the
// kernel's event trace alone — no access to the receiver's memory — and
// the measurement agrees with the synthetic in-memory harness. Cutting the
// channel (fixed-slice scheduling) drops the trace-measured capacity to
// (near) zero, so a cut regression is detectable from traces.

func tracedRun(t *testing.T, fixedSlice int) (*timingchan.Result, []obs.Event) {
	t.Helper()
	var events []obs.Event
	res, _, err := timingchan.RunConfig(timingchan.Config{
		NBits: 64, Seed: 11, Busy: 60, Threshold: 40,
		FixedSlice: fixedSlice,
		Tracer:     obs.TracerFunc(func(e obs.Event) { events = append(events, e) }),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Finished {
		t.Fatal("receiver did not finish")
	}
	return res, events
}

func TestMeasureScheduleFromRealTrace(t *testing.T) {
	res, events := tracedRun(t, 0)
	// Receiver is regime 1; its clock ticks once per machine cycle, so the
	// in-regime threshold applies unchanged to trace-derived turn gaps.
	m := analyze.MeasureSchedule(events, 1, res.Sent, 40, 8)

	if m.Turns < 64 {
		t.Fatalf("receiver scheduled only %d times for a 64-bit transfer", m.Turns)
	}
	if m.Covert.Accuracy() < 0.9 {
		t.Fatalf("trace-measured accuracy %.2f; trace decode disagrees with the channel:\n%+v", m.Covert.Accuracy(), m)
	}
	if m.Covert.BitsPerRound <= 0 {
		t.Fatalf("trace-measured bandwidth is zero: %+v", m.Covert)
	}
	// Consistency with the synthetic harness: the trace decode must be at
	// least as good as a noisy channel and in the same regime as what the
	// receiver itself decoded in memory.
	if syn := res.Covert.Accuracy(); m.Covert.Accuracy() < syn-0.1 {
		t.Errorf("trace accuracy %.2f well below synthetic %.2f", m.Covert.Accuracy(), syn)
	}
}

func TestMeasureScheduleDetectsCut(t *testing.T) {
	resOpen, evOpen := tracedRun(t, 0)
	open := analyze.MeasureSchedule(evOpen, 1, resOpen.Sent, 40, 8)

	resCut, evCut := tracedRun(t, 200)
	cut := analyze.MeasureSchedule(evCut, 1, resCut.Sent, 40, 8)

	if open.Covert.CapacityPerSymbol <= 0 {
		t.Fatalf("open channel measured at zero capacity: %+v", open.Covert)
	}
	// Fixed-slice scheduling makes every rotation the same length: the
	// thresholded gaps carry ~nothing, and the BSC capacity collapses.
	if cut.Covert.CapacityPerSymbol > 0.2*open.Covert.CapacityPerSymbol {
		t.Errorf("cut channel still at %.3f b/sym (open: %.3f); regression undetected",
			cut.Covert.CapacityPerSymbol, open.Covert.CapacityPerSymbol)
	}
}
