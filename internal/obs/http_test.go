package obs_test

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"sync"
	"testing"

	"repro/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestListenMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("sep_trials_total").Add(7)
	reg.Counter(`sep_checks_total{condition="SC1"}`).Add(3)

	bound, shutdown, err := obs.ListenMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	code, body := get(t, "http://"+bound+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	if !strings.Contains(body, "sep_trials_total 7") {
		t.Errorf("prometheus dump missing counter:\n%s", body)
	}
	if !strings.Contains(body, `sep_checks_total{condition="SC1"} 3`) {
		t.Errorf("prometheus dump missing labelled counter:\n%s", body)
	}

	// Counters advanced between scrapes must show up: the endpoint reads
	// live registry state, not a boot-time snapshot.
	reg.Counter("sep_trials_total").Add(1)
	if _, body = get(t, "http://"+bound+"/metrics"); !strings.Contains(body, "sep_trials_total 8") {
		t.Errorf("second scrape is stale:\n%s", body)
	}

	code, body = get(t, "http://"+bound+"/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("GET ?format=json = %d", code)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatalf("json scrape does not parse: %v\n%s", err, body)
	}

	if code, _ = get(t, "http://"+bound+"/metrics?format=xml"); code != http.StatusBadRequest {
		t.Errorf("unknown format = %d, want 400", code)
	}

	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + bound + "/metrics"); err == nil {
		t.Error("listener still serving after shutdown")
	}
}

// The pprof handlers must be present exactly when asked for: profiling a
// long verification run is opt-in, not an always-open debug surface.
func TestListenMetricsPprof(t *testing.T) {
	reg := obs.NewRegistry()
	bound, shutdown, err := obs.ListenMetricsOpts("127.0.0.1:0", reg,
		obs.ListenOptions{Pprof: true})
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	code, body := get(t, "http://"+bound+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Errorf("pprof index missing profiles:\n%s", body)
	}
	if code, _ = get(t, "http://"+bound+"/debug/pprof/heap"); code != http.StatusOK {
		t.Errorf("GET /debug/pprof/heap = %d", code)
	}
	if code, _ = get(t, "http://"+bound+"/metrics"); code != http.StatusOK {
		t.Errorf("metrics endpoint broken with pprof on: %d", code)
	}

	// Without the option, the debug surface must not exist.
	bound2, shutdown2, err := obs.ListenMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown2()
	if code, _ = get(t, "http://"+bound2+"/debug/pprof/"); code != http.StatusNotFound {
		t.Errorf("pprof served without opt-in: %d", code)
	}
}

// TestListenMetricsShutdownRace hammers the endpoint from several scraper
// goroutines while counters advance and shutdown lands mid-flight. Under
// -race (make race) this pins the guarantee that stopping the listener
// never races the registry's atomic state or the server's handler; every
// scrape either succeeds with a well-formed body or fails with a transport
// error — nothing in between.
func TestListenMetricsShutdownRace(t *testing.T) {
	reg := obs.NewRegistry()
	bound, shutdown, err := obs.ListenMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}

	const scrapers = 4
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < scrapers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				reg.Counter("sep_trials_total").Inc()
				resp, err := http.Get("http://" + bound + "/metrics")
				if err != nil {
					continue // shutdown won the race; that's the point
				}
				body, rerr := io.ReadAll(resp.Body)
				resp.Body.Close()
				if rerr == nil && resp.StatusCode == http.StatusOK &&
					!strings.Contains(string(body), "sep_trials_total") {
					t.Error("scrape returned 200 with a malformed body")
					return
				}
			}
		}()
	}

	// Let the scrapers overlap the shutdown rather than strictly precede it.
	for reg.CounterValue("sep_trials_total") < 8 {
		runtime.Gosched()
	}
	if err := shutdown(); err != nil {
		t.Errorf("shutdown: %v", err)
	}
	close(stop)
	wg.Wait()

	// The registry must remain fully usable after the listener is gone.
	before := reg.CounterValue("sep_trials_total")
	reg.Counter("sep_trials_total").Inc()
	if reg.CounterValue("sep_trials_total") != before+1 {
		t.Error("registry wedged after shutdown")
	}
}
