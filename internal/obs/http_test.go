package obs_test

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"repro/internal/obs"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func TestListenMetrics(t *testing.T) {
	reg := obs.NewRegistry()
	reg.Counter("sep_trials_total").Add(7)
	reg.Counter(`sep_checks_total{condition="SC1"}`).Add(3)

	bound, shutdown, err := obs.ListenMetrics("127.0.0.1:0", reg)
	if err != nil {
		t.Fatal(err)
	}
	defer shutdown()

	code, body := get(t, "http://"+bound+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	if !strings.Contains(body, "sep_trials_total 7") {
		t.Errorf("prometheus dump missing counter:\n%s", body)
	}
	if !strings.Contains(body, `sep_checks_total{condition="SC1"} 3`) {
		t.Errorf("prometheus dump missing labelled counter:\n%s", body)
	}

	// Counters advanced between scrapes must show up: the endpoint reads
	// live registry state, not a boot-time snapshot.
	reg.Counter("sep_trials_total").Add(1)
	if _, body = get(t, "http://"+bound+"/metrics"); !strings.Contains(body, "sep_trials_total 8") {
		t.Errorf("second scrape is stale:\n%s", body)
	}

	code, body = get(t, "http://"+bound+"/metrics?format=json")
	if code != http.StatusOK {
		t.Fatalf("GET ?format=json = %d", code)
	}
	var parsed map[string]any
	if err := json.Unmarshal([]byte(body), &parsed); err != nil {
		t.Fatalf("json scrape does not parse: %v\n%s", err, body)
	}

	if code, _ = get(t, "http://"+bound+"/metrics?format=xml"); code != http.StatusBadRequest {
		t.Errorf("unknown format = %d, want 400", code)
	}

	if err := shutdown(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + bound + "/metrics"); err == nil {
		t.Error("listener still serving after shutdown")
	}
}
