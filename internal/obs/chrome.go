package obs

import (
	"bufio"
	"fmt"
	"io"
	"sync"
)

// Chrome is a Tracer that streams the Chrome trace_event JSON-array format,
// which chrome://tracing and Perfetto (ui.perfetto.dev) open directly.
//
// The mapping: one fake process (pid 0) whose thread lanes are the kernel
// (tid 0) and one lane per regime (tid = regime index + 1). Context
// switches open and close "running" duration slices on the regime lanes;
// system calls appear as one-cycle complete events on the calling regime's
// lane; channel traffic, interrupt activity, faults and halts appear as
// instant events. One machine cycle is rendered as one microsecond (the
// trace_event timestamp unit).
type Chrome struct {
	mu     sync.Mutex
	w      *bufio.Writer
	names  []string // regime index -> display name
	first  bool     // no event written yet (comma management)
	curTid int      // lane with an open "running" slice; -1 = none
	last   uint64   // highest cycle seen (to close the final slice)
}

// NewChrome starts a trace_event stream on w; regimeNames label the lanes.
// Call Close when done to terminate the JSON array.
func NewChrome(w io.Writer, regimeNames []string) *Chrome {
	c := &Chrome{
		w:      bufio.NewWriter(w),
		names:  append([]string(nil), regimeNames...),
		first:  true,
		curTid: -1,
	}
	c.w.WriteString("[\n")
	c.meta(0, "kernel")
	for i, n := range c.names {
		c.meta(i+1, "regime "+n)
	}
	return c
}

// meta emits a thread_name metadata record.
func (c *Chrome) meta(tid int, name string) {
	c.sep()
	fmt.Fprintf(c.w,
		`{"name":"thread_name","ph":"M","pid":0,"tid":%d,"args":{"name":%q}}`,
		tid, name)
}

// sep writes the inter-record comma (callers hold the lock or are the
// constructor).
func (c *Chrome) sep() {
	if c.first {
		c.first = false
		return
	}
	c.w.WriteString(",\n")
}

// tid maps a regime index to its lane.
func tid(regime int) int {
	if regime < 0 {
		return 0
	}
	return regime + 1
}

// Emit implements Tracer.
func (c *Chrome) Emit(e Event) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if e.Cycle > c.last {
		c.last = e.Cycle
	}
	switch e.Kind {
	case EvContextSwitch:
		if c.curTid >= 0 {
			c.end(c.curTid, e.Cycle)
		}
		c.curTid = -1
		if e.Regime >= 0 {
			c.begin(tid(e.Regime), "running", e.Cycle)
			c.curTid = tid(e.Regime)
		}
	case EvSyscallEnter:
		c.complete(tid(e.Regime), "TRAP "+e.Name, "syscall", e.Cycle, 1)
	case EvSyscallExit:
		// The enter event already rendered the call; exits carry no extra
		// geometry in this format.
	case EvChanSend:
		c.instant(tid(e.Regime), fmt.Sprintf("send %s=%d (occ %d)", e.Name, e.Value, e.Occ), "chan", e.Cycle)
	case EvChanRecv:
		c.instant(tid(e.Regime), fmt.Sprintf("recv %s=%d (occ %d)", e.Name, e.Value, e.Occ), "chan", e.Cycle)
	case EvIRQField:
		c.instant(tid(e.Regime), "field "+e.Name, "irq", e.Cycle)
	case EvIRQDeliver:
		c.instant(tid(e.Regime), fmt.Sprintf("deliver irq %d", e.Arg), "irq", e.Cycle)
	case EvIRQRaise:
		c.instant(0, "raise "+e.Name, "irq", e.Cycle)
	case EvFault:
		c.instant(tid(e.Regime), "FAULT "+e.Name+": "+e.Detail, "fault", e.Cycle)
	case EvRegimeHalt:
		c.instant(tid(e.Regime), "halt "+e.Name, "fault", e.Cycle)
	}
}

func (c *Chrome) begin(tid int, name string, ts uint64) {
	c.sep()
	fmt.Fprintf(c.w, `{"name":%q,"ph":"B","ts":%d,"pid":0,"tid":%d}`, name, ts, tid)
}

func (c *Chrome) end(tid int, ts uint64) {
	c.sep()
	fmt.Fprintf(c.w, `{"ph":"E","ts":%d,"pid":0,"tid":%d}`, ts, tid)
}

func (c *Chrome) complete(tid int, name, cat string, ts, dur uint64) {
	c.sep()
	fmt.Fprintf(c.w, `{"name":%q,"cat":%q,"ph":"X","ts":%d,"dur":%d,"pid":0,"tid":%d}`,
		name, cat, ts, dur, tid)
}

func (c *Chrome) instant(tid int, name, cat string, ts uint64) {
	c.sep()
	fmt.Fprintf(c.w, `{"name":%q,"cat":%q,"ph":"i","s":"t","ts":%d,"pid":0,"tid":%d}`,
		name, cat, ts, tid)
}

// Close terminates any open slice and the JSON array, and flushes.
func (c *Chrome) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.curTid >= 0 {
		c.end(c.curTid, c.last+1)
		c.curTid = -1
	}
	c.w.WriteString("\n]\n")
	return c.w.Flush()
}

// WriteChrome renders an already-collected event sequence (e.g. from a
// Ring) as a complete Chrome trace.
func WriteChrome(w io.Writer, regimeNames []string, events []Event) error {
	c := NewChrome(w, regimeNames)
	for _, e := range events {
		c.Emit(e)
	}
	return c.Close()
}
