package obs_test

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"repro/internal/obs"
)

// TestReadJSONLRoundTripsDemoTrace is the decoder's load-bearing golden
// test: record the deterministic seprun demo through a JSONL sink, decode
// the bytes, and demand (a) the decoded events equal the ring's events and
// (b) re-encoding reproduces the file byte for byte.
func TestReadJSONLRoundTripsDemoTrace(t *testing.T) {
	sys := buildDemo(t)
	ring := obs.NewRing(65536)
	var buf bytes.Buffer
	j := obs.NewJSONL(&buf)
	sys.SetTracer(obs.TracerFunc(func(e obs.Event) {
		ring.Emit(e)
		j.Emit(e)
	}))
	sys.RunUntilIdle(50000)
	if err := j.Flush(); err != nil {
		t.Fatal(err)
	}

	decoded, err := obs.ReadJSONL(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	want := ring.Events()
	if len(decoded) != len(want) {
		t.Fatalf("decoded %d events, recorded %d", len(decoded), len(want))
	}
	for i := range want {
		if !reflect.DeepEqual(decoded[i], want[i]) {
			t.Fatalf("event %d decoded as %+v, recorded %+v", i, decoded[i], want[i])
		}
	}

	var re bytes.Buffer
	if err := obs.WriteJSONL(&re, decoded); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(re.Bytes(), buf.Bytes()) {
		t.Fatal("decode → re-encode is not byte-identical to the recorded stream")
	}
}

func TestParseJSONLineErrors(t *testing.T) {
	bad := []struct{ name, line string }{
		{"empty object", `{}`},
		{"missing kind", `{"cycle":1,"regime":0}`},
		{"missing cycle", `{"kind":"fault","regime":0}`},
		{"missing regime", `{"cycle":1,"kind":"fault"}`},
		{"unknown kind", `{"cycle":1,"kind":"warp","regime":0}`},
		{"unknown key", `{"cycle":1,"kind":"fault","regime":0,"color":"red"}`},
		{"not json", `cycle 4 fault`},
		{"two objects", `{"cycle":1,"kind":"fault","regime":0}{"cycle":2,"kind":"fault","regime":0}`},
	}
	for _, tc := range bad {
		if _, err := obs.ParseJSONLine([]byte(tc.line)); err == nil {
			t.Errorf("%s: accepted %q", tc.name, tc.line)
		}
	}
}

func TestReadJSONLSkipsBlankLinesAndNumbersErrors(t *testing.T) {
	in := `{"cycle":1,"kind":"halt","regime":0,"name":"red"}

{"cycle":2,"kind":"ctx-switch","regime":-1,"prev":0}
`
	evs, err := obs.ReadJSONL(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 2 || evs[0].Kind != obs.EvRegimeHalt || evs[1].Prev != 0 || evs[1].Regime != -1 {
		t.Fatalf("decoded %+v", evs)
	}

	_, err = obs.ReadJSONL(strings.NewReader(in + "garbage\n"))
	if err == nil || !strings.Contains(err.Error(), "line 4") {
		t.Fatalf("error %v does not carry the failing line number", err)
	}
}

// FuzzReadJSONL drives the decoder with arbitrary bytes. Accepted input
// must canonicalize in one decode: re-encoding the decoded events yields a
// stream the decoder accepts again and re-encodes to the same bytes (the
// fixed-point contract ReadJSONL documents).
func FuzzReadJSONL(f *testing.F) {
	f.Add([]byte(`{"cycle":4,"kind":"syscall-enter","regime":0,"trap":1,"name":"SEND"}`))
	f.Add([]byte(`{"cycle":4,"kind":"chan-send","regime":0,"chan":0,"value":1,"occ":1,"name":"a->b"}`))
	f.Add([]byte(`{"cycle":8,"kind":"ctx-switch","regime":1,"prev":0,"name":"receiver"}`))
	f.Add([]byte(`{"cycle":9,"kind":"syscall-exit","regime":1,"trap":2,"r0":0,"name":"RECV"}`))
	f.Add([]byte(`{"cycle":12,"kind":"irq-deliver","regime":0,"irq":3}`))
	f.Add([]byte(`{"cycle":13,"kind":"fault","regime":1,"name":"mmu","detail":"write to 0x7"}` + "\n" +
		`{"cycle":14,"kind":"halt","regime":0}`))
	f.Add([]byte("\n\n{\"cycle\":1,\"kind\":\"irq-raise\",\"regime\":-1,\"irq\":0,\"name\":\"clk\"}"))
	f.Fuzz(func(t *testing.T, data []byte) {
		evs, err := obs.ReadJSONL(bytes.NewReader(data))
		if err != nil {
			return
		}
		var once bytes.Buffer
		if err := obs.WriteJSONL(&once, evs); err != nil {
			t.Fatalf("re-encode failed: %v", err)
		}
		evs2, err := obs.ReadJSONL(bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("canonical stream rejected: %v\n%s", err, once.Bytes())
		}
		var twice bytes.Buffer
		if err := obs.WriteJSONL(&twice, evs2); err != nil {
			t.Fatalf("second re-encode failed: %v", err)
		}
		if !bytes.Equal(once.Bytes(), twice.Bytes()) {
			t.Fatalf("canonicalization is not a fixed point:\n%s\nvs\n%s", once.Bytes(), twice.Bytes())
		}
	})
}
