package obs

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing atomic counter. The zero value is
// ready to use; counters obtained from a Registry are shared by name.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable instantaneous value (Prometheus gauge semantics):
// unlike a Counter it can move in both directions, for quantities like a
// checkpoint frontier, a ledger's age in seconds or a deployment's last
// verdict. The value is a float64 held as atomic bits; the zero value is
// ready to use.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram (Prometheus "le"
// semantics: bucket i counts observations <= bounds[i], with an implicit
// +Inf bucket). All mutation is atomic; Observe never allocates.
type Histogram struct {
	bounds  []float64
	buckets []atomic.Uint64 // len(bounds)+1; last is +Inf
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits, CAS-accumulated
}

// NewHistogram builds a histogram over the given ascending bucket bounds.
func NewHistogram(bounds []float64) *Histogram {
	b := append([]float64(nil), bounds...)
	sort.Float64s(b)
	return &Histogram{bounds: b, buckets: make([]atomic.Uint64, len(b)+1)}
}

// Observe records one sample.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Registry is a goroutine-safe collection of named counters and
// histograms. Metric names may embed Prometheus-style labels directly
// (`sep_checks_total{condition="condition 1"}`); the exporters understand
// the brace syntax and keep output sorted by name, so equal registries
// export byte-identical text.
type Registry struct {
	mu     sync.RWMutex
	ctrs   map[string]*Counter
	gauges map[string]*Gauge
	hists  map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{ctrs: map[string]*Counter{}, gauges: map[string]*Gauge{},
		hists: map[string]*Histogram{}}
}

// Counter returns the counter registered under name, creating it on first
// use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.RLock()
	c := r.ctrs[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.ctrs[name]; c == nil {
		c = &Counter{}
		r.ctrs[name] = c
	}
	return c
}

// Gauge returns the gauge registered under name, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeValue reads a gauge by name without creating it (0 if absent).
func (r *Registry) GaugeValue(name string) float64 {
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g == nil {
		return 0
	}
	return g.Value()
}

// GaugeValue is one snapshotted gauge (name, value).
type GaugeValue struct {
	Name  string
	Value float64
}

// Gauges snapshots every registered gauge, sorted by name.
func (r *Registry) Gauges() []GaugeValue {
	r.mu.RLock()
	out := make([]GaugeValue, 0, len(r.gauges))
	for n, g := range r.gauges {
		out = append(out, GaugeValue{Name: n, Value: g.Value()})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// Histogram returns the histogram registered under name, creating it with
// the given bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = NewHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// CounterValue reads a counter by name without creating it (0 if absent).
func (r *Registry) CounterValue(name string) uint64 {
	r.mu.RLock()
	c := r.ctrs[name]
	r.mu.RUnlock()
	if c == nil {
		return 0
	}
	return c.Value()
}

// CounterValues returns every counter's (name, value), sorted by name.
type CounterValue struct {
	Name  string
	Value uint64
}

// Counters snapshots every registered counter, sorted by name.
func (r *Registry) Counters() []CounterValue {
	r.mu.RLock()
	out := make([]CounterValue, 0, len(r.ctrs))
	for n, c := range r.ctrs {
		out = append(out, CounterValue{Name: n, Value: c.Value()})
	}
	r.mu.RUnlock()
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// splitLabels separates "base{labels}" into base and the raw label body
// ("" when the name carries no labels).
func splitLabels(name string) (base, labels string) {
	if i := strings.IndexByte(name, '{'); i >= 0 && strings.HasSuffix(name, "}") {
		return name[:i], name[i+1 : len(name)-1]
	}
	return name, ""
}

// promLine renders base+suffix with merged label sets.
func promLine(base, suffix, labels, extra string) string {
	all := labels
	if extra != "" {
		if all != "" {
			all += ","
		}
		all += extra
	}
	if all == "" {
		return base + suffix
	}
	return base + suffix + "{" + all + "}"
}

// WritePrometheus exports the registry in the Prometheus text exposition
// format, sorted by metric name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	for _, cv := range r.Counters() {
		if _, err := fmt.Fprintf(w, "%s %d\n", cv.Name, cv.Value); err != nil {
			return err
		}
	}
	for _, gv := range r.Gauges() {
		if _, err := fmt.Fprintf(w, "%s %g\n", gv.Name, gv.Value); err != nil {
			return err
		}
	}
	r.mu.RLock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	r.mu.RUnlock()
	sort.Strings(names)
	for _, n := range names {
		r.mu.RLock()
		h := r.hists[n]
		r.mu.RUnlock()
		base, labels := splitLabels(n)
		cum := uint64(0)
		for i, b := range h.bounds {
			cum += h.buckets[i].Load()
			le := `le="` + strconv.FormatFloat(b, 'g', -1, 64) + `"`
			if _, err := fmt.Fprintf(w, "%s %d\n", promLine(base, "_bucket", labels, le), cum); err != nil {
				return err
			}
		}
		cum += h.buckets[len(h.bounds)].Load()
		if _, err := fmt.Fprintf(w, "%s %d\n", promLine(base, "_bucket", labels, `le="+Inf"`), cum); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %g\n", promLine(base, "_sum", labels, ""), h.Sum()); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %d\n", promLine(base, "_count", labels, ""), h.Count()); err != nil {
			return err
		}
	}
	return nil
}

// WriteJSON exports the registry as a single JSON object:
//
//	{"counters":{name:value,...},
//	 "gauges":{name:value,...},
//	 "histograms":{name:{"count":n,"sum":s,"buckets":{"le":n,...}},...}}
//
// sorted by name (hand-rendered so the output is deterministic).
func (r *Registry) WriteJSON(w io.Writer) error {
	var b []byte
	b = append(b, `{"counters":{`...)
	for i, cv := range r.Counters() {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, cv.Name)
		b = append(b, ':')
		b = strconv.AppendUint(b, cv.Value, 10)
	}
	b = append(b, `},"gauges":{`...)
	for i, gv := range r.Gauges() {
		if i > 0 {
			b = append(b, ',')
		}
		b = strconv.AppendQuote(b, gv.Name)
		b = append(b, ':')
		b = strconv.AppendFloat(b, gv.Value, 'g', -1, 64)
	}
	b = append(b, `},"histograms":{`...)
	r.mu.RLock()
	names := make([]string, 0, len(r.hists))
	for n := range r.hists {
		names = append(names, n)
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for n, h := range r.hists {
		hists[n] = h
	}
	r.mu.RUnlock()
	sort.Strings(names)
	for i, n := range names {
		if i > 0 {
			b = append(b, ',')
		}
		h := hists[n]
		b = strconv.AppendQuote(b, n)
		b = append(b, `:{"count":`...)
		b = strconv.AppendUint(b, h.Count(), 10)
		b = append(b, `,"sum":`...)
		b = strconv.AppendFloat(b, h.Sum(), 'g', -1, 64)
		b = append(b, `,"buckets":{`...)
		cum := uint64(0)
		for bi, bound := range h.bounds {
			if bi > 0 {
				b = append(b, ',')
			}
			cum += h.buckets[bi].Load()
			b = strconv.AppendQuote(b, strconv.FormatFloat(bound, 'g', -1, 64))
			b = append(b, ':')
			b = strconv.AppendUint(b, cum, 10)
		}
		if len(h.bounds) > 0 {
			b = append(b, ',')
		}
		cum += h.buckets[len(h.bounds)].Load()
		b = append(b, `"+Inf":`...)
		b = strconv.AppendUint(b, cum, 10)
		b = append(b, `}}`...)
	}
	b = append(b, "}}\n"...)
	_, err := w.Write(b)
	return err
}
