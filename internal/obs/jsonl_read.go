package obs

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
)

// This file is the read half of the JSONL trace format: a decoder that
// round-trips streams written by the JSONL sink, so traces can be analysed
// offline (see internal/obs/analyze and cmd/septrace) instead of only in
// the process that recorded them.
//
// The contract is a fixed point with AppendJSON: decoding a canonical line
// and re-encoding it reproduces the line byte for byte. Fields that
// AppendJSON omits for an event's kind are dropped by the decoder too, so
// one decode canonicalizes any accepted input (fuzz-tested).

// kindByName is the reverse of kindNames, built once.
var kindByName = func() map[string]EventKind {
	m := make(map[string]EventKind, numEventKinds)
	for k, n := range kindNames {
		m[n] = EventKind(k)
	}
	return m
}()

// KindByName resolves a kind's string form ("ctx-switch", ...); ok is
// false for unknown names.
func KindByName(name string) (EventKind, bool) {
	k, ok := kindByName[name]
	return k, ok
}

// jsonEvent mirrors every key AppendJSON can emit. Pointers distinguish
// absent from zero where it matters for validation.
type jsonEvent struct {
	Cycle  *uint64 `json:"cycle"`
	Kind   *string `json:"kind"`
	Regime *int    `json:"regime"`
	Prev   int     `json:"prev"`
	Trap   int     `json:"trap"`
	R0     uint64  `json:"r0"`
	IRQ    int     `json:"irq"`
	Chan   int     `json:"chan"`
	Value  uint64  `json:"value"`
	Occ    int     `json:"occ"`
	Name   string  `json:"name"`
	Detail string  `json:"detail"`
}

// ParseJSONLine decodes one JSONL trace line into an Event. Unknown keys
// and unknown kinds are errors; keys irrelevant to the decoded kind are
// accepted but dropped, so the result always re-encodes canonically.
func ParseJSONLine(line []byte) (Event, error) {
	dec := json.NewDecoder(bytes.NewReader(line))
	dec.DisallowUnknownFields()
	var j jsonEvent
	if err := dec.Decode(&j); err != nil {
		return Event{}, err
	}
	// A line must be exactly one object.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Event{}, fmt.Errorf("trailing data after event object")
	}
	if j.Kind == nil {
		return Event{}, fmt.Errorf("missing \"kind\"")
	}
	kind, ok := KindByName(*j.Kind)
	if !ok {
		return Event{}, fmt.Errorf("unknown event kind %q", *j.Kind)
	}
	if j.Cycle == nil {
		return Event{}, fmt.Errorf("missing \"cycle\"")
	}
	if j.Regime == nil {
		return Event{}, fmt.Errorf("missing \"regime\"")
	}
	e := Event{Cycle: *j.Cycle, Kind: kind, Regime: *j.Regime, Name: j.Name, Detail: j.Detail}
	switch kind {
	case EvContextSwitch:
		e.Prev = j.Prev
	case EvSyscallEnter:
		e.Arg = j.Trap
	case EvSyscallExit:
		e.Arg = j.Trap
		e.Value = j.R0
	case EvIRQField, EvIRQDeliver, EvIRQRaise:
		e.Arg = j.IRQ
	case EvChanSend, EvChanRecv:
		e.Arg = j.Chan
		e.Value = j.Value
		e.Occ = j.Occ
	}
	return e, nil
}

// ReadJSONL decodes a whole JSONL trace stream (blank lines are skipped).
// Errors carry the 1-based line number.
func ReadJSONL(r io.Reader) ([]Event, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 4*1024*1024)
	var events []Event
	lineno := 0
	for sc.Scan() {
		lineno++
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		e, err := ParseJSONLine(line)
		if err != nil {
			return events, fmt.Errorf("obs: trace line %d: %w", lineno, err)
		}
		events = append(events, e)
	}
	if err := sc.Err(); err != nil {
		return events, fmt.Errorf("obs: trace line %d: %w", lineno, err)
	}
	return events, nil
}

// WriteJSONL renders events in the JSONL sink's canonical encoding: the
// inverse of ReadJSONL and the byte-for-byte equal of what a JSONL sink
// attached at recording time would have written.
func WriteJSONL(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	var buf []byte
	for _, e := range events {
		buf = AppendJSON(buf[:0], e)
		buf = append(buf, '\n')
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}
