package obs_test

import (
	"bytes"
	"encoding/json"
	"errors"
	"testing"

	"repro/internal/obs"
)

// Close must terminate an open "running" slice so every B has an E, and
// the result must be a complete, parseable JSON array even when no event
// was ever emitted.
func TestChromeCloseTerminatesOpenSlice(t *testing.T) {
	var buf bytes.Buffer
	c := obs.NewChrome(&buf, []string{"red", "black"})
	c.Emit(obs.Event{Cycle: 5, Kind: obs.EvContextSwitch, Regime: 0, Prev: -1, Name: "red"})
	c.Emit(obs.Event{Cycle: 9, Kind: obs.EvSyscallEnter, Regime: 0, Arg: 0, Name: "SWAP"})
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("closed trace is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	var begins, ends int
	var lastEndTS float64
	for _, p := range parsed {
		switch p["ph"] {
		case "B":
			begins++
		case "E":
			ends++
			lastEndTS, _ = p["ts"].(float64)
		}
	}
	if begins != 1 || ends != 1 {
		t.Fatalf("B/E = %d/%d after Close, want 1/1", begins, ends)
	}
	// The synthesized E closes at last-seen-cycle+1, strictly after the
	// last real event.
	if lastEndTS != 10 {
		t.Fatalf("synthesized slice end ts = %v, want 10", lastEndTS)
	}
}

func TestChromeCloseEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	c := obs.NewChrome(&buf, nil)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("empty trace is not valid JSON: %v\n%s", err, buf.Bytes())
	}
	if len(parsed) != 1 || parsed[0]["ph"] != "M" {
		t.Fatalf("empty trace should hold only the kernel lane metadata, got %v", parsed)
	}
}

// failAfter errors once n bytes have been written — the flush path must
// surface the underlying writer's error through Close.
type failAfter struct {
	n   int
	err error
}

func (f *failAfter) Write(p []byte) (int, error) {
	if len(p) <= f.n {
		f.n -= len(p)
		return len(p), nil
	}
	n := f.n
	f.n = 0
	return n, f.err
}

func TestChromeCloseReportsWriteError(t *testing.T) {
	wantErr := errors.New("disk full")
	c := obs.NewChrome(&failAfter{n: 8, err: wantErr}, []string{"only"})
	for i := 0; i < 64; i++ {
		c.Emit(obs.Event{Cycle: uint64(i), Kind: obs.EvContextSwitch, Regime: 0, Prev: -1})
		c.Emit(obs.Event{Cycle: uint64(i), Kind: obs.EvContextSwitch, Regime: -1, Prev: 0})
	}
	if err := c.Close(); !errors.Is(err, wantErr) {
		t.Fatalf("Close = %v, want the writer's %v", err, wantErr)
	}
}

func TestJSONLFlushReportsWriteError(t *testing.T) {
	wantErr := errors.New("pipe closed")
	j := obs.NewJSONL(&failAfter{n: 4, err: wantErr})
	for i := 0; i < 4096; i++ {
		j.Emit(obs.Event{Cycle: uint64(i), Kind: obs.EvRegimeHalt, Regime: 0})
	}
	if err := j.Flush(); !errors.Is(err, wantErr) {
		t.Fatalf("Flush = %v, want the writer's %v", err, wantErr)
	}
}
