package kernel_test

import (
	"testing"

	"repro/internal/kernel"
	"repro/internal/machine"
)

// TestTranslatedKernelBootLockstep is the kernel-level differential test
// for the translation cache: the real SUE-Go kernel, booted and stepped
// with and without translation, must hold byte-identical machine state
// and Φ abstractions at every point. This exercises the paths the micro
// tests cannot — kernel-mode execution, trap round trips, MMU reloads on
// SWAP, channel copies — all under translated dispatch.
func TestTranslatedKernelBootLockstep(t *testing.T) {
	build := func(translate bool) *kernel.Kernel {
		m := machine.New(0x4000)
		m.SetTranslation(translate)
		cfg := kernel.Config{
			Regimes: []kernel.RegimeSpec{
				{Name: "a", Base: 0x1000, Size: 0x800, Image: prog(t, senderSrc)},
				{Name: "b", Base: 0x2000, Size: 0x800, Image: prog(t, receiverSrc)},
			},
			Channels: []kernel.ChannelSpec{
				{Name: "ab", From: "a", To: "b", Capacity: 8},
			},
		}
		k, err := kernel.New(m, cfg)
		if err != nil {
			t.Fatalf("kernel.New: %v", err)
		}
		if err := k.Boot(); err != nil {
			t.Fatalf("boot: %v", err)
		}
		return k
	}
	kt, ki := build(true), build(false)
	if !kt.Machine().Snapshot().Equal(ki.Machine().Snapshot()) {
		t.Fatal("translated and interpreted machines differ right after boot")
	}
	at, ai := kernel.NewAdapter(kt), kernel.NewAdapter(ki)
	for step := 0; step < 600; step++ {
		kt.Step()
		ki.Step()
		if !kt.Machine().Snapshot().Equal(ki.Machine().Snapshot()) {
			t.Fatalf("step %d: machine snapshots diverged", step)
		}
		if step%25 == 0 {
			for _, c := range at.Colours() {
				if at.Abstract(c) != ai.Abstract(c) {
					t.Fatalf("step %d: Φ(%s) diverged", step, c)
				}
			}
		}
	}
	if ts := kt.Machine().TranslationStats(); ts.Hits == 0 {
		t.Error("translated kernel run never hit the cache")
	}
}
