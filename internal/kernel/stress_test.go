package kernel_test

import (
	"fmt"
	"testing"

	"repro/internal/asm"
	"repro/internal/kernel"
	"repro/internal/machine"
)

// TestEightRegimeRing pushes the configuration limit: eight regimes in a
// ring, each forwarding an incrementing token to its successor. The token
// must travel the whole ring many times with every hop kernel-mediated.
func TestEightRegimeRing(t *testing.T) {
	const n = 8
	m := machine.New(0xC000)
	var cfg kernel.Config
	for i := 0; i < n; i++ {
		// Regime i receives on channel i and sends on channel (i+1)%n.
		src := fmt.Sprintf(`
	.org 0x40
start:
	MOV #0, R4
loop:
	MOV #%d, R0
	TRAP #RECV
	CMP #1, R0
	BNE yield
	ADD #1, R1        ; bump the token
	MOV R1, @0x20     ; remember the last token seen
	MOV #%d, R0
	TRAP #SEND
yield:
	TRAP #SWAP
	BR loop
`, i, (i+1)%n)
		im, err := asm.Assemble(kernel.Prelude + src)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Regimes = append(cfg.Regimes, kernel.RegimeSpec{
			Name: fmt.Sprintf("r%d", i),
			Base: machine.Word(0x1000 + i*0x400), Size: 0x400, Image: im,
		})
	}
	for i := 0; i < n; i++ {
		cfg.Channels = append(cfg.Channels, kernel.ChannelSpec{
			Name: fmt.Sprintf("c%d", i),
			From: fmt.Sprintf("r%d", (i+n-1)%n), To: fmt.Sprintf("r%d", i),
			Capacity: 4,
		})
	}
	k, err := kernel.New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	// Seed the token into channel 0 by having regime 7 send... simplest:
	// poke the channel buffer via a bootstrap regime? Instead, seed by
	// injecting directly through regime r7's code path: write the token
	// into r0's channel with the kernel's own service by simulating: give
	// r7 an initial send. We cheat minimally: run until everyone idles,
	// then check nothing moved (no token), then reboot with a seeded
	// variant below.
	k.Run(30000)
	if k.Dead() {
		t.Fatalf("kernel died: %v", k.Cause)
	}
	// Without a seed, nobody sees a token.
	for i := 0; i < n; i++ {
		if v, _ := k.ReadRegimeMem(i, 0x20); v != 0 {
			t.Fatalf("phantom token at regime %d: %d", i, v)
		}
	}
}

// TestEightRegimeRingWithSeed seeds the ring via a ninth... the limit is
// eight, so regime 0 doubles as the seeder: it sends once before joining
// the relay.
func TestEightRegimeRingWithSeed(t *testing.T) {
	const n = 8
	m := machine.New(0xC000)
	var cfg kernel.Config
	for i := 0; i < n; i++ {
		var prologue string
		if i == 0 {
			prologue = `
	MOV #1, R0        ; seed: send token 0 on the outgoing channel
	MOV #0, R1
	TRAP #SEND
`
		}
		src := fmt.Sprintf(`
	.org 0x40
start:
%s
loop:
	MOV #%d, R0
	TRAP #RECV
	CMP #1, R0
	BNE yield
	ADD #1, R1
	MOV R1, @0x20
	MOV #%d, R0
	TRAP #SEND
yield:
	TRAP #SWAP
	BR loop
`, prologue, i, (i+1)%n)
		im, err := asm.Assemble(kernel.Prelude + src)
		if err != nil {
			t.Fatal(err)
		}
		cfg.Regimes = append(cfg.Regimes, kernel.RegimeSpec{
			Name: fmt.Sprintf("r%d", i),
			Base: machine.Word(0x1000 + i*0x400), Size: 0x400, Image: im,
		})
	}
	for i := 0; i < n; i++ {
		cfg.Channels = append(cfg.Channels, kernel.ChannelSpec{
			Name: fmt.Sprintf("c%d", i),
			From: fmt.Sprintf("r%d", (i+n-1)%n), To: fmt.Sprintf("r%d", i),
			Capacity: 4,
		})
	}
	k, err := kernel.New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	k.Run(60000)
	if k.Dead() {
		t.Fatalf("kernel died: %v", k.Cause)
	}
	// The token has circulated: every regime saw a strictly positive,
	// ring-position-consistent value, and the total hops are substantial.
	last, _ := k.ReadRegimeMem(0, 0x20)
	if last < n {
		t.Errorf("token circulated too little: regime 0 saw %d", last)
	}
	for i := 1; i < n; i++ {
		v, _ := k.ReadRegimeMem(i, 0x20)
		if v == 0 {
			t.Errorf("regime %d never saw the token", i)
		}
	}
}

// TestLongRunDeterminismWithDevices is the soak test: a device-rich system
// run for 200k cycles twice from identical boots must produce bit-identical
// machine states.
func TestLongRunDeterminismWithDevices(t *testing.T) {
	build := func() (*kernel.Kernel, *machine.TTY) {
		m := machine.New(0x4000)
		tty := machine.NewTTY("tty0", 3)
		clk := machine.NewClock("clk", 17)
		m.Attach(tty)
		m.Attach(clk)
		ioSrc := `
	.org 0x40
start:
	MOV #isr, @0x10
	MOV #tick, @0x12
	MOV #0x40, @DEV0       ; TTY rx interrupts
	MOV #0x40, @DEV1       ; clock interrupts
	TRAP #IRQON
	MOV #0, R2
loop:
	ADD #1, R2
	MOV R2, @0x20
	TRAP #SWAP
	BR loop
isr:
	MOV @DEV0+1, R1
	MOV R1, @DEV0+3
	RTI
tick:
	MOV @0x30, R3
	ADD #1, R3
	MOV R3, @0x30
	MOV #0x41, @DEV1       ; clear pending latch, keep enabled
	RTI
`
		peer := `
	.org 0x40
start:
	MOV #0x7, R5
loop:
	MUL #3, R5
	ADD #1, R5
	MOV R5, @0x20
	TRAP #SWAP
	BR loop
`
		im1, err := asm.Assemble(kernel.Prelude + ioSrc)
		if err != nil {
			t.Fatal(err)
		}
		im2, err := asm.Assemble(kernel.Prelude + peer)
		if err != nil {
			t.Fatal(err)
		}
		cfg := kernel.Config{
			Regimes: []kernel.RegimeSpec{
				{Name: "io", Base: 0x1000, Size: 0x800, Image: im1,
					Devices: []machine.Device{tty, clk}},
				{Name: "peer", Base: 0x2000, Size: 0x800, Image: im2},
			},
		}
		k, err := kernel.New(m, cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := k.Boot(); err != nil {
			t.Fatal(err)
		}
		return k, tty
	}

	run := func() *machine.Snapshot {
		k, tty := build()
		for i := 0; i < 200000; i++ {
			if i%997 == 0 {
				tty.InjectString("x")
			}
			k.Step()
		}
		if k.Dead() {
			t.Fatalf("kernel died: %v", k.Cause)
		}
		return k.Machine().Snapshot()
	}
	s1 := run()
	s2 := run()
	if !s1.Equal(s2) {
		t.Error("200k-cycle device-rich runs diverged")
	}
}

// TestChannelIsolationPairs verifies that with two disjoint channel pairs
// (a->b, c->d) traffic on one pair never appears on the other.
func TestChannelIsolationPairs(t *testing.T) {
	m := machine.New(0x8000)
	send := func(ch int, base machine.Word) string {
		return fmt.Sprintf(`
	.org 0x40
start:
	MOV #%#x, R2
loop:
	MOV #%d, R0
	MOV R2, R1
	TRAP #SEND
	ADD #1, R2
	TRAP #SWAP
	BR loop
`, base, ch)
	}
	recv := func(ch int) string {
		return fmt.Sprintf(`
	.org 0x40
start:
	MOV #0, R4
loop:
	MOV #%d, R0
	TRAP #RECV
	CMP #1, R0
	BNE yield
	MOV R1, @0x20        ; last value received
yield:
	TRAP #SWAP
	BR loop
`, ch)
	}
	mk := func(src string) *asm.Image {
		im, err := asm.Assemble(kernel.Prelude + src)
		if err != nil {
			t.Fatal(err)
		}
		return im
	}
	cfg := kernel.Config{
		Regimes: []kernel.RegimeSpec{
			{Name: "a", Base: 0x1000, Size: 0x400, Image: mk(send(0, 0x1000))},
			{Name: "b", Base: 0x1400, Size: 0x400, Image: mk(recv(0))},
			{Name: "c", Base: 0x1800, Size: 0x400, Image: mk(send(1, 0x8000))},
			{Name: "d", Base: 0x1C00, Size: 0x400, Image: mk(recv(1))},
		},
		Channels: []kernel.ChannelSpec{
			{Name: "ab", From: "a", To: "b", Capacity: 8},
			{Name: "cd", From: "c", To: "d", Capacity: 8},
		},
	}
	k, err := kernel.New(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := k.Boot(); err != nil {
		t.Fatal(err)
	}
	k.Run(50000)
	if k.Dead() {
		t.Fatalf("kernel died: %v", k.Cause)
	}
	bGot, _ := k.ReadRegimeMem(k.RegimeIndex("b"), 0x20)
	dGot, _ := k.ReadRegimeMem(k.RegimeIndex("d"), 0x20)
	// a sends values starting at 0x1000; c at 0x8000. Each receiver must
	// only ever have seen its own sender's range.
	if bGot < 0x1000 || bGot >= 0x8000 {
		t.Errorf("b received %#x, outside a's range", bGot)
	}
	if dGot < 0x8000 {
		t.Errorf("d received %#x, outside c's range", dGot)
	}
}

// TestFixedSliceFunctional: channels, faults and completion all behave
// under fixed-slice scheduling; only the wall-clock shape changes.
func TestFixedSliceFunctional(t *testing.T) {
	k := twoRegimes(t, senderSrc, receiverSrc,
		func(c *kernel.Config) { c.FixedSlice = 100 })
	k.Run(60000)
	if k.Dead() {
		t.Fatalf("kernel died: %v", k.Cause)
	}
	sum, _ := k.ReadRegimeMem(k.RegimeIndex("b"), 0x20)
	if sum != 15 {
		t.Errorf("fixed-slice run: receiver sum = %d, want 15", sum)
	}
}

// TestFixedSlicePreemptsHogs: a regime that never yields cannot starve the
// others under fixed slices.
func TestFixedSlicePreemptsHogs(t *testing.T) {
	hog := `
	.org 0x40
start:
	ADD #1, R2        ; never yields
	BR start
`
	meek := `
	.org 0x40
start:
	MOV #0, R2
loop:
	ADD #1, R2
	MOV R2, @0x20
	TRAP #SWAP
	BR loop
`
	k := twoRegimes(t, hog, meek,
		func(c *kernel.Config) { c.FixedSlice = 50 })
	k.Run(10000)
	if k.Dead() {
		t.Fatalf("kernel died: %v", k.Cause)
	}
	v, _ := k.ReadRegimeMem(k.RegimeIndex("b"), 0x20)
	if v < 10 {
		t.Errorf("meek regime starved under fixed slices: %d iterations", v)
	}
	// Without fixed slices the hog starves the meek regime completely.
	k2 := twoRegimes(t, hog, meek, nil)
	k2.Run(10000)
	v2, _ := k2.ReadRegimeMem(k2.RegimeIndex("b"), 0x20)
	if v2 != 0 {
		t.Errorf("run-until-SWAP scheduling let the meek regime run (%d)?!", v2)
	}
}
